// Package order provides deterministic map-iteration helpers for the
// sim-deterministic packages. Go randomizes map iteration order per run;
// any map range whose effect can reach simulation output must instead
// walk Keys(m), which is stable across runs and processes. The detrand
// analyzer (internal/lint) enforces this: a bare map range in a
// deterministic package is a lint error unless waived as provably
// order-independent.
package order

import (
	"cmp"
	"slices"
)

// Keys returns m's keys sorted ascending.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	//dynamolint:order-independent collecting keys into a slice that is sorted before use
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// SortedFunc returns m's keys sorted by the given comparison function,
// for key types without a natural order.
func SortedFunc[K comparable, V any](m map[K]V, less func(a, b K) int) []K {
	ks := make([]K, 0, len(m))
	//dynamolint:order-independent collecting keys into a slice that is sorted before use
	for k := range m {
		ks = append(ks, k)
	}
	slices.SortFunc(ks, less)
	return ks
}
