package core

import (
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// diurnalTrace is a small diurnal Conversation window (2 simulated hours
// riding the synthetic week's morning ramp) used by the fidelity
// cross-validation: long enough for every controller epoch to fire, short
// enough that the event backend runs in test time.
func diurnalTrace() trace.Trace {
	start := simclock.Time(8 * simclock.Hour)
	tr := trace.Generate(trace.GenConfig{
		Service:  trace.Conversation,
		Start:    start,
		Duration: 2 * simclock.Hour,
		PeakRPS:  20,
		Seed:     31,
	})
	return tr.Window(start, start+simclock.Time(2*simclock.Hour))
}

func runFidelity(t *testing.T, system string, f Fidelity, tr trace.Trace) *Result {
	t.Helper()
	r, _ := fixtures(t)
	opts, ok := SystemByName(system)
	if !ok {
		t.Fatalf("unknown system %q", system)
	}
	opts.Seed = 7
	opts.Fidelity = f
	opts.WarmLoad = func(tm simclock.Time, c workload.Class) float64 {
		return trace.ExpectedRate(trace.Conversation, 20, tm+simclock.Time(8*simclock.Hour), c)
	}
	return RunWithRepo(tr, opts, r)
}

// TestEventCrossValidatesFluid bounds the disagreement between the two
// fidelity backends on a small diurnal trace. Stated tolerances: SLO
// attainment within 0.2 absolute, energy within a factor of [0.7, 1.4] —
// the fluid model samples latencies from bucketed steady states while the
// engine produces real queueing tails, so they must track each other but
// cannot match exactly.
func TestEventCrossValidatesFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	tr := diurnalTrace()
	for _, system := range []string{"singlepool", "dynamollm"} {
		fluid := runFidelity(t, system, FidelityFluid, tr)
		event := runFidelity(t, system, FidelityEvent, tr)

		if fluid.Requests != event.Requests {
			t.Errorf("%s: routed %d requests fluid vs %d event (routing must be backend-independent)",
				system, fluid.Requests, event.Requests)
		}
		// Every routed request is accounted: completed, squashed, or shed.
		for fid, res := range map[string]*Result{"fluid": fluid, "event": event} {
			if err := res.CheckInvariants(); err != nil {
				t.Errorf("%s/%s: %v", system, fid, err)
			}
		}
		fa, ea := fluid.SLOAttainment(), event.SLOAttainment()
		t.Logf("%s: SLO %.3f/%.3f  energy %.1f/%.1f kWh  ttft-p99 %.3f/%.3f s (fluid/event)",
			system, fa, ea, fluid.EnergyKWh(), event.EnergyKWh(),
			fluid.TTFT.Percentile(99), event.TTFT.Percentile(99))
		if d := fa - ea; d > 0.2 || d < -0.2 {
			t.Errorf("%s: SLO attainment disagrees beyond tolerance: fluid %.3f vs event %.3f", system, fa, ea)
		}
		if ratio := event.EnergyJ / fluid.EnergyJ; ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: energy disagrees beyond tolerance: fluid %.1f kWh vs event %.1f kWh (ratio %.2f)",
				system, fluid.EnergyKWh(), event.EnergyKWh(), ratio)
		}
		// Event mode must actually have produced latency measurements.
		if event.TTFT.N() == 0 || event.TBT.N() == 0 {
			t.Errorf("%s: event mode recorded no latencies", system)
		}
		for _, cls := range []workload.Class{workload.SS, workload.MM} {
			if event.ClassTTFT[cls] == nil || event.ClassTTFT[cls].N() == 0 {
				t.Errorf("%s: no per-class TTFT capture for %v", system, cls)
			}
		}
		if fluid.ClassTTFT[workload.SS] != nil {
			t.Errorf("%s: fluid mode should not allocate per-class capture", system)
		}
	}
}

// TestEventModeDeterministic: event-mode results are bit-identical across
// repeated runs (the per-run clock, engines, and RNG streams share nothing
// between simulations, which is also what makes them -jobs independent).
func TestEventModeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	tr := diurnalTrace()
	a := runFidelity(t, "dynamollm", FidelityEvent, tr)
	b := runFidelity(t, "dynamollm", FidelityEvent, tr)
	if a.EnergyJ != b.EnergyJ || a.SLOMet != b.SLOMet || a.Completed != b.Completed ||
		a.Squashed != b.Squashed || a.Reshards != b.Reshards ||
		a.TTFT.Percentile(99) != b.TTFT.Percentile(99) {
		t.Errorf("event mode not deterministic: %+v vs %+v",
			[]float64{a.EnergyJ, float64(a.SLOMet), float64(a.Completed)},
			[]float64{b.EnergyJ, float64(b.SLOMet), float64(b.Completed)})
	}
}

// TestParseFidelity pins the CLI name set.
func TestParseFidelity(t *testing.T) {
	for i, name := range FidelityNames {
		f, err := ParseFidelity(name)
		if err != nil || f != Fidelity(i) {
			t.Errorf("ParseFidelity(%q) = %v, %v", name, f, err)
		}
		if f.String() != name {
			t.Errorf("Fidelity(%d).String() = %q, want %q", i, f.String(), name)
		}
	}
	if _, err := ParseFidelity("quantum"); err == nil {
		t.Error("unknown fidelity accepted")
	}
}
