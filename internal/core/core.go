// Package core implements DynamoLLM itself (§IV): the hierarchy of
// controllers — cluster manager, pool managers, instance managers — that
// dynamically reconfigures an LLM inference cluster for energy efficiency
// under latency SLOs, plus the discrete-time cluster simulation that the
// paper's large-scale evaluation uses (§V-E).
//
// The controller hierarchy and its epochs follow §IV-B:
//
//	ClusterManager  every 30 min  scale-out/in  (instance counts per pool)
//	PoolManager     every  5 min  shard-up/down (TP mix within the pool)
//	InstanceManager every  5 s    scale-up/down (GPU frequency)
//
// Baseline systems (SinglePool, MultiPool, ScaleInst, ScaleShard,
// ScaleFreq) are expressed as Options that disable subsets of the knobs,
// exactly mirroring §V-A.
//
// Options.Hook accepts a TickHook (see hooks.go) through which the
// scenario engine injects mid-run conditions — server outages and
// recoveries, electricity-price signals, SLO windows — without touching
// the tick loop's zero-allocation steady state.
package core

import (
	"fmt"
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/predict"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// Fidelity selects the instance service model behind the cluster
// simulation: the closed-form fluid model (fast, the paper's large-scale
// simulator, §V-E) or the event-level continuous-batching engine (one
// engine.Engine per instance on a shared virtual clock — request-level
// queueing, batching, and tail behaviour emerge instead of being sampled
// from formulas). Fluid is the default; event mode is the ground-truth
// check, a few orders of magnitude slower per simulated second.
type Fidelity int

const (
	// FidelityFluid drives every instance through perfmodel.Steady.
	FidelityFluid Fidelity = iota
	// FidelityEvent embeds one event-level engine per instance.
	FidelityEvent
)

// FidelityNames lists the accepted fidelity names in definition order.
var FidelityNames = []string{"fluid", "event"}

// String returns the fidelity's CLI name.
func (f Fidelity) String() string {
	if f < 0 || int(f) >= len(FidelityNames) {
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
	return FidelityNames[f]
}

// ParseFidelity resolves a fidelity name ("fluid", "event").
func ParseFidelity(s string) (Fidelity, error) {
	for i, name := range FidelityNames {
		if s == name {
			return Fidelity(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown fidelity %q (want fluid|event)", s)
}

// KVTier selects the KV spill tier below each engine's GPU block pool.
type KVTier int

const (
	// KVTierNone disables spilling: preemption always recomputes (the
	// PR 8 behaviour, bit-identical event stream).
	KVTierNone KVTier = iota
	// KVTierCPU spills to host memory over PCIe: a fast link and a pool a
	// few times the GPU's unscaled KV capacity.
	KVTierCPU
	// KVTierSSD spills to NVMe: a far larger pool behind a slower link,
	// so the swap-vs-recompute policy earns its keep.
	KVTierSSD
)

// KVTierNames lists the accepted tier names in definition order.
var KVTierNames = []string{"none", "cpu", "ssd"}

// String returns the tier's CLI name.
func (t KVTier) String() string {
	if t < 0 || int(t) >= len(KVTierNames) {
		return fmt.Sprintf("KVTier(%d)", int(t))
	}
	return KVTierNames[t]
}

// ParseKVTier resolves a KV tier name ("none", "cpu", "ssd").
func ParseKVTier(s string) (KVTier, error) {
	for i, name := range KVTierNames {
		if s == name {
			return KVTier(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown kv tier %q (want none|cpu|ssd)", s)
}

// KVSwapPolicy picks swap versus recompute for each preemption victim
// when a spill tier is configured.
type KVSwapPolicy int

const (
	// KVSwapAuto compares modeled transfer time against modeled prefill
	// recompute time per victim and takes the cheaper path.
	KVSwapAuto KVSwapPolicy = iota
	// KVSwapAlways spills every victim the tier can hold.
	KVSwapAlways
)

// KVSwapPolicyNames lists the accepted swap policy names in definition
// order.
var KVSwapPolicyNames = []string{"auto", "always"}

// String returns the policy's CLI name.
func (p KVSwapPolicy) String() string {
	if p < 0 || int(p) >= len(KVSwapPolicyNames) {
		return fmt.Sprintf("KVSwapPolicy(%d)", int(p))
	}
	return KVSwapPolicyNames[p]
}

// ParseKVSwapPolicy resolves a swap policy name ("auto", "always").
func ParseKVSwapPolicy(s string) (KVSwapPolicy, error) {
	for i, name := range KVSwapPolicyNames {
		if s == name {
			return KVSwapPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown kv swap policy %q (want auto|always)", s)
}

// Options selects the system variant and its parameters.
type Options struct {
	// Model is the served LLM (default Llama2-70B).
	Model *model.Model
	// SLOScale relaxes the Table IV SLOs (1 = strict 5x).
	SLOScale float64

	// Fidelity selects the instance service model: FidelityFluid (the
	// closed-form default) or FidelityEvent (an event-level engine per
	// instance). Every controller and scenario works under both; results
	// are deterministic for a fixed seed in either mode.
	Fidelity Fidelity

	// StepJobs bounds the worker pool the event backend uses to step
	// per-instance engines within each tick (FidelityEvent only; the
	// fluid backend is a single closed-form pass). 0 or 1 steps serially;
	// any value produces byte-identical results — engines are independent
	// between controller decisions and their outputs merge in a fixed
	// instance-ID order.
	StepJobs int

	// NumPools is the number of request-type pools (9 = paper default;
	// 1 = SinglePool; Fig. 13 sweeps 2..16).
	NumPools int

	// The three knobs (§V-A). DynamoLLM enables all three.
	ScaleInstances bool // scale-out/in server instances with load
	ScaleSharding  bool // re-shard tensor parallelism with load
	ScaleFrequency bool // DVFS with load

	// ReducedOverheads enables §IV-C's optimizations: snapshot-based VM
	// start with pre-warming, background NVLink re-sharding with the
	// matching planner, and the resident frequency monitor. Disabling it
	// models the naive paths (Table V, Fig. 3).
	ReducedOverheads bool

	// PredictorAccuracy is the output-length classifier accuracy
	// (Fig. 11; 1.0 = oracle).
	PredictorAccuracy float64

	// Disagg splits every pool into a prefill pool and a decode pool
	// (prefill/decode disaggregation): requests prefill and produce their
	// first token on a prefill instance, then hand their KV cache to a
	// decode instance of the twin pool, paying a modeled transfer cost.
	// Disagg implies FidelityEvent (the fluid model has no per-request KV
	// to hand off) and block-granular KV accounting (KVBlockTokens
	// defaults to DefaultKVBlockTokens when unset).
	Disagg bool

	// KVBlockTokens enables block-granular KV-cache accounting in every
	// event-fidelity engine: the paged-pool block size in tokens (16 is
	// vLLM's default). Zero keeps the legacy token-counting admission
	// path, which is byte-identical to pre-KV builds.
	KVBlockTokens int

	// KVCapacityFactor scales each engine's derived KV block capacity
	// (capacity sweeps shrink it below 1 to provoke preemption). Zero or
	// one means the full profile-derived capacity.
	KVCapacityFactor float64

	// KVPrefixCache enables the engine prompt-prefix cache: requests
	// sharing a non-zero PromptGroup skip prefill work for the cached
	// prefix. Only meaningful with KVBlockTokens > 0.
	KVPrefixCache bool

	// KVTier adds a spill tier below each engine's GPU block pool:
	// preemption victims may swap their KV blocks out over a modeled link
	// and swap back in on resume instead of recomputing. Like Disagg, a
	// tier implies FidelityEvent and block-granular KV accounting.
	KVTier KVTier

	// KVTierBandwidth overrides the tier's modeled link bandwidth in
	// bytes/s (0 keeps the tier's default: 25 GB/s PCIe for cpu, 5 GB/s
	// NVMe for ssd).
	KVTierBandwidth float64

	// KVSwapPolicy picks swap vs recompute per preemption victim
	// (KVSwapAuto compares modeled costs; KVSwapAlways always spills).
	KVSwapPolicy KVSwapPolicy

	// RetryBudget is the per-request frontend retry budget (§IV-D): how
	// many times a squashed request (instance outage, pool with no
	// capacity) re-enters the router before it is terminally dropped.
	// Zero takes the default (DefaultRetryBudget); negative disables
	// retries entirely, restoring squash-means-drop semantics.
	RetryBudget int

	// Servers is the static server count for non-scaling systems; when
	// ScaleInstances is set it is the fleet ceiling instead.
	Servers int

	// Epochs (seconds). Zeros take the paper defaults.
	InstanceEpoch float64 // 5 s
	PoolEpoch     float64 // 5 min
	ClusterEpoch  float64 // 30 min

	// Tick is the simulation step (default = InstanceEpoch).
	Tick float64

	// Seed drives all stochastic elements.
	Seed uint64

	// WarmLoad pre-trains the load predictor on the ideal load
	// curve, as the paper trains on historical weeks.
	WarmLoad func(t simclock.Time, c workload.Class) float64

	// Hook, when non-nil, fires at the start of every tick and may
	// perturb the run through the Controls facade (outages, price
	// signals, SLO windows). The scenario engine installs a Timeline
	// here; hooks are per-run state and must never be shared across
	// concurrent simulations.
	Hook TickHook

	// EnergyPriceUSDPerKWh is the nominal electricity price integrated
	// into Result.EnergyCostUSD (scaled by any hook-injected price
	// multiplier). Zero takes the §V-F default (ERCOT-like $0.03/kWh).
	EnergyPriceUSDPerKWh float64

	// Observer, when non-nil, receives per-request terminal notifications
	// (and, under FidelityEvent, per-token events for tagged requests)
	// from whichever backend serves the run. The live serving session
	// installs one to resolve injected requests; batch experiments leave
	// it nil, which keeps the steady tick loop allocation-free.
	Observer RequestObserver
}

// RequestObserver receives request lifecycle notifications from a running
// simulation. Callbacks fire synchronously inside the tick loop (or the
// event clock), so implementations must be fast and must not re-enter the
// simulation.
type RequestObserver interface {
	// RequestToken fires for each output token an event-fidelity engine
	// produces for a request with a non-zero Tag (never under
	// FidelityFluid, which has no token-level events). The pointer is
	// only valid during the call.
	RequestToken(req *workload.Request, produced int, now simclock.Time)
	// RequestDone fires exactly once when a request reaches a terminal
	// state: served (ttft/tbt in seconds, met is the SLO judgement) or
	// squashed (req.Squashed set, ttft = tbt = -1, met = false). The
	// pointer is only valid during the call.
	RequestDone(req *workload.Request, ttft, tbt float64, met bool)
}

// DefaultKVBlockTokens is the KV block size installed when Disagg is set
// without an explicit KVBlockTokens (vLLM's default page size).
const DefaultKVBlockTokens = 16

// withDefaults fills the paper's defaults.
func (o Options) withDefaults() Options {
	if o.Model == nil {
		o.Model = model.Llama2_70B
	}
	if o.Disagg || o.KVTier != KVTierNone {
		// Disaggregation and tiered KV both need per-request KV state:
		// event fidelity and block accounting are not optional once pools
		// are split or a spill tier is configured.
		o.Fidelity = FidelityEvent
		if o.KVBlockTokens <= 0 {
			o.KVBlockTokens = DefaultKVBlockTokens
		}
	}
	if o.SLOScale < 1 {
		o.SLOScale = 1
	}
	if o.NumPools <= 0 {
		o.NumPools = workload.NumClasses
	}
	if o.PredictorAccuracy <= 0 || o.PredictorAccuracy > 1 {
		o.PredictorAccuracy = 1
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = DefaultRetryBudget
	}
	if o.Servers <= 0 {
		o.Servers = 12
	}
	if o.InstanceEpoch <= 0 {
		o.InstanceEpoch = 5
	}
	if o.PoolEpoch <= 0 {
		o.PoolEpoch = 5 * simclock.Minute
	}
	if o.ClusterEpoch <= 0 {
		o.ClusterEpoch = 30 * simclock.Minute
	}
	if o.Tick <= 0 {
		o.Tick = o.InstanceEpoch
	}
	if o.EnergyPriceUSDPerKWh <= 0 {
		o.EnergyPriceUSDPerKWh = energy.DefaultCost.EnergyUSDPerKWh
	}
	return o
}

// System presets mirroring §V-A.

// SinglePool is the state-of-the-practice baseline: one pool, TP8 at the
// highest GPU frequency, statically provisioned for peak.
func SinglePool() Options {
	return Options{NumPools: 1}
}

// MultiPool separates request types into per-class pools but keeps every
// knob static at the highest-performance setting.
func MultiPool() Options {
	return Options{NumPools: workload.NumClasses}
}

// ScaleInst adds instance autoscaling to MultiPool.
func ScaleInst() Options {
	o := MultiPool()
	o.ScaleInstances = true
	return o
}

// ScaleShard adds tensor-parallelism scaling to MultiPool.
func ScaleShard() Options {
	o := MultiPool()
	o.ScaleSharding = true
	return o
}

// ScaleFreq adds DVFS to MultiPool.
func ScaleFreq() Options {
	o := MultiPool()
	o.ScaleFrequency = true
	return o
}

// DynamoLLM enables every knob and the overhead reductions.
func DynamoLLM() Options {
	return Options{
		NumPools:         workload.NumClasses,
		ScaleInstances:   true,
		ScaleSharding:    true,
		ScaleFrequency:   true,
		ReducedOverheads: true,
	}
}

// SystemByName resolves the six evaluated systems.
func SystemByName(name string) (Options, bool) {
	switch name {
	case "singlepool":
		return SinglePool(), true
	case "multipool":
		return MultiPool(), true
	case "scaleinst":
		return ScaleInst(), true
	case "scaleshard":
		return ScaleShard(), true
	case "scalefreq":
		return ScaleFreq(), true
	case "dynamollm":
		return DynamoLLM(), true
	}
	return Options{}, false
}

// SystemNames lists the evaluated systems in the paper's presentation
// order (Fig. 6).
var SystemNames = []string{
	"singlepool", "multipool", "scaleinst", "scaleshard", "scalefreq", "dynamollm",
}

// sharedState bundles what all controllers read.
type sharedState struct {
	opts        Options
	prof        *profile.Profile
	loadPred    *predict.LoadPredictor
	lenPred     *predict.LengthPredictor
	rng         *simclock.RNG
	nextID      int
	capCache    map[capKey]float64
	steadyCache map[steadyKey]perfmodel.Steady
	// curTick is the 1-based tick currently being simulated (0 outside a
	// run); per-instance tick-scoped memos key on it.
	curTick int
	// priceMult is the hook-injected electricity-price multiplier
	// (1 = nominal); it scales EnergyCostUSD accounting and steers the
	// price-aware controller paths.
	priceMult float64
	// sloMult is the hook-injected SLO scaling applied to requests at
	// arrival (values below 1 tighten, above 1 relax; 1 = nominal).
	sloMult float64
	// submitDelay is the hook-injected transient submission delay in
	// seconds (a frontend/network blip): requests arriving while it is
	// non-zero reach their instance that much later, paying the delay in
	// their TTFT.
	submitDelay float64
	// backend is the instance-fidelity backend of the running simulation
	// (nil outside a run or in direct controller tests — the retire and
	// reconfigure helpers tolerate that).
	backend InstanceBackend
}

// retire notifies the backend that an instance is leaving service. It is
// called right after the instance is parked stateOff; graceful marks a
// planned departure (scale-in, re-shard surplus) whose in-flight work may
// migrate, as opposed to an abrupt outage.
func (s *sharedState) retire(in *Instance, now simclock.Time, graceful bool) {
	if s.backend != nil {
		s.backend.Retire(in, now, graceful)
	}
}

// reconfigure notifies the backend that an instance's configuration (TP
// degree, transition window) just changed via applyReshard.
func (s *sharedState) reconfigure(in *Instance, now simclock.Time) {
	if s.backend != nil {
		s.backend.Reconfigure(in, now)
	}
}

// nextInstanceID hands out unique instance IDs.
func (s *sharedState) nextInstanceID() int {
	s.nextID++
	return s.nextID
}

// SmoothTTFTSLO interpolates the Table IV TTFT targets between the class
// representative input lengths (linear in log input length), so capacity
// estimates for mixed pools vary smoothly with the average mix.
func SmoothTTFTSLO(inTokens float64) float64 {
	pts := [3]struct{ in, slo float64 }{{90, 0.250}, {512, 0.400}, {2896, 2.000}}
	if inTokens <= pts[0].in {
		return pts[0].slo
	}
	if inTokens >= pts[2].in {
		return pts[2].slo
	}
	for i := 0; i < 2; i++ {
		if inTokens <= pts[i+1].in {
			f := (math.Log(inTokens) - math.Log(pts[i].in)) /
				(math.Log(pts[i+1].in) - math.Log(pts[i].in))
			return pts[i].slo + f*(pts[i+1].slo-pts[i].slo)
		}
	}
	return pts[2].slo
}

type capKey struct {
	tp        model.TP
	freq      gpu.Freq
	inB, outB int
}

// shapeBucketStep is the geometric grid for request shapes (~12% buckets).
const shapeBucketStep = 0.12

// shapeBucket grades a token-length EWMA onto the geometric grid.
func shapeBucket(v, floor float64) int {
	if v < floor {
		v = floor
	}
	return int(math.Round(math.Log(v) / shapeBucketStep))
}

// shapeCapacity returns the SLO-feasible capacity (req/s) of a
// configuration serving a request mix with the given average lengths. The
// bisection result is cached on a geometric grid of shapes.
func (s *sharedState) shapeCapacity(tp model.TP, f gpu.Freq, mixIn, mixOut float64) float64 {
	return s.shapeCapacityKey(capKey{
		tp:   tp,
		freq: gpu.Nearest(f),
		inB:  shapeBucket(mixIn, 8),
		outB: shapeBucket(mixOut, 4),
	})
}

// shapeCapacityKey is shapeCapacity for an already-bucketed key (the
// per-instance capacity memo revalidates with the key alone).
func (s *sharedState) shapeCapacityKey(key capKey) float64 {
	if s.capCache == nil {
		s.capCache = map[capKey]float64{}
	}
	if v, ok := s.capCache[key]; ok {
		return v
	}
	inR := math.Exp(float64(key.inB) * shapeBucketStep)
	outR := math.Exp(float64(key.outB) * shapeBucketStep)
	cfg := perfmodel.Config{Model: s.opts.Model, TP: key.tp, Freq: key.freq}
	ttft := SmoothTTFTSLO(inR) * s.opts.SLOScale
	tbt := 0.100 * s.opts.SLOScale
	cap, ok := perfmodel.MaxLoadShape(cfg, int(inR), int(outR), ttft, tbt)
	if !ok {
		cap = 0
	}
	s.capCache[key] = cap
	return cap
}
