package core

import (
	"testing"

	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// resultFingerprint captures the fields two runs must agree on to count
// as identical simulations.
type resultFingerprint struct {
	Requests, Squashed, Completed, SLOMet int
	Reshards, ScaleOuts, Emergencies      int
	EnergyJ                               float64
	TTFTP99, TBTP99                       float64
	GPUSeconds                            float64
}

func fingerprint(res *Result) resultFingerprint {
	return resultFingerprint{
		Requests: res.Requests, Squashed: res.Squashed,
		Completed: res.Completed, SLOMet: res.SLOMet,
		Reshards: res.Reshards, ScaleOuts: res.ScaleOuts,
		Emergencies: res.Emergencies,
		EnergyJ:     res.EnergyJ,
		TTFTP99:     res.TTFT.Percentile(99),
		TBTP99:      res.TBT.Percentile(99),
		GPUSeconds:  res.GPUSeconds,
	}
}

// liveOpts are options whose provisioning pre-pass does not depend on the
// trace contents (SinglePool provisions a fixed fleet), so a Live run seeded
// from a partial base trace plus injections is comparable to a batch run on
// the pre-merged trace. WarmLoad is pinned for the same reason.
func liveOpts(f Fidelity) Options {
	opts := SinglePool()
	opts.Seed = 7
	opts.Fidelity = f
	opts.WarmLoad = warmConv
	return opts
}

// TestLiveMatchesRun: driving the tick loop incrementally through Live, in
// ragged advance steps, produces the identical Result as the one-shot
// RunWithRepo on the same trace — under both fidelity backends.
func TestLiveMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	tr := trace.OpenSourceHour(6, 11).Window(0, simclock.Time(10*simclock.Minute))
	for _, f := range []Fidelity{FidelityFluid, FidelityEvent} {
		batch := RunWithRepo(tr, liveOpts(f), r)

		live := NewLive(tr, liveOpts(f), r)
		// Ragged increments: some smaller than a tick (no-ops), some
		// spanning many ticks.
		for at := simclock.Time(0); at < simclock.Time(10*simclock.Minute); at += 37 {
			live.AdvanceTo(at)
		}
		live.AdvanceTo(simclock.Time(10 * simclock.Minute))
		res := live.Finish()

		if got, want := fingerprint(res), fingerprint(batch); got != want {
			t.Errorf("fidelity %v: live != batch:\n live  %+v\n batch %+v", f, got, want)
		}
	}
}

// TestLiveInjectSorted is the unsorted-injection regression test: a request
// injected with an earlier timestamp than pending base entries must land in
// time order, so the run is identical to a batch run over the pre-sorted
// merged trace. (The old dynamoserve appended injections after the base
// trace, violating the trace.Trace time-ordering contract.)
func TestLiveInjectSorted(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	base := trace.OpenSourceHour(6, 11).Window(0, simclock.Time(10*simclock.Minute))
	inject := trace.Entry{At: simclock.Time(2 * simclock.Minute), InputTokens: 512, OutputTokens: 187}

	// Batch reference: merged trace, properly sorted.
	merged := make(trace.Trace, 0, len(base)+1)
	for _, e := range base {
		if e.At <= inject.At {
			merged = append(merged, e)
		}
	}
	merged = append(merged, inject)
	for _, e := range base {
		if e.At > inject.At {
			merged = append(merged, e)
		}
	}
	batch := RunWithRepo(merged, liveOpts(FidelityFluid), r)

	// Live: advance a minute, then inject the entry timestamped at 2 min —
	// earlier than most pending base entries.
	live := NewLive(base, liveOpts(FidelityFluid), r)
	live.AdvanceTo(simclock.Time(simclock.Minute))
	at, err := live.Inject(inject)
	if err != nil {
		t.Fatal(err)
	}
	if at != inject.At {
		t.Fatalf("inject clamped %v to %v with boundary %v", inject.At, at, live.Boundary())
	}
	live.AdvanceTo(simclock.Time(10 * simclock.Minute))
	res := live.Finish()

	if got, want := fingerprint(res), fingerprint(batch); got != want {
		t.Errorf("live with sorted injection != pre-merged batch:\n live  %+v\n batch %+v", got, want)
	}
}

// TestLiveInjectClampsPast: an entry timestamped before the boundary is
// clamped to it instead of rewriting served history.
func TestLiveInjectClampsPast(t *testing.T) {
	r, _ := fixtures(t)
	live := NewLive(nil, liveOpts(FidelityFluid), r)
	live.AdvanceTo(100)
	at, err := live.Inject(trace.Entry{At: 3, InputTokens: 10, OutputTokens: 10})
	if err != nil {
		t.Fatal(err)
	}
	if at != live.Boundary() {
		t.Errorf("past injection arrived at %v, want boundary %v", at, live.Boundary())
	}
	live.Finish()
	if _, err := live.Inject(trace.Entry{At: 0, InputTokens: 1, OutputTokens: 1}); err == nil {
		t.Error("inject after Finish accepted")
	}
}

// TestLiveAdvanceCost pins the incremental contract: each AdvanceTo runs
// exactly the whole ticks inside the elapsed delta — independent of how
// long the session has been running — and re-advancing to the same target
// runs zero ticks. This is the property the old dynamoserve lacked (it
// re-simulated the full history on every query).
func TestLiveAdvanceCost(t *testing.T) {
	r, _ := fixtures(t)
	opts := liveOpts(FidelityFluid)
	live := NewLive(nil, opts, r)
	tick := live.TickSeconds()

	boundary := 0.0
	for _, target := range []float64{12, 300, 301, 3600, 3600, 7200} {
		want := int(target/tick) - int(boundary/tick)
		if got := live.AdvanceTo(simclock.Time(target)); got != want {
			t.Errorf("AdvanceTo(%v) from boundary %v ran %d ticks, want %d", target, boundary, got, want)
		}
		boundary = float64(live.Boundary())
	}
	if got := live.AdvanceTo(live.Boundary()); got != 0 {
		t.Errorf("re-advancing to the boundary ran %d ticks, want 0", got)
	}
}

// tokenObserver counts observer callbacks for the event-fidelity test.
type tokenObserver struct {
	tokens int
	done   []uint64
	ttft   float64
}

func (o *tokenObserver) RequestToken(req *workload.Request, produced int, now simclock.Time) {
	o.tokens++
}

func (o *tokenObserver) RequestDone(req *workload.Request, ttft, tbt float64, met bool) {
	if req.Tag != 0 {
		o.done = append(o.done, req.Tag)
		o.ttft = ttft
	}
}

// TestLiveObserverEvent: a tagged injected request under the event backend
// streams per-token events and reports exactly one terminal completion
// with a real TTFT.
func TestLiveObserverEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	obs := &tokenObserver{}
	opts := liveOpts(FidelityEvent)
	opts.Observer = obs
	live := NewLive(nil, opts, r)
	live.AdvanceTo(30)
	if _, err := live.Inject(trace.Entry{At: 31, Tag: 99, InputTokens: 128, OutputTokens: 16}); err != nil {
		t.Fatal(err)
	}
	live.AdvanceTo(simclock.Time(5 * simclock.Minute))
	live.Finish()

	if len(obs.done) != 1 || obs.done[0] != 99 {
		t.Fatalf("terminal notifications = %v, want exactly [99]", obs.done)
	}
	if obs.tokens != 16 {
		t.Errorf("token events = %d, want 16 (one per output token)", obs.tokens)
	}
	if obs.ttft <= 0 {
		t.Errorf("completion TTFT = %v, want > 0", obs.ttft)
	}
}

// BenchmarkLiveAdvanceTick measures the steady per-tick advance cost of a
// live session under load; because AdvanceTo never revisits history, this
// cost is flat no matter how old the session is.
func BenchmarkLiveAdvanceTick(b *testing.B) {
	tr := trace.OpenSourceHour(testPeakRPS, 11)
	live := NewLive(tr, liveOpts(FidelityFluid), profile.NewRepository(nil))
	tick := live.TickSeconds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live.AdvanceTo(simclock.Time(float64(i+1) * tick))
	}
}

// TestLiveAppendCompacts: Append reclaims the consumed trace prefix, so a
// looping session's memory is bounded by the pending window, not uptime.
func TestLiveAppendCompacts(t *testing.T) {
	r, _ := fixtures(t)
	live := NewLive(nil, liveOpts(FidelityFluid), r)
	window := func(shift simclock.Time) trace.Trace {
		tr := make(trace.Trace, 50)
		for i := range tr {
			tr[i] = trace.Entry{At: shift + simclock.Time(i), InputTokens: 64, OutputTokens: 8}
		}
		return tr
	}
	for k := 0; k < 20; k++ {
		shift := simclock.Time(k * 50)
		if err := live.Append(window(shift)); err != nil {
			t.Fatalf("loop %d: %v", k, err)
		}
		live.AdvanceTo(shift + 50)
	}
	if n := len(live.sm.tr); n > 100 {
		t.Errorf("trace retains %d entries after 20 consumed windows of 50, want <= 100 (consumed prefix must be reclaimed)", n)
	}
	if got := live.Result().Requests; got != 20*50 {
		t.Errorf("served %d requests, want %d", got, 20*50)
	}
}

// TestLiveInjectQueueCompacts: under sustained injection the queue is
// essentially never empty (the trailing partial tick always holds an
// arrival), so the consumed prefix must be reclaimed incrementally, not
// only on full drain.
func TestLiveInjectQueueCompacts(t *testing.T) {
	r, _ := fixtures(t)
	live := NewLive(nil, liveOpts(FidelityFluid), r)
	for k := 0; k < 2000; k++ {
		at := simclock.Time(float64(k) + 0.5)
		if _, err := live.Inject(trace.Entry{At: at, InputTokens: 64, OutputTokens: 8}); err != nil {
			t.Fatal(err)
		}
		// The boundary always trails the newest arrival, so the queue
		// never fully drains.
		live.AdvanceTo(simclock.Time(float64(k)))
	}
	if n := len(live.sm.injected); n > 256 {
		t.Errorf("injection queue holds %d slots after 2000 consumed injections, want <= 256 (prefix must be reclaimed)", n)
	}
	if got := live.Result().Requests; got < 1900 {
		t.Errorf("served %d of 2000 injected requests", got)
	}
}
