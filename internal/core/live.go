package core

import (
	"fmt"
	"sort"

	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// Live is an incrementally driven cluster simulation: the same tick loop
// RunWithRepo executes in one shot, exposed as an advance-as-you-go
// handle for the serving control plane. The caller owns the pacing —
// AdvanceTo runs exactly the whole ticks that newly fit below the target
// time, so the cost of an advance is proportional to the elapsed delta,
// never to the session's total history. Arrivals can be injected between
// advances at any instant at or after the computed boundary; they live
// in a sorted side queue merged with the base trace at consumption, so
// the arrival stream the tick loop sees stays time-ordered (the
// trace.Trace contract) without per-injection memmoves of the pending
// trace.
//
// A Live is single-goroutine state: callers serialize access (the serving
// session holds one mutex around every method). Driving the same tick
// sequence as RunWithRepo with the same options and trace produces the
// identical Result — asserted by TestLiveMatchesRun.
type Live struct {
	sm       *simulation
	ticks    int // completed ticks; boundary = ticks * opts.Tick
	finished bool
}

// NewLive prepares an incremental-advance simulation over a private copy of
// the time-ordered base trace (the copy keeps later injections from
// mutating the caller's slice). Static provisioning and predictor warming
// see only this base trace, exactly as a batch run would.
func NewLive(tr trace.Trace, opts Options, repo *profile.Repository) *Live {
	owned := make(trace.Trace, len(tr))
	copy(owned, tr)
	return &Live{sm: newSimulation(owned, opts, repo)}
}

// TickSeconds returns the simulation step in virtual seconds.
func (l *Live) TickSeconds() float64 { return l.sm.opts.Tick }

// Options returns the run options with every default resolved.
func (l *Live) Options() Options { return l.sm.opts }

// Boundary returns the virtual time up to which the simulation has been
// computed: the end of the last executed tick (a whole-tick multiple).
func (l *Live) Boundary() simclock.Time {
	return simclock.Time(float64(l.ticks) * l.sm.opts.Tick)
}

// AdvanceTo executes every whole tick that ends at or before target and
// returns how many ran. Ticks already executed are never revisited, so
// repeated calls with the same target are free and the cost of any call
// is bounded by target minus the previous boundary.
func (l *Live) AdvanceTo(target simclock.Time) int {
	if l.finished {
		return 0
	}
	n := 0
	tick := l.sm.opts.Tick
	for simclock.Time(float64(l.ticks+1)*tick) <= target {
		l.sm.step(l.ticks)
		l.ticks++
		n++
	}
	if n > 0 {
		// Keep the run duration current so mid-session aggregates
		// (AvgServers, a final Finish) reflect the time actually served.
		l.sm.res.Duration = float64(l.ticks) * tick
	}
	return n
}

// Inject enqueues one live arrival, keeping the injection queue
// time-ordered; the tick loop merges it with the base trace at
// consumption (so the merged arrival stream honours the trace.Trace
// time-ordering contract without ever memmoving the base trace's pending
// tail). Entries timestamped before the computed boundary are clamped to
// it — the simulation cannot rewrite served history; the actual arrival
// instant is returned.
func (l *Live) Inject(e trace.Entry) (simclock.Time, error) {
	if l.finished {
		return 0, fmt.Errorf("core: inject into a finished live simulation")
	}
	if b := l.Boundary(); e.At < b {
		e.At = b
	}
	sm := l.sm
	// Reclaim the consumed prefix once it dominates the queue: under
	// sustained injection there is almost always one pending entry (the
	// trailing partial tick), so the full-drain reset in nextArrival
	// alone would let the queue grow for the life of the session.
	if sm.injIdx > 64 && sm.injIdx*2 >= len(sm.injected) {
		n := copy(sm.injected, sm.injected[sm.injIdx:])
		sm.injected = sm.injected[:n]
		sm.injIdx = 0
	}
	// Stable position among pending injections: after every entry at the
	// same instant, so equal-time injections serve in arrival order. Live
	// stamps are monotonic, so this is normally an append.
	pos := sm.injIdx + sort.Search(len(sm.injected)-sm.injIdx, func(i int) bool {
		return sm.injected[sm.injIdx+i].At > e.At
	})
	sm.injected = append(sm.injected, trace.Entry{})
	copy(sm.injected[pos+1:], sm.injected[pos:])
	sm.injected[pos] = e
	return e.At, nil
}

// Append extends the base trace with later entries — the serving
// session's trace-loop replay. Entries must be time-ordered and start at
// or after both the computed boundary and the current trace tail (a
// plain append, never an insertion).
func (l *Live) Append(entries trace.Trace) error {
	if l.finished {
		return fmt.Errorf("core: append to a finished live simulation")
	}
	sm := l.sm
	// Reclaim the consumed prefix before growing: a looping session would
	// otherwise retain every replayed window for its whole uptime.
	if sm.idx > 0 {
		n := copy(sm.tr, sm.tr[sm.idx:])
		sm.tr = sm.tr[:n]
		sm.idx = 0
	}
	tail := l.Boundary()
	if n := len(sm.tr); n > 0 && sm.tr[n-1].At > tail {
		tail = sm.tr[n-1].At
	}
	for _, e := range entries {
		if e.At < tail {
			return fmt.Errorf("core: appended entry at %v precedes the trace tail %v", e.At, tail)
		}
		tail = e.At
	}
	sm.tr = append(sm.tr, entries...)
	return nil
}

// PendingArrivals reports arrivals not yet consumed by the tick loop,
// across the base trace and the injection queue.
func (l *Live) PendingArrivals() int {
	return (len(l.sm.tr) - l.sm.idx) + (len(l.sm.injected) - l.sm.injIdx)
}

// Result exposes the running aggregates. The caller must not read it
// concurrently with AdvanceTo/Inject/Finish; between calls it reflects
// everything up to the boundary.
func (l *Live) Result() *Result { return l.sm.res }

// ActiveServers reports live capacity in 8-GPU server equivalents.
func (l *Live) ActiveServers() int { return l.sm.ctl.ActiveServers() }

// KVStats is the cluster's KV-cache occupancy and dynamics snapshot: pool
// usage summed over live event engines plus the run's KV counters. Units
// are blocks under block-granular accounting (Options.KVBlockTokens > 0)
// and tokens under the legacy counting path; both are zero under fluid
// fidelity, which has no per-request KV state.
type KVStats struct {
	UsedBlocks  int
	TotalBlocks int
	Preemptions int
	PrefixHits  int
	Rejected    int
	Handoffs    int
	// Spill-tier occupancy and dynamics (Options.KVTier != KVTierNone).
	TierUsedBlocks  int
	TierTotalBlocks int
	SwapOuts        int
	SwapIns         int
	Recomputes      int
	TierEvictions   int
}

// KVStats reports current KV occupancy and the run's KV counters. Like
// Result, it must not be called concurrently with AdvanceTo/Inject/Finish;
// between calls it reflects the last computed tick boundary.
func (l *Live) KVStats() KVStats {
	res := l.sm.res
	st := KVStats{
		Preemptions:   res.KVPreemptions,
		PrefixHits:    res.KVPrefixHits,
		Rejected:      res.KVRejected,
		Handoffs:      res.Handoffs,
		SwapOuts:      res.KVSwapOuts,
		SwapIns:       res.KVSwapIns,
		Recomputes:    res.KVRecomputes,
		TierEvictions: res.KVTierEvictions,
	}
	if eb, ok := l.sm.s.backend.(*eventBackend); ok {
		for _, ie := range eb.engines {
			if ie == nil {
				continue
			}
			u, c := ie.eng.KVUsage()
			st.UsedBlocks += u
			st.TotalBlocks += c
			tu, tc := ie.eng.KVTierUsage()
			st.TierUsedBlocks += tu
			st.TierTotalBlocks += tc
		}
	}
	return st
}

// PriceMult returns the electricity-price multiplier currently in force.
func (l *Live) PriceMult() float64 { return l.sm.s.priceMult }

// SLOFactor returns the SLO scaling factor currently in force.
func (l *Live) SLOFactor() float64 { return l.sm.s.sloMult }

// Finish closes the run: the backend drains in-flight work (the event
// backend lets its engines run to completion, reporting what can never
// finish as squashed) and the run-level aggregates are finalized. Further
// advances and injections are rejected. Finish is idempotent.
func (l *Live) Finish() *Result {
	if !l.finished {
		l.finished = true
		if l.sm.res.Duration <= 0 {
			l.sm.res.Duration = l.sm.opts.Tick
		}
		l.sm.finish()
	}
	return l.sm.res
}
