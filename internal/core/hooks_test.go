package core

import (
	"testing"

	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
)

// TestTimelineOrderingAndFiring: events fire in time order regardless of
// construction order, exactly once, and equal-time events keep insertion
// order.
func TestTimelineOrderingAndFiring(t *testing.T) {
	var fired []int
	mk := func(id int) func(*Controls) {
		return func(*Controls) { fired = append(fired, id) }
	}
	tl := NewTimeline([]TimelineEvent{
		{At: 30, Do: mk(3)},
		{At: 10, Do: mk(1)},
		{At: 30, Do: mk(4)}, // same time as id 3, added after
		{At: 20, Do: mk(2)},
	})
	for now := simclock.Time(0); now <= 50; now += 5 {
		tl.OnTick(now, nil)
	}
	want := []int{1, 2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// Already past: nothing fires twice.
	tl.OnTick(100, nil)
	if len(fired) != 4 {
		t.Errorf("events re-fired: %v", fired)
	}
}

// TestControlsFailAndRecover drives outages through a real cluster and
// checks capacity bookkeeping: failed servers leave the fleet, recovery
// restores them (through provisioning), and counters land in the Result.
func TestControlsFailAndRecover(t *testing.T) {
	r, _ := fixtures(t)
	opts := SinglePool().withDefaults()
	opts.Seed = 1
	c := NewCluster(opts, r)
	c.staticProvision(nil)
	res := &Result{}
	ctl := newControls(c, res)

	before := ctl.ActiveServers()
	if before != opts.Servers {
		t.Fatalf("static provision gave %d servers, want %d", before, opts.Servers)
	}
	if got := ctl.FailServers(3); got != 3 {
		t.Fatalf("FailServers(3) = %d", got)
	}
	c.compactPools()
	if got := ctl.ActiveServers(); got != before-3 {
		t.Errorf("after outage: %d servers, want %d", got, before-3)
	}
	if res.Outages == 0 {
		t.Error("no Outages recorded")
	}

	if got := ctl.RecoverServers(5); got != 3 {
		t.Errorf("RecoverServers(5) restored %d, want 3 (only 3 failed)", got)
	}
	if res.Recoveries != 3 {
		t.Errorf("Recoveries = %d, want 3", res.Recoveries)
	}
	// Recovered instances provision first, then serve.
	if got := ctl.ActiveServers(); got != before {
		t.Errorf("after recovery: %d servers, want %d", got, before)
	}

	// Failing more than exists caps at the fleet.
	got := ctl.FailServers(1000)
	if got > before {
		t.Errorf("failed %d servers out of %d", got, before)
	}
	c.compactPools()
	if live := ctl.ActiveServers(); live != 0 {
		t.Errorf("%d servers survived a total outage", live)
	}
}

// TestControlsPriceAndSLOClamp: non-positive inputs reset to nominal.
func TestControlsPriceAndSLOClamp(t *testing.T) {
	r, _ := fixtures(t)
	c := NewCluster(SinglePool().withDefaults(), r)
	ctl := newControls(c, &Result{})
	ctl.SetPriceMult(4)
	if ctl.PriceMult() != 4 {
		t.Errorf("PriceMult = %v", ctl.PriceMult())
	}
	ctl.SetPriceMult(-1)
	if ctl.PriceMult() != 1 {
		t.Errorf("negative price mult not clamped: %v", ctl.PriceMult())
	}
	ctl.SetSLOFactor(0.5)
	if ctl.SLOFactor() != 0.5 {
		t.Errorf("SLOFactor = %v", ctl.SLOFactor())
	}
	ctl.SetSLOFactor(0)
	if ctl.SLOFactor() != 1 {
		t.Errorf("zero SLO factor not clamped: %v", ctl.SLOFactor())
	}
}

// TestControlsShardedOutageRecoveryParity: on a fragmented multi-pool
// fleet (TP2/TP4/TP8 mixed), a matched outage + recovery pair must
// restore the fleet to its original GPU count — per-pool remainders
// below the 8-GPU server size must not strand failed capacity.
func TestControlsShardedOutageRecoveryParity(t *testing.T) {
	r, _ := fixtures(t)
	opts := MultiPool().withDefaults()
	c := NewCluster(opts, r)
	res := &Result{}
	for i := 0; i < 3; i++ {
		c.addInstance(c.pools[i], model.TP2, 0, true)
	}
	c.addInstance(c.pools[3], model.TP4, 0, true)
	c.addInstance(c.pools[4], model.TP8, 0, true)
	gpus := func() int {
		n := 0
		for _, p := range c.pools {
			n += p.gpusInUse()
		}
		return n
	}
	before := gpus() // 3x2 + 4 + 8 = 18
	ctl := newControls(c, res)

	failed := ctl.FailServers(2) // 16 GPUs, spread across pools as 8+4+2+2
	if failed != 2 {
		t.Fatalf("FailServers(2) = %d", failed)
	}
	c.compactPools()
	if got := gpus(); got != before-16 {
		t.Fatalf("after outage: %d GPUs, want %d", got, before-16)
	}
	if got := ctl.RecoverServers(failed); got != failed {
		t.Fatalf("RecoverServers(%d) = %d", failed, got)
	}
	if got := gpus(); got != before {
		t.Errorf("matched outage+recovery left %d GPUs, want %d (stranded remainder)", got, before)
	}
}
