package core

import (
	"fmt"
	"testing"

	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// TestLiveCheckpointResume: snapshot a live session mid-run, fork it twice,
// and advance everything to the same horizon — the original (proving the
// snapshot is non-destructive) and both forks (proving the snapshot is
// complete and reusable) must all finish bit-identical to a session that
// ran straight through, under both fidelity backends.
func TestLiveCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	mid := simclock.Time(3 * simclock.Minute)
	end := simclock.Time(6 * simclock.Minute)
	tr := trace.OpenSourceHour(6, 11).Window(0, end)

	for _, f := range []Fidelity{FidelityFluid, FidelityEvent} {
		straight := NewLive(tr, liveOpts(f), r)
		straight.AdvanceTo(end)
		want := fingerprint(straight.Finish())

		live := NewLive(tr, liveOpts(f), r)
		live.AdvanceTo(mid)
		snap := live.Snapshot()
		if snap.Boundary() != live.Boundary() {
			t.Fatalf("fidelity %v: snapshot boundary %v != live boundary %v", f, snap.Boundary(), live.Boundary())
		}

		live.AdvanceTo(end)
		if got := fingerprint(live.Finish()); got != want {
			t.Errorf("fidelity %v: snapshotting perturbed the original:\n got  %+v\n want %+v", f, got, want)
		}

		for k := 0; k < 2; k++ {
			fork := snap.Resume()
			if fork.Boundary() != mid {
				t.Fatalf("fidelity %v: fork %d resumed at %v, want %v", f, k, fork.Boundary(), mid)
			}
			fork.AdvanceTo(end)
			if got := fingerprint(fork.Finish()); got != want {
				t.Errorf("fidelity %v: fork %d != straight run:\n got  %+v\n want %+v", f, k, got, want)
			}
		}
	}
}

// TestLiveForkDiverges: a fork is a real fork — injecting extra load into
// it changes its result without touching the snapshot or the original.
func TestLiveForkDiverges(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	mid := simclock.Time(2 * simclock.Minute)
	end := simclock.Time(5 * simclock.Minute)
	tr := trace.OpenSourceHour(6, 11).Window(0, end)

	live := NewLive(tr, liveOpts(FidelityEvent), r)
	live.AdvanceTo(mid)
	snap := live.Snapshot()

	loaded := snap.Resume()
	for i := 0; i < 50; i++ {
		at := mid + simclock.Time(float64(i)*0.5)
		if _, err := loaded.Inject(trace.Entry{At: at, InputTokens: 512, OutputTokens: 64}); err != nil {
			t.Fatal(err)
		}
	}
	loaded.AdvanceTo(end)
	loadedRes := loaded.Finish()

	clean := snap.Resume()
	clean.AdvanceTo(end)
	cleanRes := clean.Finish()

	if loadedRes.Requests != cleanRes.Requests+50 {
		t.Errorf("loaded fork served %d, clean fork %d: want exactly +50", loadedRes.Requests, cleanRes.Requests)
	}

	live.AdvanceTo(end)
	if got := live.Result().Requests; got != cleanRes.Requests {
		t.Errorf("original served %d after forks diverged, want %d", got, cleanRes.Requests)
	}
}

// TestEventStepJobsDeterministic: the parallel stepping worker pool is
// invisible in the results — any StepJobs value produces a bit-identical
// run. Under -race (make test) this also audits the workers for unsynced
// shared state.
func TestEventStepJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	tr := trace.OpenSourceHour(6, 11).Window(0, simclock.Time(6*simclock.Minute))

	var want resultFingerprint
	for i, jobs := range []int{1, 4, 8} {
		opts := liveOpts(FidelityEvent)
		opts.StepJobs = jobs
		got := fingerprint(RunWithRepo(tr, opts, r))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("StepJobs=%d diverges from serial:\n got  %+v\n want %+v", jobs, got, want)
		}
	}
}

// BenchmarkEventFleet measures a 20-server (TP8, so 20-engine) event-mode
// fleet over a 10-minute high-load window, stepped with 1..8 workers. The
// per-tick engine stepping dominates this workload, so ns/op across the
// sub-benchmarks is the parallel-stepping speedup curve; on a single-core
// host all rungs collapse to the serial cost (minus pool overhead).
func BenchmarkEventFleet(b *testing.B) {
	repo := profile.NewRepository(nil)
	tr := trace.OpenSourceHour(45, 11).Window(0, 600)
	mk := func(jobs int) Options {
		opts := SinglePool()
		opts.Seed = 7
		opts.WarmLoad = warmConv
		opts.Fidelity = FidelityEvent
		opts.Servers = 20
		opts.StepJobs = jobs
		return opts
	}
	// Build profiles and caches outside the measurement.
	RunWithRepo(tr, mk(1), repo)
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			opts := mk(jobs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := RunWithRepo(tr, opts, repo)
				if res.Requests == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkLiveSnapshot prices the checkpoint primitive itself: one
// Snapshot+Resume round trip of a warmed 12-instance event-mode session.
func BenchmarkLiveSnapshot(b *testing.B) {
	repo := profile.NewRepository(nil)
	tr := trace.OpenSourceHour(testPeakRPS, 11).Window(0, 300)
	live := NewLive(tr, liveOpts(FidelityEvent), repo)
	live.AdvanceTo(simclock.Time(4 * simclock.Minute))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if live.Snapshot().Resume() == nil {
			b.Fatal("nil fork")
		}
	}
}
