package core

import (
	"fmt"
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// kvFingerprint summarizes a Result down to the fields the KV tests
// compare byte-for-byte (floats via %x so NaN/rounding cannot hide).
func kvFingerprint(r *Result) string {
	return fmt.Sprintf("req=%d done=%d squash=%d shed=%d slo=%d swap=%d/%d recomp=%d evict=%d e=%x ttft50=%x ttft99=%x tbt99=%x",
		r.Requests, r.Completed, r.Squashed, r.Shed, r.SLOMet,
		r.KVSwapOuts, r.KVSwapIns, r.KVRecomputes, r.KVTierEvictions,
		r.EnergyJ, r.TTFT.Percentile(50), r.TTFT.Percentile(99), r.TBT.Percentile(99))
}

func kvRun(t *testing.T, mutate func(*Options), window simclock.Time) *Result {
	t.Helper()
	repo, _ := fixtures(t)
	tr := trace.OpenSourceHour(testPeakRPS, 11).Window(0, window)
	opts, _ := SystemByName("multipool")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	if mutate != nil {
		mutate(&opts)
	}
	res := RunWithRepo(tr, opts, repo)
	if err := res.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return res
}

// TestKVUnboundedMatchesLegacy: turning on block-granular KV accounting
// with the full profile-derived capacity must be byte-identical to the
// legacy token-counting path — the block pool only changes behaviour when
// it actually runs out of blocks.
func TestKVUnboundedMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	legacy := kvRun(t, nil, 900)
	blocks := kvRun(t, func(o *Options) { o.KVBlockTokens = 16 }, 900)
	if a, b := kvFingerprint(legacy), kvFingerprint(blocks); a != b {
		t.Errorf("block accounting at full capacity diverged from legacy:\nlegacy %s\nblocks %s", a, b)
	}
	if blocks.KVPreemptions != 0 || blocks.KVRejected != 0 {
		t.Errorf("full-capacity run preempted %d / rejected %d sequences; want none",
			blocks.KVPreemptions, blocks.KVRejected)
	}
}

// TestKVPressurePreempts: shrinking the KV pool far below the working set
// must surface as preemptions (decode sequences evicted and re-prefilled)
// while the accounting identities keep holding — pressure degrades
// service, it must never lose requests.
func TestKVPressurePreempts(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := kvRun(t, func(o *Options) {
		o.KVBlockTokens = 16
		o.KVCapacityFactor = 0.002
	}, 900)
	if res.KVPreemptions == 0 {
		t.Error("no preemptions under a 0.2% KV capacity factor")
	}
	if res.Completed == 0 {
		t.Error("nothing completed under KV pressure")
	}
	full := kvRun(t, func(o *Options) { o.KVBlockTokens = 16 }, 900)
	if res.SLOAttainment() > full.SLOAttainment() {
		t.Errorf("KV pressure improved SLO attainment: %.3f squeezed vs %.3f full",
			res.SLOAttainment(), full.SLOAttainment())
	}
}

// TestKVTierSwapsUnderPressure: the spill tier at the same starved
// capacity must resolve pressure by swapping — swap-outs appear, and the
// recompute count drops against the recompute-only run because most
// victims take the tier path instead. The invariant checks inside kvRun
// cover the tier counter algebra.
func TestKVTierSwapsUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	squeeze := func(o *Options) {
		o.KVBlockTokens = 16
		o.KVCapacityFactor = 0.002
	}
	none := kvRun(t, squeeze, 900)
	if none.KVSwapOuts != 0 || none.KVSwapIns != 0 || none.KVTierEvictions != 0 {
		t.Fatalf("tierless run recorded swap traffic: %d out, %d in, %d evicted",
			none.KVSwapOuts, none.KVSwapIns, none.KVTierEvictions)
	}
	tiered := kvRun(t, func(o *Options) {
		squeeze(o)
		o.KVTier = KVTierCPU
	}, 900)
	if tiered.KVSwapOuts == 0 {
		t.Fatal("tiered run under a 0.2% capacity factor never swapped")
	}
	if tiered.KVRecomputes >= none.KVRecomputes {
		t.Errorf("tier did not displace recomputes: %d tiered vs %d recompute-only",
			tiered.KVRecomputes, none.KVRecomputes)
	}
	if tiered.Completed == 0 {
		t.Error("nothing completed under tiered pressure")
	}
}

// TestKVTierNoneBitIdentical: KVTierNone is the default and must be a
// true no-op — explicitly setting it (and a swap policy, which is inert
// without a tier) leaves the pressured event stream byte-identical.
func TestKVTierNoneBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	squeeze := func(o *Options) {
		o.KVBlockTokens = 16
		o.KVCapacityFactor = 0.002
	}
	base := kvRun(t, squeeze, 900)
	explicit := kvRun(t, func(o *Options) {
		squeeze(o)
		o.KVTier = KVTierNone
		o.KVSwapPolicy = KVSwapAlways
	}, 900)
	if a, b := kvFingerprint(base), kvFingerprint(explicit); a != b {
		t.Errorf("explicit tier=none diverged from default:\nbase     %s\nexplicit %s", a, b)
	}
}

// TestPrefixCacheReducesTTFT: requests sharing a prompt group must hit
// the prefix cache, and skipping the shared prefill must show up as lower
// time to first token against the identical ungrouped trace.
func TestPrefixCacheReducesTTFT(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	repo, _ := fixtures(t)
	base := trace.OpenSourceHour(testPeakRPS, 11).Window(0, 900)
	grouped := trace.GroupPrompts(0, 900, 0.9, 2, 5)(base)
	opts, _ := SystemByName("multipool")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	opts.KVBlockTokens = 16
	opts.KVPrefixCache = true

	plain := RunWithRepo(base, opts, repo)
	cached := RunWithRepo(grouped, opts, repo)
	for name, r := range map[string]*Result{"plain": plain, "cached": cached} {
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if plain.KVPrefixHits != 0 {
		t.Errorf("ungrouped trace recorded %d prefix hits", plain.KVPrefixHits)
	}
	if cached.KVPrefixHits == 0 {
		t.Fatal("grouped trace recorded no prefix hits")
	}
	if pm, cm := plain.TTFT.Mean(), cached.TTFT.Mean(); cm >= pm {
		t.Errorf("prefix cache did not reduce mean TTFT: %.4fs plain vs %.4fs cached (hits %d)",
			pm, cm, cached.KVPrefixHits)
	}
}

// TestDisaggServes: prefill/decode disaggregation completes requests via
// KV handoffs — every multi-token request crosses pools exactly once —
// with conservation intact, and the whole pipeline is deterministic and
// StepJobs-independent (prefill and decode twins share one group clock,
// so parallel stepping must not perturb the event order).
func TestDisaggServes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	run := func(jobs int) *Result {
		return kvRun(t, func(o *Options) {
			o.Disagg = true
			o.StepJobs = jobs
		}, 600)
	}
	res := run(1)
	if res.Handoffs == 0 {
		t.Fatal("disaggregated run recorded no KV handoffs")
	}
	if res.Completed == 0 {
		t.Fatal("disaggregated run completed nothing")
	}
	if res.Handoffs > res.Requests {
		t.Errorf("handoffs %d exceed routed requests %d (a request hands off at most once)",
			res.Handoffs, res.Requests)
	}
	par := run(4)
	if a, b := kvFingerprint(res), kvFingerprint(par); a != b {
		t.Errorf("disagg not StepJobs-independent:\njobs=1 %s\njobs=4 %s", a, b)
	}
	if res.Handoffs != par.Handoffs {
		t.Errorf("handoffs differ across StepJobs: %d vs %d", res.Handoffs, par.Handoffs)
	}
}

// TestLiveKVStats: the live session surface reports KV occupancy from the
// running engines and the run counters; fluid mode stays all-zero.
func TestLiveKVStats(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	repo, _ := fixtures(t)
	tr := trace.OpenSourceHour(testPeakRPS, 11).Window(0, 300)
	opts, _ := SystemByName("multipool")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	opts.KVBlockTokens = 16

	l := NewLive(tr, opts, repo)
	l.AdvanceTo(120)
	st := l.KVStats()
	if st.TotalBlocks == 0 {
		t.Error("no KV capacity reported by live engines")
	}
	if st.UsedBlocks < 0 || st.UsedBlocks > st.TotalBlocks {
		t.Errorf("KV occupancy out of range: %d used of %d", st.UsedBlocks, st.TotalBlocks)
	}
	res := l.Finish()
	if err := res.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}

	opts.Fidelity = FidelityFluid
	opts.KVBlockTokens = 0
	fl := NewLive(tr, opts, repo)
	fl.AdvanceTo(120)
	if st := fl.KVStats(); st != (KVStats{}) {
		t.Errorf("fluid KVStats not zero: %+v", st)
	}
}

// TestLiveSnapshotRoundTripsKV: forking a live event run with KV pressure
// mid-flight (queues, block pool, preempted sequences all captured) and
// finishing both must land on byte-identical results — the snapshot
// carries the complete KV state.
func TestLiveSnapshotRoundTripsKV(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	repo, _ := fixtures(t)
	tr := trace.OpenSourceHour(testPeakRPS, 11).Window(0, 600)
	opts, _ := SystemByName("multipool")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	opts.KVBlockTokens = 16
	opts.KVCapacityFactor = 0.002

	l := NewLive(tr, opts, repo)
	l.AdvanceTo(300)
	fork := l.Snapshot().Resume()
	l.AdvanceTo(600)
	fork.AdvanceTo(600)
	a, b := l.Finish(), fork.Finish()
	if fa, fb := kvFingerprint(a), kvFingerprint(b); fa != fb {
		t.Errorf("fork diverged from original:\norig %s\nfork %s", fa, fb)
	}
	if a.KVPreemptions != b.KVPreemptions || a.KVPrefixHits != b.KVPrefixHits {
		t.Errorf("KV counters diverged: preempt %d/%d hits %d/%d",
			a.KVPreemptions, b.KVPreemptions, a.KVPrefixHits, b.KVPrefixHits)
	}
	if a.KVPreemptions == 0 {
		t.Error("test exercised no preemptions; shrink KVCapacityFactor")
	}
}

// TestLiveSnapshotRoundTripsTier: the fork test again with a spill tier
// active — the snapshot must carry tier occupancy, the spilled queues, and
// any in-flight swap transfer, or the fork's swap counters drift. The live
// stats surface must also report the tier gauges.
func TestLiveSnapshotRoundTripsTier(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	repo, _ := fixtures(t)
	tr := trace.OpenSourceHour(testPeakRPS, 11).Window(0, 600)
	opts, _ := SystemByName("multipool")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	opts.KVBlockTokens = 16
	opts.KVCapacityFactor = 0.002
	opts.KVTier = KVTierCPU

	l := NewLive(tr, opts, repo)
	l.AdvanceTo(300)
	st := l.KVStats()
	if st.TierTotalBlocks == 0 {
		t.Error("no tier capacity reported by live engines")
	}
	if st.TierUsedBlocks < 0 || st.TierUsedBlocks > st.TierTotalBlocks {
		t.Errorf("tier occupancy out of range: %d used of %d", st.TierUsedBlocks, st.TierTotalBlocks)
	}
	fork := l.Snapshot().Resume()
	l.AdvanceTo(600)
	fork.AdvanceTo(600)
	a, b := l.Finish(), fork.Finish()
	for name, r := range map[string]*Result{"orig": a, "fork": b} {
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s invariants: %v", name, err)
		}
	}
	if fa, fb := kvFingerprint(a), kvFingerprint(b); fa != fb {
		t.Errorf("tiered fork diverged from original:\norig %s\nfork %s", fa, fb)
	}
	if a.KVSwapOuts == 0 {
		t.Error("test exercised no swaps; shrink KVCapacityFactor")
	}
}
