package core

import (
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// TestTickLoopAllocationFree asserts the tentpole: once warmed up, the
// steady-state tick loop performs zero heap allocations per tick. The
// static baseline exercises routing, placement, latency sampling, energy
// integration, and every metrics sink; ScaleFreq adds the DVFS instance
// manager. Neither runs epoch reconfigurations inside the measured window.
//
// A scenario-style event hook is installed: one price event fires during
// warm-up and another stays pending forever, so the measured window pays
// the Timeline's real steady-state cost (a bounds check against the next
// pending event) and it must still be zero allocations.
func TestTickLoopAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	for _, system := range []string{"singlepool", "scalefreq"} {
		r, tr := fixtures(t)
		tr = tr.Window(0, 1800) // 360 ticks
		opts, _ := SystemByName(system)
		opts.Seed = 7
		opts.WarmLoad = warmConv
		opts.Hook = NewTimeline([]TimelineEvent{
			{At: 50, Do: func(ctl *Controls) { ctl.SetPriceMult(1.5) }},
			{At: 400, Do: func(ctl *Controls) { ctl.SetPriceMult(1) }},
			{At: 1e9, Do: func(ctl *Controls) { ctl.SetPriceMult(2) }}, // never reached
		})
		sm := newSimulation(tr, opts, r)
		tick := 0
		for ; tick < 200; tick++ { // warm caches, buffers, and rate EWMAs
			sm.step(tick)
		}
		avg := testing.AllocsPerRun(100, func() {
			sm.step(tick)
			tick++
		})
		if avg != 0 {
			t.Errorf("%s: steady-state tick allocates %v per tick, want 0", system, avg)
		}
		sm.finish()
	}
}

// TestInstancesCompacted is the dead-instance-leak regression test:
// resizePool and reshardPool park instances stateOff, and before
// compaction those corpses stayed in Pool.Instances forever, so a run
// with many scale-in epochs scanned an ever-growing slice. The pool
// slices must stay bounded by the live fleet, not by reconfiguration
// history.
func TestInstancesCompacted(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, _ := fixtures(t)
	// A rapidly oscillating load with short epochs forces many
	// scale-out/in and re-shard cycles.
	tr := trace.OpenSourceHour(testPeakRPS, 11)
	opts := DynamoLLM()
	opts.Seed = 7
	opts.WarmLoad = warmConv
	opts.ClusterEpoch = 5 * simclock.Minute
	opts.PoolEpoch = simclock.Minute
	sm := newSimulation(tr, opts, r)
	maxLen := 0
	churn := 0
	for tick := 0; tick < sm.nTicks; tick++ {
		sm.step(tick)
		for _, p := range sm.c.pools {
			if n := len(p.Instances); n > maxLen {
				maxLen = n
			}
			for _, in := range p.Instances {
				if in.state == stateOff {
					t.Fatal("dead instance survived compaction")
				}
			}
		}
	}
	sm.finish()
	churn = sm.res.ScaleIns + sm.res.ScaleOuts + sm.res.Reshards
	if churn < 20 {
		t.Fatalf("not enough reconfiguration churn to exercise compaction (%d events)", churn)
	}
	// The fleet ceiling is 12 servers; a pool can fragment one node into
	// at most 4 TP2 instances plus transients, so anything near the churn
	// count means the leak is back.
	if maxLen > 64 {
		t.Errorf("pool instance slice grew to %d entries over %d reconfigurations; dead instances are leaking", maxLen, churn)
	}
	if sm.res.SLOAttainment() < 0.5 {
		t.Errorf("sanity: attainment collapsed to %v", sm.res.SLOAttainment())
	}
}

// TestFreqChangesSurviveCompaction: frequency-set counts of compacted
// instances must still be reported.
func TestFreqChangesSurviveCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "dynamollm")
	if res.ScaleIns == 0 {
		t.Skip("run produced no scale-ins")
	}
	if res.FreqChanges == 0 {
		t.Error("FreqChanges lost across compaction")
	}
}
