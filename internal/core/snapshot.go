package core

import (
	"dynamollm/internal/engine"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// LiveSnapshot is a frozen, self-contained copy of a live simulation at a
// tick boundary: cluster topology, controller state, predictor and RNG
// positions, result aggregates, and — under FidelityEvent — every
// instance engine's queues, KV state, energy meter, and in-flight
// iteration. Resume forks a fresh Live from it; the snapshot itself is
// immutable, so one snapshot can seed any number of forks while the
// original session keeps running, and a fork advanced over the same
// arrivals produces results bit-identical to the original advanced
// uninterrupted.
//
// Two callback fields are shared by reference rather than deep-copied:
// Options.Hook and Options.Observer. A stateful hook (scenario Timeline)
// or observer must not serve a fork and the original at once — either
// install per-fork instances on the resumed run or call Headless first
// (the serving session's Checkpoint does the latter).
type LiveSnapshot struct {
	sm       *simulation
	ticks    int
	finished bool
}

// Snapshot captures the live simulation's full state. Valid between
// AdvanceTo calls (the simulation sits at a whole-tick boundary there —
// every engine is quiescent and all shared accounting is settled).
func (l *Live) Snapshot() *LiveSnapshot {
	return &LiveSnapshot{sm: cloneSimulation(l.sm), ticks: l.ticks, finished: l.finished}
}

// Ticks reports the number of completed ticks the snapshot captured.
func (s *LiveSnapshot) Ticks() int { return s.ticks }

// Boundary returns the virtual time the snapshot was taken at.
func (s *LiveSnapshot) Boundary() simclock.Time {
	return simclock.Time(float64(s.ticks) * s.sm.opts.Tick)
}

// Headless strips the shared tick hook and request observer from the
// snapshot (in place; returns the receiver for chaining), so forks resume
// without the original session's callbacks. Use it whenever the hook or
// observer carries per-run state that the original run is still driving.
func (s *LiveSnapshot) Headless() *LiveSnapshot {
	scrubCallbacks(s.sm)
	return s
}

// Resume forks a new Live from the snapshot. The fork owns all of its
// state: advancing it never perturbs the snapshot or any other fork.
func (s *LiveSnapshot) Resume() *Live {
	return &Live{sm: cloneSimulation(s.sm), ticks: s.ticks, finished: s.finished}
}

// scrubCallbacks clears the by-reference callback fields in every copy of
// the options a simulation holds.
func scrubCallbacks(sm *simulation) {
	sm.opts.Hook, sm.opts.Observer = nil, nil
	sm.s.opts.Hook, sm.s.opts.Observer = nil, nil
	sm.c.opts.Hook, sm.c.opts.Observer = nil, nil
	sm.res.Opts.Hook, sm.res.Opts.Observer = nil, nil
}

// cloneSimulation deep-copies a simulation at a tick boundary. Everything
// mutable is copied; immutable structures (the profile, the pooling map,
// model catalogs) are shared. The shared capacity/steady caches are NOT
// copied — the clone starts with empty caches, which is behaviourally
// identical because cache values are pure deterministic functions of
// their keys; recomputation yields the same bits.
func cloneSimulation(sm *simulation) *simulation {
	s := sm.s

	rng := *s.rng
	ns := &sharedState{
		opts:        s.opts,
		prof:        s.prof, // immutable after profiling
		loadPred:    s.loadPred.Clone(),
		lenPred:     s.lenPred.Clone(),
		rng:         &rng,
		nextID:      s.nextID,
		curTick:     s.curTick,
		priceMult:   s.priceMult,
		sloMult:     s.sloMult,
		submitDelay: s.submitDelay,
	}

	c := sm.c
	nc := &Cluster{
		opts:            c.opts,
		shared:          ns,
		pooling:         c.pooling, // immutable after construction
		tracked:         c.tracked,
		retiredFreqSets: c.retiredFreqSets,
	}
	instMap := make(map[*Instance]*Instance)
	nc.pools = make([]*Pool, len(c.pools))
	for i, p := range c.pools {
		np := &Pool{}
		*np = *p // Classes aliases the immutable pooling tables: share
		np.Instances = make([]*Instance, len(p.Instances))
		for j, in := range p.Instances {
			np.Instances[j] = cloneInstance(in)
			instMap[in] = np.Instances[j]
		}
		nc.pools[i] = np
	}

	nr := cloneResult(sm.res)

	nsm := &simulation{
		c:                nc,
		s:                ns,
		res:              nr,
		tr:               append(trace.Trace(nil), sm.tr...),
		opts:             sm.opts,
		nTicks:           sm.nTicks,
		idx:              sm.idx,
		lastPoolEpoch:    sm.lastPoolEpoch,
		lastClusterEpoch: sm.lastClusterEpoch,
		injected:         append([]trace.Entry(nil), sm.injected...),
		injIdx:           sm.injIdx,
		arrivals:         sm.arrivals,
		retryQ:           append([]retryEntry(nil), sm.retryQ...),
		ctl: &Controls{
			c: nc, s: ns, res: nr,
			failedGPUs: append([]int(nil), sm.ctl.failedGPUs...),
		},
		// Tick-scoped scratch: stale outside a step; fresh storage sized
		// like reserve() so the clone's steady state does not re-grow it.
		assigns: make([]assign, len(sm.assigns)),
		reqs:    make([]workload.Request, 0, cap(sm.reqs)),
	}

	if eb, ok := s.backend.(*eventBackend); ok {
		ns.backend = eb.cloneFor(nc, nr, instMap)
	} else {
		ns.backend = &fluidBackend{res: nr}
	}
	ns.backend.bind(nsm)
	return nsm
}

// cloneInstance copies one instance. The memoized capacity/steady/marginal
// caches are value state keyed by cloned inputs, so they stay valid;
// marginalEntryC points into the shared immutable profile.
func cloneInstance(in *Instance) *Instance {
	ni := &Instance{}
	*ni = *in
	ni.freqCtl = in.freqCtl.Clone()
	return ni
}

// cloneFor copies the event backend's state onto a cloned cluster: each
// live engine round-trips through engine.Snapshot/FromSnapshot onto a
// fresh clock (private normally, one shared clock per pool group under
// disaggregation), in-flight KV transfers are re-scheduled against the
// cloned engines, and undelivered submissions are remapped to the cloned
// instances.
func (b *eventBackend) cloneFor(nc *Cluster, nr *Result, instMap map[*Instance]*Instance) *eventBackend {
	nb := newEventBackend(nc, nr)
	nb.now = b.now
	if n := len(b.groupClocks); n > 0 {
		nb.groupClocks = make([]*simclock.Clock, n)
		for gi, clk := range b.groupClocks {
			if clk == nil {
				continue
			}
			nclk := simclock.New()
			nclk.RunUntil(b.now)
			nb.groupClocks[gi] = nclk
		}
	}
	nb.engines = make([]*instEngine, len(b.engines))
	for id, ie := range b.engines {
		if ie == nil {
			continue
		}
		var clk *simclock.Clock
		if nc.opts.Disagg {
			clk = nb.groupClocks[ie.pool%nc.pooling.NumPools]
		} else {
			clk = simclock.New()
			clk.RunUntil(b.now)
		}
		nie := &instEngine{
			eng:        engine.FromSnapshot(ie.eng.Snapshot(), clk),
			clock:      clk,
			pool:       ie.pool,
			lastJ:      ie.lastJ,
			cls:        ie.cls,
			lastPre:    ie.lastPre,
			lastHits:   ie.lastHits,
			lastRej:    ie.lastRej,
			lastHand:   ie.lastHand,
			handoffsIn: ie.handoffsIn,

			lastSwapOut:   ie.lastSwapOut,
			lastSwapIn:    ie.lastSwapIn,
			lastRecomp:    ie.lastRecomp,
			lastTierEvict: ie.lastTierEvict,
		}
		nb.wire(nie)
		nb.engines[id] = nie
		// Re-arm in-flight KV transfers: their arrival events live on the
		// original clock, not in any engine snapshot, so the clone must
		// re-schedule them (the fork would otherwise silently drop every
		// handoff that was mid-transfer at the cut).
		for _, t := range ie.transfers {
			if t.done {
				continue
			}
			nt := &kvTransfer{at: t.at, req: t.req, ctx: t.ctx}
			nie.transfers = append(nie.transfers, nt)
			te := nie
			clk.At(nt.at, func() {
				if nt.done {
					return
				}
				nt.done = true
				te.eng.SubmitDecode(nt.req, nt.ctx)
			})
		}
	}
	if len(b.pending) > 0 {
		nb.pending = make([]pendingSub, 0, len(b.pending))
		for _, p := range b.pending {
			nin := instMap[p.in]
			if nin == nil {
				// The instance was compacted out of its pool (stateOff)
				// while a submission was still in transit; the old code
				// kept it alive through the closure. Clone the orphan so
				// delivery re-resolves against the cloned pool exactly as
				// the original would.
				nin = cloneInstance(p.in)
				instMap[p.in] = nin
			}
			nb.pending = append(nb.pending, pendingSub{at: p.at, in: nin, req: p.req})
		}
	}
	return nb
}

// cloneResult deep-copies the run aggregates: distributions, series, and
// the per-pool series maps (plain counters ride along in the value copy).
func cloneResult(r *Result) *Result {
	nr := &Result{}
	*nr = *r
	nr.TTFT = r.TTFT.Clone()
	nr.TBT = r.TBT.Clone()
	for i := range r.ClassTTFT {
		if r.ClassTTFT[i] != nil {
			nr.ClassTTFT[i] = r.ClassTTFT[i].Clone()
		}
		if r.ClassTBT[i] != nil {
			nr.ClassTBT[i] = r.ClassTBT[i].Clone()
		}
	}
	nr.ClusterPowerW = r.ClusterPowerW.Clone()
	nr.GPUPowerW = r.GPUPowerW.Clone()
	nr.PowerSeries = r.PowerSeries.Clone()
	nr.FreqSeries = r.FreqSeries.Clone()
	nr.EnergySeries = r.EnergySeries.Clone()
	nr.PoolFreqSeries = cloneSeriesByClass(r.PoolFreqSeries)
	nr.PoolLoadSeries = cloneSeriesByClass(r.PoolLoadSeries)
	nr.ShardSeries = cloneSeriesByTP(r.ShardSeries)
	nr.PoolShardSeries = make(map[workload.Class]map[model.TP]*metrics.Series, len(r.PoolShardSeries))
	//dynamolint:order-independent map-to-map rebuild; the result is keyed, not ordered
	for cls, byTP := range r.PoolShardSeries {
		nr.PoolShardSeries[cls] = cloneSeriesByTP(byTP)
	}
	return nr
}

func cloneSeriesByClass(m map[workload.Class]*metrics.Series) map[workload.Class]*metrics.Series {
	out := make(map[workload.Class]*metrics.Series, len(m))
	//dynamolint:order-independent map-to-map rebuild; the result is keyed, not ordered
	for k, s := range m {
		out[k] = s.Clone()
	}
	return out
}

func cloneSeriesByTP(m map[model.TP]*metrics.Series) map[model.TP]*metrics.Series {
	out := make(map[model.TP]*metrics.Series, len(m))
	//dynamolint:order-independent map-to-map rebuild; the result is keyed, not ordered
	for k, s := range m {
		out[k] = s.Clone()
	}
	return out
}
