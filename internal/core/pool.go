package core

import (
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/profile"
	"dynamollm/internal/reshard"
	"dynamollm/internal/simclock"
	"dynamollm/internal/solver"
	"dynamollm/internal/workload"
)

// Pooling maps the nine request classes onto NumPools pools (Fig. 13
// sweeps the pool count; 9 is the paper's choice).
//
// For fewer than nine pools, classes are merged along the request-size
// order, so short requests share pools only with other short requests and
// the merge target is always the pool serving longer requests (§III-B).
// For more than nine, the heaviest classes get duplicate pools, which
// fragments resources exactly as §V-C observes.
type Pooling struct {
	NumPools int
	// classPool maps each class to its primary pool.
	classPool [workload.NumClasses]int
	// poolClasses lists the classes each pool serves.
	poolClasses [][]workload.Class
	// duplicates: extra pools serving the same class as another pool.
	duplicateOf []int
	// classOptions precomputes, per class, the primary pool plus its
	// duplicates — PoolFor is on the per-request hot path and must not
	// rebuild this list.
	classOptions [workload.NumClasses][]int
}

// sizeOrder lists classes from smallest to largest total work.
var sizeOrder = []workload.Class{
	workload.SS, workload.SM, workload.MS, workload.MM,
	workload.SL, workload.LS, workload.ML, workload.LM, workload.LL,
}

// NewPooling builds the class-to-pool mapping.
func NewPooling(n int) *Pooling {
	if n <= 0 {
		n = 1
	}
	p := &Pooling{NumPools: n}
	base := n
	if base > workload.NumClasses {
		base = workload.NumClasses
	}
	p.poolClasses = make([][]workload.Class, n)
	p.duplicateOf = make([]int, n)
	for i := range p.duplicateOf {
		p.duplicateOf[i] = -1
	}
	// Contiguous partition of sizeOrder into `base` groups.
	for i, cls := range sizeOrder {
		pool := i * base / len(sizeOrder)
		p.classPool[cls] = pool
		p.poolClasses[pool] = append(p.poolClasses[pool], cls)
	}
	// Extra pools duplicate the heaviest-traffic classes (ML, MM, LL, ...).
	heavy := []workload.Class{workload.ML, workload.MM, workload.LL, workload.SM, workload.LM, workload.SL, workload.SS}
	for extra := 0; extra < n-base; extra++ {
		cls := heavy[extra%len(heavy)]
		pool := base + extra
		p.duplicateOf[pool] = p.classPool[cls]
		p.poolClasses[pool] = []workload.Class{cls}
	}
	for cls := range p.classOptions {
		primary := p.classPool[cls]
		options := []int{primary}
		for pool, dup := range p.duplicateOf {
			if dup == primary {
				options = append(options, pool)
			}
		}
		p.classOptions[cls] = options
	}
	return p
}

// PoolFor returns the pool serving a class; when duplicates exist the
// choice alternates via the provided counter to split load.
func (p *Pooling) PoolFor(cls workload.Class, counter uint64) int {
	options := p.classOptions[cls]
	return options[int(counter)%len(options)]
}

// Largest returns the largest (by size order) class a pool serves; merged
// pools are sized for their biggest member.
func (p *Pooling) Largest(pool int) workload.Class {
	classes := p.poolClasses[pool]
	best := classes[0]
	rank := func(c workload.Class) int {
		for i, x := range sizeOrder {
			if x == c {
				return i
			}
		}
		return 0
	}
	for _, c := range classes {
		if rank(c) > rank(best) {
			best = c
		}
	}
	return best
}

// NextLarger returns the pool that serves the next-larger request type
// (the fragmentation spill-over target, §IV-B), or -1 for the largest.
func (p *Pooling) NextLarger(pool int) int {
	largest := p.Largest(pool)
	idx := -1
	for i, c := range sizeOrder {
		if c == largest {
			idx = i
		}
	}
	for i := idx + 1; i < len(sizeOrder); i++ {
		t := p.classPool[sizeOrder[i]]
		if t != pool {
			return t
		}
	}
	return -1
}

// --- Instance -------------------------------------------------------------------

// instState is the lifecycle of one inference-server instance.
type instState int

const (
	stateProvisioning instState = iota // VM booting, weights loading (Table V)
	stateActive
	stateResharding // weights moving / engine sync (§IV-C)
	stateOff
)

// Instance is one inference server: an engine on TP GPUs with a DVFS
// controller, plus the bookkeeping the instance manager needs.
type Instance struct {
	ID    int
	Pool  int
	TP    model.TP
	state instState
	// readyAt is when provisioning/resharding completes.
	readyAt simclock.Time
	// freqCtl models nvidia-smi with or without the resident monitor.
	freqCtl *gpu.FreqController

	// rate is the EWMA of assigned request rate (req/s).
	rate float64
	// mixIn/mixOut are EWMAs of assigned request shapes.
	mixIn, mixOut float64
	// backlog is requests queued beyond engine capacity.
	backlog float64
	// throughputFactor scales capacity during re-sharding transitions.
	throughputFactor float64
	// slowFactor models an injected straggler: the clock the hardware
	// actually achieves as a fraction of the commanded frequency (thermal
	// throttling, a flaky NVLink, a noisy neighbour). 1 = healthy. Unlike
	// throughputFactor it is NOT reset when lifecycle timers settle — it
	// persists until Controls.RepairStragglers clears it.
	slowFactor float64
	// capEst is the measured capacity estimate (req/s) derived from the
	// engine's utilization at the current mix; it replaces the snapped
	// per-class profile capacity once the instance has seen traffic.
	capEst float64
	// tickAssigned counts requests placed on this instance in the
	// current tick, so placement sees intra-tick load immediately.
	tickAssigned float64
	// emergency notes an active emergency episode (§IV-D).
	emergency bool

	// Hot-path memoization. The tick loop queries capacity, marginal
	// power, and the steady state many times per tick for inputs that
	// only change on transitions (new mix EWMA, frequency change,
	// re-shard, rate-bucket move), so each instance caches its last
	// answer and revalidates by key comparison — the shared caches are
	// consulted only when a key changes.

	// mixB* are the geometric shape buckets of the mix EWMAs; mixBValid
	// is cleared whenever observeMix moves them.
	mixInB, mixOutB int
	mixBValid       bool
	// capKeyC/capC memoize capacity() for the last (TP, freq, shape) key.
	capKeyC  capKey
	capC     float64
	capValid bool
	// stKeyC/stC memoize instanceSteady for the last steady key.
	stKeyC  steadyKey
	stC     perfmodel.Steady //snapshot:ignore memo cache keyed by cloned value inputs; stays valid after the wholesale copy
	stValid bool
	// marginalC/marginalEntryC memoize pickInstance's marginal-power
	// term, which depends only on tick-stable inputs (rate, mix, freq);
	// marginalTick is the 1-based tick it was computed for (0 = never).
	marginalC      float64
	marginalEntryC *profile.Entry //snapshot:ignore points into the shared immutable profile repository
	marginalTick   int
}

func newInstance(id, pool int, tp model.TP, resident bool) *Instance {
	return &Instance{
		ID:               id,
		Pool:             pool,
		TP:               tp,
		state:            stateActive,
		freqCtl:          gpu.NewFreqController(resident),
		throughputFactor: 1,
		slowFactor:       1,
	}
}

// effFreq is the clock the instance actually achieves: the controller's
// commanded frequency degraded by any injected straggler factor. Healthy
// instances (the steady state) pay one comparison. The degraded value is
// deliberately not snapped back onto the DVFS ladder — the perf model
// handles continuous clocks, and snapping would erase degradation near
// the ladder floor. Cache cardinality stays bounded because slowFactor
// takes only the few values fault scenarios inject.
func (in *Instance) effFreq() gpu.Freq {
	f := in.freqCtl.Current()
	if in.slowFactor == 1 || in.slowFactor <= 0 {
		return f
	}
	return gpu.Freq(float64(f) * in.slowFactor)
}

// Active reports whether the instance can serve right now.
func (in *Instance) Active(now simclock.Time) bool {
	switch in.state {
	case stateActive:
		return true
	case stateResharding:
		// During a soft transition the old shards keep serving at
		// reduced throughput; a hard transition sets factor 0.
		return in.throughputFactor > 0
	default:
		return false
	}
}

// settle advances lifecycle timers.
func (in *Instance) settle(now simclock.Time) {
	if (in.state == stateProvisioning || in.state == stateResharding) && now >= in.readyAt {
		in.state = stateActive
		in.throughputFactor = 1
	}
}

// observeMix folds newly assigned requests into the shape EWMAs.
func (in *Instance) observeMix(inTok, outTok float64, n float64) {
	if n <= 0 {
		return
	}
	in.mixBValid = false
	const a = 0.2
	if in.mixIn == 0 {
		in.mixIn, in.mixOut = inTok, outTok
		return
	}
	in.mixIn = a*inTok + (1-a)*in.mixIn
	in.mixOut = a*outTok + (1-a)*in.mixOut
}

// mixBuckets returns the geometric shape buckets of the mix EWMAs,
// recomputing the logs only when observeMix has moved the EWMAs. Mix
// fields assigned directly at construction are picked up on first use.
func (in *Instance) mixBuckets() (int, int) {
	if !in.mixBValid {
		in.mixInB = shapeBucket(in.mixIn, 8)
		in.mixOutB = shapeBucket(in.mixOut, 4)
		in.mixBValid = true
	}
	return in.mixInB, in.mixOutB
}

// capacity returns the instance's max sustainable rate (req/s) for its
// current mix and configuration, scaled by any transition throttling. It
// is the SLO-constrained capacity of the instance's live request mix,
// against a smoothly interpolated TTFT target so mixed pools do not see
// capacity cliffs when their average crosses a class boundary. The result
// is memoized until TP, frequency, or a shape bucket changes.
func (in *Instance) capacity(s *sharedState) float64 {
	inB, outB := in.mixBuckets()
	key := capKey{tp: in.TP, freq: in.effFreq(), inB: inB, outB: outB}
	if !in.capValid || key != in.capKeyC {
		in.capKeyC = key
		in.capC = s.shapeCapacityKey(key)
		in.capValid = true
	}
	return in.capC * in.throughputFactor
}

// --- Pool -----------------------------------------------------------------------

// PoolRole is a pool's place in a disaggregated deployment: unified pools
// serve requests end to end (the default); under Options.Disagg each base
// pool becomes prefill-only and gains a decode-only twin that finishes
// generation after the KV handoff.
type PoolRole int

const (
	RoleUnified PoolRole = iota
	RolePrefill
	RoleDecode
)

// String returns the role's display name.
func (r PoolRole) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	}
	return "unified"
}

// Pool groups instances serving one request type (or a merged set).
type Pool struct {
	Index     int
	Classes   []workload.Class
	RepClass  workload.Class // largest member class, used for cold sizing
	Role      PoolRole
	Instances []*Instance
	// spillFrac is the fraction of arrivals forwarded to the next-larger
	// pool this epoch (fragmentation handling, §IV-B).
	spillFrac float64
	// targetGPUs is the cluster manager's budget for this pool.
	targetGPUs int
	// arrivalsThisTick counts routed requests for rate estimation.
	arrivalsThisTick int
	// observedSince is when the pool first saw traffic (zero = never);
	// re-sharding waits for rate estimates to settle.
	observedSince simclock.Time
	// lastEmergencyReshard rate-limits out-of-band capacity expansion.
	lastEmergencyReshard simclock.Time
	// emergencyFlag is set by instance managers to escalate to the pool
	// manager (§IV-D).
	emergencyFlag bool
	// merged marks a pool whose load is forwarded to the next-larger
	// pool to avoid fragmentation at low demand (§III-B, §IV-B).
	merged bool
	// rrCounter spreads round-robin decisions.
	rrCounter uint64
}

// gpusInUse sums GPUs of non-off instances.
func (p *Pool) gpusInUse() int {
	n := 0
	for _, in := range p.Instances {
		if in.state != stateOff {
			n += in.TP.GPUs()
		}
	}
	return n
}

// activeInstances returns instances able to serve at t.
func (p *Pool) activeInstances(t simclock.Time) []*Instance {
	var out []*Instance
	for _, in := range p.Instances {
		if in.Active(t) {
			out = append(out, in)
		}
	}
	return out
}

// repClass returns the class used to size and profile the pool: its
// largest member class (conservative for merged pools). Decode twins sit
// past the pooling tables (their Index is base + NumPools), so they
// answer from the RepClass copied off their base pool.
func (p *Pool) repClass(pooling *Pooling) workload.Class {
	if p.Index >= pooling.NumPools {
		return p.RepClass
	}
	return pooling.Largest(p.Index)
}

// pickInstance implements the pool manager's energy-aware placement
// (§IV-D): choose the instance whose predicted energy increase is
// smallest while staying within per-instance throughput. Returns nil when
// every instance is saturated. Called once per pool hop per routed
// request, so it iterates the pool directly and never allocates.
func (p *Pool) pickInstance(s *sharedState, now simclock.Time) *Instance {
	var best *Instance
	bestScore := math.Inf(1)
	anyActive := false
	for _, in := range p.Instances {
		if !in.Active(now) {
			continue
		}
		anyActive = true
		cap := in.capacity(s)
		if cap <= 0 {
			continue
		}
		headroom := cap - in.effRate(s.opts.Tick)
		if headroom <= 0 {
			continue
		}
		// Marginal power of adding one unit of load: slope of the
		// profile's power curve at the current rate (tick-stable, cached).
		marginal, ok := in.marginalPower(s)
		if !ok {
			continue
		}
		// Normalize by headroom so nearly-full instances are less
		// attractive (keeps tail latency in check).
		score := marginal + 0.05*in.effRate(s.opts.Tick)/cap
		if score < bestScore {
			best, bestScore = in, score
		}
	}
	if best == nil && anyActive {
		// All saturated: least loaded relative to capacity.
		for _, in := range p.Instances {
			if !in.Active(now) {
				continue
			}
			cap := in.capacity(s)
			if cap <= 0 {
				continue
			}
			score := in.effRate(s.opts.Tick) / cap
			if score < bestScore {
				best, bestScore = in, score
			}
		}
	}
	return best
}

// marginalPower returns the marginal power of adding one unit of load to
// the instance. Its inputs (rate, mix, frequency) are constant while a
// tick's arrivals are being routed, so the value is memoized per tick;
// tick 0 (direct controller tests) always recomputes.
func (in *Instance) marginalPower(s *sharedState) (float64, bool) {
	if s.curTick != 0 && in.marginalTick == s.curTick {
		return in.marginalC, in.marginalEntryC != nil
	}
	cls := workload.Classify(int(in.mixIn), int(in.mixOut))
	// The profile only holds ladder frequencies, and the placement policy
	// is the controller's plan anyway — it prices the commanded clock, not
	// a straggler's degraded one (the controller cannot see the fault; the
	// emergency path reacts to the resulting backlog instead).
	e := s.prof.Entry(profile.Key{Class: cls, TP: in.TP, Freq: in.freqCtl.Current()})
	in.marginalTick = s.curTick
	in.marginalEntryC = e
	if e == nil {
		in.marginalC = 0
		return 0, false
	}
	const dl = 0.01
	in.marginalC = e.Power.At(in.rate+dl) - e.Power.At(in.rate)
	return in.marginalC, true
}

// effRate is the instance's rate including requests placed this tick.
func (in *Instance) effRate(tick float64) float64 {
	if tick <= 0 {
		return in.rate
	}
	return in.rate + in.tickAssigned/tick
}

// --- Pool manager: shard-up/down (§IV-B) ------------------------------------------

// reshardPool recomputes the pool's parallelism mix with the simplified
// solver (instances pinned at max frequency) and applies the change with
// staggered transitions. Returns the number of instances touched.
func (p *Pool) reshardPool(s *sharedState, now simclock.Time, rate float64) int {
	if p.targetGPUs <= 0 {
		return 0
	}
	// Hold the max-performance configuration until the pool's rate
	// estimate has settled (one minute of observed traffic); re-sharding
	// on a cold estimate collapses capacity under the incoming load.
	if p.observedSince == 0 || now < p.observedSince+60 {
		return 0
	}
	rep := p.RepClass
	if mi, mo := p.meanMixIn(), p.meanMixOut(); mi > 0 {
		rep = workload.Classify(int(mi), int(mo))
	}
	// Never solve for literally zero load: keep enough capacity for a
	// trickle so the pool stays alive between bursts.
	minRate := 0.05 * s.prof.MaxLoadHighestPerf(rep)
	// Burst headroom: 35% relative plus an absolute floor so sparse pools
	// (fractional req/s) survive Poisson bursts between epochs.
	demand := math.Max(rate*1.35+0.5, minRate)
	var assignment solver.Assignment
	var err error
	priceAware := s.priceMult != 1
	weights := solver.CostWeights{
		GPUHourUSD:      energy.DefaultCost.GPUHourUSD,
		EnergyUSDPerKWh: s.opts.EnergyPriceUSDPerKWh * s.priceMult,
	}
	if priceAware {
		// Price signal active: solve the full cost objective (GPU rental
		// + electricity at the current price) over the whole frequency
		// ladder instead of the fixed-max-frequency simplification.
		assignment, err = solver.SolveCost(s.prof, rep, p.targetGPUs, demand, weights, solver.Options{})
	} else {
		assignment, err = solver.SolveSharding(s.prof, rep, p.targetGPUs, demand)
	}
	if err != nil {
		// Cannot cover: fall back to max-performance sharding.
		assignment = solver.Assignment{Groups: []solver.Group{{
			TP: model.TP8, Count: p.targetGPUs / 8, Freq: gpu.MaxFreq,
		}}}
		if assignment.Groups[0].Count == 0 {
			assignment.Groups[0] = solver.Group{TP: model.TP4, Count: p.targetGPUs / 4, Freq: gpu.MaxFreq}
		}
	}

	// Desired counts per TP.
	want := map[model.TP]int{}
	for _, g := range assignment.Groups {
		want[g.TP] += g.Count
	}

	cur := map[model.TP]int{}
	for _, in := range p.Instances {
		if in.state != stateOff {
			cur[in.TP]++
		}
	}
	if sameCounts(cur, want) {
		return 0
	}

	// Overhead-aware hysteresis (§IV-B "Accounting for the overheads"):
	// reconfigure only when the current mix either cannot cover the
	// demand or wastes at least 10% of the active objective against the
	// proposed mix. This kills oscillation between near-equal optima,
	// whose transition downtime would dwarf the savings. The gate
	// compares the same objective the solver minimized: watts normally,
	// dollars per hour while a price signal holds (a cheap-energy window
	// may propose fewer GPUs at MORE watts — a watt gate would veto
	// exactly the reconfigurations the price signal exists to trigger).
	// Expensive electricity also tightens the band: smaller savings are
	// worth chasing when joules cost more.
	hysteresis := 1 + 0.10/math.Max(s.priceMult, 1)
	curPower, curCap, curOK := priceCounts(s, rep, cur, demand)
	if curOK && curCap >= demand {
		if priceAware {
			curGPUs := 0
			for _, tp := range model.TPChoices {
				curGPUs += cur[tp] * tp.GPUs()
			}
			curHourly := float64(curGPUs)*weights.GPUHourUSD + curPower/1000*weights.EnergyUSDPerKWh
			if curHourly <= weights.HourlyUSD(assignment)*hysteresis {
				return 0
			}
		} else if curPower <= assignment.PowerW*hysteresis {
			return 0
		}
	}

	touched := 0
	// Staggered reconfiguration: touch at most half of the pool's
	// instances per epoch so capacity never collapses (§IV-B).
	budget := (len(p.Instances) + 1) / 2
	if budget < 1 {
		budget = 1
	}

	// Reconcile by GPU inventory: surplus instances donate their GPUs to
	// under-represented degrees. A TP8 donor converting to TP2 spawns up
	// to four TP2 instances; four TP2 donors merge into one TP8.
	surplus := map[model.TP]int{}
	deficit := map[model.TP]int{}
	for _, tp := range model.TPChoices {
		switch d := cur[tp] - want[tp]; {
		case d > 0:
			surplus[tp] = d
		case d < 0:
			deficit[tp] = -d
		}
	}

	takeDonor := func() *Instance {
		// Prefer donating from the degree with the most surplus.
		var bestTP model.TP
		for _, tp := range model.TPChoices {
			if surplus[tp] > surplus[bestTP] {
				bestTP = tp
			}
		}
		if surplus[bestTP] == 0 {
			return nil
		}
		in := p.findInstance(bestTP)
		if in == nil {
			surplus[bestTP] = 0
			return nil
		}
		surplus[bestTP]--
		return in
	}

	for _, to := range []model.TP{model.TP8, model.TP4, model.TP2} {
		for deficit[to] > 0 && budget > 0 {
			donor := takeDonor()
			if donor == nil {
				budget = 0
				break
			}
			// Never take a pool's last serving instance through a hard
			// transition (old and new shards cannot coexist, §IV-C): the
			// outage would stall the whole request type. Wait for the
			// next epoch when a sibling can cover.
			if len(p.activeInstances(now)) <= 1 && transitionHasDowntime(s.opts.Model, donor.TP, to) {
				surplus[donor.TP]++ // put the donor back
				budget = 0
				break
			}
			freed := donor.TP.GPUs()
			// Convert the donor itself.
			applyReshard(s, now, donor, to)
			donor.Pool = p.Index
			deficit[to]--
			touched++
			budget--
			freed -= to.GPUs()
			// Spare GPUs from a large donor become additional small
			// instances (they inherit the donor's transition window).
			for freed >= to.GPUs() && deficit[to] > 0 {
				extra := newInstance(s.nextInstanceID(), p.Index, to, s.opts.ReducedOverheads)
				extra.mixIn, extra.mixOut = poolRepLengths(p)
				extra.state = donor.state
				extra.readyAt = donor.readyAt
				extra.throughputFactor = 0 // new shards must arrive first
				p.Instances = append(p.Instances, extra)
				freed -= to.GPUs()
				deficit[to]--
				touched++
			}
			// A small donor converting up consumes sibling donors' GPUs.
			for freed < 0 {
				sib := takeDonor()
				if sib == nil {
					freed = 0
					break
				}
				sib.state = stateOff
				s.retire(sib, now, true)
				freed += sib.TP.GPUs()
			}
		}
	}
	// Remaining pure surplus (nothing needs growth): park, but keep the
	// pool alive with at least one instance.
	for _, tp := range model.TPChoices {
		for surplus[tp] > 0 && budget > 0 && p.liveCount() > 1 {
			in := p.findInstance(tp)
			if in == nil {
				break
			}
			in.state = stateOff
			s.retire(in, now, true)
			surplus[tp]--
			touched++
			budget--
		}
	}
	return touched
}

// transitionHasDowntime reports whether re-sharding from one degree to
// another forces the instance fully offline for the transition.
func transitionHasDowntime(m *model.Model, from, to model.TP) bool {
	if to >= from {
		return false
	}
	plan := reshard.PlanReshard(
		reshard.CanonicalLayout(reshard.Config{from}),
		reshard.Config{to},
	)
	return reshard.TransitionImpact(m, from, to, plan).DowntimeSeconds > 0
}

// poolRepLengths returns the representative request shape of a pool's
// largest class, used to initialize cold instances.
func poolRepLengths(p *Pool) (float64, float64) {
	in, out := workload.RepresentativeLengths(p.RepClass)
	return float64(in), float64(out)
}

// liveCount reports non-off instances.
func (p *Pool) liveCount() int {
	n := 0
	for _, in := range p.Instances {
		if in.state != stateOff {
			n++
		}
	}
	return n
}

// priceCounts prices an existing instance-count mix at fair-share load with
// per-group optimal frequencies; ok=false when the mix cannot serve the
// demand at all.
func priceCounts(s *sharedState, cls workload.Class, counts map[model.TP]int, demand float64) (power, capacity float64, ok bool) {
	total := 0
	//dynamolint:order-independent exact integer sum; addition order cannot change it
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0, 0, false
	}
	// Capacity at max frequency.
	for _, tp := range model.TPChoices {
		if counts[tp] == 0 {
			continue
		}
		e := s.prof.Entry(profile.Key{Class: cls, TP: tp, Freq: gpu.MaxFreq})
		if e != nil {
			capacity += e.MaxLoad * float64(counts[tp])
		}
	}
	if capacity <= 0 {
		return 0, 0, false
	}
	for _, tp := range model.TPChoices {
		n := counts[tp]
		if n == 0 {
			continue
		}
		e := s.prof.Entry(profile.Key{Class: cls, TP: tp, Freq: gpu.MaxFreq})
		share := 0.0
		if e != nil && capacity > 0 {
			share = demand * e.MaxLoad / capacity
		}
		// Best feasible frequency for the fair share.
		best := math.Inf(1)
		for _, f := range gpu.Ladder() {
			ef := s.prof.Entry(profile.Key{Class: cls, TP: tp, Freq: f})
			if ef != nil && ef.Feasible(share) {
				if w := ef.Power.At(share); w < best {
					best = w
				}
			}
		}
		if math.IsInf(best, 1) {
			return 0, 0, false
		}
		power += best * float64(n)
	}
	return power, capacity, true
}

func sameCounts(a, b map[model.TP]int) bool {
	for _, tp := range model.TPChoices {
		if a[tp] != b[tp] {
			return false
		}
	}
	return true
}

func (p *Pool) findInstance(tp model.TP) *Instance {
	for _, in := range p.Instances {
		if in.TP == tp && in.state == stateActive {
			return in
		}
	}
	return nil
}

// applyReshard transitions one instance to a new TP degree using the
// matching planner's makespan and the §IV-C impact model.
func applyReshard(s *sharedState, now simclock.Time, in *Instance, to model.TP) {
	from := in.TP
	plan := reshard.PlanReshard(
		reshard.CanonicalLayout(reshard.Config{from}),
		reshard.Config{to},
	)
	im := reshard.TransitionImpact(s.opts.Model, from, to, plan)
	transfer := im.TransferSeconds
	sync := im.SyncSeconds
	if !s.opts.ReducedOverheads {
		// Naive path: stop the engine, reload weights from host, restart
		// (§III-C: "around 1-2 minutes" on the critical path).
		in.state = stateResharding
		in.TP = to
		in.throughputFactor = 0
		in.readyAt = now + simclock.Time(90)
		s.reconfigure(in, now)
		return
	}
	in.state = stateResharding
	in.TP = to
	in.throughputFactor = im.ThroughputFactor
	if im.DowntimeSeconds > 0 {
		in.throughputFactor = 0
	}
	in.readyAt = now + simclock.Time(transfer+sync)
	s.reconfigure(in, now)
}

func (p *Pool) meanMixIn() float64 {
	sum, n := 0.0, 0
	for _, in := range p.Instances {
		if in.mixIn > 0 {
			sum += in.mixIn
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (p *Pool) meanMixOut() float64 {
	sum, n := 0.0, 0
	for _, in := range p.Instances {
		if in.mixOut > 0 {
			sum += in.mixOut
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func avgOr(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

// poolRate returns the pool's current EWMA arrival rate.
func (p *Pool) poolRate() float64 {
	sum := 0.0
	for _, in := range p.Instances {
		if in.state != stateOff {
			sum += in.rate
		}
	}
	return sum
}
