package core

import (
	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
)

// TickHook observes and perturbs a running simulation at tick granularity.
// The hook fires at the start of every tick, after lifecycle timers settle
// and before the epoch managers and the router run, so an injected outage
// or price change is visible to every controller decision made that tick.
//
// Implementations on the steady path must not allocate: the tick loop's
// zero-allocation invariant (TestTickLoopAllocationFree) is asserted with
// a hook installed. Timeline, the standard implementation, costs one slice
// bounds check per tick between events.
type TickHook interface {
	OnTick(now simclock.Time, ctl *Controls)
}

// Controls is the narrow mutation surface a TickHook may use to perturb
// the cluster mid-run: fail and recover capacity, move the electricity
// price, and tighten or relax the SLO window. It deliberately exposes no
// direct access to pools or instances so hooks cannot break the tick
// loop's scratch-state invariants.
type Controls struct {
	c   *Cluster
	s   *sharedState
	res *Result
	now simclock.Time

	// failedGPUs tracks injected capacity loss per pool so RecoverServers
	// can restore it where it was taken, mirroring a repaired machine
	// rejoining its old placement group.
	failedGPUs []int
}

// newControls builds the per-run Controls facade (one allocation at
// simulation setup; reused every tick). Direct controller tests construct
// it without a simulation, so a missing backend defaults to fluid.
func newControls(c *Cluster, res *Result) *Controls {
	if c.shared.backend == nil {
		c.shared.backend = &fluidBackend{res: res}
	}
	return &Controls{c: c, s: c.shared, res: res, failedGPUs: make([]int, len(c.pools))}
}

// Now returns the virtual time of the tick being processed.
func (ct *Controls) Now() simclock.Time { return ct.now }

// ActiveServers reports the cluster's live capacity in 8-GPU server
// equivalents (provisioning instances count: their GPUs are occupied).
func (ct *Controls) ActiveServers() int {
	gpus := 0
	for _, p := range ct.c.pools {
		gpus += p.gpusInUse()
	}
	return gpus / 8
}

// FailServers abruptly removes up to n servers' worth (8 GPUs each) of
// instances from the cluster — the injected GPU/node outage. Victims are
// taken instance by instance from the pool with the most GPUs in use, so
// a multi-server outage spreads the way a rack failure would; whole
// instances die, so a sharded fleet may lose slightly more than n*8 GPUs
// (you cannot fail half a machine). Each killed instance's in-flight
// work goes to the frontend retry path (re-routed after a backoff,
// terminally squashed only past the retry budget); the instance is
// parked stateOff and reaped by compactPools on the same tick. Returns the
// number of servers failed, rounded up from the GPUs actually lost (the
// cluster may hold fewer than asked).
//
// Static systems stay degraded until a recovery event; autoscaling systems
// re-provision at the next cluster epoch (or sooner through the emergency
// path), which is exactly the asymmetry outage scenarios measure.
func (ct *Controls) FailServers(n int) int {
	want := n * 8
	killed := 0
	for killed < want {
		p := ct.busiestPool()
		if p == nil {
			break
		}
		in := newestLive(p)
		if in == nil {
			break
		}
		killed += in.TP.GPUs()
		ct.failedGPUs[p.Index] += in.TP.GPUs()
		ct.killInstance(in)
	}
	return (killed + 7) / 8
}

// RecoverServers restores up to n previously failed servers: fresh TP8
// instances are provisioned (paying the usual Table V boot latency) in
// the pools the outage hit, draining the per-pool failed-GPU ledger
// largest-debt first. Fractional per-pool remainders (a sharded victim
// straddling the 8-GPU server size) still count toward recovery — every
// failed GPU is eventually restored, never stranded below a whole-server
// threshold. Returns the number of servers brought back.
func (ct *Controls) RecoverServers(n int) int {
	recovered := 0
	for ; n > 0; n-- {
		pool := -1
		for i, g := range ct.failedGPUs {
			if g > 0 && (pool < 0 || g > ct.failedGPUs[pool]) {
				pool = i
			}
		}
		if pool < 0 {
			break
		}
		if ct.failedGPUs[pool] -= 8; ct.failedGPUs[pool] < 0 {
			ct.failedGPUs[pool] = 0
		}
		ct.c.addInstance(ct.c.pools[pool], model.TP8, ct.now, false)
		ct.res.Recoveries++
		recovered++
	}
	return recovered
}

// FailRack models a correlated failure: up to n co-located instances die
// at once, all taken from the single pool with the most GPUs in use (one
// "rack" hosting one placement group). Unlike FailServers, which spreads
// victims across the cluster server by server, the whole blast radius
// lands on one request type — the worst case for that pool's SLO. Lost
// GPUs enter the same per-pool ledger RecoverServers drains. Returns the
// number of instances killed.
func (ct *Controls) FailRack(n int) int {
	p := ct.busiestPool()
	if p == nil {
		return 0
	}
	killed := 0
	for killed < n {
		in := newestLive(p)
		if in == nil {
			break
		}
		ct.failedGPUs[p.Index] += in.TP.GPUs()
		ct.killInstance(in)
		killed++
	}
	return killed
}

// StraggleServers degrades up to n healthy instances to stragglers: their
// achieved clock becomes factor × the commanded frequency (0 < factor < 1)
// until RepairStragglers clears them. Victims are the newest healthy
// instances cluster-wide — deterministic and independent of per-tick
// iteration state, like outage victim choice. The degradation is invisible
// to the controllers' plans (marginalPower prices the commanded clock);
// they observe only its symptoms — backlog growth, capacity misses — which
// is exactly what makes stragglers harder than crashes. Returns the number
// of instances degraded.
func (ct *Controls) StraggleServers(n int, factor float64) int {
	if factor <= 0 || factor >= 1 {
		return 0
	}
	made := 0
	for made < n {
		var victim *Instance
		for _, p := range ct.c.pools {
			for _, in := range p.Instances {
				if in.state == stateOff || in.slowFactor != 1 {
					continue
				}
				if victim == nil || in.ID > victim.ID {
					victim = in
				}
			}
		}
		if victim == nil {
			break
		}
		victim.slowFactor = factor
		ct.res.Stragglers++
		made++
	}
	return made
}

// RepairStragglers restores up to n straggling instances to full speed
// (pool order, oldest first — repairs land in rack-visit order, not
// LIFO). Returns the number repaired.
func (ct *Controls) RepairStragglers(n int) int {
	repaired := 0
	for _, p := range ct.c.pools {
		for _, in := range p.Instances {
			if repaired >= n {
				return repaired
			}
			if in.state != stateOff && in.slowFactor != 1 {
				in.slowFactor = 1
				repaired++
			}
		}
	}
	return repaired
}

// SetSubmitDelay adds d seconds of frontend submission latency to every
// request arriving from this tick on (a transient network blip or
// overloaded gateway between the frontend and the instances); 0 ends the
// blip. The delay rides each request's SteerPenalty, so it pushes event
// submission and fluid TTFT identically.
func (ct *Controls) SetSubmitDelay(d float64) {
	if d < 0 {
		d = 0
	}
	if d > 0 && ct.s.submitDelay == 0 {
		ct.res.Blips++
	}
	ct.s.submitDelay = d
}

// SubmitDelay returns the active frontend submission delay in seconds.
func (ct *Controls) SubmitDelay() float64 { return ct.s.submitDelay }

// SetPriceMult sets the electricity-price multiplier applied on top of
// Options.EnergyPriceUSDPerKWh from this tick on (1 = nominal). The
// multiplier feeds Result.EnergyCostUSD and the price-aware controllers:
// expensive energy tightens the DVFS headroom and the re-sharding
// hysteresis, and routes the pool manager through the cost-objective
// solver.
func (ct *Controls) SetPriceMult(x float64) {
	if x <= 0 {
		x = 1
	}
	ct.s.priceMult = x
}

// PriceMult returns the active electricity-price multiplier.
func (ct *Controls) PriceMult() float64 { return ct.s.priceMult }

// SetSLOFactor scales the SLOs of requests arriving from this tick on:
// factors below 1 tighten (an SLO-crunch window), above 1 relax. The
// controllers keep planning against the nominal SLO — a sudden contractual
// tightening stresses the system precisely because capacity was not
// provisioned for it.
func (ct *Controls) SetSLOFactor(x float64) {
	if x <= 0 {
		x = 1
	}
	ct.s.sloMult = x
}

// SLOFactor returns the active SLO scaling factor.
func (ct *Controls) SLOFactor() float64 { return ct.s.sloMult }

// busiestPool returns the live pool with the most GPUs in use.
func (ct *Controls) busiestPool() *Pool {
	var best *Pool
	bestGPUs := 0
	for _, p := range ct.c.pools {
		if g := p.gpusInUse(); g > bestGPUs {
			best, bestGPUs = p, g
		}
	}
	return best
}

// newestLive returns the most recently created non-off instance — outages
// take whole machines, and taking the newest keeps the victim choice
// deterministic and independent of per-tick iteration state.
func newestLive(p *Pool) *Instance {
	var best *Instance
	for _, in := range p.Instances {
		if in.state == stateOff {
			continue
		}
		if best == nil || in.ID > best.ID {
			best = in
		}
	}
	return best
}

// killInstance models the abrupt loss of one instance: queued work is
// handed to the frontend retry path through the fidelity backend, and
// the instance is parked for compaction.
func (ct *Controls) killInstance(in *Instance) {
	in.state = stateOff
	ct.s.retire(in, ct.now, false)
	ct.res.Outages++
}

// TimelineEvent is one scheduled perturbation: Do fires through the
// Controls facade the first tick whose time reaches At.
type TimelineEvent struct {
	At simclock.Time
	Do func(ctl *Controls)
}

// Timeline is the standard TickHook: a time-sorted list of events applied
// as the simulation reaches them. Between events the per-tick cost is one
// index comparison and no allocations, preserving the steady-state
// zero-alloc invariant. A Timeline is single-run state — give every
// simulation its own instance.
type Timeline struct {
	events []TimelineEvent
	idx    int
}

// NewTimeline builds a hook from events; the slice is sorted by At
// (stable, so equal-time events apply in insertion order).
func NewTimeline(events []TimelineEvent) *Timeline {
	sorted := make([]TimelineEvent, len(events))
	copy(sorted, events)
	for i := 1; i < len(sorted); i++ { // insertion sort: stable, tiny n
		for j := i; j > 0 && sorted[j].At < sorted[j-1].At; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return &Timeline{events: sorted}
}

// OnTick applies every event due at or before now.
func (tl *Timeline) OnTick(now simclock.Time, ctl *Controls) {
	for tl.idx < len(tl.events) && tl.events[tl.idx].At <= now {
		tl.events[tl.idx].Do(ctl)
		tl.idx++
	}
}
