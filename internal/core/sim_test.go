package core

import (
	"sync"
	"testing"

	"dynamollm/internal/model"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Shared fixtures: one profile repository and one short high-load trace for
// the whole package (profile building is the expensive part).
var (
	repoOnce sync.Once
	repo     *profile.Repository
	hourTr   trace.Trace
)

const testPeakRPS = 45

func fixtures(t *testing.T) (*profile.Repository, trace.Trace) {
	t.Helper()
	repoOnce.Do(func() {
		repo = profile.NewRepository(nil)
		hourTr = trace.OpenSourceHour(testPeakRPS, 11)
	})
	return repo, hourTr
}

func warmConv(tm simclock.Time, c workload.Class) float64 {
	return trace.ExpectedRate(trace.Conversation, testPeakRPS, tm+trace.OpenSourceHourStart, c)
}

func runSystem(t *testing.T, name string) *Result {
	t.Helper()
	r, tr := fixtures(t)
	opts, ok := SystemByName(name)
	if !ok {
		t.Fatalf("unknown system %q", name)
	}
	opts.Seed = 7
	opts.WarmLoad = warmConv
	return RunWithRepo(tr, opts, r)
}

// TestEnergyOrdering pins Fig. 6's headline shape: DynamoLLM uses the least
// energy; every single-knob system beats the SinglePool baseline; MultiPool
// (peak-provisioned per-class pools at max performance) does not save
// energy over SinglePool.
func TestEnergyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := map[string]*Result{}
	for _, name := range SystemNames {
		res[name] = runSystem(t, name)
	}
	base := res["singlepool"].EnergyJ
	if res["multipool"].EnergyJ < base*0.98 {
		t.Errorf("MultiPool (%v) should not beat SinglePool (%v)",
			res["multipool"].EnergyKWh(), res["singlepool"].EnergyKWh())
	}
	for _, knob := range []string{"scaleshard", "scalefreq"} {
		if res[knob].EnergyJ >= base {
			t.Errorf("%s (%v kWh) should beat SinglePool (%v kWh)",
				knob, res[knob].EnergyKWh(), res["singlepool"].EnergyKWh())
		}
	}
	dyn := res["dynamollm"].EnergyJ
	for _, other := range []string{"singlepool", "multipool", "scaleinst", "scaleshard", "scalefreq"} {
		if dyn >= res[other].EnergyJ {
			t.Errorf("DynamoLLM (%v kWh) should use least energy; %s = %v kWh",
				res["dynamollm"].EnergyKWh(), other, res[other].EnergyKWh())
		}
	}
	saving := 1 - dyn/base
	if saving < 0.15 {
		t.Errorf("DynamoLLM saving = %.1f%%, want substantial (>15%%)", saving*100)
	}
}

// TestDynamoLLMMeetsSLOs: the optimized system keeps a high SLO attainment
// and squashes almost nothing.
func TestDynamoLLMMeetsSLOs(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "dynamollm")
	if att := res.SLOAttainment(); att < 0.93 {
		t.Errorf("SLO attainment = %.3f, want >= 0.93", att)
	}
	if frac := float64(res.Squashed) / float64(res.Requests); frac > 0.01 {
		t.Errorf("squashed fraction = %.4f, want < 1%%", frac)
	}
	if res.AvgServers >= 12 {
		t.Errorf("DynamoLLM should scale below the 12-server fleet, got %.1f", res.AvgServers)
	}
}

// TestBaselineMeetsSLOs: the peak-provisioned baseline at max performance
// must meet SLOs nearly always (it is the reference the paper compares to).
func TestBaselineMeetsSLOs(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "singlepool")
	if att := res.SLOAttainment(); att < 0.99 {
		t.Errorf("SinglePool attainment = %.3f, want >= 0.99", att)
	}
	if res.Reshards != 0 || res.ScaleOuts != 0 {
		t.Error("SinglePool must not reconfigure")
	}
}

// TestDVFSLowersFrequency: ScaleFreq's average clock sits well below the
// baseline's pinned 1980 MHz (Fig. 9's qualitative point).
func TestDVFSLowersFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "scalefreq")
	avg, n := 0.0, 0
	for _, pt := range res.FreqSeries.Points() {
		avg += pt.Value
		n++
	}
	avg /= float64(n)
	if avg > 1700 {
		t.Errorf("ScaleFreq average clock = %.0f MHz, want well below 1980", avg)
	}
	base := runSystem(t, "singlepool")
	bavg, bn := 0.0, 0
	for _, pt := range base.FreqSeries.Points() {
		bavg += pt.Value
		bn++
	}
	if bavg/float64(bn) != 1980 {
		t.Errorf("SinglePool clock = %v, want pinned 1980", bavg/float64(bn))
	}
}

// TestShardingDiversifies: ScaleShard moves GPUs off the TP8-only layout.
func TestShardingDiversifies(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "scaleshard")
	if res.Reshards == 0 {
		t.Fatal("ScaleShard never re-sharded")
	}
	small := 0.0
	for _, tp := range []model.TP{model.TP2, model.TP4} {
		for _, pt := range res.ShardSeries[tp].Points() {
			small += pt.Value
		}
	}
	if small == 0 {
		t.Error("no GPUs ever ran at TP2/TP4 under ScaleShard")
	}
}

// TestPredictorAccuracySensitivity mirrors Fig. 11: moderate accuracy loss
// must cost only modest energy and latency (the system detects and
// corrects mispredictions).
func TestPredictorAccuracySensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, tr := fixtures(t)
	run := func(acc float64) *Result {
		opts := DynamoLLM()
		opts.Seed = 7
		opts.PredictorAccuracy = acc
		opts.WarmLoad = warmConv
		return RunWithRepo(tr, opts, r)
	}
	perfect := run(1.0)
	poor := run(0.6)
	if poor.EnergyJ < perfect.EnergyJ*0.98 {
		t.Errorf("worse predictor should not save energy: %.1f vs %.1f kWh",
			poor.EnergyKWh(), perfect.EnergyKWh())
	}
	if poor.EnergyJ > perfect.EnergyJ*1.35 {
		t.Errorf("60%% accuracy energy overhead too large: %.1f vs %.1f kWh",
			poor.EnergyKWh(), perfect.EnergyKWh())
	}
	if att := poor.SLOAttainment(); att < 0.88 {
		t.Errorf("60%% accuracy attainment = %.3f, want moderate degradation only", att)
	}
}

// TestPoolCountSensitivity mirrors Fig. 13's direction: very few pools cost
// energy against the 9-pool design.
func TestPoolCountSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, tr := fixtures(t)
	run := func(n int) *Result {
		opts := DynamoLLM()
		opts.Seed = 7
		opts.NumPools = n
		opts.WarmLoad = warmConv
		return RunWithRepo(tr, opts, r)
	}
	nine := run(9)
	two := run(2)
	if two.EnergyJ < nine.EnergyJ*0.95 {
		t.Errorf("2 pools (%v kWh) should not clearly beat 9 pools (%v kWh)",
			two.EnergyKWh(), nine.EnergyKWh())
	}
}

// TestDeterminism: identical options and trace produce identical results.
func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, tr := fixtures(t)
	opts := DynamoLLM()
	opts.Seed = 99
	opts.WarmLoad = warmConv
	a := RunWithRepo(tr, opts, r)
	b := RunWithRepo(tr, opts, r)
	if a.EnergyJ != b.EnergyJ || a.SLOMet != b.SLOMet || a.Reshards != b.Reshards {
		t.Error("simulation is not deterministic for a fixed seed")
	}
}

// TestEmptyTrace: a run over nothing is a no-op that does not crash.
func TestEmptyTrace(t *testing.T) {
	r, _ := fixtures(t)
	opts := DynamoLLM()
	res := RunWithRepo(nil, opts, r)
	if res.Requests != 0 || res.Completed != 0 {
		t.Error("empty trace produced requests")
	}
}

// TestEnergyByClassSumsToTotal: the Fig. 6 stacking is consistent.
func TestEnergyByClassSumsToTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "dynamollm")
	sum := 0.0
	for _, j := range res.EnergyByClassJ {
		sum += j
	}
	if diff := (sum - res.EnergyJ) / res.EnergyJ; diff > 0.001 || diff < -0.001 {
		t.Errorf("class energies sum to %.1f of total", sum/res.EnergyJ)
	}
}

// TestGPUSecondsConsistent: GPU occupancy implies a sane server average.
func TestGPUSecondsConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res := runSystem(t, "singlepool")
	if res.AvgServers < 11.9 || res.AvgServers > 12.1 {
		t.Errorf("static 12-server run reports %.2f servers", res.AvgServers)
	}
}

// TestSLOScaleRelaxation: a loose-SLO service lets DynamoLLM save more.
func TestSLOScaleRelaxation(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	r, tr := fixtures(t)
	strict := DynamoLLM()
	strict.Seed = 7
	strict.WarmLoad = warmConv
	loose := strict
	loose.SLOScale = 4
	rs := RunWithRepo(tr, strict, r)
	rl := RunWithRepo(tr, loose, r)
	if rl.EnergyJ > rs.EnergyJ*1.05 {
		t.Errorf("20x SLO energy (%v kWh) should not exceed 5x SLO (%v kWh)",
			rl.EnergyKWh(), rs.EnergyKWh())
	}
}
