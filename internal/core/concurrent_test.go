package core

import (
	"sync"
	"testing"

	"dynamollm/internal/profile"
	"dynamollm/internal/trace"
)

// TestRunWithRepoConcurrent drives several systems through RunWithRepo at
// once, sharing one trace and one profile repository — exactly how the
// experiment runner fans out — and checks every result matches its
// sequential twin. Under -race this audits the simulation for state leaking
// through shared Options, models, or the repository.
func TestRunWithRepoConcurrent(t *testing.T) {
	tr := trace.OpenSourceHour(15, 7).Window(0, 900)
	repo := profile.NewRepository(nil)
	names := []string{"singlepool", "multipool", "scalefreq", "dynamollm", "dynamollm", "scaleinst"}

	sequential := make([]*Result, len(names))
	for i, name := range names {
		opts, _ := SystemByName(name)
		opts.Seed = 42
		sequential[i] = RunWithRepo(tr, opts, repo)
	}

	concurrent := make([]*Result, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			opts, _ := SystemByName(name)
			opts.Seed = 42
			concurrent[i] = RunWithRepo(tr, opts, repo)
		}(i, name)
	}
	wg.Wait()

	for i, name := range names {
		seq, con := sequential[i], concurrent[i]
		if con.EnergyJ != seq.EnergyJ {
			t.Errorf("%s: concurrent EnergyJ %v != sequential %v", name, con.EnergyJ, seq.EnergyJ)
		}
		if con.Requests != seq.Requests || con.Squashed != seq.Squashed {
			t.Errorf("%s: concurrent requests %d/%d != sequential %d/%d",
				name, con.Requests, con.Squashed, seq.Requests, seq.Squashed)
		}
		if con.TTFT.Percentile(99) != seq.TTFT.Percentile(99) {
			t.Errorf("%s: concurrent TTFT P99 differs", name)
		}
		if con.Reshards != seq.Reshards || con.FreqChanges != seq.FreqChanges {
			t.Errorf("%s: concurrent reconfig counters differ", name)
		}
	}
}
