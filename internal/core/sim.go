package core

import (
	"fmt"
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/gpu"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/predict"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/solver"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Provisioning latencies (Table V): creating an 8xH100 VM, initializing the
// distributed environment, downloading weights, configuring the engine and
// installing weights takes 6-8 minutes on the naive path. DynamoLLM's
// snapshot start with cluster-cached weights and background pre-warming
// cuts the critical-path cost to seconds (§IV-C).
// maxCapFraction is the utilization treated as an instance's usable
// capacity when deriving it from the measured operating point.
const maxCapFraction = 0.9

// provisionHeadroom pads peak-based static provisioning (the paper
// provisions baselines "to handle the peak load").
const provisionHeadroom = 1.25

// mergeFraction: a pool predicted below this fraction of one
// highest-performance node's capacity merges into the next-larger pool.
const mergeFraction = 0.35

const (
	NaiveProvisionSeconds     = 7 * 60
	SnapshotProvisionSeconds  = 33 // engine config + weight install only
	squashWaitFactor          = 6  // wait beyond SLO x this => squash
	emergencyBacklogThreshold = 1  // seconds of backlog triggers emergency
)

// Frontend retry parameters (§IV-D failure handling). A request squashed
// by an outage or an empty pool re-enters the router after an exponential
// backoff in virtual time: attempt k waits retryBackoffBase * 2^(k-1)
// seconds, capped at retryBackoffCap, and gives up for good once
// Options.RetryBudget attempts are spent. The queue itself is bounded:
// when a failure burst would grow it past retryQueueCap the overflow is
// shed (Result.Shed) instead of retried — an unbounded retry queue under
// a sustained outage is a retry storm, not resilience.
const (
	// DefaultRetryBudget is the retry budget withDefaults installs when
	// Options.RetryBudget is zero.
	DefaultRetryBudget = 3
	// retryBackoffBase is the first attempt's backoff in virtual seconds.
	retryBackoffBase = 1.0
	// retryBackoffCap bounds the exponential backoff (virtual seconds).
	retryBackoffCap = 30.0
	// retryQueueCap bounds the pending-retry queue; overflow is shed.
	retryQueueCap = 4096
)

// Result aggregates everything the evaluation figures need from one run.
type Result struct {
	Opts     Options //snapshot:ignore run configuration; the clone deliberately shares hooks and observer with the original
	Duration float64

	// Request conservation: every routed request reaches exactly one
	// terminal state, so Requests == Completed + Squashed + Shed holds
	// under both fidelities and any StepJobs (fidelity tests assert it).
	Requests  int // requests routed (counted once, at first arrival)
	Squashed  int // terminally dropped: retry budget exhausted or undrainable at run end
	SLOMet    int
	Completed int

	// Frontend retry accounting (§IV-D). Retried counts retry attempts
	// scheduled (a request retried twice counts twice — Retried/Requests
	// is the retry amplification factor); RetrySuccess counts completed
	// requests that needed at least one retry; Shed counts requests
	// dropped by retry-queue overflow instead of being retried.
	Retried      int
	RetrySuccess int
	Shed         int

	// SquashedLoad is fluid-model backlog shed in load units (fractional
	// request-seconds of queue dropped by emergency handling or an
	// outage). It is NOT part of the request conservation identity: fluid
	// requests complete (with sampled latencies) in their arrival tick,
	// so backlog carries load, not request identity. The seed code folded
	// these units into Squashed, double-counting them against Completed.
	SquashedLoad float64

	// EnergyJ is total cluster energy; EnergyByClassJ splits it by the
	// true class of the work served (Fig. 6's stacking).
	EnergyJ        float64
	EnergyByClassJ [workload.NumClasses]float64

	// EnergyCostUSD is the electricity bill integrated tick by tick at
	// the (possibly hook-perturbed) time-varying price, so price-signal
	// scenarios separate "energy used" from "energy paid for".
	EnergyCostUSD float64

	// Latency distributions (Fig. 7).
	TTFT, TBT *metrics.Dist

	// ClassTTFT/ClassTBT are per-true-class latency distributions
	// captured at token level by the event backend
	// (Options.Fidelity == FidelityEvent); nil in fluid mode.
	ClassTTFT, ClassTBT [workload.NumClasses]*metrics.Dist

	// Power (Fig. 8): cluster power samples per tick and per-GPU samples.
	ClusterPowerW *metrics.Dist
	GPUPowerW     *metrics.Dist
	PowerSeries   *metrics.Series // avg cluster watts per minute

	// Frequency over time (Fig. 9): cluster-wide and per tracked pool.
	FreqSeries     *metrics.Series
	PoolFreqSeries map[workload.Class]*metrics.Series

	// Sharding over time (Fig. 10): GPUs per TP degree, cluster and pools.
	ShardSeries     map[model.TP]*metrics.Series
	PoolShardSeries map[workload.Class]map[model.TP]*metrics.Series
	PoolLoadSeries  map[workload.Class]*metrics.Series

	// Energy over time (Fig. 15): joules per 5-minute bucket.
	EnergySeries *metrics.Series

	// GPU occupancy for the cost model (§V-F).
	GPUSeconds float64
	AvgServers float64

	// Reconfiguration counters.
	Reshards, ScaleOuts, ScaleIns, FreqChanges int
	Emergencies                                int
	Merges                                     int

	// Injected-fault counters: instances lost to hook-driven outages,
	// servers restored by recovery events, instances degraded to
	// stragglers, and submission-delay blip windows opened.
	Outages, Recoveries, Stragglers, Blips int

	// Per-true-class SLO accounting (diagnostics and Fig. 6 breakdown).
	ClassRequests   [workload.NumClasses]int
	ClassViolations [workload.NumClasses]int

	// KV-cache dynamics (event fidelity with block-granular accounting):
	// decode sequences preempted under KV pressure, prompt-prefix cache
	// hits, admissions rejected because the request cannot fit even an
	// empty pool, and prefill-to-decode handoffs under disaggregation.
	KVPreemptions int
	KVPrefixHits  int
	KVRejected    int
	Handoffs      int

	// Tiered-KV dynamics (KVTier != KVTierNone): sequences swapped out to
	// the spill tier, swapped back in, preemptions resolved by recompute-
	// on-resume, and spilled sequences evicted from a full tier (forced
	// recompute). Every preemption resolves as a swap-out or a recompute,
	// and every tier eviction converts a swap-out into a recompute, so
	// KVSwapOuts + KVRecomputes == KVPreemptions + KVTierEvictions.
	KVSwapOuts      int
	KVSwapIns       int
	KVRecomputes    int
	KVTierEvictions int
}

// SLOAttainment returns the fraction of completed requests meeting SLOs.
func (r *Result) SLOAttainment() float64 {
	if r.Completed == 0 {
		return 1
	}
	return float64(r.SLOMet) / float64(r.Completed)
}

// EnergyKWh returns total energy in kWh.
func (r *Result) EnergyKWh() float64 { return energy.KWh(r.EnergyJ) }

// CheckInvariants verifies the result's accounting identities: request
// conservation (every routed request reaches exactly one terminal state —
// completed, terminally squashed, or shed) and the ordering relations
// between the terminal counters. Tests assert it after every run; a
// non-nil error means the simulation leaked or double-counted a request.
func (r *Result) CheckInvariants() error {
	if r.Requests != r.Completed+r.Squashed+r.Shed {
		return fmt.Errorf("core: request conservation violated: Requests=%d != Completed=%d + Squashed=%d + Shed=%d",
			r.Requests, r.Completed, r.Squashed, r.Shed)
	}
	if r.SLOMet > r.Completed {
		return fmt.Errorf("core: SLOMet=%d exceeds Completed=%d", r.SLOMet, r.Completed)
	}
	if r.RetrySuccess > r.Completed {
		return fmt.Errorf("core: RetrySuccess=%d exceeds Completed=%d", r.RetrySuccess, r.Completed)
	}
	if r.KVPreemptions < 0 || r.KVPrefixHits < 0 || r.KVRejected < 0 || r.Handoffs < 0 {
		return fmt.Errorf("core: negative KV counter: preemptions=%d hits=%d rejected=%d handoffs=%d",
			r.KVPreemptions, r.KVPrefixHits, r.KVRejected, r.Handoffs)
	}
	if r.KVSwapOuts < 0 || r.KVSwapIns < 0 || r.KVRecomputes < 0 || r.KVTierEvictions < 0 {
		return fmt.Errorf("core: negative KV tier counter: swapouts=%d swapins=%d recomputes=%d evictions=%d",
			r.KVSwapOuts, r.KVSwapIns, r.KVRecomputes, r.KVTierEvictions)
	}
	// Tier conservation: a sequence swaps in at most once per swap-out (a
	// sequence is never simultaneously resident and spilled, so the link
	// only ever carries it one way at a time)...
	if r.KVSwapIns > r.KVSwapOuts {
		return fmt.Errorf("core: KVSwapIns=%d exceeds KVSwapOuts=%d", r.KVSwapIns, r.KVSwapOuts)
	}
	// ...and every preemption resolves as exactly one swap-out or one
	// recompute, with tier evictions converting swap-outs into recomputes.
	if r.KVSwapOuts+r.KVRecomputes != r.KVPreemptions+r.KVTierEvictions {
		return fmt.Errorf("core: KV preemption conservation violated: SwapOuts=%d + Recomputes=%d != Preemptions=%d + TierEvictions=%d",
			r.KVSwapOuts, r.KVRecomputes, r.KVPreemptions, r.KVTierEvictions)
	}
	// Retry accounting: every completed-after-retry request had at least
	// one retry attempt scheduled, so RetrySuccess can never pass Retried.
	if r.Retried < 0 || r.RetrySuccess > r.Retried {
		return fmt.Errorf("core: retry accounting violated: RetrySuccess=%d with Retried=%d",
			r.RetrySuccess, r.Retried)
	}
	// Reconfiguration and fault counters are pure event tallies; the only
	// algebra they obey is monotonicity from zero.
	if r.Reshards < 0 || r.ScaleOuts < 0 || r.ScaleIns < 0 || r.FreqChanges < 0 ||
		r.Emergencies < 0 || r.Merges < 0 {
		return fmt.Errorf("core: negative reconfiguration counter: reshards=%d out=%d in=%d freq=%d emergencies=%d merges=%d",
			r.Reshards, r.ScaleOuts, r.ScaleIns, r.FreqChanges, r.Emergencies, r.Merges)
	}
	if r.Outages < 0 || r.Recoveries < 0 || r.Stragglers < 0 || r.Blips < 0 {
		return fmt.Errorf("core: negative fault counter: outages=%d recoveries=%d stragglers=%d blips=%d",
			r.Outages, r.Recoveries, r.Stragglers, r.Blips)
	}
	// A recovery drains the failed-GPU ledger, which only outages fill.
	if r.Recoveries > 0 && r.Outages == 0 {
		return fmt.Errorf("core: %d recoveries with no outage", r.Recoveries)
	}
	// Per-class SLO accounting: ClassRequests counts completions that
	// reached the class-level SLO judgement (the fluid saturated path
	// skips it, so the sum is bounded by Completed, not equal to it), and
	// each judged request lands in exactly one of SLOMet or its class's
	// violation bucket.
	classReqs, classViol := 0, 0
	for cls := range r.ClassRequests {
		if r.ClassViolations[cls] > r.ClassRequests[cls] {
			return fmt.Errorf("core: class %d: ClassViolations=%d exceeds ClassRequests=%d",
				cls, r.ClassViolations[cls], r.ClassRequests[cls])
		}
		classReqs += r.ClassRequests[cls]
		classViol += r.ClassViolations[cls]
	}
	if classReqs > r.Completed {
		return fmt.Errorf("core: sum(ClassRequests)=%d exceeds Completed=%d", classReqs, r.Completed)
	}
	if r.SLOMet+classViol != classReqs {
		return fmt.Errorf("core: SLO judgement not exhaustive: SLOMet=%d + violations=%d != judged=%d",
			r.SLOMet, classViol, classReqs)
	}
	return nil
}

// Cluster is the simulated deployment under one control policy.
type Cluster struct {
	opts    Options
	shared  *sharedState
	pooling *Pooling
	pools   []*Pool

	// trackedPools are the classes whose per-pool series are recorded
	// (Fig. 9/10 track SL, ML, LL).
	tracked []workload.Class

	// retiredFreqSets preserves the frequency-change counts of instances
	// removed by compactPools, so Result.FreqChanges stays complete.
	retiredFreqSets int
	// steadyProbe is a reusable stand-in instance for steady-state
	// queries against pools that currently have no instance at all.
	steadyProbe *Instance
}

// trackedClasses are the pools Figs. 9-10 plot.
var trackedClasses = []workload.Class{workload.SL, workload.ML, workload.LL}

// NewCluster builds a cluster for the options, using the shared profile
// repository so repeated experiments do not re-profile the model.
func NewCluster(opts Options, repo *profile.Repository) *Cluster {
	opts = opts.withDefaults()
	if repo == nil {
		repo = profile.NewRepository(nil)
	}
	prof := repo.Get(opts.Model, opts.SLOScale)
	rng := simclock.NewRNG(opts.Seed)
	s := &sharedState{
		opts:      opts,
		prof:      prof,
		loadPred:  predict.NewLoadPredictor(opts.ClusterEpoch),
		lenPred:   predict.NewLengthPredictor(opts.PredictorAccuracy, rng.Uint64()),
		rng:       rng,
		priceMult: 1,
		sloMult:   1,
	}
	if opts.WarmLoad != nil {
		s.loadPred.Warm(opts.WarmLoad)
	}
	c := &Cluster{opts: opts, shared: s, pooling: NewPooling(opts.NumPools), tracked: trackedClasses}
	c.pools = make([]*Pool, c.pooling.NumPools)
	for i := range c.pools {
		c.pools[i] = &Pool{Index: i, Classes: c.pooling.poolClasses[i], RepClass: c.pooling.Largest(i)}
	}
	if opts.Disagg {
		// Prefill/decode disaggregation: every base pool becomes
		// prefill-only and gains a decode twin at index base + NumPools.
		// The router and pooling tables keep addressing base pools only;
		// twins are reached exclusively through the KV handoff, so the
		// steering, merging, and spill logic is untouched.
		base := len(c.pools)
		for i := 0; i < base; i++ {
			p := c.pools[i]
			p.Role = RolePrefill
			c.pools = append(c.pools, &Pool{
				Index:    base + i,
				Classes:  p.Classes,
				RepClass: p.RepClass,
				Role:     RoleDecode,
			})
		}
	}
	return c
}

// decodeTwin returns a prefill pool's decode twin. Pools are positionally
// indexed (compactPools removes instances, never pools), so the twin sits
// at base index + NumPools.
func (c *Cluster) decodeTwin(p *Pool) *Pool {
	return c.pools[p.Index+c.pooling.NumPools]
}

// splitNodes divides a logical pool's node budget between its prefill and
// decode halves: prefill gets ~40% (prefill is compute-dense; decode holds
// the long-lived KV), both clamped to at least one node so neither half
// can strand the other. A one-node budget yields one node each — the
// overage is the price of keeping a tiny disaggregated pool serviceable.
func splitNodes(n int) (prefill, decode int) {
	if n <= 0 {
		return 0, 0
	}
	prefill = (2*n + 4) / 5
	if prefill < 1 {
		prefill = 1
	}
	decode = n - prefill
	if decode < 1 {
		decode = 1
	}
	return prefill, decode
}

// addInstance creates an instance in a pool. booted=false models VM
// provisioning latency.
func (c *Cluster) addInstance(p *Pool, tp model.TP, now simclock.Time, booted bool) *Instance {
	in := newInstance(c.shared.nextInstanceID(), p.Index, tp, c.opts.ReducedOverheads)
	in.mixIn, in.mixOut = poolRepLengths(p)
	if !booted {
		in.state = stateProvisioning
		d := float64(NaiveProvisionSeconds)
		if c.opts.ReducedOverheads {
			d = SnapshotProvisionSeconds
		}
		in.readyAt = now + simclock.Time(d)
	}
	p.Instances = append(p.Instances, in)
	return in
}

// staticProvision sets up the non-autoscaling baselines: every pool gets
// enough highest-performance instances for its peak load, computed from a
// pre-pass over the trace (§V-B provisions baselines for peak).
func (c *Cluster) staticProvision(tr trace.Trace) {
	peaks := c.peakRates(tr)
	if c.opts.NumPools == 1 {
		// SinglePool: the paper fixes the server count (12 by default).
		c.provisionBooted(c.pools[0], c.opts.Servers)
		return
	}
	counts := make([]int, len(c.pools))
	total := 0
	for i, p := range c.pools {
		if p.Role == RoleDecode {
			continue // provisioned alongside its prefill twin below
		}
		rep := p.repClass(c.pooling)
		// Provision for peak with burst headroom: 30-minute-epoch peaks
		// hide shorter bursts.
		n := solver.NodesForPeak(c.shared.prof, rep, peaks[p.Index]*provisionHeadroom)
		if n < 1 {
			n = 1
		}
		counts[i] = n
		total += n
	}
	// The cluster owns opts.Servers machines; static systems use them
	// all, handing surplus to the busiest pools (per-pool partitioning
	// can only fragment, never shrink, the fleet — §V-B).
	for total < c.opts.Servers {
		best, bestLoad := 0, -1.0
		for i, p := range c.pools {
			if p.Role == RoleDecode {
				continue
			}
			if load := peaks[i] / float64(counts[i]); load > bestLoad {
				best, bestLoad = i, load
			}
		}
		counts[best]++
		total++
	}
	for i, p := range c.pools {
		if p.Role == RoleDecode {
			continue
		}
		c.provisionBooted(p, counts[i])
	}
}

// provisionBooted adds n pre-booted TP8 nodes to a pool at t=0, splitting
// the budget with the pool's decode twin under disaggregation.
func (c *Cluster) provisionBooted(p *Pool, n int) {
	if p.Role == RolePrefill {
		pre, dec := splitNodes(n)
		tw := c.decodeTwin(p)
		for k := 0; k < pre; k++ {
			c.addInstance(p, model.TP8, 0, true)
		}
		p.targetGPUs = pre * 8
		for k := 0; k < dec; k++ {
			c.addInstance(tw, model.TP8, 0, true)
		}
		tw.targetGPUs = dec * 8
		return
	}
	for k := 0; k < n; k++ {
		c.addInstance(p, model.TP8, 0, true)
	}
	p.targetGPUs = n * 8
}

// peakRates computes each pool's peak arrival rate over cluster epochs.
// Counts live in per-pool slot tables sized from the trace horizon (the
// slot index is a direct array offset, not a hashed map key).
func (c *Cluster) peakRates(tr trace.Trace) []float64 {
	peaks := make([]float64, len(c.pools))
	if len(tr) == 0 {
		return peaks
	}
	epoch := c.opts.ClusterEpoch
	slots := int(float64(traceHorizon(tr))/epoch) + 1
	counts := make([][]float64, len(c.pools))
	var counter uint64
	for _, e := range tr {
		pool := c.pooling.PoolFor(e.Class(), counter)
		counter++
		if counts[pool] == nil {
			counts[pool] = make([]float64, slots)
		}
		counts[pool][int(float64(e.At)/epoch)]++
	}
	for pool, slotCounts := range counts {
		for _, n := range slotCounts {
			if r := n / epoch; r > peaks[pool] {
				peaks[pool] = r
			}
		}
	}
	return peaks
}

// traceHorizon returns the latest event time in a trace (robust to
// unsorted traces).
func traceHorizon(tr trace.Trace) simclock.Time {
	var maxAt simclock.Time
	for _, e := range tr {
		if e.At > maxAt {
			maxAt = e.At
		}
	}
	return maxAt
}

// Run drives the trace through the cluster and returns the aggregated
// result. The simulation is discrete-time at the instance-manager epoch,
// matching the paper's large-scale simulator (§V-E).
func Run(tr trace.Trace, opts Options) *Result {
	return RunWithRepo(tr, opts, nil)
}

// RunWithRepo is Run with a shared profile repository (experiments reuse
// profiles across the six systems).
func RunWithRepo(tr trace.Trace, opts Options, repo *profile.Repository) *Result {
	sm := newSimulation(tr, opts, repo)
	for tick := 0; tick < sm.nTicks; tick++ {
		sm.step(tick)
	}
	sm.finish()
	return sm.res
}

// newSimulation prepares a run: cluster construction, static
// provisioning, result sinks, and the reusable tick-loop scratch state.
// Callers drive it with step(0..nTicks-1) and close with finish.
func newSimulation(tr trace.Trace, opts Options, repo *profile.Repository) *simulation {
	opts = opts.withDefaults()
	if opts.WarmLoad == nil {
		// No history supplied: train the load template on the trace
		// itself, as the paper's predictor trains on prior weeks of the
		// same periodic workload (§IV-E/[62]).
		opts.WarmLoad = traceTemplate(tr, opts.ClusterEpoch)
	}
	c := NewCluster(opts, repo)
	opts = c.opts

	res := &Result{
		Opts:            opts,
		TTFT:            metrics.NewDist(),
		TBT:             metrics.NewDist(),
		ClusterPowerW:   metrics.NewDist(),
		GPUPowerW:       metrics.NewDist(),
		PowerSeries:     metrics.NewSeries(simclock.Minute),
		FreqSeries:      metrics.NewSeries(simclock.Minute),
		PoolFreqSeries:  map[workload.Class]*metrics.Series{},
		ShardSeries:     map[model.TP]*metrics.Series{},
		PoolShardSeries: map[workload.Class]map[model.TP]*metrics.Series{},
		PoolLoadSeries:  map[workload.Class]*metrics.Series{},
		EnergySeries:    metrics.NewSeries(5 * simclock.Minute),
	}
	for _, cls := range c.tracked {
		res.PoolFreqSeries[cls] = metrics.NewSeries(simclock.Minute)
		res.PoolShardSeries[cls] = map[model.TP]*metrics.Series{}
		res.PoolLoadSeries[cls] = metrics.NewSeries(simclock.Minute)
		for _, tp := range model.TPChoices {
			res.PoolShardSeries[cls][tp] = metrics.NewSeries(simclock.Minute)
		}
	}
	for _, tp := range model.TPChoices {
		res.ShardSeries[tp] = metrics.NewSeries(simclock.Minute)
	}
	if opts.Fidelity == FidelityEvent {
		for i := range res.ClassTTFT {
			res.ClassTTFT[i] = metrics.NewDist()
			res.ClassTBT[i] = metrics.NewDist()
		}
	}

	// The backend must be installed before any controller (including
	// newControls) can touch the shared state.
	c.shared.backend = newBackend(opts.Fidelity, c, res)

	c.staticProvision(tr)

	var end simclock.Time
	if n := len(tr); n > 0 {
		end = tr[n-1].At
	}
	// Round the horizon up to a whole tick.
	horizon := simclock.Time(math.Ceil(float64(end)/opts.Tick) * opts.Tick)
	res.Duration = float64(horizon)
	if res.Duration == 0 {
		res.Duration = opts.Tick
	}

	sm := &simulation{
		c:                c,
		s:                c.shared,
		res:              res,
		tr:               tr,
		opts:             opts,
		ctl:              newControls(c, res),
		nTicks:           int(res.Duration / opts.Tick),
		lastPoolEpoch:    -1,
		lastClusterEpoch: -1,
	}
	c.shared.backend.bind(sm)
	sm.reserve()
	return sm
}

// assign accumulates one instance's arrivals for the current tick. Entries
// live in a flat slice indexed by instance ID and are invalidated lazily
// by tick stamp, so the router never allocates or clears per tick.
type assign struct {
	tick             int // 1-based tick stamp (0 = never touched)
	n, inTok, outTok float64
	reqs             []int32 // indices into simulation.reqs
}

// simulation is the per-run tick-loop state: the cluster plus the scratch
// buffers the hot path reuses across ticks. In steady state (no epoch
// reconfiguration in flight) step performs zero heap allocations.
type simulation struct {
	c    *Cluster
	s    *sharedState
	res  *Result
	tr   trace.Trace
	opts Options

	nTicks           int
	idx              int // next trace event
	lastPoolEpoch    int
	lastClusterEpoch int

	// injected is the live-injection queue (Live.Inject): arrivals
	// inserted after the run started, kept time-sorted and merged with
	// the base trace at consumption so neither stream is ever memmoved.
	// injIdx is its consumption cursor; arrivals numbers requests across
	// both streams (for a pure-trace run it equals idx, so batch IDs are
	// unchanged).
	injected []trace.Entry
	injIdx   int
	arrivals uint64

	// ctl is the reusable Controls facade handed to Options.Hook each
	// tick (allocated once at setup).
	ctl *Controls

	// assigns is indexed by Instance.ID (IDs are dense: handed out
	// sequentially and never reused, so the slice grows with the total
	// number of instances ever created, not with simulated time).
	assigns []assign
	// reqs pools this tick's workload.Request values; assign entries
	// refer to them by index because the backing array may move while a
	// tick's arrivals are still being appended.
	reqs []workload.Request

	// retryQ holds squashed requests awaiting their backoff deadline
	// (frontend retry, §IV-D). Appends happen only in the serial phases
	// (routing, delivery, retirement, finish), so its order — and the
	// whole retry schedule — is deterministic for any StepJobs. Empty in
	// steady state: drainRetries is a single length check then.
	retryQ []retryEntry
	// retryScratch stages the due prefix during drainRetries so
	// re-admission may push fresh failures onto retryQ mid-drain.
	retryScratch []retryEntry //snapshot:ignore drain-scoped scratch; always empty between ticks
	// draining marks the post-horizon backend drain (finish): failures
	// surfaced there are terminal — a retry could never be served.
	draining bool //snapshot:ignore only set inside finish(), after the last possible snapshot point
}

// retryEntry is one squashed request waiting out its retry backoff.
type retryEntry struct {
	due simclock.Time
	req workload.Request
}

// reserve pre-sizes the scratch buffers and series so the steady-state
// loop does not grow them tick by tick.
func (sm *simulation) reserve() {
	perTick := 256
	if sm.nTicks > 0 {
		if est := 4 * len(sm.tr) / sm.nTicks; est > perTick {
			perTick = est
		}
	}
	sm.reqs = make([]workload.Request, 0, perTick)
	sm.assigns = make([]assign, 64)

	res := sm.res
	series := []*metrics.Series{res.PowerSeries, res.FreqSeries, res.EnergySeries}
	//dynamolint:order-independent each series is Reserved exactly once; visit order has no effect
	for _, s := range res.PoolFreqSeries {
		series = append(series, s)
	}
	//dynamolint:order-independent each series is Reserved exactly once; visit order has no effect
	for _, s := range res.PoolLoadSeries {
		series = append(series, s)
	}
	//dynamolint:order-independent each series is Reserved exactly once; visit order has no effect
	for _, s := range res.ShardSeries {
		series = append(series, s)
	}
	//dynamolint:order-independent each series is Reserved exactly once; visit order has no effect
	for _, byTP := range res.PoolShardSeries {
		//dynamolint:order-independent each series is Reserved exactly once; visit order has no effect
		for _, s := range byTP {
			series = append(series, s)
		}
	}
	for _, s := range series {
		s.Reserve(res.Duration)
	}
}

// assignFor returns the live assign entry for an instance ID, resetting a
// stale one from an earlier tick in place.
func (sm *simulation) assignFor(id int) *assign {
	if id >= len(sm.assigns) {
		grown := make([]assign, id+1, 2*(id+1))
		copy(grown, sm.assigns)
		sm.assigns = grown
	}
	a := &sm.assigns[id]
	if a.tick != sm.s.curTick {
		a.tick = sm.s.curTick
		a.n, a.inTok, a.outTok = 0, 0, 0
		a.reqs = a.reqs[:0]
	}
	return a
}

// step advances the simulation by one instance-manager tick.
//
//dynamolint:steadystate
func (sm *simulation) step(tick int) {
	c, s, res, opts := sm.c, sm.s, sm.res, sm.opts
	s.curTick = tick + 1
	now := simclock.Time(float64(tick) * opts.Tick)
	tickEnd := now + simclock.Time(opts.Tick)

	// Lifecycle timers.
	for _, p := range c.pools {
		for _, in := range p.Instances {
			in.settle(now)
		}
	}

	// Injected events (scenario engine): outages, price moves, SLO
	// windows take effect before any controller looks at the cluster.
	if opts.Hook != nil {
		sm.ctl.now = now
		opts.Hook.OnTick(now, sm.ctl)
	}

	// Cluster manager epoch (§IV-B scale-out/in).
	if ce := int(float64(now) / opts.ClusterEpoch); ce != sm.lastClusterEpoch {
		sm.lastClusterEpoch = ce
		if opts.ScaleInstances {
			c.clusterManagerEpoch(now, res)
		}
	}
	// Pool manager epoch (§IV-B shard-up/down).
	if pe := int(float64(now) / opts.PoolEpoch); pe != sm.lastPoolEpoch {
		sm.lastPoolEpoch = pe
		if opts.ScaleSharding {
			for _, p := range c.pools {
				res.Reshards += p.reshardPool(s, now, p.poolRate())
			}
		}
	}
	// Out-of-band escalation (§IV-D): a pool whose instance managers
	// raised emergencies re-solves immediately with extra headroom,
	// using its idle GPU budget. Only the optimized re-sharding path
	// is fast enough to help; the naive stop-and-reload path would
	// make the outage worse.
	if opts.ScaleSharding && opts.ReducedOverheads {
		for _, p := range c.pools {
			if p.emergencyFlag && now > p.lastEmergencyReshard+60 {
				p.lastEmergencyReshard = now
				res.Reshards += p.reshardPool(s, now, p.poolRate()*1.6)
				// If the pool's whole GPU budget cannot cover the
				// demand, escalate to the cluster level: pre-warm an
				// extra node immediately instead of waiting for the
				// next 30-minute epoch.
				if opts.ScaleInstances {
					capTotal := 0.0
					for _, in := range p.Instances {
						if in.Active(now) {
							capTotal += in.capacity(s)
						}
					}
					if p.poolRate() > capTotal*0.9 {
						p.targetGPUs += 8
						c.addInstance(p, model.TP8, now, false)
						res.ScaleOuts++
					}
				}
			}
			p.emergencyFlag = false
		}
	}

	// Scale-in and re-sharding park instances stateOff; drop them now so
	// nothing downstream ever scans a dead instance again.
	c.compactPools()

	// Route this tick's arrivals (§IV-D predictive scheduling). Squashed
	// requests whose retry backoff expired re-enter first: they arrived
	// before anything in this tick.
	sm.reqs = sm.reqs[:0]
	sm.drainRetries(now)
	for {
		e, ok := sm.nextArrival(tickEnd)
		if !ok {
			break
		}
		sm.arrivals++
		res.Requests++ // counted once per request, at first arrival
		sm.reqs = append(sm.reqs, workload.Request{
			ID:           sm.arrivals,
			Tag:          e.Tag,
			PromptGroup:  e.PromptGroup,
			Arrival:      e.At,
			InputTokens:  e.InputTokens,
			OutputTokens: e.OutputTokens,
			// sloMult < 1 models an injected SLO-tightening window: the
			// request is judged against the crunched target while the
			// controllers keep planning for the nominal one.
			SLOScale: opts.SLOScale * s.sloMult,
		})
		req := &sm.reqs[len(sm.reqs)-1]
		req.PredictedClass = s.lenPred.PredictClass(e.InputTokens, e.OutputTokens)
		pool := c.route(req, now)
		// Misprediction handling (§IV-D): the engine discovers the
		// true length as generation proceeds. An under-predicted
		// request is re-steered to the correct pool: the wrong pool
		// has already spent admission and prefill work on it (wasted
		// energy), and the request pays a detection delay.
		if trueCls := req.Class(); trueCls != req.PredictedClass {
			wrongPool := pool
			if wi := wrongPool.pickInstance(s, now); wi != nil {
				wi.tickAssigned += 0.5 // wasted prefill/admission work
			}
			if trueCls.Output() > req.PredictedClass.Output() {
				// Under-estimate: move to the correct pool once the
				// output outgrows the prediction.
				req.PredictedClass = trueCls
				pool = c.route(req, now)
				st := c.instanceSteady(c.earliestOrAny(wrongPool))
				req.SteerPenalty = 3*st.IterTime + 0.05
			}
			// Over-estimates stay where they were routed: they run
			// with sub-optimal energy but unaffected latency.
		}
		// An injected submission-delay blip holds every arrival at the
		// frontend; the request pays it like a steering detour.
		req.SteerPenalty += s.submitDelay
		in := pool.pickInstance(s, now)
		if in == nil {
			// Every instance is transitioning: queue on the one
			// that returns first rather than dropping (the request
			// pays the wait in its TTFT).
			in = earliestReady(pool)
		}
		if in == nil {
			// Pool has nothing at all: hand the request to the frontend
			// retry path (§IV-D) — it re-enters the router after a
			// backoff, or is terminally squashed once out of budget.
			r := *req
			sm.reqs = sm.reqs[:len(sm.reqs)-1]
			sm.frontendFail(r, now)
			continue
		}
		a := sm.assignFor(in.ID)
		a.n++
		a.inTok += float64(e.InputTokens)
		a.outTok += float64(e.OutputTokens)
		a.reqs = append(a.reqs, int32(len(sm.reqs)-1))
		in.tickAssigned++
		s.backend.Admit(in, req, now)
		pool.arrivalsThisTick++
		if pool.observedSince == 0 {
			pool.observedSince = now
			if pool.observedSince == 0 {
				pool.observedSince = simclock.Time(1e-9)
			}
		}
	}

	// The event backend serves the tick's arrivals here (engines advance
	// on the shared virtual clock up to the tick boundary); the fluid
	// backend evaluates instances analytically in Advance below.
	s.backend.RunTo(tickEnd)

	sm.accountTick(now)
}

// nextArrival pops the earliest pending arrival before tickEnd, merging
// the base trace with the live-injection queue (base entries first among
// equal instants, so a pure-trace run consumes in exactly the batch
// order). The consumed injection prefix is compacted lazily so the queue
// reuses its backing array.
func (sm *simulation) nextArrival(tickEnd simclock.Time) (trace.Entry, bool) {
	haveBase := sm.idx < len(sm.tr) && sm.tr[sm.idx].At < tickEnd
	haveInj := sm.injIdx < len(sm.injected) && sm.injected[sm.injIdx].At < tickEnd
	switch {
	case haveBase && (!haveInj || sm.tr[sm.idx].At <= sm.injected[sm.injIdx].At):
		e := sm.tr[sm.idx]
		sm.idx++
		return e, true
	case haveInj:
		e := sm.injected[sm.injIdx]
		sm.injected[sm.injIdx] = trace.Entry{}
		sm.injIdx++
		if sm.injIdx == len(sm.injected) {
			sm.injected = sm.injected[:0]
			sm.injIdx = 0
		}
		return e, true
	}
	return trace.Entry{}, false
}

// frontendFail is the single choke point for a request that lost its
// instance (outage drain, dead-target delivery, pool with no capacity).
// With budget left it schedules a retry after an exponential backoff in
// virtual time (Result.Retried); past the budget — or past the bounded
// retry queue — the request is terminal: Squashed, or Shed on overflow.
// Callers are all serial phases, so retry order is StepJobs-independent.
func (sm *simulation) frontendFail(r workload.Request, now simclock.Time) {
	if sm.draining {
		// The run is over: a retry scheduled now could never be served,
		// so failures surfaced by the final drain are terminal.
		sm.res.Squashed++
		sm.terminalDrop(r)
		return
	}
	if budget := sm.opts.RetryBudget; budget > 0 && r.Retries < budget {
		if len(sm.retryQ) < retryQueueCap {
			r.Retries++
			sm.res.Retried++
			// A fresh attempt: any partial progress died with the
			// instance. Arrival is preserved so TTFT keeps measuring
			// from the original submission.
			r.FirstToken, r.Finish = 0, 0
			delay := retryBackoffBase * math.Pow(2, float64(r.Retries-1))
			if delay > retryBackoffCap {
				delay = retryBackoffCap
			}
			sm.retryQ = append(sm.retryQ, retryEntry{due: now + simclock.Time(delay), req: r})
			return
		}
		// Retry queue full: shed instead of amplifying the failure burst.
		sm.res.Shed++
		sm.terminalDrop(r)
		return
	}
	sm.res.Squashed++
	sm.terminalDrop(r)
}

// terminalDrop marks a request terminally squashed and tells the observer.
func (sm *simulation) terminalDrop(r workload.Request) {
	r.Squashed = true
	if obs := sm.opts.Observer; obs != nil {
		obs.RequestDone(&r, -1, -1, false)
	}
}

// drainRetries re-admits every queued retry whose backoff expired. In
// steady state the queue is empty and this is one length check (the
// zero-allocation tick invariant covers it). Entries re-enter in queue
// order — the order they failed in — so the schedule is deterministic.
func (sm *simulation) drainRetries(now simclock.Time) {
	if len(sm.retryQ) == 0 {
		return
	}
	sm.retryScratch = sm.retryScratch[:0]
	kept := sm.retryQ[:0]
	for _, e := range sm.retryQ {
		if e.due > now {
			kept = append(kept, e)
			continue
		}
		sm.retryScratch = append(sm.retryScratch, e)
	}
	sm.retryQ = kept
	for i := range sm.retryScratch {
		sm.readmit(sm.retryScratch[i].req, now)
	}
}

// readmit routes one retry attempt. The request keeps its predicted class
// and steering penalty (misprediction was already handled on the first
// attempt) and does not recount in Result.Requests; it does feed the
// rate/mix estimators like any other admission, because a retry is real
// load. A failed re-admission goes straight back through frontendFail.
func (sm *simulation) readmit(r workload.Request, now simclock.Time) {
	c, s := sm.c, sm.s
	// Time already burned between the original arrival and this attempt;
	// the fluid latency model adds it to the sampled TTFT.
	r.RetryDelay = float64(now - r.Arrival)
	if r.RetryDelay < 0 {
		r.RetryDelay = 0
	}
	pool := c.route(&r, now)
	in := pool.pickInstance(s, now)
	if in == nil {
		in = earliestReady(pool)
	}
	if in == nil {
		sm.frontendFail(r, now)
		return
	}
	sm.reqs = append(sm.reqs, r)
	req := &sm.reqs[len(sm.reqs)-1]
	a := sm.assignFor(in.ID)
	a.n++
	a.inTok += float64(r.InputTokens)
	a.outTok += float64(r.OutputTokens)
	a.reqs = append(a.reqs, int32(len(sm.reqs)-1))
	in.tickAssigned++
	s.backend.Admit(in, req, now)
	pool.arrivalsThisTick++
	if pool.observedSince == 0 {
		pool.observedSince = now
		if pool.observedSince == 0 {
			pool.observedSince = simclock.Time(1e-9)
		}
	}
}

// accountTick closes one tick: per-instance rate updates, instance
// managers, energy integration, latency sampling, and series capture.
func (sm *simulation) accountTick(now simclock.Time) {
	c, s, res, opts := sm.c, sm.s, sm.res, sm.opts

	// Update per-instance rates, run instance managers, integrate
	// energy, and sample latencies.
	clusterPower := 0.0
	var freqNum, freqDen float64
	for _, p := range c.pools {
		var poolGPUs [3]float64 // indexed by tpIdx over model.TPChoices
		var pFreqNum, pFreqDen float64
		for _, in := range p.Instances {
			if in.state == stateOff {
				continue
			}
			var a *assign
			if in.ID < len(sm.assigns) && sm.assigns[in.ID].tick == s.curTick {
				a = &sm.assigns[in.ID]
			}
			var tickRate float64
			if a != nil {
				tickRate = a.n / opts.Tick
				in.observeMix(a.inTok/a.n, a.outTok/a.n, a.n)
			}
			const ew = 0.3
			in.rate = ew*tickRate + (1-ew)*in.rate
			in.tickAssigned = 0
			if in.rate < 1e-6 {
				in.rate = 0
			}

			// Instance manager (§IV-B scale-up/down + §IV-D
			// emergency handling).
			c.instanceManager(in, now, res)

			// Backend tick: service dynamics, backlog signal, latency
			// accounting; returns the tick's average power draw.
			watts := s.backend.Advance(in, a, now)
			clusterPower += watts
			res.GPUSeconds += float64(in.TP.GPUs()) * opts.Tick
			perGPU := watts / float64(in.TP.GPUs())
			res.GPUPowerW.Add(perGPU)
			poolGPUs[tpIdx(in.TP)] += float64(in.TP.GPUs())
			pFreqNum += float64(in.effFreq()) * float64(in.TP.GPUs())
			pFreqDen += float64(in.TP.GPUs())

			// Attribute energy to classes by served mix.
			tickJ := watts * opts.Tick
			res.EnergyJ += tickJ
			res.EnergyCostUSD += energy.KWh(tickJ) * opts.EnergyPriceUSDPerKWh * s.priceMult
			cls := workload.Classify(int(in.mixIn), int(in.mixOut))
			res.EnergyByClassJ[cls] += tickJ
			res.EnergySeries.Accumulate(float64(now), tickJ)
		}
		// Per-pool tracked series.
		for _, cls := range c.tracked {
			if c.pooling.classPool[cls] == p.Index {
				if pFreqDen > 0 {
					res.PoolFreqSeries[cls].Observe(float64(now), pFreqNum/pFreqDen, pFreqDen)
				}
				for ti, tp := range model.TPChoices {
					res.PoolShardSeries[cls][tp].Observe(float64(now), poolGPUs[ti], 1)
				}
				res.PoolLoadSeries[cls].Observe(float64(now), float64(p.arrivalsThisTick)/opts.Tick, 1)
			}
		}
		for ti, tp := range model.TPChoices {
			res.ShardSeries[tp].Observe(float64(now), poolGPUs[ti], 1)
		}
		freqNum += pFreqNum
		freqDen += pFreqDen

		// Feed the load predictor. Decode twins see no router arrivals —
		// feeding their permanent zeros would dilute the class template
		// with duplicate observations.
		if p.Role != RoleDecode {
			for _, cls := range p.Classes {
				share := float64(p.arrivalsThisTick) / opts.Tick / float64(len(p.Classes))
				s.loadPred.Observe(now, cls, share)
			}
		}
		p.arrivalsThisTick = 0
	}
	res.ClusterPowerW.Add(clusterPower)
	res.PowerSeries.Observe(float64(now), clusterPower, 1)
	if freqDen > 0 {
		res.FreqSeries.Observe(float64(now), freqNum/freqDen, 1)
	}
}

// finish closes out the run-level aggregates.
func (sm *simulation) finish() {
	res := sm.res
	sm.draining = true
	sm.s.backend.Finish(simclock.Time(res.Duration))
	// Retries still waiting out their backoff when the run ends can never
	// be served: they are terminally squashed so the conservation
	// identity closes.
	for i := range sm.retryQ {
		res.Squashed++
		sm.terminalDrop(sm.retryQ[i].req)
	}
	sm.retryQ = sm.retryQ[:0]
	res.AvgServers = res.GPUSeconds / 8 / res.Duration
	res.FreqChanges = sm.c.retiredFreqSets
	for _, p := range sm.c.pools {
		for _, in := range p.Instances {
			res.FreqChanges += in.freqCtl.Sets()
		}
	}
	sm.s.curTick = 0
}

// tpChoiceIdx maps a TP degree to its index in model.TPChoices for
// array-indexed per-tick accumulators ([len(model.TPChoices)]float64).
var tpChoiceIdx = func() [model.TP8 + 1]int8 {
	var m [model.TP8 + 1]int8
	for i := range m {
		m[i] = -1
	}
	for i, tp := range model.TPChoices {
		m[tp] = int8(i)
	}
	return m
}()

// tpIdx resolves an instance's TP to its TPChoices slot; a TP outside the
// controller knob space would silently corrupt the shard series, so it
// fails loudly instead.
func tpIdx(tp model.TP) int {
	i := tpChoiceIdx[tp]
	if i < 0 {
		panic("core: instance TP outside model.TPChoices")
	}
	return int(i)
}

// compactPools removes stateOff instances from every pool. Scale-in and
// re-sharding only mark instances off; without compaction every later
// tick re-scans the corpses (rate updates, settle, earliestReady,
// placement), so week-long runs degrade as reconfigurations accumulate.
// Relative order of live instances is preserved, keeping iteration — and
// therefore the simulation — deterministic. Retired frequency-change
// counts are folded into the cluster so Result.FreqChanges stays exact.
func (c *Cluster) compactPools() {
	for _, p := range c.pools {
		live := p.Instances[:0]
		for _, in := range p.Instances {
			if in.state == stateOff {
				c.retiredFreqSets += in.freqCtl.Sets()
				continue
			}
			live = append(live, in)
		}
		if len(live) == len(p.Instances) {
			continue
		}
		// Clear the tail so dropped instances can be collected.
		for i := len(live); i < len(p.Instances); i++ {
			p.Instances[i] = nil
		}
		p.Instances = live
	}
}

// TraceTemplate builds a per-class expected-rate function from a trace —
// the predictor warm-up RunWithRepo derives when Options.WarmLoad is
// unset. Exported for the live serving session, which wraps it at the
// trace replay period when looping (the raw template is zero past the
// trace horizon). slotWidth <= 0 takes the default cluster epoch.
func TraceTemplate(tr trace.Trace, slotWidth float64) func(simclock.Time, workload.Class) float64 {
	if slotWidth <= 0 {
		slotWidth = 30 * simclock.Minute
	}
	return traceTemplate(tr, slotWidth)
}

// traceTemplate builds a per-class rate function from a trace, bucketed at
// the cluster epoch. The table is a dense slice sized from the trace
// horizon; queries outside it return 0 (as the map version did for
// untouched slots).
func traceTemplate(tr trace.Trace, slotWidth float64) func(simclock.Time, workload.Class) float64 {
	if len(tr) == 0 {
		return func(simclock.Time, workload.Class) float64 { return 0 }
	}
	rates := make([][workload.NumClasses]float64, int(float64(traceHorizon(tr))/slotWidth)+1)
	for _, e := range tr {
		rates[int(float64(e.At)/slotWidth)][e.Class()]++
	}
	return func(t simclock.Time, c workload.Class) float64 {
		s := int(float64(t) / slotWidth)
		if s < 0 || s >= len(rates) {
			return 0
		}
		return rates[s][c] / slotWidth
	}
}

// route implements the cluster manager's request steering (§IV-D): predict
// the class, pick its pool, honour the fragmentation spill fraction, and
// fall back to the next-larger pool when the target is overloaded.
func (c *Cluster) route(req *workload.Request, now simclock.Time) *Pool {
	cls := req.PredictedClass
	p := c.pools[c.pooling.PoolFor(cls, c.poolCounter(cls))]
	// Merged pools forward everything to the next-larger pool.
	for hops := 0; p.merged && hops <= len(c.pools); hops++ {
		next := c.pooling.NextLarger(p.Index)
		if next < 0 {
			break
		}
		p = c.pools[next]
	}
	// Fragmentation spill-over.
	if p.spillFrac > 0 && c.shared.rng.Float64() < p.spillFrac {
		if next := c.pooling.NextLarger(p.Index); next >= 0 {
			p = c.pools[next]
		}
	}
	// Walk toward larger pools until one can actually serve: first pool
	// with an instance that has headroom, else the first with any active
	// instance at all (§IV-D overload fallback).
	var firstActive *Pool
	cur := p
	for hops := 0; hops <= len(c.pools); hops++ {
		if in := cur.pickInstance(c.shared, now); in != nil {
			if firstActive == nil {
				firstActive = cur
			}
			if in.rate < in.capacity(c.shared) {
				return cur
			}
		}
		next := c.pooling.NextLarger(cur.Index)
		if next < 0 {
			break
		}
		cur = c.pools[next]
	}
	if firstActive != nil {
		return firstActive
	}
	return p
}

func (c *Cluster) poolCounter(cls workload.Class) uint64 {
	p := c.pools[c.pooling.classPool[cls]]
	p.rrCounter++
	return p.rrCounter
}

// rateBucketStep is the geometric grid for request rates (~8% buckets).
const rateBucketStep = 0.08

// zeroRateBucket is the sentinel rate bucket for idle instances.
const zeroRateBucket = math.MinInt32

// steadyKeyFor grades an instance's operating point onto the geometric
// (rate, shape) grid.
func steadyKeyFor(tp model.TP, f gpu.Freq, rate, inTok, outTok float64) steadyKey {
	key := steadyKey{
		tp:    tp,
		freq:  f,
		rateB: zeroRateBucket,
		inB:   int(math.Round(math.Log(inTok) / shapeBucketStep)),
		outB:  int(math.Round(math.Log(outTok) / shapeBucketStep)),
	}
	if rate > 0 {
		key.rateB = int(math.Round(math.Log(rate+1e-9) / rateBucketStep))
	}
	return key
}

// instanceSteady evaluates the instance's operating point for its current
// mix, rate, and configuration. The instance memoizes its last answer and
// revalidates by key, so the shared (rate, shape)-grid cache is consulted
// only when the instance moves to a new bucket.
func (c *Cluster) instanceSteady(in *Instance) perfmodel.Steady {
	key := steadyKeyFor(in.TP, in.effFreq(), in.rate,
		avgOr(in.mixIn, 512), avgOr(in.mixOut, 200))
	if in.stValid && key == in.stKeyC {
		return in.stC
	}
	st := c.steadyLookup(key)
	in.stKeyC, in.stC, in.stValid = key, st, true
	return st
}

// steadyLookup resolves a bucketed operating point through the shared
// cache, computing the closed-form steady state on a miss.
func (c *Cluster) steadyLookup(key steadyKey) perfmodel.Steady {
	s := c.shared
	if s.steadyCache == nil {
		s.steadyCache = map[steadyKey]perfmodel.Steady{}
	}
	if st, ok := s.steadyCache[key]; ok {
		return st
	}
	rate := 0.0
	if key.rateB != zeroRateBucket {
		rate = math.Exp(float64(key.rateB) * rateBucketStep)
	}
	cfg := perfmodel.Config{Model: c.opts.Model, TP: key.tp, Freq: key.freq}
	st := perfmodel.SteadyStateSLO(cfg, rate,
		int(math.Exp(float64(key.inB)*shapeBucketStep)),
		int(math.Exp(float64(key.outB)*shapeBucketStep)),
		c.opts.SLOScale)
	s.steadyCache[key] = st
	return st
}

type steadyKey struct {
	tp               model.TP
	freq             gpu.Freq
	rateB, inB, outB int
}

// instanceManager is the 5-second controller (§IV-B scale-up/down and
// §IV-D emergencies).
func (c *Cluster) instanceManager(in *Instance, now simclock.Time, res *Result) {
	if in.state != stateActive {
		return
	}
	s := c.shared
	cls := workload.Classify(int(avgOr(in.mixIn, 512)), int(avgOr(in.mixOut, 200)))

	// Emergency: queue building up (§IV-D). Ramp to max frequency, then
	// re-steer backlog to a sibling, finally squash.
	if in.backlog > emergencyBacklogThreshold*math.Max(in.rate, 1) {
		c.pools[in.Pool].emergencyFlag = true
		if !in.emergency {
			res.Emergencies++
			in.emergency = true
		}
		in.freqCtl.Set(gpu.MaxFreq)
		if c.opts.Fidelity == FidelityEvent {
			// The engine owns its queue: emergencies escalate through
			// the pool flag and max frequency, but work is neither
			// re-steered nor squashed behind the engine's back.
			return
		}
		// Re-steer: shed half the backlog to the least-loaded sibling.
		p := c.pools[in.Pool]
		var target *Instance
		for _, other := range p.activeInstances(now) {
			if other != in && other.rate < other.capacity(s)*0.8 {
				if target == nil || other.rate < target.rate {
					target = other
				}
			}
		}
		if target != nil {
			shed := in.backlog / 2
			in.backlog -= shed
			target.backlog += shed
		} else {
			// Shed only the backlog portion whose projected wait
			// (draining at full capacity) still exceeds the threshold.
			// Fluid backlog is load (fractional request-seconds), not
			// request identity — the requests behind it were already
			// sampled as Completed in their arrival tick — so the loss
			// lands in SquashedLoad, outside the request-count ledger.
			slo := workload.SLOFor(cls).TTFT * c.opts.SLOScale
			cap := in.capacity(s)
			overdue := in.backlog - math.Max(cap, 0.2)*slo*squashWaitFactor
			if overdue > 0 {
				in.backlog -= overdue
				res.SquashedLoad += overdue
			}
		}
		return
	}
	in.emergency = false

	if !c.opts.ScaleFrequency {
		in.freqCtl.Set(gpu.MaxFreq)
		return
	}
	// Min-energy feasible frequency for the current load with headroom.
	// Expensive electricity (an injected price surge) shrinks the burst
	// headroom from 15% toward 5%, trading tail slack for joules exactly
	// while they cost the most; at the nominal price the term is 1.15.
	head := 1.05 + 0.10/math.Max(s.priceMult, 1)
	f, ok := s.prof.BestFreq(cls, in.TP, in.rate*head+0.01)
	if !ok {
		f = gpu.MaxFreq
	}
	in.freqCtl.Set(f)
}

// sampleLatencies draws per-request TTFT/TBT from the instance's steady
// state and judges SLOs against each request's true class. reqIdx indexes
// the tick's pooled request buffer.
func (sm *simulation) sampleLatencies(in *Instance, st perfmodel.Steady, reqIdx []int32) {
	c, res := sm.c, sm.res
	rng := c.shared.rng
	saturated := !st.Feasible || st.IterTime == 0
	if saturated {
		// Overloaded instance: it still serves, at its capacity point,
		// with the excess showing up as backlog-driven queueing below.
		capRate := in.capacity(c.shared) * 0.9
		st = c.steadyLookup(steadyKeyFor(in.TP, in.effFreq(),
			math.Max(capRate, 0.01), avgOr(in.mixIn, 512), avgOr(in.mixOut, 200)))
	}
	obs := sm.opts.Observer
	for _, ri := range reqIdx {
		req := &sm.reqs[ri]
		res.Completed++
		if req.Retries > 0 {
			res.RetrySuccess++
		}
		if st.IterTime == 0 {
			res.TTFT.Add(req.SLO().TTFT * 3)
			res.TBT.Add(req.SLO().TBT * 2)
			if obs != nil {
				obs.RequestDone(req, req.SLO().TTFT*3, req.SLO().TBT*2, false)
			}
			continue
		}
		// TTFT: own prompt's chunks at this instance's pace, plus
		// queueing wait scaled by backlog.
		chunks := math.Ceil(float64(req.InputTokens) / perfmodel.PrefillChunk)
		base := chunks*st.ChunkIterTime + 0.5*st.IterTime
		wait := st.TTFTMean - (math.Ceil(avgOr(in.mixIn, 512)/perfmodel.PrefillChunk)*st.ChunkIterTime + 0.5*st.IterTime)
		if wait < 0 {
			wait = 0
		}
		if in.backlog > 0 && in.rate > 0 {
			wait += in.backlog / math.Max(in.capacity(c.shared), in.rate)
		}
		// Tail shaping: exponential-ish spread reaching the modeled P99.
		u := rng.Float64()
		tail := 1.0
		if u > 0.9 {
			tail = 1 + (u-0.9)/0.09*2.2 // up to ~3.2x at P99+
		}
		// RetryDelay charges the whole pre-retry history (backoff plus
		// failed attempts) so the SLO judgement below measures TTFT from
		// the ORIGINAL arrival, not the latest re-admission.
		ttft := base + wait*tail + req.SteerPenalty + req.RetryDelay
		// TBT: mean iteration time; the tail sees chunk-carrying
		// iterations.
		tbt := st.TBTMean * (0.92 + 0.16*rng.Float64())
		if rng.Float64() < 0.02 {
			tbt = math.Max(st.TBTP99, tbt)
		}
		res.TTFT.Add(ttft)
		res.TBT.Add(tbt)

		slo := req.SLO()
		cls := req.Class()
		res.ClassRequests[cls]++
		met := ttft <= slo.TTFT && tbt <= slo.TBT
		if met {
			res.SLOMet++
		} else {
			res.ClassViolations[cls]++
		}
		if obs != nil {
			obs.RequestDone(req, ttft, tbt, met)
		}
	}
}

// clusterManagerEpoch re-sizes every pool (§IV-B scale-out/in): predicted
// peak over the epoch, highest-performance per-node capacity, ceil
// division, fragmentation spill-over, and pre-warmed provisioning.
func (c *Cluster) clusterManagerEpoch(now simclock.Time, res *Result) {
	s := c.shared
	horizon := c.opts.ClusterEpoch
	total := 0
	type want struct {
		pool  *Pool
		nodes int
		pl    float64
		ml    float64
	}
	// First pass: raw demand forecast per pool. Decode twins carry no
	// router arrivals — their budget rides along with the prefill twin's
	// in resizePool, so they are skipped throughout.
	raw := make([]float64, len(c.pools))
	for i, p := range c.pools {
		if p.Role == RoleDecode {
			continue
		}
		var pl float64
		if c.opts.ReducedOverheads {
			// Predictive sizing: forecast the epoch's peak (§IV-C
			// pre-warms VMs for the predicted peak).
			for _, cls := range p.Classes {
				pl += s.loadPred.PredictPeak(now, horizon, cls)
			}
			// Blend with the currently observed rate so a cold or stale
			// template cannot starve a loaded pool.
			if cur := p.poolRate() * 1.3; cur > pl {
				pl = cur
			}
		} else {
			// Naive autoscaling reacts to the current load with a fixed
			// margin; rising load eats the margin while the Table V
			// provisioning latency plays out (the ScaleInst tail, §V-B).
			pl = p.poolRate() * 1.3
		}
		raw[i] = pl
	}
	// Pool merging (§III-B): a pool whose demand would leave most of a
	// highest-performance node idle hands its load to the next-larger
	// pool. Walk smallest-first so merges cascade upward.
	merged := make([]bool, len(c.pools))
	if c.opts.ScaleInstances && c.opts.ReducedOverheads && c.opts.NumPools > 1 {
		for _, cls := range sizeOrder {
			i := c.pooling.classPool[cls]
			p := c.pools[i]
			if merged[i] || p.Index != i {
				continue
			}
			next := c.pooling.NextLarger(i)
			if next < 0 {
				continue
			}
			ml := s.prof.MaxLoadHighestPerf(p.repClass(c.pooling))
			if ml > 0 && raw[i] < mergeFraction*ml {
				merged[i] = true
				res.Merges++
				raw[next] += raw[i]
				raw[i] = 0
			}
		}
	}
	wants := make([]want, 0, len(c.pools))
	for i, p := range c.pools {
		if p.Role == RoleDecode {
			continue
		}
		p.merged = merged[i]
		pl := raw[i]
		if p.merged {
			wants = append(wants, want{pool: p, nodes: 0})
			continue
		}
		if pl <= 0 {
			// Cold start with no signal: keep the current allocation.
			continue
		}
		// Per-node capacity at the highest-performance configuration,
		// evaluated on the pool's LIVE mix when available (heavy tails
		// within a class make the class representative optimistic).
		rep := p.repClass(c.pooling)
		ml := s.prof.MaxLoadHighestPerf(rep)
		if mi, mo := p.meanMixIn(), p.meanMixOut(); mi > 0 {
			if live := s.shapeCapacity(model.TP8, gpu.MaxFreq, mi, mo); live > 0 && live < ml {
				ml = live
			}
		}
		nodes := 1
		if ml > 0 {
			nodes = int(math.Ceil(pl * provisionHeadroom / ml))
		}
		if nodes < 1 {
			nodes = 1
		}
		wants = append(wants, want{pool: p, nodes: nodes, pl: pl, ml: ml})
		total += nodes
	}

	// Fleet ceiling: shrink proportionally if over budget (merged pools
	// stay at zero).
	if c.opts.Servers > 0 && total > c.opts.Servers {
		scale := float64(c.opts.Servers) / float64(total)
		for i := range wants {
			if wants[i].nodes > 0 {
				wants[i].nodes = int(math.Max(1, math.Floor(float64(wants[i].nodes)*scale)))
			}
		}
	}

	for i := range wants {
		w := &wants[i]
		p := w.pool
		// Fragmentation handling (§IV-B): if the pool is overprovisioned
		// by more than half a node, hand one node back and spill the
		// uncovered load fraction to the next-larger pool.
		p.spillFrac = 0
		if w.nodes >= 2 && w.ml > 0 {
			slack := float64(w.nodes)*w.ml - w.pl
			if slack > 0.5*w.ml && c.pooling.NextLarger(p.Index) >= 0 {
				w.nodes--
				uncovered := w.pl - float64(w.nodes)*w.ml
				if uncovered > 0 {
					p.spillFrac = uncovered / w.pl
				}
			}
		}
		c.resizePool(p, w.nodes, now, res)
	}
}

// resizePool adjusts a pool's node budget. Unified pools resize directly;
// a prefill pool splits the budget with its decode twin (~40/60 — prefill
// is compute-dense, decode holds the long-lived KV) so the cluster
// manager keeps reasoning about one logical pool per request type.
func (c *Cluster) resizePool(p *Pool, nodes int, now simclock.Time, res *Result) {
	if p.Role == RolePrefill {
		tw := c.decodeTwin(p)
		tw.merged = p.merged
		pre, dec := splitNodes(nodes)
		c.resizePoolNodes(p, pre, now, res)
		c.resizePoolNodes(tw, dec, now, res)
		return
	}
	c.resizePoolNodes(p, nodes, now, res)
}

// resizePoolNodes adjusts one physical pool's node count, pre-warming on
// scale-out and draining on scale-in.
func (c *Cluster) resizePoolNodes(p *Pool, nodes int, now simclock.Time, res *Result) {
	p.targetGPUs = nodes * 8
	cur := 0
	for _, in := range p.Instances {
		if in.state != stateOff {
			cur++
		}
	}
	// The pool may be sharded into multiple instances per node; compare
	// GPU totals instead of instance counts.
	curGPUs := p.gpusInUse()
	wantGPUs := nodes * 8
	for curGPUs < wantGPUs {
		// Pre-warmed VMs come up fast under ReducedOverheads; the naive
		// path pays the full Table V latency.
		c.addInstance(p, model.TP8, now, false)
		curGPUs += 8
		res.ScaleOuts++
	}
	for curGPUs > wantGPUs {
		victim := c.leastLoaded(p)
		if victim == nil {
			break
		}
		if !p.merged && len(p.activeInstances(now))+provisioningCount(p) <= 1 {
			break
		}
		curGPUs -= victim.TP.GPUs()
		victim.state = stateOff
		c.shared.retire(victim, now, true)
		res.ScaleIns++
	}
	_ = cur
}

func provisioningCount(p *Pool) int {
	n := 0
	for _, in := range p.Instances {
		if in.state == stateProvisioning {
			n++
		}
	}
	return n
}

// earliestOrAny returns some live instance for state queries; a pool with
// nothing at all falls back to a per-cluster probe instance, reused so the
// per-request hot path never allocates.
func (c *Cluster) earliestOrAny(p *Pool) *Instance {
	if in := earliestReady(p); in != nil {
		return in
	}
	if c.steadyProbe == nil {
		c.steadyProbe = &Instance{TP: model.TP8, freqCtl: gpu.NewFreqController(true), throughputFactor: 1, slowFactor: 1, mixIn: 512, mixOut: 187}
	}
	return c.steadyProbe
}

// earliestReady returns the non-off instance that will serve soonest.
func earliestReady(p *Pool) *Instance {
	var best *Instance
	for _, in := range p.Instances {
		if in.state == stateOff {
			continue
		}
		if best == nil || in.readyAt < best.readyAt {
			best = in
		}
	}
	return best
}

func (c *Cluster) leastLoaded(p *Pool) *Instance {
	var victim *Instance
	for _, in := range p.Instances {
		if in.state == stateOff {
			continue
		}
		if victim == nil || in.rate < victim.rate {
			victim = in
		}
	}
	return victim
}
