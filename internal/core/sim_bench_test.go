package core

import (
	"testing"

	"dynamollm/internal/profile"
	"dynamollm/internal/trace"
)

// benchRun drives one system over a 30-minute high-load window. The
// -benchmem numbers for these benchmarks are the tick loop's steady-state
// cost: everything outside the loop (profile building, trace generation)
// is shared across iterations or excluded by ResetTimer.
func benchRun(b *testing.B, system string) {
	b.Helper()
	repo := profile.NewRepository(nil)
	tr := trace.OpenSourceHour(45, 11).Window(0, 1800)
	opts, ok := SystemByName(system)
	if !ok {
		b.Fatalf("unknown system %q", system)
	}
	opts.Seed = 7
	opts.WarmLoad = warmConv
	// Build profiles and caches outside the measurement.
	RunWithRepo(tr, opts, repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunWithRepo(tr, opts, repo)
		if res.Requests == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkTickLoopSinglePool(b *testing.B) { benchRun(b, "singlepool") }

func BenchmarkTickLoopDynamoLLM(b *testing.B) { benchRun(b, "dynamollm") }

// BenchmarkTickLoopRetry measures the tick loop with the frontend retry
// path hot: server failures mid-window squash in-flight work, which
// re-enters through the retry queue and is served after recovery. Event
// fidelity, because only engine-held requests are individually killed
// and readmitted (the fluid model resolves outage backlog in aggregate).
func BenchmarkTickLoopRetry(b *testing.B) {
	repo := profile.NewRepository(nil)
	tr := trace.OpenSourceHour(45, 11).Window(0, 900)
	opts, _ := SystemByName("dynamollm")
	opts.Seed = 7
	opts.Fidelity = FidelityEvent
	opts.WarmLoad = warmConv
	hook := func() TickHook {
		return NewTimeline([]TimelineEvent{
			{At: 200, Do: func(ctl *Controls) { ctl.FailServers(2) }},
			{At: 400, Do: func(ctl *Controls) { ctl.RecoverServers(2) }},
			{At: 600, Do: func(ctl *Controls) { ctl.FailServers(2) }},
			{At: 700, Do: func(ctl *Controls) { ctl.RecoverServers(2) }},
		})
	}
	opts.Hook = hook()
	if res := RunWithRepo(tr, opts, repo); res.Retried == 0 {
		b.Fatal("retry path not exercised")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Hook = hook() // timelines carry cursor state: fresh per run
		res := RunWithRepo(tr, opts, repo)
		if res.Requests == 0 {
			b.Fatal("empty run")
		}
	}
}
