package core

import (
	"testing"

	"dynamollm/internal/profile"
	"dynamollm/internal/trace"
)

// benchRun drives one system over a 30-minute high-load window. The
// -benchmem numbers for these benchmarks are the tick loop's steady-state
// cost: everything outside the loop (profile building, trace generation)
// is shared across iterations or excluded by ResetTimer.
func benchRun(b *testing.B, system string) {
	b.Helper()
	repo := profile.NewRepository(nil)
	tr := trace.OpenSourceHour(45, 11).Window(0, 1800)
	opts, ok := SystemByName(system)
	if !ok {
		b.Fatalf("unknown system %q", system)
	}
	opts.Seed = 7
	opts.WarmLoad = warmConv
	// Build profiles and caches outside the measurement.
	RunWithRepo(tr, opts, repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunWithRepo(tr, opts, repo)
		if res.Requests == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkTickLoopSinglePool(b *testing.B) { benchRun(b, "singlepool") }

func BenchmarkTickLoopDynamoLLM(b *testing.B) { benchRun(b, "dynamollm") }
