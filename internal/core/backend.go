package core

import (
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/engine"
	"dynamollm/internal/gpu"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// InstanceBackend is the instance service model behind the cluster
// simulation. The controllers (cluster manager, pool managers, instance
// managers) and the router are backend-agnostic: they read the same load
// signals (rate EWMAs, capacity, backlog) whichever backend is installed,
// and the backend decides how an instance actually serves its work — the
// closed-form fluid model (fluidBackend, Options.Fidelity=FidelityFluid)
// or one event-level engine per instance on a shared virtual clock
// (eventBackend, FidelityEvent).
//
// Call protocol, per tick: Admit for every routed request, then RunTo once
// at the end of routing, then Advance once per live instance. Retire fires
// when an instance is parked stateOff (graceful scale-in/re-shard surplus
// vs. abrupt outage), Reconfigure when applyReshard changes its TP degree,
// and Finish once after the last tick.
type InstanceBackend interface {
	// Admit registers one routed request on the instance for this tick.
	Admit(in *Instance, req *workload.Request, now simclock.Time)
	// RunTo advances backend-internal time to the end of the current
	// tick, after routing and before per-instance accounting.
	RunTo(tickEnd simclock.Time)
	// Advance closes one tick for a live instance — service dynamics,
	// backlog signal, latency accounting — and returns the instance's
	// average power draw over the tick in watts.
	Advance(in *Instance, a *assign, now simclock.Time) float64
	// Retire handles an instance leaving service (already stateOff).
	// graceful departures may migrate in-flight work; outages drop it.
	Retire(in *Instance, now simclock.Time, graceful bool)
	// Reconfigure reacts to a TP/transition change applied by the
	// re-sharding planner.
	Reconfigure(in *Instance, now simclock.Time)
	// Finish closes the run after the last tick (drain in-flight work).
	Finish(end simclock.Time)

	// bind attaches the backend to the running simulation's scratch
	// state; the interface is internal to the package by construction.
	bind(sm *simulation)
}

// newBackend builds the backend for the options.
func newBackend(f Fidelity, c *Cluster, res *Result) InstanceBackend {
	if f == FidelityEvent {
		return newEventBackend(c, res)
	}
	return &fluidBackend{res: res}
}

// --- Fluid backend ----------------------------------------------------------------

// fluidBackend is the extracted closed-form path: each instance's tick is
// evaluated at its bucketed steady-state operating point (perfmodel.Steady)
// and latencies are sampled analytically. It is behaviour-preserving with
// respect to the pre-refactor tick loop: same arithmetic, same RNG draw
// order, zero allocations per steady-state tick.
type fluidBackend struct {
	sm  *simulation
	res *Result
}

func (b *fluidBackend) bind(sm *simulation) { b.sm = sm }

func (b *fluidBackend) Admit(*Instance, *workload.Request, simclock.Time) {}

func (b *fluidBackend) RunTo(simclock.Time) {}

func (b *fluidBackend) Advance(in *Instance, a *assign, now simclock.Time) float64 {
	sm := b.sm
	c, s, opts := sm.c, sm.s, sm.opts

	// Steady state for this tick.
	st := c.instanceSteady(in)
	if in.rate > 0.01 && st.Rho > 0.01 {
		in.capEst = in.rate / st.Rho * maxCapFraction
	} else {
		in.capEst = 0 // fall back to profile capacity
	}

	// Backlog dynamics: demand beyond capacity queues.
	cap := in.capacity(s)
	if in.rate > cap {
		in.backlog += (in.rate - cap) * opts.Tick
	} else if in.backlog > 0 {
		drain := (cap - in.rate) * opts.Tick
		in.backlog = math.Max(0, in.backlog-drain)
	}

	watts := st.Power
	if in.state == stateProvisioning {
		watts = gpu.H100.IdlePower * float64(in.TP.GPUs())
	}

	// Latency samples for requests assigned this tick.
	if a != nil {
		sm.sampleLatencies(in, st, a.reqs)
	}
	return watts
}

func (b *fluidBackend) Retire(in *Instance, now simclock.Time, graceful bool) {
	// An abrupt outage drops the instance's queued work; planned
	// departures drain it through the ordinary rate dynamics.
	if graceful {
		return
	}
	if in.backlog > 0 {
		if b.res != nil {
			b.res.Squashed += int(in.backlog)
		}
		in.backlog = 0
	}
}

func (b *fluidBackend) Reconfigure(*Instance, simclock.Time) {}

func (b *fluidBackend) Finish(simclock.Time) {}

// --- Event backend ----------------------------------------------------------------

// eventBackend runs every instance on its own event-level engine, all
// sharing one virtual clock per simulation (deterministic and independent
// of experiment parallelism: no state leaves the run). Requests are
// submitted at their true arrival instants; queueing, batching, KV
// admission, and tail latencies emerge from the engine instead of being
// sampled from the fluid formulas. Energy is the engine meters' integral;
// per-class token-level TTFT/TBT land in Result.ClassTTFT/ClassTBT.
type eventBackend struct {
	sm    *simulation
	c     *Cluster
	s     *sharedState
	res   *Result
	clock *simclock.Clock

	// engines is dense by Instance.ID (IDs are handed out sequentially
	// and never reused).
	engines []*instEngine
	// scratch stages drained requests during migrations.
	scratch []workload.Request
}

// instEngine is one instance's engine plus per-tick metering state.
type instEngine struct {
	eng *engine.Engine
	// lastJ is the meter reading at the previous tick boundary.
	lastJ float64
	// cls is the served-mix class of the last Advance, for attributing
	// the post-horizon drain tail in Finish.
	cls workload.Class
}

func newEventBackend(c *Cluster, res *Result) *eventBackend {
	return &eventBackend{c: c, s: c.shared, res: res, clock: simclock.New()}
}

func (b *eventBackend) bind(sm *simulation) { b.sm = sm }

// engineFor returns the instance's engine, building it on first touch
// (frozen until readyAt while the instance is still provisioning or mid
// transition). The meter starts at the touch instant, so an instance
// created mid-epoch forgoes at most one tick of idle power relative to
// the fluid backend (~3 kJ per scale-out — noise against run totals).
func (b *eventBackend) engineFor(in *Instance) *instEngine {
	for in.ID >= len(b.engines) {
		b.engines = append(b.engines, nil)
	}
	ie := b.engines[in.ID]
	if ie == nil {
		cfg := perfmodel.Config{Model: b.s.opts.Model, TP: in.TP, Freq: in.freqCtl.Current()}
		ie = &instEngine{eng: engine.New(cfg, b.clock), cls: workload.Classify(int(avgOr(in.mixIn, 512)), int(avgOr(in.mixOut, 200)))}
		ie.eng.SetOnComplete(b.complete)
		ie.eng.SetSink(b)
		if b.s.opts.Observer != nil {
			ie.eng.SetOnToken(b.token)
		}
		if in.state != stateActive && in.readyAt > b.clock.Now() {
			ie.eng.Freeze(in.readyAt)
		}
		b.engines[in.ID] = ie
	}
	return ie
}

func (b *eventBackend) Admit(in *Instance, req *workload.Request, now simclock.Time) {
	// A mispredicted, re-steered request reaches the right engine only
	// after its detection delay.
	at := req.Arrival + simclock.Time(req.SteerPenalty)
	if at < b.clock.Now() {
		at = b.clock.Now()
	}
	r := *req // the tick's request buffer is recycled; submit a copy
	b.submitAt(in, r, at)
}

// submitAt schedules a request onto an instance's engine, re-resolving
// liveness at fire time: if the instance retired between scheduling and
// arrival, the in-transit request is re-routed to the pool's
// earliest-ready sibling (the frontend would never deliver to a dead
// machine), and squashed only when the pool has nothing left.
func (b *eventBackend) submitAt(in *Instance, r workload.Request, at simclock.Time) {
	b.clock.At(at, func() {
		target := in
		if in.state == stateOff {
			target = earliestReady(b.c.pools[in.Pool])
			if target == nil || target == in {
				b.res.Squashed++
				b.notifySquashed(r)
				return
			}
		}
		b.engineFor(target).eng.SubmitCopy(r)
	})
}

func (b *eventBackend) RunTo(tickEnd simclock.Time) {
	b.clock.RunUntil(tickEnd)
}

func (b *eventBackend) Advance(in *Instance, a *assign, now simclock.Time) float64 {
	ie := b.engineFor(in)
	// Propagate the instance manager's DVFS decision, paying the
	// frequency-set stall the controller path implies.
	if f := in.freqCtl.Current(); f != ie.eng.Cfg.Freq {
		stall := gpu.SlowSetOverhead
		if b.s.opts.ReducedOverheads {
			stall = gpu.FastSetOverhead
		}
		ie.eng.SetFreq(f, stall)
	}
	// The controllers' backlog signal is the engine's real admission
	// queue (sequences whose prefill has not started).
	in.backlog = float64(ie.eng.WaitingLen())
	in.capEst = 0
	ie.cls = workload.Classify(int(in.mixIn), int(in.mixOut))

	j := ie.eng.Energy()
	tickJ := j - ie.lastJ
	ie.lastJ = j
	return tickJ / b.s.opts.Tick
}

func (b *eventBackend) Retire(in *Instance, now simclock.Time, graceful bool) {
	var ie *instEngine
	if in.ID < len(b.engines) {
		ie = b.engines[in.ID]
	}
	if ie == nil {
		return
	}
	b.engines[in.ID] = nil
	in.backlog = 0
	if !graceful {
		// Outage: in-flight work dies with the machine.
		b.res.Squashed += ie.eng.Drain(b.squashSink())
		b.settleEnergy(ie, b.clock.Now())
		return
	}
	// Planned departure: drain and migrate to the sibling that will
	// serve soonest; with no sibling left the work is lost.
	b.scratch = b.scratch[:0]
	ie.eng.Drain(func(r workload.Request) { b.scratch = append(b.scratch, r) })
	b.settleEnergy(ie, b.clock.Now())
	target := earliestReady(b.c.pools[in.Pool]) // in is stateOff: skipped
	if target == nil || target == in {
		b.res.Squashed += len(b.scratch)
		for _, r := range b.scratch {
			b.notifySquashed(r)
		}
		b.scratch = b.scratch[:0]
		return
	}
	te := b.engineFor(target)
	for _, r := range b.scratch {
		te.eng.SubmitCopy(r)
	}
	b.scratch = b.scratch[:0]
}

func (b *eventBackend) Reconfigure(in *Instance, now simclock.Time) {
	var ie *instEngine
	if in.ID < len(b.engines) {
		ie = b.engines[in.ID]
	}
	if ie == nil {
		return // engine not built yet; first touch uses the new degree
	}
	// Drain-and-migrate onto the new shard layout: resident sequences
	// cannot survive the layout change, so they restart on the
	// reconfigured engine after the transition stall.
	b.scratch = b.scratch[:0]
	ie.eng.Drain(func(r workload.Request) { b.scratch = append(b.scratch, r) })
	ie.eng.Reconfigure(perfmodel.Config{Model: b.s.opts.Model, TP: in.TP, Freq: in.freqCtl.Current()})
	stallEnd := b.clock.Now()
	if in.readyAt > now {
		stallEnd = in.readyAt
		if tf := in.throughputFactor; tf > 0 && tf < 1 {
			// Soft transition: old shards keep serving at reduced
			// throughput; model the capacity loss as a stall for the
			// lost fraction of the window.
			stallEnd = now + simclock.Time(float64(in.readyAt-now)*(1-tf))
		}
		ie.eng.Freeze(stallEnd)
	}
	// Resubmit after the stall window, not before: an iteration event
	// scheduled before this reshard would otherwise find the requeued
	// work and serve it inside the transition.
	for _, r := range b.scratch {
		b.submitAt(in, r, stallEnd)
	}
	in.backlog = 0
}

// Finish lets in-flight work drain past the horizon (the clock runs until
// every engine is idle), charges the drain tail's energy, and squashes
// anything that can never complete (KV-stuck leftovers).
func (b *eventBackend) Finish(end simclock.Time) {
	b.clock.Run()
	for _, ie := range b.engines {
		if ie == nil {
			continue
		}
		b.res.Squashed += ie.eng.Drain(b.squashSink())
		// The drain tail runs past the horizon; book its energy at the
		// horizon so the series (and carbon pricing) stays inside the
		// simulated window.
		b.settleEnergy(ie, end)
	}
}

// settleEnergy folds an engine's unaccounted joules (since its last tick
// boundary) into the run totals, booked into the energy series at `at`.
// Carbon accounting integrates EnergySeries, so the series must never
// miss joules the totals carry.
func (b *eventBackend) settleEnergy(ie *instEngine, at simclock.Time) {
	j := ie.eng.Energy()
	tickJ := j - ie.lastJ
	ie.lastJ = j
	if tickJ <= 0 {
		return
	}
	b.res.EnergyJ += tickJ
	b.res.EnergyCostUSD += energy.KWh(tickJ) * b.s.opts.EnergyPriceUSDPerKWh * b.s.priceMult
	b.res.EnergyByClassJ[ie.cls] += tickJ
	b.res.EnergySeries.Accumulate(float64(at), tickJ)
}

// complete judges one finished request against its true class's SLO.
func (b *eventBackend) complete(req *workload.Request) {
	res := b.res
	res.Completed++
	cls := req.Class()
	res.ClassRequests[cls]++
	res.TTFT.Add(req.TTFT())
	if tbt := req.AvgTBT(); tbt >= 0 {
		res.TBT.Add(tbt)
	}
	met := req.MeetsSLO()
	if met {
		res.SLOMet++
	} else {
		res.ClassViolations[cls]++
	}
	if obs := b.s.opts.Observer; obs != nil {
		obs.RequestDone(req, req.TTFT(), req.AvgTBT(), met)
	}
}

// token forwards an engine's per-token event to the run observer for
// tagged (live-injected) requests only, keeping untracked batch traffic
// off the notification path.
func (b *eventBackend) token(req *workload.Request, produced int, now simclock.Time) {
	if req.Tag != 0 {
		b.s.opts.Observer.RequestToken(req, produced, now)
	}
}

// squashSink returns the Drain callback that reports each dropped request
// to the run observer, or nil when no observer is installed (the batch
// path keeps its allocation-free Drain(nil)).
func (b *eventBackend) squashSink() func(workload.Request) {
	obs := b.s.opts.Observer
	if obs == nil {
		return nil
	}
	return func(r workload.Request) {
		r.Squashed = true
		obs.RequestDone(&r, -1, -1, false)
	}
}

// notifySquashed reports one squashed in-transit request to the observer.
func (b *eventBackend) notifySquashed(r workload.Request) {
	if obs := b.s.opts.Observer; obs != nil {
		r.Squashed = true
		obs.RequestDone(&r, -1, -1, false)
	}
}

// ObserveTTFT implements engine.LatencySink: token-level per-class capture.
func (b *eventBackend) ObserveTTFT(cls workload.Class, v float64) {
	b.res.ClassTTFT[cls].Add(v)
}

// ObserveTBT implements engine.LatencySink.
func (b *eventBackend) ObserveTBT(cls workload.Class, v float64) {
	b.res.ClassTBT[cls].Add(v)
}
