package core

import (
	"math"
	"sync"
	"sync/atomic"

	"dynamollm/internal/energy"
	"dynamollm/internal/engine"
	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// InstanceBackend is the instance service model behind the cluster
// simulation. The controllers (cluster manager, pool managers, instance
// managers) and the router are backend-agnostic: they read the same load
// signals (rate EWMAs, capacity, backlog) whichever backend is installed,
// and the backend decides how an instance actually serves its work — the
// closed-form fluid model (fluidBackend, Options.Fidelity=FidelityFluid)
// or one event-level engine per instance on a shared virtual clock
// (eventBackend, FidelityEvent).
//
// Call protocol, per tick: Admit for every routed request, then RunTo once
// at the end of routing, then Advance once per live instance. Retire fires
// when an instance is parked stateOff (graceful scale-in/re-shard surplus
// vs. abrupt outage), Reconfigure when applyReshard changes its TP degree,
// and Finish once after the last tick.
type InstanceBackend interface {
	// Admit registers one routed request on the instance for this tick.
	Admit(in *Instance, req *workload.Request, now simclock.Time)
	// RunTo advances backend-internal time to the end of the current
	// tick, after routing and before per-instance accounting.
	RunTo(tickEnd simclock.Time)
	// Advance closes one tick for a live instance — service dynamics,
	// backlog signal, latency accounting — and returns the instance's
	// average power draw over the tick in watts.
	Advance(in *Instance, a *assign, now simclock.Time) float64
	// Retire handles an instance leaving service (already stateOff).
	// Graceful departures may migrate in-flight work; outage victims'
	// requests go to the frontend retry path (simulation.frontendFail),
	// which re-routes them after a backoff or terminally squashes them
	// once the retry budget is spent.
	Retire(in *Instance, now simclock.Time, graceful bool)
	// Reconfigure reacts to a TP/transition change applied by the
	// re-sharding planner.
	Reconfigure(in *Instance, now simclock.Time)
	// Finish closes the run after the last tick (drain in-flight work).
	Finish(end simclock.Time)

	// bind attaches the backend to the running simulation's scratch
	// state; the interface is internal to the package by construction.
	bind(sm *simulation)
}

// newBackend builds the backend for the options.
func newBackend(f Fidelity, c *Cluster, res *Result) InstanceBackend {
	if f == FidelityEvent {
		return newEventBackend(c, res)
	}
	return &fluidBackend{res: res}
}

// --- Fluid backend ----------------------------------------------------------------

// fluidBackend is the extracted closed-form path: each instance's tick is
// evaluated at its bucketed steady-state operating point (perfmodel.Steady)
// and latencies are sampled analytically. It is behaviour-preserving with
// respect to the pre-refactor tick loop: same arithmetic, same RNG draw
// order, zero allocations per steady-state tick.
type fluidBackend struct {
	sm  *simulation
	res *Result
}

func (b *fluidBackend) bind(sm *simulation) { b.sm = sm }

func (b *fluidBackend) Admit(*Instance, *workload.Request, simclock.Time) {}

func (b *fluidBackend) RunTo(simclock.Time) {}

func (b *fluidBackend) Advance(in *Instance, a *assign, now simclock.Time) float64 {
	sm := b.sm
	c, s, opts := sm.c, sm.s, sm.opts

	// Steady state for this tick.
	st := c.instanceSteady(in)
	if in.rate > 0.01 && st.Rho > 0.01 {
		in.capEst = in.rate / st.Rho * maxCapFraction
	} else {
		in.capEst = 0 // fall back to profile capacity
	}

	// Backlog dynamics: demand beyond capacity queues.
	cap := in.capacity(s)
	if in.rate > cap {
		in.backlog += (in.rate - cap) * opts.Tick
	} else if in.backlog > 0 {
		drain := (cap - in.rate) * opts.Tick
		in.backlog = math.Max(0, in.backlog-drain)
	}

	watts := st.Power
	if in.state == stateProvisioning {
		watts = gpu.H100.IdlePower * float64(in.TP.GPUs())
	}

	// Latency samples for requests assigned this tick.
	if a != nil {
		sm.sampleLatencies(in, st, a.reqs)
	}
	return watts
}

func (b *fluidBackend) Retire(in *Instance, now simclock.Time, graceful bool) {
	// An abrupt outage drops the instance's queued work; planned
	// departures drain it through the ordinary rate dynamics. Fluid
	// backlog is load, not request identity (those requests already
	// completed in their arrival tick), so the loss is SquashedLoad —
	// request-level retry happens only where requests exist, in the event
	// backend and the router's no-capacity path.
	if graceful {
		return
	}
	if in.backlog > 0 {
		if b.res != nil {
			b.res.SquashedLoad += in.backlog
		}
		in.backlog = 0
	}
}

func (b *fluidBackend) Reconfigure(*Instance, simclock.Time) {}

func (b *fluidBackend) Finish(simclock.Time) {}

// --- Event backend ----------------------------------------------------------------

// eventBackend runs every instance on its own event-level engine, each on
// a PRIVATE virtual clock. Between controller decisions the engines are
// independent — they never schedule events on each other — so RunTo fans
// their stepping across a bounded worker pool (Options.StepJobs) and then
// merges per-engine results serially in instance-ID order. The output is
// byte-identical for every StepJobs value: each engine's event sequence is
// deterministic on its own clock, and everything shared (Result, the
// observer) is written only in the serial delivery and merge phases.
//
// Requests are submitted at their true arrival instants; queueing,
// batching, KV admission, and tail latencies emerge from the engine
// instead of being sampled from the fluid formulas. Energy is the engine
// meters' integral; per-class token-level TTFT/TBT land in
// Result.ClassTTFT/ClassTBT.
type eventBackend struct {
	sm  *simulation  //snapshot:ignore re-bound by backend.bind on the cloned simulation
	c   *Cluster     //snapshot:ignore set by newEventBackend from the clone targets cloneFor receives
	s   *sharedState //snapshot:ignore set by newEventBackend from the cloned cluster's shared state
	res *Result      //snapshot:ignore set by newEventBackend from the clone targets cloneFor receives

	// now is the backend's time: the end of the last RunTo (every live
	// engine clock stands exactly here between ticks).
	now simclock.Time

	// engines is dense by Instance.ID (IDs are handed out sequentially
	// and never reused).
	engines []*instEngine
	// pending holds scheduled submissions not yet delivered to an engine,
	// in scheduling order. Delivery happens serially at the top of each
	// RunTo for everything due this tick; instance liveness is resolved at
	// delivery, which is equivalent to the old shared-clock fire-time
	// resolution because instance state only changes in the serial
	// controller phases between RunTo calls.
	pending []pendingSub
	// groupClocks are the per-base-pool shared clocks used under
	// disaggregation: a prefill instance and its decode twins must share
	// one clock so the KV handoff can schedule the decode-side submission
	// mid-tick without cross-clock coordination. Indexed by base pool
	// (in.Pool % NumPools); nil entries are groups never touched. Empty
	// when Disagg is off — every engine then keeps its private clock,
	// which is what makes the non-disagg event path byte-identical to
	// earlier builds.
	groupClocks []*simclock.Clock
	// stepClocks is the reusable scratch listing the distinct clocks the
	// stepping pool drives this tick (one per engine normally, one per
	// pool group under disaggregation).
	stepClocks []*simclock.Clock //snapshot:ignore tick-scoped scratch; rebuilt at the top of every RunTo
	// scratch stages drained requests during migrations.
	scratch []workload.Request //snapshot:ignore migration-scoped scratch; always empty between ticks
}

// kvTransfer is one in-flight prefill-to-decode KV handoff: the request,
// its prefilled context, and the instant the modeled transfer completes.
// Tracked on the receiving engine so retirement can fail unfinished
// transfers over to the frontend and snapshot cloning can re-schedule
// them; done entries are compacted each tick.
type kvTransfer struct {
	at   simclock.Time
	req  workload.Request
	ctx  int
	done bool
}

// KV-transfer cost model: a fixed setup latency (connection, metadata)
// plus the prefilled KV bytes over an inter-node interconnect.
const (
	kvTransferSetupSeconds = 0.002
	kvTransferBytesPerSec  = 50e9
)

// KV spill-tier parameters (configureKV): the cpu tier is host memory
// over PCIe Gen5 (~25 GB/s) sized a few times the GPU's unscaled KV
// capacity; the ssd tier is NVMe (~5 GB/s) with a far larger pool.
const (
	kvTierCPUBytesPerSec = 25e9
	kvTierSSDBytesPerSec = 5e9
	kvTierCPUFactor      = 4.0
	kvTierSSDFactor      = 32.0
)

// kvTransferSeconds models moving ctx tokens of KV cache between a
// prefill and a decode instance.
func kvTransferSeconds(m *model.Model, ctx int) float64 {
	return kvTransferSetupSeconds + float64(ctx)*m.KVBytesPerToken/kvTransferBytesPerSec
}

// pendingSub is one scheduled request submission awaiting delivery.
type pendingSub struct {
	at  simclock.Time
	in  *Instance
	req workload.Request
}

// instEngine is one instance's engine on its private clock, plus per-tick
// metering state and the result buffers its callbacks fill while stepping
// (possibly on a pool worker). Buffers are drained by the serial merge at
// the end of every RunTo, so outside stepping they are always empty.
type instEngine struct {
	eng   *engine.Engine
	clock *simclock.Clock
	// pool is the owning instance's pool index, kept here so callbacks
	// wired during concurrent stepping can resolve the pool role and the
	// decode twin without touching the Instance.
	pool int
	// lastJ is the meter reading at the previous tick boundary.
	lastJ float64
	// cls is the served-mix class of the last Advance, for attributing
	// the post-horizon drain tail in Finish.
	cls workload.Class

	// lastPre/lastHits/lastRej/lastHand (and the tier quartet) are the
	// engine KV counter values already folded into the Result; settleKV
	// books the deltas.
	lastPre, lastHits, lastRej, lastHand int
	lastSwapOut, lastSwapIn, lastRecomp  int
	lastTierEvict                        int

	// handoffsIn counts KV handoffs received this tick; Advance folds it
	// into the decode instance's rate EWMA (handed-off work never passes
	// the router, so the controllers would otherwise see zero load).
	handoffsIn int

	// lats buffers per-class latency samples (instEngine is the engine's
	// LatencySink); toks buffers token events for tagged requests; dones
	// buffers completed requests by value; fails buffers requests the
	// engine rejected (oversize for its KV pool) or whose handoff found
	// no decode target, drained to the frontend retry path at merge.
	lats  []latSample
	toks  []tokenEvent
	dones []workload.Request
	fails []workload.Request

	// transfers are in-flight KV handoffs targeting this engine.
	transfers []*kvTransfer
}

// latSample is one buffered per-class latency observation.
type latSample struct {
	cls workload.Class
	tbt bool
	v   float64
}

// tokenEvent is one buffered per-token observer notification.
type tokenEvent struct {
	req      workload.Request
	produced int
	at       simclock.Time
}

// ObserveTTFT implements engine.LatencySink, buffering into the engine's
// own slot (never the shared Result — stepping may be concurrent).
func (ie *instEngine) ObserveTTFT(cls workload.Class, v float64) {
	ie.lats = append(ie.lats, latSample{cls: cls, v: v})
}

// ObserveTBT implements engine.LatencySink.
func (ie *instEngine) ObserveTBT(cls workload.Class, v float64) {
	ie.lats = append(ie.lats, latSample{cls: cls, tbt: true, v: v})
}

func newEventBackend(c *Cluster, res *Result) *eventBackend {
	return &eventBackend{c: c, s: c.shared, res: res}
}

func (b *eventBackend) bind(sm *simulation) { b.sm = sm }

// engineFor returns the instance's engine, building it on first touch
// (frozen until readyAt while the instance is still provisioning or mid
// transition). The engine lives on a fresh private clock fast-forwarded to
// the backend's time, so its meter starts at the current tick boundary —
// an instance created mid-epoch forgoes at most one tick of idle power
// relative to the fluid backend (~3 kJ per scale-out — noise against run
// totals).
func (b *eventBackend) engineFor(in *Instance) *instEngine {
	for in.ID >= len(b.engines) {
		b.engines = append(b.engines, nil)
	}
	ie := b.engines[in.ID]
	if ie == nil {
		clk := b.clockFor(in)
		cfg := perfmodel.Config{Model: b.s.opts.Model, TP: in.TP, Freq: in.effFreq()}
		ie = &instEngine{eng: engine.New(cfg, clk), clock: clk, pool: in.Pool, cls: workload.Classify(int(avgOr(in.mixIn, 512)), int(avgOr(in.mixOut, 200)))}
		b.configureKV(ie)
		b.wire(ie)
		if in.state != stateActive && in.readyAt > b.now {
			ie.eng.Freeze(in.readyAt)
		}
		b.engines[in.ID] = ie
	}
	return ie
}

// clockFor returns the virtual clock a new engine runs on: a fresh
// private clock normally (engines are independent between ticks — the
// parallel-stepping byte-identity anchor), or the pool group's shared
// clock under disaggregation (prefill and decode twins exchange mid-tick
// handoff events, so they must share an event heap).
func (b *eventBackend) clockFor(in *Instance) *simclock.Clock {
	if !b.s.opts.Disagg {
		clk := simclock.New()
		clk.RunUntil(b.now)
		return clk
	}
	gi := in.Pool % b.c.pooling.NumPools
	for gi >= len(b.groupClocks) {
		b.groupClocks = append(b.groupClocks, nil)
	}
	if b.groupClocks[gi] == nil {
		clk := simclock.New()
		clk.RunUntil(b.now)
		b.groupClocks[gi] = clk
	}
	return b.groupClocks[gi]
}

// configureKV applies the run's block-granular KV options to a fresh
// engine (no-op when KVBlockTokens is zero — the legacy token-counting
// path stays byte-identical).
func (b *eventBackend) configureKV(ie *instEngine) {
	opts := b.s.opts
	if opts.KVBlockTokens <= 0 {
		return
	}
	kv := engine.KVConfig{
		BlockTokens:    opts.KVBlockTokens,
		CapacityFactor: opts.KVCapacityFactor,
		PrefixCache:    opts.KVPrefixCache,
	}
	// The spill tier is sized against the UNSCALED derived capacity —
	// host memory and NVMe do not shrink when KVCapacityFactor squeezes
	// the GPU pool — which is exactly what lets tiny-capacity cells
	// recover goodput by swapping instead of recomputing.
	switch opts.KVTier {
	case KVTierCPU:
		kv.TierCapacityFactor = kvTierCPUFactor
		kv.TierBytesPerSec = kvTierCPUBytesPerSec
	case KVTierSSD:
		kv.TierCapacityFactor = kvTierSSDFactor
		kv.TierBytesPerSec = kvTierSSDBytesPerSec
	}
	if opts.KVTier != KVTierNone {
		if opts.KVTierBandwidth > 0 {
			kv.TierBytesPerSec = opts.KVTierBandwidth
		}
		if opts.KVSwapPolicy == KVSwapAlways {
			kv.SwapPolicy = engine.SwapAlways
		}
	}
	ie.eng.ConfigureKV(kv)
}

// wire points an engine's callbacks at its own buffers. Nothing here may
// touch the backend's shared state: callbacks fire while other engines
// step concurrently.
func (b *eventBackend) wire(ie *instEngine) {
	ie.eng.SetOnComplete(func(req *workload.Request) {
		ie.dones = append(ie.dones, *req)
	})
	ie.eng.SetSink(ie)
	if b.s.opts.Observer != nil {
		ie.eng.SetOnToken(func(req *workload.Request, produced int, now simclock.Time) {
			if req.Tag != 0 {
				ie.toks = append(ie.toks, tokenEvent{req: *req, produced: produced, at: now})
			}
		})
	}
	if b.s.opts.KVBlockTokens > 0 {
		ie.eng.SetOnReject(func(r workload.Request) {
			ie.fails = append(ie.fails, r)
		})
	}
	if b.s.opts.Disagg && b.c.pools[ie.pool].Role == RolePrefill {
		ie.eng.SetPrefillOnly(true)
		ie.eng.SetOnHandoff(func(r workload.Request, ctx int) {
			b.handoff(ie, r, ctx)
		})
	}
}

// handoff moves a prefilled request's KV cache to a decode instance of
// the twin pool. It runs inside the group clock's stepping (possibly on a
// pool worker), which is safe: everything it touches — the group's
// engines, their buffers, the shared group clock — is owned by exactly
// that worker for the duration of the step.
func (b *eventBackend) handoff(ie *instEngine, r workload.Request, ctx int) {
	te := b.decodeTarget(ie.pool)
	if te == nil {
		// No decode capacity at all: the frontend retries the request
		// from scratch (merge drains the buffer into frontendFail).
		ie.fails = append(ie.fails, r)
		return
	}
	te.handoffsIn++
	t := &kvTransfer{at: ie.clock.Now() + simclock.Time(kvTransferSeconds(b.s.opts.Model, ctx)), req: r, ctx: ctx}
	te.transfers = append(te.transfers, t)
	te.clock.At(t.at, func() {
		if t.done {
			return // target retired while the transfer was in flight
		}
		t.done = true
		te.eng.SubmitDecode(t.req, t.ctx)
	})
}

// decodeTarget picks the decode-twin instance with the shortest engine
// queue among live, already-built engines (RunTo pre-builds them before
// stepping, so a missing engine here means the twin pool has no usable
// instance). Slice order breaks ties, keeping the choice deterministic.
func (b *eventBackend) decodeTarget(pool int) *instEngine {
	tw := b.c.pools[pool+b.c.pooling.NumPools]
	var best *instEngine
	bestQ := 0
	for _, in := range tw.Instances {
		if in.state == stateOff || in.ID >= len(b.engines) {
			continue
		}
		te := b.engines[in.ID]
		if te == nil {
			continue
		}
		if q := te.eng.QueueLen(); best == nil || q < bestQ {
			best, bestQ = te, q
		}
	}
	return best
}

func (b *eventBackend) Admit(in *Instance, req *workload.Request, now simclock.Time) {
	// A mispredicted, re-steered request reaches the right engine only
	// after its detection delay.
	at := req.Arrival + simclock.Time(req.SteerPenalty)
	if at < b.now {
		at = b.now
	}
	b.submitAt(in, *req, at) // the tick's request buffer is recycled; keep a copy
}

// submitAt queues a request for delivery to an instance's engine at the
// given instant. Liveness is re-resolved at delivery: if the instance
// retired between scheduling and arrival, the in-transit request is
// re-routed to the pool's earliest-ready sibling (the frontend would
// never deliver to a dead machine), and handed to the frontend retry
// path only when the pool has nothing left.
func (b *eventBackend) submitAt(in *Instance, r workload.Request, at simclock.Time) {
	b.pending = append(b.pending, pendingSub{at: at, in: in, req: r})
}

// deliver hands every pending submission due at or before horizon to its
// engine's private clock (whose (time, seq) heap restores exact FIFO
// order among equal arrival instants). Runs serially: it resolves
// instance liveness and may build engines or notify the observer.
func (b *eventBackend) deliver(horizon simclock.Time) {
	kept := b.pending[:0]
	for _, p := range b.pending {
		if p.at > horizon {
			kept = append(kept, p)
			continue
		}
		target := p.in
		if target.state == stateOff {
			target = earliestReady(b.c.pools[target.Pool])
			if target == nil || target == p.in {
				// The pool died while the request was in transit: the
				// frontend retries it after a backoff (terminal squash
				// once the budget is spent).
				b.sm.frontendFail(p.req, p.at)
				continue
			}
		}
		ie := b.engineFor(target)
		r := p.req
		ie.clock.At(p.at, func() { ie.eng.SubmitCopy(r) })
	}
	b.pending = kept
}

// RunTo advances every engine to the tick boundary: serial delivery of
// the tick's submissions, concurrent per-engine stepping, then a serial
// merge of the buffered results in instance-ID order.
func (b *eventBackend) RunTo(tickEnd simclock.Time) {
	b.deliver(tickEnd)
	if b.s.opts.Disagg {
		// Handoff callbacks fire while engines step (possibly on pool
		// workers) and must not build engines — b.engines is shared
		// state. Materialize every live decode engine serially first.
		for _, p := range b.c.pools {
			if p.Role != RoleDecode {
				continue
			}
			for _, in := range p.Instances {
				if in.state != stateOff {
					b.engineFor(in)
				}
			}
		}
	}
	b.stepAll(tickEnd, false)
	b.now = tickEnd
	b.merge()
}

// stepAll runs every live clock's agenda — to the tick boundary, or to
// exhaustion when drain is set (Finish). Normally each engine has its own
// clock; under disaggregation a pool group (prefill + decode twins)
// shares one. With StepJobs > 1 the distinct clocks are index-slotted
// across that many workers; each clock is stepped by exactly one worker
// and the engines on it touch only their own state and buffers, so the
// result is byte-identical to the serial pass.
func (b *eventBackend) stepAll(tickEnd simclock.Time, drain bool) {
	b.stepClocks = b.stepClocks[:0]
	if b.s.opts.Disagg {
		for _, clk := range b.groupClocks {
			if clk != nil {
				b.stepClocks = append(b.stepClocks, clk)
			}
		}
	} else {
		for _, ie := range b.engines {
			if ie != nil {
				b.stepClocks = append(b.stepClocks, ie.clock)
			}
		}
	}
	step := func(clk *simclock.Clock) {
		if drain {
			clk.Run()
		} else {
			clk.RunUntil(tickEnd)
		}
	}
	jobs := b.s.opts.StepJobs
	if jobs > len(b.stepClocks) {
		jobs = len(b.stepClocks)
	}
	if jobs <= 1 {
		for _, clk := range b.stepClocks {
			step(clk)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(b.stepClocks) {
					return
				}
				step(b.stepClocks[i])
			}
		}()
	}
	wg.Wait()
}

// merge folds every engine's buffered results into the shared Result and
// observer, in instance-ID order — a fixed order independent of how the
// stepping was scheduled, which is what makes parallel runs byte-identical
// to serial ones. Within an engine, buffers replay in the engine's own
// deterministic event order, so each request's token events still precede
// its completion.
func (b *eventBackend) merge() {
	for _, ie := range b.engines {
		if ie == nil {
			continue
		}
		for _, ls := range ie.lats {
			if ls.tbt {
				b.res.ClassTBT[ls.cls].Add(ls.v)
			} else {
				b.res.ClassTTFT[ls.cls].Add(ls.v)
			}
		}
		ie.lats = ie.lats[:0]
		if obs := b.s.opts.Observer; obs != nil {
			for i := range ie.toks {
				t := &ie.toks[i]
				obs.RequestToken(&t.req, t.produced, t.at)
			}
		}
		ie.toks = ie.toks[:0]
		for i := range ie.dones {
			b.complete(&ie.dones[i])
		}
		ie.dones = ie.dones[:0]
		// Requests the engine rejected (oversize for its KV pool) or
		// whose handoff found no decode target go back through the
		// frontend retry path — another instance or a later attempt may
		// still serve them.
		for i := range ie.fails {
			b.sm.frontendFail(ie.fails[i], b.now)
		}
		ie.fails = ie.fails[:0]
	}
}

func (b *eventBackend) Advance(in *Instance, a *assign, now simclock.Time) float64 {
	ie := b.engineFor(in)
	// Propagate the instance manager's DVFS decision — degraded by any
	// injected straggler factor — paying the frequency-set stall the
	// controller path implies. A straggler onset or repair flows through
	// here as an effective-clock change.
	if f := in.effFreq(); f != ie.eng.Cfg.Freq {
		stall := gpu.SlowSetOverhead
		if b.s.opts.ReducedOverheads {
			stall = gpu.FastSetOverhead
		}
		ie.eng.SetFreq(f, stall)
	}
	// The controllers' backlog signal is the engine's real admission
	// queue (sequences whose prefill has not started, plus any preempted
	// sequences waiting to re-enter).
	in.backlog = float64(ie.eng.WaitingLen())
	in.capEst = 0
	ie.cls = workload.Classify(int(in.mixIn), int(in.mixOut))
	b.settleKV(ie)
	if ie.handoffsIn > 0 {
		// Handed-off decode work never passes the router, so the rate
		// EWMA — the load signal every controller reads — would decay to
		// zero on decode instances. Fold the tick's received handoffs in
		// at the same EWMA weight accountTick applies to routed work.
		in.rate += 0.3 * float64(ie.handoffsIn) / b.s.opts.Tick
		ie.handoffsIn = 0
	}
	if len(ie.transfers) > 0 {
		// Compact completed KV transfers (serial phase; the list only
		// matters for retirement failover and snapshot cloning).
		kept := ie.transfers[:0]
		for _, t := range ie.transfers {
			if !t.done {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(ie.transfers); i++ {
			ie.transfers[i] = nil
		}
		ie.transfers = kept
	}

	j := ie.eng.Energy()
	tickJ := j - ie.lastJ
	ie.lastJ = j
	return tickJ / b.s.opts.Tick
}

// settleKV folds the engine's KV counter movement since the last settle
// into the run totals (delta-based, so it is safe to call from both
// Advance and the retirement/finish paths).
func (b *eventBackend) settleKV(ie *instEngine) {
	e := ie.eng
	b.res.KVPreemptions += e.Preempted - ie.lastPre
	b.res.KVPrefixHits += e.PrefixHits - ie.lastHits
	b.res.KVRejected += e.KVRejected - ie.lastRej
	b.res.Handoffs += e.Handoffs - ie.lastHand
	ie.lastPre, ie.lastHits, ie.lastRej, ie.lastHand = e.Preempted, e.PrefixHits, e.KVRejected, e.Handoffs
	b.res.KVSwapOuts += e.SwapOuts - ie.lastSwapOut
	b.res.KVSwapIns += e.SwapIns - ie.lastSwapIn
	b.res.KVRecomputes += e.Recomputes - ie.lastRecomp
	b.res.KVTierEvictions += e.TierEvictions - ie.lastTierEvict
	ie.lastSwapOut, ie.lastSwapIn, ie.lastRecomp, ie.lastTierEvict = e.SwapOuts, e.SwapIns, e.Recomputes, e.TierEvictions
}

func (b *eventBackend) Retire(in *Instance, now simclock.Time, graceful bool) {
	var ie *instEngine
	if in.ID < len(b.engines) {
		ie = b.engines[in.ID]
	}
	if ie == nil {
		return
	}
	b.engines[in.ID] = nil
	in.backlog = 0
	// In-flight KV transfers targeting this engine can never land: the
	// scheduled arrival callback checks done and becomes a no-op, and the
	// requests go to the frontend retry path like any other victim.
	for _, t := range ie.transfers {
		if !t.done {
			t.done = true
			b.sm.frontendFail(t.req, now)
		}
	}
	ie.transfers = nil
	if !graceful {
		// Outage: in-flight work dies with the machine, but the frontend
		// notices and retries each request against whatever capacity is
		// left (§IV-D) — terminal squash only past the retry budget.
		b.scratch = b.scratch[:0]
		ie.eng.Drain(func(r workload.Request) { b.scratch = append(b.scratch, r) })
		b.settleEnergy(ie, b.now)
		for i := range b.scratch {
			b.sm.frontendFail(b.scratch[i], now)
		}
		b.scratch = b.scratch[:0]
		return
	}
	// Planned departure: drain and migrate to the sibling that will
	// serve soonest; with no sibling left the frontend retry path takes
	// over.
	b.scratch = b.scratch[:0]
	ie.eng.Drain(func(r workload.Request) { b.scratch = append(b.scratch, r) })
	b.settleEnergy(ie, b.now)
	target := earliestReady(b.c.pools[in.Pool]) // in is stateOff: skipped
	if target == nil || target == in {
		for i := range b.scratch {
			b.sm.frontendFail(b.scratch[i], now)
		}
		b.scratch = b.scratch[:0]
		return
	}
	te := b.engineFor(target)
	for _, r := range b.scratch {
		te.eng.SubmitCopy(r)
	}
	b.scratch = b.scratch[:0]
}

func (b *eventBackend) Reconfigure(in *Instance, now simclock.Time) {
	var ie *instEngine
	if in.ID < len(b.engines) {
		ie = b.engines[in.ID]
	}
	if ie == nil {
		return // engine not built yet; first touch uses the new degree
	}
	// Drain-and-migrate onto the new shard layout: resident sequences
	// cannot survive the layout change, so they restart on the
	// reconfigured engine after the transition stall.
	b.scratch = b.scratch[:0]
	ie.eng.Drain(func(r workload.Request) { b.scratch = append(b.scratch, r) })
	ie.eng.Reconfigure(perfmodel.Config{Model: b.s.opts.Model, TP: in.TP, Freq: in.effFreq()})
	stallEnd := b.now
	if in.readyAt > now {
		stallEnd = in.readyAt
		if tf := in.throughputFactor; tf > 0 && tf < 1 {
			// Soft transition: old shards keep serving at reduced
			// throughput; model the capacity loss as a stall for the
			// lost fraction of the window.
			stallEnd = now + simclock.Time(float64(in.readyAt-now)*(1-tf))
		}
		ie.eng.Freeze(stallEnd)
	}
	// Resubmit after the stall window, not before: an iteration event
	// scheduled before this reshard would otherwise find the requeued
	// work and serve it inside the transition.
	for _, r := range b.scratch {
		b.submitAt(in, r, stallEnd)
	}
	in.backlog = 0
}

// Finish lets in-flight work drain past the horizon (every engine runs
// its agenda to exhaustion, still under the stepping pool), charges the
// drain tail's energy, and squashes anything that can never complete
// (KV-stuck leftovers). Each engine's meter closes at its own last event
// — trailing idle time past an engine's final iteration is not billed.
func (b *eventBackend) Finish(end simclock.Time) {
	b.deliver(simclock.Time(math.Inf(1)))
	b.stepAll(0, true)
	b.merge()
	for _, ie := range b.engines {
		if ie == nil {
			continue
		}
		b.res.Squashed += ie.eng.Drain(b.squashSink())
		// The drain tail runs past the horizon; book its energy at the
		// horizon so the series (and carbon pricing) stays inside the
		// simulated window.
		b.settleEnergy(ie, end)
	}
}

// settleEnergy folds an engine's unaccounted joules (since its last tick
// boundary) into the run totals, booked into the energy series at `at`.
// Carbon accounting integrates EnergySeries, so the series must never
// miss joules the totals carry.
func (b *eventBackend) settleEnergy(ie *instEngine, at simclock.Time) {
	b.settleKV(ie)
	j := ie.eng.Energy()
	tickJ := j - ie.lastJ
	ie.lastJ = j
	if tickJ <= 0 {
		return
	}
	b.res.EnergyJ += tickJ
	b.res.EnergyCostUSD += energy.KWh(tickJ) * b.s.opts.EnergyPriceUSDPerKWh * b.s.priceMult
	b.res.EnergyByClassJ[ie.cls] += tickJ
	b.res.EnergySeries.Accumulate(float64(at), tickJ)
}

// complete judges one finished request against its true class's SLO.
// TTFT/TBT come from the request's own timestamps; Arrival survives
// retries, so a retried request's TTFT spans every failed attempt and
// backoff — retry-aware SLO accounting needs no extra term here.
func (b *eventBackend) complete(req *workload.Request) {
	res := b.res
	res.Completed++
	if req.Retries > 0 {
		res.RetrySuccess++
	}
	cls := req.Class()
	res.ClassRequests[cls]++
	res.TTFT.Add(req.TTFT())
	if tbt := req.AvgTBT(); tbt >= 0 {
		res.TBT.Add(tbt)
	}
	met := req.MeetsSLO()
	if met {
		res.SLOMet++
	} else {
		res.ClassViolations[cls]++
	}
	if obs := b.s.opts.Observer; obs != nil {
		obs.RequestDone(req, req.TTFT(), req.AvgTBT(), met)
	}
}

// squashSink returns the Drain callback that reports each dropped request
// to the run observer, or nil when no observer is installed (the batch
// path keeps its allocation-free Drain(nil)).
func (b *eventBackend) squashSink() func(workload.Request) {
	obs := b.s.opts.Observer
	if obs == nil {
		return nil
	}
	return func(r workload.Request) {
		r.Squashed = true
		obs.RequestDone(&r, -1, -1, false)
	}
}
