package core

import (
	"testing"

	"dynamollm/internal/model"
	"dynamollm/internal/workload"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Model != model.Llama2_70B {
		t.Error("default model should be llama2-70b")
	}
	if o.NumPools != workload.NumClasses {
		t.Errorf("default pools = %d, want 9", o.NumPools)
	}
	if o.InstanceEpoch != 5 || o.PoolEpoch != 300 || o.ClusterEpoch != 1800 {
		t.Errorf("default epochs = %v/%v/%v", o.InstanceEpoch, o.PoolEpoch, o.ClusterEpoch)
	}
	if o.Servers != 12 {
		t.Errorf("default servers = %d, want 12", o.Servers)
	}
	if o.PredictorAccuracy != 1 {
		t.Errorf("default accuracy = %v, want 1", o.PredictorAccuracy)
	}
}

func TestSystemPresets(t *testing.T) {
	sp := SinglePool()
	if sp.NumPools != 1 || sp.ScaleInstances || sp.ScaleSharding || sp.ScaleFrequency {
		t.Errorf("SinglePool = %+v", sp)
	}
	dl := DynamoLLM()
	if !dl.ScaleInstances || !dl.ScaleSharding || !dl.ScaleFrequency || !dl.ReducedOverheads {
		t.Errorf("DynamoLLM = %+v", dl)
	}
	for _, name := range SystemNames {
		if _, ok := SystemByName(name); !ok {
			t.Errorf("SystemByName(%q) failed", name)
		}
	}
	if _, ok := SystemByName("nonsense"); ok {
		t.Error("unknown system resolved")
	}
	// Each Scale* preset enables exactly one knob beyond MultiPool.
	knobs := func(o Options) int {
		n := 0
		for _, b := range []bool{o.ScaleInstances, o.ScaleSharding, o.ScaleFrequency} {
			if b {
				n++
			}
		}
		return n
	}
	if knobs(ScaleInst()) != 1 || knobs(ScaleShard()) != 1 || knobs(ScaleFreq()) != 1 {
		t.Error("Scale* presets should enable exactly one knob")
	}
}

func TestSmoothTTFTSLO(t *testing.T) {
	// Anchored at the class representatives.
	cases := []struct{ in, want float64 }{
		{90, 0.25}, {512, 0.40}, {2896, 2.0},
		{10, 0.25}, {8192, 2.0},
	}
	for _, c := range cases {
		if got := SmoothTTFTSLO(c.in); got != c.want {
			t.Errorf("SmoothTTFTSLO(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Monotone in input length.
	prev := 0.0
	for in := 50.0; in < 8000; in *= 1.3 {
		v := SmoothTTFTSLO(in)
		if v < prev {
			t.Fatalf("SLO not monotone at %v", in)
		}
		prev = v
	}
}

func TestPoolingNine(t *testing.T) {
	p := NewPooling(9)
	// Nine pools: one class each.
	seen := map[int]bool{}
	for _, cls := range workload.AllClasses {
		pool := p.classPool[cls]
		if seen[pool] {
			t.Errorf("pool %d serves two classes at NumPools=9", pool)
		}
		seen[pool] = true
	}
}

func TestPoolingMergedPools(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		p := NewPooling(n)
		// Every class maps to a valid pool and all pools are non-empty.
		for _, cls := range workload.AllClasses {
			pool := p.classPool[cls]
			if pool < 0 || pool >= n {
				t.Fatalf("n=%d: class %v -> pool %d", n, cls, pool)
			}
		}
		for i := 0; i < n; i++ {
			if len(p.poolClasses[i]) == 0 {
				t.Fatalf("n=%d: pool %d empty", n, i)
			}
		}
	}
	// SinglePool: everything in pool 0.
	p1 := NewPooling(1)
	for _, cls := range workload.AllClasses {
		if p1.classPool[cls] != 0 {
			t.Error("NumPools=1 should map all classes to pool 0")
		}
	}
}

func TestPoolingDuplicates(t *testing.T) {
	p := NewPooling(12)
	if p.NumPools != 12 {
		t.Fatalf("NumPools = %d", p.NumPools)
	}
	dups := 0
	for pool, dup := range p.duplicateOf {
		if dup >= 0 {
			dups++
			if len(p.poolClasses[pool]) != 1 {
				t.Error("duplicate pool should serve one class")
			}
		}
	}
	if dups != 3 {
		t.Errorf("12 pools should add 3 duplicates, got %d", dups)
	}
	// PoolFor alternates between primary and duplicates.
	cls := p.poolClasses[9][0]
	a := p.PoolFor(cls, 0)
	b := p.PoolFor(cls, 1)
	if a == b {
		t.Error("PoolFor should alternate across duplicate pools")
	}
}

func TestPoolingNextLargerChain(t *testing.T) {
	p := NewPooling(9)
	// Following NextLarger from the smallest pool must terminate at the
	// LL pool without cycling.
	cur := p.classPool[workload.SS]
	steps := 0
	for {
		next := p.NextLarger(cur)
		if next < 0 {
			break
		}
		cur = next
		steps++
		if steps > 20 {
			t.Fatal("NextLarger cycles")
		}
	}
	if p.poolClasses[cur][0] != workload.LL {
		t.Errorf("chain ends at %v, want LL", p.poolClasses[cur])
	}
}

func TestPoolingLargest(t *testing.T) {
	p := NewPooling(2)
	// With 2 pools the first holds smaller classes; its largest member
	// must still rank below the second pool's largest (LL).
	if p.Largest(1) != workload.LL {
		t.Errorf("largest of big pool = %v, want LL", p.Largest(1))
	}
}
