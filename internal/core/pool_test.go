package core

import (
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/predict"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// newShared builds a sharedState for direct controller tests.
func newShared(t *testing.T, opts Options) *sharedState {
	t.Helper()
	opts = opts.withDefaults()
	r, _ := fixtures(t)
	return &sharedState{
		opts:     opts,
		prof:     r.Get(opts.Model, opts.SLOScale),
		loadPred: predict.NewLoadPredictor(opts.ClusterEpoch),
		lenPred:  predict.NewLengthPredictor(1, 1),
		rng:      simclock.NewRNG(1),
	}
}

func TestTransitionHasDowntime(t *testing.T) {
	m := model.Llama2_70B
	// Scaling up never takes the instance fully down (§IV-C).
	for _, c := range [][2]model.TP{{model.TP2, model.TP4}, {model.TP4, model.TP8}, {model.TP2, model.TP8}} {
		if transitionHasDowntime(m, c[0], c[1]) {
			t.Errorf("scale-up %v->%v should not require downtime", c[0], c[1])
		}
	}
	// TP4->TP2 for a 70B model cannot hold both shard sets.
	if !transitionHasDowntime(m, model.TP4, model.TP2) {
		t.Error("70B TP4->TP2 must require downtime")
	}
	// A small model's shards coexist on the way down.
	if transitionHasDowntime(model.Llama2_13B, model.TP4, model.TP2) {
		t.Error("13B TP4->TP2 should not require downtime")
	}
}

func TestPriceCountsFeasibility(t *testing.T) {
	s := newShared(t, DynamoLLM())
	// A TP2-only mix cannot serve MM at medium load (Table I): per-pair
	// fair share of 3 req/s exceeds a TP2 instance's SLO capacity.
	_, _, ok := priceCounts(s, workload.MM, map[model.TP]int{model.TP2: 2}, 6.0)
	if ok {
		t.Error("TP2-only mix should be infeasible for 6 req/s of MM")
	}
	power, cap, ok := priceCounts(s, workload.MM, map[model.TP]int{model.TP4: 2}, 3.0)
	if !ok || cap < 3.0 || power <= 0 {
		t.Errorf("TP4x2 pricing: power=%v cap=%v ok=%v", power, cap, ok)
	}
	// More instances at the same demand cannot price cheaper per the
	// whole group than needed capacity... but must raise capacity.
	_, cap4, _ := priceCounts(s, workload.MM, map[model.TP]int{model.TP4: 4}, 3.0)
	if cap4 <= cap {
		t.Error("doubling instances should raise capacity")
	}
	if _, _, ok := priceCounts(s, workload.MM, map[model.TP]int{}, 1); ok {
		t.Error("empty mix should be infeasible")
	}
}

func TestInstanceCapacityRespectsFreqAndTP(t *testing.T) {
	s := newShared(t, DynamoLLM())
	mk := func(tp model.TP, f gpu.Freq) *Instance {
		in := newInstance(1, 0, tp, true)
		in.mixIn, in.mixOut = 512, 187 // MM shape
		in.freqCtl.Set(f)
		return in
	}
	c48 := mk(model.TP4, gpu.MaxFreq).capacity(s)
	c12 := mk(model.TP4, 1200).capacity(s)
	if c12 > c48 {
		t.Errorf("capacity at 1.2GHz (%v) exceeds max clock (%v)", c12, c48)
	}
	c8 := mk(model.TP8, gpu.MaxFreq).capacity(s)
	if c8 < c48 {
		t.Errorf("TP8 capacity (%v) below TP4 (%v)", c8, c48)
	}
	// Throughput throttling during transitions scales capacity.
	in := mk(model.TP8, gpu.MaxFreq)
	in.throughputFactor = 0.5
	if got := in.capacity(s); got < c8*0.45 || got > c8*0.55 {
		t.Errorf("throttled capacity = %v, want ~half of %v", got, c8)
	}
}

func TestPickInstancePrefersHeadroom(t *testing.T) {
	s := newShared(t, DynamoLLM())
	p := &Pool{Index: 0, Classes: []workload.Class{workload.MM}, RepClass: workload.MM}
	a := newInstance(1, 0, model.TP4, true)
	b := newInstance(2, 0, model.TP4, true)
	for _, in := range []*Instance{a, b} {
		in.mixIn, in.mixOut = 512, 187
	}
	// The paper's rule is min-marginal-energy WITHIN per-instance
	// throughput: a saturated instance is excluded outright.
	a.rate = a.capacity(s) * 1.01 // saturated
	b.rate = 0.1
	p.Instances = []*Instance{a, b}
	if got := p.pickInstance(s, 0); got != b {
		t.Errorf("picked the saturated instance")
	}
}

func TestPickInstanceSkipsInactive(t *testing.T) {
	s := newShared(t, DynamoLLM())
	p := &Pool{Index: 0, Classes: []workload.Class{workload.MM}, RepClass: workload.MM}
	a := newInstance(1, 0, model.TP4, true)
	a.mixIn, a.mixOut = 512, 187
	a.state = stateProvisioning
	a.readyAt = 100
	p.Instances = []*Instance{a}
	if p.pickInstance(s, 0) != nil {
		t.Error("picked a provisioning instance")
	}
	a.settle(100)
	if p.pickInstance(s, 100) != a {
		t.Error("did not pick the settled instance")
	}
}

func TestReshardPoolConservesGPUs(t *testing.T) {
	s := newShared(t, DynamoLLM())
	p := &Pool{Index: 0, Classes: []workload.Class{workload.SS}, RepClass: workload.SS, targetGPUs: 16}
	for i := 0; i < 2; i++ {
		in := newInstance(s.nextInstanceID(), 0, model.TP8, true)
		in.mixIn, in.mixOut = poolRepLengths(p)
		in.rate = 1
		p.Instances = append(p.Instances, in)
	}
	p.observedSince = 1
	touched := p.reshardPool(s, 200, 2.0)
	if p.gpusInUse() > p.targetGPUs {
		t.Errorf("reshard exceeded GPU budget: %d > %d", p.gpusInUse(), p.targetGPUs)
	}
	// SS at 2 req/s should shed the TP8-only layout toward smaller
	// degrees (its optimum is TP2).
	if touched == 0 {
		t.Error("oversized TP8 pool should reconfigure for SS traffic")
	}
}

func TestReshardPoolGatedUntilObserved(t *testing.T) {
	s := newShared(t, DynamoLLM())
	p := &Pool{Index: 0, Classes: []workload.Class{workload.SS}, RepClass: workload.SS, targetGPUs: 16}
	in := newInstance(1, 0, model.TP8, true)
	p.Instances = []*Instance{in}
	if got := p.reshardPool(s, 0, 1); got != 0 {
		t.Error("cold pool resharded before observing traffic")
	}
	p.observedSince = 1
	if got := p.reshardPool(s, 30, 1); got != 0 {
		t.Error("pool resharded before estimates settled")
	}
}

func TestReshardHysteresisHoldsNearOptimal(t *testing.T) {
	s := newShared(t, DynamoLLM())
	p := &Pool{Index: 0, Classes: []workload.Class{workload.MM}, RepClass: workload.MM, targetGPUs: 8}
	p.observedSince = 1
	// First reshard settles a configuration...
	in := newInstance(s.nextInstanceID(), 0, model.TP8, true)
	in.mixIn, in.mixOut = poolRepLengths(p)
	in.rate = 2
	p.Instances = []*Instance{in}
	p.reshardPool(s, 100, 2.0)
	for _, x := range p.Instances {
		x.settle(1e9)
		x.rate = 2 / float64(len(p.Instances))
	}
	// ...and re-solving with a marginally different demand must not
	// thrash the layout.
	if got := p.reshardPool(s, 400, 2.05); got != 0 {
		t.Errorf("reshard thrashing: %d transitions for a 2.5%% demand change", got)
	}
}

func TestEarliestReady(t *testing.T) {
	p := &Pool{}
	a := newInstance(1, 0, model.TP8, true)
	a.state = stateResharding
	a.readyAt = 50
	b := newInstance(2, 0, model.TP8, true)
	b.state = stateProvisioning
	b.readyAt = 20
	off := newInstance(3, 0, model.TP8, true)
	off.state = stateOff
	p.Instances = []*Instance{a, b, off}
	if got := earliestReady(p); got != b {
		t.Errorf("earliestReady = %v, want instance 2", got.ID)
	}
}

func TestObserveMixEWMA(t *testing.T) {
	in := newInstance(1, 0, model.TP8, true)
	in.observeMix(512, 200, 1)
	if in.mixIn != 512 || in.mixOut != 200 {
		t.Fatalf("first observation not adopted: %v/%v", in.mixIn, in.mixOut)
	}
	in.observeMix(1024, 400, 1)
	if in.mixIn <= 512 || in.mixIn >= 1024 {
		t.Errorf("EWMA out of range: %v", in.mixIn)
	}
	in.observeMix(0, 0, 0) // zero count ignored
	if in.mixIn <= 512 {
		t.Error("zero-count observation changed the mix")
	}
}

func TestProfileSnapFrequencyConsistency(t *testing.T) {
	// capacity() must not crash on off-ladder frequencies.
	s := newShared(t, DynamoLLM())
	in := newInstance(1, 0, model.TP4, true)
	in.mixIn, in.mixOut = 512, 187
	in.freqCtl.Set(1333) // snaps to 1400
	if in.capacity(s) <= 0 {
		t.Error("no capacity at snapped frequency")
	}
	_ = profile.Key{} // keep import for clarity of intent
}
