// Package profile implements the paper's energy-performance profiles
// (§IV-A): for every (request class, tensor parallelism, GPU frequency) the
// profiler characterizes energy, power, and latency across load levels and
// interpolates between the sampled loads (the SciPy interp1d of §IV-E).
// Profiles feed every controller decision.
//
// The package also provides the global repository / cluster-local cache
// structure: many services share a model, so a profile is computed once and
// reused (§IV-A).
package profile

import (
	"fmt"
	"math"
	"sync"

	"dynamollm/internal/gpu"
	"dynamollm/internal/interp"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/workload"
)

// Key identifies one profiled configuration for one request class.
type Key struct {
	Class workload.Class
	TP    model.TP
	Freq  gpu.Freq
}

func (k Key) String() string {
	return fmt.Sprintf("%v/%v/%v", k.Class, k.TP, k.Freq)
}

// Observation is one measured operating point, produced either analytically
// (fluid model) or by running the engine simulator at the load.
type Observation struct {
	Lambda   float64 // requests/second
	Power    float64 // average instance watts
	TTFTP99  float64
	TBTP99   float64
	Feasible bool
}

// Measurer produces an observation for a configuration at a load. The
// default AnalyticMeasurer uses the fluid model; the engine package provides
// a measured alternative, mirroring the paper's offline profiling runs.
type Measurer func(cfg perfmodel.Config, lambda float64, inTokens, outTokens int, sloScale float64) Observation

// AnalyticMeasurer evaluates the closed-form steady state.
func AnalyticMeasurer(cfg perfmodel.Config, lambda float64, inTokens, outTokens int, sloScale float64) Observation {
	st := perfmodel.SteadyStateSLO(cfg, lambda, inTokens, outTokens, sloScale)
	return Observation{
		Lambda:   lambda,
		Power:    st.Power,
		TTFTP99:  st.TTFTP99,
		TBTP99:   st.TBTP99,
		Feasible: st.Feasible,
	}
}

// Entry is the profile of one configuration for one class: interpolation
// tables over load.
type Entry struct {
	Key Key
	// MaxLoad is the largest SLO-feasible request rate (req/s).
	MaxLoad float64
	// Power maps req/s to average instance watts.
	Power *interp.Table
	// TTFTP99 and TBTP99 map req/s to tail latencies in seconds.
	TTFTP99 *interp.Table
	TBTP99  *interp.Table
	// IdlePower is the instance's power at zero load (all GPUs idle).
	IdlePower float64
}

// EnergyPerRequest returns the modeled joules per request at the load,
// attributing full instance power to the stream.
func (e *Entry) EnergyPerRequest(lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	return e.Power.At(lambda) / lambda
}

// Feasible reports whether the load is within the profiled SLO capacity.
func (e *Entry) Feasible(lambda float64) bool {
	return e.MaxLoad > 0 && lambda <= e.MaxLoad
}

// Profile holds the complete characterization of one model under one SLO
// scale: all classes, parallelisms, and ladder frequencies.
type Profile struct {
	Model    *model.Model
	SLOScale float64
	entries  map[Key]*Entry
	// RepLengths records the representative lengths used per class.
	RepLengths map[workload.Class][2]int
}

// loadFractions are the load levels profiled per configuration, as
// fractions of the configuration's max throughput; the paper profiles "a
// few load levels, up to the maximum throughput" and extrapolates between
// them (§IV-A).
var loadFractions = []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95}

// Build characterizes a model with the given measurer (nil = analytic).
// Frequencies profiled are the coarse ladder plus the full ladder if
// fullLadder is set (the paper profiles 800-1980 MHz in 200 MHz steps).
func Build(m *model.Model, sloScale float64, measure Measurer) *Profile {
	if measure == nil {
		measure = AnalyticMeasurer
	}
	if sloScale < 1 {
		sloScale = 1
	}
	p := &Profile{
		Model:      m,
		SLOScale:   sloScale,
		entries:    make(map[Key]*Entry),
		RepLengths: make(map[workload.Class][2]int),
	}
	for _, cls := range workload.AllClasses {
		in, out := workload.RepresentativeLengths(cls)
		p.RepLengths[cls] = [2]int{in, out}
		for _, tp := range model.TPChoices {
			for _, f := range gpu.Ladder() {
				key := Key{Class: cls, TP: tp, Freq: f}
				p.entries[key] = buildEntry(key, m, in, out, sloScale, measure)
			}
		}
	}
	return p
}

func buildEntry(key Key, m *model.Model, in, out int, sloScale float64, measure Measurer) *Entry {
	cfg := perfmodel.Config{Model: m, TP: key.TP, Freq: key.Freq}
	e := &Entry{Key: key, IdlePower: gpu.H100.IdlePower * float64(key.TP.GPUs())}
	maxLoad, ok := perfmodel.MaxLoad(cfg, key.Class, sloScale)
	if !ok || maxLoad <= 0 {
		// Infeasible configuration: flat tables at idle power.
		e.MaxLoad = 0
		e.Power = interp.MustNew([]float64{0}, []float64{e.IdlePower})
		e.TTFTP99 = interp.MustNew([]float64{0}, []float64{math.Inf(1)})
		e.TBTP99 = interp.MustNew([]float64{0}, []float64{math.Inf(1)})
		return e
	}
	e.MaxLoad = maxLoad
	xs := []float64{0}
	power := []float64{e.IdlePower}
	ttft := []float64{0}
	tbt := []float64{0}
	for _, frac := range loadFractions {
		lambda := maxLoad * frac
		obs := measure(cfg, lambda, in, out, sloScale)
		xs = append(xs, lambda)
		power = append(power, obs.Power)
		ttft = append(ttft, obs.TTFTP99)
		tbt = append(tbt, obs.TBTP99)
	}
	e.Power = interp.MustNew(xs, power)
	e.TTFTP99 = interp.MustNew(xs, ttft)
	e.TBTP99 = interp.MustNew(xs, tbt)
	// The zero-load latency samples are placeholders; anchor them to the
	// lightest measured point instead of zero to avoid optimistic
	// interpolation below the first sample.
	ttft[0] = ttft[1]
	tbt[0] = tbt[1]
	e.TTFTP99 = interp.MustNew(xs, ttft)
	e.TBTP99 = interp.MustNew(xs, tbt)
	return e
}

// Entry returns the profile entry for a key (nil if the key was not
// profiled, e.g. a frequency off the ladder).
func (p *Profile) Entry(key Key) *Entry {
	key.Freq = gpu.Nearest(key.Freq)
	return p.entries[key]
}

// MaxLoadHighestPerf returns the per-instance capacity of the
// highest-performance configuration (TP8 at max frequency) for the class —
// the ML term in the cluster manager's node-count formula (§IV-B).
func (p *Profile) MaxLoadHighestPerf(cls workload.Class) float64 {
	e := p.Entry(Key{Class: cls, TP: model.TP8, Freq: gpu.MaxFreq})
	if e == nil {
		return 0
	}
	return e.MaxLoad
}

// Choice is a candidate configuration with its modeled cost.
type Choice struct {
	Key              Key
	EnergyPerRequest float64
	Power            float64
}

// BestConfig returns the least-energy feasible configuration for serving
// lambda req/s of the class, optionally restricted to a TP degree
// (tpFilter = 0 means any). The paper's instance manager uses the
// frequency dimension of this query; the pool manager uses the TP
// dimension (§IV-B).
func (p *Profile) BestConfig(cls workload.Class, lambda float64, tpFilter model.TP) (Choice, bool) {
	best := Choice{EnergyPerRequest: math.Inf(1)}
	found := false
	for _, tp := range model.TPChoices {
		if tpFilter != 0 && tp != tpFilter {
			continue
		}
		for _, f := range gpu.Ladder() {
			e := p.Entry(Key{Class: cls, TP: tp, Freq: f})
			if e == nil || !e.Feasible(lambda) {
				continue
			}
			epr := e.EnergyPerRequest(lambda)
			if epr < best.EnergyPerRequest {
				best = Choice{Key: e.Key, EnergyPerRequest: epr, Power: e.Power.At(lambda)}
				found = true
			}
		}
	}
	return best, found
}

// BestFreq returns the least-energy SLO-feasible frequency for a fixed
// class and parallelism at the load — the instance manager's 5-second
// decision (§IV-B "Scale-up/down"). The bool reports whether any frequency
// is feasible; if none, the caller escalates (emergency path).
func (p *Profile) BestFreq(cls workload.Class, tp model.TP, lambda float64) (gpu.Freq, bool) {
	c, ok := p.BestConfig(cls, lambda, tp)
	if !ok {
		return gpu.MaxFreq, false
	}
	return c.Key.Freq, true
}

// --- Repository ---------------------------------------------------------------

// Repository caches profiles by (model, SLO scale), standing in for the
// paper's global profile store with cluster-local caching. It is safe for
// concurrent use: the global lock only guards the cache map, and each
// profile is built at most once outside it (per-key sync.Once), so
// concurrent simulations of different models or SLO scales profile in
// parallel while same-key callers share one build.
type Repository struct {
	mu       sync.Mutex
	profiles map[repoKey]*repoEntry
	measure  Measurer
	// Hits and Misses count cache behaviour (observable for tests). A miss
	// is counted per key, not per caller: concurrent Gets for a key being
	// built all block on the same build and the first counts the miss.
	Hits, Misses int
}

type repoKey struct {
	model    string
	sloScale float64
}

type repoEntry struct {
	once sync.Once
	p    *Profile
}

// NewRepository returns an empty repository using the given measurer
// (nil = analytic).
func NewRepository(measure Measurer) *Repository {
	return &Repository{profiles: make(map[repoKey]*repoEntry), measure: measure}
}

// Get returns the profile for a model/SLO pair, building it on first use.
func (r *Repository) Get(m *model.Model, sloScale float64) *Profile {
	if sloScale < 1 {
		sloScale = 1
	}
	k := repoKey{model: m.Name, sloScale: sloScale}
	r.mu.Lock()
	e, ok := r.profiles[k]
	if ok {
		r.Hits++
	} else {
		r.Misses++
		e = &repoEntry{}
		r.profiles[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if e.p == nil {
				// Build panicked (e.g. a broken custom Measurer). Drop
				// the entry so a later Get retries the build instead of
				// returning nil forever.
				r.mu.Lock()
				delete(r.profiles, k)
				r.mu.Unlock()
			}
		}()
		e.p = Build(m, sloScale, r.measure)
	})
	if e.p == nil {
		// A concurrent caller's build panicked while we waited on it.
		panic(fmt.Sprintf("profile: build failed for %s/SLOx%g", k.model, k.sloScale))
	}
	return e.p
}
