package profile

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/workload"
)

var (
	prof70     *Profile
	prof70Once sync.Once
)

// p70 builds the Llama2-70B profile once for the whole test package
// (building touches 9 classes x 3 TPs x 8 freqs x 6 loads).
func p70(t *testing.T) *Profile {
	t.Helper()
	prof70Once.Do(func() {
		prof70 = Build(model.Llama2_70B, 1, nil)
	})
	return prof70
}

func TestBuildCoversKnobSpace(t *testing.T) {
	p := p70(t)
	for _, cls := range workload.AllClasses {
		for _, tp := range model.TPChoices {
			for _, f := range gpu.Ladder() {
				if p.Entry(Key{Class: cls, TP: tp, Freq: f}) == nil {
					t.Fatalf("missing entry %v/%v/%v", cls, tp, f)
				}
			}
		}
	}
}

func TestEntrySnapsFrequency(t *testing.T) {
	p := p70(t)
	a := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: 1234})
	b := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: 1200})
	if a != b {
		t.Error("off-ladder frequency did not snap to nearest entry")
	}
}

func TestMaxLoadOrdering(t *testing.T) {
	p := p70(t)
	// Capacity grows with parallelism at max frequency.
	var prev float64
	for _, tp := range model.TPChoices {
		e := p.Entry(Key{Class: workload.MM, TP: tp, Freq: gpu.MaxFreq})
		if e.MaxLoad < prev {
			t.Errorf("MaxLoad not increasing with TP: %v at %v", e.MaxLoad, tp)
		}
		prev = e.MaxLoad
	}
	// Capacity grows with frequency at fixed TP8.
	prev = 0
	for _, f := range gpu.Ladder() {
		e := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: f})
		if e.MaxLoad < prev {
			t.Errorf("MaxLoad not increasing with freq at %v", f)
		}
		prev = e.MaxLoad
	}
}

func TestPowerTablesMonotoneAtFeasibleLoads(t *testing.T) {
	p := p70(t)
	e := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: 1600})
	prev := 0.0
	for _, frac := range []float64{0, 0.2, 0.5, 0.9} {
		w := e.Power.At(e.MaxLoad * frac)
		if w < prev {
			t.Errorf("power not monotone in load at %v: %v < %v", frac, w, prev)
		}
		prev = w
	}
	if e.Power.At(0) != e.IdlePower {
		t.Errorf("zero-load power = %v, want idle %v", e.Power.At(0), e.IdlePower)
	}
}

func TestInfeasibleEntry(t *testing.T) {
	p := p70(t)
	// MM at TP2 cannot serve the medium system load (Table I): its
	// capacity is a small fraction of TP4's, and the 2K-TPS lambda
	// (2.81 req/s) is beyond it.
	e2 := p.Entry(Key{Class: workload.MM, TP: model.TP2, Freq: gpu.MaxFreq})
	e4 := p.Entry(Key{Class: workload.MM, TP: model.TP4, Freq: gpu.MaxFreq})
	if e2.MaxLoad >= e4.MaxLoad/2 {
		t.Errorf("MM/TP2 capacity %v not far below TP4 %v", e2.MaxLoad, e4.MaxLoad)
	}
	if e2.Feasible(2.81) {
		t.Error("MM/TP2 should be infeasible at the 2K-TPS lambda")
	}
	// MM at TP2 and the lowest clock only works at vanishing load, where
	// the rare long prefill hiccups stay under 1%% of token gaps.
	low := p.Entry(Key{Class: workload.MM, TP: model.TP2, Freq: 800})
	if low.MaxLoad > 0.2 {
		t.Fatalf("MM/TP2/0.8GHz MaxLoad = %v, want near zero", low.MaxLoad)
	}
	// A memory-infeasible configuration has a truly empty profile.
	falcon := Build(model.Falcon180B, 1, nil)
	none := falcon.Entry(Key{Class: workload.MM, TP: model.TP2, Freq: 800})
	if none.MaxLoad != 0 {
		t.Fatalf("falcon-180b/TP2 MaxLoad = %v, want 0", none.MaxLoad)
	}
	if none.Feasible(0.1) {
		t.Error("infeasible entry reported feasible")
	}
	if !math.IsInf(none.TTFTP99.At(1), 1) {
		t.Error("infeasible entry should report infinite latency")
	}
}

func TestEnergyPerRequest(t *testing.T) {
	p := p70(t)
	e := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: 1600})
	lambda := e.MaxLoad * 0.5
	want := e.Power.At(lambda) / lambda
	if got := e.EnergyPerRequest(lambda); got != want {
		t.Errorf("EnergyPerRequest = %v, want %v", got, want)
	}
	if !math.IsInf(e.EnergyPerRequest(0), 1) {
		t.Error("zero-load energy/request should be +Inf")
	}
}

func TestMaxLoadHighestPerf(t *testing.T) {
	p := p70(t)
	for _, cls := range workload.AllClasses {
		ml := p.MaxLoadHighestPerf(cls)
		if ml <= 0 {
			t.Errorf("%v: highest-perf capacity = %v, want > 0", cls, ml)
		}
		e := p.Entry(Key{Class: cls, TP: model.TP8, Freq: gpu.MaxFreq})
		if ml != e.MaxLoad {
			t.Errorf("%v: MaxLoadHighestPerf mismatch", cls)
		}
	}
}

// TestBestConfigMatchesPaperShapes: the profile-driven picks reproduce the
// Table I optima (SS at TP2, SL at TP4@1.2GHz).
func TestBestConfigMatchesPaperShapes(t *testing.T) {
	p := p70(t)
	// Medium system load: 2000 total TPS split per class.
	lambdaFor := func(cls workload.Class) float64 {
		in, out := workload.RepresentativeLengths(cls)
		return 2000.0 / float64(in+out)
	}
	ss, ok := p.BestConfig(workload.SS, lambdaFor(workload.SS), 0)
	if !ok || ss.Key.TP != model.TP2 {
		t.Errorf("SS best = %+v, want TP2", ss.Key)
	}
	sl, ok := p.BestConfig(workload.SL, lambdaFor(workload.SL), 0)
	if !ok || sl.Key.TP != model.TP4 || sl.Key.Freq > 1200 {
		t.Errorf("SL best = %v, want TP4 at a low clock", sl.Key)
	}
	mm, ok := p.BestConfig(workload.MM, lambdaFor(workload.MM), 0)
	if !ok || mm.Key.TP != model.TP4 {
		t.Errorf("MM best = %v, want TP4", mm.Key)
	}
}

func TestBestConfigRespectsTPFilter(t *testing.T) {
	p := p70(t)
	c, ok := p.BestConfig(workload.MM, 1.0, model.TP8)
	if !ok || c.Key.TP != model.TP8 {
		t.Errorf("filtered best = %+v", c)
	}
}

func TestBestConfigInfeasibleLoad(t *testing.T) {
	p := p70(t)
	if _, ok := p.BestConfig(workload.LL, 1e6, 0); ok {
		t.Error("absurd load reported feasible")
	}
}

func TestBestFreqFallsWithLoad(t *testing.T) {
	p := p70(t)
	e := p.Entry(Key{Class: workload.MM, TP: model.TP8, Freq: gpu.MaxFreq})
	fLow, ok1 := p.BestFreq(workload.MM, model.TP8, e.MaxLoad*0.15)
	fHigh, ok2 := p.BestFreq(workload.MM, model.TP8, e.MaxLoad*0.97)
	if !ok1 || !ok2 {
		t.Fatal("BestFreq failed on feasible loads")
	}
	if fLow > fHigh {
		t.Errorf("light load picked higher freq (%v) than heavy load (%v)", fLow, fHigh)
	}
	if _, ok := p.BestFreq(workload.MM, model.TP8, e.MaxLoad*50); ok {
		t.Error("BestFreq on impossible load should fail")
	}
}

// TestLooseSLOProfile: relaxing the SLO only increases capacity.
func TestLooseSLOProfile(t *testing.T) {
	strict := p70(t)
	loose := Build(model.Llama2_13B, 2, nil)
	_ = strict
	for _, tp := range model.TPChoices {
		s := Build(model.Llama2_13B, 1, nil).Entry(Key{Class: workload.MM, TP: tp, Freq: 1200})
		l := loose.Entry(Key{Class: workload.MM, TP: tp, Freq: 1200})
		if l.MaxLoad < s.MaxLoad {
			t.Errorf("loose SLO shrank capacity at %v: %v < %v", tp, l.MaxLoad, s.MaxLoad)
		}
	}
}

func TestRepositoryCaches(t *testing.T) {
	r := NewRepository(nil)
	a := r.Get(model.Llama2_13B, 1)
	b := r.Get(model.Llama2_13B, 1)
	if a != b {
		t.Error("repository rebuilt an existing profile")
	}
	if r.Hits != 1 || r.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", r.Hits, r.Misses)
	}
	c := r.Get(model.Llama2_13B, 2)
	if c == a {
		t.Error("different SLO scale returned same profile")
	}
	if r.Get(model.Llama2_13B, 0.5) != a {
		t.Error("sub-1 SLO scale should clamp to 1 and hit the cache")
	}
}

func TestRepositoryConcurrent(t *testing.T) {
	r := NewRepository(nil)
	var wg sync.WaitGroup
	out := make([]*Profile, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = r.Get(model.Mixtral8x7B, 1)
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if out[i] != out[0] {
			t.Fatal("concurrent Get returned different profiles")
		}
	}
}

func TestRepositoryConcurrentBuildsOnce(t *testing.T) {
	var builds atomic.Int32
	counting := func(cfg perfmodel.Config, lambda float64, in, out int, sloScale float64) Observation {
		builds.Add(1)
		return AnalyticMeasurer(cfg, lambda, in, out, sloScale)
	}
	r := NewRepository(counting)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Get(model.Llama2_13B, 1)
		}()
	}
	wg.Wait()
	if r.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one build shared by all callers)", r.Misses)
	}
	if r.Hits != 15 {
		t.Errorf("hits = %d, want 15", r.Hits)
	}
	want := builds.Load()
	r.Get(model.Llama2_13B, 1)
	if builds.Load() != want {
		t.Error("cache hit re-ran the measurer")
	}
}

func TestRepositoryConcurrentDistinctKeys(t *testing.T) {
	r := NewRepository(nil)
	scales := []float64{1, 2, 4}
	var wg sync.WaitGroup
	out := make([]*Profile, len(scales))
	for i, s := range scales {
		wg.Add(1)
		go func(i int, s float64) {
			defer wg.Done()
			out[i] = r.Get(model.Llama2_13B, s)
		}(i, s)
	}
	wg.Wait()
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[i] == out[j] {
				t.Errorf("scales %v and %v shared a profile", scales[i], scales[j])
			}
		}
	}
	if r.Misses != len(scales) {
		t.Errorf("misses = %d, want %d", r.Misses, len(scales))
	}
}

func TestRepositoryRetriesAfterBuildPanic(t *testing.T) {
	var calls atomic.Int32
	flaky := func(cfg perfmodel.Config, lambda float64, in, out int, sloScale float64) Observation {
		if calls.Add(1) == 1 {
			panic("measurer transient failure")
		}
		return AnalyticMeasurer(cfg, lambda, in, out, sloScale)
	}
	r := NewRepository(flaky)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first Get should propagate the build panic")
			}
		}()
		r.Get(model.Llama2_13B, 1)
	}()
	p := r.Get(model.Llama2_13B, 1)
	if p == nil {
		t.Fatal("retry after failed build returned nil")
	}
	if r.Misses != 2 {
		t.Errorf("misses = %d, want 2 (failed build dropped from cache)", r.Misses)
	}
}
