package workload

import (
	"testing"
	"testing/quick"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		in   int
		f    func(int) LengthBucket
		want LengthBucket
	}{
		{0, BucketInput, Short},
		{255, BucketInput, Short},
		{256, BucketInput, Medium},
		{1023, BucketInput, Medium},
		{1024, BucketInput, Long},
		{8192, BucketInput, Long},
		{0, BucketOutput, Short},
		{99, BucketOutput, Short},
		{100, BucketOutput, Medium},
		{349, BucketOutput, Medium},
		{350, BucketOutput, Long},
	}
	for i, c := range cases {
		if got := c.f(c.in); got != c.want {
			t.Errorf("case %d: bucket(%d) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

// TestClassifyPartition: every (in, out) pair maps to exactly one class and
// the class round-trips through its buckets.
func TestClassifyPartition(t *testing.T) {
	f := func(in, out uint16) bool {
		i, o := int(in%8192), int(out%1024)
		c := Classify(i, o)
		return c >= 0 && c < NumClasses &&
			c.Input() == BucketInput(i) && c.Output() == BucketOutput(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeClassRoundTrip(t *testing.T) {
	for _, c := range AllClasses {
		if MakeClass(c.Input(), c.Output()) != c {
			t.Errorf("%v does not round-trip", c)
		}
	}
}

func TestClassNamesAndParse(t *testing.T) {
	want := []string{"SS", "SM", "SL", "MS", "MM", "ML", "LS", "LM", "LL"}
	for i, c := range AllClasses {
		if c.String() != want[i] {
			t.Errorf("class %d = %q, want %q", i, c.String(), want[i])
		}
		got, err := ParseClass(want[i])
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", want[i], got, err)
		}
	}
	if _, err := ParseClass("XX"); err == nil {
		t.Error("ParseClass accepted invalid name")
	}
}

func TestSLOTableIV(t *testing.T) {
	// TTFT: 250 ms short input, 400 ms medium, 2000 ms long; TBT 100 ms.
	for _, c := range AllClasses {
		slo := SLOFor(c)
		if slo.TBT != 0.100 {
			t.Errorf("%v TBT = %v, want 0.1", c, slo.TBT)
		}
		var wantTTFT float64
		switch c.Input() {
		case Short:
			wantTTFT = 0.250
		case Medium:
			wantTTFT = 0.400
		case Long:
			wantTTFT = 2.000
		}
		if slo.TTFT != wantTTFT {
			t.Errorf("%v TTFT = %v, want %v", c, slo.TTFT, wantTTFT)
		}
	}
}

func TestSLOScale(t *testing.T) {
	s := SLOFor(SS).Scale(2)
	if s.TTFT != 0.5 || s.TBT != 0.2 {
		t.Errorf("scaled SLO = %+v", s)
	}
}

func TestRepresentativeLengthsInBucket(t *testing.T) {
	for _, c := range AllClasses {
		in, out := RepresentativeLengths(c)
		if BucketInput(in) != c.Input() || BucketOutput(out) != c.Output() {
			t.Errorf("%v representative (%d,%d) not in bucket", c, in, out)
		}
	}
}

func TestRequestLatencies(t *testing.T) {
	r := &Request{Arrival: 100, InputTokens: 128, OutputTokens: 51}
	if r.TTFT() != -1 {
		t.Error("TTFT before first token should be -1")
	}
	r.FirstToken = 100.2
	r.Finish = 105.2
	if got := r.TTFT(); got < 0.199 || got > 0.201 {
		t.Errorf("TTFT = %v, want 0.2", got)
	}
	if got := r.AvgTBT(); got < 0.099 || got > 0.101 {
		t.Errorf("AvgTBT = %v, want 0.1", got)
	}
}

func TestMeetsSLO(t *testing.T) {
	r := &Request{Arrival: 0, InputTokens: 128, OutputTokens: 51}
	r.FirstToken = 0.2
	r.Finish = 0.2 + 50*0.09
	if !r.MeetsSLO() {
		t.Error("request within SLO reported as violating")
	}
	r.FirstToken = 0.3 // over the 250 ms SS TTFT
	if r.MeetsSLO() {
		t.Error("TTFT violation not detected")
	}
	r.FirstToken = 0.2
	r.Finish = 0.2 + 50*0.2 // 200 ms TBT
	if r.MeetsSLO() {
		t.Error("TBT violation not detected")
	}
	r.SLOScale = 4
	if !r.MeetsSLO() {
		t.Error("relaxed SLO should pass")
	}
}

func TestSquashedFailsSLO(t *testing.T) {
	r := &Request{Arrival: 0, InputTokens: 10, OutputTokens: 10, Squashed: true}
	r.FirstToken = 0.01
	r.Finish = 0.02
	if r.MeetsSLO() {
		t.Error("squashed request must not meet SLO")
	}
}

func TestTotalTokens(t *testing.T) {
	r := &Request{InputTokens: 100, OutputTokens: 23}
	if r.TotalTokens() != 123 {
		t.Errorf("TotalTokens = %d, want 123", r.TotalTokens())
	}
}

func TestSingleTokenOutputSkipsTBT(t *testing.T) {
	r := &Request{Arrival: 0, InputTokens: 10, OutputTokens: 1}
	r.FirstToken = 0.1
	r.Finish = 0.1
	if !r.MeetsSLO() {
		t.Error("single-token request with good TTFT should meet SLO")
	}
}
