// Package workload defines LLM inference requests and the paper's nine
// input/output length classes (SS…LL, Table IV) with their TTFT/TBT SLOs.
// Arrival processes live in package trace; this package only describes
// individual requests and how they are classified and judged.
package workload

import (
	"fmt"

	"dynamollm/internal/simclock"
)

// LengthBucket grades a token count as short, medium, or long against the
// Table IV thresholds.
type LengthBucket int

// Buckets in increasing order.
const (
	Short LengthBucket = iota
	Medium
	Long
)

// String returns the bucket's single-letter name ("S", "M", "L").
func (b LengthBucket) String() string {
	switch b {
	case Short:
		return "S"
	case Medium:
		return "M"
	case Long:
		return "L"
	}
	return "?"
}

// Table IV thresholds: the 33rd/66th/100th percentiles of the Conversation
// trace lengths. Inputs: short <256, medium <1024, long ≤8192 tokens.
// Outputs: short <100, medium <350, long ≥350.
const (
	InputShortMax   = 256
	InputMediumMax  = 1024
	InputLongMax    = 8192
	OutputShortMax  = 100
	OutputMediumMax = 350
	OutputLongMax   = 4096 // generation cap; Table IV only lower-bounds long
)

// BucketInput classifies an input length.
func BucketInput(tokens int) LengthBucket {
	switch {
	case tokens < InputShortMax:
		return Short
	case tokens < InputMediumMax:
		return Medium
	default:
		return Long
	}
}

// BucketOutput classifies an output length.
func BucketOutput(tokens int) LengthBucket {
	switch {
	case tokens < OutputShortMax:
		return Short
	case tokens < OutputMediumMax:
		return Medium
	default:
		return Long
	}
}

// Class is one of the nine request types: input bucket × output bucket.
type Class int

// The nine classes in the paper's presentation order (input major).
const (
	SS Class = iota
	SM
	SL
	MS
	MM
	ML
	LS
	LM
	LL
	NumClasses = 9
)

var classNames = [NumClasses]string{"SS", "SM", "SL", "MS", "MM", "ML", "LS", "LM", "LL"}

// String returns the class's two-letter name ("SS".."LL"), input bucket
// first.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// AllClasses lists the nine classes in order.
var AllClasses = []Class{SS, SM, SL, MS, MM, ML, LS, LM, LL}

// ParseClass returns the class with the given name ("SS".."LL").
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown class %q", s)
}

// MakeClass combines input and output buckets into a class.
func MakeClass(in, out LengthBucket) Class {
	return Class(int(in)*3 + int(out))
}

// Input returns the class's input bucket.
func (c Class) Input() LengthBucket { return LengthBucket(int(c) / 3) }

// Output returns the class's output bucket.
func (c Class) Output() LengthBucket { return LengthBucket(int(c) % 3) }

// Classify assigns a request to its class from true input/output lengths.
func Classify(inputTokens, outputTokens int) Class {
	return MakeClass(BucketInput(inputTokens), BucketOutput(outputTokens))
}

// SLO holds the latency targets for one class: time to first token and time
// between tokens, in seconds. The paper sets SLOs at 5× the latency of an
// isolated request on an unloaded system (Table IV); looser services use
// 10× or 20× (§III-A).
type SLO struct {
	TTFT float64
	TBT  float64
}

// Scale returns the SLO relaxed by factor k (k=2 turns a 5× SLO into 10×).
func (s SLO) Scale(k float64) SLO {
	return SLO{TTFT: s.TTFT * k, TBT: s.TBT * k}
}

// Table IV SLOs: TTFT 250 ms (short input), 400 ms (medium), 2000 ms (long);
// TBT 100 ms for all classes.
var tableIVSLO = [NumClasses]SLO{
	SS: {0.250, 0.100}, SM: {0.250, 0.100}, SL: {0.250, 0.100},
	MS: {0.400, 0.100}, MM: {0.400, 0.100}, ML: {0.400, 0.100},
	LS: {2.000, 0.100}, LM: {2.000, 0.100}, LL: {2.000, 0.100},
}

// SLOFor returns the Table IV SLO for a class.
func SLOFor(c Class) SLO { return tableIVSLO[c] }

// RepresentativeLengths returns nominal input/output token counts for a
// class, used for profiling and for the per-class characterization tables.
// They are the geometric middles of the Table IV buckets, matching the
// mean of the log-normal length distributions the trace generator draws.
func RepresentativeLengths(c Class) (in, out int) {
	inputs := [3]int{90, 512, 2896}
	outputs := [3]int{28, 187, 1197}
	return inputs[c.Input()], outputs[c.Output()]
}

// Request is one inference query.
type Request struct {
	ID           uint64
	Arrival      simclock.Time
	InputTokens  int
	OutputTokens int // true output length (unknown to the system on arrival)

	// Tag is the opaque caller identifier carried over from the trace
	// entry (trace.Entry.Tag); non-zero only for live-injected requests,
	// which the serving session matches to completion waiters by it.
	Tag uint64

	// PromptGroup identifies requests sharing a prompt prefix (system
	// prompt, few-shot template): non-zero values let the engine's
	// prefix cache skip prefill work for later members of the group
	// (engine.KVConfig.PrefixCache). Zero means no shared prefix.
	PromptGroup uint64

	// PredictedClass is the router's classification from the known input
	// length and the *predicted* output bucket (§IV-D).
	PredictedClass Class

	// SLOScale relaxes the Table IV SLO for loose-SLO services (1, 2, 4).
	SLOScale float64

	// SteerPenalty is extra TTFT incurred when a mispredicted request is
	// detected and re-steered to the correct pool (§IV-D).
	SteerPenalty float64

	// Retries counts frontend retry attempts consumed so far (§IV-D): a
	// request whose instance died or whose pool had no capacity re-enters
	// the router after a backoff, up to the run's retry budget. Zero for
	// first-attempt requests.
	Retries int

	// RetryDelay is the virtual time already spent between the original
	// arrival and the latest re-admission (queue waits plus backoff). The
	// fluid backend adds it to the sampled TTFT so retry-aware SLO
	// accounting measures from the original arrival; the event backend
	// needs no correction because Arrival itself is preserved across
	// retries.
	RetryDelay float64

	// Lifecycle timestamps, filled by the engine.
	FirstToken simclock.Time // when the first output token was produced
	Finish     simclock.Time // when the last output token was produced
	Squashed   bool          // terminally dropped: retry budget exhausted, retry queue overflow, or undrainable at run end
}

// Class returns the true class from actual lengths.
func (r *Request) Class() Class {
	return Classify(r.InputTokens, r.OutputTokens)
}

// SLO returns the latency targets this request must meet — keyed by the
// true class (the system is judged on real behaviour, not predictions).
// SLOScale values above 1 relax the Table IV targets (loose-SLO services);
// values in (0, 1) tighten them (scenario-injected SLO-crunch windows);
// zero or one leaves them nominal.
func (r *Request) SLO() SLO {
	s := SLOFor(r.Class())
	if r.SLOScale > 0 && r.SLOScale != 1 {
		s = s.Scale(r.SLOScale)
	}
	return s
}

// TTFT returns the achieved time to first token in seconds, or -1 if the
// request has not produced a token.
func (r *Request) TTFT() float64 {
	if r.FirstToken < r.Arrival {
		return -1
	}
	return float64(r.FirstToken - r.Arrival)
}

// AvgTBT returns the achieved mean time between output tokens in seconds,
// or -1 if unavailable.
func (r *Request) AvgTBT() float64 {
	if r.Finish < r.FirstToken || r.OutputTokens <= 1 {
		return -1
	}
	return float64(r.Finish-r.FirstToken) / float64(r.OutputTokens-1)
}

// MeetsSLO reports whether both achieved latencies are within the SLO.
func (r *Request) MeetsSLO() bool {
	if r.Squashed {
		return false
	}
	slo := r.SLO()
	if ttft := r.TTFT(); ttft < 0 || ttft > slo.TTFT {
		return false
	}
	if r.OutputTokens > 1 {
		if tbt := r.AvgTBT(); tbt < 0 || tbt > slo.TBT {
			return false
		}
	}
	return true
}

// TotalTokens returns input + output token count, the unit of the paper's
// tokens-per-second load metric.
func (r *Request) TotalTokens() int { return r.InputTokens + r.OutputTokens }
