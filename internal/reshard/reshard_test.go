package reshard

import (
	"testing"
	"testing/quick"

	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
)

func TestRoleSlices(t *testing.T) {
	if got := roleSlices(model.TP2, 0); got != 0x0F {
		t.Errorf("TP2 role 0 = %08b, want 00001111", got)
	}
	if got := roleSlices(model.TP2, 1); got != 0xF0 {
		t.Errorf("TP2 role 1 = %08b, want 11110000", got)
	}
	if got := roleSlices(model.TP8, 5); got != 1<<5 {
		t.Errorf("TP8 role 5 = %08b", got)
	}
	if got := roleSlices(model.TP4, 1); got != 0x0C {
		t.Errorf("TP4 role 1 = %08b, want 00001100", got)
	}
}

func TestConfigString(t *testing.T) {
	cases := []struct {
		c    Config
		want string
	}{
		{Config{model.TP2}, "TP2"},
		{Config{model.TP2, model.TP2, model.TP2, model.TP2}, "4TP2"},
		{Config{model.TP4, model.TP2}, "TP4+TP2"},
		{Config{model.TP2, model.TP4}, "TP4+TP2"},
		{Config{}, "idle"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []model.TP(c.c), got, c.want)
		}
	}
}

func TestCanonicalLayoutCoversModel(t *testing.T) {
	for _, cfg := range TableVIConfigs {
		l := CanonicalLayout(cfg)
		instances := 0
		var union SliceSet
		for _, s := range l {
			union |= s
		}
		if union != 0xFF {
			t.Errorf("%v layout does not cover all slices: %08b", cfg, union)
		}
		_ = instances
	}
}

// TestTableVI pins the paper's full overhead matrix (Table VI), derived by
// the planner rather than hard-coded.
func TestTableVI(t *testing.T) {
	want := [][]int{
		// Dst:  TP2 4TP2 TP4 TP2+TP4 2TP4 TP8    Src:
		{0, 4, 2, 2, 2, 1}, // TP2
		{0, 0, 0, 0, 0, 0}, // 4TP2
		{2, 2, 0, 2, 2, 1}, // TP4
		{0, 2, 0, 0, 1, 1}, // TP2+TP4
		{1, 1, 0, 1, 0, 0}, // 2TP4
		{1, 1, 1, 1, 1, 0}, // TP8
	}
	got := OverheadTable()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("overhead[%v][%v] = %dT, want %dT",
					TableVIConfigs[i], TableVIConfigs[j], got[i][j], want[i][j])
			}
		}
	}
}

func TestPlanReshardSelfIsFree(t *testing.T) {
	for _, cfg := range TableVIConfigs {
		p := PlanReshard(CanonicalLayout(cfg), cfg)
		if p.TimeUnits != 0 || p.SlicesMoved != 0 {
			t.Errorf("%v -> self moved %d slices in %dT", cfg, p.SlicesMoved, p.TimeUnits)
		}
	}
}

// TestPlanCompletesLayout: applying the moves yields every role's slices on
// its assigned GPU.
func TestPlanCompletesLayout(t *testing.T) {
	for _, src := range TableVIConfigs {
		for _, dst := range TableVIConfigs {
			layout := CanonicalLayout(src)
			p := PlanReshard(layout, dst)
			after := layout
			for _, mv := range p.Moves {
				if !layout[mv.Src].Has(mv.Slice) {
					t.Fatalf("%v->%v: move sources slice %d absent on GPU %d", src, dst, mv.Slice, mv.Src)
				}
				after[mv.Dst] |= 1 << mv.Slice
			}
			var roles []SliceSet
			for _, tp := range p.Target {
				for r := 0; r < tp.GPUs(); r++ {
					roles = append(roles, roleSlices(tp, r))
				}
			}
			for r, g := range p.RoleGPU {
				if roles[r]&^after[g] != 0 {
					t.Fatalf("%v->%v: role %d incomplete on GPU %d", src, dst, r, g)
				}
			}
		}
	}
}

// TestPlanRoleGPUsDistinct: no two roles share a GPU.
func TestPlanRoleGPUsDistinct(t *testing.T) {
	for _, src := range TableVIConfigs {
		for _, dst := range TableVIConfigs {
			p := PlanReshard(CanonicalLayout(src), dst)
			seen := map[int]bool{}
			for _, g := range p.RoleGPU {
				if seen[g] {
					t.Fatalf("%v->%v: GPU %d assigned twice", src, dst, g)
				}
				seen[g] = true
			}
		}
	}
}

// Property: the makespan never exceeds the total slices moved, and moves
// never exceed the model size times instance count.
func TestPlanBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := simclock.NewRNG(seed)
		src := TableVIConfigs[r.Intn(len(TableVIConfigs))]
		dst := TableVIConfigs[r.Intn(len(TableVIConfigs))]
		p := PlanReshard(CanonicalLayout(src), dst)
		if p.TimeUnits > p.SlicesMoved {
			return false
		}
		return p.SlicesMoved <= NumSlices*len(dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferSecondsMatchesPaperT(t *testing.T) {
	// T for Llama2-70B is ~50-60 ms (§IV-C: 300 GB/s NVLink, 1/8 of the
	// weights). The TP4->TP8 transition should take ~T.
	p := PlanReshard(CanonicalLayout(Config{model.TP4}), Config{model.TP8})
	sec := p.TransferSeconds(model.Llama2_70B)
	if sec < 0.04 || sec > 0.08 {
		t.Errorf("TP4->TP8 transfer = %v s, want ~0.057", sec)
	}
	if p.BytesMoved(model.Llama2_70B) <= 0 {
		t.Error("no bytes moved for a real transition")
	}
}

func TestTransitionImpactScaleUpKeepsServing(t *testing.T) {
	plan := PlanReshard(CanonicalLayout(Config{model.TP4}), Config{model.TP8})
	im := TransitionImpact(model.Llama2_70B, model.TP4, model.TP8, plan)
	if im.DowntimeSeconds != 0 {
		t.Errorf("scale-up downtime = %v, want 0 (old instance keeps serving)", im.DowntimeSeconds)
	}
	if im.ThroughputFactor != 1 {
		t.Errorf("scale-up throughput factor = %v, want 1", im.ThroughputFactor)
	}
	if im.SyncSeconds <= 0 {
		t.Error("engine sync must cost time")
	}
}

// TestTransitionImpactScaleDown70B: TP4->TP2 for a 70B model cannot hold
// both shard sets (§IV-C: "the old instance needs to be shutdown"), so it
// takes real downtime. TP8->TP4 shards coexist, so only throughput drops.
func TestTransitionImpactScaleDown70B(t *testing.T) {
	planHard := PlanReshard(CanonicalLayout(Config{model.TP4}), Config{model.TP2})
	hard := TransitionImpact(model.Llama2_70B, model.TP4, model.TP2, planHard)
	if hard.DowntimeSeconds <= 0 {
		t.Error("TP4->TP2 with 70B must incur downtime (shards cannot coexist)")
	}
	planSoft := PlanReshard(CanonicalLayout(Config{model.TP8}), Config{model.TP4})
	soft := TransitionImpact(model.Llama2_70B, model.TP8, model.TP4, planSoft)
	if soft.DowntimeSeconds != 0 {
		t.Errorf("TP8->TP4 downtime = %v, want 0", soft.DowntimeSeconds)
	}
	if soft.ThroughputFactor >= 1 || soft.ThroughputFactor <= 0 {
		t.Errorf("TP8->TP4 throughput factor = %v, want in (0,1)", soft.ThroughputFactor)
	}
}

func TestPlanReshardPanicsOnOversizedTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PlanReshard(CanonicalLayout(Config{model.TP8}), Config{model.TP8, model.TP2})
}
