// Package reshard implements DynamoLLM's low-overhead re-sharding (§IV-C):
// changing the tensor parallelism of instances on one 8-GPU server by
// moving model-weight shards between GPUs over NVLink.
//
// Weights are modeled at 1/8-model granularity (slices W0..W7, Fig. 5). A
// TPk role holds a contiguous block of 8/k slices. Planning happens in two
// stages, following the paper's graph algorithm:
//
//  1. Role placement: a bipartite matching between target roles and
//     physical GPUs that maximizes the weight bytes already resident
//     (equivalently minimizes bytes transferred). Solved exactly with a
//     bitmask DP over the 8 GPUs.
//  2. Source selection: each missing slice is fetched from some GPU that
//     holds it; distinct (src,dst) pairs transfer in parallel over the
//     NVLink switch, so the completion time is T times the maximum number
//     of slices on any single directed pair (T = time to move 1/8 of the
//     model, ~50 ms for Llama2-70B). A balancing pass spreads fetches
//     across replicas to minimize that maximum.
//
// The derived overhead matrix for the six server configurations reproduces
// the paper's Table VI.
package reshard

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
)

// NumSlices is the weight granularity: one slice = 1/8 of the model.
const NumSlices = 8

// SliceSet is a bitmask of slices W0..W7.
type SliceSet uint8

// Has reports whether slice i is in the set.
func (s SliceSet) Has(i int) bool { return s&(1<<i) != 0 }

// Count returns the number of slices.
func (s SliceSet) Count() int { return bits.OnesCount8(uint8(s)) }

// roleSlices returns the slices role r of a TPk instance holds: the
// contiguous block [r*8/k, (r+1)*8/k).
func roleSlices(tp model.TP, role int) SliceSet {
	per := NumSlices / tp.GPUs()
	var s SliceSet
	for i := role * per; i < (role+1)*per; i++ {
		s |= 1 << i
	}
	return s
}

// Layout records which slices each of the server's 8 GPUs holds. Multiple
// instances hold independent full copies, so a GPU's set is the union of
// its roles' slices.
type Layout [gpu.ServerGPUs]SliceSet

// Config is the instance mix on one server, e.g. {TP2, TP4} is the paper's
// "TP2+TP4". Order is canonical (sorted descending by TP).
type Config []model.TP

// GPUs returns the GPUs the configuration occupies.
func (c Config) GPUs() int {
	n := 0
	for _, tp := range c {
		n += tp.GPUs()
	}
	return n
}

func (c Config) String() string {
	if len(c) == 0 {
		return "idle"
	}
	// Collapse repeats: {TP2,TP2,TP2,TP2} -> "4TP2".
	counts := map[model.TP]int{}
	for _, tp := range c {
		counts[tp]++
	}
	var parts []string
	for _, tp := range []model.TP{model.TP8, model.TP4, model.TP2, model.TP1} {
		switch n := counts[tp]; {
		case n == 1:
			parts = append(parts, tp.String())
		case n > 1:
			parts = append(parts, fmt.Sprintf("%d%v", n, tp))
		}
	}
	return strings.Join(parts, "+")
}

// Canonical sorts the config descending by TP so equivalent configs compare
// equal.
func (c Config) Canonical() Config {
	out := append(Config(nil), c...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// CanonicalLayout places the config's instances on consecutive GPUs from
// GPU0 and returns the resulting slice layout.
func CanonicalLayout(c Config) Layout {
	var l Layout
	g := 0
	for _, tp := range c.Canonical() {
		for role := 0; role < tp.GPUs(); role++ {
			if g >= gpu.ServerGPUs {
				panic("reshard: config exceeds server GPUs")
			}
			l[g] = roleSlices(tp, role)
			g++
		}
	}
	return l
}

// Move is one slice transfer.
type Move struct {
	Src, Dst, Slice int
}

// Plan is a complete re-sharding schedule.
type Plan struct {
	Target Config
	// RoleGPU maps each target role (flattened across instances in
	// canonical order) to its physical GPU.
	RoleGPU []int
	Moves   []Move
	// TimeUnits is the makespan in units of T (the time to move one
	// slice over one NVLink pair); distinct pairs run in parallel.
	TimeUnits int
	// SlicesMoved is the total data volume in slices.
	SlicesMoved int
}

// TransferSeconds returns the wall-clock makespan for a given model.
func (p Plan) TransferSeconds(m *model.Model) float64 {
	return float64(p.TimeUnits) * gpu.TransferTime(m.WeightBytes/NumSlices)
}

// BytesMoved returns the volume transferred for a given model.
func (p Plan) BytesMoved(m *model.Model) float64 {
	return float64(p.SlicesMoved) * m.WeightBytes / NumSlices
}

// PlanReshard computes the minimum-transfer schedule from the current
// layout to the target configuration.
func PlanReshard(current Layout, target Config) Plan {
	target = target.Canonical()
	if target.GPUs() > gpu.ServerGPUs {
		panic("reshard: target config exceeds server GPUs")
	}
	// Flatten target roles.
	var roles []SliceSet
	for _, tp := range target {
		for r := 0; r < tp.GPUs(); r++ {
			roles = append(roles, roleSlices(tp, r))
		}
	}

	// Stage 1 — role placement: assignment problem minimizing transferred
	// slices, solved by DP over GPU bitmasks. cost[r][g] = slices role r
	// needs that GPU g lacks.
	nRoles := len(roles)
	cost := make([][]int, nRoles)
	for r := range roles {
		cost[r] = make([]int, gpu.ServerGPUs)
		for g := 0; g < gpu.ServerGPUs; g++ {
			cost[r][g] = (roles[r] &^ current[g]).Count()
		}
	}
	const inf = math.MaxInt32
	size := 1 << gpu.ServerGPUs
	dp := make([]int, size)
	parent := make([]int, size) // chosen GPU for role popcount(mask)-1
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := 0; mask < size; mask++ {
		if dp[mask] == inf {
			continue
		}
		r := bits.OnesCount(uint(mask))
		if r >= nRoles {
			continue
		}
		for g := 0; g < gpu.ServerGPUs; g++ {
			if mask&(1<<g) != 0 {
				continue
			}
			next := mask | 1<<g
			if c := dp[mask] + cost[r][g]; c < dp[next] {
				dp[next] = c
				parent[next] = g
			}
		}
	}
	// Find the best final mask with nRoles GPUs used.
	bestMask, bestCost := -1, inf
	for mask := 0; mask < size; mask++ {
		if bits.OnesCount(uint(mask)) == nRoles && dp[mask] < bestCost {
			bestMask, bestCost = mask, dp[mask]
		}
	}
	// Reconstruct role -> GPU.
	roleGPU := make([]int, nRoles)
	mask := bestMask
	for r := nRoles - 1; r >= 0; r-- {
		g := parent[mask]
		roleGPU[r] = g
		mask &^= 1 << g
	}

	// Stage 2 — source selection: balance fetches across replicas to
	// minimize the per-pair maximum.
	pairLoad := map[[2]int]int{}
	var moves []Move
	for r, g := range roleGPU {
		missing := roles[r] &^ current[g]
		for s := 0; s < NumSlices; s++ {
			if !missing.Has(s) {
				continue
			}
			src := -1
			bestLoad := inf
			for cand := 0; cand < gpu.ServerGPUs; cand++ {
				if cand == g || !current[cand].Has(s) {
					continue
				}
				if l := pairLoad[[2]int{cand, g}]; l < bestLoad {
					bestLoad, src = l, cand
				}
			}
			if src < 0 {
				panic(fmt.Sprintf("reshard: slice %d not present on any GPU", s))
			}
			pairLoad[[2]int{src, g}]++
			moves = append(moves, Move{Src: src, Dst: g, Slice: s})
		}
	}
	makespan := 0
	//dynamolint:order-independent max over values; comparison order cannot change the max
	for _, l := range pairLoad {
		if l > makespan {
			makespan = l
		}
	}
	return Plan{
		Target:      target,
		RoleGPU:     roleGPU,
		Moves:       moves,
		TimeUnits:   makespan,
		SlicesMoved: len(moves),
	}
}

// --- Table VI -------------------------------------------------------------------

// TableVIConfigs are the six source/destination configurations of the
// paper's overhead matrix, in presentation order.
var TableVIConfigs = []Config{
	{model.TP2},
	{model.TP2, model.TP2, model.TP2, model.TP2},
	{model.TP4},
	{model.TP2, model.TP4},
	{model.TP4, model.TP4},
	{model.TP8},
}

// OverheadTable derives the re-sharding makespan (in units of T) between
// every pair of Table VI configurations.
func OverheadTable() [][]int {
	out := make([][]int, len(TableVIConfigs))
	for i, src := range TableVIConfigs {
		out[i] = make([]int, len(TableVIConfigs))
		layout := CanonicalLayout(src)
		for j, dst := range TableVIConfigs {
			out[i][j] = PlanReshard(layout, dst).TimeUnits
		}
	}
	return out
}

// --- Transition impact ------------------------------------------------------------

// Impact describes what a transition costs beyond the transfer itself
// (§IV-C): engine re-synchronization downtime and, when GPU memory must
// hold old and new shards simultaneously, either a throughput reduction or
// a full stop.
type Impact struct {
	// TransferSeconds is the NVLink makespan.
	TransferSeconds float64
	// SyncSeconds is the engine re-synchronization time during which the
	// NEW instance cannot serve (old one keeps serving when possible).
	SyncSeconds float64
	// DowntimeSeconds is wall time with NO serving capacity from this
	// instance (only when old+new shards exceed GPU memory).
	DowntimeSeconds float64
	// ThroughputFactor scales the old instance's capacity during the
	// transition (growing per-GPU shards shrink the KV cache).
	ThroughputFactor float64
}

// EngineSyncSeconds is the vLLM-style engine re-initialization time after
// weights land (§IV-C: "a few 100s of milliseconds to a few seconds").
const EngineSyncSeconds = 1.5

// TransitionImpact models re-sharding one instance from one TP degree to
// another for the given model.
func TransitionImpact(m *model.Model, from, to model.TP, plan Plan) Impact {
	im := Impact{
		TransferSeconds:  plan.TransferSeconds(m),
		SyncSeconds:      EngineSyncSeconds,
		ThroughputFactor: 1,
	}
	if to < from {
		// Scaling down: some GPUs take on larger shards, shrinking KV
		// space; throughput drops in proportion to the lost capacity.
		oldShard := m.ShardBytes(from)
		newShard := m.ShardBytes(to)
		perGPU := 80e9 * 0.88
		free := perGPU - oldShard
		freeAfter := perGPU - newShard - oldShard // both resident during switch
		if freeAfter <= 0 {
			// Old and new shards cannot coexist: hard stop while the
			// new instance is built and synced.
			im.DowntimeSeconds = im.TransferSeconds + im.SyncSeconds
			im.ThroughputFactor = 0
		} else {
			im.ThroughputFactor = freeAfter / free
		}
	}
	return im
}
