package interp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactAtSamplePoints(t *testing.T) {
	tab := MustNew([]float64{0, 1, 2, 4}, []float64{10, 20, 15, 55})
	for i, x := range []float64{0, 1, 2, 4} {
		want := []float64{10, 20, 15, 55}[i]
		if got := tab.At(x); got != want {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLinearBetween(t *testing.T) {
	tab := MustNew([]float64{0, 10}, []float64{0, 100})
	if got := tab.At(2.5); got != 25 {
		t.Errorf("At(2.5) = %v, want 25", got)
	}
}

func TestExtrapolation(t *testing.T) {
	tab := MustNew([]float64{1, 2}, []float64{10, 20})
	if got := tab.At(3); got != 30 {
		t.Errorf("right extrapolation = %v, want 30", got)
	}
	if got := tab.At(0); got != 0 {
		t.Errorf("left extrapolation = %v, want 0", got)
	}
}

func TestUnsortedInput(t *testing.T) {
	tab := MustNew([]float64{2, 0, 1}, []float64{20, 0, 10})
	if got := tab.At(0.5); got != 5 {
		t.Errorf("At(0.5) = %v, want 5", got)
	}
	if tab.Min() != 0 || tab.Max() != 2 {
		t.Errorf("bounds = [%v,%v], want [0,2]", tab.Min(), tab.Max())
	}
}

func TestErrors(t *testing.T) {
	if _, err := New([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := New([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("duplicate x accepted")
	}
}

func TestSinglePoint(t *testing.T) {
	tab := MustNew([]float64{5}, []float64{42})
	for _, x := range []float64{-10, 5, 99} {
		if got := tab.At(x); got != 42 {
			t.Errorf("At(%v) = %v, want 42", x, got)
		}
	}
}

// Property: interpolation of a linear function reproduces it exactly
// (within float tolerance), including extrapolation.
func TestReproducesLinearFunctions(t *testing.T) {
	f := func(a, b float64, probe uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		xs := []float64{0, 1, 3, 7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		tab := MustNew(xs, ys)
		x := float64(probe) / 16.0
		want := a*x + b
		got := tab.At(x)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: within the sampled domain, the result is bounded by the
// neighbouring sample values.
func TestBoundedBySegmentEndpoints(t *testing.T) {
	tab := MustNew([]float64{0, 1, 2, 3}, []float64{5, -2, 8, 8})
	f := func(u uint16) bool {
		x := float64(u) / float64(1<<16) * 3
		y := tab.At(x)
		return y >= -2-1e-9 && y <= 8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvertIncreasing(t *testing.T) {
	tab := MustNew([]float64{0, 10, 20}, []float64{0, 100, 400})
	cases := []struct{ y, want float64 }{
		{-5, 0}, // below range clamps to Min
		{0, 0},
		{50, 5},
		{100, 10},
		{250, 15},
		{400, 20},
		{900, 20}, // above range clamps to Max
	}
	for _, c := range cases {
		if got := tab.InvertIncreasing(c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("InvertIncreasing(%v) = %v, want %v", c.y, got, c.want)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	tab := MustNew([]float64{0, 5, 9, 14}, []float64{1, 3, 10, 22})
	f := func(u uint16) bool {
		y := 1 + float64(u)/float64(1<<16)*21
		x := tab.InvertIncreasing(y)
		return math.Abs(tab.At(x)-y) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointsCopy(t *testing.T) {
	tab := MustNew([]float64{1, 2}, []float64{3, 4})
	xs, ys := tab.Points()
	xs[0], ys[0] = 99, 99
	if tab.At(1) != 3 {
		t.Error("Points() exposed internal state")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}
