// Package interp provides 1-D piecewise-linear interpolation, the Go
// equivalent of SciPy's interp1d that the paper's implementation uses to
// model energy and performance between profiled load points (§IV-E).
package interp

import (
	"errors"
	"fmt"
	"sort"
)

// Table is an immutable piecewise-linear function built from (x, y) samples.
type Table struct {
	xs, ys []float64
}

// ErrTooFewPoints is returned when fewer than one sample is supplied.
var ErrTooFewPoints = errors.New("interp: need at least one sample point")

// New builds a table from sample points. The xs need not be sorted but must
// be distinct; the pairs are sorted by x internally.
func New(xs, ys []float64) (*Table, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("interp: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < 1 {
		return nil, ErrTooFewPoints
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	t := &Table{xs: make([]float64, len(pts)), ys: make([]float64, len(pts))}
	for i, p := range pts {
		if i > 0 && p.x == pts[i-1].x {
			return nil, fmt.Errorf("interp: duplicate x value %v", p.x)
		}
		t.xs[i], t.ys[i] = p.x, p.y
	}
	return t, nil
}

// MustNew is New but panics on error; for tables built from literals.
func MustNew(xs, ys []float64) *Table {
	t, err := New(xs, ys)
	if err != nil {
		panic(err)
	}
	return t
}

// At evaluates the function at x. Outside the sampled range the function
// extrapolates linearly from the outermost segment (matching interp1d with
// fill_value="extrapolate", which the profile consumers rely on to reason
// about loads slightly beyond the profiled maximum).
func (t *Table) At(x float64) float64 {
	n := len(t.xs)
	if n == 1 {
		return t.ys[0]
	}
	// Find the segment: the largest i with xs[i] <= x, clamped to [0, n-2].
	i := sort.SearchFloat64s(t.xs, x)
	switch {
	case i <= 0:
		i = 0
	case i >= n:
		i = n - 2
	default:
		i--
	}
	if i > n-2 {
		i = n - 2
	}
	x0, x1 := t.xs[i], t.xs[i+1]
	y0, y1 := t.ys[i], t.ys[i+1]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Min and Max return the sampled domain bounds.
func (t *Table) Min() float64 { return t.xs[0] }

// Max returns the largest sampled x.
func (t *Table) Max() float64 { return t.xs[len(t.xs)-1] }

// Len returns the number of sample points.
func (t *Table) Len() int { return len(t.xs) }

// Points returns copies of the sample arrays (for serialization).
func (t *Table) Points() (xs, ys []float64) {
	return append([]float64(nil), t.xs...), append([]float64(nil), t.ys...)
}

// InvertIncreasing solves t.At(x) = y for x, assuming the table is
// non-decreasing. It returns the smallest x in [Min, Max] whose value
// reaches y, or Max if y exceeds the range. Used to answer "what load can
// this configuration sustain within the SLO".
func (t *Table) InvertIncreasing(y float64) float64 {
	n := len(t.xs)
	if n == 1 || y <= t.ys[0] {
		return t.xs[0]
	}
	for i := 1; i < n; i++ {
		if t.ys[i] >= y {
			y0, y1 := t.ys[i-1], t.ys[i]
			if y1 == y0 {
				return t.xs[i]
			}
			frac := (y - y0) / (y1 - y0)
			return t.xs[i-1] + frac*(t.xs[i]-t.xs[i-1])
		}
	}
	return t.xs[n-1]
}
