package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockOrdering(t *testing.T) {
	c := New()
	var got []int
	c.At(5, func() { got = append(got, 2) })
	c.At(1, func() { got = append(got, 0) })
	c.At(3, func() { got = append(got, 1) })
	c.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 5 {
		t.Errorf("Now() = %v, want 5", c.Now())
	}
}

func TestClockFIFOAmongEqualTimes(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(7, func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestClockAfterAndNesting(t *testing.T) {
	c := New()
	var fired []Time
	c.After(2, func() {
		fired = append(fired, c.Now())
		c.After(3, func() { fired = append(fired, c.Now()) })
	})
	c.Run()
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired = %v, want [2 5]", fired)
	}
}

func TestClockSchedulePastPanics(t *testing.T) {
	c := New()
	c.At(10, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.At(5, func() {})
}

func TestClockCancel(t *testing.T) {
	c := New()
	ran := false
	id := c.At(1, func() { ran = true })
	c.Cancel(id)
	c.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestClockEvery(t *testing.T) {
	c := New()
	n := 0
	var cancel func()
	cancel = c.Every(10, func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	c.RunUntil(100)
	if n != 3 {
		t.Fatalf("Every fired %d times, want 3", n)
	}
	if c.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", c.Now())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	c := New()
	c.RunUntil(42)
	if c.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", c.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	cStream := NewRNG(124)
	same := 0
	a2 := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == cStream.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values of 1000", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(8)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Norm var = %v, want ~4", variance)
	}
}

func TestRNGPickProportions(t *testing.T) {
	r := NewRNG(9)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick[%d] = %v, want ~%v", i, got, want)
		}
	}
}

func TestRNGPickZeroTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-weight Pick")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 1; i < 50; i++ {
			v := r.Intn(i)
			if v < 0 || v >= i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(42)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d identical of 1000", same)
	}
}

func TestStepsCount(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		c.At(Time(i), func() {})
	}
	c.Run()
	if c.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", c.Steps())
	}
}
