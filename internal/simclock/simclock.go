//dynamolint:wallclock Pacer is the one sanctioned bridge from wall-clock to virtual time

// Package simclock provides a discrete-event simulation kernel: a virtual
// clock, a priority event queue, and deterministic random-number streams.
//
// All DynamoLLM experiments run against simulated time so that week-long
// cluster traces execute in seconds of wall time. The kernel is intentionally
// small: events are closures scheduled at absolute virtual times, executed in
// time order (FIFO among equal times), and may schedule further events.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. A float64 keeps the arithmetic simple and is precise enough for
// week-long horizons at sub-millisecond resolution.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Common durations, in seconds.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
	Day         Duration = 24 * Hour
	Week        Duration = 7 * Day
)

// Std converts a virtual duration to a time.Duration for display purposes.
func Std(d Duration) time.Duration { return time.Duration(d * float64(time.Second)) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal times
	fn   func()
	dead bool
}

// EventID identifies a scheduled event so that it can be cancelled.
type EventID struct{ ev *event }

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Clock is a discrete-event simulation clock. The zero value is not usable;
// construct with New.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// New returns a clock positioned at virtual time zero with an empty agenda.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of scheduled (non-cancelled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Steps reports the number of events executed so far.
func (c *Clock) Steps() uint64 { return c.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a discrete-event program.
func (c *Clock) At(t Time, fn func()) EventID {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", t, c.now))
	}
	c.seq++
	ev := &event{at: t, seq: c.seq, fn: fn}
	heap.Push(&c.events, ev)
	return EventID{ev: ev}
}

// After schedules fn to run d seconds from now.
func (c *Clock) After(d Duration, fn func()) EventID {
	return c.At(c.now+Time(d), fn)
}

// Every schedules fn to run now+d, then repeatedly every d seconds, until the
// returned cancel function is called. fn observes the clock at each firing.
func (c *Clock) Every(d Duration, fn func()) (cancel func()) {
	if d <= 0 {
		panic("simclock: Every with non-positive period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			c.After(d, tick)
		}
	}
	c.After(d, tick)
	return func() { stopped = true }
}

// Cancel removes a scheduled event. Cancelling an already-executed or
// already-cancelled event is a no-op.
func (c *Clock) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Step executes the next event, advancing the clock. It reports false when
// the agenda is empty.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.dead {
			continue
		}
		c.now = ev.at
		c.steps++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the agenda is exhausted or the next event
// lies strictly beyond t; the clock finishes positioned at t (or at the last
// event time if that is later than t, which cannot happen by construction).
func (c *Clock) RunUntil(t Time) {
	for {
		ev := c.peek()
		if ev == nil || ev.at > t {
			break
		}
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// Run executes events until the agenda is exhausted.
func (c *Clock) Run() {
	for c.Step() {
	}
}

func (c *Clock) peek() *event {
	for len(c.events) > 0 {
		ev := c.events[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&c.events)
	}
	return nil
}

// --- Wall-clock pacing ------------------------------------------------------

// Pacer maps monotonic wall-clock time onto virtual time at a fixed speed
// (virtual seconds per wall second), anchored at the instant it was
// created. The live serving session uses one to decide how far the
// simulation may advance: virtual time is derived from the wall clock on
// every query, never accumulated, so it cannot drift or go stale between
// queries.
type Pacer struct {
	start  time.Time
	speed  float64
	offset Time
	now    func() time.Time
}

// NewPacer anchors a pacer at now() running at the given speed. A nil now
// uses time.Now; tests inject a fake clock. Non-positive speeds default
// to 1.
func NewPacer(speed float64, now func() time.Time) *Pacer {
	if now == nil {
		now = time.Now
	}
	if speed <= 0 {
		speed = 1
	}
	return &Pacer{start: now(), speed: speed, now: now}
}

// NewPacerAt anchors a pacer whose virtual clock starts at offset instead
// of zero: Now() reads offset at the anchoring instant and advances at
// speed from there. A restored serving session uses this to resume
// virtual time where the checkpoint left it.
func NewPacerAt(speed float64, offset Time, now func() time.Time) *Pacer {
	p := NewPacer(speed, now)
	p.offset = offset
	return p
}

// Now returns the current virtual time: elapsed wall time times speed,
// plus any resume offset.
func (p *Pacer) Now() Time {
	return p.offset + Time(p.now().Sub(p.start).Seconds()*p.speed)
}

// Speed returns the pacer's virtual-seconds-per-wall-second factor.
func (p *Pacer) Speed() float64 { return p.speed }

// Wall converts a virtual duration to the wall duration it spans at the
// pacer's speed.
func (p *Pacer) Wall(d Duration) time.Duration {
	return time.Duration(d / p.speed * float64(time.Second))
}

// --- Deterministic random streams -----------------------------------------

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+ variant, splittable by seed) used for reproducible workload
// generation. It deliberately avoids math/rand global state so concurrent
// experiments never interfere.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	// SplitMix64 to spread the seed bits.
	r := &RNG{}
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.s0 = z ^ (z >> 31)
	z = r.s0 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.s1 = z ^ (z >> 31)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Split derives an independent stream from this one, keyed by label.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). Used for Poisson inter-arrival times.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simclock: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Norm returns a normally distributed value with the given mean and stddev
// (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNorm returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. All weights must be non-negative with a positive sum.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simclock: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("simclock: weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
