package model

import "testing"

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"falcon-180b", "llama2-13b", "llama2-70b",
		"llama3-70b", "mixtral-8x22b", "mixtral-8x7b",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	m, err := Lookup("llama2-70b")
	if err != nil {
		t.Fatal(err)
	}
	if m != Llama2_70B {
		t.Fatal("Lookup returned wrong model")
	}
	if _, err := Lookup("gpt-5"); err == nil {
		t.Fatal("Lookup of unknown model succeeded")
	}
}

// TestMinTP checks the feasibility boundaries that drive Table III's empty
// cells: small models fit anywhere, 70B-class models need at least 2 GPUs,
// and Mixtral-8x22B / Falcon-180B need more.
func TestMinTP(t *testing.T) {
	cases := []struct {
		m    *Model
		want TP
	}{
		{Llama2_13B, TP1},
		{Mixtral8x7B, TP2},
		{Llama2_70B, TP2},
		{Llama3_70B, TP2},
		{Mixtral22B, TP8},
		{Falcon180B, TP8},
	}
	for _, c := range cases {
		if c.m.MinTP != c.want {
			t.Errorf("%s MinTP = %v, want %v", c.m.Name, c.m.MinTP, c.want)
		}
	}
}

func TestMixtral22BNeedsTP8(t *testing.T) {
	// 141B params at FP16 is 282 GB; four 80 GB GPUs give 340 GB raw but
	// only 70.4 GB usable per GPU with headroom — the 70.5 GB/GPU share exceeds
	// it, so TP4 must be infeasible, while Llama2-70B (70.0) just fits at TP2.
	if Mixtral22B.FeasibleTP(TP4) {
		t.Error("mixtral-8x22b should not fit at TP4 with usable-memory headroom")
	}
	if !Mixtral22B.FeasibleTP(TP8) {
		t.Error("mixtral-8x22b should fit at TP8")
	}
}

func TestFeasibleTPMonotonic(t *testing.T) {
	// If a model fits at TPi it must fit at every larger degree.
	for _, m := range All() {
		fits := false
		for _, tp := range AllTP {
			ok := m.FeasibleTP(tp)
			if fits && !ok {
				t.Errorf("%s: feasibility not monotonic at %v", m.Name, tp)
			}
			fits = fits || ok
		}
		if !fits {
			t.Errorf("%s fits nowhere", m.Name)
		}
	}
}

func TestKVCapacityPositiveAndIncreasing(t *testing.T) {
	for _, m := range All() {
		prev := -1.0
		for _, tp := range AllTP {
			if !m.FeasibleTP(tp) {
				continue
			}
			got := m.KVCapacityTokens(tp)
			if got <= 0 {
				t.Errorf("%s@%v: KV capacity %v, want > 0", m.Name, tp, got)
			}
			if got <= prev {
				t.Errorf("%s: KV capacity not increasing with TP", m.Name)
			}
			prev = got
		}
	}
}

func TestShardBytesHalves(t *testing.T) {
	for _, m := range All() {
		if got, want := m.ShardBytes(TP8), m.ShardBytes(TP4)/2; got != want {
			t.Errorf("%s: ShardBytes(TP8) = %v, want %v", m.Name, got, want)
		}
	}
}

func TestSparsity(t *testing.T) {
	if Llama2_70B.Sparsity() != 1.0 {
		t.Error("dense model sparsity != 1")
	}
	if s := Mixtral8x7B.Sparsity(); s <= 0 || s >= 1 {
		t.Errorf("mixtral sparsity = %v, want in (0,1)", s)
	}
}

func TestKVBytesPerTokenGQA(t *testing.T) {
	// Llama2-70B uses GQA with 8 KV heads: 2*80*8*128*2 bytes = 327680.
	if got := Llama2_70B.KVBytesPerToken; got != 327680 {
		t.Errorf("llama2-70b KV bytes/token = %v, want 327680", got)
	}
}
