// Package model defines the catalog of LLM architectures used throughout the
// DynamoLLM reproduction: the models the paper characterizes in Table III
// (Llama2-13B/70B, Llama3-70B, Mixtral-8x7B/8x22B, Falcon-180B) plus the
// parameters the performance and re-sharding substrates need — weight
// footprint, layer counts, per-token compute/memory demand, and the minimum
// tensor parallelism that fits the weights in GPU memory.
package model

import (
	"fmt"
	"sort"
)

// TP is a tensor-parallelism degree: the number of GPUs a single model
// instance is sharded across. The paper considers TP2, TP4, and TP8 on a
// single DGX server (§II).
type TP int

// Supported tensor parallelism degrees.
const (
	TP1 TP = 1
	TP2 TP = 2
	TP4 TP = 4
	TP8 TP = 8
)

// AllTP lists the parallelism degrees the controllers consider, in increasing
// order. TP1 exists in the catalog (small models fit on one GPU) but the
// paper's knob space is {2, 4, 8}; the solver uses TPChoices.
var AllTP = []TP{TP1, TP2, TP4, TP8}

// TPChoices is the knob space used by the paper's controllers.
var TPChoices = []TP{TP2, TP4, TP8}

func (t TP) String() string { return fmt.Sprintf("TP%d", int(t)) }

// GPUs returns the GPU count as an int.
func (t TP) GPUs() int { return int(t) }

// Model describes one LLM architecture.
type Model struct {
	// Name is the catalog key, e.g. "llama2-70b".
	Name string
	// Params is the total parameter count.
	Params float64
	// ActiveParams is the parameter count touched per token. For dense
	// models it equals Params; MoE models activate a subset of experts.
	ActiveParams float64
	// Layers is the number of transformer layers (pipeline/shard unit).
	Layers int
	// HiddenDim is the model width; attention and MLP compute scale with it.
	HiddenDim int
	// WeightBytes is the on-GPU weight footprint in bytes at FP16.
	WeightBytes float64
	// KVBytesPerToken is the KV-cache footprint of one token in bytes
	// across all layers at FP16.
	KVBytesPerToken float64
	// MinTP is the smallest tensor parallelism whose per-GPU share of the
	// weights (plus working space) fits in one H100's 80 GB.
	MinTP TP
}

const (
	bytesPerParam = 2.0 // FP16
	// h100MemBytes is the HBM per GPU (80 GB); we reserve ~12% for
	// activations, CUDA context, and fragmentation, as serving stacks do.
	// 0.88 reproduces the paper's feasibility boundary: Llama2-70B runs at
	// TP2 (70.0 GB/GPU, with a very small KV budget), while Mixtral-8x22B
	// does not fit at TP4 (70.5 GB/GPU) and needs TP8 (Table III).
	h100MemBytes   = 80e9
	usableFraction = 0.88
)

// catalog holds the known models, keyed by Name.
var catalog = map[string]*Model{}

// define registers a model, deriving footprint and MinTP from the raw
// architecture numbers.
func define(name string, params, activeParams float64, layers, hiddenDim, kvHeads, headDim int) *Model {
	m := &Model{
		Name:         name,
		Params:       params,
		ActiveParams: activeParams,
		Layers:       layers,
		HiddenDim:    hiddenDim,
		WeightBytes:  params * bytesPerParam,
	}
	// KV cache: 2 (K and V) × layers × kvHeads × headDim × bytes.
	m.KVBytesPerToken = 2 * float64(layers) * float64(kvHeads) * float64(headDim) * bytesPerParam
	for _, tp := range AllTP {
		perGPU := m.WeightBytes / float64(tp.GPUs())
		if perGPU <= h100MemBytes*usableFraction {
			m.MinTP = tp
			break
		}
	}
	if m.MinTP == 0 {
		panic("model: " + name + " does not fit on 8 GPUs")
	}
	catalog[name] = m
	return m
}

// The catalog. Architecture numbers follow the public model cards; MoE
// models list total and active (top-2 experts) parameters.
var (
	Llama2_13B  = define("llama2-13b", 13e9, 13e9, 40, 5120, 40, 128)
	Llama2_70B  = define("llama2-70b", 68.5e9, 68.5e9, 80, 8192, 8, 128)
	Llama3_70B  = define("llama3-70b", 70e9, 70e9, 80, 8192, 8, 128)
	Mixtral8x7B = define("mixtral-8x7b", 47e9, 13e9, 32, 4096, 8, 128)
	Mixtral22B  = define("mixtral-8x22b", 141e9, 39e9, 56, 6144, 8, 128)
	Falcon180B  = define("falcon-180b", 180e9, 180e9, 80, 14848, 8, 64)
)

// Lookup returns the model with the given name, or an error listing the
// known names.
func Lookup(name string) (*Model, error) {
	if m, ok := catalog[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("model: unknown model %q (known: %v)", name, Names())
}

// Names returns the sorted catalog keys.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the catalog models sorted by name.
func All() []*Model {
	models := make([]*Model, 0, len(catalog))
	for _, name := range Names() {
		models = append(models, catalog[name])
	}
	return models
}

// FeasibleTP reports whether the model can run at the given parallelism:
// the per-GPU weight share must fit, and the degree must be at least MinTP.
func (m *Model) FeasibleTP(tp TP) bool {
	return tp >= m.MinTP
}

// ShardBytes returns the per-GPU weight footprint at the given parallelism.
func (m *Model) ShardBytes(tp TP) float64 {
	return m.WeightBytes / float64(tp.GPUs())
}

// KVCapacityTokens returns how many KV-cache tokens fit across the instance
// at the given parallelism, after weights are resident. This bounds the
// number of in-flight tokens the engine can batch.
func (m *Model) KVCapacityTokens(tp TP) float64 {
	free := float64(tp.GPUs())*h100MemBytes*usableFraction - m.WeightBytes
	if free < 0 {
		return 0
	}
	return free / m.KVBytesPerToken
}

// Sparsity returns ActiveParams/Params, the fraction of weights touched per
// token (1.0 for dense models).
func (m *Model) Sparsity() float64 { return m.ActiveParams / m.Params }

func (m *Model) String() string { return m.Name }
