package predict

import (
	"math"
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

func TestPerfectPredictor(t *testing.T) {
	p := NewLengthPredictor(1.0, 1)
	for _, out := range []int{5, 99, 100, 349, 350, 2000} {
		if got := p.PredictBucket(out); got != workload.BucketOutput(out) {
			t.Errorf("perfect predictor wrong for %d: %v", out, got)
		}
	}
	if p.ObservedAccuracy() != 1 {
		t.Errorf("observed accuracy = %v", p.ObservedAccuracy())
	}
}

func TestAccuracyRealized(t *testing.T) {
	for _, acc := range []float64{0.9, 0.8, 0.6, 0.5} {
		p := NewLengthPredictor(acc, 42)
		r := simclock.NewRNG(7)
		const n = 20000
		correct := 0
		for i := 0; i < n; i++ {
			out := r.Intn(1000) + 1
			if p.PredictBucket(out) == workload.BucketOutput(out) {
				correct++
			}
		}
		got := float64(correct) / n
		if math.Abs(got-acc) > 0.02 {
			t.Errorf("configured accuracy %v, realized %v", acc, got)
		}
	}
}

func TestMispredictionsGoToAdjacentBuckets(t *testing.T) {
	p := NewLengthPredictor(0.0001, 3) // almost always wrong
	sawMedium := false
	for i := 0; i < 200; i++ {
		got := p.PredictBucket(10) // truth: Short
		if got == workload.Long {
			t.Fatal("short output mispredicted as long (non-adjacent)")
		}
		if got == workload.Medium {
			sawMedium = true
		}
		if got2 := p.PredictBucket(5000); got2 == workload.Short {
			t.Fatal("long output mispredicted as short (non-adjacent)")
		}
	}
	if !sawMedium {
		t.Error("mispredictions never moved bucket")
	}
}

func TestPredictClassUsesTrueInput(t *testing.T) {
	p := NewLengthPredictor(1.0, 1)
	cls := p.PredictClass(512, 700)
	if cls != workload.ML {
		t.Errorf("PredictClass(512,700) = %v, want ML", cls)
	}
}

func TestAccuracyClamping(t *testing.T) {
	if p := NewLengthPredictor(2.0, 1); p.Accuracy != 1 {
		t.Errorf("accuracy not clamped: %v", p.Accuracy)
	}
	if p := NewLengthPredictor(-1, 1); p.Accuracy <= 0 || p.Accuracy > 1 {
		t.Errorf("non-positive accuracy not defaulted: %v", p.Accuracy)
	}
}

func TestLoadPredictorLearnsWeeklyPattern(t *testing.T) {
	p := NewLoadPredictor(1800)
	// Deterministic weekly pattern: high at hour 14, low at hour 3.
	rate := func(tm simclock.Time, c workload.Class) float64 {
		if c != workload.MM {
			return 0
		}
		h := math.Mod(float64(tm)/3600, 24)
		return 10 + 50*math.Exp(-(h-14)*(h-14)/8)
	}
	p.Warm(rate)
	// Prediction at hour 14 next week should be near 60 x headroom.
	at := simclock.Time((7*24 + 14) * 3600)
	got := p.PredictRate(at, workload.MM)
	if math.Abs(got-60) > 6 {
		t.Errorf("predicted rate at peak = %v, want ~60", got)
	}
	night := p.PredictRate(simclock.Time((7*24+3)*3600), workload.MM)
	if night > 20 {
		t.Errorf("predicted night rate = %v, want ~10", night)
	}
}

func TestPredictPeakTakesWindowMax(t *testing.T) {
	p := NewLoadPredictor(1800)
	p.Observe(0, workload.SS, 5)
	p.Observe(1800, workload.SS, 50)
	p.Observe(3600, workload.SS, 8)
	peak := p.PredictPeak(0, 3*1800, workload.SS)
	want := 50 * p.Headroom
	if math.Abs(peak-want) > 1e-9 {
		t.Errorf("peak = %v, want %v", peak, want)
	}
}

func TestPredictPeakColdStartFallsBack(t *testing.T) {
	p := NewLoadPredictor(1800)
	p.Observe(0, workload.LL, 4)
	// Ask about a window far from slot 0 with no template data.
	peak := p.PredictPeak(simclock.Time(3*24*3600), 1800, workload.LL)
	if peak < 4 {
		t.Errorf("cold-start peak = %v, want >= last observation", peak)
	}
}

func TestObserveSmoothsAcrossWeeks(t *testing.T) {
	p := NewLoadPredictor(1800)
	p.Observe(0, workload.MM, 100)
	p.Observe(simclock.Time(7*24*3600), workload.MM, 0) // same slot, week later
	got := p.PredictRate(0, workload.MM)
	if got != 50 {
		t.Errorf("smoothed rate = %v, want 50 (alpha=0.5)", got)
	}
}

func TestSlotWrapsNegativeAndOverflow(t *testing.T) {
	p := NewLoadPredictor(1800)
	p.Observe(simclock.Time(-10), workload.SS, 1) // must not panic
	p.Observe(simclock.Time(100*24*3600), workload.SS, 1)
}

func TestDefaultSlotWidth(t *testing.T) {
	p := NewLoadPredictor(0)
	if p.SlotWidth != 1800 {
		t.Errorf("default slot width = %v", p.SlotWidth)
	}
}
