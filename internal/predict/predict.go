// Package predict implements DynamoLLM's two predictors:
//
//   - an output-length classifier standing in for the BERT proxy model of
//     §IV-D/[55]: it classifies an incoming prompt's output as short,
//     medium, or long, with configurable accuracy (Fig. 11 sweeps it from
//     100% down to 50%);
//   - a template-based load predictor (§IV-B/[62]) that forecasts each
//     request type's load for the next scheduling epoch from historical
//     weekly patterns.
package predict

import (
	"math"

	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// LengthPredictor classifies the output-length bucket of a request. The
// simulator knows the true output length; the predictor perturbs it with a
// configurable error rate, modeling proxy-model misclassification. A real
// deployment would swap this for an actual proxy-model client.
type LengthPredictor struct {
	// Accuracy is the probability the true bucket is returned (0..1].
	Accuracy float64
	rng      *simclock.RNG
	// counts tracks prediction outcomes for observability.
	correct, wrong int
}

// NewLengthPredictor returns a predictor with the given accuracy; accuracy
// is clamped into (0, 1]. Errors go to adjacent buckets (a long output is
// mistaken for medium far more often than for short), matching how
// regression-style proxies fail.
func NewLengthPredictor(accuracy float64, seed uint64) *LengthPredictor {
	if accuracy <= 0 {
		accuracy = 1.0 / 3
	}
	if accuracy > 1 {
		accuracy = 1
	}
	return &LengthPredictor{Accuracy: accuracy, rng: simclock.NewRNG(seed)}
}

// PredictBucket returns the predicted output bucket given the true output
// token count.
func (p *LengthPredictor) PredictBucket(trueOutput int) workload.LengthBucket {
	truth := workload.BucketOutput(trueOutput)
	if p.rng.Float64() < p.Accuracy {
		p.correct++
		return truth
	}
	p.wrong++
	// Misprediction: move to an adjacent bucket; at the extremes there is
	// only one neighbour.
	switch truth {
	case workload.Short:
		return workload.Medium
	case workload.Long:
		return workload.Medium
	default:
		if p.rng.Float64() < 0.5 {
			return workload.Short
		}
		return workload.Long
	}
}

// PredictClass combines the known input length with the predicted output
// bucket — exactly the router's information at arrival time (§IV-D).
func (p *LengthPredictor) PredictClass(inputTokens, trueOutput int) workload.Class {
	return workload.MakeClass(workload.BucketInput(inputTokens), p.PredictBucket(trueOutput))
}

// Clone returns an independent copy of the predictor, including the exact
// RNG position, so the clone's prediction stream continues bit-identically
// to what the original would have produced.
func (p *LengthPredictor) Clone() *LengthPredictor {
	c := *p
	rng := *p.rng
	c.rng = &rng
	return &c
}

// ObservedAccuracy reports the realized accuracy so far (1 if no samples).
func (p *LengthPredictor) ObservedAccuracy() float64 {
	n := p.correct + p.wrong
	if n == 0 {
		return 1
	}
	return float64(p.correct) / float64(n)
}

// --- Load prediction ----------------------------------------------------------

// LoadPredictor forecasts per-class request rates using weekly templates:
// one slot per (day-of-week granularity is folded into the weekly horizon)
// time-of-week bucket per class, exponentially averaged across weeks, plus
// a short-term last-value correction. This is the "lightweight load
// template" approach the paper adopts from SmartOClock [62].
type LoadPredictor struct {
	// SlotWidth is the template resolution in seconds.
	SlotWidth float64
	// Headroom multiplies forecasts to bias toward over-provisioning
	// (under-provisioning risks SLOs; the paper provisions for peaks).
	Headroom float64
	// alpha is the exponential averaging weight for template updates.
	alpha float64

	slots     int
	templates [workload.NumClasses][]float64
	seen      [workload.NumClasses][]bool
	// last observed rate per class, for cold-start fallback.
	last [workload.NumClasses]float64
}

// NewLoadPredictor returns a predictor with the given template resolution.
func NewLoadPredictor(slotWidth float64) *LoadPredictor {
	if slotWidth <= 0 {
		slotWidth = 1800
	}
	slots := int(math.Ceil(7 * 24 * 3600 / slotWidth))
	p := &LoadPredictor{
		SlotWidth: slotWidth,
		Headroom:  1.15,
		alpha:     0.5,
		slots:     slots,
	}
	for c := range p.templates {
		p.templates[c] = make([]float64, slots)
		p.seen[c] = make([]bool, slots)
	}
	return p
}

func (p *LoadPredictor) slot(t simclock.Time) int {
	week := 7 * 24 * 3600.0
	pos := math.Mod(float64(t), week)
	if pos < 0 {
		pos += week
	}
	s := int(pos / p.SlotWidth)
	if s >= p.slots {
		s = p.slots - 1
	}
	return s
}

// Observe records that class c ran at `rate` req/s around time t.
func (p *LoadPredictor) Observe(t simclock.Time, c workload.Class, rate float64) {
	s := p.slot(t)
	if p.seen[c][s] {
		p.templates[c][s] = p.alpha*rate + (1-p.alpha)*p.templates[c][s]
	} else {
		p.templates[c][s] = rate
		p.seen[c][s] = true
	}
	p.last[c] = rate
}

// PredictPeak forecasts the PEAK rate of class c over [t, t+horizon): the
// max of the template slots the window covers (with headroom), falling
// back to the last observation when the template is cold.
func (p *LoadPredictor) PredictPeak(t simclock.Time, horizon float64, c workload.Class) float64 {
	peak := 0.0
	any := false
	for off := 0.0; off < horizon; off += p.SlotWidth {
		s := p.slot(t + simclock.Time(off))
		if p.seen[c][s] {
			any = true
			if p.templates[c][s] > peak {
				peak = p.templates[c][s]
			}
		}
	}
	if !any {
		// Cold start: assume the last rate persists, with extra margin
		// because we know nothing about the window.
		return p.last[c] * p.Headroom * 1.3
	}
	return peak * p.Headroom
}

// PredictRate forecasts the average rate at time t for class c.
func (p *LoadPredictor) PredictRate(t simclock.Time, c workload.Class) float64 {
	s := p.slot(t)
	if p.seen[c][s] {
		return p.templates[c][s]
	}
	return p.last[c]
}

// Clone returns an independent copy of the predictor: the weekly template
// tables are deep-copied so later observations on either side never alias.
func (p *LoadPredictor) Clone() *LoadPredictor {
	c := *p
	for i := range p.templates {
		c.templates[i] = append([]float64(nil), p.templates[i]...)
		c.seen[i] = append([]bool(nil), p.seen[i]...)
	}
	return &c
}

// Warm pre-loads the template from a known rate function (e.g. a prior
// week's trace), stepping at the slot width. The paper's predictor is
// trained on historical data before deployment.
func (p *LoadPredictor) Warm(rate func(t simclock.Time, c workload.Class) float64) {
	for s := 0; s < p.slots; s++ {
		t := simclock.Time(float64(s) * p.SlotWidth)
		for _, c := range workload.AllClasses {
			p.Observe(t, c, rate(t, c))
		}
	}
}
