package scenario

// Library returns the built-in scenarios, freshly constructed on every
// call so callers may mutate their copies. Each exercises a different
// failure mode of an energy-aware reconfiguration policy: reacting to
// load it did not predict, losing capacity it planned around, and
// re-weighing its objective when the price of a joule moves.
func Library() []*Scenario {
	return []*Scenario{
		{
			Name:        "flashcrowd",
			Description: "45-minute 3.5x flash crowd on a Tuesday-morning ramp the load predictor never saw",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				{Kind: Spike, AtHours: 2, DurationHours: 0.75, RateMult: 3.5},
			},
		},
		{
			Name:        "blackfriday",
			Description: "day-long 2.2x demand surge with an evening electricity-price spike on top",
			Service:     "conversation",
			StartHours:  96, // Friday 00:00
			Days:        1,
			Events: []Event{
				{Kind: Spike, AtHours: 8, DurationHours: 10, RateMult: 2.2},
				{Kind: Price, AtHours: 17, DurationHours: 4, PriceMult: 2.5},
			},
		},
		{
			Name:        "gpu-failures",
			Description: "two cascading server outages (4 then 2 machines) with staggered repairs",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				{Kind: Outage, AtHours: 1.5, Servers: 4},
				{Kind: Recovery, AtHours: 3, Servers: 4},
				{Kind: Outage, AtHours: 4, Servers: 2},
				{Kind: Recovery, AtHours: 5, Servers: 2},
			},
		},
		{
			Name:        "price-surge",
			Description: "duck-curve day: midday solar glut at 0.4x prices, 4x evening-ramp surge",
			Service:     "conversation",
			StartHours:  24, // Tuesday 00:00
			Days:        1,
			Events: []Event{
				{Kind: Price, AtHours: 11, DurationHours: 3, PriceMult: 0.4},
				{Kind: Price, AtHours: 17, DurationHours: 4, PriceMult: 4},
			},
		},
		{
			Name:        "slo-crunch",
			Description: "contractual SLO tightening to half the latency budget for two peak hours",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				{Kind: SLO, AtHours: 2, DurationHours: 2, SLOFactor: 0.5},
			},
		},
		{
			Name:        "chaos-monkey",
			Description: "stochastic MTBF-driven crashes plus a correlated rack failure, a straggler window, and a frontend blip",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				// Random single-server crashes (mean one per 1.5 h, mean
				// repair 45 min) over the whole window; the concrete
				// instants come from the seeded FaultPlan expansion.
				{Kind: Faults, AtHours: 0, DurationHours: 6, MTBFHours: 1.5, RepairHours: 0.75},
				// A placement group loses two co-located instances at once.
				{Kind: Rack, AtHours: 2, Servers: 2, RepairHours: 1},
				// Two instances throttle to 60% clock for an hour.
				{Kind: Straggler, AtHours: 3, DurationHours: 1, Servers: 2, SlowFactor: 0.6},
				// A 15-minute frontend blip adds 2 s of submission delay.
				{Kind: Blip, AtHours: 4.5, DurationHours: 0.25, DelaySeconds: 2},
			},
		},
		{
			Name:        "cache-thrash",
			Description: "prefix-cache whiplash: two shared prompt templates, then a fan-out to 64 distinct templates that churns the cache",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				// Cache-friendly phase: 80% of requests share 2 templates.
				{Kind: CacheThrash, AtHours: 0, DurationHours: 3, Fraction: 0.8, Groups: 2},
				// Thrash phase: the same share spread over 64 templates.
				{Kind: CacheThrash, AtHours: 3, DurationHours: 3, Fraction: 0.8, Groups: 64},
			},
		},
		{
			Name:        "tier-thrash",
			Description: "KV spill-tier whiplash: load oscillates across the tier boundary — repeated short spikes force swap-outs, the lulls between them swap everything back",
			Service:     "conversation",
			StartHours:  32, // Tuesday 08:00
			Days:        0.25,
			Events: []Event{
				// A hot shared-prefix phase fills the pool fast so each spike
				// lands on an already-pressured cache.
				{Kind: CacheThrash, AtHours: 0, DurationHours: 6, Fraction: 0.8, Groups: 2},
				// Square-wave pressure: 30-minute 3x bursts separated by
				// one-hour lulls. Each burst pushes victims over the tier
				// boundary; each lull pulls them back, so a tiered KV config
				// pays the swap link in both directions every cycle.
				{Kind: Spike, AtHours: 0.5, DurationHours: 0.5, RateMult: 3},
				{Kind: Spike, AtHours: 2, DurationHours: 0.5, RateMult: 3},
				{Kind: Spike, AtHours: 3.5, DurationHours: 0.5, RateMult: 3},
				{Kind: Spike, AtHours: 5, DurationHours: 0.5, RateMult: 3},
			},
		},
		{
			Name:        "mixed-week",
			Description: "a week on the Coding service with everything at once: SLO crunch, flash crowd, agent-launch mix shift, rack outage, weekend price surge",
			Service:     "coding",
			Days:        7,
			Events: []Event{
				{Kind: SLO, AtHours: 33, DurationHours: 3, SLOFactor: 0.5},
				{Kind: Spike, AtHours: 62, DurationHours: 1, RateMult: 3},
				{Kind: MixShift, AtHours: 80, DurationHours: 6, Fraction: 0.6,
					ClassWeights: map[string]float64{"LS": 3, "LM": 2, "LL": 1}},
				{Kind: Outage, AtHours: 106, Servers: 3},
				{Kind: Recovery, AtHours: 109, Servers: 3},
				{Kind: Price, AtHours: 138, DurationHours: 4, PriceMult: 3},
			},
		},
	}
}

// Names lists the built-in scenario names in library order.
func Names() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return out
}

// ByName returns the built-in scenario with the given name, or false.
func ByName(name string) (*Scenario, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
