// Package scenario is the declarative scenario engine: it wraps a base
// synthetic trace with a timeline of injected cluster conditions — load
// spikes and flash crowds, request-mix shifts, instance/GPU outages and
// recoveries, electricity-price signals, and SLO-tightening windows — so
// the energy-aware controllers can be evaluated far from the smooth
// diurnal traces the paper uses.
//
// A Scenario is plain data, definable in Go or loadable from JSON
// (Load/LoadFile). Its events split into two groups at compile time:
// trace-level events (spike, mix-shift) become composable trace.Modifier
// transforms applied before the simulation starts, and runtime events
// (outage, recovery, rack, straggler, blip, price, slo) become a
// core.Timeline hook that fires inside the tick loop through the
// core.Controls facade without disturbing its zero-allocation steady
// state. The stochastic faults kind sits in between: ExpandFaults draws
// its MTBF-driven crashes and repairs into a concrete, seeded FaultPlan
// before the hook is compiled, so fault runs replay exactly.
//
// Library returns the named built-in scenarios (flashcrowd, blackfriday,
// gpu-failures, price-surge, slo-crunch, mixed-week, chaos-monkey) that
// the `dynamobench scenario` command and the expt scenario sweep drive.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"dynamollm/internal/core"
	"dynamollm/internal/order"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Kind names an event type; it is the JSON discriminator.
type Kind string

// The event kinds the engine understands.
const (
	// Spike multiplies the arrival rate inside the event window
	// (RateMult > 1 = flash crowd, < 1 = demand drop). Trace-level.
	Spike Kind = "spike"
	// MixShift re-draws a fraction of the window's requests from a
	// biased class distribution (ClassWeights/Fraction). Trace-level.
	MixShift Kind = "mix-shift"
	// Outage abruptly fails Servers 8-GPU servers at the event time.
	Outage Kind = "outage"
	// Recovery restores Servers previously failed servers (they pay the
	// usual provisioning latency before serving again).
	Recovery Kind = "recovery"
	// Price sets the electricity-price multiplier to PriceMult for the
	// event window (1 after the window ends).
	Price Kind = "price"
	// SLO scales request SLOs by SLOFactor for the event window
	// (values below 1 tighten).
	SLO Kind = "slo"

	// Faults is the stochastic fault injector: over the event window,
	// instance crashes arrive as a Poisson process with mean time between
	// failures MTBFHours; each crash fails Servers servers (default 1)
	// and schedules its recovery an Exp(RepairHours)-distributed delay
	// later. ExpandFaults draws the concrete crash/repair instants from a
	// seed, so a FaultPlan is reproducible and independent of simulation
	// parallelism.
	Faults Kind = "faults"
	// Rack is a correlated failure: Servers co-located instances (one
	// placement group, all serving the same request type) die at the
	// event time. RepairHours > 0 schedules the matching recovery.
	Rack Kind = "rack"
	// Straggler degrades Servers instances to SlowFactor of their
	// commanded clock for the event window, then repairs them. The
	// controllers never see the fault directly — only its symptoms.
	Straggler Kind = "straggler"
	// Blip adds DelaySeconds of frontend submission latency for the
	// event window — a transient network or gateway slowdown between the
	// frontend and the instances.
	Blip Kind = "blip"

	// CacheThrash tags a Fraction of the window's requests with shared
	// prompt groups (Groups distinct ones): few groups concentrate reuse
	// the engines' prefix caches exploit, many groups cycle distinct
	// prefixes through the cache and thrash it. Trace-level.
	CacheThrash Kind = "cache-thrash"
)

// Event is one injected condition on the scenario timeline. Times are in
// hours from the start of the scenario's trace window, the way an
// operator writes an incident timeline. Only the fields relevant to the
// Kind are consulted; Validate rejects events whose required fields are
// missing or out of range.
type Event struct {
	// Kind selects the event type.
	Kind Kind `json:"kind"`
	// AtHours is when the event starts, in hours from trace start.
	AtHours float64 `json:"at_hours"`
	// DurationHours bounds windowed events (spike, mix-shift, price,
	// slo); zero-duration windowed events are rejected.
	DurationHours float64 `json:"duration_hours,omitempty"`
	// RateMult is the spike's arrival-rate multiplier.
	RateMult float64 `json:"rate_mult,omitempty"`
	// ClassWeights is the mix-shift target distribution, keyed by class
	// name ("SS".."LL"): re-drawn requests sample their class with
	// probability proportional to these weights (omitted classes are
	// never drawn). It is an absolute distribution, not a multiplier on
	// the base mix.
	ClassWeights map[string]float64 `json:"class_weights,omitempty"`
	// Fraction is the share of in-window requests a mix-shift re-draws
	// (default 0.5 when zero).
	Fraction float64 `json:"fraction,omitempty"`
	// Servers is how many 8-GPU servers an outage fails or a recovery
	// restores.
	Servers int `json:"servers,omitempty"`
	// PriceMult is the electricity-price multiplier of a price event.
	PriceMult float64 `json:"price_mult,omitempty"`
	// SLOFactor scales the SLOs inside an slo event's window.
	SLOFactor float64 `json:"slo_factor,omitempty"`
	// MTBFHours is a faults event's mean time between crashes.
	MTBFHours float64 `json:"mtbf_hours,omitempty"`
	// RepairHours is the mean crash-to-recovery delay of a faults event,
	// or the fixed repair delay of a rack event (0 = never repaired).
	RepairHours float64 `json:"repair_hours,omitempty"`
	// SlowFactor is a straggler's achieved-clock fraction, in (0, 1).
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// DelaySeconds is a blip's added frontend submission latency.
	DelaySeconds float64 `json:"delay_seconds,omitempty"`
	// Groups is how many distinct prompt groups a cache-thrash event
	// spreads its tagged requests over.
	Groups int `json:"prompt_groups,omitempty"`
}

// window returns the event's [from, to) in simulation seconds.
func (e Event) window() (from, to simclock.Time) {
	from = simclock.Time(e.AtHours * 3600)
	to = from + simclock.Time(e.DurationHours*3600)
	return from, to
}

// Runtime reports whether the kind fires inside a running simulation
// (through the tick hook) rather than rewriting the trace before it
// starts. Only runtime kinds can be injected into a live serving session.
func (k Kind) Runtime() bool {
	switch k {
	case Outage, Recovery, Price, SLO, Faults, Rack, Straggler, Blip:
		return true
	}
	return false
}

// badNum reports a value no field may carry: NaN slips through one-sided
// comparisons (NaN <= 0 is false), and infinities turn window arithmetic
// and expansion loops degenerate. Both must be rejected explicitly.
func badNum(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// ValidateEvent checks the fields an event's kind requires, independent
// of any scenario trace window. Scenario.Validate adds the window bounds
// on top; the live serving session validates injected events with this
// alone. Besides kind-specific ranges it enforces the global sanity
// bounds that keep hostile inputs (fuzzed or operator typos) from
// expanding into unbounded work: no NaN/Inf anywhere, amplification
// capped, and stochastic fault windows capped in expected crash count.
func ValidateEvent(e Event) error {
	if badNum(e.AtHours, e.DurationHours, e.RateMult, e.Fraction, e.PriceMult,
		e.SLOFactor, e.MTBFHours, e.RepairHours, e.SlowFactor, e.DelaySeconds) {
		return fmt.Errorf("numeric fields must be finite")
	}
	//dynamolint:order-independent every bad weight yields the same error; order cannot change it
	for _, w := range e.ClassWeights {
		if badNum(w) || w < 0 {
			return fmt.Errorf("class_weights must be finite and non-negative")
		}
	}
	if e.Fraction < 0 || e.Fraction > 1 {
		return fmt.Errorf("fraction must be in [0, 1]")
	}
	switch e.Kind {
	case Spike:
		if e.RateMult <= 0 {
			return fmt.Errorf("rate_mult must be positive")
		}
		if e.RateMult > 1000 {
			return fmt.Errorf("rate_mult %v exceeds the 1000x amplification cap", e.RateMult)
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
	case MixShift:
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
		if len(e.ClassWeights) == 0 {
			return fmt.Errorf("class_weights must name at least one class")
		}
		// Sorted so a scenario with several bad class names reports the
		// same one every run.
		for _, name := range order.Keys(e.ClassWeights) {
			if _, err := workload.ParseClass(name); err != nil {
				return err
			}
		}
	case Outage, Recovery:
		if e.Servers <= 0 {
			return fmt.Errorf("servers must be positive")
		}
	case Price:
		if e.PriceMult <= 0 {
			return fmt.Errorf("price_mult must be positive")
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
	case SLO:
		if e.SLOFactor <= 0 {
			return fmt.Errorf("slo_factor must be positive")
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
	case Faults:
		if e.MTBFHours <= 0 {
			return fmt.Errorf("mtbf_hours must be positive")
		}
		if e.RepairHours <= 0 {
			return fmt.Errorf("repair_hours must be positive")
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
		if e.DurationHours/e.MTBFHours > 1e5 {
			return fmt.Errorf("faults window expands to ~%.0f expected crashes (cap 100000)",
				e.DurationHours/e.MTBFHours)
		}
	case Rack:
		if e.Servers <= 0 {
			return fmt.Errorf("servers must be positive")
		}
		if e.RepairHours < 0 {
			return fmt.Errorf("repair_hours must not be negative")
		}
	case Straggler:
		if e.Servers <= 0 {
			return fmt.Errorf("servers must be positive")
		}
		if e.SlowFactor <= 0 || e.SlowFactor >= 1 {
			return fmt.Errorf("slow_factor must be in (0, 1)")
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
	case Blip:
		if e.DelaySeconds <= 0 {
			return fmt.Errorf("delay_seconds must be positive")
		}
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
	case CacheThrash:
		if e.DurationHours <= 0 {
			return fmt.Errorf("duration_hours must be positive")
		}
		if e.Groups <= 0 {
			return fmt.Errorf("prompt_groups must be positive")
		}
		if e.Groups > 1<<20 {
			return fmt.Errorf("prompt_groups %d exceeds the 2^20 cap", e.Groups)
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

// Scenario is a named, self-contained experiment condition: a base
// synthetic trace (service, window, duration) plus the event timeline
// perturbing it. The zero value is not useful; construct literals, use
// the Library, or Load JSON.
type Scenario struct {
	// Name identifies the scenario (CLI argument, table row label).
	Name string `json:"name"`
	// Description is the one-line operator summary.
	Description string `json:"description,omitempty"`
	// Service selects the base workload profile: "conversation"
	// (default) or "coding".
	Service string `json:"service,omitempty"`
	// StartHours offsets the trace window within the synthetic week
	// (t = 0 is Monday 00:00), so scenarios can start on a morning ramp
	// or a weekend valley.
	StartHours float64 `json:"start_hours,omitempty"`
	// Days is the trace duration in days.
	Days float64 `json:"days"`
	// PeakRPS overrides the weekly-peak request rate (0 = harness
	// default).
	PeakRPS float64 `json:"peak_rps,omitempty"`
	// Events is the injected timeline; an empty list makes the scenario
	// a plain pass-through of the base trace.
	Events []Event `json:"events,omitempty"`
}

// ServiceProfile resolves the Service field to a trace.Service.
func (s *Scenario) ServiceProfile() (trace.Service, error) {
	switch s.Service {
	case "", "conversation":
		return trace.Conversation, nil
	case "coding":
		return trace.Coding, nil
	}
	return 0, fmt.Errorf("scenario %q: unknown service %q (want conversation|coding)", s.Name, s.Service)
}

// ServiceName returns the display name of the scenario's service,
// resolving the empty default — the single place the "empty means
// conversation" rule is rendered.
func (s *Scenario) ServiceName() string {
	if s.Service == "" {
		return trace.Conversation.String()
	}
	return s.Service
}

// Start returns the trace window's offset within the synthetic week —
// the load-predictor warm function needs it to line historical rates up
// with simulation time.
func (s *Scenario) Start() simclock.Time {
	return simclock.Time(s.StartHours * 3600)
}

// Validate checks the scenario is well-formed: known service and event
// kinds, positive duration, events inside the trace window with the
// fields their kind requires.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, err := s.ServiceProfile(); err != nil {
		return err
	}
	if badNum(s.Days, s.StartHours, s.PeakRPS) {
		return fmt.Errorf("scenario %q: numeric fields must be finite", s.Name)
	}
	if s.Days <= 0 {
		return fmt.Errorf("scenario %q: non-positive days %v", s.Name, s.Days)
	}
	if s.Days > 3650 {
		return fmt.Errorf("scenario %q: %v days exceeds the 10-year cap", s.Name, s.Days)
	}
	if s.StartHours < 0 || s.StartHours > 24*3650 {
		return fmt.Errorf("scenario %q: start_hours %v outside [0, 10 years]", s.Name, s.StartHours)
	}
	if s.PeakRPS < 0 || s.PeakRPS > 1e6 {
		return fmt.Errorf("scenario %q: peak_rps %v outside [0, 1e6]", s.Name, s.PeakRPS)
	}
	horizon := s.Days * 24
	for i, e := range s.Events {
		at := fmt.Sprintf("scenario %q: event %d (%s)", s.Name, i, e.Kind)
		if e.AtHours < 0 || e.AtHours > horizon {
			return fmt.Errorf("%s: at_hours %v outside the %v-hour trace", at, e.AtHours, horizon)
		}
		if err := ValidateEvent(e); err != nil {
			return fmt.Errorf("%s: %v", at, err)
		}
	}
	return nil
}

// GenTrace generates the scenario's perturbed trace: the base service
// trace over [StartHours, StartHours+Days), time-shifted to t = 0, with
// every trace-level event applied. peakRPS <= 0 keeps the scenario's own
// PeakRPS (which must then be set); maxDays > 0 caps the duration (quick
// harness runs). The result is deterministic in (scenario, peakRPS,
// maxDays, seed).
func (s *Scenario) GenTrace(peakRPS, maxDays float64, seed uint64) (trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	svc, err := s.ServiceProfile()
	if err != nil {
		return nil, err
	}
	if peakRPS <= 0 {
		peakRPS = s.PeakRPS
	}
	if peakRPS <= 0 {
		return nil, fmt.Errorf("scenario %q: no peak rate (set PeakRPS or pass one)", s.Name)
	}
	days := s.Days
	if maxDays > 0 && days > maxDays {
		days = maxDays
	}
	start := s.Start()
	end := start + simclock.Time(days*simclock.Day)
	tr := trace.Generate(trace.GenConfig{
		Service:  svc,
		Start:    start,
		Duration: days * simclock.Day,
		PeakRPS:  peakRPS,
		Seed:     seed,
	}).Window(start, end)
	return s.ApplyTrace(tr, seed), nil
}

// ApplyTrace applies the scenario's trace-level events (spikes and mix
// shifts) to an already-generated trace whose t = 0 is the scenario
// start. Runtime events are untouched — install Hook for those. With no
// trace-level events the input is returned unchanged (same backing
// array), so an event-free scenario is an exact pass-through.
func (s *Scenario) ApplyTrace(tr trace.Trace, seed uint64) trace.Trace {
	mods := make([]trace.Modifier, 0, len(s.Events))
	for i, e := range s.Events {
		from, to := e.window()
		evSeed := seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		switch e.Kind {
		case Spike:
			mods = append(mods, trace.AmplifyWindow(from, to, e.RateMult, evSeed))
		case MixShift:
			var w [workload.NumClasses]float64
			// Sorted so two aliases of the same class resolve their
			// last-write-wins race identically every run.
			for _, name := range order.Keys(e.ClassWeights) {
				cls, err := workload.ParseClass(name)
				if err != nil {
					continue // Validate rejects this before simulation
				}
				w[cls] = e.ClassWeights[name]
			}
			frac := e.Fraction
			if frac <= 0 {
				frac = 0.5
			}
			mods = append(mods, trace.ShiftMixWindow(from, to, w, frac, evSeed))
		case CacheThrash:
			frac := e.Fraction
			if frac <= 0 {
				frac = 0.5
			}
			mods = append(mods, trace.GroupPrompts(from, to, frac, e.Groups, evSeed))
		}
	}
	if len(mods) == 0 {
		return tr
	}
	return trace.Compose(mods...)(tr)
}

// Hook compiles the scenario's runtime events (outages, recoveries, rack
// failures, stragglers, blips, price signals, SLO windows) into a
// core.Timeline tick hook, or nil if there are none. Stochastic faults
// events are first expanded into concrete crash/repair instants with the
// seed (see ExpandFaults), so the same (scenario, seed) always yields the
// same hook. Every call returns a fresh hook: a Timeline carries per-run
// cursor state and must never be shared between simulations.
func (s *Scenario) Hook(seed uint64) core.TickHook {
	events := RuntimeTimeline(expandedEvents(s.Events, s.Days*24, seed), 0)
	if len(events) == 0 {
		return nil
	}
	return core.NewTimeline(events)
}

// expandedEvents returns the timeline with every stochastic faults event
// replaced by its seeded concrete expansion; timelines without faults
// events are returned unchanged (same backing array).
func expandedEvents(timeline []Event, horizonHours float64, seed uint64) []Event {
	plan := ExpandFaults(timeline, horizonHours, seed)
	if len(plan.Events) == 0 {
		return timeline
	}
	merged := make([]Event, 0, len(timeline)+len(plan.Events))
	for _, e := range timeline {
		if e.Kind != Faults { // replaced by the expansion
			merged = append(merged, e)
		}
	}
	return append(merged, plan.Events...)
}

// FaultPlan is the concrete, seed-deterministic expansion of a timeline's
// stochastic faults events: every crash and its matching recovery pinned
// to an instant. Expanding once, before the simulation starts, is what
// makes fault runs replayable — the plan depends only on (timeline,
// horizon, seed), never on fidelity, parallelism, or tick order.
type FaultPlan struct {
	// Seed is the seed the plan was drawn from.
	Seed uint64 `json:"seed"`
	// Events are concrete outage/recovery events, sorted by time.
	Events []Event `json:"events,omitempty"`
}

// ExpandFaults draws the stochastic faults events of a timeline into a
// concrete FaultPlan. Crashes arrive as a Poisson process (exponential
// gaps, mean MTBFHours) inside each event's window; each crash fails
// Servers servers (default 1) and is followed by a recovery after an
// exponential repair delay (mean RepairHours), dropped when it would land
// past horizonHours. Each faults event draws from its own RNG stream
// derived from (seed, event index), so adding or editing one event never
// reshuffles another's instants.
func ExpandFaults(timeline []Event, horizonHours float64, seed uint64) FaultPlan {
	plan := FaultPlan{Seed: seed}
	for i, e := range timeline {
		if e.Kind != Faults {
			continue
		}
		rng := simclock.NewRNG(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
		servers := e.Servers
		if servers <= 0 {
			servers = 1
		}
		to := e.AtHours + e.DurationHours
		if horizonHours > 0 && to > horizonHours {
			to = horizonHours
		}
		for t := e.AtHours + rng.Exp(1/e.MTBFHours); t < to; t += rng.Exp(1 / e.MTBFHours) {
			plan.Events = append(plan.Events, Event{Kind: Outage, AtHours: t, Servers: servers})
			repair := t + rng.Exp(1/e.RepairHours)
			if horizonHours <= 0 || repair < horizonHours {
				plan.Events = append(plan.Events, Event{Kind: Recovery, AtHours: repair, Servers: servers})
			}
		}
	}
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].AtHours < plan.Events[j].AtHours
	})
	return plan
}

// FaultPlan expands the scenario's stochastic faults events against its
// own trace horizon.
func (s *Scenario) FaultPlan(seed uint64) FaultPlan {
	return ExpandFaults(s.Events, s.Days*24, seed)
}

// RuntimeTimeline compiles the runtime-kind events of a timeline (outage,
// recovery, rack, straggler, blip, price, slo) into core timeline events,
// each firing through the Controls facade at offset plus its scheduled
// instant. Trace-level kinds (spike, mix-shift) are skipped: they rewrite
// arrivals before a simulation starts and have no runtime form. Faults
// events are skipped too — they are stochastic and must be expanded into
// concrete outages and recoveries first (ExpandFaults; Scenario.Hook and
// the live session's injector both do). The offset lets the live serving
// session schedule an operator-posted timeline relative to the current
// virtual time instead of the trace start.
//
// Price and SLO windows may overlap or abut; at any instant the value in
// force is that of the most recently started window still open (1 when
// none is). Windows are compiled to boundary events carrying the active
// value, so a window ending can never clobber another that is still
// running.
func RuntimeTimeline(timeline []Event, offset simclock.Time) []core.TimelineEvent {
	var events []core.TimelineEvent
	var priceWins, sloWins, delayWins []valueWindow
	for _, e := range timeline {
		e := e
		from, to := e.window()
		switch e.Kind {
		case Outage:
			events = append(events, core.TimelineEvent{At: from,
				Do: func(ctl *core.Controls) { ctl.FailServers(e.Servers) }})
		case Recovery:
			events = append(events, core.TimelineEvent{At: from,
				Do: func(ctl *core.Controls) { ctl.RecoverServers(e.Servers) }})
		case Rack:
			events = append(events, core.TimelineEvent{At: from,
				Do: func(ctl *core.Controls) { ctl.FailRack(e.Servers) }})
			if e.RepairHours > 0 {
				repairAt := from + simclock.Time(e.RepairHours*3600)
				events = append(events, core.TimelineEvent{At: repairAt,
					Do: func(ctl *core.Controls) { ctl.RecoverServers(e.Servers) }})
			}
		case Straggler:
			events = append(events, core.TimelineEvent{At: from,
				Do: func(ctl *core.Controls) { ctl.StraggleServers(e.Servers, e.SlowFactor) }})
			events = append(events, core.TimelineEvent{At: to,
				Do: func(ctl *core.Controls) { ctl.RepairStragglers(e.Servers) }})
		case Blip:
			delayWins = append(delayWins, valueWindow{from: from, to: to, val: e.DelaySeconds})
		case Price:
			priceWins = append(priceWins, valueWindow{from: from, to: to, val: e.PriceMult})
		case SLO:
			sloWins = append(sloWins, valueWindow{from: from, to: to, val: e.SLOFactor})
		}
	}
	events = append(events, boundaryEvents(priceWins, 1, (*core.Controls).SetPriceMult)...)
	events = append(events, boundaryEvents(sloWins, 1, (*core.Controls).SetSLOFactor)...)
	events = append(events, boundaryEvents(delayWins, 0, (*core.Controls).SetSubmitDelay)...)
	if offset != 0 {
		for i := range events {
			events[i].At += offset
		}
	}
	return events
}

// valueWindow is a half-open [from, to) interval during which a price,
// SLO, or submission-delay value holds.
type valueWindow struct {
	from, to simclock.Time
	val      float64
}

// activeValue returns the value in force at t: the value of the most
// recently started window containing t (ties broken by list order, later
// wins), or def when no window is open (1 for multipliers, 0 for the
// additive submission delay).
func activeValue(ws []valueWindow, t simclock.Time, def float64) float64 {
	v := def
	started := simclock.Time(math.Inf(-1))
	for _, w := range ws {
		if w.from <= t && t < w.to && w.from >= started {
			started, v = w.from, w.val
		}
	}
	return v
}

// boundaryEvents compiles value windows into timeline events: one event
// per boundary where the active value changes, each setting the value
// that holds from that instant on.
func boundaryEvents(ws []valueWindow, def float64, set func(*core.Controls, float64)) []core.TimelineEvent {
	if len(ws) == 0 {
		return nil
	}
	bounds := make([]simclock.Time, 0, 2*len(ws))
	for _, w := range ws {
		bounds = append(bounds, w.from, w.to)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var out []core.TimelineEvent
	prev := def
	for i, t := range bounds {
		if i > 0 && t == bounds[i-1] {
			continue
		}
		v := activeValue(ws, t, def) // fresh per iteration; safe to capture
		if v == prev {
			continue
		}
		prev = v
		out = append(out, core.TimelineEvent{At: t, Do: func(ctl *core.Controls) { set(ctl, v) }})
	}
	return out
}

// Load parses a JSON scenario and validates it.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile is Load on a file path.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
