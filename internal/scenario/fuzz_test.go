package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScenarioLoad feeds arbitrary bytes through the full scenario
// pipeline: Load (strict JSON decode + Validate), then every consumer a
// loaded scenario can reach — trace generation with events applied, the
// runtime hook compilation, and the stochastic fault expansion. The
// contract under test is that Validate is the single gate: any scenario
// Load accepts must be safe to simulate — no panics, no unbounded
// expansion, no NaN-poisoned windows — so every bound lives in Validate,
// not scattered across consumers.
//
// Run via `make fuzz-smoke` (short budget, wired into CI) or directly:
//
//	go test -run='^$' -fuzz=FuzzScenarioLoad ./internal/scenario
func FuzzScenarioLoad(f *testing.F) {
	// Seed with every builtin so the fuzzer starts from rich valid
	// inputs (all event kinds, both services) and mutates outward.
	for _, s := range Library() {
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatalf("marshal builtin %s: %v", s.Name, err)
		}
		f.Add(b)
	}
	// Hand-written seeds: a minimal cache-thrash scenario, a faults
	// scenario near the expansion cap, and classic decode rejections.
	f.Add([]byte(`{"name":"ct","days":0.1,"events":[{"kind":"cache-thrash","at_hours":0,"duration_hours":1,"fraction":0.9,"prompt_groups":4}]}`))
	f.Add([]byte(`{"name":"ft","days":1,"events":[{"kind":"faults","at_hours":0,"duration_hours":24,"mtbf_hours":0.01,"repair_hours":0.1}]}`))
	f.Add([]byte(`{"name":"nan","days":1e999}`))
	f.Add([]byte(`{"name":"x","days":1,"bogus":true}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only acceptable early exit
		}
		// Load validated it; re-validating must agree (Validate is
		// deterministic and Load must not hand back a half-checked value).
		if err := s.Validate(); err != nil {
			t.Fatalf("Load accepted a scenario Validate rejects: %v", err)
		}
		// Exercise every consumer. The peak rate and day cap are small so
		// each iteration stays cheap; the bounds under test (RateMult,
		// MTBF ratio, Days, Groups, finiteness) are about blow-ups that
		// no small cap here would mask.
		tr, err := s.GenTrace(2, 0.01, 1)
		if err != nil {
			t.Fatalf("GenTrace rejected a validated scenario: %v", err)
		}
		_ = s.ApplyTrace(tr, 1)
		_ = s.Hook(1)
		_ = s.FaultPlan(1)
	})
}
