package scenario

import (
	"bytes"
	"strings"
	"testing"

	"dynamollm/internal/core"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func TestLibraryValidatesAndGenerates(t *testing.T) {
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library has %d scenarios, want >= 6", len(lib))
	}
	seen := map[string]bool{}
	for _, s := range lib {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		tr, err := s.GenTrace(20, 0.25, 7)
		if err != nil {
			t.Errorf("%s: GenTrace: %v", s.Name, err)
			continue
		}
		if len(tr) == 0 {
			t.Errorf("%s: empty trace", s.Name)
		}
		for i := 1; i < len(tr); i++ {
			if tr[i].At < tr[i-1].At {
				t.Fatalf("%s: trace out of order at %d", s.Name, i)
			}
		}
	}
	for _, want := range []string{"flashcrowd", "blackfriday", "gpu-failures", "price-surge", "slo-crunch", "mixed-week"} {
		if _, ok := ByName(want); !ok {
			t.Errorf("missing built-in scenario %q", want)
		}
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	s, _ := ByName("flashcrowd")
	a, err := s.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.GenTrace(20, 0, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestFlashcrowdSpikesTheWindow(t *testing.T) {
	s, _ := ByName("flashcrowd")
	base := *s
	base.Events = nil
	plain, err := base.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	spiked, err := s.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	window := func(tr trace.Trace, from, to simclock.Time) int {
		n := 0
		for _, e := range tr {
			if e.At >= from && e.At < to {
				n++
			}
		}
		return n
	}
	from, to := s.Events[0].window()
	before, after := window(plain, from, to), window(spiked, from, to)
	if ratio := float64(after) / float64(before); ratio < 2.8 || ratio > 4.2 {
		t.Errorf("flash crowd window: %d -> %d requests (%.2fx), want ~3.5x", before, after, ratio)
	}
	if window(plain, 0, from) != window(spiked, 0, from) {
		t.Error("flash crowd leaked outside its window")
	}
}

// TestScenarioCSVRoundTrip: a trace that passes through an event-free
// scenario must survive a CSV round trip byte-identically — the scenario
// layer adds nothing when its event list is empty.
func TestScenarioCSVRoundTrip(t *testing.T) {
	s := &Scenario{Name: "passthrough", Days: 0.05}
	tr, err := s.GenTrace(25, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := tr.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	applied := s.ApplyTrace(parsed, 99)
	if &applied[0] != &parsed[0] {
		t.Error("empty-event ApplyTrace did not return its input unchanged")
	}
	var second bytes.Buffer
	if err := applied.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("CSV round trip through an event-free scenario is not byte-identical")
	}
}

func TestLoadJSON(t *testing.T) {
	const js = `{
		"name": "custom",
		"description": "ops drill",
		"service": "coding",
		"days": 0.5,
		"events": [
			{"kind": "spike", "at_hours": 1, "duration_hours": 0.5, "rate_mult": 2},
			{"kind": "mix-shift", "at_hours": 2, "duration_hours": 1, "class_weights": {"LL": 2}},
			{"kind": "outage", "at_hours": 3, "servers": 2},
			{"kind": "recovery", "at_hours": 4, "servers": 2},
			{"kind": "price", "at_hours": 5, "duration_hours": 1, "price_mult": 3},
			{"kind": "slo", "at_hours": 6, "duration_hours": 1, "slo_factor": 0.5}
		]
	}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || len(s.Events) != 6 {
		t.Fatalf("bad parse: %+v", s)
	}
	if s.Hook(7) == nil {
		t.Error("runtime events should compile to a hook")
	}

	bad := []string{
		`{"name": "x", "days": 0}`,
		`{"name": "x", "days": 1, "service": "mainframe"}`,
		`{"name": "x", "days": 1, "events": [{"kind": "spike", "at_hours": 1}]}`,
		`{"name": "x", "days": 1, "events": [{"kind": "warp", "at_hours": 1}]}`,
		`{"name": "x", "days": 1, "events": [{"kind": "outage", "at_hours": 1}]}`,
		`{"name": "x", "days": 1, "events": [{"kind": "mix-shift", "at_hours": 1, "duration_hours": 1, "class_weights": {"XX": 1}}]}`,
		`{"name": "x", "days": 1, "events": [{"kind": "spike", "at_hours": 60, "duration_hours": 1, "rate_mult": 2}]}`,
		`{"name": "x", "days": 1, "unknown_field": true}`,
	}
	for _, js := range bad {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("Load accepted invalid scenario: %s", js)
		}
	}
}

func TestHookFreshPerCall(t *testing.T) {
	s, _ := ByName("gpu-failures")
	a, b := s.Hook(7), s.Hook(7)
	if a == nil || b == nil {
		t.Fatal("gpu-failures must produce a runtime hook")
	}
	if a == b {
		t.Error("Hook() returned a shared instance; timelines carry per-run state")
	}
	if f, _ := ByName("flashcrowd"); f.Hook(7) != nil {
		t.Error("flashcrowd has no runtime events; Hook should be nil")
	}
}

// TestOutageScenarioEndToEnd drives the gpu-failures scenario through a
// real simulation and checks the injected outage is visible in the result
// counters and that a static system loses capacity while the outage holds.
func TestOutageScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	s, _ := ByName("gpu-failures")
	tr, err := s.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := core.SystemByName("singlepool")
	opts.Seed = 7
	opts.Hook = s.Hook(7)
	res := core.Run(tr, opts)
	if res.Outages == 0 {
		t.Error("outage scenario produced no Outages")
	}
	if res.Recoveries == 0 {
		t.Error("recovery events produced no Recoveries")
	}

	// The same trace without events must cost at least as much energy:
	// the outage removes servers (and their power draw) for 1.5 hours.
	plain := *s
	plain.Events = nil
	trPlain, err := plain.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	optsPlain, _ := core.SystemByName("singlepool")
	optsPlain.Seed = 7
	resPlain := core.Run(trPlain, optsPlain)
	if res.EnergyJ >= resPlain.EnergyJ {
		t.Errorf("outage run energy %.0f J >= intact run %.0f J; failed servers still drawing power?",
			res.EnergyJ, resPlain.EnergyJ)
	}
}

// TestPriceScenarioEndToEnd checks a price surge shows up in the energy
// bill: the same energy is billed at a higher effective rate.
func TestPriceScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	s := &Scenario{
		Name:       "price-test",
		StartHours: 32,
		Days:       0.25,
		Events:     []Event{{Kind: Price, AtHours: 1, DurationHours: 4, PriceMult: 5}},
	}
	tr, err := s.GenTrace(10, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := core.SystemByName("singlepool")
	opts.Seed = 7
	opts.Hook = s.Hook(7)
	res := core.Run(tr, opts)

	optsPlain, _ := core.SystemByName("singlepool")
	optsPlain.Seed = 7
	resPlain := core.Run(tr, optsPlain)

	// Same trace, same static system: identical energy, bigger bill.
	if res.EnergyCostUSD <= resPlain.EnergyCostUSD {
		t.Errorf("price surge bill %.4f <= nominal bill %.4f", res.EnergyCostUSD, resPlain.EnergyCostUSD)
	}
	if resPlain.EnergyCostUSD <= 0 {
		t.Error("nominal run has a zero energy bill")
	}
}

// TestSLOScenarioEndToEnd checks an SLO crunch lowers measured
// attainment on a DVFS system, which deliberately runs close to the
// nominal SLO boundary and so has no slack when the target halves.
// (Statically over-provisioned baselines sail through a 2x crunch —
// that asymmetry is what the scenario exists to expose.)
func TestSLOScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	s, _ := ByName("slo-crunch")
	tr, err := s.GenTrace(20, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(hook core.TickHook) *core.Result {
		opts, _ := core.SystemByName("scalefreq")
		opts.Seed = 7
		opts.Hook = hook
		return core.Run(tr, opts)
	}
	crunched := run(s.Hook(7))
	nominal := run(nil)
	if crunched.SLOAttainment() >= nominal.SLOAttainment() {
		t.Errorf("SLO crunch did not lower a DVFS system's attainment: %.3f >= %.3f",
			crunched.SLOAttainment(), nominal.SLOAttainment())
	}
}

// TestMixShiftChangesClassShares: the mixed-week mix-shift window must
// move request mass into the targeted long-input classes.
func TestMixShiftChangesClassShares(t *testing.T) {
	s, _ := ByName("mixed-week")
	var mix *Event
	for i := range s.Events {
		if s.Events[i].Kind == MixShift {
			mix = &s.Events[i]
		}
	}
	if mix == nil {
		t.Fatal("mixed-week lost its mix-shift event")
	}
	// Generate only up to a horizon covering the window to keep this fast.
	maxDays := (mix.AtHours + mix.DurationHours) / 24
	withEvents, err := s.GenTrace(10, maxDays+0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	plain := *s
	plain.Events = nil
	without, err := plain.GenTrace(10, maxDays+0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	longShare := func(tr trace.Trace) float64 {
		from, to := mix.window()
		n, long := 0, 0
		for _, e := range tr {
			if e.At < from || e.At >= to {
				continue
			}
			n++
			if e.Class().Input() == workload.Long {
				long++
			}
		}
		if n == 0 {
			t.Fatal("no requests in mix-shift window")
		}
		return float64(long) / float64(n)
	}
	if a, b := longShare(withEvents), longShare(without); a <= b {
		t.Errorf("mix shift did not raise long-input share: %.2f <= %.2f", a, b)
	}
}

// TestWindowCompilation: overlapping and abutting price/SLO windows must
// compile to boundary events carrying the value actually in force — a
// window's end never resets a sibling that is still open, and abutting
// windows hand over without a dip to the nominal value.
func TestWindowCompilation(t *testing.T) {
	h := func(hours float64) simclock.Time { return simclock.Time(hours * 3600) }
	wins := []valueWindow{
		{from: h(14), to: h(18), val: 4},   // listed before the window that abuts it
		{from: h(11), to: h(14), val: 0.4}, // abuts at 14h
		{from: h(20), to: h(30), val: 2},   // enclosing
		{from: h(22), to: h(25), val: 3},   // nested inside it
	}
	cases := []struct {
		atHours float64
		want    float64
	}{
		{10, 1}, {11, 0.4}, {13.9, 0.4},
		{14, 4}, // abutting handover, no dip to 1
		{17.9, 4}, {18, 1},
		{20, 2}, {22, 3}, {24.9, 3},
		{25, 2}, // nested window ends, enclosing value restored
		{29.9, 2}, {30, 1},
	}
	for _, tc := range cases {
		if got := activeValue(wins, h(tc.atHours), 1); got != tc.want {
			t.Errorf("activeValue at %vh = %v, want %v", tc.atHours, got, tc.want)
		}
	}

	var fired []float64
	evs := boundaryEvents(wins, 1, func(_ *core.Controls, v float64) { fired = append(fired, v) })
	for i, e := range evs {
		if i > 0 && e.At < evs[i-1].At {
			t.Fatalf("boundary events out of order")
		}
		e.Do(nil)
	}
	want := []float64{0.4, 4, 1, 2, 3, 2, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired values %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired values %v, want %v", fired, want)
		}
	}
}

// TestRuntimeTimeline covers the live-injection entry point: trace-level
// kinds are skipped, runtime kinds compile, and the offset shifts every
// firing instant (the serving session schedules relative to "now").
func TestRuntimeTimeline(t *testing.T) {
	events := []Event{
		{Kind: Spike, AtHours: 0, DurationHours: 1, RateMult: 3}, // trace-level: skipped
		{Kind: Outage, AtHours: 1, Servers: 2},
		{Kind: Price, AtHours: 2, DurationHours: 1, PriceMult: 5},
	}
	const offset = simclock.Time(500)
	evs := RuntimeTimeline(events, offset)
	// outage + price window start + price window end
	if len(evs) != 3 {
		t.Fatalf("compiled %d events, want 3 (spike must be skipped)", len(evs))
	}
	if evs[0].At != offset+simclock.Time(3600) {
		t.Errorf("outage fires at %v, want %v", evs[0].At, offset+simclock.Time(3600))
	}
	for _, e := range evs {
		if e.At < offset {
			t.Errorf("event at %v fires before the offset %v", e.At, offset)
		}
	}

	for _, k := range []Kind{Outage, Recovery, Price, SLO} {
		if !k.Runtime() {
			t.Errorf("%s.Runtime() = false, want true", k)
		}
	}
	for _, k := range []Kind{Spike, MixShift, Kind("bogus")} {
		if k.Runtime() {
			t.Errorf("%s.Runtime() = true, want false", k)
		}
	}
	if err := ValidateEvent(Event{Kind: Outage}); err == nil {
		t.Error("outage without servers validated")
	}
	if err := ValidateEvent(Event{Kind: Kind("bogus")}); err == nil {
		t.Error("unknown kind validated")
	}
	if err := ValidateEvent(Event{Kind: Price, DurationHours: 2, PriceMult: 3}); err != nil {
		t.Errorf("valid price event rejected: %v", err)
	}
}
