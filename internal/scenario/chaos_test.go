package scenario

import (
	"reflect"
	"testing"

	"dynamollm/internal/core"
	"dynamollm/internal/profile"
)

// TestFaultPlanDeterminism pins the fault expansion contract: the plan is
// a pure function of (timeline, horizon, seed) — identical across calls,
// different across seeds, time-sorted, and with every crash inside the
// scenario horizon.
func TestFaultPlanDeterminism(t *testing.T) {
	s, ok := ByName("chaos-monkey")
	if !ok {
		t.Fatal("chaos-monkey missing from library")
	}
	a := s.FaultPlan(99)
	if len(a.Events) == 0 {
		t.Fatal("chaos-monkey expanded to no crash events")
	}
	if b := s.FaultPlan(99); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different fault plans")
	}
	if c := s.FaultPlan(100); reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical fault plans")
	}
	horizon := s.Days * 24
	for i, e := range a.Events {
		if i > 0 && e.AtHours < a.Events[i-1].AtHours {
			t.Errorf("plan not time-sorted at %d: %.3f < %.3f", i, e.AtHours, a.Events[i-1].AtHours)
		}
		if e.Kind != Outage && e.Kind != Recovery {
			t.Errorf("plan event %d has kind %s, want outage/recovery", i, e.Kind)
		}
		if e.AtHours >= horizon {
			t.Errorf("plan event %d at %.3fh beyond the %gh horizon", i, e.AtHours, horizon)
		}
	}
}

// conservationFingerprint is the cross-run identity a simulation under
// faults must reproduce exactly.
type conservationFingerprint struct {
	requests, completed, squashed, shed int
	retried, retrySuccess               int
	outages, recoveries, stragglers     int
	energyJ, ttftP99                    float64
}

func fingerprintOf(res *core.Result) conservationFingerprint {
	return conservationFingerprint{
		requests: res.Requests, completed: res.Completed, squashed: res.Squashed, shed: res.Shed,
		retried: res.Retried, retrySuccess: res.RetrySuccess,
		outages: res.Outages, recoveries: res.Recoveries, stragglers: res.Stragglers,
		energyJ: res.EnergyJ, ttftP99: res.TTFT.Percentile(99),
	}
}

// TestLibraryConservationCrossFidelity runs every built-in scenario —
// including the stochastic chaos-monkey — under both fidelities and
// asserts request conservation: every routed request terminates as
// exactly one of completed, squashed, or shed, with retries neither
// minting nor losing work.
func TestLibraryConservationCrossFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulations")
	}
	repo := profile.NewRepository(nil)
	for _, s := range Library() {
		tr, err := s.GenTrace(10, 0.25, 7)
		if err != nil {
			t.Fatalf("%s: GenTrace: %v", s.Name, err)
		}
		for _, fid := range []core.Fidelity{core.FidelityFluid, core.FidelityEvent} {
			opts, _ := core.SystemByName("dynamollm")
			opts.Seed = 7
			opts.Fidelity = fid
			opts.Hook = s.Hook(7)
			res := core.RunWithRepo(tr, opts, repo)
			if err := res.CheckInvariants(); err != nil {
				t.Errorf("%s/%s: %v", s.Name, fid, err)
			}
			if res.RetrySuccess > res.Retried {
				t.Errorf("%s/%s: %d retry successes > %d retries", s.Name, fid, res.RetrySuccess, res.Retried)
			}
			if s.Name == "chaos-monkey" {
				if res.Outages == 0 {
					t.Errorf("chaos-monkey/%s: no outages injected", fid)
				}
				if res.Stragglers == 0 {
					t.Errorf("chaos-monkey/%s: no stragglers injected", fid)
				}
				if res.Blips == 0 {
					t.Errorf("chaos-monkey/%s: no blips injected", fid)
				}
			}
		}
	}
}

// TestChaosStepJobsDeterministic: the stochastic fault plan is expanded
// before the simulation starts, so under event fidelity any StepJobs
// value must reproduce a bit-identical run — parallelism never reorders
// failures.
func TestChaosStepJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulations")
	}
	s, _ := ByName("chaos-monkey")
	tr, err := s.GenTrace(8, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	repo := profile.NewRepository(nil)
	var want conservationFingerprint
	for i, jobs := range []int{1, 4} {
		opts, _ := core.SystemByName("dynamollm")
		opts.Seed = 7
		opts.Fidelity = core.FidelityEvent
		opts.StepJobs = jobs
		opts.Hook = s.Hook(7)
		got := fingerprintOf(core.RunWithRepo(tr, opts, repo))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("StepJobs=%d diverges under faults:\n got  %+v\n want %+v", jobs, got, want)
		}
	}
}
