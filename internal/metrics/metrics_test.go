package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dynamollm/internal/simclock"
)

// relErr returns |got-want|/|want| (absolute error when want == 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// exactNearestRank is the reference implementation of Dist.Percentile's
// documented semantics: the sample at rank ceil(p/100*(n-1)).
func exactNearestRank(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n-1)))
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

func TestPercentileWithinErrorBound(t *testing.T) {
	d := NewDist()
	vals := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
		vals = append(vals, float64(i))
	}
	sort.Float64s(vals)
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		want := exactNearestRank(vals, p)
		if got := d.Percentile(p); relErr(got, want) > MaxRelativeError {
			t.Errorf("P%v = %v, want within %.2f%% of %v", p, got, MaxRelativeError*100, want)
		}
	}
	// The extremes are exact.
	if d.Percentile(0) != 1 || d.Percentile(100) != 100 {
		t.Errorf("P0/P100 = %v/%v, want exact 1/100", d.Percentile(0), d.Percentile(100))
	}
}

func TestPercentileEmpty(t *testing.T) {
	d := NewDist()
	if d.Percentile(50) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Error("empty dist should return zeros")
	}
}

func TestPercentileSingle(t *testing.T) {
	d := NewDist()
	d.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if d.Percentile(p) != 42 {
			t.Errorf("P%v of single sample = %v, want 42", p, d.Percentile(p))
		}
	}
}

// Property: every percentile is within the documented relative-error bound
// of the exact nearest-rank value, monotone in p, and inside the sample
// range.
func TestPercentileAgainstReference(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := simclock.NewRNG(seed)
		count := int(n%200) + 2
		d := NewDist()
		vals := make([]float64, count)
		for i := range vals {
			// Span several orders of magnitude, like latencies and watts.
			vals[i] = math.Exp(r.Float64()*12 - 6)
			d.Add(vals[i])
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 3.7 {
			got := d.Percentile(p)
			if got < prev-1e-12 {
				return false // not monotone in p
			}
			prev = got
			if got < vals[0]-1e-12 || got > vals[count-1]+1e-12 {
				return false // outside sample range
			}
			if relErr(got, exactNearestRank(vals, p)) > MaxRelativeError {
				return false // beyond the documented error bound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLateInsertMovesMin(t *testing.T) {
	d := NewDist()
	d.Add(5)
	_ = d.Percentile(50)
	d.Add(1)
	if got := d.Percentile(0); got != 1 {
		t.Errorf("P0 after late insert = %v, want 1", got)
	}
}

func TestMeanMax(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{2, 4, 9} {
		d.Add(v)
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if d.Max() != 9 {
		t.Errorf("Max = %v, want 9", d.Max())
	}
	if d.N() != 3 {
		t.Errorf("N = %v, want 3", d.N())
	}
}

func TestZeroSamples(t *testing.T) {
	d := NewDist()
	d.Add(0)
	d.Add(0)
	d.Add(10)
	if d.Percentile(0) != 0 {
		t.Errorf("P0 = %v, want exact 0", d.Percentile(0))
	}
	if got := d.Percentile(10); got > 1e-8 {
		t.Errorf("P10 = %v, want ~0", got)
	}
	if d.Max() != 10 {
		t.Errorf("Max = %v, want 10", d.Max())
	}
}

func TestSummarize(t *testing.T) {
	d := NewDist()
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	s := d.Summarize()
	if s.P50 < 490 || s.P50 > 510 || s.P99 < 980 || s.P99 > 999 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// Dist.Add must not allocate: the tick loop calls it per request.
func TestDistAddAllocationFree(t *testing.T) {
	d := NewDist()
	v := 0.001
	if avg := testing.AllocsPerRun(1000, func() {
		d.Add(v)
		v *= 1.001
	}); avg != 0 {
		t.Errorf("Dist.Add allocates %v per op, want 0", avg)
	}
}

func TestSeriesAveraging(t *testing.T) {
	s := NewSeries(10)
	s.Observe(1, 100, 1)
	s.Observe(5, 200, 1)
	s.Observe(15, 50, 1)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Time != 0 || pts[0].Value != 150 {
		t.Errorf("bucket 0 = %+v, want (0, 150)", pts[0])
	}
	if pts[1].Time != 10 || pts[1].Value != 50 {
		t.Errorf("bucket 1 = %+v, want (10, 50)", pts[1])
	}
}

func TestSeriesWeighted(t *testing.T) {
	s := NewSeries(10)
	s.Observe(0, 100, 3)
	s.Observe(0, 200, 1)
	if got := s.Points()[0].Value; got != 125 {
		t.Errorf("weighted avg = %v, want 125", got)
	}
	s.Observe(0, 999, 0) // zero weight ignored
	if got := s.Points()[0].Value; got != 125 {
		t.Errorf("zero weight changed avg to %v", got)
	}
}

func TestSeriesAccumulate(t *testing.T) {
	s := NewSeries(60)
	s.Accumulate(10, 5)
	s.Accumulate(20, 7)
	s.Accumulate(70, 1)
	pts := s.Points()
	if pts[0].Value != 12 || pts[1].Value != 1 {
		t.Errorf("accumulated = %v", pts)
	}
	if s.Total() != 13 {
		t.Errorf("total = %v, want 13", s.Total())
	}
}

// Buckets only ever touched by Accumulate(t, 0) must still appear in
// Points (presence means "observed", even at value zero).
func TestSeriesAccumulateZeroMarksBucket(t *testing.T) {
	s := NewSeries(60)
	s.Accumulate(10, 0)
	pts := s.Points()
	if len(pts) != 1 || pts[0].Value != 0 {
		t.Errorf("points = %v, want one zero-valued bucket", pts)
	}
}

// Observations earlier than the anchor bucket and gaps between buckets
// must both round-trip through Points in time order.
func TestSeriesOutOfOrderAndGaps(t *testing.T) {
	s := NewSeries(10)
	s.Observe(50, 5, 1)
	s.Observe(5, 1, 1)   // before the anchor
	s.Observe(200, 2, 1) // far past it
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Time != 0 || pts[0].Value != 1 ||
		pts[1].Time != 50 || pts[1].Value != 5 ||
		pts[2].Time != 200 || pts[2].Value != 2 {
		t.Errorf("points = %v", pts)
	}
}

// Series.Observe must not allocate once the horizon is reserved.
func TestSeriesObserveAllocationFree(t *testing.T) {
	s := NewSeries(60)
	s.Observe(0, 1, 1)
	s.Reserve(100 * 3600)
	tm := 0.0
	if avg := testing.AllocsPerRun(1000, func() {
		s.Observe(tm, 5, 1)
		s.Accumulate(tm, 1)
		tm += 300
	}); avg != 0 {
		t.Errorf("Series.Observe allocates %v per op after Reserve, want 0", avg)
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestTimeAvg(t *testing.T) {
	var a TimeAvg
	a.Set(0, 100)
	a.Set(10, 200)      // 100 W for 10 s
	a.Set(30, 0)        // 200 W for 20 s
	avg := a.Finish(40) // 0 W for 10 s
	want := (100*10 + 200*20 + 0*10) / 40.0
	if math.Abs(avg-want) > 1e-9 {
		t.Errorf("avg = %v, want %v", avg, want)
	}
	if math.Abs(a.Area()-5000) > 1e-9 {
		t.Errorf("area = %v, want 5000", a.Area())
	}
}

func TestTimeAvgNoSamples(t *testing.T) {
	var a TimeAvg
	if got := a.Finish(10); got != 0 {
		t.Errorf("empty TimeAvg avg = %v, want 0", got)
	}
}

func TestTimeAvgOutOfOrderIgnored(t *testing.T) {
	var a TimeAvg
	a.Set(10, 100)
	a.Set(5, 999) // earlier time: no area accrues, value replaces
	avg := a.Finish(15)
	// From t=5 (last set) to 15: value 999 for 10s.
	if math.Abs(avg-999) > 1e-9 {
		t.Errorf("avg = %v", avg)
	}
}
