package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dynamollm/internal/simclock"
)

func TestPercentileExactRanks(t *testing.T) {
	d := NewDist()
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 0.011 {
			t.Errorf("P%v = %v, want ~%v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	d := NewDist()
	if d.Percentile(50) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Error("empty dist should return zeros")
	}
}

func TestPercentileSingle(t *testing.T) {
	d := NewDist()
	d.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if d.Percentile(p) != 42 {
			t.Errorf("P%v of single sample = %v, want 42", p, d.Percentile(p))
		}
	}
}

// Property: percentile agrees with a sort-based reference and is monotone.
func TestPercentileAgainstReference(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := simclock.NewRNG(seed)
		count := int(n%50) + 2
		d := NewDist()
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = r.Float64() * 100
			d.Add(vals[i])
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			got := d.Percentile(p)
			if got < prev-1e-12 {
				return false // not monotone in p
			}
			prev = got
			if got < vals[0]-1e-12 || got > vals[count-1]+1e-12 {
				return false // outside sample range
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	d := NewDist()
	d.Add(5)
	_ = d.Percentile(50)
	d.Add(1)
	if got := d.Percentile(0); got != 1 {
		t.Errorf("P0 after late insert = %v, want 1", got)
	}
}

func TestMeanMax(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{2, 4, 9} {
		d.Add(v)
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if d.Max() != 9 {
		t.Errorf("Max = %v, want 9", d.Max())
	}
	if d.N() != 3 {
		t.Errorf("N = %v, want 3", d.N())
	}
}

func TestSummarize(t *testing.T) {
	d := NewDist()
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	s := d.Summarize()
	if s.P50 < 490 || s.P50 > 510 || s.P99 < 980 || s.P99 > 999 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSeriesAveraging(t *testing.T) {
	s := NewSeries(10)
	s.Observe(1, 100, 1)
	s.Observe(5, 200, 1)
	s.Observe(15, 50, 1)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Time != 0 || pts[0].Value != 150 {
		t.Errorf("bucket 0 = %+v, want (0, 150)", pts[0])
	}
	if pts[1].Time != 10 || pts[1].Value != 50 {
		t.Errorf("bucket 1 = %+v, want (10, 50)", pts[1])
	}
}

func TestSeriesWeighted(t *testing.T) {
	s := NewSeries(10)
	s.Observe(0, 100, 3)
	s.Observe(0, 200, 1)
	if got := s.Points()[0].Value; got != 125 {
		t.Errorf("weighted avg = %v, want 125", got)
	}
	s.Observe(0, 999, 0) // zero weight ignored
	if got := s.Points()[0].Value; got != 125 {
		t.Errorf("zero weight changed avg to %v", got)
	}
}

func TestSeriesAccumulate(t *testing.T) {
	s := NewSeries(60)
	s.Accumulate(10, 5)
	s.Accumulate(20, 7)
	s.Accumulate(70, 1)
	pts := s.Points()
	if pts[0].Value != 12 || pts[1].Value != 1 {
		t.Errorf("accumulated = %v", pts)
	}
	if s.Total() != 13 {
		t.Errorf("total = %v, want 13", s.Total())
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestTimeAvg(t *testing.T) {
	var a TimeAvg
	a.Set(0, 100)
	a.Set(10, 200)      // 100 W for 10 s
	a.Set(30, 0)        // 200 W for 20 s
	avg := a.Finish(40) // 0 W for 10 s
	want := (100*10 + 200*20 + 0*10) / 40.0
	if math.Abs(avg-want) > 1e-9 {
		t.Errorf("avg = %v, want %v", avg, want)
	}
	if math.Abs(a.Area()-5000) > 1e-9 {
		t.Errorf("area = %v, want 5000", a.Area())
	}
}

func TestTimeAvgNoSamples(t *testing.T) {
	var a TimeAvg
	if got := a.Finish(10); got != 0 {
		t.Errorf("empty TimeAvg avg = %v, want 0", got)
	}
}

func TestTimeAvgOutOfOrderIgnored(t *testing.T) {
	var a TimeAvg
	a.Set(10, 100)
	a.Set(5, 999) // earlier time: no area accrues, value replaces
	avg := a.Finish(15)
	// From t=5 (last set) to 15: value 999 for 10s.
	if math.Abs(avg-999) > 1e-9 {
		t.Errorf("avg = %v", avg)
	}
}
