// Package metrics provides the measurement utilities the experiments use:
// streaming percentile estimation over logarithmic-bin histograms,
// time-bucketed series, and weighted time-averages for power accounting.
//
// Both Dist and Series are built for week-scale simulations: Add/Observe
// are O(1) and allocation-free in steady state, and memory is bounded by
// the histogram resolution (Dist) or the simulated horizon (Series), never
// by the sample count.
package metrics

import (
	"fmt"
	"math"
)

// Histogram resolution. Bins are geometric with 2% width over
// [histMin, histMin*histGrowth^histBins); any positive sample therefore
// lands in a bin whose geometric midpoint is within sqrt(histGrowth)-1
// (<1%) of the sample's value. 2200 bins cover 1e-9 .. ~8e9, far beyond
// every latency (seconds) and power (watts) signal the simulator records.
const (
	histGrowth = 1.02
	histMin    = 1e-9
	histBins   = 2200
)

// MaxRelativeError is the documented worst-case relative error of
// Percentile against the sample at the selected rank: half a bin width,
// sqrt(1.02)-1 < 1%.
var MaxRelativeError = math.Sqrt(histGrowth) - 1

var (
	logGrowth    = math.Log(histGrowth)
	invLogGrowth = 1 / math.Log(histGrowth)
)

// Dist collects samples into a fixed-size logarithmic-bin histogram and
// answers percentile queries in O(bins), independent of the sample count.
// The evaluation figures report P50/P90/P99 latencies and powers.
//
// Percentile returns a value within MaxRelativeError (<1%) of the sample
// at the nearest rank. Min, Max, Mean, and N are exact. Samples are
// expected to be non-negative (latencies, watts, joules); values at or
// below histMin share the lowest bin.
type Dist struct {
	counts [histBins]int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// bin maps a sample to its histogram bin.
func bin(v float64) int {
	if v <= histMin {
		return 0
	}
	b := int(math.Log(v/histMin) * invLogGrowth)
	if b >= histBins {
		b = histBins - 1
	}
	return b
}

// binValue returns the geometric midpoint of a bin.
func binValue(b int) float64 {
	return histMin * math.Exp((float64(b)+0.5)*logGrowth)
}

// Add records a sample in O(1) without allocating.
func (d *Dist) Add(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	d.counts[bin(v)]++
}

// N returns the sample count.
func (d *Dist) N() int { return int(d.n) }

// Clone returns an independent copy of the distribution. The histogram is
// a fixed-size array, so a value copy captures everything; the clone and
// the original diverge freely afterwards.
func (d *Dist) Clone() *Dist {
	c := *d
	return &c
}

// Percentile returns the p-th percentile (0 <= p <= 100): the histogram
// bin holding the sample at rank ceil(p/100*(n-1)), evaluated at its
// geometric midpoint and clamped to the exact observed [min, max]. It
// returns 0 for an empty distribution.
func (d *Dist) Percentile(p float64) float64 {
	if d.n == 0 {
		return 0
	}
	if p <= 0 {
		return d.min
	}
	if p >= 100 {
		return d.max
	}
	rank := p / 100 * float64(d.n-1)
	var cum int64
	for b := 0; b < histBins; b++ {
		c := d.counts[b]
		if c == 0 {
			continue
		}
		// Samples in this bin occupy ranks [cum, cum+c-1].
		if float64(cum+c-1) >= rank {
			v := binValue(b)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
		cum += c
	}
	return d.max
}

// Mean returns the arithmetic mean, or 0 when empty. Exact.
func (d *Dist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Max returns the largest sample, or 0 when empty. Exact.
func (d *Dist) Max() float64 {
	if d.n == 0 {
		return 0
	}
	return d.max
}

// Summary is the P50/P90/P99 triple the paper's figures report.
type Summary struct {
	P50, P90, P99 float64
}

// Summarize returns the standard percentile triple.
func (d *Dist) Summarize() Summary {
	return Summary{
		P50: d.Percentile(50),
		P90: d.Percentile(90),
		P99: d.Percentile(99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("p50=%.4g p90=%.4g p99=%.4g", s.P50, s.P90, s.P99)
}

// --- Time series -------------------------------------------------------------

// Series accumulates (time, value) observations into fixed-width buckets,
// averaging within each bucket. Used for the "X over time" figures
// (frequency, GPU counts, energy per interval, carbon).
//
// Buckets are a dense slice anchored at the first observed bucket, so
// Observe/Accumulate are O(1) and allocation-free once the horizon has
// been reached (or pre-sized with Reserve).
type Series struct {
	Width float64 // bucket width in seconds

	base    int // bucket index of slot 0
	started bool
	sums    []float64
	counts  []float64
	touched []bool
}

// NewSeries returns a series with the given bucket width in seconds.
func NewSeries(width float64) *Series {
	if width <= 0 {
		panic("metrics: non-positive bucket width")
	}
	return &Series{Width: width}
}

// slot resolves the dense index for time t, growing the bucket storage as
// needed. Observations earlier than the first observed bucket shift the
// anchor (rare: simulations advance monotonically).
func (s *Series) slot(t float64) int {
	b := int(math.Floor(t / s.Width))
	if !s.started {
		s.base = b
		s.started = true
	}
	i := b - s.base
	if i < 0 {
		shift := -i
		s.sums = prepend(s.sums, shift)
		s.counts = prepend(s.counts, shift)
		s.touched = prependBool(s.touched, shift)
		s.base = b
		i = 0
	}
	if i >= len(s.sums) {
		s.grow(i + 1)
	}
	return i
}

func prepend(xs []float64, shift int) []float64 {
	out := make([]float64, len(xs)+shift)
	copy(out[shift:], xs)
	return out
}

func prependBool(xs []bool, shift int) []bool {
	out := make([]bool, len(xs)+shift)
	copy(out[shift:], xs)
	return out
}

// grow extends the bucket storage to at least n slots.
func (s *Series) grow(n int) {
	if n <= len(s.sums) {
		return
	}
	if n <= cap(s.sums) {
		s.sums = s.sums[:n]
		s.counts = s.counts[:n]
		s.touched = s.touched[:n]
		return
	}
	c := 2 * cap(s.sums)
	if c < n {
		c = n
	}
	sums := make([]float64, n, c)
	copy(sums, s.sums)
	counts := make([]float64, n, c)
	copy(counts, s.counts)
	touched := make([]bool, n, c)
	copy(touched, s.touched)
	s.sums, s.counts, s.touched = sums, counts, touched
}

// Reserve pre-sizes the bucket storage to cover [0, tMax] (or
// [anchor, tMax] if observations have already arrived), so subsequent
// Observe/Accumulate calls within the horizon never allocate. A series
// reserved before any observation is anchored at t=0, matching the
// simulator's non-negative clock; negative times still work via the
// prepend path.
func (s *Series) Reserve(tMax float64) {
	if !s.started {
		s.base = 0
		s.started = true
	}
	if i := int(math.Floor(tMax/s.Width)) - s.base; i >= len(s.sums) {
		s.grow(i + 1)
	}
}

// Observe records value at time t (seconds), weighted by w.
func (s *Series) Observe(t, value, w float64) {
	if w <= 0 {
		return
	}
	i := s.slot(t)
	s.sums[i] += value * w
	s.counts[i] += w
	s.touched[i] = true
}

// Accumulate adds value into the bucket at time t without averaging
// (for additive quantities like energy per interval).
func (s *Series) Accumulate(t, value float64) {
	i := s.slot(t)
	s.sums[i] += value
	s.touched[i] = true
}

// Clone returns an independent copy of the series: bucket storage is
// deep-copied so later observations on either side never alias.
func (s *Series) Clone() *Series {
	c := *s
	c.sums = append([]float64(nil), s.sums...)
	c.counts = append([]float64(nil), s.counts...)
	c.touched = append([]bool(nil), s.touched...)
	return &c
}

// Point is one bucketed observation.
type Point struct {
	Time  float64 // bucket start, seconds
	Value float64
}

// Points returns the bucketed series in time order. Averaged buckets divide
// by weight; accumulated buckets report raw sums.
func (s *Series) Points() []Point {
	pts := make([]Point, 0, len(s.sums))
	for i, ok := range s.touched {
		if !ok {
			continue
		}
		v := s.sums[i]
		if c := s.counts[i]; c > 0 {
			v /= c
		}
		pts = append(pts, Point{Time: float64(s.base+i) * s.Width, Value: v})
	}
	return pts
}

// Total returns the sum over all buckets of the raw sums (meaningful for
// accumulated series).
func (s *Series) Total() float64 {
	t := 0.0
	for _, v := range s.sums {
		t += v
	}
	return t
}

// --- Time-weighted average ---------------------------------------------------

// TimeAvg tracks the time-weighted average of a piecewise-constant signal
// (e.g., instantaneous power, GPU count).
type TimeAvg struct {
	lastT   float64
	lastV   float64
	area    float64
	elapsed float64
	started bool
}

// Set records that the signal takes value v from time t onward.
func (a *TimeAvg) Set(t, v float64) {
	if a.started && t > a.lastT {
		a.area += a.lastV * (t - a.lastT)
		a.elapsed += t - a.lastT
	}
	a.lastT, a.lastV, a.started = t, v, true
}

// Finish closes the signal at time t and returns the time-weighted average.
func (a *TimeAvg) Finish(t float64) float64 {
	a.Set(t, a.lastV)
	if a.elapsed == 0 {
		return a.lastV
	}
	return a.area / a.elapsed
}

// Area returns the integral so far (e.g., joules if the signal is watts).
func (a *TimeAvg) Area() float64 { return a.area }
