// Package metrics provides the measurement utilities the experiments use:
// exact percentile estimation over recorded samples, time-bucketed series,
// and weighted time-averages for power accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Dist collects samples and answers percentile queries exactly (sorting on
// demand). The evaluation figures report P50/P90/P99 latencies and powers.
type Dist struct {
	samples []float64
	sorted  bool
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Add records a sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.samples) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty
// distribution.
func (d *Dist) Percentile(p float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Mean returns the arithmetic mean, or 0 when empty.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Max returns the largest sample, or 0 when empty.
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := d.samples[0]
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Summary is the P50/P90/P99 triple the paper's figures report.
type Summary struct {
	P50, P90, P99 float64
}

// Summarize returns the standard percentile triple.
func (d *Dist) Summarize() Summary {
	return Summary{
		P50: d.Percentile(50),
		P90: d.Percentile(90),
		P99: d.Percentile(99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("p50=%.4g p90=%.4g p99=%.4g", s.P50, s.P90, s.P99)
}

// --- Time series -------------------------------------------------------------

// Series accumulates (time, value) observations into fixed-width buckets,
// averaging within each bucket. Used for the "X over time" figures
// (frequency, GPU counts, energy per interval, carbon).
type Series struct {
	Width  float64 // bucket width in seconds
	sums   map[int]float64
	counts map[int]float64
}

// NewSeries returns a series with the given bucket width in seconds.
func NewSeries(width float64) *Series {
	if width <= 0 {
		panic("metrics: non-positive bucket width")
	}
	return &Series{Width: width, sums: map[int]float64{}, counts: map[int]float64{}}
}

// Observe records value at time t (seconds), weighted by w.
func (s *Series) Observe(t, value, w float64) {
	if w <= 0 {
		return
	}
	b := int(t / s.Width)
	s.sums[b] += value * w
	s.counts[b] += w
}

// Accumulate adds value into the bucket at time t without averaging
// (for additive quantities like energy per interval).
func (s *Series) Accumulate(t, value float64) {
	b := int(t / s.Width)
	s.sums[b] += value
	if _, ok := s.counts[b]; !ok {
		s.counts[b] = 0
	}
}

// Point is one bucketed observation.
type Point struct {
	Time  float64 // bucket start, seconds
	Value float64
}

// Points returns the bucketed series in time order. Averaged buckets divide
// by weight; accumulated buckets report raw sums.
func (s *Series) Points() []Point {
	keys := make([]int, 0, len(s.sums))
	for k := range s.sums {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pts := make([]Point, 0, len(keys))
	for _, k := range keys {
		v := s.sums[k]
		if c := s.counts[k]; c > 0 {
			v /= c
		}
		pts = append(pts, Point{Time: float64(k) * s.Width, Value: v})
	}
	return pts
}

// Total returns the sum over all buckets of the raw sums (meaningful for
// accumulated series).
func (s *Series) Total() float64 {
	t := 0.0
	for _, v := range s.sums {
		t += v
	}
	return t
}

// --- Time-weighted average ---------------------------------------------------

// TimeAvg tracks the time-weighted average of a piecewise-constant signal
// (e.g., instantaneous power, GPU count).
type TimeAvg struct {
	lastT   float64
	lastV   float64
	area    float64
	elapsed float64
	started bool
}

// Set records that the signal takes value v from time t onward.
func (a *TimeAvg) Set(t, v float64) {
	if a.started && t > a.lastT {
		a.area += a.lastV * (t - a.lastT)
		a.elapsed += t - a.lastT
	}
	a.lastT, a.lastV, a.started = t, v, true
}

// Finish closes the signal at time t and returns the time-weighted average.
func (a *TimeAvg) Finish(t float64) float64 {
	a.Set(t, a.lastV)
	if a.elapsed == 0 {
		return a.lastV
	}
	return a.area / a.elapsed
}

// Area returns the integral so far (e.g., joules if the signal is watts).
func (a *TimeAvg) Area() float64 { return a.area }
