package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLadder(t *testing.T) {
	fs := Ladder()
	if fs[0] != MinFreq {
		t.Errorf("ladder starts at %v, want %v", fs[0], MinFreq)
	}
	if fs[len(fs)-1] != MaxFreq {
		t.Errorf("ladder ends at %v, want %v", fs[len(fs)-1], MaxFreq)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("ladder not increasing: %v", fs)
		}
	}
	if len(CoarseLadder()) != 4 {
		t.Errorf("coarse ladder size = %d, want 4", len(CoarseLadder()))
	}
}

func TestNearest(t *testing.T) {
	cases := []struct{ in, want Freq }{
		{790, 800}, {800, 800}, {899, 800}, {901, 1000},
		{1975, 1980}, {2500, 1980}, {100, 800},
	}
	for _, c := range cases {
		if got := Nearest(c.in); got != c.want {
			t.Errorf("Nearest(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPowerMonotonicInUtil(t *testing.T) {
	f := func(seed int64) bool {
		for _, fr := range Ladder() {
			prev := -1.0
			for u := 0.0; u <= 1.0; u += 0.1 {
				p := H100.Power(fr, u)
				if p < prev {
					return false
				}
				prev = p
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotonicInFreq(t *testing.T) {
	for u := 0.1; u <= 1.0; u += 0.1 {
		prev := -1.0
		for _, fr := range Ladder() {
			p := H100.Power(fr, u)
			if p <= prev {
				t.Fatalf("power not increasing in frequency at util %v", u)
			}
			prev = p
		}
	}
}

func TestPowerEnvelope(t *testing.T) {
	idle := H100.Power(MinFreq, 0)
	if idle != H100.IdlePower {
		t.Errorf("idle power = %v, want %v", idle, H100.IdlePower)
	}
	tdp := H100.Power(MaxFreq, 1)
	if tdp < 650 || tdp > 720 {
		t.Errorf("peak power = %v W, want ~700 W (H100 board)", tdp)
	}
	// Power at clamped utilization equals power at the bound.
	if H100.Power(MaxFreq, 2) != H100.Power(MaxFreq, 1) {
		t.Error("utilization not clamped above 1")
	}
	if H100.Power(MaxFreq, -1) != H100.Power(MaxFreq, 0) {
		t.Error("utilization not clamped below 0")
	}
}

// TestFrequencyEnergyTradeoff captures the physics that makes DVFS worth it:
// halving the clock must cut busy power by much more than 2x (superlinear
// dynamic power), so that even with ~2x longer execution the energy drops.
func TestFrequencyEnergyTradeoff(t *testing.T) {
	pLow := H100.Power(800, 1) - H100.IdlePower
	pHigh := H100.Power(1980, 1) - H100.IdlePower
	ratio := pHigh / pLow
	slowdown := 1980.0 / 800.0
	if ratio <= slowdown {
		t.Errorf("busy power ratio %v must exceed slowdown %v for DVFS savings", ratio, slowdown)
	}
}

func TestTransferTime(t *testing.T) {
	// 1/8 of Llama2-70B FP16 weights: 70e9*2/8 = 17.5 GB at 300 GB/s
	// is ~58 ms — the paper's T ≈ 50 ms unit (§IV-C).
	tt := TransferTime(70e9 * 2 / 8)
	if tt < 0.04 || tt > 0.08 {
		t.Errorf("T = %v s, want ~0.05-0.06 s", tt)
	}
	if TransferTime(0) != 0 || TransferTime(-5) != 0 {
		t.Error("non-positive transfers must take zero time")
	}
}

func TestFreqControllerElidesNoOps(t *testing.T) {
	fc := NewFreqController(false)
	if d := fc.Set(MaxFreq); d != 0 {
		t.Errorf("setting current freq stalled %v, want 0", d)
	}
	if d := fc.Set(800); d != SlowSetOverhead {
		t.Errorf("slow set stall = %v, want %v", d, SlowSetOverhead)
	}
	if fc.Current() != 800 {
		t.Errorf("current = %v, want 800", fc.Current())
	}
	if fc.Sets() != 1 {
		t.Errorf("sets = %d, want 1", fc.Sets())
	}
}

func TestFreqControllerFastPath(t *testing.T) {
	fc := NewFreqController(true)
	if d := fc.Set(1200); d != FastSetOverhead {
		t.Errorf("fast set stall = %v, want %v", d, FastSetOverhead)
	}
	if FastSetOverhead >= SlowSetOverhead {
		t.Error("fast path must be faster than slow path")
	}
}

func TestForceSetAlwaysStalls(t *testing.T) {
	fc := NewFreqController(false)
	total := 0.0
	for i := 0; i < 10; i++ {
		total += fc.ForceSet(MaxFreq)
	}
	if fc.Sets() != 10 {
		t.Errorf("sets = %d, want 10", fc.Sets())
	}
	if math.Abs(total-10*SlowSetOverhead) > 1e-12 {
		t.Errorf("stall = %v, want %v", total, 10*SlowSetOverhead)
	}
	if fc.StallTime() != total {
		t.Errorf("StallTime = %v, want %v", fc.StallTime(), total)
	}
}

func TestPowerShared(t *testing.T) {
	if got := H100.PowerShared(MaxFreq, 0, 1); got != H100.IdlePower {
		t.Errorf("idle shared power = %v, want %v", got, H100.IdlePower)
	}
	if got, want := H100.PowerShared(MaxFreq, 1, 1), H100.Power(MaxFreq, 1); got != want {
		t.Errorf("fully busy shared power = %v, want %v", got, want)
	}
	half := H100.PowerShared(MaxFreq, 0.5, 1)
	want := 0.5*H100.Power(MaxFreq, 1) + 0.5*H100.IdlePower
	if half != want {
		t.Errorf("half busy power = %v, want %v", half, want)
	}
	if got := H100.PowerShared(MaxFreq, 2, 1); got != H100.Power(MaxFreq, 1) {
		t.Error("busyFrac not clamped")
	}
}

func TestVoltageKnee(t *testing.T) {
	// Below the knee the voltage is pinned: busy power at 800 MHz and at
	// the knee frequency differ only by the dynamic fn term.
	knee := Freq(H100.VKnee * float64(MaxFreq))
	pLow := H100.Power(800, 0.001)
	pKnee := H100.Power(knee, 0.001)
	if math.Abs(pLow-pKnee) > 1.0 {
		t.Errorf("near-zero-util power below knee: %v vs %v, want ~equal", pLow, pKnee)
	}
}

// TestEnergyOptimalClockNearKnee pins the headline DVFS behaviour: for a
// fixed amount of compute-bound work (time ~ 1/fn at util 1), energy is
// minimized near the 1.2 GHz knee, not at the lowest or highest clock —
// the shape all of the paper's heatmap rows share.
func TestEnergyOptimalClockNearKnee(t *testing.T) {
	energyAt := func(f Freq) float64 {
		busy := H100.Power(f, 1) - H100.IdlePower
		return busy / FracOfMax(f) // power x (1/fn) time
	}
	e08, e12, e16, e20 := energyAt(800), energyAt(1200), energyAt(1600), energyAt(MaxFreq)
	if !(e12 < e08 && e12 < e16 && e16 < e20) {
		t.Errorf("energy curve not U-shaped with min at 1.2 GHz: 0.8=%v 1.2=%v 1.6=%v 2.0=%v",
			e08, e12, e16, e20)
	}
}

func TestSetSnapsToLadder(t *testing.T) {
	fc := NewFreqController(true)
	fc.Set(1234)
	if fc.Current() != 1200 {
		t.Errorf("current = %v, want snapped 1200", fc.Current())
	}
}
