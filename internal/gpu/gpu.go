// Package gpu models the hardware substrate of a DynamoLLM cluster: NVIDIA
// H100 GPUs with a DVFS frequency ladder, a calibrated power model, the
// nvidia-smi frequency-setting path (slow syscall path vs. the paper's
// resident-monitor fast path, §IV-C), and the intra-server NVLink fabric used
// for re-sharding transfers.
package gpu

import (
	"fmt"
	"math"
)

// Freq is a GPU core clock in MHz.
type Freq float64

// The H100 DVFS ladder the paper profiles: 800–1980 MHz with a 200 MHz step
// (§IV-A). 1980 MHz is the boost ceiling used by the baselines.
const (
	MinFreq  Freq = 800
	MaxFreq  Freq = 1980
	FreqStep Freq = 200
)

// ladder is the shared profiled grid; Ladder and Nearest sit on every
// controller's per-tick path, so neither may allocate.
var ladder = func() []Freq {
	var fs []Freq
	for f := MinFreq; f < MaxFreq; f += FreqStep {
		fs = append(fs, f)
	}
	return append(fs, MaxFreq)
}()

// Ladder returns the profiled frequency grid: 800, 1000, …, 1800, 1980 MHz.
// The slice is shared — callers must not modify it.
func Ladder() []Freq { return ladder }

// CoarseLadder returns the four frequencies the paper's characterization
// tables use: 0.8, 1.2, 1.6, 2.0 GHz (2.0 is the 1980 MHz boost bin).
func CoarseLadder() []Freq { return []Freq{800, 1200, 1600, MaxFreq} }

// Nearest snaps an arbitrary frequency onto the ladder. Ladder values
// (the common case on the hot path) return immediately.
func Nearest(f Freq) Freq {
	best, bestD := MinFreq, math.Inf(1)
	for _, g := range ladder {
		if g == f {
			return f
		}
		if d := math.Abs(float64(g - f)); d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

func (f Freq) String() string {
	return fmt.Sprintf("%.1fGHz", float64(f)/1000)
}

// Spec describes one GPU SKU's power envelope. Power in watts. The model
// has a DVFS voltage curve with a Vmin floor, so both directions of the
// paper's energy-vs-frequency U-shape emerge (Tables I-III):
//
//	vn(fn)  = max(VBase + VSlope*VKnee, VBase + VSlope*fn)   (vn(1) = 1)
//	P       = Idle + busy*(Floor + Leak*vn^2 + Dyn*util*fn*vn^2)
//
// Above the knee, voltage scales with frequency and dynamic power grows
// ~f^3, so high clocks cost energy. Below the knee the voltage regulator
// hits Vmin: leakage power (Leak*vn^2) stops shrinking while execution
// keeps stretching, so energy per operation rises again. The energy-optimal
// clock therefore sits near the knee (~1.2 GHz on H100), exactly where the
// paper's heatmaps bottom out.
type Spec struct {
	Name string
	// IdlePower is drawn whenever the GPU is powered on, independent of
	// frequency and load (HBM refresh, fans share, leakage at idle rail).
	IdlePower float64
	// BusyFloorPower is drawn while any kernel is resident, independent
	// of core clock and voltage: HBM access energy, memory controllers,
	// NVLink PHYs.
	BusyFloorPower float64
	// LeakPower is the voltage-dependent static power while busy (SM
	// leakage and clock tree), scaling with vn^2.
	LeakPower float64
	// MaxDynPower is the switching power at 100% SM utilization at max
	// clock and voltage, scaling with fn*vn^2. The sum of all four terms
	// is the board TDP.
	MaxDynPower float64
	// VBase and VSlope define the normalized voltage curve vn = VBase +
	// VSlope*fn (VBase+VSlope = 1 so vn(1) = 1).
	VBase, VSlope float64
	// VKnee is the normalized frequency below which voltage is pinned at
	// Vmin (the DVFS knee).
	VKnee float64
}

// H100 is the SKU used throughout the paper (DGX H100, 700 W boards).
var H100 = Spec{
	Name:           "h100-sxm",
	IdlePower:      85,
	BusyFloorPower: 25,
	LeakPower:      110,
	MaxDynPower:    480,
	VBase:          0.35,
	VSlope:         0.65,
	VKnee:          0.606,
}

// FracOfMax returns f normalized to the boost ceiling.
func FracOfMax(f Freq) float64 { return float64(f) / float64(MaxFreq) }

// voltage returns the normalized supply voltage at normalized frequency fn.
func (s Spec) voltage(fn float64) float64 {
	v := s.VBase + s.VSlope*fn
	vmin := s.VBase + s.VSlope*s.VKnee
	return math.Max(v, vmin)
}

// Power returns the instantaneous board power in watts at the given clock
// and utilization (0-1). util is the fraction of time SMs are executing;
// util == 0 means fully idle (no resident kernels).
func (s Spec) Power(f Freq, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	fn := FracOfMax(f)
	p := s.IdlePower
	if util > 0 {
		v2 := s.voltage(fn)
		v2 *= v2
		p += s.BusyFloorPower
		p += s.LeakPower * v2
		p += s.MaxDynPower * util * fn * v2
	}
	return p
}

// PowerShared returns board power when the GPU is busy for busyFrac of the
// accounting interval with SM utilization util while busy. This is the form
// the fluid simulator integrates.
func (s Spec) PowerShared(f Freq, busyFrac, util float64) float64 {
	if busyFrac <= 0 {
		return s.IdlePower
	}
	if busyFrac > 1 {
		busyFrac = 1
	}
	busy := s.Power(f, util)
	return busyFrac*busy + (1-busyFrac)*s.IdlePower
}

// ServerGPUs is the GPU count of one DGX H100 server.
const ServerGPUs = 8

// NVLinkBandwidth is the per-direction inter-GPU bandwidth used for weight
// transfers during re-sharding, in bytes/second (§IV-C uses 300 GB/s).
const NVLinkBandwidth = 300e9

// TransferTime returns the time in seconds to move bytes between two GPUs
// over NVLink, assuming the transfer runs at full link bandwidth (transfers
// between distinct pairs proceed in parallel).
func TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / NVLinkBandwidth
}

// --- Frequency controller ---------------------------------------------------

// Overheads of applying a frequency change (§III-C): invoking nvidia-smi,
// driver syscalls, and firmware interaction cost 50–80 ms on the default
// path. The paper's optimization keeps the management interface resident and
// runs privileged, cutting the software portion.
const (
	// SlowSetOverhead is the default nvidia-smi invocation path, seconds.
	SlowSetOverhead = 0.065
	// FastSetOverhead is the resident-monitor privileged path, seconds.
	// Only the firmware interaction remains.
	FastSetOverhead = 0.004
)

// FreqController models per-GPU clock management. Setting a frequency stalls
// inference for the configured overhead; the paper shows this matters when
// done naively on every iteration (Fig. 3).
type FreqController struct {
	cur      Freq
	resident bool // resident monitor + privileged mode fast path
	sets     int
	stall    float64 // accumulated stall seconds
}

// NewFreqController returns a controller at MaxFreq. resident selects the
// optimized fast path from §IV-C.
func NewFreqController(resident bool) *FreqController {
	return &FreqController{cur: MaxFreq, resident: resident}
}

// Current returns the applied clock.
func (fc *FreqController) Current() Freq { return fc.cur }

// Clone returns an independent copy of the controller (all fields are
// plain value state).
func (fc *FreqController) Clone() *FreqController {
	c := *fc
	return &c
}

// Sets returns how many frequency changes were applied.
func (fc *FreqController) Sets() int { return fc.sets }

// StallTime returns the total inference stall caused by frequency changes,
// in seconds.
func (fc *FreqController) StallTime() float64 { return fc.stall }

// Set applies a new clock and returns the stall duration this change imposes
// on the colocated inference engine. Setting the current frequency is free:
// the controller elides the call.
func (fc *FreqController) Set(f Freq) float64 {
	f = Nearest(f)
	if f == fc.cur {
		return 0
	}
	fc.cur = f
	fc.sets++
	d := SlowSetOverhead
	if fc.resident {
		d = FastSetOverhead
	}
	fc.stall += d
	return d
}

// ForceSet applies the clock even if unchanged, modeling naive managers that
// re-issue nvidia-smi every iteration (the SwitchFreq series of Fig. 3).
func (fc *FreqController) ForceSet(f Freq) float64 {
	fc.cur = Nearest(f)
	fc.sets++
	d := SlowSetOverhead
	if fc.resident {
		d = FastSetOverhead
	}
	fc.stall += d
	return d
}
