package serve

import (
	"sync"
	"testing"
	"time"

	"dynamollm/internal/core"
	"dynamollm/internal/profile"
	"dynamollm/internal/scenario"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// fakeClock is an injectable wall clock so tests control virtual time
// deterministically (no sleeping, no pacer goroutine).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Shared profile repository: building the model profile is the expensive
// part and is identical for every test.
var (
	testRepoOnce sync.Once
	testRepo     *profile.Repository
)

func sharedRepo() *profile.Repository {
	testRepoOnce.Do(func() { testRepo = profile.NewRepository(nil) })
	return testRepo
}

// testTrace builds n arrivals spaced evenly, starting at `spacing`.
func testTrace(n int, spacing float64) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = trace.Entry{At: simclock.Time(float64(i+1) * spacing), InputTokens: 128, OutputTokens: 16}
	}
	return tr
}

// testSession builds an unstarted session on a fake clock; tests drive it
// with clock.advance + session.Advance (or Stats, which advances).
func testSession(t *testing.T, f core.Fidelity, tr trace.Trace, loop bool, speed float64) (*Session, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	opts := core.SinglePool()
	opts.Seed = 7
	opts.Fidelity = f
	s := New(Config{
		Name:      "singlepool",
		Opts:      opts,
		Trace:     tr,
		Speed:     speed,
		Loop:      loop,
		Repo:      sharedRepo(),
		WallClock: clock.now,
		Logf:      t.Logf,
	})
	return s, clock
}

// TestSessionIncremental pins the tentpole property at the session level:
// a query with no elapsed wall time advances zero ticks, and a query
// after dt advances exactly dt*speed worth of ticks — never the full
// history (the old dynamoserve re-simulated everything per query).
func TestSessionIncremental(t *testing.T) {
	s, clock := testSession(t, core.FidelityFluid, testTrace(10, 5), false, 60)
	if got := s.Advance(); got != 0 {
		t.Errorf("advance with no elapsed wall time ran %d ticks, want 0", got)
	}
	clock.advance(time.Second) // 60 virtual s = 12 ticks of 5 s
	if got := s.Advance(); got != 12 {
		t.Errorf("1 s wall at speed 60 ran %d ticks, want 12", got)
	}
	if got := s.Advance(); got != 0 {
		t.Errorf("repeat advance ran %d ticks, want 0", got)
	}
	clock.advance(500 * time.Millisecond) // 30 virtual s = 6 ticks
	if got := s.Advance(); got != 6 {
		t.Errorf("0.5 s wall ran %d ticks, want 6", got)
	}
}

// TestSessionFreshArrivalStamp is the stale-clock regression test: the
// old dynamoserve stamped injections with the virtual time of the *last*
// /stats call; the session must stamp them with the virtual time at
// receipt.
func TestSessionFreshArrivalStamp(t *testing.T) {
	s, clock := testSession(t, core.FidelityFluid, testTrace(10, 5), false, 60)
	clock.advance(10 * time.Second)
	s.Stats() // the old server's clock froze here, at virtual 600
	clock.advance(10 * time.Second)
	// No query in between: virtual now is 1200.
	acc, _, err := s.Inject(128, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if acc.At != 1200 {
		t.Errorf("injection stamped at virtual %v, want 1200 (virtual time at receipt)", acc.At)
	}
}

// TestSessionCompletion (event fidelity): an injected request resolves
// with streamed token events and a completion carrying real TTFT/TBT.
func TestSessionCompletion(t *testing.T) {
	s, clock := testSession(t, core.FidelityEvent, nil, false, 60)
	acc, w, err := s.Inject(128, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tag == 0 || w == nil {
		t.Fatalf("wait injection returned tag %d, waiter %v", acc.Tag, w)
	}
	clock.advance(2 * time.Second) // 120 virtual s: plenty to serve 16 tokens
	s.Advance()

	var done Completion
	select {
	case done = <-w.Done:
	default:
		t.Fatal("no completion after advancing past the request's service time")
	}
	if done.Tag != acc.Tag || done.Squashed {
		t.Fatalf("completion %+v, want tag %d unsquashed", done, acc.Tag)
	}
	if done.TTFT <= 0 || done.TBT <= 0 {
		t.Errorf("completion lacks latencies: %+v", done)
	}
	tokens := 0
	for range w.Tokens {
		tokens++
	}
	if tokens != 16 {
		t.Errorf("received %d token events, want 16", tokens)
	}
	st := s.Stats()
	if st.Completed != 1 || st.Inflight != 0 {
		t.Errorf("stats after completion: %+v", st)
	}
}

// TestSessionLoop: with Loop set, the base trace replays past its horizon
// so background load never dries up (the horizon-freeze bugfix).
func TestSessionLoop(t *testing.T) {
	base := testTrace(6, 10) // arrivals at 10..60, horizon 60
	s, clock := testSession(t, core.FidelityFluid, base, true, 60)
	clock.advance(5 * time.Second) // virtual 300 = 5 horizons
	s.Advance()
	st := s.Stats()
	if st.TraceLoops < 3 {
		t.Errorf("trace_loops = %d, want >= 3 after 5 horizons", st.TraceLoops)
	}
	if st.Requests < 3*len(base) {
		t.Errorf("requests = %d, want >= %d (looped base arrivals)", st.Requests, 3*len(base))
	}
	if st.HorizonReached {
		t.Error("looping session reported horizon_reached")
	}
}

// TestSessionHorizonReached: without Loop, the session keeps advancing
// past the base horizon (no frozen clock), reports the transition, and
// still accepts injections.
func TestSessionHorizonReached(t *testing.T) {
	base := testTrace(6, 10)
	s, clock := testSession(t, core.FidelityFluid, base, false, 60)
	clock.advance(5 * time.Second)
	s.Advance()
	st := s.Stats()
	if !st.HorizonReached {
		t.Error("horizon_reached not reported after passing the base horizon")
	}
	if st.VirtualSeconds < 295 {
		t.Errorf("virtual clock froze at %v, want ~300 (the old 3600-cap bug class)", st.VirtualSeconds)
	}
	if st.Requests != len(base) {
		t.Errorf("requests = %d, want exactly the %d base arrivals", st.Requests, len(base))
	}
	if _, _, err := s.Inject(128, 16, false); err != nil {
		t.Errorf("injection after horizon rejected: %v", err)
	}
}

// TestSessionEvents: live runtime events fire through the scenario
// timeline machinery into the tick hook.
func TestSessionEvents(t *testing.T) {
	s, clock := testSession(t, core.FidelityFluid, testTrace(20, 5), false, 60)
	clock.advance(time.Second)
	s.Advance()
	if _, err := s.InjectEvents([]scenario.Event{
		{Kind: scenario.Outage, Servers: 2},
		{Kind: scenario.Price, PriceMult: 3, DurationHours: 1},
	}); err != nil {
		t.Fatal(err)
	}
	clock.advance(time.Second)
	s.Advance()
	st := s.Stats()
	if st.Outages < 2 {
		t.Errorf("outages = %d, want >= 2 after the injected outage", st.Outages)
	}
	if st.PriceMult != 3 {
		t.Errorf("price_mult = %v, want 3 during the injected surge", st.PriceMult)
	}

	// Trace-level kinds cannot be injected live.
	if _, err := s.InjectEvents([]scenario.Event{{Kind: scenario.Spike, RateMult: 2, DurationHours: 1}}); err == nil {
		t.Error("spike event accepted for live injection")
	}
	// Invalid runtime events are rejected whole.
	if _, err := s.InjectEvents([]scenario.Event{{Kind: scenario.Outage}}); err == nil {
		t.Error("outage without servers accepted")
	}
}

// TestSessionCloseDrains: Close serves pending injected arrivals, drains
// the engines, resolves every waiter, and rejects further work.
func TestSessionCloseDrains(t *testing.T) {
	s, clock := testSession(t, core.FidelityEvent, nil, false, 60)
	clock.advance(time.Second)
	_, w, err := s.Inject(128, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	// Close immediately: the arrival is still pending in the trace.
	_, drained := s.Close()
	if drained != 1 {
		t.Errorf("drained = %d, want 1", drained)
	}
	select {
	case done := <-w.Done:
		if done.Squashed {
			t.Errorf("drained request reported squashed: %+v (engines should run it to completion)", done)
		}
	default:
		t.Fatal("waiter unresolved after Close")
	}
	if _, _, err := s.Inject(128, 16, false); err == nil {
		t.Error("injection accepted after Close")
	}
	// Idempotent.
	if _, d := s.Close(); d != 0 {
		t.Errorf("second Close drained %d", d)
	}
}

// TestSessionWindowsCompose: price windows posted in separate /events
// calls compose exactly like windows inside one scenario — when a
// later-posted window ends, the earlier still-open window's value is
// restored (not clobbered to 1), and only after every window closes does
// the multiplier return to nominal.
func TestSessionWindowsCompose(t *testing.T) {
	// speed 3600: one wall second is one virtual hour.
	s, clock := testSession(t, core.FidelityFluid, testTrace(10, 5), false, 3600)
	if _, err := s.InjectEvents([]scenario.Event{{Kind: scenario.Price, PriceMult: 5, DurationHours: 2}}); err != nil {
		t.Fatal(err)
	}
	clock.advance(500 * time.Millisecond) // t = 0.5 h
	s.Advance()
	if _, err := s.InjectEvents([]scenario.Event{{Kind: scenario.Price, PriceMult: 3, DurationHours: 0.5}}); err != nil {
		t.Fatal(err)
	}
	clock.advance(100 * time.Millisecond) // t = 0.6 h: both open, B started later
	if st := s.Stats(); st.PriceMult != 3 {
		t.Errorf("price at 0.6 h = %v, want 3 (most recently started window)", st.PriceMult)
	}
	clock.advance(600 * time.Millisecond) // t = 1.2 h: B ended, A still open
	if st := s.Stats(); st.PriceMult != 5 {
		t.Errorf("price at 1.2 h = %v, want 5 (A must survive B's end)", st.PriceMult)
	}
	clock.advance(1100 * time.Millisecond) // t = 2.3 h: all windows closed
	if st := s.Stats(); st.PriceMult != 1 {
		t.Errorf("price at 2.3 h = %v, want 1 (nominal after the last window)", st.PriceMult)
	}
}

// TestSessionLoopWarmLoad: a looping session with no caller-supplied warm
// curve warms the predictor on the base trace's own template, wrapped at
// the replay period — expected load past the first horizon must match the
// first window, never drop to zero.
func TestSessionLoopWarmLoad(t *testing.T) {
	base := testTrace(6, 10)
	s, _ := testSession(t, core.FidelityFluid, base, true, 60)
	warm := s.live.Options().WarmLoad
	if warm == nil {
		t.Fatal("looping session left WarmLoad nil")
	}
	cls := workload.Classify(128, 16)
	first := warm(5, cls)
	if first <= 0 {
		t.Fatalf("warm curve is zero inside the base window")
	}
	if wrapped := warm(5+s.baseHorizon, cls); wrapped != first {
		t.Errorf("warm(t+period) = %v, want %v (curve must wrap at the replay period)", wrapped, first)
	}
}
