package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynamollm/internal/core"
)

func testHandler(t *testing.T, f core.Fidelity) (*Handler, *fakeClock) {
	t.Helper()
	s, clock := testSession(t, f, testTrace(10, 5), false, 60)
	t.Cleanup(func() { s.Close() })
	return NewHandler(s, 10*time.Second), clock
}

func do(h http.Handler, method, target, body string, header ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestHTTPRequestValidation: malformed JSON and non-positive token counts
// are rejected with 400 before touching the simulation.
func TestHTTPRequestValidation(t *testing.T) {
	h, _ := testHandler(t, core.FidelityFluid)
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"input_tokens": 12`},
		{"unknown field", `{"input_tokens":12,"output_tokens":9,"bogus":1}`},
		{"zero input", `{"input_tokens":0,"output_tokens":9}`},
		{"negative output", `{"input_tokens":12,"output_tokens":-3}`},
		{"missing fields", `{}`},
		{"input over cap", `{"input_tokens":100000,"output_tokens":9}`},
		{"output over cap", `{"input_tokens":12,"output_tokens":1000000000}`},
	}
	for _, tc := range cases {
		if w := do(h, "POST", "/request", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %q)", tc.name, w.Code, w.Body.String())
		}
	}
}

// TestHTTPConfig pins the /config document: system, fidelity, knobs.
func TestHTTPConfig(t *testing.T) {
	h, _ := testHandler(t, core.FidelityEvent)
	w := do(h, "GET", "/config", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var cfg ConfigInfo
	if err := json.Unmarshal(w.Body.Bytes(), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.System != "singlepool" || cfg.Fidelity != "event" {
		t.Errorf("system/fidelity = %q/%q", cfg.System, cfg.Fidelity)
	}
	if cfg.Model != "llama2-70b" || cfg.Servers != 12 || cfg.NumPools != 1 {
		t.Errorf("defaults not resolved: %+v", cfg)
	}
	if cfg.Speed != 60 || cfg.TraceRequests != 10 {
		t.Errorf("speed/trace = %v/%d", cfg.Speed, cfg.TraceRequests)
	}
}

// TestHTTPInjectVisibleInStats: a fire-and-forget injection shows up in a
// subsequent /stats once its virtual arrival has been served.
func TestHTTPInjectVisibleInStats(t *testing.T) {
	h, clock := testHandler(t, core.FidelityFluid)
	clock.advance(10 * time.Second) // past the 10-entry base trace (50 virtual s)
	if w := do(h, "GET", "/stats", ""); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	w := do(h, "POST", "/request?wait=0", `{"input_tokens":512,"output_tokens":64}`)
	if w.Code != http.StatusOK {
		t.Fatalf("inject: %d %s", w.Code, w.Body.String())
	}
	var acc struct {
		Tag   uint64  `json:"tag"`
		At    float64 `json:"accepted_at_virtual_s"`
		Class string  `json:"class"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Tag == 0 || acc.Class != "MS" || acc.At != 600 {
		t.Errorf("accepted = %+v, want tag>0 class MS at 600", acc)
	}

	clock.advance(time.Second)
	var st Stats
	if err := json.Unmarshal(do(h, "GET", "/stats", "").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 11 { // 10 base + 1 injected
		t.Errorf("stats requests = %d, want 11", st.Requests)
	}
}

// TestHTTPBlockingCompletion: the default POST /request blocks until the
// request completes in virtual time and returns its TTFT/TBT.
func TestHTTPBlockingCompletion(t *testing.T) {
	s, clock := testSession(t, core.FidelityEvent, nil, false, 60)
	t.Cleanup(func() { s.Close() })
	h := NewHandler(s, 10*time.Second)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Drive the fake clock while the request blocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				clock.advance(100 * time.Millisecond)
				s.Advance()
			}
		}
	}()

	resp, err := http.Post(srv.URL+"/request", "application/json",
		strings.NewReader(`{"input_tokens":128,"output_tokens":16}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var done Completion
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	if done.Squashed || done.TTFT <= 0 || done.ClassName != "SS" {
		t.Errorf("completion %+v, want served SS with TTFT > 0", done)
	}
}

// TestHTTPSSE: with Accept: text/event-stream the handler streams
// accepted, per-token, and done events.
func TestHTTPSSE(t *testing.T) {
	s, clock := testSession(t, core.FidelityEvent, nil, false, 60)
	t.Cleanup(func() { s.Close() })
	h := NewHandler(s, 10*time.Second)
	srv := httptest.NewServer(h)
	defer srv.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				clock.advance(100 * time.Millisecond)
				s.Advance()
			}
		}
	}()

	req, _ := http.NewRequest("POST", srv.URL+"/request",
		strings.NewReader(`{"input_tokens":128,"output_tokens":8}`))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			counts[strings.TrimPrefix(line, "event: ")]++
			if line == "event: done" {
				break
			}
		}
	}
	if counts["accepted"] != 1 || counts["done"] != 1 {
		t.Errorf("event counts %v, want one accepted and one done", counts)
	}
	if counts["token"] == 0 {
		t.Errorf("no token events streamed under event fidelity (counts %v)", counts)
	}
}

// TestHTTPMetrics: the Prometheus exposition carries the headline
// counters and, under event fidelity, per-class TTFT/TBT percentiles.
func TestHTTPMetrics(t *testing.T) {
	h, clock := testHandler(t, core.FidelityEvent)
	clock.advance(10 * time.Second) // serve the whole base trace
	w := do(h, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"dynamollm_requests_total 10",
		"dynamollm_virtual_seconds 600",
		`dynamollm_ttft_seconds{quantile="0.99"}`,
		`dynamollm_class_ttft_seconds{class="SS",quantile="0.99"}`,
		`dynamollm_class_tbt_seconds{class="SS",quantile="0.5"}`,
		"dynamollm_energy_joules_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPEvents: live scenario events are validated and applied; trace
// kinds and malformed payloads get 400.
func TestHTTPEvents(t *testing.T) {
	h, clock := testHandler(t, core.FidelityFluid)
	clock.advance(time.Second)

	// Single-object and array forms both work.
	if w := do(h, "POST", "/events", `{"kind":"outage","servers":2}`); w.Code != http.StatusOK {
		t.Fatalf("outage: %d %s", w.Code, w.Body.String())
	}
	if w := do(h, "POST", "/events", `[{"kind":"price","price_mult":4,"duration_hours":1}]`); w.Code != http.StatusOK {
		t.Fatalf("price array: %d %s", w.Code, w.Body.String())
	}
	clock.advance(time.Second)
	var st Stats
	if err := json.Unmarshal(do(h, "GET", "/stats", "").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Outages < 2 || st.PriceMult != 4 {
		t.Errorf("events not applied: outages %d price %v", st.Outages, st.PriceMult)
	}

	for name, body := range map[string]string{
		"trace-level kind": `{"kind":"spike","rate_mult":3,"duration_hours":1}`,
		"unknown kind":     `{"kind":"meteor"}`,
		"missing servers":  `{"kind":"outage"}`,
		"malformed":        `{"kind":`,
		"unknown field":    `{"kind":"outage","servers":1,"bogus":true}`,
		"empty array":      `[]`,
	} {
		if w := do(h, "POST", "/events", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
}
