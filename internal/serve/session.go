//dynamolint:wallclock the session pacer deliberately tracks the wall clock to pace virtual time

// Package serve is the live serving control plane (§IV-E made long-lived):
// a Session wraps the cluster simulation in an incrementally advanced,
// wall-clock-paced loop — virtual time tracks the wall clock at a fixed
// speed, arrivals are injected at their true virtual instants, and every
// query advances the simulation only by the elapsed delta, never by
// re-simulating history. On top of the Session, NewHandler exposes the
// HTTP API cmd/dynamoserve serves: request injection with per-request
// completions (optionally streamed as SSE token events), live scenario
// runtime events, JSON stats, and Prometheus metrics.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dynamollm/internal/core"
	"dynamollm/internal/profile"
	"dynamollm/internal/scenario"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Config parameterizes a live session.
type Config struct {
	// Name labels the configuration (/config, log lines); typically the
	// core system preset name.
	Name string
	// Opts is the control system under test; Fidelity selects the
	// instance backend (the live server defaults to event fidelity
	// upstream, in cmd/dynamoserve). Opts.Observer is owned by the
	// session; Opts.Hook, if set, still fires before injected events.
	Opts core.Options
	// Trace is the time-ordered base arrival trace (t = 0 is session
	// start in virtual time).
	Trace trace.Trace
	// Speed is virtual seconds per wall second (default 60).
	Speed float64
	// Loop replays the base trace each time its horizon is reached, so
	// background load never runs dry. When false the session reports
	// horizon_reached instead and keeps serving injected traffic only.
	Loop bool
	// Repo caches model profiles (nil builds a private one).
	Repo *profile.Repository
	// WallClock is the time source (nil = time.Now); tests inject a fake.
	WallClock func() time.Time
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...interface{})

	// MaxInflight sheds new injections (OverloadError, HTTP 429) once
	// this many injected requests are already waiting (0 = unlimited).
	MaxInflight int
	// MaxLagSeconds sheds new injections while the simulation is more
	// than this many virtual seconds behind the pacer — the host cannot
	// keep up, and admitting more work only deepens the hole
	// (0 = unlimited).
	MaxLagSeconds float64
	// DrainLimit bounds the virtual time Close simulates past the final
	// pacer instant to serve stragglers; anything still unfinished then
	// resolves as squashed (0 = unlimited: drain everything accepted).
	DrainLimit float64

	// StateDir enables crash durability: every accepted injection is
	// appended (and synced) to <StateDir>/wal.jsonl before it is acked,
	// and a checkpoint of the session's progress is written to
	// <StateDir>/checkpoint.json on CheckpointEvery. Restore rebuilds a
	// killed session from the pair — no acked request is lost. Empty
	// disables durability.
	StateDir string
	// CheckpointEvery is the wall interval between durable checkpoints
	// (default 2s when StateDir is set).
	CheckpointEvery time.Duration
	// Meta is opaque caller metadata stored in the checkpoint file —
	// cmd/dynamoserve keeps the flags it needs to rebuild an identical
	// session (peak rate) there.
	Meta map[string]string
}

// ErrClosed reports an injection into a session that has begun shutting
// down — a transient condition (503), not a bad request.
var ErrClosed = errors.New("serve: session closed")

// OverloadError reports an injection shed by admission control: the
// session is over its inflight cap or the simulation has fallen too far
// behind the wall clock. Clients should back off and retry after
// RetryAfter (HTTP maps it to 429 + Retry-After).
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// TokenEvent is one streamed output token of an injected request.
// Produced normally counts 1..OutputTokens, but restarts from 1 if the
// serving instance is re-sharded or retired mid-flight: drained work
// re-generates on the new placement (that is the simulated reality), so
// clients must treat Produced as latest progress, not a cumulative count.
type TokenEvent struct {
	Produced int           `json:"produced"` // tokens produced so far (1-based)
	At       simclock.Time `json:"at_virtual_s"`
}

// Completion is the terminal state of an injected request.
type Completion struct {
	Tag        uint64         `json:"tag"`
	Class      workload.Class `json:"-"`
	ClassName  string         `json:"class"`
	AcceptedAt simclock.Time  `json:"accepted_at_virtual_s"`
	FinishedAt simclock.Time  `json:"finished_at_virtual_s"`
	TTFT       float64        `json:"ttft_s"`
	TBT        float64        `json:"tbt_s"`
	SLOMet     bool           `json:"slo_met"`
	Squashed   bool           `json:"squashed"`
}

// Accepted identifies an injected request.
type Accepted struct {
	Tag   uint64
	At    simclock.Time
	Class workload.Class
}

// Waiter delivers one injected request's lifecycle to its client. Tokens
// is best-effort (token events are dropped rather than ever stalling the
// simulation behind a slow reader); Done always delivers exactly one
// Completion and is buffered, so an abandoned waiter leaks nothing.
type Waiter struct {
	Tag    uint64
	Tokens <-chan TokenEvent
	Done   <-chan Completion

	tokens chan TokenEvent
	done   chan Completion
}

// Session is a live, wall-clock-paced simulation. All state is guarded by
// mu; observer callbacks fire inside advances (under mu) and resolve
// waiters without re-entering the simulation.
type Session struct {
	mu    sync.Mutex
	cfg   Config
	live  *core.Live
	hook  *liveHook
	pacer *simclock.Pacer
	logf  func(string, ...interface{})

	base           trace.Trace
	baseHorizon    simclock.Time
	loops          int
	horizonReached bool

	nextTag        uint64
	waiters        map[uint64]*Waiter
	inflight       int
	lastInjectedAt simclock.Time

	// shed counts injections rejected by admission control.
	shed int
	// eventsPosted salts the fault-expansion seed per /events call.
	eventsPosted uint64

	// Durability (nil/zero when Config.StateDir is empty).
	wal        *walFile
	lastCkptAt simclock.Time
	restoredAt simclock.Time

	closed    bool
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a session and anchors its pacer at the current wall instant.
// Call Start to run the background pacer, or drive it manually with
// Advance (tests do).
func New(cfg Config) *Session {
	if cfg.Speed <= 0 {
		cfg.Speed = 60
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	s := &Session{
		cfg:     cfg,
		hook:    &liveHook{static: cfg.Opts.Hook},
		logf:    logf,
		base:    cfg.Trace,
		waiters: map[uint64]*Waiter{},
		stop:    make(chan struct{}),
	}
	s.baseHorizon = traceEnd(cfg.Trace)
	opts := cfg.Opts
	opts.Hook = s.hook
	opts.Observer = (*sessionObserver)(s)
	if cfg.Loop && s.baseHorizon > 0 {
		// The base window replays forever: wrap the predictor's warm
		// curve at the exact replay period so the expected-load signal
		// stays in phase with the traffic actually served. With no
		// caller-supplied curve, warm on the base trace's own template —
		// the unwrapped core fallback is zero past the trace horizon, so
		// a looping cluster would otherwise plan against zero load after
		// the first replay.
		inner := opts.WarmLoad
		if inner == nil {
			inner = core.TraceTemplate(cfg.Trace, opts.ClusterEpoch)
		}
		period := float64(s.baseHorizon)
		opts.WarmLoad = func(t simclock.Time, c workload.Class) float64 {
			return inner(simclock.Time(math.Mod(float64(t), period)), c)
		}
	}
	s.live = core.NewLive(cfg.Trace, opts, cfg.Repo)
	s.pacer = simclock.NewPacer(cfg.Speed, cfg.WallClock)
	return s
}

func traceEnd(tr trace.Trace) simclock.Time {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].At
}

// Start launches the background pacer goroutine, which keeps the
// simulation caught up with the wall clock so completions are delivered
// even while no client is querying. The pacing interval is half a tick of
// wall time, clamped to sane bounds.
func (s *Session) Start() {
	interval := s.pacer.Wall(s.live.TickSeconds() / 2)
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Advance()
			}
		}
	}()
	if s.wal != nil {
		every := s.cfg.CheckpointEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.mu.Lock()
					if !s.closed {
						if err := s.checkpointLocked(); err != nil {
							s.logf("serve: checkpoint: %v", err)
						}
					}
					s.mu.Unlock()
				}
			}
		}()
	}
}

// Advance brings the simulation up to the current virtual time and
// returns the number of ticks executed. Cost is proportional to the wall
// time elapsed since the previous advance.
func (s *Session) Advance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceLocked()
}

func (s *Session) advanceLocked() int {
	if s.closed {
		return 0
	}
	target := s.pacer.Now()
	s.extendLocked(target)
	return s.live.AdvanceTo(target)
}

// extendLocked keeps the base trace ahead of the pacer: with Loop set it
// appends a time-shifted replay of the base window whenever the covered
// horizon would otherwise fall within one window of the target; without
// it, it flags (once) that the horizon has been reached.
func (s *Session) extendLocked(target simclock.Time) {
	if s.baseHorizon <= 0 || len(s.base) == 0 {
		return
	}
	if !s.cfg.Loop {
		if !s.horizonReached && target > s.baseHorizon {
			s.horizonReached = true
			s.logf("serve: base trace horizon (%.0f virtual s) reached; serving injected traffic only", float64(s.baseHorizon))
		}
		return
	}
	// Replay the base window just before the tick that would outrun the
	// covered horizon executes (one tick of lookahead).
	lookahead := simclock.Time(s.live.TickSeconds())
	for covered := simclock.Time(float64(s.loops+1)) * s.baseHorizon; covered < target+lookahead; covered += s.baseHorizon {
		s.loops++
		shifted := make(trace.Trace, len(s.base))
		for i, e := range s.base {
			e.At += covered
			shifted[i] = e
		}
		if err := s.live.Append(shifted); err != nil {
			s.logf("serve: trace replay failed: %v", err)
			return
		}
		s.logf("serve: base trace horizon reached; replaying base window (loop %d, virtual t=%.0fs..%.0fs)",
			s.loops, float64(covered), float64(covered+s.baseHorizon))
	}
}

// Inject enqueues one live request at the current virtual instant — the
// virtual clock is read at receipt, after catching the simulation up, so
// the arrival stamp can never be stale. Token counts are bounded by the
// Table IV maxima (a larger output would make the drain-on-shutdown
// contract unmeetable: the engines must produce every token in virtual
// time). With wait set, the returned Waiter delivers the request's token
// events and completion.
func (s *Session) Inject(inTokens, outTokens int, wait bool) (Accepted, *Waiter, error) {
	if inTokens <= 0 || inTokens > workload.InputLongMax {
		return Accepted{}, nil, fmt.Errorf("serve: input_tokens must be in [1, %d]", workload.InputLongMax)
	}
	if outTokens <= 0 || outTokens > workload.OutputLongMax {
		return Accepted{}, nil, fmt.Errorf("serve: output_tokens must be in [1, %d]", workload.OutputLongMax)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Accepted{}, nil, ErrClosed
	}
	// Admission control, checked before paying the catch-up: a session
	// that has fallen behind the wall clock sheds load instead of
	// advancing (the advance is exactly the work it cannot afford), and a
	// full waiter table sheds rather than queueing unboundedly.
	if m := s.cfg.MaxLagSeconds; m > 0 {
		if lag := float64(s.pacer.Now() - s.live.Boundary()); lag > m {
			s.shed++
			retry := s.pacer.Wall(simclock.Duration(lag-m)) + time.Second
			return Accepted{}, nil, &OverloadError{Reason: "simulation lag", RetryAfter: retry}
		}
	}
	if m := s.cfg.MaxInflight; m > 0 && s.inflight >= m {
		s.shed++
		retry := s.pacer.Wall(simclock.Duration(s.live.TickSeconds())) + time.Second
		return Accepted{}, nil, &OverloadError{Reason: "inflight cap", RetryAfter: retry}
	}
	s.advanceLocked()
	s.nextTag++
	tag := s.nextTag
	entry := trace.Entry{
		At:           s.pacer.Now(),
		Tag:          tag,
		InputTokens:  inTokens,
		OutputTokens: outTokens,
	}
	// Durability: the request must be on disk before it is acked — an ack
	// is a promise the request survives a crash of this process.
	if s.wal != nil {
		if err := s.wal.append(entry); err != nil {
			s.nextTag--
			return Accepted{}, nil, fmt.Errorf("serve: wal append: %w", err)
		}
	}
	at, err := s.live.Inject(entry)
	if err != nil {
		return Accepted{}, nil, err
	}
	if at > s.lastInjectedAt {
		s.lastInjectedAt = at
	}
	acc := Accepted{Tag: tag, At: at, Class: workload.Classify(inTokens, outTokens)}
	var w *Waiter
	if wait {
		w = &Waiter{
			Tag:    tag,
			tokens: make(chan TokenEvent, 64),
			done:   make(chan Completion, 1),
		}
		w.Tokens, w.Done = w.tokens, w.done
		s.waiters[tag] = w
		s.inflight++
	}
	return acc, w, nil
}

// Abandon deregisters a waiter whose client has gone away (timeout,
// disconnect). Safe to call after the completion was already delivered.
func (s *Session) Abandon(tag uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.waiters[tag]; ok {
		delete(s.waiters, tag)
		s.inflight--
	}
}

// InjectEvents schedules scenario runtime events relative to the current
// virtual time (an event's AtHours is "hours from now"). Only runtime
// kinds are accepted; they are validated, then outages and recoveries are
// compiled through the scenario timeline machinery into the session's
// tick-hook agenda, while price and SLO windows join the session's
// window sets — evaluated per tick across every window posted so far, so
// windows from separate calls compose exactly like windows within one
// scenario (most recently started open window wins; a window ending can
// never clobber another still running). Once any live price (or SLO)
// window has been posted, the session owns that multiplier; a static
// scenario hook's same-kind windows are overridden from then on. Returns
// the virtual time the timeline is anchored at.
func (s *Session) InjectEvents(events []scenario.Event) (simclock.Time, error) {
	for i, e := range events {
		if !e.Kind.Runtime() {
			return 0, fmt.Errorf("serve: event %d (%s): only runtime events (outage, recovery, rack, straggler, blip, faults, price, slo) can be injected live", i, e.Kind)
		}
		if e.AtHours < 0 {
			return 0, fmt.Errorf("serve: event %d (%s): at_hours must be >= 0 (hours from now)", i, e.Kind)
		}
		if err := scenario.ValidateEvent(e); err != nil {
			return 0, fmt.Errorf("serve: event %d (%s): %v", i, e.Kind, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.advanceLocked()
	now := s.pacer.Now()
	// Stochastic faults events expand into concrete crashes and repairs
	// first, each /events call drawing from a fresh seed stream so
	// repeated identical posts yield different (but logged) instants.
	s.eventsPosted++
	seed := s.cfg.Opts.Seed ^ (s.eventsPosted * 0x9e3779b97f4a7c15)
	if plan := scenario.ExpandFaults(events, 0, seed); len(plan.Events) > 0 {
		kept := make([]scenario.Event, 0, len(events)+len(plan.Events))
		for _, e := range events {
			if e.Kind != scenario.Faults {
				kept = append(kept, e)
			}
		}
		events = append(kept, plan.Events...)
		s.logf("serve: expanded faults into %d crash/repair event(s) (seed %d)", len(plan.Events), seed)
	}
	var instant []scenario.Event
	for _, e := range events {
		from := now + simclock.Time(e.AtHours*3600)
		to := from + simclock.Time(e.DurationHours*3600)
		switch e.Kind {
		case scenario.Price:
			s.hook.priceWins = append(s.hook.priceWins, valueWindow{from: from, to: to, val: e.PriceMult})
		case scenario.SLO:
			s.hook.sloWins = append(s.hook.sloWins, valueWindow{from: from, to: to, val: e.SLOFactor})
		default:
			instant = append(instant, e)
		}
		s.logf("serve: scheduled %s event at virtual t=%.0fs", e.Kind, float64(from))
	}
	s.hook.add(scenario.RuntimeTimeline(instant, now))
	return now, nil
}

// Close stops the pacer, advances through every pending arrival, drains
// in-flight work through the backend (the event engines run to
// completion), resolves any leftover waiters as squashed, and returns the
// final result plus the number of injected requests that were still in
// flight when shutdown began.
func (s *Session) Close() (*core.Result, int) {
	// Stop the pacer first, without holding mu (it may be mid-advance).
	// closeOnce makes concurrent Close calls safe: one closes the stop
	// channel, the rest wait on the mutex and find the session closed.
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.live.Finish(), 0
	}
	drained := s.inflight
	// Serve everything already accepted: advance past the last injected
	// arrival so no in-flight request is silently dropped, then drain.
	// DrainLimit bounds the extension — a session being shut down under
	// fire stops simulating after the budget and squashes the rest.
	now := s.pacer.Now()
	target := now
	if pt := s.lastInjectedAt + simclock.Time(s.live.TickSeconds()); pt > target {
		target = pt
	}
	if lim := s.cfg.DrainLimit; lim > 0 && target > now+simclock.Time(lim) {
		s.logf("serve: drain limit %.0f virtual s reached; squashing stragglers", lim)
		target = now + simclock.Time(lim)
	}
	s.live.AdvanceTo(target)
	s.closed = true
	res := s.live.Finish()
	if s.wal != nil {
		if err := s.checkpointLocked(); err != nil {
			s.logf("serve: final checkpoint: %v", err)
		}
		s.wal.close()
	}
	// Anything still waiting can never complete now.
	for tag, w := range s.waiters {
		delete(s.waiters, tag)
		s.inflight--
		close(w.tokens)
		w.done <- Completion{Tag: tag, Squashed: true, TTFT: -1, TBT: -1, FinishedAt: s.live.Boundary()}
	}
	if drained > 0 {
		s.logf("serve: drained %d in-flight request(s) on shutdown", drained)
	}
	return res, drained
}

// Checkpoint advances the session to the present and captures its whole
// simulation — cluster topology, controller state, and (in event
// fidelity) every instance engine — as a core.LiveSnapshot. The snapshot
// is headless: the session's observer and tick-hook agenda are scrubbed
// from it, because they resolve this session's waiters and live event
// windows and must not fire from a fork. Resume the snapshot to get an
// independent core.Live (e.g. to ask "what would the next ten minutes
// look like" against live traffic) while the session keeps serving.
func (s *Session) Checkpoint() (*core.LiveSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.advanceLocked()
	return s.live.Snapshot().Headless(), nil
}

// --- Observer ---------------------------------------------------------------

// sessionObserver adapts Session to core.RequestObserver. Callbacks fire
// while the session lock is already held (every advance and the closing
// drain happen under mu), so waiter bookkeeping needs no extra locking.
type sessionObserver Session

func (o *sessionObserver) RequestToken(req *workload.Request, produced int, now simclock.Time) {
	s := (*Session)(o)
	if w := s.waiters[req.Tag]; w != nil {
		select {
		case w.tokens <- TokenEvent{Produced: produced, At: now}:
		default: // slow reader: drop rather than stall the simulation
		}
	}
}

func (o *sessionObserver) RequestDone(req *workload.Request, ttft, tbt float64, met bool) {
	s := (*Session)(o)
	if req.Tag == 0 {
		return
	}
	w := s.waiters[req.Tag]
	if w == nil {
		return
	}
	delete(s.waiters, req.Tag)
	s.inflight--
	fin := req.Finish
	if fin == 0 && ttft >= 0 {
		// Fluid fidelity has no engine-stamped finish instant: model it
		// as first token plus the full decode phase at the sampled TBT.
		d := ttft
		if tbt > 0 && req.OutputTokens > 1 {
			d += tbt * float64(req.OutputTokens-1)
		}
		fin = req.Arrival + simclock.Time(d)
	}
	cls := req.Class()
	// Close tokens first: a streaming reader that receives the completion
	// can then drain the remaining buffered token events and terminate.
	close(w.tokens)
	w.done <- Completion{
		Tag:        req.Tag,
		Class:      cls,
		ClassName:  cls.String(),
		AcceptedAt: req.Arrival,
		FinishedAt: fin,
		TTFT:       ttft,
		TBT:        tbt,
		SLOMet:     met,
		Squashed:   req.Squashed,
	}
}

// --- Live tick-hook agenda ---------------------------------------------------

// liveHook is the session's mutable core.TickHook: a time-sorted agenda
// of instantaneous runtime events (outages, recoveries) plus the live
// price/SLO window sets, applied while the session runs. All access
// happens under the session lock (OnTick fires inside advances, mutation
// inside InjectEvents), so it needs no locking of its own. static, when
// set, is the caller-provided hook fired before the live state each tick.
type liveHook struct {
	static core.TickHook
	agenda []core.TimelineEvent
	head   int

	// priceWins/sloWins accumulate every live-posted window. The value
	// in force is recomputed each tick across all of them (most recently
	// started open window wins, 1 when none is), so windows posted in
	// separate /events calls can never clobber each other the way
	// independently compiled boundary events would.
	priceWins []valueWindow
	sloWins   []valueWindow
}

// valueWindow is a half-open [from, to) interval during which a price or
// SLO multiplier holds.
type valueWindow struct {
	from, to simclock.Time
	val      float64
}

func (h *liveHook) OnTick(now simclock.Time, ctl *core.Controls) {
	if h.static != nil {
		h.static.OnTick(now, ctl)
	}
	for h.head < len(h.agenda) && h.agenda[h.head].At <= now {
		h.agenda[h.head].Do(ctl)
		h.agenda[h.head] = core.TimelineEvent{}
		h.head++
	}
	if h.head == len(h.agenda) {
		h.agenda = h.agenda[:0]
		h.head = 0
	}
	if len(h.priceWins) > 0 {
		ctl.SetPriceMult(activeValue(h.priceWins, now))
		h.priceWins = pruneExpired(h.priceWins, now)
	}
	if len(h.sloWins) > 0 {
		ctl.SetSLOFactor(activeValue(h.sloWins, now))
		h.sloWins = pruneExpired(h.sloWins, now)
	}
}

// activeValue returns the multiplier in force at t: the value of the most
// recently started window containing t (ties broken by posting order,
// later wins), or 1 when no window is open.
func activeValue(ws []valueWindow, t simclock.Time) float64 {
	v := 1.0
	started := simclock.Time(math.Inf(-1))
	for _, w := range ws {
		if w.from <= t && t < w.to && w.from >= started {
			started, v = w.from, w.val
		}
	}
	return v
}

// pruneExpired drops windows that ended at or before now. The value they
// stopped contributing was already applied this tick (activeValue runs
// before pruning), so an expiring last window still resets to 1.
func pruneExpired(ws []valueWindow, now simclock.Time) []valueWindow {
	live := ws[:0]
	for _, w := range ws {
		if w.to > now {
			live = append(live, w)
		}
	}
	return live
}

// add merges events (already time-sorted among themselves) into the
// pending agenda, keeping it sorted by firing time.
func (h *liveHook) add(events []core.TimelineEvent) {
	h.agenda = append(h.agenda, events...)
	pending := h.agenda[h.head:]
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].At < pending[j].At })
}

// --- Snapshots ---------------------------------------------------------------

// Stats is the /stats JSON document: running aggregates up to the current
// virtual instant.
type Stats struct {
	VirtualSeconds float64 `json:"virtual_seconds"`
	Fidelity       string  `json:"fidelity"`
	Requests       int     `json:"requests"`
	Squashed       int     `json:"squashed"`
	Completed      int     `json:"completed"`
	Inflight       int     `json:"inflight"`
	// Retried/RetrySuccess/Shed are the core frontend-retry counters;
	// AdmissionShed counts injections this session rejected with 429
	// before they reached the simulation.
	Retried        int     `json:"retried"`
	RetrySuccess   int     `json:"retry_success"`
	Shed           int     `json:"shed"`
	AdmissionShed  int     `json:"admission_shed"`
	EnergyKWh      float64 `json:"energy_kwh"`
	EnergyCostUSD  float64 `json:"energy_cost_usd"`
	AvgServers     float64 `json:"avg_servers"`
	ActiveServers  int     `json:"active_servers"`
	SLOAttainment  float64 `json:"slo_attainment"`
	TTFTP50        float64 `json:"ttft_p50_s"`
	TTFTP99        float64 `json:"ttft_p99_s"`
	TBTP50         float64 `json:"tbt_p50_s"`
	TBTP99         float64 `json:"tbt_p99_s"`
	Reshards       int     `json:"reshards"`
	ScaleOuts      int     `json:"scale_outs"`
	ScaleIns       int     `json:"scale_ins"`
	Emergencies    int     `json:"emergencies"`
	Outages        int     `json:"outages"`
	Recoveries     int     `json:"recoveries"`
	PriceMult      float64 `json:"price_mult"`
	SLOFactor      float64 `json:"slo_factor"`
	TraceLoops     int     `json:"trace_loops"`
	HorizonReached bool    `json:"horizon_reached"`
	SimLagSeconds  float64 `json:"sim_lag_virtual_s"`
	PendingArrival int     `json:"pending_arrivals"`
	// KV-cache occupancy and dynamics (event fidelity; blocks under
	// block-granular accounting, tokens under the legacy path).
	KVUsedBlocks  int `json:"kv_used_blocks"`
	KVTotalBlocks int `json:"kv_total_blocks"`
	KVPreemptions int `json:"kv_preemptions"`
	KVPrefixHits  int `json:"kv_prefix_hits"`
	KVRejected    int `json:"kv_rejected"`
	Handoffs      int `json:"kv_handoffs"`
	// Spill-tier occupancy and swap dynamics (zero when no tier is
	// configured).
	KVTierUsedBlocks  int `json:"kv_tier_used_blocks"`
	KVTierTotalBlocks int `json:"kv_tier_total_blocks"`
	KVSwapOuts        int `json:"kv_swap_outs"`
	KVSwapIns         int `json:"kv_swap_ins"`
	KVRecomputes      int `json:"kv_recomputes"`
	KVTierEvictions   int `json:"kv_tier_evictions"`
	// RestoredAtS is the virtual instant a crash-restored session resumed
	// from (0 for a fresh session); LastCheckpointS is the virtual instant
	// of the latest durable checkpoint (0 when durability is off).
	RestoredAtS     float64 `json:"restored_at_virtual_s,omitempty"`
	LastCheckpointS float64 `json:"last_checkpoint_virtual_s,omitempty"`
}

// Stats advances the session to the present and snapshots it.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.statsLocked()
}

func (s *Session) statsLocked() Stats {
	res := s.live.Result()
	boundary := float64(s.live.Boundary())
	st := Stats{
		VirtualSeconds:  boundary,
		Fidelity:        s.live.Options().Fidelity.String(),
		Requests:        res.Requests,
		Squashed:        res.Squashed,
		Completed:       res.Completed,
		Inflight:        s.inflight,
		Retried:         res.Retried,
		RetrySuccess:    res.RetrySuccess,
		Shed:            res.Shed,
		AdmissionShed:   s.shed,
		EnergyKWh:       res.EnergyKWh(),
		EnergyCostUSD:   res.EnergyCostUSD,
		ActiveServers:   s.live.ActiveServers(),
		SLOAttainment:   res.SLOAttainment(),
		TTFTP50:         res.TTFT.Percentile(50),
		TTFTP99:         res.TTFT.Percentile(99),
		TBTP50:          res.TBT.Percentile(50),
		TBTP99:          res.TBT.Percentile(99),
		Reshards:        res.Reshards,
		ScaleOuts:       res.ScaleOuts,
		ScaleIns:        res.ScaleIns,
		Emergencies:     res.Emergencies,
		Outages:         res.Outages,
		Recoveries:      res.Recoveries,
		PriceMult:       s.live.PriceMult(),
		SLOFactor:       s.live.SLOFactor(),
		TraceLoops:      s.loops,
		HorizonReached:  s.horizonReached,
		PendingArrival:  s.live.PendingArrivals(),
		RestoredAtS:     float64(s.restoredAt),
		LastCheckpointS: float64(s.lastCkptAt),
	}
	kv := s.live.KVStats()
	st.KVUsedBlocks = kv.UsedBlocks
	st.KVTotalBlocks = kv.TotalBlocks
	st.KVPreemptions = kv.Preemptions
	st.KVPrefixHits = kv.PrefixHits
	st.KVRejected = kv.Rejected
	st.Handoffs = kv.Handoffs
	st.KVTierUsedBlocks = kv.TierUsedBlocks
	st.KVTierTotalBlocks = kv.TierTotalBlocks
	st.KVSwapOuts = kv.SwapOuts
	st.KVSwapIns = kv.SwapIns
	st.KVRecomputes = kv.Recomputes
	st.KVTierEvictions = kv.TierEvictions
	if boundary > 0 {
		st.AvgServers = res.GPUSeconds / 8 / boundary
	}
	if lag := float64(s.pacer.Now()) - boundary; lag > 0 {
		st.SimLagSeconds = lag
	}
	return st
}

// ConfigInfo is the /config JSON document.
type ConfigInfo struct {
	Systems           []string `json:"systems"`
	System            string   `json:"system"`
	Fidelity          string   `json:"fidelity"`
	Fidelities        []string `json:"fidelities"`
	Model             string   `json:"model"`
	NumPools          int      `json:"num_pools"`
	ScaleInstances    bool     `json:"scale_instances"`
	ScaleSharding     bool     `json:"scale_sharding"`
	ScaleFrequency    bool     `json:"scale_frequency"`
	ReducedOverheads  bool     `json:"reduced_overheads"`
	Servers           int      `json:"servers"`
	PredictorAccuracy float64  `json:"predictor_accuracy"`
	Speed             float64  `json:"speed"`
	Loop              bool     `json:"loop"`
	TraceRequests     int      `json:"trace_requests"`
}

// Config describes the session's active configuration, with every core
// default resolved.
func (s *Session) Config() ConfigInfo {
	opts := s.live.Options()
	modelName := ""
	if opts.Model != nil {
		modelName = opts.Model.Name
	}
	return ConfigInfo{
		Systems:           core.SystemNames,
		System:            s.cfg.Name,
		Fidelity:          opts.Fidelity.String(),
		Fidelities:        core.FidelityNames,
		Model:             modelName,
		NumPools:          opts.NumPools,
		ScaleInstances:    opts.ScaleInstances,
		ScaleSharding:     opts.ScaleSharding,
		ScaleFrequency:    opts.ScaleFrequency,
		ReducedOverheads:  opts.ReducedOverheads,
		Servers:           opts.Servers,
		PredictorAccuracy: opts.PredictorAccuracy,
		Speed:             s.cfg.Speed,
		Loop:              s.cfg.Loop,
		TraceRequests:     len(s.base),
	}
}
