//dynamolint:wallclock request timeouts are measured against the caller's real clock, not virtual time

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dynamollm/internal/scenario"
	"dynamollm/internal/workload"
)

// DefaultWaitTimeout bounds how long a blocking or streaming /request
// handler waits for its completion before answering 504. It exists as a
// backstop against requests the simulation can only resolve in aggregate
// (a fluid-mode backlog squash has no per-request identity).
const DefaultWaitTimeout = 2 * time.Minute

// Handler is the control-plane HTTP API over one session.
type Handler struct {
	s           *Session
	mux         *http.ServeMux
	waitTimeout time.Duration
}

// NewHandler builds the HTTP API:
//
//	GET  /stats    running cluster summary (JSON)
//	GET  /config   the active configuration (JSON)
//	GET  /metrics  Prometheus text exposition
//	POST /request  inject one request; blocks for its completion
//	               (?wait=0 returns on acceptance; Accept:
//	               text/event-stream streams token events as SSE)
//	POST /events   inject scenario runtime events relative to now
//
// waitTimeout <= 0 takes DefaultWaitTimeout.
func NewHandler(s *Session, waitTimeout time.Duration) *Handler {
	if waitTimeout <= 0 {
		waitTimeout = DefaultWaitTimeout
	}
	h := &Handler{s: s, mux: http.NewServeMux(), waitTimeout: waitTimeout}
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /config", h.handleConfig)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("POST /request", h.handleRequest)
	h.mux.HandleFunc("POST /events", h.handleEvents)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.s.Stats())
}

func (h *Handler) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.s.Config())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.s.WriteMetrics(w)
}

// requestBody is the /request payload. DeadlineS, when positive, bounds
// how many wall seconds this request may wait for its completion before
// the handler answers 408 — a per-request deadline tighter than the
// server-wide wait timeout (which stays the backstop).
type requestBody struct {
	InputTokens  int     `json:"input_tokens"`
	OutputTokens int     `json:"output_tokens"`
	DeadlineS    float64 `json:"deadline_s"`
}

func (h *Handler) handleRequest(w http.ResponseWriter, r *http.Request) {
	var body requestBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if body.InputTokens <= 0 || body.InputTokens > workload.InputLongMax ||
		body.OutputTokens <= 0 || body.OutputTokens > workload.OutputLongMax {
		http.Error(w, fmt.Sprintf("input_tokens must be in [1, %d] and output_tokens in [1, %d]",
			workload.InputLongMax, workload.OutputLongMax), http.StatusBadRequest)
		return
	}
	if body.DeadlineS < 0 {
		http.Error(w, "deadline_s must be >= 0", http.StatusBadRequest)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	wait := r.URL.Query().Get("wait") != "0" || sse

	acc, waiter, err := h.s.Inject(body.InputTokens, body.OutputTokens, wait)
	var overload *OverloadError
	if errors.As(err, &overload) {
		secs := int(overload.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	// A per-request deadline tightens the wait and turns its expiry into
	// 408 (the client's budget ran out) instead of the 504 backstop.
	timeout, timeoutCode := h.waitTimeout, http.StatusGatewayTimeout
	if d := time.Duration(body.DeadlineS * float64(time.Second)); d > 0 && d < timeout {
		timeout, timeoutCode = d, http.StatusRequestTimeout
	}
	accepted := map[string]interface{}{
		"tag":                   acc.Tag,
		"accepted_at_virtual_s": float64(acc.At),
		"class":                 acc.Class.String(),
	}
	if !wait {
		writeJSON(w, accepted)
		return
	}
	if sse {
		h.streamSSE(w, r, acc, accepted, waiter, timeout)
		return
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case done := <-waiter.Done:
		writeJSON(w, done)
	case <-r.Context().Done():
		h.s.Abandon(acc.Tag)
	case <-timer.C:
		h.s.Abandon(acc.Tag)
		if timeoutCode == http.StatusRequestTimeout {
			http.Error(w, "deadline_s exceeded waiting for completion", timeoutCode)
		} else {
			http.Error(w, "timeout waiting for completion", timeoutCode)
		}
	}
}

// streamSSE emits the request lifecycle as server-sent events: one
// "accepted" event, a best-effort "token" event per produced output token
// (event fidelity only; `produced` restarts if the request migrates —
// see TokenEvent), and a final "done" event with the completion.
func (h *Handler) streamSSE(w http.ResponseWriter, r *http.Request, acc Accepted, accepted map[string]interface{}, waiter *Waiter, timeout time.Duration) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	emit := func(event string, v interface{}) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit("accepted", accepted)

	tag := acc.Tag
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case tok, ok := <-waiter.Tokens:
			if ok {
				emit("token", tok)
			} else {
				// Channel closed: the completion is (or is about to be)
				// buffered in Done.
				waiter.Tokens = nil
			}
		case done := <-waiter.Done:
			// Tokens is closed before Done is delivered: drain whatever
			// token events are still buffered so none are lost.
			if waiter.Tokens != nil {
				for tok := range waiter.Tokens {
					emit("token", tok)
				}
			}
			emit("done", done)
			return
		case <-r.Context().Done():
			h.s.Abandon(tag)
			return
		case <-timer.C:
			h.s.Abandon(tag)
			emit("timeout", map[string]interface{}{"tag": tag})
			return
		}
	}
}

func (h *Handler) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, err := decodeEvents(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	at, err := h.s.InjectEvents(events)
	if errors.Is(err, ErrClosed) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]interface{}{
		"accepted":         len(events),
		"anchor_virtual_s": float64(at),
	})
}

// decodeEvents accepts either one scenario event object or an array of
// them.
func decodeEvents(r io.Reader) ([]scenario.Event, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "[") {
		var events []scenario.Event
		if err := strictUnmarshal(raw, &events); err != nil {
			return nil, err
		}
		if len(events) == 0 {
			return nil, fmt.Errorf("empty event list")
		}
		return events, nil
	}
	var e scenario.Event
	if err := strictUnmarshal(raw, &e); err != nil {
		return nil, err
	}
	return []scenario.Event{e}, nil
}

func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	// An encode error means the client went away mid-write; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}
