package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynamollm/internal/core"
)

// durableConfig builds a durable session config on a fake clock with a
// small looping base trace.
func durableConfig(t *testing.T, dir string, clock *fakeClock) Config {
	t.Helper()
	opts := core.SinglePool()
	opts.Seed = 7
	opts.Fidelity = core.FidelityEvent
	return Config{
		Name:      "singlepool",
		Opts:      opts,
		Trace:     testTrace(20, 5),
		Speed:     10,
		Loop:      true,
		Repo:      sharedRepo(),
		WallClock: clock.now,
		Logf:      t.Logf,
		StateDir:  dir,
		Meta:      map[string]string{"peak": "45"},
	}
}

// TestDurableRestore is the crash-recovery contract: kill a durable
// session without any shutdown (the process just vanishes — only the WAL
// and checkpoint survive), restore from the state directory, and the
// restored session must resume at the checkpointed virtual instant,
// serve every acked injection, and continue the tag sequence.
func TestDurableRestore(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := durableConfig(t, dir, clock)

	s, err := NewDurable(cfg)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	// Serve 30 virtual seconds, injecting along the way.
	var tags []uint64
	for i := 0; i < 3; i++ {
		clock.advance(time.Second) // 10 virtual s
		s.Advance()
		acc, _, err := s.Inject(128, 16, false)
		if err != nil {
			t.Fatalf("inject %d: %v", i, err)
		}
		tags = append(tags, acc.Tag)
	}
	preBoundary := s.Stats().VirtualSeconds
	s.mu.Lock()
	if err := s.checkpointLocked(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s.mu.Unlock()
	// One more acked injection after the final checkpoint: it exists only
	// in the WAL and must survive anyway.
	acc, _, err := s.Inject(256, 32, false)
	if err != nil {
		t.Fatalf("post-checkpoint inject: %v", err)
	}
	tags = append(tags, acc.Tag)
	// Crash: no Close, no drain. Drop the session on the floor.

	restoreClock := newFakeClock()
	cfg2 := durableConfig(t, dir, restoreClock)
	r, err := Restore(cfg2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	st := r.Stats()
	if st.VirtualSeconds != preBoundary {
		t.Errorf("restored at virtual %v, want checkpointed boundary %v", st.VirtualSeconds, preBoundary)
	}
	if st.RestoredAtS != preBoundary {
		t.Errorf("RestoredAtS = %v, want %v", st.RestoredAtS, preBoundary)
	}
	// The next tag continues the pre-crash sequence even though the last
	// ack never made a checkpoint.
	acc2, _, err := r.Inject(128, 16, false)
	if err != nil {
		t.Fatalf("post-restore inject: %v", err)
	}
	if want := tags[len(tags)-1] + 1; acc2.Tag != want {
		t.Errorf("post-restore tag = %d, want %d", acc2.Tag, want)
	}
	// Run well past every injected arrival: all acked requests (including
	// the post-checkpoint one) must be served.
	restoreClock.advance(10 * time.Second)
	r.Advance()
	res, _ := r.Close()
	want := len(cfg2.Trace) + len(tags) + 1
	if res.Requests < want {
		t.Errorf("restored session routed %d requests, want >= %d (all acked injections replayed)", res.Requests, want)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Errorf("after restore: %v", err)
	}
}

// TestDurableDeterministicReplay pins that restoring twice from the same
// state directory yields identical sessions: same boundary, same request
// counts after the same advance.
func TestDurableDeterministicReplay(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := NewDurable(durableConfig(t, dir, clock))
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	clock.advance(2 * time.Second)
	s.Advance()
	if _, _, err := s.Inject(512, 64, false); err != nil {
		t.Fatalf("inject: %v", err)
	}
	s.mu.Lock()
	if err := s.checkpointLocked(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s.mu.Unlock()

	stats := make([]Stats, 2)
	for i := range stats {
		c := newFakeClock()
		r, err := Restore(durableConfig(t, dir, c))
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		c.advance(3 * time.Second)
		r.Advance()
		stats[i] = r.Stats()
		r.wal.close()
	}
	if stats[0] != stats[1] {
		t.Errorf("restores diverged:\n%+v\n%+v", stats[0], stats[1])
	}
}

// TestWALTornTail verifies a torn final WAL line (crash mid-write,
// pre-ack) is dropped silently while earlier entries survive.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	wal := `{"tag":1,"at":5,"in":128,"out":16}` + "\n" + `{"tag":2,"at":9,"in":2`
	if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, maxTag, err := readWAL(dir)
	if err != nil {
		t.Fatalf("readWAL: %v", err)
	}
	if len(entries) != 1 || entries[0].Tag != 1 || maxTag != 1 {
		t.Errorf("got %d entries (maxTag %d), want the 1 complete entry", len(entries), maxTag)
	}
}

// TestWALMidFileCorruption verifies a malformed line that is NOT the tail
// is treated as corruption, not a torn write.
func TestWALMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	wal := `{"tag":1,"at":5,"in":128,"out":16}` + "\n" + "garbage\n" + `{"tag":3,"at":9,"in":128,"out":16}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readWAL(dir); err == nil {
		t.Error("readWAL accepted mid-file corruption")
	}
}

// TestAdmissionControl pins the 429 paths: an inflight cap and a lag cap
// both shed with OverloadError and count in Stats.AdmissionShed.
func TestAdmissionControl(t *testing.T) {
	clock := newFakeClock()
	opts := core.SinglePool()
	opts.Seed = 7
	opts.Fidelity = core.FidelityEvent
	s := New(Config{
		Name:        "singlepool",
		Opts:        opts,
		Trace:       testTrace(5, 5),
		Speed:       10,
		Repo:        sharedRepo(),
		WallClock:   clock.now,
		Logf:        t.Logf,
		MaxInflight: 1,
	})
	if _, _, err := s.Inject(128, 16, true); err != nil {
		t.Fatalf("first inject: %v", err)
	}
	_, _, err := s.Inject(128, 16, true)
	oe, ok := err.(*OverloadError)
	if !ok {
		t.Fatalf("second inject: got %v, want OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want positive", oe.RetryAfter)
	}
	if got := s.Stats().AdmissionShed; got != 1 {
		t.Errorf("AdmissionShed = %d, want 1", got)
	}

	// Lag-based shedding: jump the wall clock far ahead without advancing.
	s2 := New(Config{
		Name:          "singlepool",
		Opts:          opts,
		Trace:         testTrace(5, 5),
		Speed:         1000,
		Repo:          sharedRepo(),
		WallClock:     clock.now,
		Logf:          t.Logf,
		MaxLagSeconds: 30,
	})
	clock.advance(time.Second) // 1000 virtual s of lag
	if _, _, err := s2.Inject(128, 16, false); err == nil {
		t.Fatal("lagging session admitted an injection, want OverloadError")
	} else if _, ok := err.(*OverloadError); !ok {
		t.Fatalf("got %v, want OverloadError", err)
	}
}
