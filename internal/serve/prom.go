package serve

import (
	"bytes"
	"fmt"
	"io"

	"dynamollm/internal/metrics"
	"dynamollm/internal/workload"
)

// promQuantiles are the summary quantiles /metrics exports from every
// latency distribution.
var promQuantiles = [...]float64{50, 90, 99}

// WriteMetrics advances the session to the present and renders the
// Prometheus text exposition (/metrics): counters and gauges from the
// running aggregates plus TTFT/TBT summaries — cluster-wide and, under
// event fidelity, per request class — straight out of the O(1) streaming
// histograms. The exposition is rendered into a buffer under the session
// lock and written to w after releasing it, so a slow scraper can never
// stall the control plane.
func (s *Session) WriteMetrics(out io.Writer) {
	var buf bytes.Buffer
	s.renderMetrics(&buf)
	_, _ = out.Write(buf.Bytes())
}

func (s *Session) renderMetrics(w *bytes.Buffer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	res := s.live.Result()
	st := s.statsLocked()

	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP dynamollm_%s %s\n# TYPE dynamollm_%s gauge\n", name, help, name)
		fmt.Fprintf(w, "dynamollm_%s %g\n", name, v)
	}
	c := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP dynamollm_%s %s\n# TYPE dynamollm_%s counter\n", name, help, name)
		fmt.Fprintf(w, "dynamollm_%s %g\n", name, v)
	}

	g("virtual_seconds", "virtual time the simulation has served", st.VirtualSeconds)
	g("sim_lag_virtual_seconds", "virtual seconds the simulation trails the wall-clock pacer", st.SimLagSeconds)
	c("requests_total", "requests routed (base trace + injected)", float64(st.Requests))
	c("completed_total", "requests served to completion", float64(st.Completed))
	c("squashed_total", "requests dropped by emergency handling or outages", float64(st.Squashed))
	c("slo_met_total", "completed requests that met their SLO", float64(res.SLOMet))
	g("slo_attainment", "fraction of completed requests meeting SLOs", st.SLOAttainment)
	g("inflight_requests", "injected requests awaiting completion", float64(st.Inflight))
	c("energy_joules_total", "total cluster energy", res.EnergyJ)
	c("energy_cost_usd_total", "electricity bill at the time-varying price", res.EnergyCostUSD)
	g("servers_active", "live capacity in 8-GPU server equivalents", float64(st.ActiveServers))
	g("servers_avg", "time-averaged occupied servers", st.AvgServers)
	g("price_mult", "electricity-price multiplier in force", st.PriceMult)
	g("slo_factor", "SLO scaling factor in force", st.SLOFactor)
	c("reshards_total", "tensor-parallelism reconfigurations", float64(st.Reshards))
	c("scale_outs_total", "instances provisioned", float64(st.ScaleOuts))
	c("scale_ins_total", "instances retired by scale-in", float64(st.ScaleIns))
	c("emergencies_total", "instance-manager emergency escalations", float64(st.Emergencies))
	c("outages_total", "instances lost to injected failures", float64(st.Outages))
	c("recoveries_total", "servers restored by recovery events", float64(st.Recoveries))
	c("retried_total", "failed requests readmitted through the frontend retry queue", float64(st.Retried))
	c("retry_success_total", "retried requests that eventually completed", float64(st.RetrySuccess))
	c("shed_total", "requests dropped after exhausting their retry budget", float64(st.Shed))
	c("admission_shed_total", "injections rejected by admission control (HTTP 429)", float64(st.AdmissionShed))
	c("trace_loops_total", "base-trace replays", float64(st.TraceLoops))
	g("kv_used_blocks", "KV-cache occupancy summed over live event engines", float64(st.KVUsedBlocks))
	g("kv_total_blocks", "KV-cache capacity summed over live event engines", float64(st.KVTotalBlocks))
	c("kv_preemptions_total", "decode sequences preempted under KV pressure", float64(st.KVPreemptions))
	c("kv_prefix_hits_total", "prompt-prefix cache hits", float64(st.KVPrefixHits))
	c("kv_rejected_total", "admissions rejected as oversize for an empty KV pool", float64(st.KVRejected))
	c("kv_handoffs_total", "prefill-to-decode handoffs under disaggregation", float64(st.Handoffs))
	g("kv_tier_used_blocks", "spill-tier occupancy summed over live event engines", float64(st.KVTierUsedBlocks))
	g("kv_tier_total_blocks", "spill-tier capacity summed over live event engines", float64(st.KVTierTotalBlocks))
	c("kv_swap_outs_total", "sequences swapped out to the spill tier", float64(st.KVSwapOuts))
	c("kv_swap_ins_total", "sequences swapped back in from the spill tier", float64(st.KVSwapIns))
	c("kv_recomputes_total", "preempted sequences resolved by prefill recompute", float64(st.KVRecomputes))
	c("kv_tier_evictions_total", "spilled sequences evicted from a full tier to recompute", float64(st.KVTierEvictions))

	writeSummary(w, "ttft_seconds", "time to first token", "", res.TTFT)
	writeSummary(w, "tbt_seconds", "time between tokens", "", res.TBT)

	// Per-class token-level latencies exist under event fidelity only.
	if res.ClassTTFT[0] != nil {
		writeClassHeader(w, "class_ttft_seconds", "per-class time to first token (token-level, event fidelity)")
		for _, cls := range workload.AllClasses {
			writeSummaryRows(w, "class_ttft_seconds", fmt.Sprintf(`class=%q`, cls.String()), res.ClassTTFT[cls])
		}
		writeClassHeader(w, "class_tbt_seconds", "per-class time between tokens (token-level, event fidelity)")
		for _, cls := range workload.AllClasses {
			writeSummaryRows(w, "class_tbt_seconds", fmt.Sprintf(`class=%q`, cls.String()), res.ClassTBT[cls])
		}
	}
}

func writeClassHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP dynamollm_%s %s\n# TYPE dynamollm_%s summary\n", name, help, name)
}

// writeSummary emits one full summary metric (header plus rows).
func writeSummary(w io.Writer, name, help, labels string, d *metrics.Dist) {
	writeClassHeader(w, name, help)
	writeSummaryRows(w, name, labels, d)
}

// writeSummaryRows emits the quantile/sum/count rows of one summary
// series, merging the optional extra labels with the quantile label.
func writeSummaryRows(w io.Writer, name string, labels string, d *metrics.Dist) {
	qlabels := `quantile`
	if labels != "" {
		qlabels = labels + ",quantile"
	}
	for _, q := range promQuantiles {
		fmt.Fprintf(w, "dynamollm_%s{%s=\"%g\"} %g\n", name, qlabels, q/100, d.Percentile(q))
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "dynamollm_%s_sum%s %g\n", name, suffix, d.Mean()*float64(d.N()))
	fmt.Fprintf(w, "dynamollm_%s_count%s %d\n", name, suffix, d.N())
}
