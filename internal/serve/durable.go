package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// Crash durability. The simulation itself is deterministic: given the base
// trace, the options, and the set of injected arrivals, replaying from
// virtual zero reproduces the exact pre-crash state. So the durable record
// is small — a write-ahead log of every acked injection (synced before the
// ack leaves the process) plus a periodic checkpoint of the session's
// progress marker (how far virtual time got, the next tag). Restore
// rebuilds the session from its configuration, re-injects the WAL at the
// original virtual instants, fast-forwards to the checkpointed boundary,
// and resumes the pacer from there. Requests acked after the last
// checkpoint are still in the WAL and simply land in the session's future.

// CheckpointFile is the on-disk checkpoint: enough to rebuild an identical
// session (via Meta, the caller's own flags) plus the progress marker the
// replay fast-forwards to.
type CheckpointFile struct {
	Version          int               `json:"version"`
	System           string            `json:"system"`
	Seed             uint64            `json:"seed"`
	Speed            float64           `json:"speed"`
	Fidelity         string            `json:"fidelity"`
	Loop             bool              `json:"loop"`
	BoundaryVirtualS float64           `json:"boundary_virtual_s"`
	NextTag          uint64            `json:"next_tag"`
	Loops            int               `json:"trace_loops"`
	Meta             map[string]string `json:"meta,omitempty"`
}

const checkpointVersion = 1

func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint.json") }
func walPath(dir string) string        { return filepath.Join(dir, "wal.jsonl") }

// ReadCheckpoint loads the checkpoint from a state directory.
// cmd/dynamoserve reads it before Restore to reconstruct the session
// configuration (system, seed, speed, fidelity, loop, and its own Meta).
func ReadCheckpoint(dir string) (*CheckpointFile, error) {
	data, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		return nil, err
	}
	var ck CheckpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", checkpointPath(dir), err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", checkpointPath(dir), ck.Version, checkpointVersion)
	}
	return &ck, nil
}

// writeCheckpoint atomically replaces the checkpoint: write a temp file,
// sync it, then rename over the old one, so a crash mid-write leaves the
// previous checkpoint intact.
func writeCheckpoint(dir string, ck CheckpointFile) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := checkpointPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, checkpointPath(dir))
}

// checkpointLocked writes the current progress marker. Caller holds mu.
func (s *Session) checkpointLocked() error {
	ck := CheckpointFile{
		Version:          checkpointVersion,
		System:           s.cfg.Name,
		Seed:             s.cfg.Opts.Seed,
		Speed:            s.cfg.Speed,
		Fidelity:         s.live.Options().Fidelity.String(),
		Loop:             s.cfg.Loop,
		BoundaryVirtualS: float64(s.live.Boundary()),
		NextTag:          s.nextTag,
		Loops:            s.loops,
		Meta:             s.cfg.Meta,
	}
	if err := writeCheckpoint(s.cfg.StateDir, ck); err != nil {
		return err
	}
	s.lastCkptAt = s.live.Boundary()
	return nil
}

// --- Write-ahead log ---------------------------------------------------------

// walEntry is one acked injection, as a JSON line.
type walEntry struct {
	Tag uint64  `json:"tag"`
	At  float64 `json:"at"`
	In  int     `json:"in"`
	Out int     `json:"out"`
}

// walFile appends acked injections; every append is synced before it
// returns, because Inject acks only after the entry is durable.
type walFile struct {
	f *os.File
}

func openWAL(dir string, truncate bool) (*walFile, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(walPath(dir), flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &walFile{f: f}, nil
}

func (w *walFile) append(e trace.Entry) error {
	data, err := json.Marshal(walEntry{Tag: e.Tag, At: float64(e.At), In: e.InputTokens, Out: e.OutputTokens})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walFile) close() {
	w.f.Close()
}

// readWAL parses the log back into trace entries. A torn final line (the
// process died mid-write, before the ack) is skipped: the client never got
// an ack for it, so dropping it is correct. A malformed line anywhere else
// is real corruption and errors out.
func readWAL(dir string) ([]trace.Entry, uint64, error) {
	f, err := os.Open(walPath(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	var (
		entries []trace.Entry
		maxTag  uint64
		badLine error
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if badLine != nil {
			// A parse failure followed by more lines is corruption, not a
			// torn tail.
			return nil, 0, badLine
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e walEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			badLine = fmt.Errorf("wal %s line %d: %w", walPath(dir), line, err)
			continue
		}
		entries = append(entries, trace.Entry{
			At:           simclock.Time(e.At),
			Tag:          e.Tag,
			InputTokens:  e.In,
			OutputTokens: e.Out,
		})
		if e.Tag > maxTag {
			maxTag = e.Tag
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return entries, maxTag, nil
}

// --- Constructors ------------------------------------------------------------

// NewDurable builds a fresh session with crash durability when
// Config.StateDir is set: the WAL is truncated and an initial checkpoint
// written, so the directory always describes this session. An existing
// checkpoint in the directory is overwritten — use Restore to resume it
// instead.
func NewDurable(cfg Config) (*Session, error) {
	s := New(cfg)
	if cfg.StateDir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	if _, err := os.Stat(checkpointPath(cfg.StateDir)); err == nil {
		s.logf("serve: state dir %s holds a previous session; starting fresh (run with restore to resume it)", cfg.StateDir)
	}
	w, err := openWAL(cfg.StateDir, true)
	if err != nil {
		return nil, fmt.Errorf("serve: wal: %w", err)
	}
	s.wal = w
	s.mu.Lock()
	err = s.checkpointLocked()
	s.mu.Unlock()
	if err != nil {
		w.close()
		return nil, fmt.Errorf("serve: initial checkpoint: %w", err)
	}
	return s, nil
}

// Restore rebuilds a killed session from its state directory. cfg must
// describe the same session the checkpoint was taken from (cmd/dynamoserve
// reconstructs it from ReadCheckpoint): the simulation is deterministic,
// so replaying the same base trace plus the WAL's injections at their
// original virtual instants, then fast-forwarding to the checkpointed
// boundary, reproduces the pre-crash state exactly. Requests acked after
// the final checkpoint sit in the restored session's near future and are
// served normally — no acked request is lost. Their original waiters are
// gone with the old process, so their completions resolve without
// delivery.
func Restore(cfg Config) (*Session, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Restore requires Config.StateDir")
	}
	ck, err := ReadCheckpoint(cfg.StateDir)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	entries, maxTag, err := readWAL(cfg.StateDir)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	s := New(cfg)
	resume := simclock.Time(ck.BoundaryVirtualS)
	s.pacer = simclock.NewPacerAt(s.cfg.Speed, resume, cfg.WallClock)
	s.nextTag = ck.NextTag
	if maxTag > s.nextTag {
		s.nextTag = maxTag
	}
	s.mu.Lock()
	s.extendLocked(resume)
	for _, e := range entries {
		at, err := s.live.Inject(e)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: restore: replay tag %d: %w", e.Tag, err)
		}
		if at > s.lastInjectedAt {
			s.lastInjectedAt = at
		}
	}
	s.live.AdvanceTo(resume)
	s.restoredAt = resume
	s.lastCkptAt = resume
	s.mu.Unlock()
	w, err := openWAL(cfg.StateDir, false)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: wal: %w", err)
	}
	s.wal = w
	s.logf("serve: restored at virtual t=%.0fs (%d WAL request(s) replayed, next tag %d)",
		float64(resume), len(entries), s.nextTag+1)
	return s, nil
}
