package solver

import (
	"math"
	"sync"
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/profile"
	"dynamollm/internal/workload"
)

var (
	prof     *profile.Profile
	profOnce sync.Once
)

func p70(t *testing.T) *profile.Profile {
	t.Helper()
	profOnce.Do(func() { prof = profile.Build(model.Llama2_70B, 1, nil) })
	return prof
}

func lambdaFor(cls workload.Class, tps float64) float64 {
	in, out := workload.RepresentativeLengths(cls)
	return tps / float64(in+out)
}

func TestSolveCoversLoad(t *testing.T) {
	p := p70(t)
	for _, cls := range []workload.Class{workload.SS, workload.MM, workload.LL} {
		lambda := lambdaFor(cls, 4000)
		a, err := Solve(p, cls, 32, lambda, Options{})
		if err != nil {
			t.Fatalf("%v: %v", cls, err)
		}
		if a.GPUs() > 32 {
			t.Errorf("%v: used %d GPUs > budget", cls, a.GPUs())
		}
		if cap := a.Capacity(p, cls); cap < lambda {
			t.Errorf("%v: capacity %v below load %v", cls, cap, lambda)
		}
		if a.PowerW <= 0 || math.IsInf(a.PowerW, 0) {
			t.Errorf("%v: bad power %v", cls, a.PowerW)
		}
	}
}

func TestSolveZeroLoad(t *testing.T) {
	a, err := Solve(p70(t), workload.MM, 16, 0, Options{})
	if err != nil || len(a.Groups) != 0 || a.PowerW != 0 {
		t.Errorf("zero load => empty assignment, got %v, %v", a, err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := p70(t)
	if _, err := Solve(p, workload.MM, 2, lambdaFor(workload.MM, 50000), Options{}); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, err := Solve(p, workload.MM, 0, 1, Options{}); err == nil {
		t.Error("zero GPU budget should error")
	}
}

// TestSolveOptimalityAgainstBruteForce cross-checks the refined load split
// against an exhaustive grid over single- and two-group assignments.
func TestSolveOptimalityAgainstBruteForce(t *testing.T) {
	p := p70(t)
	cls := workload.MM
	lambda := lambdaFor(cls, 3000)
	const budget = 16
	a, err := Solve(p, cls, budget, lambda, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: every count vector, every ladder freq combo, load
	// split on a fine grid.
	best := math.Inf(1)
	for n2 := 0; n2 <= budget/2; n2++ {
		for n4 := 0; n4*4 <= budget-2*n2; n4++ {
			for n8 := 0; n8*8 <= budget-2*n2-4*n4; n8++ {
				best = math.Min(best, bruteForce(p, cls, lambda, n2, n4, n8))
			}
		}
	}
	if a.PowerW > best*1.02+1e-9 {
		t.Errorf("solver %.2f W worse than brute force %.2f W", a.PowerW, best)
	}
}

func bruteForce(p *profile.Profile, cls workload.Class, lambda float64, n2, n4, n8 int) float64 {
	counts := []struct {
		tp model.TP
		n  int
	}{{model.TP2, n2}, {model.TP4, n4}, {model.TP8, n8}}
	var active []struct {
		tp model.TP
		n  int
	}
	for _, c := range counts {
		if c.n > 0 {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return math.Inf(1)
	}
	const steps = 20
	best := math.Inf(1)
	var rec func(idx int, remaining float64, acc float64)
	rec = func(idx int, remaining float64, acc float64) {
		if acc >= best {
			return
		}
		if idx == len(active)-1 {
			w, ok := groupPower(p, cls, active[idx].tp, active[idx].n, remaining)
			if ok && acc+w < best {
				best = acc + w
			}
			return
		}
		for s := 0; s <= steps; s++ {
			part := remaining * float64(s) / steps
			w, ok := groupPower(p, cls, active[idx].tp, active[idx].n, part)
			if ok {
				rec(idx+1, remaining-part, acc+w)
			}
		}
	}
	rec(0, lambda, 0)
	return best
}

func groupPower(p *profile.Profile, cls workload.Class, tp model.TP, n int, load float64) (float64, bool) {
	loadEach := load / float64(n)
	best := math.Inf(1)
	for _, f := range gpu.Ladder() {
		e := p.Entry(profile.Key{Class: cls, TP: tp, Freq: f})
		if e != nil && e.Feasible(loadEach) {
			if w := e.Power.At(loadEach); w < best {
				best = w
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best * float64(n), true
}

// TestFixedFreqCostsMore: the pool manager's fixed-max-frequency
// simplification can never beat the full optimization.
func TestFixedFreqCostsMore(t *testing.T) {
	p := p70(t)
	lambda := lambdaFor(workload.MM, 3000)
	full, err1 := Solve(p, workload.MM, 16, lambda, Options{})
	fixed, err2 := SolveSharding(p, workload.MM, 16, lambda)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fixed.PowerW < full.PowerW-1e-9 {
		t.Errorf("fixed-frequency solve (%v W) beat full solve (%v W)", fixed.PowerW, full.PowerW)
	}
}

// TestMoreGPUsNeverHurt: enlarging the budget cannot increase optimal power.
func TestMoreGPUsNeverHurt(t *testing.T) {
	p := p70(t)
	lambda := lambdaFor(workload.MM, 2000)
	prev := math.Inf(1)
	for _, budget := range []int{8, 16, 24, 32} {
		a, err := Solve(p, workload.MM, budget, lambda, Options{})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if a.PowerW > prev+1e-9 {
			t.Errorf("budget %d: power %v worse than smaller budget %v", budget, a.PowerW, prev)
		}
		prev = a.PowerW
	}
}

// TestSolvePrefersEfficientShardingForShortRequests: SS load fits TP2
// instances, which the optimizer should prefer over TP8 (Table I).
func TestSolvePrefersEfficientShardingForShortRequests(t *testing.T) {
	p := p70(t)
	a, err := Solve(p, workload.SS, 8, lambdaFor(workload.SS, 2000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range a.Groups {
		if g.TP == model.TP8 {
			t.Errorf("SS assignment uses TP8: %v", a)
		}
	}
}

// TestSolveFrequencyTracksLoad: for short requests (feasible across the
// whole ladder) the optimizer clocks down at low load.
func TestSolveFrequencyTracksLoad(t *testing.T) {
	p := p70(t)
	low, err := Solve(p, workload.SS, 8, lambdaFor(workload.SS, 400), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range low.Groups {
		if g.Freq >= gpu.MaxFreq {
			t.Errorf("low load chose max frequency: %v", low)
		}
	}
}

func TestMaxGroupsBound(t *testing.T) {
	p := p70(t)
	a, err := Solve(p, workload.MM, 24, lambdaFor(workload.MM, 5000), Options{MaxGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) > 1 {
		t.Errorf("MaxGroups=1 produced %d groups", len(a.Groups))
	}
}

func TestNodesForPeak(t *testing.T) {
	p := p70(t)
	ml := p.MaxLoadHighestPerf(workload.MM)
	cases := []struct {
		peak float64
		want int
	}{
		{0, 0},
		{ml * 0.5, 1},
		{ml, 1},
		{ml * 1.01, 2},
		{ml * 3.5, 4},
	}
	for _, c := range cases {
		if got := NodesForPeak(p, workload.MM, c.peak); got != c.want {
			t.Errorf("NodesForPeak(%v) = %d, want %d", c.peak, got, c.want)
		}
	}
}

func TestAssignmentAccessors(t *testing.T) {
	a := Assignment{Groups: []Group{
		{TP: model.TP2, Count: 3},
		{TP: model.TP8, Count: 1},
	}}
	if a.GPUs() != 14 {
		t.Errorf("GPUs = %d, want 14", a.GPUs())
	}
	if a.Instances() != 4 {
		t.Errorf("Instances = %d, want 4", a.Instances())
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestSolveCostObjective(t *testing.T) {
	p := p70(t)
	lambda := lambdaFor(workload.MM, 2000)

	// With electricity free, cost reduces to GPU rental: the solver must
	// pick the assignment with the fewest GPUs that covers the load.
	rentalOnly := CostWeights{GPUHourUSD: 12, EnergyUSDPerKWh: 0}
	a, err := SolveCost(p, workload.MM, 32, lambda, rentalOnly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minGPUs := 33
	for budget := 2; budget <= 32; budget++ {
		if b, err := Solve(p, workload.MM, budget, lambda, Options{}); err == nil && b.GPUs() < minGPUs {
			minGPUs = b.GPUs()
		}
	}
	if a.GPUs() != minGPUs {
		t.Errorf("rental-only cost solve used %d GPUs, minimum feasible is %d", a.GPUs(), minGPUs)
	}

	// With rental free, the cost objective degenerates to the power
	// objective: both solves must agree on the optimum power.
	powerOnly := CostWeights{GPUHourUSD: 0, EnergyUSDPerKWh: 0.12}
	ac, err := SolveCost(p, workload.MM, 32, lambda, powerOnly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Solve(p, workload.MM, 32, lambda, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac.PowerW-ap.PowerW) > 1e-6 {
		t.Errorf("electricity-only cost solve power %v != power solve %v", ac.PowerW, ap.PowerW)
	}

	// The reported optimum is never beaten by the other objective's pick.
	if rentalOnly.HourlyUSD(ap) < rentalOnly.HourlyUSD(a)-1e-9 {
		t.Errorf("power optimum is cheaper than cost optimum under rental weights: %v < %v",
			rentalOnly.HourlyUSD(ap), rentalOnly.HourlyUSD(a))
	}
}

func TestSolveCostInfeasible(t *testing.T) {
	p := p70(t)
	if _, err := SolveCost(p, workload.LL, 2, lambdaFor(workload.LL, 50000),
		CostWeights{GPUHourUSD: 12, EnergyUSDPerKWh: 0.03}, Options{}); err == nil {
		t.Error("expected infeasible")
	}
}
