// Package solver implements the configuration optimizer of §IV-A, Eq. (1):
//
//	min  Σ N_TPi · Energy_TPi,fi(L_TPi)        i ∈ {2, 4, 8}
//	s.t. Σ i·N_TPi ≤ N                         (GPU budget)
//	     Σ N_TPi·L_TPi ≥ L                     (load coverage)
//	     Performance_TPi,fi(L_TPi) ≤ SLO       (latency)
//
// The paper feeds this to a PuLP MILP solver; the knob space is small
// enough (three parallelisms, eight ladder frequencies, fair-share loads)
// that exact enumeration with an exact inner frequency optimization finds
// the true optimum. The enumeration cost — like the MILP's hundreds of
// milliseconds — is what motivates the hierarchical decomposition, so the
// package exposes both the full problem and the pool manager's simplified
// fixed-frequency variant (§IV-B).
package solver

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/profile"
	"dynamollm/internal/workload"
)

// Group is one homogeneous set of instances in an assignment: the paper's
// N_TPi instances at frequency f_i each receiving the fair share L_TPi.
type Group struct {
	TP        model.TP
	Count     int
	Freq      gpu.Freq
	LoadEach  float64 // req/s per instance
	PowerEach float64 // watts per instance
}

// GPUs returns the GPUs consumed by the group.
func (g Group) GPUs() int { return g.Count * g.TP.GPUs() }

// Assignment is a solved configuration.
type Assignment struct {
	Groups []Group
	// PowerW is the summed average power (the energy rate being
	// minimized; energy over an epoch is PowerW x epoch).
	PowerW float64
}

// GPUs returns total GPUs used.
func (a Assignment) GPUs() int {
	n := 0
	for _, g := range a.Groups {
		n += g.GPUs()
	}
	return n
}

// Instances returns the total instance count.
func (a Assignment) Instances() int {
	n := 0
	for _, g := range a.Groups {
		n += g.Count
	}
	return n
}

// Capacity returns the total feasible load (req/s) the assignment covers.
func (a Assignment) Capacity(p *profile.Profile, cls workload.Class) float64 {
	c := 0.0
	for _, g := range a.Groups {
		e := p.Entry(profile.Key{Class: cls, TP: g.TP, Freq: g.Freq})
		if e != nil {
			c += e.MaxLoad * float64(g.Count)
		}
	}
	return c
}

func (a Assignment) String() string {
	s := ""
	for i, g := range a.Groups {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%dx%v@%v", g.Count, g.TP, g.Freq)
	}
	return fmt.Sprintf("{%s, %.0fW}", s, a.PowerW)
}

// Options tunes the solve.
type Options struct {
	// FixedFreq pins every group to one frequency (the pool manager's
	// simplification assumes max frequency); zero means optimize per
	// group over the whole ladder.
	FixedFreq gpu.Freq
	// MaxGroups bounds how many distinct TP degrees may be mixed
	// (0 = no bound). The paper's pools mix degrees freely (Fig. 10).
	MaxGroups int
	// SLOScale relaxes the SLO (1 = Table IV).
	SLOScale float64
}

// ErrInfeasible is returned when no configuration within the GPU budget
// covers the load within the SLO.
var ErrInfeasible = errors.New("solver: no feasible configuration")

// Solve finds the minimum-power assignment serving lambda req/s of the
// class within totalGPUs. It enumerates instance-count vectors exactly;
// for each vector it splits load across groups with a convex
// water-filling refinement and picks each group's least-energy feasible
// frequency exactly from the profile.
func Solve(p *profile.Profile, cls workload.Class, totalGPUs int, lambda float64, opts Options) (Assignment, error) {
	return solveScored(p, cls, totalGPUs, lambda, opts, func(a Assignment) float64 {
		return a.PowerW
	})
}

// CostWeights prices an assignment in dollars per hour, turning the
// solver's power objective into a cost objective: GPU rental (the
// dominant §V-F term) plus electricity at the current — possibly
// scenario-perturbed — grid price. A high electricity price pushes the
// optimum toward fewer joules even at the expense of more GPUs; a cheap
// one toward releasing machines.
type CostWeights struct {
	// GPUHourUSD is the rental price of one GPU for one hour.
	GPUHourUSD float64
	// EnergyUSDPerKWh is the effective electricity price.
	EnergyUSDPerKWh float64
}

// HourlyUSD prices an assignment: rental for its GPUs plus electricity
// for its average power over one hour.
func (w CostWeights) HourlyUSD(a Assignment) float64 {
	return float64(a.GPUs())*w.GPUHourUSD + a.PowerW/1000*w.EnergyUSDPerKWh
}

// SolveCost is Solve with a dollar-per-hour objective instead of watts:
// it returns the cheapest assignment under the weights that serves lambda
// req/s within the GPU budget. Within one instance-count vector the GPU
// rental is constant, so the power-optimal frequency split is also the
// cost-optimal one; only the comparison across vectors changes.
func SolveCost(p *profile.Profile, cls workload.Class, totalGPUs int, lambda float64, w CostWeights, opts Options) (Assignment, error) {
	return solveScored(p, cls, totalGPUs, lambda, opts, w.HourlyUSD)
}

// solveScored enumerates instance-count vectors and keeps the assignment
// minimizing score (power for Solve, dollars for SolveCost).
func solveScored(p *profile.Profile, cls workload.Class, totalGPUs int, lambda float64, opts Options, score func(Assignment) float64) (Assignment, error) {
	if totalGPUs <= 0 {
		return Assignment{}, fmt.Errorf("solver: non-positive GPU budget %d", totalGPUs)
	}
	if lambda <= 0 {
		return Assignment{}, nil // nothing to serve: empty assignment
	}

	best := Assignment{PowerW: math.Inf(1)}
	bestScore := math.Inf(1)
	n2max := totalGPUs / 2
	for n2 := 0; n2 <= n2max; n2++ {
		for n4 := 0; n4*4 <= totalGPUs-n2*2; n4++ {
			for n8 := 0; n8*8 <= totalGPUs-n2*2-n4*4; n8++ {
				counts := map[model.TP]int{model.TP2: n2, model.TP4: n4, model.TP8: n8}
				groups := activeGroups(counts)
				if len(groups) == 0 {
					continue
				}
				if opts.MaxGroups > 0 && len(groups) > opts.MaxGroups {
					continue
				}
				a, ok := evaluate(p, cls, counts, lambda, opts)
				if ok {
					if s := score(a); s < bestScore-1e-9 {
						best, bestScore = a, s
					}
				}
			}
		}
	}
	if math.IsInf(best.PowerW, 1) {
		return Assignment{}, ErrInfeasible
	}
	return best, nil
}

func activeGroups(counts map[model.TP]int) []model.TP {
	var tps []model.TP
	for _, tp := range model.TPChoices {
		if counts[tp] > 0 {
			tps = append(tps, tp)
		}
	}
	return tps
}

// evaluate prices one instance-count vector: split the load, choose
// frequencies, and sum power. Reports ok=false when the vector cannot
// cover the load within the SLO.
func evaluate(p *profile.Profile, cls workload.Class, counts map[model.TP]int, lambda float64, opts Options) (Assignment, bool) {
	tps := activeGroups(counts)

	// Per-group capacity at the most permissive frequency.
	capEach := map[model.TP]float64{}
	for _, tp := range tps {
		f := gpu.MaxFreq
		if opts.FixedFreq != 0 {
			f = opts.FixedFreq
		}
		e := p.Entry(profile.Key{Class: cls, TP: tp, Freq: f})
		if e == nil || e.MaxLoad <= 0 {
			capEach[tp] = 0
			continue
		}
		capEach[tp] = e.MaxLoad
	}
	total := 0.0
	for _, tp := range tps {
		total += capEach[tp] * float64(counts[tp])
	}
	if total < lambda {
		return Assignment{}, false
	}

	// Initial split: proportional to group capacity; then refine by
	// moving load between groups while power improves (the continuous
	// L_TPi dimension of the MILP).
	share := map[model.TP]float64{}
	for _, tp := range tps {
		share[tp] = capEach[tp] * float64(counts[tp]) / total * lambda
	}
	price := func(split map[model.TP]float64) (float64, map[model.TP]Group, bool) {
		sum := 0.0
		groups := map[model.TP]Group{}
		for _, tp := range tps {
			loadEach := split[tp] / float64(counts[tp])
			g, ok := bestGroupFreq(p, cls, tp, counts[tp], loadEach, opts)
			if !ok {
				return 0, nil, false
			}
			groups[tp] = g
			sum += g.PowerEach * float64(g.Count)
		}
		return sum, groups, true
	}

	bestPower, bestGroups, ok := price(share)
	if !ok {
		return Assignment{}, false
	}
	if len(tps) > 1 {
		// Coordinate-descent refinement on the load split.
		step := lambda / 8
		for iter := 0; iter < 24 && step > lambda/512; iter++ {
			improved := false
			for _, from := range tps {
				for _, to := range tps {
					if from == to || share[from] < step {
						continue
					}
					if share[to]+step > capEach[to]*float64(counts[to]) {
						continue
					}
					trial := map[model.TP]float64{}
					//dynamolint:order-independent map-to-map rebuild; the result is keyed, not ordered
					for k, v := range share {
						trial[k] = v
					}
					trial[from] -= step
					trial[to] += step
					if w, g, ok := price(trial); ok && w < bestPower-1e-9 {
						bestPower, bestGroups, share = w, g, trial
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
			}
		}
	}

	a := Assignment{PowerW: bestPower}
	for _, tp := range tps {
		a.Groups = append(a.Groups, bestGroups[tp])
	}
	sort.Slice(a.Groups, func(i, j int) bool { return a.Groups[i].TP < a.Groups[j].TP })
	return a, true
}

// bestGroupFreq picks the least-energy feasible ladder frequency for a
// group, or the fixed frequency if pinned.
func bestGroupFreq(p *profile.Profile, cls workload.Class, tp model.TP, count int, loadEach float64, opts Options) (Group, bool) {
	try := func(f gpu.Freq) (Group, bool) {
		e := p.Entry(profile.Key{Class: cls, TP: tp, Freq: f})
		if e == nil || !e.Feasible(loadEach) {
			return Group{}, false
		}
		return Group{
			TP:        tp,
			Count:     count,
			Freq:      f,
			LoadEach:  loadEach,
			PowerEach: e.Power.At(loadEach),
		}, true
	}
	if opts.FixedFreq != 0 {
		return try(opts.FixedFreq)
	}
	best := Group{PowerEach: math.Inf(1)}
	found := false
	for _, f := range gpu.Ladder() {
		if g, ok := try(f); ok && g.PowerEach < best.PowerEach {
			best, found = g, true
		}
	}
	return best, found
}

// SolveSharding is the pool manager's simplified problem (§IV-B
// "Shard-up/down"): all instances assumed at the highest frequency,
// only the parallelism mix is chosen.
func SolveSharding(p *profile.Profile, cls workload.Class, totalGPUs int, lambda float64) (Assignment, error) {
	return Solve(p, cls, totalGPUs, lambda, Options{FixedFreq: gpu.MaxFreq})
}

// NodesForPeak computes the cluster manager's node count (§IV-B
// "Scale-out/in"): ceil(PL/ML) instances at the highest-performance
// configuration for the predicted peak load PL.
func NodesForPeak(p *profile.Profile, cls workload.Class, predictedPeak float64) int {
	ml := p.MaxLoadHighestPerf(cls)
	if ml <= 0 || predictedPeak <= 0 {
		return 0
	}
	return int(math.Ceil(predictedPeak / ml))
}
