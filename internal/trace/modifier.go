package trace

import (
	"math"
	"sort"

	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// A Modifier transforms a trace into a perturbed trace. Modifiers are the
// composable building blocks of the scenario engine: a scenario compiles
// its trace-level events (load spikes, request-mix shifts) into a modifier
// chain and applies it to the base trace before the simulation starts, so
// the tick loop only ever sees a plain, time-ordered Trace.
//
// Modifiers must be deterministic (all randomness from an explicit seed)
// and must not mutate their input; they may return the input unchanged
// when they have nothing to do.
type Modifier func(Trace) Trace

// Compose chains modifiers left to right into one: Compose(a, b)(tr) is
// b(a(tr)). Composing nothing returns the identity modifier.
func Compose(mods ...Modifier) Modifier {
	return func(tr Trace) Trace {
		for _, m := range mods {
			tr = m(tr)
		}
		return tr
	}
}

// AmplifyWindow returns a modifier that multiplies the arrival rate by
// mult within [from, to). Rates above 1 model flash crowds: each request
// in the window spawns extra arrivals of the same class (fresh lengths,
// slightly jittered timestamps), which preserves the window's class mix
// and diurnal shape while scaling its intensity. Rates below 1 thin the
// window. Outside the window the trace is untouched; mult == 1 returns
// the input unchanged.
func AmplifyWindow(from, to simclock.Time, mult float64, seed uint64) Modifier {
	return func(tr Trace) Trace {
		if mult == 1 || from >= to || len(tr) == 0 {
			return tr
		}
		rng := simclock.NewRNG(seed ^ 0xA3F1)
		lenRNG := rng.Split(1)
		out := make(Trace, 0, len(tr))
		for _, e := range tr {
			if e.At < from || e.At >= to {
				out = append(out, e)
				continue
			}
			if mult < 1 {
				// Thinning preserves the Poisson structure.
				if rng.Float64() < mult {
					out = append(out, e)
				}
				continue
			}
			out = append(out, e)
			// Superpose extra arrivals: floor(mult-1) certain copies plus
			// a Bernoulli remainder, each with fresh lengths from the
			// original's class and a small forward jitter so the window's
			// arrival process stays locally Poisson-like.
			extra := mult - 1
			n := int(extra)
			if rng.Float64() < extra-float64(n) {
				n++
			}
			for k := 0; k < n; k++ {
				at := e.At + simclock.Time(rng.Float64())
				if at >= to {
					at = to - simclock.Time(1e-3)
				}
				in, outTok := SampleLengths(lenRNG, e.Class())
				out = append(out, Entry{At: at, InputTokens: in, OutputTokens: outTok})
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
		return out
	}
}

// GroupPrompts returns a modifier that assigns a PromptGroup to a share
// of the requests inside [from, to), modelling callers that reuse a
// shared prompt prefix (system prompts, few-shot templates). Each
// affected request joins one of groups equally likely; group IDs are
// offset by the seed so windows from different scenario events never
// collide. share <= 0 or groups <= 0 returns the input unchanged. A small
// groups value concentrates reuse (prefix-cache friendly); a large value
// cycles many distinct prefixes through the cache (cache thrash).
func GroupPrompts(from, to simclock.Time, share float64, groups int, seed uint64) Modifier {
	return func(tr Trace) Trace {
		if share <= 0 || groups <= 0 || from >= to || len(tr) == 0 {
			return tr
		}
		rng := simclock.NewRNG(seed ^ 0x6B5A)
		// Non-zero group base even for seed 0: group 0 means "no group".
		base := seed<<16 | 1
		out := make(Trace, len(tr))
		copy(out, tr)
		for i, e := range out {
			if e.At < from || e.At >= to || rng.Float64() >= share {
				continue
			}
			out[i].PromptGroup = base + uint64(rng.Intn(groups))
		}
		return out
	}
}

// ShiftMixWindow returns a modifier that re-draws a fraction of the
// requests inside [from, to) from a target class distribution: each
// affected request's class is sampled with probability proportional to
// weights (an absolute distribution over the nine classes, not a
// multiplier on the existing mix; zero-weight classes are never drawn),
// and its lengths are re-sampled for that class. frac in (0, 1] is the
// fraction of in-window requests affected; the remaining 1-frac keep the
// base mix, so the window's realized mix is a blend of the two. This
// models the paper's Fig. 1 popularity drift happening abruptly — e.g. a
// coding-agent launch flooding a conversation service with long-input
// requests.
func ShiftMixWindow(from, to simclock.Time, weights [workload.NumClasses]float64, frac float64, seed uint64) Modifier {
	return func(tr Trace) Trace {
		if frac <= 0 || from >= to || len(tr) == 0 {
			return tr
		}
		total := 0.0
		for _, w := range weights {
			total += math.Max(w, 0)
		}
		if total <= 0 {
			return tr
		}
		rng := simclock.NewRNG(seed ^ 0x315C)
		lenRNG := rng.Split(1)
		w := make([]float64, workload.NumClasses)
		for i := range w {
			w[i] = math.Max(weights[i], 0)
		}
		out := make(Trace, len(tr))
		copy(out, tr)
		for i, e := range out {
			if e.At < from || e.At >= to || rng.Float64() >= frac {
				continue
			}
			cls := workload.Class(rng.Pick(w))
			in, outTok := SampleLengths(lenRNG, cls)
			out[i].InputTokens, out[i].OutputTokens = in, outTok
		}
		return out
	}
}
