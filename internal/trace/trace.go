// Package trace generates and loads the inference invocation traces driving
// every experiment. The paper uses production traces of two Azure LLM
// services (Coding and Conversation) plus their open-source 1-hour subset;
// we substitute synthetic traces whose published statistics are reproduced:
//
//   - diurnal load shape: Coding peaks are 2.8x its average and 34.6x its
//     valley (deep nights/weekends); Conversation peaks are 1.7x average
//     and 3.3x valley (§III-B, Fig. 2);
//   - length mix: Conversation skews to short inputs / long outputs (ML
//     dominant); Coding skews the opposite way (Fig. 1);
//   - the request-type mix drifts over time (Fig. 1).
//
// Traces serialize to CSV (timestamp_s,input_tokens,output_tokens) so the
// cmd/tracegen tool can exchange them with other systems, and compose with
// the scenario engine's Modifier transforms (modifier.go) for injected
// load spikes and request-mix shifts.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"dynamollm/internal/order"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// Entry is one trace record: what the production trace contains (§III).
type Entry struct {
	At           simclock.Time
	InputTokens  int
	OutputTokens int

	// Tag is an opaque caller identifier propagated onto the
	// workload.Request the simulator builds from this entry. The live
	// serving session uses it to match injected requests with their
	// completions; generated and CSV-loaded entries leave it zero and it
	// is not serialized.
	Tag uint64

	// PromptGroup marks requests sharing a prompt prefix; it propagates
	// onto workload.Request.PromptGroup for the engine's prefix cache.
	// Like Tag it is assigned in memory (GroupPrompts modifier, live
	// injection) and not serialized to CSV.
	PromptGroup uint64
}

// Class returns the request class of the entry.
func (e Entry) Class() workload.Class {
	return workload.Classify(e.InputTokens, e.OutputTokens)
}

// Trace is a time-ordered list of invocations.
type Trace []Entry

// Service identifies one of the two profiled Azure services.
type Service int

// The two services from the paper.
const (
	Conversation Service = iota
	Coding
)

// String returns the service's lowercase name ("conversation", "coding").
func (s Service) String() string {
	if s == Coding {
		return "coding"
	}
	return "conversation"
}

// Profile holds the statistical shape of a service's workload.
type Profile struct {
	Service Service
	// PeakOverAvg and PeakOverValley pin the diurnal dynamic range.
	PeakOverAvg, PeakOverValley float64
	// WeekendFactor scales weekend load relative to weekdays.
	WeekendFactor float64
	// BaseClassWeights is the midweek average popularity of each class.
	BaseClassWeights [workload.NumClasses]float64
	// DriftAmp is the amplitude of the slow drift in class popularity.
	DriftAmp float64
}

// Profiles for the two services, calibrated to §III-B. Class weights encode
// Fig. 1: Conversation is output-heavy (SL/ML/LL prominent, ML dominant),
// Coding is input-heavy (MS/LS/LM prominent).
var profiles = map[Service]Profile{
	Conversation: {
		Service:        Conversation,
		PeakOverAvg:    1.7,
		PeakOverValley: 3.3,
		WeekendFactor:  0.85,
		BaseClassWeights: [workload.NumClasses]float64{
			// SS SM SL MS MM ML LS LM LL
			8, 12, 10, 6, 12, 22, 5, 10, 15,
		},
		DriftAmp: 0.35,
	},
	Coding: {
		Service:        Coding,
		PeakOverAvg:    2.8,
		PeakOverValley: 34.6,
		WeekendFactor:  0.25,
		BaseClassWeights: [workload.NumClasses]float64{
			// SS SM SL MS MM ML LS LM LL
			10, 6, 4, 18, 12, 6, 22, 14, 8,
		},
		DriftAmp: 0.3,
	},
}

// ProfileFor returns the calibrated profile of a service.
func ProfileFor(s Service) Profile { return profiles[s] }

// LoadShape returns the normalized load multiplier (peak = 1) at virtual
// time t, where t = 0 is Monday 00:00 local. The shape is a diurnal curve
// with working-hour peaks, night valleys, and weekend scaling, solved so
// that peak/avg and peak/valley match the profile.
func (p Profile) LoadShape(t simclock.Time) float64 {
	hours := float64(t) / 3600
	day := int(math.Mod(hours/24, 7))
	hourOfDay := math.Mod(hours, 24)

	// Diurnal curve: raised cosine peaking at 14:00. The weekly valley
	// (deep night on a weekend) must sit at 1/PeakOverValley, and weekend
	// days are scaled by WeekendFactor, so the weekday night valley is
	// 1/(PeakOverValley*WeekendFactor).
	valley := 1 / (p.PeakOverValley * p.WeekendFactor)
	if valley > 0.9 {
		valley = 0.9
	}
	diurnal := valley + (1-valley)*0.5*(1-math.Cos((hourOfDay-2)/24*2*math.Pi))

	weekend := 1.0
	if day >= 5 {
		weekend = p.WeekendFactor
	}
	return diurnal * weekend
}

// avgShape integrates the load shape over a week.
func (p Profile) avgShape() float64 {
	sum := 0.0
	const steps = 7 * 24 * 4
	for i := 0; i < steps; i++ {
		sum += p.LoadShape(simclock.Time(float64(i) / steps * 7 * 24 * 3600))
	}
	return sum / steps
}

// ClassWeights returns the class mix at time t. Popularity drifts slowly
// (period ~31 h so it never aligns with the diurnal cycle), shifting mass
// between input-heavy and output-heavy classes as Fig. 1 shows.
func (p Profile) ClassWeights(t simclock.Time) []float64 {
	hours := float64(t) / 3600
	drift := p.DriftAmp * math.Sin(hours/31*2*math.Pi)
	w := make([]float64, workload.NumClasses)
	for i, base := range p.BaseClassWeights {
		c := workload.Class(i)
		// Output-heavy classes gain when drift > 0, input-heavy when < 0.
		bias := 1.0
		switch {
		case c.Output() == workload.Long:
			bias = 1 + drift
		case c.Input() == workload.Long:
			bias = 1 - drift
		}
		w[i] = base * bias
		if w[i] < 0.1 {
			w[i] = 0.1
		}
	}
	return w
}

// ExpectedRate returns the expected arrival rate (req/s) of one class at
// time t for a service generated at the given peak rate — the ideal load
// curve used to pre-train the load predictor, standing in for the paper's
// historical weeks.
func ExpectedRate(svc Service, peakRPS float64, t simclock.Time, cls workload.Class) float64 {
	p := ProfileFor(svc)
	w := p.ClassWeights(t)
	total := 0.0
	for _, v := range w {
		total += v
	}
	return peakRPS * p.LoadShape(t) * w[cls] / total
}

// --- Generation ---------------------------------------------------------------

// GenConfig controls synthetic trace generation.
type GenConfig struct {
	Service Service
	// Start and Duration bound the trace window in virtual time
	// (t = 0 is Monday 00:00).
	Start    simclock.Time
	Duration simclock.Duration
	// PeakRPS is the request arrival rate at the weekly peak.
	PeakRPS float64
	// Seed makes generation reproducible.
	Seed uint64
}

// Generate produces a synthetic trace via an inhomogeneous Poisson process
// (thinning) over the service's load shape, with per-arrival lengths drawn
// from the time-varying class mix.
func Generate(cfg GenConfig) Trace {
	if cfg.PeakRPS <= 0 {
		panic("trace: PeakRPS must be positive")
	}
	rng := simclock.NewRNG(cfg.Seed)
	lenRNG := rng.Split(1)
	p := ProfileFor(cfg.Service)

	var tr Trace
	t := float64(cfg.Start)
	end := float64(cfg.Start) + cfg.Duration
	for {
		// Thinning: propose at the peak rate, accept with shape prob.
		t += rng.Exp(cfg.PeakRPS)
		if t >= end {
			break
		}
		if rng.Float64() > p.LoadShape(simclock.Time(t)) {
			continue
		}
		cls := workload.Class(rng.Pick(p.ClassWeights(simclock.Time(t))))
		in, out := SampleLengths(lenRNG, cls)
		tr = append(tr, Entry{At: simclock.Time(t), InputTokens: in, OutputTokens: out})
	}
	return tr
}

// SampleLengths draws input/output token counts for a class: log-normal
// within the bucket, clamped to the Table IV thresholds.
func SampleLengths(r *simclock.RNG, cls workload.Class) (in, out int) {
	in = sampleBucket(r, cls.Input(), true)
	out = sampleBucket(r, cls.Output(), false)
	return in, out
}

func sampleBucket(r *simclock.RNG, b workload.LengthBucket, isInput bool) int {
	var lo, hi int
	if isInput {
		switch b {
		case workload.Short:
			lo, hi = 32, workload.InputShortMax-1
		case workload.Medium:
			lo, hi = workload.InputShortMax, workload.InputMediumMax-1
		default:
			lo, hi = workload.InputMediumMax, workload.InputLongMax
		}
	} else {
		switch b {
		case workload.Short:
			lo, hi = 8, workload.OutputShortMax-1
		case workload.Medium:
			lo, hi = workload.OutputShortMax, workload.OutputMediumMax-1
		default:
			lo, hi = workload.OutputMediumMax, workload.OutputLongMax
		}
	}
	// Log-normal centred on the geometric middle of the bucket.
	mu := math.Log(math.Sqrt(float64(lo) * float64(hi)))
	v := int(r.LogNorm(mu, 0.5))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// --- Statistics ---------------------------------------------------------------

// Stats summarizes a trace for validation and the Fig. 1/2 experiments.
type Stats struct {
	Requests       int
	TotalTokens    float64
	ClassShare     [workload.NumClasses]float64 // fraction of requests
	PeakOverAvg    float64                      // token-rate dynamic range
	PeakOverValley float64
}

// Summarize computes trace statistics using hourly token-rate buckets.
func (tr Trace) Summarize() Stats {
	var st Stats
	st.Requests = len(tr)
	if len(tr) == 0 {
		return st
	}
	hourly := map[int]float64{}
	for _, e := range tr {
		st.TotalTokens += float64(e.InputTokens + e.OutputTokens)
		st.ClassShare[e.Class()]++
		hourly[int(float64(e.At)/3600)] += float64(e.InputTokens + e.OutputTokens)
	}
	for i := range st.ClassShare {
		st.ClassShare[i] /= float64(st.Requests)
	}
	// Sorted keys: the float sum below rounds differently per visit
	// order, so a bare map range would leak map randomization into
	// PeakOverAvg.
	peak, valley, sum := 0.0, math.Inf(1), 0.0
	for _, k := range order.Keys(hourly) {
		v := hourly[k]
		if v > peak {
			peak = v
		}
		if v < valley {
			valley = v
		}
		sum += v
	}
	avg := sum / float64(len(hourly))
	if avg > 0 {
		st.PeakOverAvg = peak / avg
	}
	if valley > 0 {
		st.PeakOverValley = peak / valley
	}
	return st
}

// TokenRate returns the total token throughput (tokens/s) of the trace
// bucketed at the given width, for the Fig. 2 load curves.
func (tr Trace) TokenRate(bucketSeconds float64) []struct{ Time, TPS float64 } {
	buckets := map[int]float64{}
	for _, e := range tr {
		buckets[int(float64(e.At)/bucketSeconds)] += float64(e.InputTokens + e.OutputTokens)
	}
	keys := order.Keys(buckets)
	out := make([]struct{ Time, TPS float64 }, len(keys))
	for i, k := range keys {
		out[i].Time = float64(k) * bucketSeconds
		out[i].TPS = buckets[k] / bucketSeconds
	}
	return out
}

// Window returns the sub-trace within [from, to), time-shifted so the first
// boundary becomes t=0.
func (tr Trace) Window(from, to simclock.Time) Trace {
	var out Trace
	for _, e := range tr {
		if e.At >= from && e.At < to {
			e.At -= from
			out = append(out, e)
		}
	}
	return out
}

// Scale multiplies the load by keeping each request with probability p
// (thinning preserves the Poisson structure).
func (tr Trace) Scale(p float64, seed uint64) Trace {
	if p >= 1 {
		return tr
	}
	r := simclock.NewRNG(seed)
	var out Trace
	for _, e := range tr {
		if r.Float64() < p {
			out = append(out, e)
		}
	}
	return out
}

// --- CSV I/O -------------------------------------------------------------------

// WriteCSV serializes the trace as "timestamp_s,input_tokens,output_tokens"
// with a header row.
func (tr Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "timestamp_s,input_tokens,output_tokens"); err != nil {
		return err
	}
	for _, e := range tr {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d\n", float64(e.At), e.InputTokens, e.OutputTokens); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (header optional).
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tr Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "timestamp")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(parts))
		}
		at, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", line, err)
		}
		in, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad input tokens: %v", line, err)
		}
		out, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad output tokens: %v", line, err)
		}
		tr = append(tr, Entry{At: simclock.Time(at), InputTokens: in, OutputTokens: out})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(tr, func(i, j int) bool { return tr[i].At < tr[j].At })
	return tr, nil
}

// OpenSourceHourStart is the window of the 1-hour open-source trace within
// the synthetic week: Tuesday 09:00, on the morning ramp, so the hour has
// the load dynamics visible in the paper's Figs. 9-10.
const OpenSourceHourStart = simclock.Time((24 + 9) * 3600)

// OpenSourceHour reproduces the paper's 1-hour open-source production trace
// [50]: a morning hour of the Conversation service with rising load.
// peakRPS sets the weekly peak intensity.
func OpenSourceHour(peakRPS float64, seed uint64) Trace {
	start := OpenSourceHourStart
	tr := Generate(GenConfig{
		Service:  Conversation,
		Start:    start,
		Duration: simclock.Hour,
		PeakRPS:  peakRPS,
		Seed:     seed,
	})
	return tr.Window(start, start+simclock.Time(simclock.Hour))
}
