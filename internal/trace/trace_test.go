package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

func weekTrace(t *testing.T, s Service) Trace {
	t.Helper()
	return Generate(GenConfig{
		Service:  s,
		Duration: simclock.Week,
		PeakRPS:  2.0,
		Seed:     42,
	})
}

func TestGenerateReproducible(t *testing.T) {
	a := weekTrace(t, Coding)
	b := weekTrace(t, Coding)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestGenerateOrderedAndBounded(t *testing.T) {
	tr := weekTrace(t, Conversation)
	if len(tr) < 1000 {
		t.Fatalf("suspiciously small trace: %d requests", len(tr))
	}
	prev := simclock.Time(-1)
	for _, e := range tr {
		if e.At < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = e.At
		if e.At < 0 || float64(e.At) > 7*24*3600 {
			t.Fatalf("timestamp out of window: %v", e.At)
		}
		if e.InputTokens < 1 || e.InputTokens > workload.InputLongMax {
			t.Fatalf("input tokens out of range: %d", e.InputTokens)
		}
		if e.OutputTokens < 1 || e.OutputTokens > workload.OutputLongMax {
			t.Fatalf("output tokens out of range: %d", e.OutputTokens)
		}
	}
}

// TestDiurnalDynamicRange pins the §III-B load statistics within tolerance.
func TestDiurnalDynamicRange(t *testing.T) {
	cases := []struct {
		svc                        Service
		wantPA, wantPV             float64
		tolPA, tolPVLow, tolPVHigh float64
	}{
		{Conversation, 1.7, 3.3, 0.4, 2.0, 6.0},
		{Coding, 2.8, 34.6, 0.7, 15, 80},
	}
	for _, c := range cases {
		st := weekTrace(t, c.svc).Summarize()
		if math.Abs(st.PeakOverAvg-c.wantPA) > c.tolPA {
			t.Errorf("%v peak/avg = %.2f, want ~%.1f", c.svc, st.PeakOverAvg, c.wantPA)
		}
		if st.PeakOverValley < c.tolPVLow || st.PeakOverValley > c.tolPVHigh {
			t.Errorf("%v peak/valley = %.1f, want ~%.1f", c.svc, st.PeakOverValley, c.wantPV)
		}
	}
}

// TestClassMixDirection pins Fig. 1: Conversation output-heavy (ML dominant
// among non-short), Coding input-heavy.
func TestClassMixDirection(t *testing.T) {
	conv := weekTrace(t, Conversation).Summarize()
	code := weekTrace(t, Coding).Summarize()

	longOut := func(s Stats) float64 {
		return s.ClassShare[workload.SL] + s.ClassShare[workload.ML] + s.ClassShare[workload.LL]
	}
	longIn := func(s Stats) float64 {
		return s.ClassShare[workload.LS] + s.ClassShare[workload.LM] + s.ClassShare[workload.LL]
	}
	if longOut(conv) <= longIn(conv) {
		t.Errorf("conversation should be output-heavy: longOut=%.2f longIn=%.2f", longOut(conv), longIn(conv))
	}
	if longIn(code) <= longOut(code) {
		t.Errorf("coding should be input-heavy: longIn=%.2f longOut=%.2f", longIn(code), longOut(code))
	}
	// Every class appears with a meaningful share (Fig. 1: "both services
	// have a significant fraction of each request type").
	for _, c := range workload.AllClasses {
		if conv.ClassShare[c] < 0.01 || code.ClassShare[c] < 0.01 {
			t.Errorf("class %v share too small: conv=%.3f code=%.3f", c, conv.ClassShare[c], code.ClassShare[c])
		}
	}
}

// TestClassMixDrifts pins the Fig. 1 time variation: the ML share changes
// substantially across the week.
func TestClassMixDrifts(t *testing.T) {
	tr := weekTrace(t, Conversation)
	shareIn := func(from, to float64) float64 {
		w := tr.Window(simclock.Time(from*3600), simclock.Time(to*3600))
		if len(w) == 0 {
			return 0
		}
		n := 0
		for _, e := range w {
			if e.Class().Output() == workload.Long {
				n++
			}
		}
		return float64(n) / float64(len(w))
	}
	lo, hi := math.Inf(1), 0.0
	for h := 0.0; h < 7*24; h += 12 {
		s := shareIn(h, h+12)
		if s == 0 {
			continue
		}
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi-lo < 0.08 {
		t.Errorf("long-output share barely drifts: [%.2f, %.2f]", lo, hi)
	}
}

func TestSampleLengthsInBucket(t *testing.T) {
	r := simclock.NewRNG(7)
	for _, cls := range workload.AllClasses {
		for i := 0; i < 200; i++ {
			in, out := SampleLengths(r, cls)
			if workload.Classify(in, out) != cls {
				t.Fatalf("sampled (%d,%d) classifies as %v, want %v",
					in, out, workload.Classify(in, out), cls)
			}
		}
	}
}

func TestLoadShapeBounds(t *testing.T) {
	for _, svc := range []Service{Conversation, Coding} {
		p := ProfileFor(svc)
		for h := 0.0; h < 7*24; h += 0.25 {
			v := p.LoadShape(simclock.Time(h * 3600))
			if v <= 0 || v > 1 {
				t.Fatalf("%v shape at %vh = %v, want (0,1]", svc, h, v)
			}
		}
	}
}

func TestWindowShiftsTime(t *testing.T) {
	tr := Trace{{At: 100}, {At: 150}, {At: 250}}
	w := tr.Window(100, 200)
	if len(w) != 2 || w[0].At != 0 || w[1].At != 50 {
		t.Fatalf("window = %+v", w)
	}
}

func TestScale(t *testing.T) {
	tr := weekTrace(t, Conversation)
	half := tr.Scale(0.5, 1)
	ratio := float64(len(half)) / float64(len(tr))
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("thinned ratio = %.3f, want ~0.5", ratio)
	}
	if got := tr.Scale(1.0, 1); len(got) != len(tr) {
		t.Error("Scale(1) should be identity")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := weekTrace(t, Coding)[:500]
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i].InputTokens != tr[i].InputTokens || got[i].OutputTokens != tr[i].OutputTokens {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], tr[i])
		}
		if math.Abs(float64(got[i].At-tr[i].At)) > 0.0011 {
			t.Fatalf("entry %d time drift: %v vs %v", i, got[i].At, tr[i].At)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1.0,2\n",
		"x,2,3\n",
		"1.0,x,3\n",
		"1.0,2,x\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
	tr, err := ReadCSV(strings.NewReader("timestamp_s,input_tokens,output_tokens\n\n1.5,10,20\n"))
	if err != nil || len(tr) != 1 {
		t.Errorf("header+blank handling: %v, %v", tr, err)
	}
}

func TestOpenSourceHour(t *testing.T) {
	tr := OpenSourceHour(2.0, 9)
	if len(tr) < 500 {
		t.Fatalf("1-hour trace too small: %d", len(tr))
	}
	for _, e := range tr {
		if e.At < 0 || float64(e.At) > 3600 {
			t.Fatalf("timestamp outside hour: %v", e.At)
		}
	}
	// Near the weekly peak the hour's rate should approach PeakRPS.
	rps := float64(len(tr)) / 3600
	if rps < 1.0 || rps > 2.2 {
		t.Errorf("hourly rate = %.2f req/s, want near peak 2.0", rps)
	}
}

func TestTokenRate(t *testing.T) {
	tr := Trace{
		{At: 10, InputTokens: 100, OutputTokens: 50},
		{At: 20, InputTokens: 200, OutputTokens: 50},
		{At: 70, InputTokens: 300, OutputTokens: 0},
	}
	pts := tr.TokenRate(60)
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if math.Abs(pts[0].TPS-400.0/60) > 1e-9 {
		t.Errorf("bucket 0 TPS = %v", pts[0].TPS)
	}
}

func TestGeneratePanicsWithoutRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(GenConfig{Service: Coding, Duration: 10})
}
