package trace

import (
	"testing"

	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

func testTrace(t *testing.T) Trace {
	t.Helper()
	return Generate(GenConfig{
		Service:  Conversation,
		Start:    OpenSourceHourStart,
		Duration: simclock.Hour,
		PeakRPS:  20,
		Seed:     7,
	}).Window(OpenSourceHourStart, OpenSourceHourStart+simclock.Time(simclock.Hour))
}

func countWindow(tr Trace, from, to simclock.Time) int {
	n := 0
	for _, e := range tr {
		if e.At >= from && e.At < to {
			n++
		}
	}
	return n
}

func TestAmplifyWindowScalesRate(t *testing.T) {
	tr := testTrace(t)
	from, to := simclock.Time(600), simclock.Time(1800)
	before := countWindow(tr, from, to)

	up := AmplifyWindow(from, to, 3, 42)(tr)
	after := countWindow(up, from, to)
	if ratio := float64(after) / float64(before); ratio < 2.6 || ratio > 3.4 {
		t.Errorf("amplify x3: window count %d -> %d (ratio %.2f), want ~3x", before, after, ratio)
	}
	// Outside the window nothing changes.
	if got, want := countWindow(up, 0, from), countWindow(tr, 0, from); got != want {
		t.Errorf("pre-window count changed: %d != %d", got, want)
	}
	// Output stays time-ordered.
	for i := 1; i < len(up); i++ {
		if up[i].At < up[i-1].At {
			t.Fatalf("amplified trace out of order at %d", i)
		}
	}

	down := AmplifyWindow(from, to, 0.25, 42)(tr)
	after = countWindow(down, from, to)
	if ratio := float64(after) / float64(before); ratio < 0.15 || ratio > 0.35 {
		t.Errorf("thin x0.25: window count %d -> %d (ratio %.2f), want ~0.25x", before, after, ratio)
	}
}

func TestAmplifyWindowIdentity(t *testing.T) {
	tr := testTrace(t)
	if got := AmplifyWindow(0, 3600, 1, 42)(tr); len(got) != len(tr) {
		t.Errorf("mult=1 changed the trace: %d -> %d entries", len(tr), len(got))
	}
}

func TestAmplifyWindowDeterministic(t *testing.T) {
	tr := testTrace(t)
	a := AmplifyWindow(600, 1800, 2.5, 99)(tr)
	b := AmplifyWindow(600, 1800, 2.5, 99)(tr)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestShiftMixWindow(t *testing.T) {
	tr := testTrace(t)
	var weights [workload.NumClasses]float64
	weights[workload.LL] = 1 // every re-drawn request becomes LL

	from, to := simclock.Time(0), simclock.Time(3600)
	shifted := ShiftMixWindow(from, to, weights, 0.8, 5)(tr)
	if len(shifted) != len(tr) {
		t.Fatalf("mix shift changed the request count: %d -> %d", len(tr), len(shifted))
	}
	ll := 0
	for _, e := range shifted {
		if e.Class() == workload.LL {
			ll++
		}
	}
	share := float64(ll) / float64(len(shifted))
	if share < 0.7 {
		t.Errorf("LL share after 80%% shift = %.2f, want >= 0.7", share)
	}
	// Arrival times are untouched.
	for i := range shifted {
		if shifted[i].At != tr[i].At {
			t.Fatalf("mix shift moved arrival %d", i)
		}
	}
	// The input trace itself is unchanged (no aliasing).
	orig := testTrace(t)
	for i := range tr {
		if tr[i] != orig[i] {
			t.Fatalf("ShiftMixWindow mutated its input at %d", i)
		}
	}
}

func TestComposeOrder(t *testing.T) {
	tr := testTrace(t)
	mod := Compose(
		AmplifyWindow(600, 1800, 2, 1),
		AmplifyWindow(600, 1800, 0.5, 2),
	)
	got := mod(tr)
	// 2x then 0.5x is ~1x on expectation; mostly this asserts the chain
	// runs left to right without panicking and stays ordered.
	if len(got) == 0 {
		t.Fatal("composed modifier emptied the trace")
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("composed trace out of order at %d", i)
		}
	}
	if id := Compose(); len(id(tr)) != len(tr) {
		t.Error("empty Compose is not identity")
	}
}
