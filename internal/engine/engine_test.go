package engine

import (
	"math"
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

func cfg70(tp model.TP, f gpu.Freq) perfmodel.Config {
	return perfmodel.Config{Model: model.Llama2_70B, TP: tp, Freq: f}
}

func TestSingleRequestLifecycle(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	req := &workload.Request{Arrival: 0, InputTokens: 512, OutputTokens: 10}
	eng.Submit(req)
	clock.Run()
	if eng.Completed != 1 {
		t.Fatalf("completed = %d, want 1", eng.Completed)
	}
	if req.FirstToken <= 0 || req.Finish < req.FirstToken {
		t.Fatalf("timestamps: first=%v finish=%v", req.FirstToken, req.Finish)
	}
	// Isolated TTFT should be close to the analytic prefill time.
	want := cfg70(model.TP8, gpu.MaxFreq).IsolatedPrefill(512)
	if got := req.TTFT(); got < want*0.8 || got > want*2.5 {
		t.Errorf("TTFT = %v, analytic prefill = %v", got, want)
	}
}

func TestTokenConservation(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP4, 1600), clock)
	rng := simclock.NewRNG(5)
	total := 0
	for i := 0; i < 50; i++ {
		out := rng.Intn(150) + 2
		total += out
		at := simclock.Time(float64(i) * 0.2)
		clock.At(at, func() {
			eng.Submit(&workload.Request{Arrival: at, InputTokens: 128 + rng.Intn(512), OutputTokens: out})
		})
	}
	clock.Run()
	if eng.Completed != 50 {
		t.Fatalf("completed = %d, want 50", eng.Completed)
	}
	if eng.TokensOut != total {
		t.Errorf("tokens out = %d, want %d", eng.TokensOut, total)
	}
	if eng.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", eng.QueueLen())
	}
}

func TestKVReleasedAfterCompletion(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	for i := 0; i < 20; i++ {
		at := simclock.Time(float64(i) * 0.1)
		clock.At(at, func() {
			eng.Submit(&workload.Request{Arrival: at, InputTokens: 256, OutputTokens: 20})
		})
	}
	clock.Run()
	if eng.kvTokens != 0 {
		t.Errorf("KV tokens leaked: %v", eng.kvTokens)
	}
}

func TestEnergyAccrues(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	eng.Submit(&workload.Request{Arrival: 0, InputTokens: 512, OutputTokens: 100})
	clock.Run()
	j := eng.Energy()
	if j <= 0 {
		t.Fatal("no energy recorded")
	}
	// Sanity: energy within [idle, TDP] x elapsed for 8 GPUs.
	elapsed := float64(clock.Now())
	if j > 8*700*elapsed || j < 0 {
		t.Errorf("energy %v J implausible for %v s", j, elapsed)
	}
}

func TestTBTGapsRecorded(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	eng.Submit(&workload.Request{Arrival: 0, InputTokens: 128, OutputTokens: 50})
	clock.Run()
	if eng.TBT.N() != 49 {
		t.Errorf("TBT gaps = %d, want 49", eng.TBT.N())
	}
	// Gaps near the analytic single-sequence iteration time.
	want := cfg70(model.TP8, gpu.MaxFreq).IsolatedTBT(150)
	if got := eng.TBT.Percentile(50); got < want*0.5 || got > want*2 {
		t.Errorf("median gap = %v, analytic = %v", got, want)
	}
}

func TestFreezeDelaysWork(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	eng.Freeze(5)
	req := &workload.Request{Arrival: 0, InputTokens: 128, OutputTokens: 2}
	eng.Submit(req)
	clock.Run()
	if req.FirstToken < 5 {
		t.Errorf("first token at %v, want after freeze end 5", req.FirstToken)
	}
}

func TestOnComplete(t *testing.T) {
	clock := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clock)
	done := 0
	eng.SetOnComplete(func(*workload.Request) { done++ })
	for i := 0; i < 3; i++ {
		eng.Submit(&workload.Request{InputTokens: 64, OutputTokens: 5})
	}
	clock.Run()
	if done != 3 {
		t.Errorf("onComplete fired %d times, want 3", done)
	}
}

// TestMeasureCrossValidatesFluidModel: the measured engine and the
// closed-form steady state must agree on power within modeling tolerance at
// a moderate load, and on feasibility at extremes.
func TestMeasureCrossValidatesFluidModel(t *testing.T) {
	cfg := cfg70(model.TP8, 1600)
	in, out := workload.RepresentativeLengths(workload.MM)
	lambda := 3.0
	obs := Measure(cfg, lambda, in, out, 1)
	st := perfmodel.SteadyState(cfg, lambda, in, out)
	if !obs.Feasible || !st.Feasible {
		t.Fatalf("both models should be feasible at lambda=%v (engine=%v fluid=%v)",
			lambda, obs.Feasible, st.Feasible)
	}
	if ratio := obs.Power / st.Power; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("power disagreement: engine %v W vs fluid %v W", obs.Power, st.Power)
	}
	if obs.TBTP99 > st.TBTP99*3 || st.TBTP99 > obs.TBTP99*5 {
		t.Errorf("TBT p99 disagreement: engine %v vs fluid %v", obs.TBTP99, st.TBTP99)
	}
}

func TestMeasureDetectsSaturation(t *testing.T) {
	cfg := cfg70(model.TP2, 800)
	in, out := workload.RepresentativeLengths(workload.MM)
	obs := Measure(cfg, 20, in, out, 1) // far beyond TP2 capacity
	if obs.Feasible {
		t.Error("saturating load reported feasible")
	}
}

func TestMeasureInfeasibleConfig(t *testing.T) {
	cfg := perfmodel.Config{Model: model.Falcon180B, TP: model.TP2, Freq: 1600}
	obs := Measure(cfg, 1, 512, 187, 1)
	if obs.Feasible {
		t.Error("memory-infeasible config reported feasible")
	}
}

// TestFig3FrequencySwitchOverhead reproduces Fig. 3's qualitative result:
// re-setting the frequency on every iteration through the slow nvidia-smi
// path cuts throughput substantially; the resident fast path does not.
func TestFig3FrequencySwitchOverhead(t *testing.T) {
	constRPS, switchRPS := ThroughputConstVsSwitch(workload.MM, false)
	if constRPS <= 0 {
		t.Fatal("no throughput in const mode")
	}
	drop := 1 - switchRPS/constRPS
	if drop < 0.15 {
		t.Errorf("naive per-iteration freq set should cost >15%% throughput, got %.1f%%", drop*100)
	}
	constFast, switchFast := ThroughputConstVsSwitch(workload.MM, true)
	fastDrop := 1 - switchFast/constFast
	if fastDrop > drop/2 {
		t.Errorf("resident path drop %.1f%% should be far below naive %.1f%%", fastDrop*100, drop*100)
	}
}

// TestEngineChunksLongPrompts: a long prompt is prefetched in chunks, so
// another sequence's decode gaps never exceed roughly one chunk iteration.
func TestEngineChunksLongPrompts(t *testing.T) {
	clock := simclock.New()
	cfg := cfg70(model.TP8, gpu.MaxFreq)
	eng := New(cfg, clock)
	// A decoding victim first, then a long-prompt arrival.
	victim := &workload.Request{Arrival: 0, InputTokens: 64, OutputTokens: 400}
	eng.Submit(victim)
	clock.At(1, func() {
		eng.Submit(&workload.Request{Arrival: 1, InputTokens: 3072, OutputTokens: 5})
	})
	clock.Run()
	maxGap := eng.TBT.Max()
	chunkIter := cfg.Iter(perfmodel.Batch{
		PrefillTokens: perfmodel.PrefillChunk,
		DecodeSeqs:    2,
		ContextTokens: 4000,
	}).Time
	if maxGap > chunkIter*1.6 {
		t.Errorf("max decode gap %v exceeds chunk iteration %v: prefill not chunked", maxGap, chunkIter)
	}
}

func TestMathSanity(t *testing.T) {
	if math.IsNaN(cfg70(model.TP8, 800).IsolatedTBT(100)) {
		t.Fatal("NaN iteration time")
	}
}
