// Package engine is an event-level simulator of one vLLM-style inference
// server: continuous batching with chunked prefill, KV-cache admission
// control, and per-request TTFT/TBT accounting, running on virtual time.
//
// It is the measured counterpart of the closed-form fluid model in
// perfmodel: iteration costs come from the same roofline (perfmodel.Iter),
// but queueing, batching, and tail behaviour emerge from discrete events
// rather than formulas. The profiler can use it as a Measurer to build
// profiles the way the paper does — by running loads against a live engine
// (§IV-A) — and the cluster simulation in core can run every instance on
// an Engine (Options.Fidelity = FidelityEvent), with the mid-run controls
// the controllers need: frequency changes (SetFreq), freeze windows for
// outages and transition stalls (Freeze), drain-and-migrate on re-sharding
// (Drain + Reconfigure), and per-class TTFT/TBT capture through a
// LatencySink.
//
// The engine honours the repository's steady-state allocation discipline:
// seqState records are pooled and the per-iteration scratch (the active
// batch, the waiting queue, the iteration-end callback) is reused, so a
// long soak allocates only the clock's event records and the per-arrival
// submission closures (BenchmarkEngineSoak tracks this).
package engine

import (
	"fmt"
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/gpu"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// seqState tracks one request inside the engine.
type seqState struct {
	req *workload.Request
	// owned is the inline request storage used by SubmitCopy, so the
	// engine never retains a caller's pointer across ticks.
	owned workload.Request
	// prefillLeft is prompt tokens not yet processed.
	prefillLeft int
	// produced is output tokens generated so far.
	produced int
	// ctx is resident KV tokens.
	ctx int
	// kvBlocks is the number of KV blocks the sequence holds under
	// block-granular accounting (kv.go); always 0 on the legacy path.
	kvBlocks int
	// tierBlocks is the number of spill-tier blocks the sequence holds
	// while swapped out (tier.go); a sequence is never resident and
	// spilled at once, so kvBlocks and tierBlocks are never both non-zero.
	tierBlocks int
	// prefixTokens is the prompt prefix covered by a shared prefix-cache
	// entry rather than the sequence's own blocks.
	prefixTokens int
	// noPrefix bars the sequence from taking a prefix-cache hit: set on
	// preemption so recompute-on-resume owns its whole context (a resume
	// re-hitting an entry only it kept alive would cycle forever at the
	// block boundary it already could not cross).
	noPrefix bool
	// enqueued is when the request entered the engine.
	enqueued simclock.Time
	// lastToken is when the sequence's most recent token was produced;
	// TBT gaps are measured against it.
	lastToken simclock.Time
}

// LatencySink receives latency samples as the engine produces tokens,
// tagged by the request's true class. The cluster's event backend installs
// one per run to capture per-class TTFT/TBT distributions into metrics.
type LatencySink interface {
	ObserveTTFT(cls workload.Class, seconds float64)
	ObserveTBT(cls workload.Class, seconds float64)
}

// Counters is the engine's monotonic event-counter bank. The fields are
// plain ints bumped on the event paths; the algebra relating them is
// asserted by CheckLaws after every clock event in the property suite,
// and the conserve analyzer (internal/lint) refuses any new integer
// field here that CheckLaws does not reference.
type Counters struct {
	// Completed counts requests finished by this engine.
	Completed int
	// TokensIn/TokensOut audit token conservation across handoffs.
	TokensIn, TokensOut int
	// KV dynamics counters (block accounting only).
	Preempted  int // decode sequences evicted under KV pressure
	PrefixHits int // admissions that reused a cached prompt prefix
	KVRejected int // requests whose KV footprint can never fit
	Handoffs   int // prefill→decode migrations (disaggregated mode)
	// Tier counters (tier.go). Every preemption resolves as a swap-out or
	// a recompute, and every tier eviction converts a swap-out into a
	// recompute, so SwapOuts + Recomputes == Preempted + TierEvictions.
	SwapOuts      int // sequences spilled to the tier
	SwapIns       int // spilled sequences swapped back in
	Recomputes    int // preemptions resolved by recompute-on-resume
	TierEvictions int // spilled sequences evicted from a full tier
}

// CheckLaws verifies the counter algebra that holds at every instant:
// non-negativity, the one-way swap link (a sequence is never resident
// and spilled at once, so SwapIns can never pass SwapOuts), and
// preemption conservation (every preemption resolves as exactly one
// swap-out or one recompute, with tier evictions converting swap-outs
// into recomputes). A non-nil error means a counter was bumped off its
// event path.
func (c *Counters) CheckLaws() error {
	if c.Completed < 0 || c.TokensIn < 0 || c.TokensOut < 0 {
		return fmt.Errorf("engine: negative throughput counter: completed=%d in=%d out=%d",
			c.Completed, c.TokensIn, c.TokensOut)
	}
	if c.Preempted < 0 || c.PrefixHits < 0 || c.KVRejected < 0 || c.Handoffs < 0 {
		return fmt.Errorf("engine: negative KV counter: preempted=%d hits=%d rejected=%d handoffs=%d",
			c.Preempted, c.PrefixHits, c.KVRejected, c.Handoffs)
	}
	if c.SwapOuts < 0 || c.SwapIns < 0 || c.Recomputes < 0 || c.TierEvictions < 0 {
		return fmt.Errorf("engine: negative tier counter: swapouts=%d swapins=%d recomputes=%d evictions=%d",
			c.SwapOuts, c.SwapIns, c.Recomputes, c.TierEvictions)
	}
	if c.SwapIns > c.SwapOuts {
		return fmt.Errorf("engine: SwapIns=%d exceeds SwapOuts=%d", c.SwapIns, c.SwapOuts)
	}
	if c.SwapOuts+c.Recomputes != c.Preempted+c.TierEvictions {
		return fmt.Errorf("engine: preemption conservation violated: SwapOuts=%d + Recomputes=%d != Preempted=%d + TierEvictions=%d",
			c.SwapOuts, c.Recomputes, c.Preempted, c.TierEvictions)
	}
	return nil
}

// Engine is one simulated inference server instance.
type Engine struct {
	Cfg   perfmodel.Config
	clock *simclock.Clock

	// waiting is the FIFO admission queue (prefill not yet finished);
	// waitHead indexes its first live entry so dequeuing never reslices
	// the backing array away.
	waiting  []*seqState
	waitHead int
	active   []*seqState // in the running batch

	kvTokens    float64
	kvCapacity  float64
	running     bool
	frozenUntil simclock.Time

	// Block-granular KV accounting (kv.go). kvBlocksCap == 0 keeps the
	// legacy token-granular path above bit-for-bit.
	kv           KVConfig
	kvBlocksCap  int //snapshot:ignore recomputed by ConfigureKV from the snapshotted KVConfig
	kvBlocksUsed int
	// preempted holds decode sequences evicted under KV pressure; they
	// re-enter admission (re-prefilling their recomputed context) with
	// strict priority over the waiting queue. preHead mirrors waitHead.
	preempted []*seqState
	preHead   int
	// prefixMap/prefixList are the prompt-prefix cache: map for lookup,
	// list in insertion order for deterministic oldest-first eviction
	// (map iteration order must never drive behaviour).
	prefixMap  map[uint64]*prefixEntry
	prefixList []*prefixEntry
	freePrefix []*prefixEntry //snapshot:ignore free-list scratch; a restored engine starts with empty pools
	// Tiered KV spill state (tier.go). kvTierCap == 0 disables the tier
	// and keeps the recompute-only path above bit-for-bit.
	kvTierCap  int //snapshot:ignore recomputed by ConfigureKV from the snapshotted KVConfig
	kvTierUsed int
	tierBW     float64 //snapshot:ignore recomputed by ConfigureKV from the snapshotted KVConfig
	// linkFreeAt is when the swap link next idles; transfers serialize
	// behind it (the bandwidth queue).
	linkFreeAt simclock.Time
	// spilled holds swapped-out sequences in spill order (head-indexed
	// FIFO): the head is both the next to swap back in and the LRU
	// eviction victim when the tier itself fills.
	spilled   []*seqState
	spillHead int
	// swapQ holds in-flight swap-in transfers in link order; completions
	// pop the head (the link serializes, so FIFO order is end order).
	// swapReady stages completed swap-ins until the next iteration start.
	swapQ        []*swapIn
	swapHead     int
	swapReady    []*seqState
	freeSwap     []*swapIn //snapshot:ignore free-list scratch; a restored engine starts with empty pools
	swapInflight int
	// onSwapDone is the swap-in completion callback, bound once so
	// scheduling a transfer does not allocate a closure.
	onSwapDone func()

	// prefillOnly marks the prefill side of a disaggregated pair:
	// sequences hand off (onHandoff) right after their first token.
	prefillOnly bool
	onHandoff   func(req workload.Request, ctx int) //snapshot:ignore callback; the owning backend re-binds after restore
	onReject    func(workload.Request)              //snapshot:ignore callback; the owning backend re-binds after restore

	meter *energy.Meter

	// free is the seqState pool; finished or drained sequences return
	// here instead of garbage.
	free []*seqState //snapshot:ignore free-list scratch; a restored engine starts with empty pools
	// iterEnd is the scheduled end of the in-flight iteration, read by
	// onIterEnd (one iteration is in flight at a time).
	iterEnd simclock.Time
	// nextStart is the absolute time of the pending iteration start while
	// running and not yet mid-iteration. A Freeze arriving after kick does
	// not reschedule the already-pending start, so the scheduled time —
	// not max(now, frozenUntil) — is what a snapshot must reproduce.
	nextStart simclock.Time
	// onIterStart/onIterEnd are the iteration callbacks, bound once at
	// construction so scheduling an iteration does not allocate closures.
	onIterStart func()
	onIterEnd   func()

	// Measurements.
	TTFT *metrics.Dist
	TBT  *metrics.Dist
	// Counters is the engine's integer counter bank, embedded so call
	// sites keep reading e.Completed, e.Preempted, ... unchanged. It is
	// a separate struct so the counter algebra lives in one place
	// (CheckLaws) and the conserve analyzer (internal/lint) can require
	// every field to be checked there.
	Counters

	// onComplete, if set, is called as requests finish.
	onComplete func(*workload.Request) //snapshot:ignore callback; the owning backend re-binds after restore
	// onToken, if set, is called for every produced output token.
	onToken func(req *workload.Request, produced int, now simclock.Time) //snapshot:ignore callback; the owning backend re-binds after restore
	// sink, if set, receives per-class latency samples (SetSink).
	sink LatencySink //snapshot:ignore callback sink; the owning backend re-binds after restore
}

// New builds an engine for the configuration on the given clock. The GPUs
// draw idle power from construction on, so a provisioned-but-idle instance
// is metered the way the fluid model meters it.
func New(cfg perfmodel.Config, clock *simclock.Clock) *Engine {
	e := &Engine{
		Cfg:        cfg,
		clock:      clock,
		kvCapacity: cfg.Model.KVCapacityTokens(cfg.TP),
		meter:      energy.NewMeter(0),
		TTFT:       metrics.NewDist(),
		TBT:        metrics.NewDist(),
	}
	e.onIterStart = e.iterate
	e.onIterEnd = e.finishIteration
	e.onSwapDone = e.swapDone
	e.meter.SetPower(clock.Now(), gpu.H100.IdlePower*float64(cfg.GPUs()))
	return e
}

// getState takes a seqState from the pool (or allocates one) and resets it
// for a new request.
func (e *Engine) getState() *seqState {
	if n := len(e.free); n > 0 {
		st := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return st
	}
	return &seqState{}
}

// putState returns a finished or drained seqState to the pool.
func (e *Engine) putState(st *seqState) {
	*st = seqState{}
	e.free = append(e.free, st)
}

// Submit enqueues a request; the engine starts iterating if idle. The
// pointer must stay valid until the request completes or is drained — use
// SubmitCopy when the caller's storage is reused.
func (e *Engine) Submit(req *workload.Request) {
	st := e.getState()
	st.req = req
	st.prefillLeft = req.InputTokens
	st.enqueued = e.clock.Now()
	e.TokensIn += req.InputTokens
	e.enqueue(st)
}

// SubmitCopy enqueues a by-value copy of the request, stored inside the
// engine's pooled seqState. The cluster backend uses it because its
// per-tick request buffer is recycled while requests are still in flight.
func (e *Engine) SubmitCopy(req workload.Request) {
	st := e.getState()
	st.owned = req
	st.req = &st.owned
	st.prefillLeft = req.InputTokens
	st.enqueued = e.clock.Now()
	e.TokensIn += req.InputTokens
	e.enqueue(st)
}

func (e *Engine) enqueue(st *seqState) {
	e.waiting = append(e.waiting, st)
	e.kick()
}

// Freeze stalls the engine until t (frequency-set overhead, re-shard sync,
// provisioning: work is accepted but no iteration starts before t).
func (e *Engine) Freeze(until simclock.Time) {
	if until > e.frozenUntil {
		e.frozenUntil = until
	}
}

// SetFreq applies a new GPU core clock from now on: subsequent iterations
// are costed and powered at f. stall is the frequency-set overhead in
// seconds (gpu.SlowSetOverhead / FastSetOverhead); the engine freezes for
// it, modelling the inference stall the paper measures (Fig. 3). Setting
// the current frequency is free.
func (e *Engine) SetFreq(f gpu.Freq, stall float64) {
	if f == e.Cfg.Freq {
		return
	}
	e.Cfg.Freq = f
	if stall > 0 {
		e.Freeze(e.clock.Now() + simclock.Time(stall))
	}
}

// Reconfigure swaps the engine onto a new configuration (re-sharding to a
// different TP degree): iteration costs and KV capacity follow the new
// shape from the next iteration on. Resident sequences do not survive a
// shard-layout change — callers Drain first and resubmit, which is exactly
// the drain-and-migrate the cluster's re-sharding transition performs.
func (e *Engine) Reconfigure(cfg perfmodel.Config) {
	e.Cfg = cfg
	e.kvCapacity = cfg.Model.KVCapacityTokens(cfg.TP)
	if e.kv.BlockTokens > 0 {
		e.deriveKVBlocks()
	}
}

// Drain removes every incomplete request from the engine, handing each to
// fn by value (fn may be nil to drop them), and resets the queues and KV
// state. It returns the number of requests drained. An iteration already
// in flight finishes against an empty batch and produces nothing.
func (e *Engine) Drain(fn func(workload.Request)) int {
	n := 0
	for i := e.waitHead; i < len(e.waiting); i++ {
		st := e.waiting[i]
		if fn != nil {
			fn(*st.req)
		}
		e.waiting[i] = nil
		e.putState(st)
		n++
	}
	e.waiting = e.waiting[:0]
	e.waitHead = 0
	for i := e.preHead; i < len(e.preempted); i++ {
		st := e.preempted[i]
		if fn != nil {
			fn(*st.req)
		}
		e.preempted[i] = nil
		e.putState(st)
		n++
	}
	e.preempted = e.preempted[:0]
	e.preHead = 0
	for i, st := range e.active {
		if fn != nil {
			fn(*st.req)
		}
		e.active[i] = nil
		e.putState(st)
		n++
	}
	e.active = e.active[:0]
	for i := e.spillHead; i < len(e.spilled); i++ {
		st := e.spilled[i]
		if fn != nil {
			fn(*st.req)
		}
		e.spilled[i] = nil
		e.putState(st)
		n++
	}
	e.spilled = e.spilled[:0]
	e.spillHead = 0
	for i, st := range e.swapReady {
		if fn != nil {
			fn(*st.req)
		}
		e.swapReady[i] = nil
		e.putState(st)
		n++
	}
	e.swapReady = e.swapReady[:0]
	// In-flight swap-ins: the transfer event is still scheduled; the
	// record stays queued with a nil sequence so swapDone pops and
	// discards it without delivering anything.
	for i := e.swapHead; i < len(e.swapQ); i++ {
		t := e.swapQ[i]
		if t.st != nil {
			if fn != nil {
				fn(*t.st.req)
			}
			e.putState(t.st)
			t.st = nil
			e.swapInflight--
			n++
		}
	}
	e.kvTokens = 0
	if e.kvBlocksCap > 0 {
		e.clearPrefix()
		e.kvBlocksUsed = 0
		e.kvTierUsed = 0
	}
	return n
}

// Energy returns joules consumed so far (closing the meter at now).
func (e *Engine) Energy() float64 {
	return e.meter.Finish(e.clock.Now())
}

// QueueLen reports requests not yet finished.
func (e *Engine) QueueLen() int {
	return len(e.waiting) - e.waitHead + e.preLen() + len(e.active) +
		e.spillLen() + len(e.swapReady) + e.swapInflight
}

// WaitingLen reports requests whose (re-)prefill or swap-in has not
// started — the admission backlog the cluster's instance manager watches,
// including preempted and spilled sequences awaiting re-admission (but not
// transfers already on the link, whose completion event carries them).
func (e *Engine) WaitingLen() int {
	return len(e.waiting) - e.waitHead + e.preLen() + e.spillLen() + len(e.swapReady)
}

// kick schedules the next iteration if the engine is idle and has work.
//
//dynamolint:steadystate
func (e *Engine) kick() {
	if e.running || (e.WaitingLen() == 0 && len(e.active) == 0) {
		return
	}
	e.running = true
	start := e.clock.Now()
	if start < e.frozenUntil {
		start = e.frozenUntil
	}
	e.nextStart = start
	e.clock.At(start, e.onIterStart)
}

// iterate runs one engine iteration: admit prefill chunks within the token
// budget and KV capacity, decode every active sequence one token, then
// schedule the iteration end.
//
//dynamolint:steadystate
func (e *Engine) iterate() {
	now := e.clock.Now()

	// Admission: fill the chunk budget from the waiting queue (FIFO),
	// respecting KV capacity.
	budget := perfmodel.PrefillChunk
	prefillTokens := 0
	if e.kvBlocksCap > 0 {
		// Block-granular path: swap-ins that completed since the last
		// iteration rejoin the batch, spilled sequences outrank every
		// queue for the link and blocks, then preempted sequences resume,
		// then the waiting queue; every chunk is gated on free blocks and
		// each active sequence is guaranteed a block for this
		// iteration's token (preempting the youngest under pressure).
		e.flushSwapReady()
		swapBlocked := e.admitSwapIns()
		if !swapBlocked {
			prefillTokens = e.admitBlocks(&budget)
		}
		e.reserveDecode()
		// reserveDecode can evict or reject the very sequences admission
		// just placed, emptying the batch while their freed blocks would
		// let queued work in. Going idle here would strand that work
		// forever (no external event frees blocks once nothing runs), so
		// re-admit until the batch is live or admission stops moving.
		// Terminates: every productive round consumes chunk budget or
		// moves a spilled sequence onto the link (whose completion event
		// wakes the engine on its own). Spilled sequences initiating
		// transfers leave WaitingLen, so a round that only starts
		// swap-ins exits the loop and idles until the link delivers.
		for len(e.active) == 0 && e.WaitingLen() > 0 {
			swapBlocked = e.admitSwapIns()
			more := 0
			if !swapBlocked {
				more = e.admitBlocks(&budget)
			}
			e.reserveDecode()
			prefillTokens += more
			if more == 0 && len(e.active) == 0 {
				break
			}
		}
	} else {
		for e.waitHead < len(e.waiting) && budget > 0 {
			st := e.waiting[e.waitHead]
			chunk := st.prefillLeft
			if chunk > budget {
				chunk = budget
			}
			if e.kvTokens+float64(chunk) > e.kvCapacity {
				break // KV full: sequence waits
			}
			st.prefillLeft -= chunk
			st.ctx += chunk
			e.kvTokens += float64(chunk)
			prefillTokens += chunk
			budget -= chunk
			if st.prefillLeft == 0 {
				// Prompt fully processed: joins the decode batch; first
				// token appears at the end of this iteration.
				e.active = append(e.active, st)
				e.waiting[e.waitHead] = nil
				e.waitHead++
			}
		}
		if e.waitHead == len(e.waiting) {
			// Queue empty: rewind so the backing array is reused.
			e.waiting = e.waiting[:0]
			e.waitHead = 0
		}
	}

	// Batch composition.
	decodeSeqs := 0
	ctxTotal := 0.0
	for _, st := range e.active {
		// A sequence admitted THIS iteration produces its first token
		// now; everyone decodes one token per iteration.
		decodeSeqs++
		ctxTotal += float64(st.ctx)
	}
	if prefillTokens == 0 && decodeSeqs == 0 {
		e.running = false
		return
	}

	it := e.Cfg.Iter(perfmodel.Batch{
		PrefillTokens: float64(prefillTokens),
		DecodeSeqs:    float64(decodeSeqs),
		ContextTokens: ctxTotal + float64(prefillTokens),
	})
	end := now + simclock.Time(it.Time)

	// Power during the iteration.
	e.meter.SetPower(now, gpu.H100.Power(e.Cfg.Freq, it.Util)*float64(e.Cfg.GPUs()))

	// Token production at iteration end (the callback is bound once; the
	// end time travels through iterEnd, valid because only one iteration
	// is ever in flight).
	e.iterEnd = end
	e.clock.At(end, e.onIterEnd)
}

// finishIteration produces the in-flight iteration's tokens, retires
// completed sequences, and schedules the next iteration. The active batch
// is compacted in place so steady-state decoding reuses its scratch.
//
//dynamolint:steadystate
func (e *Engine) finishIteration() {
	end := e.iterEnd
	e.meter.SetPower(end, gpu.H100.Power(e.Cfg.Freq, 0)*float64(e.Cfg.GPUs()))
	live := e.active[:0]
	for _, st := range e.active {
		st.produced++
		st.ctx++
		if e.kvBlocksCap == 0 {
			e.kvTokens++
		}
		e.TokensOut++
		if st.produced == 1 {
			// A drained-and-resubmitted request already produced its
			// first token on the old configuration; its TTFT happened
			// then and is not re-recorded.
			if st.req.FirstToken == 0 {
				st.req.FirstToken = end
				ttft := float64(end - st.req.Arrival)
				e.TTFT.Add(ttft)
				if e.sink != nil {
					e.sink.ObserveTTFT(st.req.Class(), ttft)
				}
			}
		} else {
			gap := float64(end - st.lastToken)
			e.TBT.Add(gap)
			if e.sink != nil {
				e.sink.ObserveTBT(st.req.Class(), gap)
			}
		}
		st.lastToken = end
		if e.onToken != nil {
			e.onToken(st.req, st.produced, end)
		}
		if e.prefillOnly && st.produced == 1 && st.produced < st.req.OutputTokens {
			// Disaggregated prefill: the first token marks prefill done;
			// the sequence decodes elsewhere. Its blocks free here — the
			// transfer cost is modeled by the handoff receiver.
			e.releaseSeq(st)
			e.Handoffs++
			if e.onHandoff != nil {
				e.onHandoff(*st.req, st.ctx)
			}
			e.putState(st)
			continue
		}
		if st.produced >= st.req.OutputTokens {
			st.req.Finish = end
			if e.kvBlocksCap > 0 {
				e.releaseSeq(st)
			} else {
				e.kvTokens -= float64(st.ctx)
			}
			e.Completed++
			if e.onComplete != nil {
				// The pointer is valid for the duration of the call
				// only: the seqState (and any SubmitCopy storage) is
				// recycled immediately after.
				e.onComplete(st.req)
			}
			e.putState(st)
			continue
		}
		live = append(live, st)
	}
	for i := len(live); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = live
	e.running = false
	e.kick()
}

// --- Profiling measurer ---------------------------------------------------------

// MeasureSeconds is the virtual duration of one profiling run.
const MeasureSeconds = 240

// Measure runs a Poisson workload of the given shape against a live engine
// and reports the observation the profiler needs. It satisfies
// profile.Measurer, mirroring the paper's measured profiling runs (§IV-A).
func Measure(cfg perfmodel.Config, lambda float64, inTokens, outTokens int, sloScale float64) profile.Observation {
	obs := profile.Observation{Lambda: lambda}
	if !cfg.Feasible() || lambda <= 0 {
		obs.Feasible = cfg.Feasible()
		obs.Power = gpu.H100.IdlePower * float64(cfg.GPUs())
		return obs
	}
	clock := simclock.New()
	rng := simclock.NewRNG(uint64(lambda*1e6) ^ uint64(inTokens)<<20 ^ uint64(outTokens))
	eng := New(cfg, clock)

	t := 0.0
	for {
		t += rng.Exp(lambda)
		if t >= MeasureSeconds {
			break
		}
		at := simclock.Time(t)
		clock.At(at, func() {
			eng.Submit(&workload.Request{
				Arrival:      at,
				InputTokens:  inTokens,
				OutputTokens: outTokens,
			})
		})
	}
	clock.RunUntil(simclock.Time(MeasureSeconds))

	obs.Power = eng.Energy() / MeasureSeconds
	obs.TTFTP99 = eng.TTFT.Percentile(99)
	obs.TBTP99 = eng.TBT.Percentile(99)
	// Saturation check: the queue must not grow without bound.
	backlog := eng.QueueLen()
	obs.Feasible = float64(backlog) < math.Max(10, lambda*MeasureSeconds*0.05) &&
		eng.Completed > 0
	return obs
}

// SetOnComplete registers a completion callback. The *workload.Request it
// receives is only valid during the call (SubmitCopy storage is pooled).
func (e *Engine) SetOnComplete(fn func(*workload.Request)) { e.onComplete = fn }

// SetSink registers a per-class latency sink (nil disables capture).
func (e *Engine) SetSink(s LatencySink) { e.sink = s }

// SetOnToken registers a per-token callback, fired once for every output
// token as it is produced (after TTFT/TBT accounting, before completion
// handling). The *workload.Request is only valid during the call. The live
// serving session uses it to stream token events for injected requests.
// A request drained and resubmitted (re-shard, migration) restarts
// generation, so `produced` can restart from 1 for the same request.
func (e *Engine) SetOnToken(fn func(req *workload.Request, produced int, now simclock.Time)) {
	e.onToken = fn
}

// --- Fig. 3: frequency-switch overhead ------------------------------------------

// ThroughputConstVsSwitch reproduces Fig. 3's experiment: serve a fixed
// request stream at max frequency, once leaving the clock alone and once
// re-issuing the frequency command before every iteration through the
// given controller path. Returns requests/second for both modes.
func ThroughputConstVsSwitch(cls workload.Class, resident bool) (constRPS, switchRPS float64) {
	in, out := workload.RepresentativeLengths(cls)
	cfg := perfmodel.Config{Model: model.Llama2_70B, TP: model.TP8, Freq: gpu.MaxFreq}
	run := func(forceSet bool) float64 {
		clock := simclock.New()
		eng := New(cfg, clock)
		fc := gpu.NewFreqController(resident)
		if forceSet {
			// Wrap iterations: every kick pays a redundant set call.
			// We model it by freezing the engine for the overhead ahead
			// of each iteration via a periodic tick at the iteration
			// cadence.
			cancel := clock.Every(0.020, func() {
				d := fc.ForceSet(gpu.MaxFreq)
				eng.Freeze(clock.Now() + simclock.Time(d))
			})
			defer cancel()
		}
		const dur = 120.0
		rng := simclock.NewRNG(42)
		t := 0.0
		lambda := 10.0
		for {
			t += rng.Exp(lambda)
			if t >= dur {
				break
			}
			at := simclock.Time(t)
			clock.At(at, func() {
				eng.Submit(&workload.Request{Arrival: at, InputTokens: in, OutputTokens: out})
			})
		}
		clock.RunUntil(simclock.Time(dur))
		return float64(eng.Completed) / dur
	}
	return run(false), run(true)
}
