// Package engine is an event-level simulator of one vLLM-style inference
// server: continuous batching with chunked prefill, KV-cache admission
// control, and per-request TTFT/TBT accounting, running on virtual time.
//
// It is the measured counterpart of the closed-form fluid model in
// perfmodel: iteration costs come from the same roofline (perfmodel.Iter),
// but queueing, batching, and tail behaviour emerge from discrete events
// rather than formulas. The profiler can use it as a Measurer to build
// profiles the way the paper does — by running loads against a live engine
// (§IV-A) — and the tests cross-validate the two models.
package engine

import (
	"math"

	"dynamollm/internal/energy"
	"dynamollm/internal/gpu"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/profile"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// seqState tracks one request inside the engine.
type seqState struct {
	req *workload.Request
	// prefillLeft is prompt tokens not yet processed.
	prefillLeft int
	// produced is output tokens generated so far.
	produced int
	// ctx is resident KV tokens.
	ctx int
	// enqueued is when the request entered the engine.
	enqueued simclock.Time
	// gaps collects inter-token gaps for TBT percentiles.
	lastToken simclock.Time
}

// Engine is one simulated inference server instance.
type Engine struct {
	Cfg   perfmodel.Config
	clock *simclock.Clock

	waiting []*seqState // prefill not yet started (FIFO)
	active  []*seqState // in the running batch

	kvTokens    float64
	kvCapacity  float64
	running     bool
	frozenUntil simclock.Time

	meter *energy.Meter

	// Measurements.
	TTFT      *metrics.Dist
	TBT       *metrics.Dist
	Completed int
	// TokensIn/TokensOut audit conservation.
	TokensIn, TokensOut int

	// onComplete, if set, is called as requests finish.
	onComplete func(*workload.Request)
}

// New builds an engine for the configuration on the given clock.
func New(cfg perfmodel.Config, clock *simclock.Clock) *Engine {
	return &Engine{
		Cfg:        cfg,
		clock:      clock,
		kvCapacity: cfg.Model.KVCapacityTokens(cfg.TP),
		meter:      energy.NewMeter(0),
		TTFT:       metrics.NewDist(),
		TBT:        metrics.NewDist(),
	}
}

// Submit enqueues a request; the engine starts iterating if idle.
func (e *Engine) Submit(req *workload.Request) {
	st := &seqState{
		req:         req,
		prefillLeft: req.InputTokens,
		enqueued:    e.clock.Now(),
	}
	e.TokensIn += req.InputTokens
	e.waiting = append(e.waiting, st)
	e.kick()
}

// Freeze stalls the engine until t (frequency-set overhead, re-shard sync).
func (e *Engine) Freeze(until simclock.Time) {
	if until > e.frozenUntil {
		e.frozenUntil = until
	}
}

// Energy returns joules consumed so far (closing the meter at now).
func (e *Engine) Energy() float64 {
	return e.meter.Finish(e.clock.Now())
}

// QueueLen reports requests not yet finished.
func (e *Engine) QueueLen() int { return len(e.waiting) + len(e.active) }

// kick schedules the next iteration if the engine is idle and has work.
func (e *Engine) kick() {
	if e.running || (len(e.waiting) == 0 && len(e.active) == 0) {
		return
	}
	e.running = true
	start := e.clock.Now()
	if start < e.frozenUntil {
		start = e.frozenUntil
	}
	e.clock.At(start, e.iterate)
}

// iterate runs one engine iteration: admit prefill chunks within the token
// budget and KV capacity, decode every active sequence one token, then
// schedule the next iteration.
func (e *Engine) iterate() {
	now := e.clock.Now()

	// Admission: fill the chunk budget from the waiting queue (FIFO),
	// respecting KV capacity.
	budget := perfmodel.PrefillChunk
	prefillTokens := 0
	for len(e.waiting) > 0 && budget > 0 {
		st := e.waiting[0]
		chunk := st.prefillLeft
		if chunk > budget {
			chunk = budget
		}
		if e.kvTokens+float64(chunk) > e.kvCapacity {
			break // KV full: sequence waits
		}
		st.prefillLeft -= chunk
		st.ctx += chunk
		e.kvTokens += float64(chunk)
		prefillTokens += chunk
		budget -= chunk
		if st.prefillLeft == 0 {
			// Prompt fully processed: joins the decode batch; first
			// token appears at the end of this iteration.
			e.active = append(e.active, st)
			e.waiting = e.waiting[1:]
		}
	}

	// Batch composition.
	decodeSeqs := 0
	ctxTotal := 0.0
	for _, st := range e.active {
		// A sequence admitted THIS iteration produces its first token
		// now; everyone decodes one token per iteration.
		decodeSeqs++
		ctxTotal += float64(st.ctx)
	}
	if prefillTokens == 0 && decodeSeqs == 0 {
		e.running = false
		return
	}

	it := e.Cfg.Iter(perfmodel.Batch{
		PrefillTokens: float64(prefillTokens),
		DecodeSeqs:    float64(decodeSeqs),
		ContextTokens: ctxTotal + float64(prefillTokens),
	})
	end := now + simclock.Time(it.Time)

	// Power during the iteration.
	e.meter.SetPower(now, gpu.H100.Power(e.Cfg.Freq, it.Util)*float64(e.Cfg.GPUs()))

	// Token production at iteration end.
	e.clock.At(end, func() {
		e.meter.SetPower(end, gpu.H100.Power(e.Cfg.Freq, 0)*float64(e.Cfg.GPUs()))
		var still []*seqState
		for _, st := range e.active {
			st.produced++
			st.ctx++
			e.kvTokens++
			e.TokensOut++
			if st.produced == 1 {
				st.req.FirstToken = end
				e.TTFT.Add(float64(end - st.req.Arrival))
			} else {
				e.TBT.Add(float64(end - st.lastToken))
			}
			st.lastToken = end
			if st.produced >= st.req.OutputTokens {
				st.req.Finish = end
				e.kvTokens -= float64(st.ctx)
				e.Completed++
				if e.onComplete != nil {
					e.onComplete(st.req)
				}
				continue
			}
			still = append(still, st)
		}
		e.active = still
		e.running = false
		e.kick()
	})
}

// --- Profiling measurer ---------------------------------------------------------

// MeasureSeconds is the virtual duration of one profiling run.
const MeasureSeconds = 240

// Measure runs a Poisson workload of the given shape against a live engine
// and reports the observation the profiler needs. It satisfies
// profile.Measurer, mirroring the paper's measured profiling runs (§IV-A).
func Measure(cfg perfmodel.Config, lambda float64, inTokens, outTokens int, sloScale float64) profile.Observation {
	obs := profile.Observation{Lambda: lambda}
	if !cfg.Feasible() || lambda <= 0 {
		obs.Feasible = cfg.Feasible()
		obs.Power = gpu.H100.IdlePower * float64(cfg.GPUs())
		return obs
	}
	clock := simclock.New()
	rng := simclock.NewRNG(uint64(lambda*1e6) ^ uint64(inTokens)<<20 ^ uint64(outTokens))
	eng := New(cfg, clock)

	t := 0.0
	for {
		t += rng.Exp(lambda)
		if t >= MeasureSeconds {
			break
		}
		at := simclock.Time(t)
		clock.At(at, func() {
			eng.Submit(&workload.Request{
				Arrival:      at,
				InputTokens:  inTokens,
				OutputTokens: outTokens,
			})
		})
	}
	clock.RunUntil(simclock.Time(MeasureSeconds))

	obs.Power = eng.Energy() / MeasureSeconds
	obs.TTFTP99 = eng.TTFT.Percentile(99)
	obs.TBTP99 = eng.TBT.Percentile(99)
	// Saturation check: the queue must not grow without bound.
	backlog := eng.QueueLen()
	obs.Feasible = float64(backlog) < math.Max(10, lambda*MeasureSeconds*0.05) &&
		eng.Completed > 0
	return obs
}

// SetOnComplete registers a completion callback.
func (e *Engine) SetOnComplete(fn func(*workload.Request)) { e.onComplete = fn }

// --- Fig. 3: frequency-switch overhead ------------------------------------------

// ThroughputConstVsSwitch reproduces Fig. 3's experiment: serve a fixed
// request stream at max frequency, once leaving the clock alone and once
// re-issuing the frequency command before every iteration through the
// given controller path. Returns requests/second for both modes.
func ThroughputConstVsSwitch(cls workload.Class, resident bool) (constRPS, switchRPS float64) {
	in, out := workload.RepresentativeLengths(cls)
	cfg := perfmodel.Config{Model: model.Llama2_70B, TP: model.TP8, Freq: gpu.MaxFreq}
	run := func(forceSet bool) float64 {
		clock := simclock.New()
		eng := New(cfg, clock)
		fc := gpu.NewFreqController(resident)
		if forceSet {
			// Wrap iterations: every kick pays a redundant set call.
			// We model it by freezing the engine for the overhead ahead
			// of each iteration via a periodic tick at the iteration
			// cadence.
			cancel := clock.Every(0.020, func() {
				d := fc.ForceSet(gpu.MaxFreq)
				eng.Freeze(clock.Now() + simclock.Time(d))
			})
			defer cancel()
		}
		const dur = 120.0
		rng := simclock.NewRNG(42)
		t := 0.0
		lambda := 10.0
		for {
			t += rng.Exp(lambda)
			if t >= dur {
				break
			}
			at := simclock.Time(t)
			clock.At(at, func() {
				eng.Submit(&workload.Request{Arrival: at, InputTokens: in, OutputTokens: out})
			})
		}
		clock.RunUntil(simclock.Time(dur))
		return float64(eng.Completed) / dur
	}
	return run(false), run(true)
}
