package engine

import (
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// engineFingerprint is everything two engines must agree on bit-for-bit to
// count as having lived identical histories.
type engineFingerprint struct {
	Completed, TokensIn, TokensOut int
	QueueLen                       int
	TTFTN, TBTN                    int
	TTFTP99, TBTP99                float64
	EnergyJ                        float64
}

func engFP(e *Engine) engineFingerprint {
	return engineFingerprint{
		Completed: e.Completed, TokensIn: e.TokensIn, TokensOut: e.TokensOut,
		QueueLen: e.QueueLen(),
		TTFTN:    e.TTFT.N(), TBTN: e.TBT.N(),
		TTFTP99: e.TTFT.Percentile(99), TBTP99: e.TBT.Percentile(99),
		EnergyJ: e.Energy(),
	}
}

func snapReqs(n int, seed uint64) []workload.Request {
	rng := simclock.NewRNG(seed)
	reqs := make([]workload.Request, n)
	at := simclock.Time(0)
	for i := range reqs {
		at += simclock.Time(rng.Float64() * 0.31)
		reqs[i] = workload.Request{
			Arrival:      at,
			InputTokens:  64 + rng.Intn(700),
			OutputTokens: 2 + rng.Intn(120),
		}
	}
	return reqs
}

func scheduleFrom(clk *simclock.Clock, eng *Engine, reqs []workload.Request, after simclock.Time) {
	for i := range reqs {
		r := reqs[i]
		if r.Arrival > after {
			clk.At(r.Arrival, func() { eng.SubmitCopy(r) })
		}
	}
}

// TestSnapshotRestoreMatchesUninterrupted is the round-trip property test:
// snapshot an engine mid-run at an arbitrary quiescent instant, restore it
// onto a fresh clock, replay the remaining arrivals — the restored engine
// must finish bit-identical to one that ran uninterrupted, and taking the
// snapshot must not perturb the source engine either.
func TestSnapshotRestoreMatchesUninterrupted(t *testing.T) {
	cfg := cfg70(model.TP4, 1600)
	reqs := snapReqs(60, 11)

	refClk := simclock.New()
	ref := New(cfg, refClk)
	scheduleFrom(refClk, ref, reqs, -1)
	refClk.Run()
	want := engFP(ref)
	if want.Completed != len(reqs) {
		t.Fatalf("reference completed %d of %d", want.Completed, len(reqs))
	}

	// Cut points span: before any arrival fires, mid-prefill churn, deep
	// in steady decode, and near the drain tail.
	for _, cut := range []simclock.Time{0.0005, 0.8, 2.5, 7.3} {
		clk := simclock.New()
		eng := New(cfg, clk)
		scheduleFrom(clk, eng, reqs, -1)
		clk.RunUntil(cut)
		snap := eng.Snapshot()

		clk2 := simclock.New()
		clk2.RunUntil(cut)
		eng2 := FromSnapshot(snap, clk2)
		scheduleFrom(clk2, eng2, reqs, cut)
		clk2.Run()
		if got := engFP(eng2); got != want {
			t.Errorf("cut %v: restored != uninterrupted:\n restored %+v\n want     %+v", cut, got, want)
		}

		// The source keeps running as if nothing happened.
		clk.Run()
		if got := engFP(eng); got != want {
			t.Errorf("cut %v: snapshotting perturbed the source:\n got  %+v\n want %+v", cut, got, want)
		}
	}
}

// TestSnapshotReusable: one snapshot seeds two independent engines; both
// must match, and neither may share mutable state with the other.
func TestSnapshotReusable(t *testing.T) {
	cfg := cfg70(model.TP8, gpu.MaxFreq)
	reqs := snapReqs(30, 3)

	clk := simclock.New()
	eng := New(cfg, clk)
	scheduleFrom(clk, eng, reqs, -1)
	clk.RunUntil(1.5)
	snap := eng.Snapshot()

	var fps [2]engineFingerprint
	for k := range fps {
		c := simclock.New()
		c.RunUntil(1.5)
		e := FromSnapshot(snap, c)
		scheduleFrom(c, e, reqs, 1.5)
		c.Run()
		fps[k] = engFP(e)
	}
	if fps[0] != fps[1] {
		t.Errorf("two restores of one snapshot diverged:\n %+v\n %+v", fps[0], fps[1])
	}
}

// TestSnapshotDuringFreeze: a snapshot taken while the engine is frozen
// (with the iteration start already kicked) must reproduce the scheduled
// start time, not re-derive it from the freeze horizon.
func TestSnapshotDuringFreeze(t *testing.T) {
	cfg := cfg70(model.TP8, gpu.MaxFreq)

	clk := simclock.New()
	eng := New(cfg, clk)
	eng.Submit(&workload.Request{Arrival: 0, InputTokens: 128, OutputTokens: 8})
	eng.Freeze(5)
	clk.RunUntil(1)
	snap := eng.Snapshot()

	clk2 := simclock.New()
	clk2.RunUntil(1)
	eng2 := FromSnapshot(snap, clk2)
	clk2.Run()
	clk.Run()

	got, want := engFP(eng2), engFP(eng)
	if got != want {
		t.Errorf("freeze-time restore diverged:\n restored %+v\n source   %+v", got, want)
	}
	if eng2.Completed != 1 {
		t.Fatalf("restored engine completed %d, want 1", eng2.Completed)
	}
}
