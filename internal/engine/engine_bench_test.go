package engine

import (
	"testing"

	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// BenchmarkEngineSoak drives a sustained Poisson load through one engine —
// the steady-state shape of an event-fidelity cluster run. With pooled
// seqStates and reused per-iteration scratch, the surviving allocations
// are the clock's event records and the per-arrival submission closures,
// so allocs/op grows with the request count, not with tokens produced
// (tracked in BENCH_<n>.json via cmd/benchjson).
func BenchmarkEngineSoak(b *testing.B) {
	cfg := perfmodel.Config{Model: model.Llama2_70B, TP: model.TP4, Freq: 1600}
	in, out := workload.RepresentativeLengths(workload.MM)
	const (
		lambda = 3.0
		dur    = 120.0
	)
	b.ReportAllocs()
	completed, tokens := 0, 0
	for i := 0; i < b.N; i++ {
		clock := simclock.New()
		eng := New(cfg, clock)
		rng := simclock.NewRNG(7)
		t := 0.0
		for {
			t += rng.Exp(lambda)
			if t >= dur {
				break
			}
			at := simclock.Time(t)
			clock.At(at, func() {
				eng.SubmitCopy(workload.Request{Arrival: at, InputTokens: in, OutputTokens: out})
			})
		}
		clock.Run()
		completed, tokens = eng.Completed, eng.TokensOut
		if completed == 0 {
			b.Fatal("soak completed nothing")
		}
	}
	b.ReportMetric(float64(completed), "completed-reqs")
	b.ReportMetric(float64(tokens), "tokens-out")
}
