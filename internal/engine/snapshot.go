package engine

import (
	"fmt"

	"dynamollm/internal/energy"
	"dynamollm/internal/metrics"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// SeqSnapshot captures one in-flight request's generation state. The
// request itself is stored by value: a restored engine always owns its
// requests (SubmitCopy semantics), never a pointer into caller storage.
type SeqSnapshot struct {
	Req          workload.Request
	PrefillLeft  int
	Produced     int
	Ctx          int
	KVBlocks     int
	TierBlocks   int
	PrefixTokens int
	NoPrefix     bool
	Enqueued     simclock.Time
	LastToken    simclock.Time
}

// PrefixSnapshot captures one prompt-prefix cache entry, in the cache's
// insertion (eviction) order.
type PrefixSnapshot struct {
	Group   uint64
	Tokens  int
	Blocks  int
	Refs    int
	Spilled bool
}

// SwapSnapshot captures one in-flight swap-in transfer: the sequence it
// carries and the absolute link time at which it completes. Transfers are
// stored in link (FIFO) order so the restored engine re-arms them with
// identical completion ordering.
type SwapSnapshot struct {
	Seq SeqSnapshot
	End simclock.Time
}

// Snapshot is a self-contained copy of an Engine at a quiescent instant:
// every event at or before Now has executed and anything still pending
// lies strictly later (the state after Clock.RunUntil(Now)). It owns all
// of its storage — distributions, meter, and sequence states are cloned —
// so it stays valid while the source engine keeps running, and one
// snapshot can seed any number of restored engines.
//
// Callbacks (completion, token, latency sink) are deliberately not part of
// the snapshot; rewire them on the restored engine with SetOnComplete,
// SetOnToken, and SetSink.
type Snapshot struct {
	Cfg perfmodel.Config
	Now simclock.Time

	Waiting []SeqSnapshot
	Active  []SeqSnapshot

	KVTokens    float64
	Running     bool
	FrozenUntil simclock.Time
	IterEnd     simclock.Time
	NextStart   simclock.Time

	// Block-granular KV state (zero value when block accounting is off).
	// PreemptedQ is the re-admission queue; Prefix the prompt cache in
	// eviction order. The callbacks (handoff, reject) are rewired by the
	// caller like the other callbacks.
	KV           KVConfig
	KVBlocksUsed int
	PrefillOnly  bool
	PreemptedQ   []SeqSnapshot
	Prefix       []PrefixSnapshot

	// Tier state (tier.go): the spilled queue in spill (LRU) order,
	// swap-ins completed but not yet batched, in-flight transfers in link
	// order (re-armed on restore), and the link backlog horizon.
	KVTierUsed int
	LinkFreeAt simclock.Time
	Spilled    []SeqSnapshot
	SwapReady  []SeqSnapshot
	Swapping   []SwapSnapshot

	TTFT          *metrics.Dist
	TBT           *metrics.Dist
	Completed     int
	TokensIn      int
	TokensOut     int
	Preempted     int
	PrefixHits    int
	KVRejected    int
	Handoffs      int
	SwapOuts      int
	SwapIns       int
	Recomputes    int
	TierEvictions int
	Meter         *energy.Meter
}

func snapSeq(st *seqState) SeqSnapshot {
	return SeqSnapshot{
		Req:          *st.req,
		PrefillLeft:  st.prefillLeft,
		Produced:     st.produced,
		Ctx:          st.ctx,
		KVBlocks:     st.kvBlocks,
		TierBlocks:   st.tierBlocks,
		PrefixTokens: st.prefixTokens,
		NoPrefix:     st.noPrefix,
		Enqueued:     st.enqueued,
		LastToken:    st.lastToken,
	}
}

// Snapshot captures the engine's full state at the clock's current time.
// The engine must be quiescent in the snapshot sense above — for the
// cluster backend that is any tick boundary, right after RunTo.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		Cfg:          e.Cfg,
		Now:          e.clock.Now(),
		KVTokens:     e.kvTokens,
		Running:      e.running,
		FrozenUntil:  e.frozenUntil,
		IterEnd:      e.iterEnd,
		NextStart:    e.nextStart,
		TTFT:         e.TTFT.Clone(),
		TBT:          e.TBT.Clone(),
		Completed:    e.Completed,
		TokensIn:     e.TokensIn,
		TokensOut:    e.TokensOut,
		Preempted:    e.Preempted,
		PrefixHits:   e.PrefixHits,
		KVRejected:   e.KVRejected,
		Handoffs:     e.Handoffs,
		KV:           e.kv,
		KVBlocksUsed: e.kvBlocksUsed,
		PrefillOnly:  e.prefillOnly,

		KVTierUsed:    e.kvTierUsed,
		LinkFreeAt:    e.linkFreeAt,
		SwapOuts:      e.SwapOuts,
		SwapIns:       e.SwapIns,
		Recomputes:    e.Recomputes,
		TierEvictions: e.TierEvictions,

		Meter: e.meter.Clone(),
	}
	if n := len(e.waiting) - e.waitHead; n > 0 {
		s.Waiting = make([]SeqSnapshot, 0, n)
		for i := e.waitHead; i < len(e.waiting); i++ {
			s.Waiting = append(s.Waiting, snapSeq(e.waiting[i]))
		}
	}
	if n := e.preLen(); n > 0 {
		s.PreemptedQ = make([]SeqSnapshot, 0, n)
		for i := e.preHead; i < len(e.preempted); i++ {
			s.PreemptedQ = append(s.PreemptedQ, snapSeq(e.preempted[i]))
		}
	}
	if n := len(e.prefixList); n > 0 {
		s.Prefix = make([]PrefixSnapshot, 0, n)
		for _, pe := range e.prefixList {
			s.Prefix = append(s.Prefix, PrefixSnapshot{Group: pe.group, Tokens: pe.tokens, Blocks: pe.blocks, Refs: pe.refs, Spilled: pe.spilled})
		}
	}
	if n := e.spillLen(); n > 0 {
		s.Spilled = make([]SeqSnapshot, 0, n)
		for i := e.spillHead; i < len(e.spilled); i++ {
			s.Spilled = append(s.Spilled, snapSeq(e.spilled[i]))
		}
	}
	if n := len(e.swapReady); n > 0 {
		s.SwapReady = make([]SeqSnapshot, 0, n)
		for _, st := range e.swapReady {
			s.SwapReady = append(s.SwapReady, snapSeq(st))
		}
	}
	if e.swapInflight > 0 {
		s.Swapping = make([]SwapSnapshot, 0, e.swapInflight)
		for i := e.swapHead; i < len(e.swapQ); i++ {
			if t := e.swapQ[i]; t.st != nil {
				s.Swapping = append(s.Swapping, SwapSnapshot{Seq: snapSeq(t.st), End: t.end})
			}
		}
	}
	if len(e.active) > 0 {
		s.Active = make([]SeqSnapshot, 0, len(e.active))
		for _, st := range e.active {
			s.Active = append(s.Active, snapSeq(st))
		}
	}
	return s
}

func restoreSeq(e *Engine, q SeqSnapshot) *seqState {
	st := e.getState()
	st.owned = q.Req
	st.req = &st.owned
	st.prefillLeft = q.PrefillLeft
	st.produced = q.Produced
	st.ctx = q.Ctx
	st.kvBlocks = q.KVBlocks
	st.tierBlocks = q.TierBlocks
	st.prefixTokens = q.PrefixTokens
	st.noPrefix = q.NoPrefix
	st.enqueued = q.Enqueued
	st.lastToken = q.LastToken
	return st
}

// FromSnapshot rebuilds an engine on the given clock, which must stand at
// the snapshot instant (the restored engine re-schedules its pending
// iteration event in absolute time). Advancing the restored engine
// produces bit-identical results to advancing the original uninterrupted:
// queues, KV state, the energy meter, and the one in-flight iteration
// event are all reproduced exactly.
func FromSnapshot(s *Snapshot, clock *simclock.Clock) *Engine {
	if clock.Now() != s.Now {
		panic(fmt.Sprintf("engine: restoring a snapshot taken at %v onto a clock at %v", s.Now, clock.Now()))
	}
	e := &Engine{
		Cfg:         s.Cfg,
		clock:       clock,
		kvCapacity:  s.Cfg.Model.KVCapacityTokens(s.Cfg.TP),
		kvTokens:    s.KVTokens,
		running:     s.Running,
		frozenUntil: s.FrozenUntil,
		iterEnd:     s.IterEnd,
		nextStart:   s.NextStart,
		meter:       s.Meter.Clone(),
		TTFT:        s.TTFT.Clone(),
		TBT:         s.TBT.Clone(),
		prefillOnly: s.PrefillOnly,
		Counters: Counters{
			Completed:     s.Completed,
			TokensIn:      s.TokensIn,
			TokensOut:     s.TokensOut,
			Preempted:     s.Preempted,
			PrefixHits:    s.PrefixHits,
			KVRejected:    s.KVRejected,
			Handoffs:      s.Handoffs,
			SwapOuts:      s.SwapOuts,
			SwapIns:       s.SwapIns,
			Recomputes:    s.Recomputes,
			TierEvictions: s.TierEvictions,
		},
	}
	e.onIterStart = e.iterate
	e.onIterEnd = e.finishIteration
	e.onSwapDone = e.swapDone
	if s.KV.BlockTokens > 0 {
		e.ConfigureKV(s.KV)
		e.kvBlocksUsed = s.KVBlocksUsed
		e.kvTierUsed = s.KVTierUsed
		e.linkFreeAt = s.LinkFreeAt
		if len(s.Prefix) > 0 && e.prefixMap == nil {
			e.prefixMap = make(map[uint64]*prefixEntry)
		}
		for _, p := range s.Prefix {
			pe := e.getPrefix()
			pe.group, pe.tokens, pe.blocks, pe.refs, pe.spilled = p.Group, p.Tokens, p.Blocks, p.Refs, p.Spilled
			e.prefixMap[pe.group] = pe
			e.prefixList = append(e.prefixList, pe)
		}
	}
	for _, q := range s.Waiting {
		e.waiting = append(e.waiting, restoreSeq(e, q))
	}
	for _, q := range s.PreemptedQ {
		e.preempted = append(e.preempted, restoreSeq(e, q))
	}
	for _, q := range s.Active {
		e.active = append(e.active, restoreSeq(e, q))
	}
	for _, q := range s.Spilled {
		e.spilled = append(e.spilled, restoreSeq(e, q))
	}
	for _, q := range s.SwapReady {
		e.swapReady = append(e.swapReady, restoreSeq(e, q))
	}
	// Mid-swap transfers re-arm from their cut point: the completion event
	// is rescheduled at its original absolute time, in link order, so the
	// restored engine's swap-in deliveries are bit-identical.
	for _, q := range s.Swapping {
		t := e.getSwap()
		t.st, t.end = restoreSeq(e, q.Seq), q.End
		e.swapQ = append(e.swapQ, t)
		e.swapInflight++
		clock.At(t.end, e.onSwapDone)
	}
	// Re-arm the engine's single in-flight event. While running, exactly
	// one of two events is pending: the iteration end (strictly in the
	// future — a due end would have fired before the snapshot) or the next
	// iteration start at the time kick actually scheduled (which a later
	// Freeze does not move, hence NextStart rather than FrozenUntil).
	if e.running {
		if e.iterEnd > s.Now {
			clock.At(e.iterEnd, e.onIterEnd)
		} else {
			at := e.nextStart
			if at < s.Now {
				at = s.Now
			}
			clock.At(at, e.onIterStart)
		}
	}
	return e
}
