package engine

import (
	"runtime"
	"testing"

	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// kvSoak drives a sustained Poisson load through one engine under the
// given KV config (zero = legacy path), with every request tagged into
// one shared prompt group so the prefix cache sees hits when enabled.
// Request lengths are fixed at in/out tokens; returns the engine and the
// number of clock events executed (the per-event alloc floor's unit).
func kvSoak(kv KVConfig, lambda, dur float64, in, out int) (*Engine, uint64) {
	cfg := perfmodel.Config{Model: model.Llama2_70B, TP: model.TP4, Freq: 1600}
	clock := simclock.New()
	eng := New(cfg, clock)
	eng.ConfigureKV(kv)
	rng := simclock.NewRNG(7)
	t := 0.0
	for {
		t += rng.Exp(lambda)
		if t >= dur {
			break
		}
		at := simclock.Time(t)
		clock.At(at, func() {
			eng.SubmitCopy(workload.Request{
				Arrival: at, InputTokens: in, OutputTokens: out, PromptGroup: 1,
			})
		})
	}
	clock.Run()
	return eng, clock.Steps()
}

// The shared soak shape: short-prompt requests (16 prompt + 6 decode
// blocks each, all one prompt group) against a pool that sits right at
// the capacity edge once the 16-block prefix entry is published — decode
// growth preempts continuously (~7 preemptions per completion) while the
// referenced prefix entry survives eviction, so every follower admission
// is a cache hit. One run exercises allocation, preemption, rollback,
// re-admission, and prefix publication together.
const (
	kvSoakLambda = 3.0
	kvSoakDur    = 120.0
	kvSoakIn     = 256
	kvSoakOut    = 96
)

var kvSoakPressured = KVConfig{BlockTokens: 16, Blocks: 72, PrefixCache: true}

// BenchmarkEngineKV times the block-KV admission + preemption hot path:
// the EngineSoak workload on a pool sized to stay under constant pressure
// (preemptions and re-admissions every few iterations) with the prefix
// cache enabled. The KV bookkeeping itself is alloc-free in steady state —
// seqStates, prefix entries, and the queues are pooled — so allocs/op
// tracks BenchmarkEngineSoak's clock-and-closure floor rather than growing
// with preemption traffic (TestEngineKVSteadyStateAllocs pins this).
func BenchmarkEngineKV(b *testing.B) {
	b.ReportAllocs()
	var eng *Engine
	for i := 0; i < b.N; i++ {
		eng, _ = kvSoak(kvSoakPressured, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
		if eng.Completed == 0 {
			b.Fatal("KV soak completed nothing")
		}
	}
	b.ReportMetric(float64(eng.Completed), "completed-reqs")
	b.ReportMetric(float64(eng.Preempted), "preemptions")
	b.ReportMetric(float64(eng.PrefixHits), "prefix-hits")
}

// kvSoakTiered is kvSoakPressured with a CPU-class spill tier under it:
// the same pool pressure, but victims swap over the modeled link instead
// of recomputing, so the soak exercises the swap-out/swap-in hot path
// continuously. Swap-always removes the policy's dependence on modeled
// times, keeping the benchmark shape stable across perf-model changes.
var kvSoakTiered = KVConfig{
	BlockTokens: 16, Blocks: 72, PrefixCache: true,
	TierBlocks: 512, TierBytesPerSec: DefaultTierBytesPerSec,
	SwapPolicy: SwapAlways,
}

// BenchmarkEngineKVTiered times the spill-tier hot path: the pressured KV
// soak with every preemption resolved through the swap link. Transfer
// records are pooled and the completion callback is bound once, so
// allocs/op stays on the clock-event floor just like the recompute path
// (TestEngineKVTieredSteadyStateAllocs pins this).
func BenchmarkEngineKVTiered(b *testing.B) {
	b.ReportAllocs()
	var eng *Engine
	for i := 0; i < b.N; i++ {
		eng, _ = kvSoak(kvSoakTiered, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
		if eng.Completed == 0 {
			b.Fatal("tiered KV soak completed nothing")
		}
	}
	b.ReportMetric(float64(eng.Completed), "completed-reqs")
	b.ReportMetric(float64(eng.SwapOuts), "swap-outs")
	b.ReportMetric(float64(eng.SwapIns), "swap-ins")
}

// mallocsDuring counts heap allocations performed by f, with the world
// quiesced by a GC first. Single-goroutine engine runs make the count
// deterministic up to runtime background noise.
func mallocsDuring(f func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestEngineKVSteadyStateAllocs asserts the zero-steady-state-allocs
// contract for the block-KV machinery: a pressured KV soak (constant
// preemption + prefix churn) may not allocate meaningfully more per
// executed clock event than the legacy token-bucket path on the same
// workload. Clock events are the engine's unavoidable alloc floor (one
// event record per scheduled iteration boundary), and preemption churn
// multiplies the event count — so normalizing per event isolates the KV
// bookkeeping itself: with pooled seqStates, prefix entries, and queues,
// its steady-state contribution must be zero, and any per-preemption or
// per-admission allocation would separate the two ratios immediately
// (preemptions outnumber completions 7:1 under this pool size).
func TestEngineKVSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-ratio soak")
	}
	var legacy, kv *Engine
	var legacySteps, kvSteps uint64
	legacyAllocs := mallocsDuring(func() {
		legacy, legacySteps = kvSoak(KVConfig{}, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
	})
	kvAllocs := mallocsDuring(func() {
		kv, kvSteps = kvSoak(kvSoakPressured, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
	})
	if legacy.Completed == 0 || kv.Completed == 0 {
		t.Fatalf("soak completed nothing: legacy %d, kv %d", legacy.Completed, kv.Completed)
	}
	if kv.Preempted == 0 || kv.PrefixHits == 0 {
		t.Fatalf("KV soak exercised no pressure: %d preemptions, %d prefix hits", kv.Preempted, kv.PrefixHits)
	}
	perLegacy := float64(legacyAllocs) / float64(legacySteps)
	perKV := float64(kvAllocs) / float64(kvSteps)
	t.Logf("allocs per clock event: legacy %.2f (%d events, %d reqs), kv %.2f (%d events, %d reqs, %d preemptions, %d hits)",
		perLegacy, legacySteps, legacy.Completed, perKV, kvSteps, kv.Completed, kv.Preempted, kv.PrefixHits)
	// 15% headroom covers the one-time pool/queue/prefix-map growth; a
	// real per-preemption allocation costs a multiple of the floor.
	if perKV > perLegacy*1.15 {
		t.Errorf("KV path allocates %.2f per clock event vs legacy %.2f (limit 1.15x): steady-state KV bookkeeping must not allocate",
			perKV, perLegacy)
	}
}

// TestEngineKVTieredSteadyStateAllocs extends the contract to the spill
// tier: sustained swap traffic — a pooled transfer record and one clock
// event per swap-in — must hold the same per-event alloc floor as the
// legacy path. An allocation per transfer (an unpooled record, a fresh
// completion closure) would separate the ratios immediately.
func TestEngineKVTieredSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-ratio soak")
	}
	var legacy, tiered *Engine
	var legacySteps, tieredSteps uint64
	legacyAllocs := mallocsDuring(func() {
		legacy, legacySteps = kvSoak(KVConfig{}, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
	})
	tieredAllocs := mallocsDuring(func() {
		tiered, tieredSteps = kvSoak(kvSoakTiered, kvSoakLambda, kvSoakDur, kvSoakIn, kvSoakOut)
	})
	if legacy.Completed == 0 || tiered.Completed == 0 {
		t.Fatalf("soak completed nothing: legacy %d, tiered %d", legacy.Completed, tiered.Completed)
	}
	if tiered.SwapOuts == 0 || tiered.SwapIns == 0 {
		t.Fatalf("tiered soak exercised no swap traffic: %d out, %d in", tiered.SwapOuts, tiered.SwapIns)
	}
	perLegacy := float64(legacyAllocs) / float64(legacySteps)
	perTiered := float64(tieredAllocs) / float64(tieredSteps)
	t.Logf("allocs per clock event: legacy %.2f (%d events), tiered %.2f (%d events, %d swap-outs, %d swap-ins, %d evictions)",
		perLegacy, legacySteps, perTiered, tieredSteps, tiered.SwapOuts, tiered.SwapIns, tiered.TierEvictions)
	if perTiered > perLegacy*1.15 {
		t.Errorf("tiered path allocates %.2f per clock event vs legacy %.2f (limit 1.15x): swap records must pool",
			perTiered, perLegacy)
	}
}
