package engine

import (
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/simclock"
	"dynamollm/internal/workload"
)

// Property suite for block-granular KV accounting: conservation at every
// event boundary, no blocks leaked past completion, guaranteed progress
// under the tightest possible pool, and snapshot round-trips that carry
// the full preemption/prefix state. These are the invariants the cluster
// layers build on — a violation here surfaces as a deadlocked drain or a
// silent capacity drift three packages away.

// heldBlocks sums the GPU blocks attributable to some holder: sequences
// in every queue (including those staged behind an in-flight or completed
// swap-in, which hold their GPU blocks from transfer start) plus resident
// prefix-cache entries. Conservation demands this equals the pool's used
// counter exactly — an untracked block is a leak, a double-counted one is
// phantom capacity.
func heldBlocks(e *Engine) int {
	held := 0
	for _, st := range e.active {
		held += st.kvBlocks
	}
	for i := e.waitHead; i < len(e.waiting); i++ {
		held += e.waiting[i].kvBlocks
	}
	for i := e.preHead; i < len(e.preempted); i++ {
		held += e.preempted[i].kvBlocks
	}
	for _, st := range e.swapReady {
		held += st.kvBlocks
	}
	for i := e.swapHead; i < len(e.swapQ); i++ {
		if st := e.swapQ[i].st; st != nil {
			held += st.kvBlocks
		}
	}
	for _, pe := range e.prefixList {
		if !pe.spilled {
			held += pe.blocks
		}
	}
	return held
}

// tierHeldBlocks is the spill-tier mirror of heldBlocks: blocks held by
// spilled sequences awaiting swap-in plus spilled prefix entries.
func tierHeldBlocks(e *Engine) int {
	held := 0
	for i := e.spillHead; i < len(e.spilled); i++ {
		held += e.spilled[i].tierBlocks
	}
	for _, pe := range e.prefixList {
		if pe.spilled {
			held += pe.blocks
		}
	}
	return held
}

func checkKVConservation(t *testing.T, e *Engine) {
	t.Helper()
	if e.kvBlocksUsed < 0 || e.kvBlocksUsed > e.kvBlocksCap {
		t.Fatalf("t=%v: used blocks %d outside pool [0, %d]", e.clock.Now(), e.kvBlocksUsed, e.kvBlocksCap)
	}
	if held := heldBlocks(e); held != e.kvBlocksUsed {
		t.Fatalf("t=%v: conservation broken: holders sum to %d, pool says %d used",
			e.clock.Now(), held, e.kvBlocksUsed)
	}
	if e.kvTierUsed < 0 || e.kvTierUsed > e.kvTierCap {
		t.Fatalf("t=%v: tier blocks %d outside tier [0, %d]", e.clock.Now(), e.kvTierUsed, e.kvTierCap)
	}
	if held := tierHeldBlocks(e); held != e.kvTierUsed {
		t.Fatalf("t=%v: tier conservation broken: holders sum to %d, tier says %d used",
			e.clock.Now(), held, e.kvTierUsed)
	}
	// A sequence is resident or spilled, never both: the GPU side is freed
	// in the same instant the tier side takes over (and vice versa).
	checkSeq := func(st *seqState) {
		if st.kvBlocks > 0 && st.tierBlocks > 0 {
			t.Fatalf("t=%v: sequence holds %d GPU blocks and %d tier blocks at once",
				e.clock.Now(), st.kvBlocks, st.tierBlocks)
		}
	}
	for _, st := range e.active {
		checkSeq(st)
	}
	for i := e.spillHead; i < len(e.spilled); i++ {
		checkSeq(e.spilled[i])
	}
	for _, st := range e.swapReady {
		checkSeq(st)
	}
	checkTierCounters(t, e)
}

// checkTierCounters asserts the swap-counter algebra that holds at every
// instant: swap-ins never outrun swap-outs, and every preemption or tier
// eviction resolved as exactly one swap-out or one recompute.
func checkTierCounters(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.CheckLaws(); err != nil {
		t.Fatalf("t=%v: %v", e.clock.Now(), err)
	}
}

// kvPropReqs is a deterministic mixed workload. The first dozen requests
// alternate between two prompt groups in a tight burst, so followers
// arrive while the published prefix is still cached (an unreferenced
// entry is evicted the moment the pool saturates); the tail is ungrouped
// churn that drives the pool into preemption.
func kvPropReqs(n int, seed uint64) []workload.Request {
	rng := simclock.NewRNG(seed)
	reqs := make([]workload.Request, n)
	at := simclock.Time(0)
	for i := range reqs {
		at += simclock.Time(rng.Float64() * 0.25)
		reqs[i] = workload.Request{
			Arrival:      at,
			InputTokens:  32 + rng.Intn(600),
			OutputTokens: 2 + rng.Intn(100),
		}
		if i < 12 {
			g := uint64(1 + i%2)
			reqs[i].PromptGroup = g
			reqs[i].InputTokens = 200 + int(g)*40
		}
	}
	return reqs
}

// TestKVPropConservation: allocated+free equals capacity at every event
// boundary of a pressured run with preemption and prefix sharing both
// active, and after the drain nothing is held at all.
func TestKVPropConservation(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP4, 1600), clk)
	eng.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 64, PrefixCache: true})
	reqs := kvPropReqs(80, 17)
	scheduleFrom(clk, eng, reqs, -1)
	// The check rides a fine periodic event: engine state only mutates
	// inside iteration events, so every firing observes a boundary. The
	// periodic event keeps the heap non-empty, so run to a horizon past
	// the workload, cancel, then drain whatever remains.
	cancel := clk.Every(0.01, func() { checkKVConservation(t, eng) })
	clk.RunUntil(120)
	cancel()
	clk.Run()

	checkKVConservation(t, eng)
	if eng.Completed+eng.KVRejected != len(reqs) {
		t.Fatalf("requests lost: %d completed + %d rejected of %d",
			eng.Completed, eng.KVRejected, len(reqs))
	}
	if eng.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", eng.QueueLen())
	}
	if eng.Preempted == 0 {
		t.Error("64-block pool produced no preemptions; workload not pressuring")
	}
	// All sequences gone: only prefix-cache entries may still hold blocks.
	if seqHeld := eng.kvBlocksUsed - func() int {
		n := 0
		for _, pe := range eng.prefixList {
			n += pe.blocks
		}
		return n
	}(); seqHeld != 0 {
		t.Errorf("%d blocks still held by finished sequences", seqHeld)
	}
	eng.Drain(nil)
	if eng.kvBlocksUsed != 0 {
		t.Errorf("%d blocks leaked past drain", eng.kvBlocksUsed)
	}
}

// TestKVPropNoLeakWithoutPrefix: with the prefix cache off, the only
// legitimate holders are live sequences, so a fully completed run must
// land at exactly zero used blocks without any drain.
func TestKVPropNoLeakWithoutPrefix(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP4, 1600), clk)
	eng.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 96})
	reqs := kvPropReqs(60, 29)
	scheduleFrom(clk, eng, reqs, -1)
	clk.Run()
	if eng.Completed+eng.KVRejected != len(reqs) {
		t.Fatalf("requests lost: %d completed + %d rejected of %d",
			eng.Completed, eng.KVRejected, len(reqs))
	}
	if eng.kvBlocksUsed != 0 {
		t.Errorf("%d blocks held after all sequences finished", eng.kvBlocksUsed)
	}
}

// TestKVPropProgressAtOneBlock is the deadlock property at its tightest:
// a single-block pool, contending sequences that fit it, and one that
// never can. Every fitting request must complete (sequences serialize
// through the block via preemption), the oversize one must be rejected —
// and the run must terminate, which is the property the rollback paths
// exist for (clock.Run returning at all is the assertion).
func TestKVPropProgressAtOneBlock(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clk)
	eng.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 1})
	fitting := 6
	for i := 0; i < fitting; i++ {
		at := simclock.Time(float64(i) * 0.01)
		r := workload.Request{Arrival: at, InputTokens: 6, OutputTokens: 4}
		clk.At(at, func() { eng.SubmitCopy(r) })
	}
	clk.At(0.02, func() {
		eng.SubmitCopy(workload.Request{Arrival: 0.02, InputTokens: 40, OutputTokens: 4})
	})
	clk.Run()
	if eng.Completed != fitting {
		t.Errorf("completed %d of %d block-sized requests", eng.Completed, fitting)
	}
	if eng.KVRejected != 1 {
		t.Errorf("oversize request: rejected %d, want 1", eng.KVRejected)
	}
	if eng.kvBlocksUsed != 0 {
		t.Errorf("%d blocks held after the run", eng.kvBlocksUsed)
	}
}

// TestKVPropPrefixSelfReference pins the pathological shape the noPrefix
// rule exists for: a cached prefix plus a sequence relying on it fill the
// pool exactly, so the sequence cannot cross its next block boundary
// while sharing. The run must terminate with the request either completed
// (resumed on its own blocks) or rejected — never spinning.
func TestKVPropPrefixSelfReference(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP8, gpu.MaxFreq), clk)
	// Prompt of 32 tokens = 2 blocks cached; 5-block pool. The follower
	// hits the cache, then needs 32+out tokens of its own as it decodes.
	eng.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 5, PrefixCache: true})
	a := workload.Request{Arrival: 0, InputTokens: 32, OutputTokens: 2, PromptGroup: 9}
	b := workload.Request{Arrival: 0.5, InputTokens: 32, OutputTokens: 60, PromptGroup: 9}
	clk.At(0, func() { eng.SubmitCopy(a) })
	clk.At(0.5, func() { eng.SubmitCopy(b) })
	clk.Run()
	if eng.Completed+eng.KVRejected != 2 {
		t.Fatalf("requests lost: %d completed + %d rejected of 2", eng.Completed, eng.KVRejected)
	}
	if eng.PrefixHits == 0 {
		t.Error("follower never hit the prefix cache; scenario not exercised")
	}
	checkKVConservation(t, eng)
}

// kvFP extends the engine fingerprint with the KV dynamics counters and
// occupancy two engines must also agree on.
type kvFP struct {
	engineFingerprint
	Preempted, PrefixHits, KVRejected, Handoffs int
	UsedBlocks                                  int
	SwapOuts, SwapIns, Recomputes, TierEvicts   int
	TierUsed                                    int
}

func kvFingerprint(e *Engine) kvFP {
	return kvFP{
		engineFingerprint: engFP(e),
		Preempted:         e.Preempted,
		PrefixHits:        e.PrefixHits,
		KVRejected:        e.KVRejected,
		Handoffs:          e.Handoffs,
		UsedBlocks:        e.kvBlocksUsed,
		SwapOuts:          e.SwapOuts,
		SwapIns:           e.SwapIns,
		Recomputes:        e.Recomputes,
		TierEvicts:        e.TierEvictions,
		TierUsed:          e.kvTierUsed,
	}
}

// TestKVSnapshotRoundTrip: snapshot a pressured engine at cut points that
// straddle prefix publication, active preemption churn, and the drain
// tail; each restore must finish bit-identical to the uninterrupted run,
// preempted queue and prefix cache included.
func TestKVSnapshotRoundTrip(t *testing.T) {
	cfg := cfg70(model.TP4, 1600)
	// Large enough that early prefills publish prefix entries (insertion
	// needs spare blocks), small enough that the later pile-up preempts.
	kv := KVConfig{BlockTokens: 16, Blocks: 120, PrefixCache: true}
	reqs := kvPropReqs(70, 41)

	refClk := simclock.New()
	ref := New(cfg, refClk)
	ref.ConfigureKV(kv)
	scheduleFrom(refClk, ref, reqs, -1)
	refClk.Run()
	want := kvFingerprint(ref)
	if ref.Preempted == 0 || ref.PrefixHits == 0 {
		t.Fatalf("reference run exercised no pressure: %d preempted, %d hits",
			ref.Preempted, ref.PrefixHits)
	}

	for _, cut := range []simclock.Time{0.4, 2.0, 6.5} {
		clk := simclock.New()
		eng := New(cfg, clk)
		eng.ConfigureKV(kv)
		scheduleFrom(clk, eng, reqs, -1)
		clk.RunUntil(cut)
		snap := eng.Snapshot()

		clk2 := simclock.New()
		clk2.RunUntil(cut)
		eng2 := FromSnapshot(snap, clk2)
		scheduleFrom(clk2, eng2, reqs, cut)
		clk2.Run()
		if got := kvFingerprint(eng2); got != want {
			t.Errorf("cut %v: restored != uninterrupted:\n restored %+v\n want     %+v", cut, got, want)
		}

		clk.Run()
		if got := kvFingerprint(eng); got != want {
			t.Errorf("cut %v: snapshotting perturbed the source:\n got  %+v\n want %+v", cut, got, want)
		}
	}
}

// TestKVSnapshotCarriesPreemptedState: a snapshot taken while sequences
// sit in the preempted queue must restore them — queue order, recompute
// footprints, and the noPrefix bar included (checked structurally, then
// behaviourally by running to completion).
func TestKVSnapshotCarriesPreemptedState(t *testing.T) {
	cfg := cfg70(model.TP4, 1600)
	kv := KVConfig{BlockTokens: 16, Blocks: 24, PrefixCache: true}
	reqs := kvPropReqs(50, 53)

	clk := simclock.New()
	eng := New(cfg, clk)
	eng.ConfigureKV(kv)
	scheduleFrom(clk, eng, reqs, -1)
	var cut simclock.Time
	for probe := simclock.Time(0.2); probe < 20 && cut == 0; probe += 0.2 {
		clk.RunUntil(probe)
		if eng.preLen() > 0 {
			cut = probe
		}
	}
	if cut == 0 {
		t.Fatal("never caught a sequence in the preempted queue; pool too large")
	}
	snap := eng.Snapshot()
	if len(snap.PreemptedQ) != eng.preLen() {
		t.Fatalf("snapshot carries %d preempted, engine holds %d", len(snap.PreemptedQ), eng.preLen())
	}
	for i, q := range snap.PreemptedQ {
		if !q.NoPrefix {
			t.Errorf("preempted[%d] lost its noPrefix bar in the snapshot", i)
		}
	}

	clk2 := simclock.New()
	clk2.RunUntil(cut)
	eng2 := FromSnapshot(snap, clk2)
	scheduleFrom(clk2, eng2, reqs, cut)
	clk2.Run()
	clk.Run()
	if got, want := kvFingerprint(eng2), kvFingerprint(eng); got != want {
		t.Errorf("restore-with-preempted diverged:\n restored %+v\n source   %+v", got, want)
	}
}

// --- Spill-tier properties ---------------------------------------------------

// kvTierCfg is the pressured tier configuration the tier properties run
// under: a pool small enough to preempt constantly, swap-always so every
// victim crosses the tier boundary the tier can hold.
func kvTierCfg(tierBlocks int) KVConfig {
	return KVConfig{
		BlockTokens: 16, Blocks: 64, PrefixCache: true,
		TierBlocks: tierBlocks, TierBytesPerSec: DefaultTierBytesPerSec,
		SwapPolicy: SwapAlways,
	}
}

// kvTierSlowCfg throttles the link three orders of magnitude below the
// PCIe default, stretching each transfer from milliseconds to seconds, so
// tests that must catch (or drain) a transfer mid-flight can find one at
// coarse probe granularity.
func kvTierSlowCfg(tierBlocks int) KVConfig {
	cfg := kvTierCfg(tierBlocks)
	cfg.TierBytesPerSec = DefaultTierBytesPerSec / 1000
	return cfg
}

// TestKVTierPropConservation: with a spill tier configured, GPU and tier
// conservation (and the per-instant counter algebra) hold at every event
// boundary, the run drains at every tier capacity — including one so small
// that almost every spill forces an eviction — and the drain releases both
// pools completely.
func TestKVTierPropConservation(t *testing.T) {
	for _, tierBlocks := range []int{1, 4, 16, 256} {
		clk := simclock.New()
		eng := New(cfg70(model.TP4, 1600), clk)
		eng.ConfigureKV(kvTierCfg(tierBlocks))
		reqs := kvPropReqs(80, 17)
		scheduleFrom(clk, eng, reqs, -1)
		cancel := clk.Every(0.01, func() { checkKVConservation(t, eng) })
		clk.RunUntil(120)
		cancel()
		clk.Run() // termination at this capacity is itself the property

		checkKVConservation(t, eng)
		if eng.Completed+eng.KVRejected != len(reqs) {
			t.Fatalf("tier %d: requests lost: %d completed + %d rejected of %d",
				tierBlocks, eng.Completed, eng.KVRejected, len(reqs))
		}
		if tierBlocks >= 16 && eng.SwapOuts == 0 {
			t.Errorf("tier %d: swap-always run never swapped; tier not exercised", tierBlocks)
		}
		// Every swap-out resolved: swapped back in, or evicted to recompute.
		// A force-recomputed sequence must never also swap in.
		if eng.SwapIns != eng.SwapOuts-eng.TierEvictions {
			t.Errorf("tier %d: at drain %d swap-ins != %d swap-outs - %d evictions",
				tierBlocks, eng.SwapIns, eng.SwapOuts, eng.TierEvictions)
		}
		eng.Drain(nil)
		if eng.kvBlocksUsed != 0 || eng.kvTierUsed != 0 {
			t.Errorf("tier %d: %d GPU + %d tier blocks leaked past drain",
				tierBlocks, eng.kvBlocksUsed, eng.kvTierUsed)
		}
	}
}

// TestKVTierPropThrash oscillates pressure across the tier boundary — the
// cache-thrash shape at engine scale: bursts that overflow the GPU pool
// and force spills, separated by lulls long enough to swap everything
// back. Conservation holds through every crossing, and both directions of
// the link are actually exercised.
func TestKVTierPropThrash(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP4, 1600), clk)
	eng.ConfigureKV(kvTierCfg(256))
	rng := simclock.NewRNG(71)
	var reqs []workload.Request
	for cycle := 0; cycle < 4; cycle++ {
		base := simclock.Time(cycle) * 12
		// Burst: 25 arrivals packed into two seconds overflow the pool.
		for i := 0; i < 25; i++ {
			reqs = append(reqs, workload.Request{
				Arrival:      base + simclock.Time(rng.Float64()*2),
				InputTokens:  64 + rng.Intn(400),
				OutputTokens: 20 + rng.Intn(80),
			})
		}
		// Lull: a trickle keeps the engine iterating while the backlog
		// (and the spilled queue) drains.
		for i := 0; i < 3; i++ {
			reqs = append(reqs, workload.Request{
				Arrival:     base + 4 + simclock.Time(rng.Float64()*6),
				InputTokens: 32, OutputTokens: 8,
			})
		}
	}
	scheduleFrom(clk, eng, reqs, -1)
	cancel := clk.Every(0.01, func() { checkKVConservation(t, eng) })
	clk.RunUntil(120)
	cancel()
	clk.Run()

	checkKVConservation(t, eng)
	if eng.Completed+eng.KVRejected != len(reqs) {
		t.Fatalf("requests lost: %d completed + %d rejected of %d",
			eng.Completed, eng.KVRejected, len(reqs))
	}
	if eng.SwapOuts == 0 || eng.SwapIns == 0 {
		t.Errorf("thrash exercised neither direction: %d out, %d in", eng.SwapOuts, eng.SwapIns)
	}
	if eng.kvTierUsed != 0 {
		t.Errorf("%d tier blocks held after the backlog drained", eng.kvTierUsed)
	}
}

// TestKVTierSnapshotRoundTrip: snapshots of a tiered engine — including
// cuts taken with a swap-in transfer in flight on the link — restore to
// runs bit-identical to the uninterrupted one, swap counters, tier
// occupancy, and the re-armed transfer completion included.
func TestKVTierSnapshotRoundTrip(t *testing.T) {
	cfg := cfg70(model.TP4, 1600)
	kv := kvTierSlowCfg(256)
	reqs := kvPropReqs(70, 41)

	refClk := simclock.New()
	ref := New(cfg, refClk)
	ref.ConfigureKV(kv)
	scheduleFrom(refClk, ref, reqs, -1)
	refClk.Run()
	want := kvFingerprint(ref)
	if ref.SwapOuts == 0 || ref.SwapIns == 0 {
		t.Fatalf("reference run never swapped (%d out, %d in); tier not exercised",
			ref.SwapOuts, ref.SwapIns)
	}

	// Find a cut instant with a transfer mid-flight, so at least one cut
	// exercises the re-armed swap event.
	probeClk := simclock.New()
	probe := New(cfg, probeClk)
	probe.ConfigureKV(kv)
	scheduleFrom(probeClk, probe, reqs, -1)
	var midSwap simclock.Time
	for at := simclock.Time(0.05); at < 60 && midSwap == 0; at += 0.05 {
		probeClk.RunUntil(at)
		if probe.swapInflight > 0 {
			midSwap = at
		}
	}
	if midSwap == 0 {
		t.Fatal("never caught a swap-in transfer in flight")
	}

	for _, cut := range []simclock.Time{0.4, midSwap, 6.5} {
		clk := simclock.New()
		eng := New(cfg, clk)
		eng.ConfigureKV(kv)
		scheduleFrom(clk, eng, reqs, -1)
		clk.RunUntil(cut)
		if cut == midSwap && eng.swapInflight == 0 {
			t.Fatalf("cut %v: expected an in-flight transfer at the cut", cut)
		}
		snap := eng.Snapshot()

		clk2 := simclock.New()
		clk2.RunUntil(cut)
		eng2 := FromSnapshot(snap, clk2)
		scheduleFrom(clk2, eng2, reqs, cut)
		clk2.Run()
		if got := kvFingerprint(eng2); got != want {
			t.Errorf("cut %v: restored != uninterrupted:\n restored %+v\n want     %+v", cut, got, want)
		}

		clk.Run()
		if got := kvFingerprint(eng); got != want {
			t.Errorf("cut %v: snapshotting perturbed the source:\n got  %+v\n want %+v", cut, got, want)
		}
	}
}

// TestKVTierDrainMidSwap: Drain called while sequences sit spilled in the
// tier and a transfer is mid-flight must release both pools completely,
// and the orphaned link event must fire harmlessly afterwards.
func TestKVTierDrainMidSwap(t *testing.T) {
	clk := simclock.New()
	eng := New(cfg70(model.TP4, 1600), clk)
	eng.ConfigureKV(kvTierSlowCfg(256))
	reqs := kvPropReqs(70, 41)
	scheduleFrom(clk, eng, reqs, -1)
	var cut simclock.Time
	for at := simclock.Time(0.05); at < 60 && cut == 0; at += 0.05 {
		clk.RunUntil(at)
		if eng.swapInflight > 0 && eng.spillLen() > 0 {
			cut = at
		}
	}
	if cut == 0 {
		t.Fatal("never caught an in-flight transfer with a spilled backlog")
	}
	eng.Drain(nil)
	if eng.kvBlocksUsed != 0 || eng.kvTierUsed != 0 {
		t.Fatalf("drain left %d GPU + %d tier blocks held", eng.kvBlocksUsed, eng.kvTierUsed)
	}
	if eng.QueueLen() != 0 {
		t.Fatalf("drain left queue length %d", eng.QueueLen())
	}
	clk.Run() // pending swap event fires against a cancelled record
	checkKVConservation(t, eng)
}

// TestKVPropDisaggHandoff: a prefill-only engine hands every multi-token
// sequence to the decode side right after its first token and retains no
// blocks for it; the decode engine finishes the work under its own pool
// accounting. Conservation holds on both engines throughout.
func TestKVPropDisaggHandoff(t *testing.T) {
	clk := simclock.New()
	pre := New(cfg70(model.TP4, 1600), clk)
	dec := New(cfg70(model.TP4, 1600), clk)
	pre.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 64})
	dec.ConfigureKV(KVConfig{BlockTokens: 16, Blocks: 64})
	pre.SetPrefillOnly(true)
	pre.SetOnHandoff(func(r workload.Request, ctx int) { dec.SubmitDecode(r, ctx) })
	reqs := kvPropReqs(40, 61)
	scheduleFrom(clk, pre, reqs, -1)
	cancel := clk.Every(0.01, func() {
		checkKVConservation(t, pre)
		checkKVConservation(t, dec)
	})
	clk.RunUntil(120)
	cancel()
	clk.Run()

	single := 0
	for _, r := range reqs {
		if r.OutputTokens == 1 {
			single++
		}
	}
	if pre.Handoffs != len(reqs)-single {
		t.Errorf("prefill side handed off %d of %d multi-token requests", pre.Handoffs, len(reqs)-single)
	}
	if pre.Completed != single {
		t.Errorf("prefill side completed %d, want only the %d single-token requests", pre.Completed, single)
	}
	if dec.Completed+dec.KVRejected != pre.Handoffs {
		t.Errorf("decode side: %d completed + %d rejected of %d handoffs",
			dec.Completed, dec.KVRejected, pre.Handoffs)
	}
	if pre.kvBlocksUsed != 0 || dec.kvBlocksUsed != 0 {
		t.Errorf("blocks held after drain: prefill %d, decode %d", pre.kvBlocksUsed, dec.kvBlocksUsed)
	}
	// A handed-off request's output tokens split across the two engines.
	total := 0
	for _, r := range reqs {
		total += r.OutputTokens
	}
	if rejectedTokens := total - (pre.TokensOut + dec.TokensOut); dec.KVRejected == 0 && rejectedTokens != 0 {
		t.Errorf("token conservation across handoff: %d produced of %d", pre.TokensOut+dec.TokensOut, total)
	}
}
