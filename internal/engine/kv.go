package engine

import "dynamollm/internal/workload"

// Block-granular KV-cache accounting.
//
// The legacy engine path tracks KV occupancy as a float token count against
// the profile-derived capacity and can therefore neither preempt nor share
// prefixes. ConfigureKV switches the engine to a vLLM-style paged pool:
// capacity is a whole number of fixed-size blocks, admission allocates
// blocks for each prefill chunk, decode growth reserves a block whenever a
// sequence crosses a block boundary, and pressure is resolved by preempting
// the youngest decode sequences (their KV is dropped; they re-prefill their
// recomputed context when re-admitted, prompt plus produced tokens, which
// is the recompute-on-resume policy from the vLLM paper). Requests sharing
// a non-zero PromptGroup can reuse a cached prompt prefix: the first
// sequence of a group to finish prefill publishes its prompt blocks into a
// prefix cache; later arrivals skip the covered prompt tokens entirely.
//
// With BlockTokens == 0 (the default) none of this code runs and the
// legacy token-granular path is preserved bit-for-bit; with blocks enabled
// but capacity effectively unbounded, admission makes the same decisions
// as the legacy path and the event stream is identical — the cross-
// fidelity compat test pins both properties.

// KVConfig selects block-granular KV accounting for an engine.
type KVConfig struct {
	// BlockTokens is the page size in tokens; <= 0 disables block
	// accounting (legacy float path).
	BlockTokens int
	// Blocks fixes the pool size directly; 0 derives it from the model's
	// profile-derived KV capacity for the engine's TP degree.
	Blocks int
	// CapacityFactor scales the derived capacity (ignored when Blocks is
	// set); <= 0 means 1.0. The kv sweep uses it to shrink memory.
	CapacityFactor float64
	// PrefixCache enables prompt-prefix sharing across a PromptGroup.
	PrefixCache bool

	// TierBlocks sizes the CPU/SSD spill tier below the pool (tier.go);
	// 0 with TierCapacityFactor == 0 disables the tier (recompute-only).
	TierBlocks int
	// TierCapacityFactor sizes the tier relative to the UNSCALED derived
	// GPU capacity (ignored when TierBlocks is set): host memory and NVMe
	// do not shrink when CapacityFactor squeezes the GPU pool.
	TierCapacityFactor float64
	// TierBytesPerSec is the swap-link bandwidth; <= 0 with a tier
	// configured takes DefaultTierBytesPerSec.
	TierBytesPerSec float64
	// SwapPolicy picks swap vs recompute per preemption victim.
	SwapPolicy SwapPolicy
}

// prefixEntry is one cached prompt prefix, shared by every sequence of a
// PromptGroup. Entries hold their own blocks; refs counts live sequences
// currently relying on the entry (unreferenced entries are evictable).
type prefixEntry struct {
	group  uint64
	tokens int
	blocks int
	refs   int
	// spilled marks an entry whose blocks moved to the spill tier under
	// GPU pressure (evict-to-tier before drop); a hit swaps it back in.
	// Only unreferenced entries spill, so spilled implies refs == 0
	// until the entry is resident again.
	spilled bool
}

// ConfigureKV switches the engine to block-granular KV accounting (or back
// to the legacy token-granular path with a zero config). Call it before
// submitting work; Reconfigure re-derives the pool size on re-shard.
func (e *Engine) ConfigureKV(kv KVConfig) {
	if kv.BlockTokens <= 0 {
		e.kv = KVConfig{}
		e.kvBlocksCap = 0
		e.kvTierCap = 0
		return
	}
	e.kv = kv
	e.deriveKVBlocks()
	if kv.PrefixCache && e.prefixMap == nil {
		e.prefixMap = make(map[uint64]*prefixEntry)
	}
}

// deriveKVBlocks sizes the block pool from the config: an explicit Blocks
// override, or the model's KV capacity for the current TP degree scaled by
// CapacityFactor. The pool is never smaller than one block.
func (e *Engine) deriveKVBlocks() {
	blocks := e.kv.Blocks
	if blocks <= 0 {
		factor := e.kv.CapacityFactor
		if factor <= 0 {
			factor = 1
		}
		blocks = int(e.Cfg.Model.KVCapacityTokens(e.Cfg.TP) * factor / float64(e.kv.BlockTokens))
	}
	if blocks < 1 {
		blocks = 1
	}
	e.kvBlocksCap = blocks
	tier := e.kv.TierBlocks
	if tier <= 0 && e.kv.TierCapacityFactor > 0 {
		tier = int(e.Cfg.Model.KVCapacityTokens(e.Cfg.TP) * e.kv.TierCapacityFactor / float64(e.kv.BlockTokens))
		if tier < 1 {
			tier = 1
		}
	}
	e.kvTierCap = tier
	e.tierBW = e.kv.TierBytesPerSec
	if e.kvTierCap > 0 && e.tierBW <= 0 {
		e.tierBW = DefaultTierBytesPerSec
	}
}

// SetPrefillOnly marks the engine as the prefill side of a disaggregated
// pair: sequences are handed off (SetOnHandoff) right after their first
// token instead of decoding locally. Single-token requests still complete
// in place.
func (e *Engine) SetPrefillOnly(v bool) { e.prefillOnly = v }

// SetOnHandoff registers the prefill→decode handoff callback, invoked with
// a by-value copy of the request and its resident context (prompt + first
// token) when a prefill-only engine retires a sequence for remote decode.
func (e *Engine) SetOnHandoff(fn func(req workload.Request, ctx int)) { e.onHandoff = fn }

// SetOnReject registers the rejection callback, invoked with a by-value
// copy of any request whose KV footprint can never fit the pool (the
// cluster backend routes these back to the frontend retry path). Without a
// callback rejected requests are dropped and only counted.
func (e *Engine) SetOnReject(fn func(workload.Request)) { e.onReject = fn }

// KVUsage reports KV occupancy: blocks used and pool size under block
// accounting, resident tokens and token capacity on the legacy path.
func (e *Engine) KVUsage() (used, capacity int) {
	if e.kvBlocksCap > 0 {
		return e.kvBlocksUsed, e.kvBlocksCap
	}
	return int(e.kvTokens), int(e.kvCapacity)
}

// SubmitDecode enqueues a request whose prefill (and first token) already
// happened on a prefill-only engine: the sequence enters the admission
// queue with its context resident-to-be and zero prefill left, so the next
// iteration allocates its blocks and it decodes from token two. TokensIn
// is not re-counted — the prefill engine did. Requires block accounting.
func (e *Engine) SubmitDecode(req workload.Request, ctx int) {
	if e.kvBlocksCap == 0 {
		panic("engine: SubmitDecode requires block-granular KV (ConfigureKV)")
	}
	st := e.getState()
	st.owned = req
	st.req = &st.owned
	st.prefillLeft = 0
	st.produced = 1
	st.ctx = ctx
	st.enqueued = e.clock.Now()
	st.lastToken = req.FirstToken
	e.enqueue(st)
}

// blocksFor is the block footprint of a token count.
func blocksFor(tokens, blockTokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + blockTokens - 1) / blockTokens
}

// preLen is the number of preempted sequences awaiting re-admission.
func (e *Engine) preLen() int { return len(e.preempted) - e.preHead }

// takeBlocks allocates n blocks, evicting unreferenced prefix-cache
// entries if the pool is short. It reports whether the allocation fit.
func (e *Engine) takeBlocks(n int) bool {
	if e.kvBlocksUsed+n > e.kvBlocksCap && !e.reclaimBlocks(n) {
		return false
	}
	e.kvBlocksUsed += n
	return true
}

// reclaimBlocks evicts unreferenced prefix entries, oldest first, until n
// blocks are free. With a spill tier that has room, an evicted entry moves
// to the tier instead of dropping (evict-to-tier before drop) and a later
// hit swaps it back. It reports whether it got there.
func (e *Engine) reclaimBlocks(n int) bool {
	if len(e.prefixList) == 0 {
		return false
	}
	kept := e.prefixList[:0]
	for _, pe := range e.prefixList {
		if pe.refs > 0 || pe.spilled || e.kvBlocksCap-e.kvBlocksUsed >= n {
			kept = append(kept, pe)
			continue
		}
		e.kvBlocksUsed -= pe.blocks
		if e.kvTierCap > 0 && e.kvTierUsed+pe.blocks <= e.kvTierCap {
			pe.spilled = true
			e.kvTierUsed += pe.blocks
			e.linkOccupy(e.swapSeconds(pe.tokens))
			kept = append(kept, pe)
			continue
		}
		delete(e.prefixMap, pe.group)
		e.putPrefix(pe)
	}
	for i := len(kept); i < len(e.prefixList); i++ {
		e.prefixList[i] = nil
	}
	e.prefixList = kept
	return e.kvBlocksCap-e.kvBlocksUsed >= n
}

// getPrefix takes a prefixEntry from the pool (or allocates one).
func (e *Engine) getPrefix() *prefixEntry {
	if n := len(e.freePrefix); n > 0 {
		pe := e.freePrefix[n-1]
		e.freePrefix[n-1] = nil
		e.freePrefix = e.freePrefix[:n-1]
		return pe
	}
	return &prefixEntry{}
}

// putPrefix returns an evicted prefixEntry to the pool.
func (e *Engine) putPrefix(pe *prefixEntry) {
	*pe = prefixEntry{}
	e.freePrefix = append(e.freePrefix, pe)
}

// derefPrefix drops a sequence's reference on its prefix-cache entry.
func (e *Engine) derefPrefix(st *seqState) {
	if st.prefixTokens == 0 {
		return
	}
	if pe := e.prefixMap[st.req.PromptGroup]; pe != nil {
		pe.refs--
	}
	st.prefixTokens = 0
}

// releaseSeq returns a sequence's blocks (and prefix reference) to the
// pool on completion, handoff, or drain.
func (e *Engine) releaseSeq(st *seqState) {
	e.kvBlocksUsed -= st.kvBlocks
	st.kvBlocks = 0
	e.derefPrefix(st)
}

// rejectSeq drops a request whose KV footprint can never fit the pool,
// releasing anything it held and handing a copy to the reject callback.
func (e *Engine) rejectSeq(st *seqState) {
	e.releaseSeq(st)
	e.KVRejected++
	if e.onReject != nil {
		e.onReject(*st.req)
	}
	e.putState(st)
}

// preemptSeq evicts an active decode sequence under KV pressure. With a
// spill tier configured the victim may swap its blocks out instead of
// dropping them (tier.go decides swap vs recompute); otherwise — and
// whenever the spill is refused — its blocks are freed and it re-enters
// admission with prefillLeft set to its full recomputed context (prompt +
// produced tokens). TTFT was already recorded; the TBT gap spanning the
// preemption is charged honestly.
func (e *Engine) preemptSeq(st *seqState) {
	e.Preempted++
	if e.trySpill(st) {
		return
	}
	e.recomputeSeq(st)
}

// recomputeSeq resolves a preemption the PR 8 way: blocks dropped,
// recompute-on-resume via the preempted queue.
func (e *Engine) recomputeSeq(st *seqState) {
	e.releaseSeq(st)
	e.requeueRecompute(st)
}

// requeueRecompute queues a blockless sequence for recompute-on-resume.
// The resume never re-takes a prefix-cache hit: a sequence preempted
// while sharing an entry it alone kept alive would otherwise re-hit the
// same entry, run out of room at the same block boundary, and cycle
// forever; owning its whole context makes the oversize check terminal.
func (e *Engine) requeueRecompute(st *seqState) {
	st.prefillLeft = st.req.InputTokens + st.produced
	st.ctx = 0
	st.noPrefix = true
	e.Recomputes++
	e.preempted = append(e.preempted, st)
}

// rollbackSeq releases the blocks a queued sequence holds for a chunked
// prefill spanning iterations, resetting it to re-prefill from scratch
// when it next reaches admission. Reclaiming under pressure must be able
// to take these back: a blocked queue head squatting on blocks while
// higher-priority work waits for exactly those blocks is the classic KV
// deadlock. Reports whether anything was freed.
func (e *Engine) rollbackSeq(st *seqState) bool {
	if st.kvBlocks == 0 && st.prefixTokens == 0 {
		return false
	}
	st.prefillLeft += st.ctx
	st.ctx = 0
	e.kvBlocksUsed -= st.kvBlocks
	st.kvBlocks = 0
	e.derefPrefix(st)
	return true
}

// rollbackWaitingHead reclaims the waiting queue head's partial
// admission, if any — the lowest-priority block holder.
func (e *Engine) rollbackWaitingHead() bool {
	if e.waitHead < len(e.waiting) {
		return e.rollbackSeq(e.waiting[e.waitHead])
	}
	return false
}

// rollbackPreemptedHead reclaims the preempted queue head's partial
// re-admission; only active sequences outrank it.
func (e *Engine) rollbackPreemptedHead() bool {
	if e.preHead < len(e.preempted) {
		return e.rollbackSeq(e.preempted[e.preHead])
	}
	return false
}

// removeActive splices index i out of the active batch, preserving order
// (oldest first — the preemption policy depends on it).
func (e *Engine) removeActive(i int) {
	copy(e.active[i:], e.active[i+1:])
	e.active[len(e.active)-1] = nil
	e.active = e.active[:len(e.active)-1]
}

// maybeInsertPrefix publishes a finished prefill's prompt blocks into the
// prefix cache, if the sequence belongs to a group, did not itself hit the
// cache, the group is not yet cached, and spare blocks exist (the cache
// never displaces live work — copy-on-insert, skipped under pressure).
func (e *Engine) maybeInsertPrefix(st *seqState) {
	if !e.kv.PrefixCache || st.req.PromptGroup == 0 || st.prefixTokens > 0 {
		return
	}
	if _, ok := e.prefixMap[st.req.PromptGroup]; ok {
		return
	}
	blocks := blocksFor(st.req.InputTokens, e.kv.BlockTokens)
	if e.kvBlocksUsed+blocks > e.kvBlocksCap {
		return
	}
	e.kvBlocksUsed += blocks
	pe := e.getPrefix()
	pe.group, pe.tokens, pe.blocks = st.req.PromptGroup, st.req.InputTokens, blocks
	e.prefixMap[pe.group] = pe
	e.prefixList = append(e.prefixList, pe)
}

// admitBlocks is the block-granular admission pass: preempted sequences
// resume first (strict priority — newly waiting work never starves a
// preempted sequence of the blocks it needs to make progress), then the
// FIFO waiting queue, every chunk gated on free blocks.
func (e *Engine) admitBlocks(budget *int) int {
	// The preempted queue may reclaim the waiting head's partial
	// admission (steal): resuming sequences outrank new prefills, and
	// without the rollback a blocked resume would starve forever behind
	// blocks the lower-priority head already grabbed.
	prefill, blocked := e.admitQueue(&e.preempted, &e.preHead, budget, e.rollbackWaitingHead)
	if !blocked {
		more, _ := e.admitQueue(&e.waiting, &e.waitHead, budget, nil)
		prefill += more
	}
	return prefill
}

// admitQueue admits from one FIFO queue under the shared chunk budget,
// allocating blocks as context grows. steal, if non-nil, reclaims blocks
// from a lower-priority holder when the pool is full. It returns the
// prefill tokens scheduled and whether it stopped on a full pool
// (head-of-line blocking: later queues must not steal the blocks the
// head is waiting for).
func (e *Engine) admitQueue(q *[]*seqState, head *int, budget *int, steal func() bool) (prefill int, blocked bool) {
	for *head < len(*q) && *budget > 0 {
		st := (*q)[*head]
		// Lazily apply a prefix-cache hit before the first chunk: skip
		// the covered prompt tokens, sharing the entry's blocks.
		if e.kv.PrefixCache && st.ctx == 0 && st.req.PromptGroup != 0 && !st.noPrefix {
			pe := e.prefixMap[st.req.PromptGroup]
			if pe != nil && pe.spilled && !e.unspillPrefix(pe) {
				pe = nil // tiered entry can't come back yet: miss
			}
			if pe != nil {
				skip := pe.tokens
				if skip > st.prefillLeft {
					skip = st.prefillLeft
				}
				if skip > 0 {
					st.prefillLeft -= skip
					st.ctx += skip
					st.prefixTokens = skip
					pe.refs++
					e.PrefixHits++
				}
			}
		}
		chunk := st.prefillLeft
		if chunk > *budget {
			chunk = *budget
		}
		need := blocksFor(st.ctx+chunk-st.prefixTokens, e.kv.BlockTokens)
		if need > e.kvBlocksCap {
			// Can never fit, even with the whole pool free: reject
			// rather than deadlock behind an unsatisfiable head.
			(*q)[*head] = nil
			*head++
			e.rejectSeq(st)
			continue
		}
		if alloc := need - st.kvBlocks; alloc > 0 {
			ok := e.takeBlocks(alloc)
			for !ok && steal != nil && steal() {
				ok = e.takeBlocks(alloc)
			}
			if !ok {
				blocked = true
				break // pool full: FIFO head waits
			}
			st.kvBlocks = need
		}
		st.prefillLeft -= chunk
		st.ctx += chunk
		prefill += chunk
		*budget -= chunk
		if st.prefillLeft == 0 {
			e.maybeInsertPrefix(st)
			e.active = append(e.active, st)
			(*q)[*head] = nil
			*head++
		}
	}
	if *head == len(*q) {
		*q = (*q)[:0]
		*head = 0
	}
	return prefill, blocked
}

// reserveDecode guarantees every active sequence a block for the token it
// produces this iteration. Under pressure it evicts unreferenced prefix
// entries first, then preempts the youngest active sequences; a sequence
// whose next token can never fit the whole pool is rejected. The loop
// terminates because every failed allocation reclaims a queue head's
// partial admission or removes a sequence from the batch (possibly the
// needy one itself, which then resumes via the preempted queue once
// blocks free up).
func (e *Engine) reserveDecode() {
	for i := 0; i < len(e.active); i++ {
		st := e.active[i]
		need := blocksFor(st.ctx+1-st.prefixTokens, e.kv.BlockTokens)
		if need <= st.kvBlocks {
			continue
		}
		if need > e.kvBlocksCap {
			e.removeActive(i)
			i--
			e.rejectSeq(st)
			continue
		}
		selfGone := false
		for !e.takeBlocks(need - st.kvBlocks) {
			if e.rollbackWaitingHead() || e.rollbackPreemptedHead() {
				continue
			}
			j := len(e.active) - 1
			v := e.active[j]
			e.removeActive(j)
			e.preemptSeq(v)
			if v == st {
				selfGone = true
				break
			}
		}
		if selfGone {
			i--
			continue
		}
		st.kvBlocks = need
	}
}

// clearPrefix drops the whole prefix cache, resident and spilled entries
// alike (drain path; the caller resets the pool counters).
func (e *Engine) clearPrefix() {
	for i, pe := range e.prefixList {
		delete(e.prefixMap, pe.group)
		e.putPrefix(pe)
		e.prefixList[i] = nil
	}
	e.prefixList = e.prefixList[:0]
}
