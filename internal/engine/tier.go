package engine

import (
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/simclock"
)

// Tiered KV cache: a CPU/SSD spill tier below the GPU block pool.
//
// PR 8's paged pool resolves pressure by preempting decode sequences and
// recomputing their context from scratch on resume — the most expensive
// possible recovery. With a tier configured (KVConfig.TierBlocks or
// TierCapacityFactor), a preemption victim may instead swap its blocks out
// to the tier over a modeled link (PCIe host memory ~25 GB/s, NVMe ~5 GB/s)
// and swap them back in on resume. The choice is per sequence: the policy
// compares the modeled transfer time (current link backlog + swap-out +
// swap-in) against the modeled time to re-prefill the context, and takes
// the cheaper path (SwapAuto); SwapAlways spills whenever the tier has
// room. When the tier itself is full, spilled prefix entries are dropped
// first and then the least-recently-spilled sequences are evicted — their
// tier copy is discarded and they fall back to recompute-on-resume — and a
// victim that still cannot fit is force-recomputed.
//
// Swap-outs and swap-ins serialize on one link per engine (a simple
// bandwidth queue): every transfer starts no earlier than the previous one
// finished, so tier thrash surfaces as real queueing latency rather than a
// free pool shuffle. A swap-out only advances the link clock (nothing waits
// on its completion directly — any later swap-in is pushed behind it); a
// swap-in holds its GPU blocks for the duration of the transfer and
// delivers the sequence back to the decode batch when the link event
// fires. Prefix-cache entries are spillable too: GPU-pressure eviction
// moves an unreferenced entry to the tier (evict-to-tier before drop), and
// a later hit swaps it back when the pool has room.
//
// With TierBlocks == 0 (the default) none of this code runs and the PR 8
// recompute-only path is preserved bit-for-bit.

// SwapPolicy picks swap versus recompute for each preemption victim.
type SwapPolicy int

const (
	// SwapAuto compares the modeled swap round-trip (link backlog +
	// swap-out + swap-in) against the modeled recompute prefill time and
	// takes the cheaper path.
	SwapAuto SwapPolicy = iota
	// SwapAlways spills every victim the tier can hold.
	SwapAlways
)

// DefaultTierBytesPerSec is the swap-link bandwidth assumed when a tier is
// configured without one (PCIe Gen5 host transfer, ~25 GB/s).
const DefaultTierBytesPerSec = 25e9

// tierSetupSeconds is the fixed per-transfer setup cost (descriptor ring,
// pinning) charged on top of the bandwidth term.
const tierSetupSeconds = 1e-4

// swapIn is one in-flight swap-in transfer. Records are pooled; the link
// serializes transfers, so completions pop the queue head in FIFO order
// and the single bound onSwapDone callback needs no per-transfer closure.
type swapIn struct {
	st  *seqState // nil after a drain cancelled the transfer
	end simclock.Time
}

// KVTierUsage reports spill-tier occupancy: blocks used and tier size
// (both zero without a configured tier).
func (e *Engine) KVTierUsage() (used, capacity int) {
	return e.kvTierUsed, e.kvTierCap
}

// swapSeconds models moving `tokens` tokens of KV cache across the tier
// link in one direction.
func (e *Engine) swapSeconds(tokens int) float64 {
	return tierSetupSeconds + float64(tokens)*e.Cfg.Model.KVBytesPerToken/e.tierBW
}

// recomputeSeconds models re-prefilling ctx tokens through chunked
// iterations at the engine's current configuration — what recompute-on-
// resume would cost in GPU time.
func (e *Engine) recomputeSeconds(ctx int) float64 {
	secs := 0.0
	for ctx > 0 {
		chunk := ctx
		if chunk > perfmodel.PrefillChunk {
			chunk = perfmodel.PrefillChunk
		}
		secs += e.Cfg.Iter(perfmodel.Batch{
			PrefillTokens: float64(chunk),
			ContextTokens: float64(chunk),
		}).Time
		ctx -= chunk
	}
	return secs
}

// linkOccupy reserves the swap link for secs seconds starting no earlier
// than now or the link's current backlog, and returns the reservation end.
func (e *Engine) linkOccupy(secs float64) simclock.Time {
	start := e.clock.Now()
	if e.linkFreeAt > start {
		start = e.linkFreeAt
	}
	end := start + simclock.Time(secs)
	e.linkFreeAt = end
	return end
}

// spillLen is the number of spilled sequences awaiting swap-in.
func (e *Engine) spillLen() int { return len(e.spilled) - e.spillHead }

// policySaysSwap decides swap versus recompute for one victim: always
// under SwapAlways, otherwise by comparing the modeled swap round-trip
// (including the link's current backlog, which makes sustained thrash
// self-limiting) against the modeled recompute prefill time.
func (e *Engine) policySaysSwap(st *seqState) bool {
	if e.kv.SwapPolicy == SwapAlways {
		return true
	}
	wait := 0.0
	if e.linkFreeAt > e.clock.Now() {
		wait = float64(e.linkFreeAt - e.clock.Now())
	}
	swap := wait + 2*e.swapSeconds(st.ctx)
	return swap < e.recomputeSeconds(st.req.InputTokens+st.produced)
}

// trySpill swaps a preemption victim's blocks out to the tier, reporting
// whether it did. A false return means the caller recomputes instead: tier
// disabled, the policy preferred recompute, or the tier is full beyond
// what eviction can reclaim (the forced-recompute fallback).
//
//dynamolint:steadystate
func (e *Engine) trySpill(st *seqState) bool {
	if e.kvTierCap == 0 {
		return false
	}
	need := blocksFor(st.ctx, e.kv.BlockTokens)
	if need > e.kvTierCap || !e.policySaysSwap(st) {
		return false
	}
	if e.kvTierUsed+need > e.kvTierCap && !e.tierReclaim(need) {
		return false
	}
	// GPU side frees exactly like a recompute preemption; the tier side
	// takes over in the same instant, so the sequence is never resident
	// and spilled at once.
	e.kvBlocksUsed -= st.kvBlocks
	st.kvBlocks = 0
	e.derefPrefix(st)
	st.tierBlocks = need
	e.kvTierUsed += need
	e.SwapOuts++
	e.linkOccupy(e.swapSeconds(st.ctx))
	e.spilled = append(e.spilled, st)
	return true
}

// tierReclaim frees tier blocks for an incoming spill: spilled prefix
// entries are pure cache and drop first (oldest first), then the least-
// recently-spilled sequences are evicted — their tier copy is discarded
// and they fall back to recompute-on-resume. Reports whether `need`
// blocks are now free.
func (e *Engine) tierReclaim(need int) bool {
	if e.kvTierCap-e.kvTierUsed < need {
		kept := e.prefixList[:0]
		for _, pe := range e.prefixList {
			if !pe.spilled || e.kvTierCap-e.kvTierUsed >= need {
				kept = append(kept, pe)
				continue
			}
			e.kvTierUsed -= pe.blocks
			delete(e.prefixMap, pe.group)
			e.putPrefix(pe)
		}
		for i := len(kept); i < len(e.prefixList); i++ {
			e.prefixList[i] = nil
		}
		e.prefixList = kept
	}
	for e.spillHead < len(e.spilled) && e.kvTierCap-e.kvTierUsed < need {
		v := e.spilled[e.spillHead]
		e.spilled[e.spillHead] = nil
		e.spillHead++
		e.kvTierUsed -= v.tierBlocks
		v.tierBlocks = 0
		e.TierEvictions++
		e.requeueRecompute(v)
	}
	if e.spillHead == len(e.spilled) {
		e.spilled = e.spilled[:0]
		e.spillHead = 0
	}
	return e.kvTierCap-e.kvTierUsed >= need
}

// flushSwapReady moves sequences whose swap-in completed between
// iterations into the decode batch (they decode from this iteration on).
//
//dynamolint:steadystate
func (e *Engine) flushSwapReady() {
	for i, st := range e.swapReady {
		e.active = append(e.active, st)
		e.swapReady[i] = nil
	}
	e.swapReady = e.swapReady[:0]
}

// admitSwapIns starts swap-in transfers for spilled sequences, FIFO. A
// swap-in needs its full context's GPU blocks at once; resuming spilled
// work outranks both the preempted-recompute queue and new prefills, so a
// blocked head may reclaim their partial admissions and stalls admission
// behind it (the same strict-priority, no-starvation discipline the
// preempted queue gets). Reports whether the head is blocked on blocks.
//
//dynamolint:steadystate
func (e *Engine) admitSwapIns() (blocked bool) {
	for e.spillHead < len(e.spilled) {
		st := e.spilled[e.spillHead]
		// Reserve headroom for the token after the resume (+1): a sequence
		// spilled at an exact block boundary would otherwise swap back in,
		// fail its decode reservation before producing anything, and spill
		// again — a zero-progress cycle. With the headroom every swap-in
		// yields at least one token, so swap cycles terminate.
		need := blocksFor(st.ctx+1, e.kv.BlockTokens)
		if need > e.kvBlocksCap {
			// The sequence's next token can never fit the pool (or a
			// re-shard shrank it below the context): it can never resume.
			e.spilled[e.spillHead] = nil
			e.spillHead++
			e.kvTierUsed -= st.tierBlocks
			st.tierBlocks = 0
			e.rejectSeq(st)
			continue
		}
		ok := e.takeBlocks(need)
		for !ok && (e.rollbackPreemptedHead() || e.rollbackWaitingHead()) {
			ok = e.takeBlocks(need)
		}
		if !ok {
			blocked = true
			break
		}
		st.kvBlocks = need
		e.kvTierUsed -= st.tierBlocks
		st.tierBlocks = 0
		e.SwapIns++
		end := e.linkOccupy(e.swapSeconds(st.ctx))
		t := e.getSwap()
		t.st, t.end = st, end
		e.swapQ = append(e.swapQ, t)
		e.swapInflight++
		e.clock.At(end, e.onSwapDone)
		e.spilled[e.spillHead] = nil
		e.spillHead++
	}
	if e.spillHead == len(e.spilled) {
		e.spilled = e.spilled[:0]
		e.spillHead = 0
	}
	return blocked
}

// swapDone is the link event for the oldest in-flight swap-in: the
// sequence rejoins the decode batch at the next iteration boundary.
// Completions pop in FIFO order because the link serializes transfers.
//
//dynamolint:steadystate
func (e *Engine) swapDone() {
	t := e.swapQ[e.swapHead]
	e.swapQ[e.swapHead] = nil
	e.swapHead++
	if e.swapHead == len(e.swapQ) {
		e.swapQ = e.swapQ[:0]
		e.swapHead = 0
	}
	st := t.st
	e.putSwap(t)
	if st == nil {
		return // drained while the transfer was in flight
	}
	e.swapInflight--
	e.swapReady = append(e.swapReady, st)
	e.kick()
}

// unspillPrefix swaps a spilled prefix-cache entry back into the GPU pool
// ahead of a hit, if the pool has room without displacing anything (the
// cache never displaces live work). Reports whether the entry is resident.
func (e *Engine) unspillPrefix(pe *prefixEntry) bool {
	if e.kvBlocksUsed+pe.blocks > e.kvBlocksCap {
		return false
	}
	e.kvBlocksUsed += pe.blocks
	e.kvTierUsed -= pe.blocks
	pe.spilled = false
	e.linkOccupy(e.swapSeconds(pe.tokens))
	return true
}

// getSwap takes a swapIn record from the pool (or allocates one).
func (e *Engine) getSwap() *swapIn {
	if n := len(e.freeSwap); n > 0 {
		t := e.freeSwap[n-1]
		e.freeSwap[n-1] = nil
		e.freeSwap = e.freeSwap[:n-1]
		return t
	}
	return &swapIn{}
}

// putSwap returns a completed swapIn record to the pool.
func (e *Engine) putSwap(t *swapIn) {
	*t = swapIn{}
	e.freeSwap = append(e.freeSwap, t)
}
