package expt

import (
	"fmt"
	"strings"

	"dynamollm/internal/core"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// KVPoint is one cell of the KV-cache sweep: a KV capacity factor, a
// shared-prompt share, the disaggregation switch, and the spill-tier
// axis, with every system run under those conditions on the event
// backend.
type KVPoint struct {
	// CapacityFactor scales each engine's profile-derived KV block
	// capacity (1 = full capacity, small values force preemption).
	CapacityFactor float64
	// PrefixShare is the fraction of requests tagged with one of a few
	// shared prompt templates (prefix-cache hits); 0 disables the cache.
	PrefixShare float64
	// Disagg reports whether the cell ran with prefill/decode pools split.
	Disagg bool
	// Tier is the KV spill tier below the GPU pool (none/cpu/ssd) and
	// Policy the swap-vs-recompute rule the cell ran under.
	Tier    core.KVTier
	Policy  core.KVSwapPolicy
	Systems []SystemRun
}

// kvPrefixGroups is the number of shared prompt templates the prefix
// cells spread their tagged requests over — few enough that every
// template stays hot in the per-engine prefix cache.
const kvPrefixGroups = 4

// KVSweep runs the KV-cache grid — capacity factor x prefix share x
// disaggregation x spill tier — across the six systems, always under
// event fidelity (block-granular KV accounting has no fluid counterpart).
// The axes are deliberately not fully crossed: the capacity cells isolate
// preemption pressure, the prefix cells isolate cache hits at full
// capacity, the disagg cell isolates the handoff path, and the tier cells
// re-run the pressured capacities with a cpu or ssd spill tier (plus one
// swap-always policy cell at the tightest capacity), so each mechanism is
// readable in its own rows. The flattened grid runs through one worker
// pool; results are deterministic for any Config.Parallelism.
func (c Config) KVSweep() ([]KVPoint, error) {
	return c.KVRuns(core.SystemNames)
}

// KVRuns is KVSweep over a chosen system list.
func (c Config) KVRuns(systems []string) ([]KVPoint, error) {
	caps := []float64{1, 0.02, 0.008, 0.003}
	shares := []float64{0.5, 0.9}
	if c.Quick {
		caps = []float64{1, 0.01, 0.003}
		shares = []float64{0.9}
	}
	tiers := []core.KVTier{core.KVTierCPU, core.KVTierSSD}
	pressured := caps[1:] // tier cells only matter where preemption happens
	base := c.hourTrace()
	horizon := simclock.Time(simclock.Hour)
	points := make([]KVPoint, 0, len(caps)+len(shares)+len(tiers)*len(pressured)+2)
	for _, f := range caps {
		points = append(points, KVPoint{CapacityFactor: f})
	}
	for _, tier := range tiers {
		for _, f := range pressured {
			points = append(points, KVPoint{CapacityFactor: f, Tier: tier})
		}
	}
	if !c.Quick {
		// One policy cell: swap-always at the tightest capacity, against
		// the auto cell above it, isolates what the cost comparison buys.
		points = append(points, KVPoint{CapacityFactor: caps[len(caps)-1], Tier: core.KVTierCPU, Policy: core.KVSwapAlways})
	}
	for _, s := range shares {
		points = append(points, KVPoint{CapacityFactor: 1, PrefixShare: s})
	}
	points = append(points, KVPoint{CapacityFactor: 1, Disagg: true})

	jobs := make([]gridJob, 0, len(points)*len(systems))
	for group := range points {
		p := points[group]
		tr := base
		if p.PrefixShare > 0 {
			mod := trace.GroupPrompts(0, horizon, p.PrefixShare,
				kvPrefixGroups, scenarioSeed(c.Seed, fmt.Sprintf("kv/prefix/%g", p.PrefixShare)))
			tr = mod(base)
		}
		for _, name := range systems {
			opts := c.mustSystemOptions(name, func(o *core.Options) {
				o.Fidelity = core.FidelityEvent
				o.KVBlockTokens = core.DefaultKVBlockTokens
				if p.CapacityFactor > 0 && p.CapacityFactor < 1 {
					o.KVCapacityFactor = p.CapacityFactor
				}
				o.KVPrefixCache = p.PrefixShare > 0
				o.Disagg = p.Disagg
				o.KVTier = p.Tier
				o.KVSwapPolicy = p.Policy
			})
			jobs = append(jobs, gridJob{group: group, tr: tr, name: name, opts: opts})
		}
	}
	grouped := c.gridRuns(jobs, len(points))
	for i := range points {
		points[i].Systems = grouped[i]
	}
	return points, nil
}

// Goodput is the sweep's monotonicity metric: the fraction of routed
// requests that completed within SLO. Unlike SLOAttainment (which is
// conditioned on completion), goodput also charges preemption-driven
// squashes and admission rejections, so shrinking the KV pool can only
// move it down.
func Goodput(r *core.Result) float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.SLOMet) / float64(r.Requests)
}

// RenderKV formats the KV sweep: one block per cell, then the summary
// lines — goodput versus capacity per tier, swaps replacing recomputes,
// and mean TTFT versus prefix share for the full system — that state the
// acceptance trends directly.
func RenderKV(points []KVPoint) string {
	var b strings.Builder
	b.WriteString("KV sweep: capacity factor x prefix share x disaggregation x spill tier (event fidelity)\n\n")
	for _, p := range points {
		fmt.Fprintf(&b, "capacity=%g prefix-share=%g disagg=%v tier=%s policy=%s\n",
			p.CapacityFactor, p.PrefixShare, p.Disagg, p.Tier, p.Policy)
		b.WriteString("  system      SLO att  goodput  preempt  recomp  swapout  swapin  evict  hits    reject  handoff  ttft-p50  energy(kWh)\n")
		for _, run := range p.Systems {
			res := run.Result
			fmt.Fprintf(&b, "  %-11s  %.3f   %.3f   %6d  %6d   %6d  %6d  %5d  %6d  %6d   %6d    %6.3f   %10.2f\n",
				run.Name, res.SLOAttainment(), Goodput(res),
				res.KVPreemptions, res.KVRecomputes, res.KVSwapOuts, res.KVSwapIns, res.KVTierEvictions,
				res.KVPrefixHits, res.KVRejected, res.Handoffs,
				res.TTFT.Percentile(50), res.EnergyKWh())
		}
		b.WriteString("\n")
	}
	if dyn := kvSystemSeries(points, "dynamollm"); len(dyn) > 0 {
		b.WriteString(dyn)
	}
	return b.String()
}

// kvSystemSeries renders the two acceptance trends for one system: the
// goodput trajectory as capacity shrinks, and the TTFT effect of the
// prefix cache at full capacity.
func kvSystemSeries(points []KVPoint, name string) string {
	find := func(p KVPoint) *core.Result {
		for _, run := range p.Systems {
			if run.Name == name {
				return run.Result
			}
		}
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Summary (%s):\n", name)
	tiers := []core.KVTier{core.KVTierNone, core.KVTierCPU, core.KVTierSSD}
	for _, tier := range tiers {
		any := false
		for _, p := range points {
			if p.PrefixShare != 0 || p.Disagg || p.Tier != tier || p.Policy != core.KVSwapAuto {
				continue
			}
			res := find(p)
			if res == nil {
				continue
			}
			if !any {
				if tier == core.KVTierNone {
					b.WriteString("  capacity -> goodput:")
				} else {
					fmt.Fprintf(&b, "  capacity -> goodput (tier=%s):", tier)
				}
				any = true
			}
			fmt.Fprintf(&b, "  %g:%.3f", p.CapacityFactor, Goodput(res))
		}
		if any {
			b.WriteString("\n")
		}
	}
	// Swaps replacing recomputes: pair each tiered cell with the
	// recompute-only cell at the same capacity.
	for _, p := range points {
		if p.Tier == core.KVTierNone || p.Policy != core.KVSwapAuto || p.PrefixShare != 0 || p.Disagg {
			continue
		}
		tr := find(p)
		var none *core.Result
		for _, q := range points {
			if q.Tier == core.KVTierNone && !q.Disagg && q.PrefixShare == 0 && q.CapacityFactor == p.CapacityFactor {
				none = find(q)
			}
		}
		if tr == nil || none == nil {
			continue
		}
		fmt.Fprintf(&b, "  capacity %g tier=%s: recomputes %d -> %d, swaps %d (evictions %d)\n",
			p.CapacityFactor, p.Tier, none.KVRecomputes, tr.KVRecomputes, tr.KVSwapOuts, tr.KVTierEvictions)
	}
	var plain *core.Result
	for _, p := range points {
		if p.CapacityFactor == 1 && p.PrefixShare == 0 && !p.Disagg {
			plain = find(p)
		}
	}
	for _, p := range points {
		if p.PrefixShare == 0 || plain == nil {
			continue
		}
		if res := find(p); res != nil {
			fmt.Fprintf(&b, "  prefix share %g: mean TTFT %.3fs -> %.3fs (%d hits)\n",
				p.PrefixShare, plain.TTFT.Mean(), res.TTFT.Mean(), res.KVPrefixHits)
		}
	}
	return b.String()
}
