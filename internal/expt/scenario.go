package expt

import (
	"fmt"
	"strings"

	"dynamollm/internal/core"
	"dynamollm/internal/scenario"
)

// ScenarioResult bundles one scenario's multi-system comparison.
type ScenarioResult struct {
	Scenario *scenario.Scenario
	// EffectiveDays is the simulated horizon after any Quick capping.
	EffectiveDays float64
	Systems       []SystemRun
}

// scenarioSeed derives a per-scenario trace seed from the harness seed so
// every scenario gets an independent but reproducible arrival stream
// (FNV-1a over the name, folded into the base seed).
func scenarioSeed(base uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return base ^ h
}

// ScenarioRuns drives each scenario through the named systems. Per
// scenario, the perturbed trace is generated once and shared read-only by
// every system; each simulation gets its own freshly compiled event hook
// (timelines carry per-run cursor state). The scenario x system grid is
// flattened through one worker pool, and results are deterministic for
// any Config.Parallelism.
//
// Quick mode caps every scenario at one simulated day; horizons of two or
// more days run at half the peak rate (the Fig. 14 thinning — reported
// quantities are ratios, insensitive to fleet scale) with the fleet sized
// to the trace.
func (c Config) ScenarioRuns(scs []*scenario.Scenario, systems []string) ([]ScenarioResult, error) {
	type group struct {
		sc   *scenario.Scenario
		days float64
	}
	jobs := make([]gridJob, 0, len(scs)*len(systems))
	groups := make([]group, 0, len(scs))
	for si, sc := range scs {
		maxDays := 0.0
		if c.Quick {
			maxDays = 1
		}
		days := sc.Days
		if maxDays > 0 && days > maxDays {
			days = maxDays
		}
		sub := c
		if sc.PeakRPS > 0 {
			sub.PeakRPS = sc.PeakRPS
		}
		if days >= 2 {
			sub.PeakRPS *= 0.5
		}
		tr, err := sc.GenTrace(sub.PeakRPS, maxDays, scenarioSeed(c.Seed, sc.Name))
		if err != nil {
			return nil, err
		}
		svc, err := sc.ServiceProfile()
		if err != nil {
			return nil, err
		}
		servers := 0
		if days >= 2 {
			servers = serversFor(tr)
		}
		groups = append(groups, group{sc: sc, days: days})
		for _, name := range systems {
			sc := sc
			opts := sub.mustSystemOptions(name, func(o *core.Options) {
				o.WarmLoad = sub.warm(svc, sc.Start())
				o.Hook = sc.Hook(scenarioSeed(c.Seed, sc.Name)) // fresh per simulation
				if servers > 0 {
					o.Servers = servers
				}
			})
			jobs = append(jobs, gridJob{group: si, tr: tr, name: name, opts: opts})
		}
	}
	grouped := c.gridRuns(jobs, len(groups))
	out := make([]ScenarioResult, len(groups))
	for i, g := range groups {
		out[i] = ScenarioResult{Scenario: g.sc, EffectiveDays: g.days, Systems: grouped[i]}
	}
	return out, nil
}

// ScenarioSweep compares all six systems across the built-in scenario
// library — the standing evaluation every policy change runs against.
func (c Config) ScenarioSweep() ([]ScenarioResult, error) {
	return c.ScenarioRuns(scenario.Library(), core.SystemNames)
}

// RenderScenario formats one scenario's comparison table.
func RenderScenario(r ScenarioResult) string {
	var b strings.Builder
	sc := r.Scenario
	fmt.Fprintf(&b, "Scenario %q: %s\n", sc.Name, sc.Description)
	fmt.Fprintf(&b, "  service=%s days=%.2f events=%d\n", sc.ServiceName(), r.EffectiveDays, len(sc.Events))
	b.WriteString("  system      energy(kWh)  bill($)   SLO att   TTFT p99 (s)  squash  outage  recfg\n")
	for _, run := range r.Systems {
		res := run.Result
		fmt.Fprintf(&b, "  %-11s %10.2f  %7.2f    %.3f    %9.3f   %6d  %6d  %5d\n",
			run.Name, res.EnergyKWh(), res.EnergyCostUSD, res.SLOAttainment(),
			res.TTFT.Percentile(99), res.Squashed, res.Outages,
			res.ScaleOuts+res.ScaleIns+res.Reshards)
	}
	return b.String()
}

// RenderScenarioSweep formats the full sweep: one block per scenario
// followed by a DynamoLLM-vs-SinglePool summary across scenarios.
func RenderScenarioSweep(rs []ScenarioResult) string {
	var b strings.Builder
	b.WriteString("Scenario sweep: injected cluster conditions across the system ladder\n\n")
	for _, r := range rs {
		b.WriteString(RenderScenario(r))
		b.WriteString("\n")
	}
	b.WriteString("Summary (dynamollm vs singlepool):\n")
	b.WriteString("  scenario      energy saving   bill saving   SLO att (dyn/base)\n")
	for _, r := range rs {
		var base, dyn *core.Result
		for _, run := range r.Systems {
			switch run.Name {
			case "singlepool":
				base = run.Result
			case "dynamollm":
				dyn = run.Result
			}
		}
		if base == nil || dyn == nil {
			continue
		}
		fmt.Fprintf(&b, "  %-13s %11s   %11s      %.3f / %.3f\n",
			r.Scenario.Name,
			pct(1-dyn.EnergyJ/base.EnergyJ),
			pct(1-dyn.EnergyCostUSD/base.EnergyCostUSD),
			dyn.SLOAttainment(), base.SLOAttainment())
	}
	return b.String()
}
