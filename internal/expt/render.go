package expt

import (
	"fmt"
	"sort"
	"strings"

	"dynamollm/internal/gpu"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func pct(f float64) string { return fmt.Sprintf("%d%%", int(f*100+0.5)) }

func cellString(c Cell) string {
	if !c.Feasible {
		return "   -- "
	}
	return fmt.Sprintf("%6.2f", c.WhPer10)
}

func gridHeader(b *strings.Builder) {
	fmt.Fprintf(b, "%-14s", "")
	for _, tp := range model.TPChoices {
		fmt.Fprintf(b, "| %-27s", tp)
	}
	b.WriteString("\n")
	fmt.Fprintf(b, "%-14s", "GHz")
	for range model.TPChoices {
		b.WriteString("|   0.8    1.2    1.6    2.0 ")
	}
	b.WriteString("\n")
}

func gridRow(b *strings.Builder, label string, row map[model.TP]map[gpu.Freq]Cell) {
	fmt.Fprintf(b, "%-14s", label)
	for _, tp := range model.TPChoices {
		b.WriteString("| ")
		for _, f := range gpu.CoarseLadder() {
			b.WriteString(cellString(row[tp][f]) + " ")
		}
	}
	b.WriteString("\n")
}

// RenderTableI formats the Table I heat map.
func RenderTableI(t map[workload.Class]map[model.TP]map[gpu.Freq]Cell) string {
	var b strings.Builder
	b.WriteString("Table I: energy (Wh per 10 requests), Llama2-70B at 2K total TPS; -- = SLO violated\n")
	gridHeader(&b)
	for _, cls := range workload.AllClasses {
		gridRow(&b, cls.String(), t[cls])
	}
	return b.String()
}

// RenderTableII formats the load sweep.
func RenderTableII(t map[float64]map[model.TP]map[gpu.Freq]Cell) string {
	var b strings.Builder
	b.WriteString("Table II: energy (Wh per 10 requests), Llama2-70B MM requests; -- = SLO violated\n")
	gridHeader(&b)
	labels := map[float64]string{650: "Low (650)", 2000: "Medium (2K)", 4000: "High (4K)"}
	for _, tps := range TableIILoads {
		gridRow(&b, labels[tps], t[tps])
	}
	return b.String()
}

// RenderTableIII formats the model sweep.
func RenderTableIII(t map[string]map[model.TP]map[gpu.Freq]Cell) string {
	var b strings.Builder
	b.WriteString("Table III: energy (Wh per 10 requests), MM requests at 2K total TPS; -- = infeasible\n")
	gridHeader(&b)
	order := []string{"llama2-13b", "mixtral-8x7b", "llama2-70b", "llama3-70b", "mixtral-8x22b", "falcon-180b"}
	for _, name := range order {
		gridRow(&b, name, t[name])
	}
	return b.String()
}

// RenderTableIV formats the classification thresholds and SLOs.
func RenderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: request classes and SLOs\n")
	b.WriteString("  bucket   input        output     TTFT SLO   TBT SLO\n")
	rows := []struct {
		name    string
		in, out string
		cls     workload.Class
	}{
		{"Short ", "<256  ", "<100", workload.SS},
		{"Medium", "<1024 ", "<350", workload.MM},
		{"Long  ", "<=8192", ">=350", workload.LL},
	}
	for _, r := range rows {
		slo := workload.SLOFor(r.cls)
		fmt.Fprintf(&b, "  %s   %-10s   %-7s   %4.0f ms    %3.0f ms\n",
			r.name, r.in, r.out, slo.TTFT*1000, slo.TBT*1000)
	}
	return b.String()
}

// RenderTableV formats the provisioning overhead breakdown.
func RenderTableV() string {
	var b strings.Builder
	b.WriteString("Table V: overheads of creating a new 8xH100 inference server\n")
	for _, s := range TableV() {
		path := "critical path"
		if s.Hidden {
			path = "hidden by snapshot/prewarm"
		}
		fmt.Fprintf(&b, "  %-40s %5.0f s   (%s)\n", s.Name, s.Seconds, path)
	}
	naive, opt := TableVTotal()
	fmt.Fprintf(&b, "  %-40s %5.0f s\n", "Total (naive)", naive)
	fmt.Fprintf(&b, "  %-40s %5.0f s\n", "Total (DynamoLLM critical path)", opt)
	return b.String()
}

// RenderTableVI formats the re-sharding overhead matrix.
func RenderTableVI() string {
	matrix, unit := TableVI()
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: re-sharding overhead in units of T (T = %.0f ms for Llama2-70B)\n", unit*1000)
	fmt.Fprintf(&b, "  %-9s", "Src/Dst")
	for _, c := range reshardNames() {
		fmt.Fprintf(&b, "%9s", c)
	}
	b.WriteString("\n")
	for i, row := range matrix {
		fmt.Fprintf(&b, "  %-9s", reshardNames()[i])
		for _, v := range row {
			if v == 0 {
				fmt.Fprintf(&b, "%9s", "0")
			} else {
				fmt.Fprintf(&b, "%8dT", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func reshardNames() []string {
	return []string{"TP2", "4TP2", "TP4", "TP4+TP2", "2TP4", "TP8"}
}

// RenderFig1 formats daily class distributions.
func RenderFig1(data map[trace.Service][]Fig1Row) string {
	var b strings.Builder
	b.WriteString("Fig 1: request-type distribution per day (% of requests)\n")
	for _, svc := range []trace.Service{trace.Coding, trace.Conversation} {
		fmt.Fprintf(&b, "  %s:\n    day  ", svc)
		for _, cls := range workload.AllClasses {
			fmt.Fprintf(&b, "%5s", cls)
		}
		b.WriteString("\n")
		for _, row := range data[svc] {
			fmt.Fprintf(&b, "    %-5d", row.Day)
			for _, cls := range workload.AllClasses {
				fmt.Fprintf(&b, "%5.1f", row.Shares[cls]*100)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderSystems formats the Fig. 6/7/8 cluster-hour comparison.
func RenderSystems(runs []SystemRun) string {
	var b strings.Builder
	b.WriteString("Fig 6/7/8: 1-hour cluster run, six systems\n")
	b.WriteString("  system      energy(kWh)  vs base   servers  TTFT p50/p99 (s)  TBT p50/p99 (ms)  clusterP p50/p99 (kW)  gpuP p50/p99 (W)  SLO att\n")
	var base float64
	for _, r := range runs {
		if r.Name == "singlepool" {
			base = r.Result.EnergyJ
		}
	}
	for _, r := range runs {
		res := r.Result
		rel := ""
		if base > 0 {
			rel = fmt.Sprintf("%+6.1f%%", (res.EnergyJ/base-1)*100)
		}
		fmt.Fprintf(&b, "  %-11s %10.2f  %7s  %6.1f   %6.3f/%6.3f   %6.1f/%6.1f    %7.1f/%7.1f      %5.0f/%5.0f      %.3f\n",
			r.Name, res.EnergyKWh(), rel, res.AvgServers,
			res.TTFT.Percentile(50), res.TTFT.Percentile(99),
			res.TBT.Percentile(50)*1000, res.TBT.Percentile(99)*1000,
			res.ClusterPowerW.Percentile(50)/1000, res.ClusterPowerW.Percentile(99)/1000,
			res.GPUPowerW.Percentile(50), res.GPUPowerW.Percentile(99),
			res.SLOAttainment())
	}
	return b.String()
}

// RenderFig6Breakdown formats the per-class energy stacking.
func RenderFig6Breakdown(runs []SystemRun) string {
	var b strings.Builder
	b.WriteString("Fig 6 (breakdown): energy by request class (kWh)\n    system      ")
	for _, cls := range workload.AllClasses {
		fmt.Fprintf(&b, "%7s", cls)
	}
	b.WriteString("\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "    %-11s ", r.Name)
		for _, cls := range workload.AllClasses {
			fmt.Fprintf(&b, "%7.2f", r.Result.EnergyByClassJ[cls]/3.6e6)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig9 formats the frequency-over-time series for DynamoLLM.
func RenderFig9(runs []SystemRun) string {
	var b strings.Builder
	b.WriteString("Fig 9: DynamoLLM average GPU frequency over the hour (GHz, 5-min bins)\n")
	for _, r := range runs {
		if r.Name != "dynamollm" {
			continue
		}
		b.WriteString(seriesLine("total", bin(r.Result.FreqSeries.Points(), 300), 0.001))
		for _, cls := range []workload.Class{workload.SL, workload.LL} {
			if s, ok := r.Result.PoolFreqSeries[cls]; ok {
				b.WriteString(seriesLine(cls.String(), bin(s.Points(), 300), 0.001))
			}
		}
	}
	return b.String()
}

// RenderFig10 formats GPUs-per-TP over time for DynamoLLM.
func RenderFig10(runs []SystemRun) string {
	var b strings.Builder
	b.WriteString("Fig 10: DynamoLLM GPUs per sharding over the hour (5-min bins)\n")
	for _, r := range runs {
		if r.Name != "dynamollm" {
			continue
		}
		for _, tp := range model.TPChoices {
			b.WriteString(seriesLine("total-"+tp.String(), bin(r.Result.ShardSeries[tp].Points(), 300), 1))
		}
		for _, cls := range []workload.Class{workload.SL, workload.ML, workload.LL} {
			for _, tp := range model.TPChoices {
				if m, ok := r.Result.PoolShardSeries[cls]; ok {
					b.WriteString(seriesLine(cls.String()+"-"+tp.String(), bin(m[tp].Points(), 300), 1))
				}
			}
			if s, ok := r.Result.PoolLoadSeries[cls]; ok {
				b.WriteString(seriesLine(cls.String()+"-load(rps)", bin(s.Points(), 300), 1))
			}
		}
	}
	return b.String()
}

type point = struct{ Time, Value float64 }

func bin(pts []metrics.Point, width float64) []point {
	agg := map[int][2]float64{}
	var keys []int
	for _, p := range pts {
		k := int(p.Time / width)
		v := agg[k]
		agg[k] = [2]float64{v[0] + p.Value, v[1] + 1}
	}
	//dynamolint:order-independent keys are collected then sorted before any ordered use
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]point, 0, len(keys))
	for _, k := range keys {
		out = append(out, point{Time: float64(k) * width, Value: agg[k][0] / agg[k][1]})
	}
	return out
}

func seriesLine(label string, pts []point, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-14s", label)
	for _, p := range pts {
		fmt.Fprintf(&b, " %6.2f", p.Value*scale)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderFig11 formats the accuracy sweep.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig 11: sensitivity to output-length predictor accuracy\n")
	b.WriteString("  config       energy(kWh)   mean TTFT (s)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %10.2f   %10.3f\n", r.Label, r.EnergyKWh, r.TTFTMean)
	}
	return b.String()
}

// RenderFig12 formats the load sensitivity.
func RenderFig12(levels []Fig12Level) string {
	var b strings.Builder
	b.WriteString("Fig 12: energy (kWh) under Low/Medium/High load\n  system      ")
	for _, lv := range levels {
		fmt.Fprintf(&b, "%10s", lv.Label)
	}
	b.WriteString("   savings(L/M/H vs SinglePool)\n")
	base := map[string]float64{}
	for _, lv := range levels {
		for _, r := range lv.Systems {
			if r.Name == "singlepool" {
				base[lv.Label] = r.Result.EnergyJ
			}
		}
	}
	for i := range levels[0].Systems {
		name := levels[0].Systems[i].Name
		fmt.Fprintf(&b, "  %-11s ", name)
		var savings []string
		for _, lv := range levels {
			res := lv.Systems[i].Result
			fmt.Fprintf(&b, "%10.2f", res.EnergyKWh())
			savings = append(savings, fmt.Sprintf("%4.1f%%", (1-res.EnergyJ/base[lv.Label])*100))
		}
		fmt.Fprintf(&b, "   %s\n", strings.Join(savings, " / "))
	}
	return b.String()
}

// RenderFig13 formats the pool-count sweep.
func RenderFig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Fig 13: sensitivity to number of pools\n")
	b.WriteString("  pools   energy(kWh)   mean TTFT (s)   SLO attainment\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %10.2f    %10.3f        %.3f\n", r.Pools, r.EnergyKWh, r.TTFTMean, r.SLOAtt)
	}
	return b.String()
}

// RenderFig14 formats the normalized week-long comparison.
func RenderFig14(rows []Fig14Row) string {
	var b strings.Builder
	b.WriteString("Fig 14: normalized energy, week-long traces\n  system      ")
	for _, row := range rows {
		fmt.Fprintf(&b, "%14s", row.Service)
	}
	b.WriteString("\n")
	base := map[trace.Service]float64{}
	for _, row := range rows {
		for _, r := range row.Systems {
			if r.Name == "singlepool" {
				base[row.Service] = r.Result.EnergyJ
			}
		}
	}
	for i := range rows[0].Systems {
		fmt.Fprintf(&b, "  %-11s ", rows[0].Systems[i].Name)
		for _, row := range rows {
			fmt.Fprintf(&b, "%14.3f", row.Systems[i].Result.EnergyJ/base[row.Service])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig15 formats the day-long energy-over-time comparison.
func RenderFig15(runs []SystemRun) string {
	var b strings.Builder
	b.WriteString("Fig 15: energy per 30-min interval over one day (kWh)\n")
	for _, r := range runs {
		pts := bin(r.Result.EnergySeries.Points(), 1800)
		// EnergySeries accumulates J per 5-min bucket; binning averages,
		// so scale back to per-interval kWh (6 buckets per 30 min).
		fmt.Fprintf(&b, "  %-11s", r.Name)
		for _, p := range pts {
			fmt.Fprintf(&b, " %5.1f", p.Value*6/3.6e6)
		}
		b.WriteString("\n")
	}
	var base, dyn float64
	for _, r := range runs {
		if r.Name == "singlepool" {
			base = r.Result.EnergyJ
		} else {
			dyn = r.Result.EnergyJ
		}
	}
	if base > 0 {
		fmt.Fprintf(&b, "  day-long saving: %s\n", pct(1-dyn/base))
	}
	return b.String()
}

// RenderFig16 formats the carbon comparison.
func RenderFig16(r Fig16Result) string {
	var b strings.Builder
	b.WriteString("Fig 16: operational carbon over the week (CAISO-like intensity)\n")
	fmt.Fprintf(&b, "  SinglePool: %8.1f kg CO2\n", r.BaselineKg)
	fmt.Fprintf(&b, "  DynamoLLM:  %8.1f kg CO2\n", r.DynamoKg)
	fmt.Fprintf(&b, "  saving:     %s\n", pct(1-r.DynamoKg/r.BaselineKg))
	return b.String()
}

// RenderCost formats the §V-F analysis.
func RenderCost(r CostResult) string {
	var b strings.Builder
	b.WriteString("Cost analysis (week-long Conversation trace)\n")
	fmt.Fprintf(&b, "  avg servers:     %.1f -> %.1f  (GPU-hour saving %s)\n",
		r.BaselineServers, r.DynamoServers, pct(r.GPUSavingFrac))
	fmt.Fprintf(&b, "  GPU bill:        $%.0f -> $%.0f\n", r.BaselineBill.GPUUSD, r.DynamoBill.GPUUSD)
	fmt.Fprintf(&b, "  energy bill:     $%.2f -> $%.2f  (energy saving %s)\n",
		r.BaselineBill.EnergyUSD, r.DynamoBill.EnergyUSD, pct(r.EnergySavingFrac))
	fmt.Fprintf(&b, "  total saving:    %s\n", pct(r.TotalSavingFrac))
	return b.String()
}

// RenderHeadline formats the abstract's summary numbers.
func RenderHeadline(h Headline) string {
	return fmt.Sprintf("Headline (paper: 53%% energy, 38%% carbon, 61%% cost):\n"+
		"  energy saving: %s\n  carbon saving: %s\n  cost saving:   %s\n",
		pct(h.EnergySaving), pct(h.CarbonSaving), pct(h.CostSaving))
}

// RenderFig3 formats the frequency-switch throughput comparison.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Fig 3: throughput with constant vs per-iteration frequency setting (req/s)\n")
	b.WriteString("  class   ConstFreq  SwitchFreq   drop\n")
	for _, r := range rows {
		drop := 0.0
		if r.ConstRPS > 0 {
			drop = 1 - r.SwitchRPS/r.ConstRPS
		}
		fmt.Fprintf(&b, "  %-6s %9.2f  %9.2f   %s\n", r.Class, r.ConstRPS, r.SwitchRPS, pct(drop))
	}
	return b.String()
}

// RenderFig2Series formats weekly normalized load.
func RenderFig2Series(data map[trace.Service][]metrics.Point) string {
	var b strings.Builder
	b.WriteString("Fig 2: normalized load over the week (6-hour bins)\n")
	for _, svc := range []trace.Service{trace.Coding, trace.Conversation} {
		b.WriteString(seriesLine(svc.String(), bin(data[svc], 6*3600), 1))
	}
	return b.String()
}
