package expt

import (
	"fmt"
	"strings"

	"dynamollm/internal/core"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
)

// FidelityRow is one system's fluid-vs-event comparison.
type FidelityRow struct {
	System string
	Fluid  *core.Result
	Event  *core.Result
}

// FidelityCompare is the fluid-vs-event cross-validation experiment: every
// system runs the same small diurnal trace under both instance-fidelity
// backends, so the closed-form model that powers the fast sweeps is
// continuously checked against the event-level engine it abstracts. The
// 6x2 system-by-fidelity grid is flattened through one worker pool;
// results are deterministic for any Config.Parallelism.
func (c Config) FidelityCompare() []FidelityRow {
	// Two diurnal hours on the synthetic week's morning ramp, thinned so
	// the event backend stays fast (quick mode halves the window).
	dur := simclock.Duration(2 * simclock.Hour)
	if c.Quick {
		dur = simclock.Hour
	}
	start := simclock.Time(8 * simclock.Hour)
	sub := c
	sub.PeakRPS = c.PeakRPS * 0.45
	tr := trace.Generate(trace.GenConfig{
		Service:  trace.Conversation,
		Start:    start,
		Duration: dur,
		PeakRPS:  sub.PeakRPS,
		Seed:     c.Seed ^ 0xF1DE,
	}).Window(start, start+simclock.Time(dur))

	repo := c.repo()
	fids := []core.Fidelity{core.FidelityFluid, core.FidelityEvent}
	type job struct {
		system string
		fid    core.Fidelity
	}
	jobs := make([]job, 0, 2*len(core.SystemNames))
	for _, name := range core.SystemNames {
		for _, fid := range fids {
			jobs = append(jobs, job{system: name, fid: fid})
		}
	}
	runs := Collect(c.runner(), len(jobs), func(i int) *core.Result {
		j := jobs[i]
		opts := sub.mustSystemOptions(j.system, func(o *core.Options) {
			o.Fidelity = j.fid
			o.WarmLoad = sub.warm(trace.Conversation, start)
		})
		return core.RunWithRepo(tr, opts, repo)
	})
	rows := make([]FidelityRow, len(core.SystemNames))
	for i, name := range core.SystemNames {
		rows[i] = FidelityRow{System: name, Fluid: runs[2*i], Event: runs[2*i+1]}
	}
	return rows
}

// RenderFidelity formats the cross-validation table: absolute numbers for
// both backends plus the event/fluid deltas the CI artifact tracks.
func RenderFidelity(rows []FidelityRow) string {
	var b strings.Builder
	b.WriteString("Fidelity cross-validation: fluid model vs event-level engine (per-instance)\n")
	b.WriteString("  system      energy kWh (fluid/event   Δ)   SLO att (fluid/event    Δ)   TTFT p99 s (fluid/event)\n")
	for _, r := range rows {
		f, e := r.Fluid, r.Event
		dE := e.EnergyJ/f.EnergyJ - 1
		dS := e.SLOAttainment() - f.SLOAttainment()
		fmt.Fprintf(&b, "  %-11s %7.2f /%7.2f  %+5.1f%%     %.3f / %.3f  %+.3f     %8.3f / %8.3f\n",
			r.System, f.EnergyKWh(), e.EnergyKWh(), dE*100,
			f.SLOAttainment(), e.SLOAttainment(), dS,
			f.TTFT.Percentile(99), e.TTFT.Percentile(99))
	}
	b.WriteString("\nfluid = closed-form steady state (fast default); event = engine-level queueing/batching (ground truth)\n")
	return b.String()
}
