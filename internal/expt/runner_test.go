package expt

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunnerDoRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 8, 100} {
		var counts [57]atomic.Int32
		Runner{Jobs: jobs}.Do(len(counts), func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("Jobs=%d: fn(%d) ran %d times, want 1", jobs, i, got)
			}
		}
	}
}

func TestRunnerDoBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	Runner{Jobs: jobs}.Do(64, func(i int) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > jobs {
		t.Errorf("peak in-flight = %d, want <= %d", p, jobs)
	}
}

func TestRunnerDoEmpty(t *testing.T) {
	called := false
	Runner{Jobs: 4}.Do(0, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestCollectPreservesIndexOrder(t *testing.T) {
	got := Collect(Runner{Jobs: 8}, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestParallelMatchesSequential is the tentpole guarantee: fanning the
// six-system cluster hour across 8 workers renders byte-identical tables to
// a sequential run with the same seed. Run under -race this also exercises
// the shared profile repository and trace from concurrent simulations.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	cfg := quickCfg()
	cfg.PeakRPS = 18

	seq := cfg
	seq.Parallelism = 1
	par := cfg
	par.Parallelism = 8

	render := func(runs []SystemRun) string {
		return RenderSystems(runs) + RenderFig6Breakdown(runs) +
			RenderFig9(runs) + RenderFig10(runs)
	}
	want := render(seq.ClusterHour())
	got := render(par.ClusterHour())
	if want == "" {
		t.Fatal("empty sequential render")
	}
	if got != want {
		t.Errorf("parallel render differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
