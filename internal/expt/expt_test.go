package expt

import (
	"strings"
	"testing"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func quickCfg() Config {
	c := Default()
	c.Quick = true
	c.PeakRPS = 30
	return c
}

func TestTableIShapes(t *testing.T) {
	tab := TableI()
	// SS feasible at TP2; LL not; every class has at least one feasible
	// configuration.
	if !tab[workload.SS][model.TP2][1200].Feasible {
		t.Error("SS/TP2/1.2 should be feasible")
	}
	for _, f := range gpu.CoarseLadder() {
		if tab[workload.LL][model.TP2][f].Feasible {
			t.Errorf("LL/TP2/%v should be infeasible", f)
		}
	}
	for _, cls := range workload.AllClasses {
		any := false
		for _, tp := range model.TPChoices {
			for _, f := range gpu.CoarseLadder() {
				if tab[cls][tp][f].Feasible {
					any = true
					if tab[cls][tp][f].WhPer10 <= 0 {
						t.Errorf("%v/%v/%v: non-positive energy", cls, tp, f)
					}
				}
			}
		}
		if !any {
			t.Errorf("%v has no feasible configuration", cls)
		}
	}
	out := RenderTableI(tab)
	if !strings.Contains(out, "SS") || !strings.Contains(out, "--") {
		t.Error("render incomplete")
	}
}

func TestTableIILoadDirection(t *testing.T) {
	tab := TableII()
	// Feasible cells only shrink as load rises (per TP/freq).
	for _, tp := range model.TPChoices {
		for _, f := range gpu.CoarseLadder() {
			if !tab[650][tp][f].Feasible && tab[4000][tp][f].Feasible {
				t.Errorf("%v/%v feasible at high load but not low", tp, f)
			}
		}
	}
	if RenderTableII(tab) == "" {
		t.Error("empty render")
	}
}

func TestTableIIIBigModelsNeedTP8(t *testing.T) {
	tab := TableIII()
	for _, name := range []string{"mixtral-8x22b", "falcon-180b"} {
		for _, tp := range []model.TP{model.TP2, model.TP4} {
			for _, f := range gpu.CoarseLadder() {
				if tab[name][tp][f].Feasible {
					t.Errorf("%s/%v/%v should be infeasible", name, tp, f)
				}
			}
		}
		if !tab[name][model.TP8][gpu.MaxFreq].Feasible {
			t.Errorf("%s/TP8/max should be feasible", name)
		}
	}
	if RenderTableIII(tab) == "" {
		t.Error("empty render")
	}
}

func TestTableVTotals(t *testing.T) {
	naive, opt := TableVTotal()
	// Paper: ~6-8 minutes naive; seconds-scale optimized critical path.
	if naive < 360 || naive > 480 {
		t.Errorf("naive provisioning = %v s, want 6-8 min", naive)
	}
	if opt > 60 {
		t.Errorf("optimized critical path = %v s, want under a minute", opt)
	}
	if RenderTableV() == "" || RenderTableIV() == "" {
		t.Error("empty renders")
	}
}

func TestTableVIUnit(t *testing.T) {
	matrix, unit := TableVI()
	if unit < 0.04 || unit > 0.08 {
		t.Errorf("T = %v s, want ~50-60 ms", unit)
	}
	if len(matrix) != 6 {
		t.Fatalf("matrix size %d", len(matrix))
	}
	if !strings.Contains(RenderTableVI(), "4T") {
		t.Error("render missing the 4T cell")
	}
}

func TestFig1And2(t *testing.T) {
	c := quickCfg()
	f1 := c.Fig1()
	for svc, rows := range f1 {
		if len(rows) < 2 {
			t.Errorf("%v: too few days", svc)
		}
		for _, r := range rows {
			sum := 0.0
			for _, s := range r.Shares {
				sum += s
			}
			if sum < 0.99 || sum > 1.01 {
				t.Errorf("%v day %d shares sum to %v", svc, r.Day, sum)
			}
		}
	}
	f2 := c.Fig2()
	for svc, pts := range f2 {
		peak := 0.0
		for _, p := range pts {
			if p.Value > peak {
				peak = p.Value
			}
		}
		if peak < 0.99 || peak > 1.01 {
			t.Errorf("%v: normalized peak = %v", svc, peak)
		}
	}
	if RenderFig1(f1) == "" || RenderFig2Series(f2) == "" {
		t.Error("empty renders")
	}
}

func TestFig3Drop(t *testing.T) {
	rows := Fig3()
	if len(rows) != workload.NumClasses {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SwitchRPS >= r.ConstRPS {
			t.Errorf("%v: switching frequency should cost throughput (%v vs %v)",
				r.Class, r.SwitchRPS, r.ConstRPS)
		}
	}
	if RenderFig3(rows) == "" {
		t.Error("empty render")
	}
}

func TestClusterHourRendersAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	c := quickCfg()
	runs := c.ClusterHour()
	if len(runs) != 6 {
		t.Fatalf("systems = %d", len(runs))
	}
	for _, render := range []string{
		RenderSystems(runs), RenderFig6Breakdown(runs),
		RenderFig9(runs), RenderFig10(runs),
	} {
		if render == "" {
			t.Error("empty render")
		}
	}
	// DynamoLLM uses least energy among the runs.
	var dyn, base float64
	for _, r := range runs {
		switch r.Name {
		case "dynamollm":
			dyn = r.Result.EnergyJ
		case "singlepool":
			base = r.Result.EnergyJ
		}
	}
	if dyn >= base {
		t.Errorf("DynamoLLM %v J should beat SinglePool %v J", dyn, base)
	}
}

func TestFig13PoolSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	rows := quickCfg().Fig13()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if RenderFig13(rows) == "" {
		t.Error("empty render")
	}
}

func TestServersForScalesWithLoad(t *testing.T) {
	c := quickCfg()
	small := serversFor(c.WeekTrace(trace.Conversation).Scale(0.3, 1))
	big := serversFor(c.WeekTrace(trace.Conversation))
	if small > big {
		t.Errorf("thinner trace sized larger fleet: %d > %d", small, big)
	}
	if big < 3 {
		t.Errorf("fleet floor violated: %d", big)
	}
}
