package expt

import (
	"strings"
	"testing"

	"dynamollm/internal/scenario"
)

func scenarioSubset(t *testing.T, names ...string) []*scenario.Scenario {
	t.Helper()
	out := make([]*scenario.Scenario, 0, len(names))
	for _, n := range names {
		sc, ok := scenario.ByName(n)
		if !ok {
			t.Fatalf("missing built-in scenario %q", n)
		}
		out = append(out, sc)
	}
	return out
}

// TestScenarioRunsParallelMatchesSequential: same scenario + seed renders
// byte-identical output whether the scenario x system grid runs on one
// worker or four — the PR-1 determinism guarantee extended to event
// hooks, which are compiled fresh per simulation.
func TestScenarioRunsParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	scs := scenarioSubset(t, "flashcrowd", "gpu-failures")
	systems := []string{"singlepool", "dynamollm"}

	render := func(jobs int) string {
		cfg := Default()
		cfg.Quick = true
		cfg.PeakRPS = 18
		cfg.Parallelism = jobs
		rs, err := cfg.ScenarioRuns(scs, systems)
		if err != nil {
			t.Fatal(err)
		}
		return RenderScenarioSweep(rs)
	}
	seq := render(1)
	par := render(4)
	if seq == "" {
		t.Fatal("empty sequential render")
	}
	if seq != par {
		t.Errorf("scenario sweep differs across -jobs:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
}

// TestScenarioRunsOutcomes sanity-checks the sweep plumbing: the outage
// scenario surfaces Outages for every system, and the renderers mention
// each system and scenario.
func TestScenarioRunsOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	scs := scenarioSubset(t, "gpu-failures")
	cfg := Default()
	cfg.Quick = true
	cfg.PeakRPS = 18
	rs, err := cfg.ScenarioRuns(scs, []string{"singlepool", "scaleinst", "dynamollm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Systems) != 3 {
		t.Fatalf("bad shape: %d results", len(rs))
	}
	for _, run := range rs[0].Systems {
		if run.Result.Outages == 0 {
			t.Errorf("%s: outage scenario recorded no Outages", run.Name)
		}
		if run.Result.Requests == 0 {
			t.Errorf("%s: no requests simulated", run.Name)
		}
	}
	out := RenderScenario(rs[0])
	for _, want := range []string{"gpu-failures", "singlepool", "scaleinst", "dynamollm", "outage"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
