package expt

import (
	"strings"
	"testing"

	"dynamollm/internal/core"
	"dynamollm/internal/scenario"
)

// TestFidelityCompareShapes: the cross-validation grid covers every system
// under both backends and the render carries the deltas.
func TestFidelityCompareShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	c := quickCfg()
	c.PeakRPS = 18
	rows := c.FidelityCompare()
	if len(rows) != len(core.SystemNames) {
		t.Fatalf("rows = %d, want %d", len(rows), len(core.SystemNames))
	}
	for _, r := range rows {
		if r.Fluid == nil || r.Event == nil {
			t.Fatalf("%s: missing a backend result", r.System)
		}
		if r.Fluid.Requests != r.Event.Requests {
			t.Errorf("%s: routing diverged across backends (%d vs %d requests)",
				r.System, r.Fluid.Requests, r.Event.Requests)
		}
		if r.Event.Completed == 0 {
			t.Errorf("%s: event backend completed nothing", r.System)
		}
	}
	out := RenderFidelity(rows)
	if !strings.Contains(out, "dynamollm") || !strings.Contains(out, "event") {
		t.Error("render incomplete")
	}
}

// eventScenarioCfg is the thinned harness the event-fidelity scenario
// tests share (event mode is the slow path; the assertions are about
// completion and determinism, not scale).
func eventScenarioCfg(jobs int) Config {
	c := quickCfg()
	c.PeakRPS = 3
	c.Parallelism = jobs
	c.Fidelity = core.FidelityEvent
	return c
}

// runEventScenarios drives the scenarios through dynamollm under event
// fidelity, asserting every routed request is accounted, and returns the
// rendered results for determinism comparison.
func runEventScenarios(t *testing.T, c Config, scs []*scenario.Scenario) string {
	t.Helper()
	rs, err := c.ScenarioRuns(scs, []string{"dynamollm"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range rs {
		res := r.Systems[0].Result
		if res.Requests == 0 || res.Completed == 0 {
			t.Errorf("scenario %q served nothing under event fidelity", r.Scenario.Name)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Errorf("scenario %q: %v", r.Scenario.Name, err)
		}
		b.WriteString(RenderScenario(r))
	}
	return b.String()
}

// TestScenarioLibraryCompletesUnderEventFidelity: every built-in scenario
// runs to completion on the event backend.
func TestScenarioLibraryCompletesUnderEventFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation (event fidelity)")
	}
	runEventScenarios(t, eventScenarioCfg(0), scenario.Library())
}

// TestEventScenarioJobsIndependent: event-mode results are byte-identical
// at any worker-pool parallelism (the per-run virtual clock and engines
// share no state between simulations). Uses the two cheapest scenarios
// (quarter-day, no saturating spike) so the sequential arm stays fast
// under -race.
func TestEventScenarioJobsIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation (event fidelity)")
	}
	subset := make([]*scenario.Scenario, 0, 2)
	for _, name := range []string{"price-surge", "slo-crunch"} {
		sc, ok := scenario.ByName(name)
		if !ok {
			t.Fatalf("missing built-in scenario %q", name)
		}
		subset = append(subset, sc)
	}
	seq := runEventScenarios(t, eventScenarioCfg(1), subset)
	par := runEventScenarios(t, eventScenarioCfg(8), subset)
	if seq != par {
		t.Error("event-mode scenario results differ across -jobs")
	}
}
