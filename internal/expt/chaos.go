package expt

import (
	"fmt"
	"strings"

	"dynamollm/internal/core"
	"dynamollm/internal/scenario"
)

// ChaosPoint is one cell of the chaos sweep: a failure intensity, a
// straggler fraction, and a frontend retry budget, with every system run
// under those conditions.
type ChaosPoint struct {
	// MTBFHours is the mean time between injected single-server crashes.
	MTBFHours float64
	// StragglerFrac is the fraction of a reference fleet (chaosFleet
	// servers) degraded to 60% clock for a mid-window stretch.
	StragglerFrac float64
	// RetryBudget is core.Options.RetryBudget (negative = retries off).
	RetryBudget int
	Systems     []SystemRun
}

// chaosFleet is the reference fleet size the straggler fraction is scaled
// against. The simulated fleet autoscales, so the axis is expressed
// against a fixed reference rather than a moving target.
const chaosFleet = 16

// ChaosSweep runs the fault-injection grid — crash intensity x straggler
// fraction x retry budget — across the six systems. One arrival trace is
// shared by every cell (the conditions differ, the load does not), and
// each simulation gets its own freshly compiled hook with the fault plan
// expanded from a per-cell seed. The flattened grid runs through one
// worker pool; results are deterministic for any Config.Parallelism.
func (c Config) ChaosSweep() ([]ChaosPoint, error) {
	return c.ChaosRuns(core.SystemNames)
}

// ChaosRuns is ChaosSweep over a chosen system list.
func (c Config) ChaosRuns(systems []string) ([]ChaosPoint, error) {
	mtbfs := []float64{3, 1}
	fracs := []float64{0, 0.25}
	budgets := []int{-1, core.DefaultRetryBudget}
	if c.Quick {
		mtbfs = []float64{1}
		fracs = []float64{0.25}
	}
	base := &scenario.Scenario{
		Name:       "chaos-sweep",
		Service:    "conversation",
		StartHours: 32, // Tuesday 08:00
		Days:       0.25,
	}
	tr, err := base.GenTrace(c.PeakRPS, 0, scenarioSeed(c.Seed, base.Name))
	if err != nil {
		return nil, err
	}
	svc, err := base.ServiceProfile()
	if err != nil {
		return nil, err
	}
	points := make([]ChaosPoint, 0, len(mtbfs)*len(fracs)*len(budgets))
	jobs := make([]gridJob, 0, len(mtbfs)*len(fracs)*len(budgets)*len(systems))
	for _, mtbf := range mtbfs {
		for _, frac := range fracs {
			for _, budget := range budgets {
				sc := *base
				sc.Events = []scenario.Event{
					{Kind: scenario.Faults, AtHours: 0, DurationHours: sc.Days * 24,
						MTBFHours: mtbf, RepairHours: 0.5},
				}
				if n := int(frac*chaosFleet + 0.5); n > 0 {
					sc.Events = append(sc.Events, scenario.Event{
						Kind: scenario.Straggler, AtHours: 1, DurationHours: 3,
						Servers: n, SlowFactor: 0.6,
					})
				}
				group := len(points)
				points = append(points, ChaosPoint{
					MTBFHours: mtbf, StragglerFrac: frac, RetryBudget: budget,
				})
				// The hook seed folds the cell coordinates in so every cell
				// draws an independent fault plan even where event lists
				// coincide (e.g. the frac=0 cells at one MTBF).
				hookSeed := scenarioSeed(c.Seed, fmt.Sprintf("chaos/%g/%g/%d", mtbf, frac, budget))
				for _, name := range systems {
					sc := sc
					opts := c.mustSystemOptions(name, func(o *core.Options) {
						o.WarmLoad = c.warm(svc, sc.Start())
						o.Hook = sc.Hook(hookSeed) // fresh per simulation
						o.RetryBudget = budget
					})
					jobs = append(jobs, gridJob{group: group, tr: tr, name: name, opts: opts})
				}
			}
		}
	}
	grouped := c.gridRuns(jobs, len(points))
	for i := range points {
		points[i].Systems = grouped[i]
	}
	return points, nil
}

// RenderChaos formats the chaos sweep: one block per grid cell, then a
// retry-budget summary showing what the retry path buys the full system
// under the harshest conditions.
func RenderChaos(points []ChaosPoint) string {
	var b strings.Builder
	b.WriteString("Chaos sweep: crash intensity x straggler fraction x retry budget\n\n")
	if len(points) == 0 {
		return b.String()
	}
	for _, p := range points {
		retry := "off"
		if p.RetryBudget > 0 {
			retry = fmt.Sprintf("%d", p.RetryBudget)
		}
		fmt.Fprintf(&b, "mtbf=%gh stragglers=%.0f%% retry=%s\n", p.MTBFHours, p.StragglerFrac*100, retry)
		b.WriteString("  system      SLO att   retried   amp    shed%   squash  outage  energy(kWh)\n")
		for _, run := range p.Systems {
			res := run.Result
			amp, shed := 1.0, 0.0
			if res.Requests > 0 {
				amp = 1 + float64(res.Retried)/float64(res.Requests)
				shed = float64(res.Shed) / float64(res.Requests)
			}
			fmt.Fprintf(&b, "  %-11s  %.3f   %7d  %.3f   %5.2f   %6d  %6d   %10.2f\n",
				run.Name, res.SLOAttainment(), res.Retried, amp, shed*100,
				res.Squashed, res.Outages, res.EnergyKWh())
		}
		b.WriteString("\n")
	}
	// Harshest cell: lowest MTBF, highest straggler fraction.
	minMTBF, maxFrac := points[0].MTBFHours, points[0].StragglerFrac
	for _, p := range points {
		if p.MTBFHours < minMTBF {
			minMTBF = p.MTBFHours
		}
		if p.StragglerFrac > maxFrac {
			maxFrac = p.StragglerFrac
		}
	}
	var off, on *core.Result
	for _, p := range points {
		if p.MTBFHours != minMTBF || p.StragglerFrac != maxFrac {
			continue
		}
		for _, run := range p.Systems {
			if run.Name == "dynamollm" {
				if p.RetryBudget > 0 {
					on = run.Result
				} else {
					off = run.Result
				}
			}
		}
	}
	if off != nil && on != nil {
		fmt.Fprintf(&b, "Summary (dynamollm, harshest cell mtbf=%gh stragglers=%.0f%%, retries off vs on):\n",
			minMTBF, maxFrac*100)
		fmt.Fprintf(&b, "  terminally lost %d -> %d, SLO att %.3f -> %.3f (budget %d)\n",
			off.Squashed+off.Shed, on.Squashed+on.Shed,
			off.SLOAttainment(), on.SLOAttainment(), core.DefaultRetryBudget)
	}
	return b.String()
}
