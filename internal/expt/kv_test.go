package expt

import (
	"math"
	"strings"
	"testing"

	"dynamollm/internal/core"
)

// TestKVSweepTrends pins the KV sweep's two acceptance properties on the
// quick grid: goodput falls monotonically as the KV capacity factor
// shrinks, and the prefix-share cell converts shared prompts into cache
// hits that reduce TTFT versus the plain full-capacity cell. Runs two
// systems to keep the event-fidelity cost bounded while still covering an
// autoscaling and a static policy.
func TestKVSweepTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("event-fidelity cluster simulations")
	}
	c := quickCfg()
	c.PeakRPS = 5
	systems := []string{"multipool", "dynamollm"}
	points, err := c.KVRuns(systems)
	if err != nil {
		t.Fatal(err)
	}
	// 3 capacity cells + 2 tiers x 2 pressured capacities + 1 prefix cell
	// + 1 disagg cell.
	if len(points) != 9 {
		t.Fatalf("quick grid has %d cells, want 9", len(points))
	}
	find := func(p KVPoint, name string) SystemRun {
		for _, run := range p.Systems {
			if run.Name == name {
				return run
			}
		}
		t.Fatalf("cell capacity=%g prefix=%g disagg=%v missing system %s",
			p.CapacityFactor, p.PrefixShare, p.Disagg, name)
		return SystemRun{}
	}
	for _, p := range points {
		for _, run := range p.Systems {
			if err := run.Result.CheckInvariants(); err != nil {
				t.Errorf("capacity=%g prefix=%g disagg=%v %s: %v",
					p.CapacityFactor, p.PrefixShare, p.Disagg, run.Name, err)
			}
		}
	}
	for _, name := range systems {
		// Capacity cells appear in shrinking order; goodput may not rise.
		prev := 2.0
		for _, p := range points {
			if p.PrefixShare != 0 || p.Disagg || p.Tier != core.KVTierNone {
				continue
			}
			g := Goodput(find(p, name).Result)
			if g > prev+1e-9 {
				t.Errorf("%s: goodput rose to %.4f at capacity %g (was %.4f at larger capacity)",
					name, g, p.CapacityFactor, prev)
			}
			prev = g
		}
	}
	// Tier cells: every tier cell must engage the link (swap-outs > 0) and
	// strictly replace recomputes versus the recompute-only cell at the
	// same capacity. Goodput recovery is asserted strictly for the cpu
	// tier at its largest pressured capacity — the regime the tier exists
	// for: a tight pool that is not yet capacity-collapsed, over a link
	// fast enough that swapping beats re-prefilling. At the collapse
	// capacity goodput is bounded by the pool itself (swap and recompute
	// both idle behind the same handful of blocks), and the slow ssd link
	// engages too rarely under the auto policy to move goodput, so those
	// cells only have to hold goodput within a small tolerance.
	noneAt := map[float64]*KVPoint{}
	for i := range points {
		p := &points[i]
		if p.Tier == core.KVTierNone && p.PrefixShare == 0 && !p.Disagg {
			noneAt[p.CapacityFactor] = p
		}
	}
	for _, name := range systems {
		firstCap := map[core.KVTier]float64{}
		for _, p := range points {
			if p.Tier == core.KVTierNone {
				continue
			}
			none := noneAt[p.CapacityFactor]
			if none == nil {
				t.Fatalf("tier cell at capacity %g has no recompute-only counterpart", p.CapacityFactor)
			}
			tr, nr := find(p, name).Result, find(*none, name).Result
			if tr.KVSwapOuts == 0 {
				t.Errorf("%s: tier=%s cell at capacity %g never swapped", name, p.Tier, p.CapacityFactor)
			}
			if tr.KVRecomputes >= nr.KVRecomputes {
				t.Errorf("%s: tier=%s did not displace recomputes at capacity %g: %d vs %d",
					name, p.Tier, p.CapacityFactor, tr.KVRecomputes, nr.KVRecomputes)
			}
			// Tier cells appear in shrinking-capacity order per tier.
			if _, ok := firstCap[p.Tier]; !ok {
				firstCap[p.Tier] = p.CapacityFactor
			}
			gt, gn := Goodput(tr), Goodput(nr)
			if p.Tier == core.KVTierCPU && p.CapacityFactor == firstCap[p.Tier] && p.Policy == core.KVSwapAuto {
				if gt <= gn {
					t.Errorf("%s: tier=%s goodput %.4f did not beat recompute-only %.4f at capacity %g",
						name, p.Tier, gt, gn, p.CapacityFactor)
				}
			} else if tol := math.Max(0.005, 0.02*gn); gt < gn-tol {
				t.Errorf("%s: tier=%s goodput %.4f fell more than %.4f below recompute-only %.4f at capacity %g",
					name, p.Tier, gt, tol, gn, p.CapacityFactor)
			}
		}
	}
	var plain, prefix, disagg *KVPoint
	for i := range points {
		p := &points[i]
		switch {
		case p.Disagg:
			disagg = p
		case p.PrefixShare > 0:
			prefix = p
		case p.CapacityFactor == 1:
			plain = p
		}
	}
	if plain == nil || prefix == nil || disagg == nil {
		t.Fatal("grid missing the plain, prefix, or disagg cell")
	}
	for _, name := range systems {
		pr, pl := find(*prefix, name).Result, find(*plain, name).Result
		if pr.KVPrefixHits == 0 {
			t.Errorf("%s: prefix cell recorded no cache hits", name)
		}
		if pr.TTFT.Mean() >= pl.TTFT.Mean() {
			t.Errorf("%s: prefix cache did not reduce mean TTFT (%.4fs with hits vs %.4fs plain)",
				name, pr.TTFT.Mean(), pl.TTFT.Mean())
		}
		dr := find(*disagg, name).Result
		if dr.Handoffs == 0 {
			t.Errorf("%s: disagg cell recorded no prefill-to-decode handoffs", name)
		}
		if dr.Handoffs > dr.Requests {
			t.Errorf("%s: %d handoffs exceed %d routed requests", name, dr.Handoffs, dr.Requests)
		}
	}
	out := RenderKV(points)
	for _, want := range []string{"capacity -> goodput", "prefix share", "disagg=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderKV output missing %q", want)
		}
	}
}
