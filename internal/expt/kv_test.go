package expt

import (
	"strings"
	"testing"
)

// TestKVSweepTrends pins the KV sweep's two acceptance properties on the
// quick grid: goodput falls monotonically as the KV capacity factor
// shrinks, and the prefix-share cell converts shared prompts into cache
// hits that reduce TTFT versus the plain full-capacity cell. Runs two
// systems to keep the event-fidelity cost bounded while still covering an
// autoscaling and a static policy.
func TestKVSweepTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("event-fidelity cluster simulations")
	}
	c := quickCfg()
	c.PeakRPS = 5
	systems := []string{"multipool", "dynamollm"}
	points, err := c.KVRuns(systems)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 { // 3 capacity cells + 1 prefix cell + 1 disagg cell
		t.Fatalf("quick grid has %d cells, want 5", len(points))
	}
	find := func(p KVPoint, name string) SystemRun {
		for _, run := range p.Systems {
			if run.Name == name {
				return run
			}
		}
		t.Fatalf("cell capacity=%g prefix=%g disagg=%v missing system %s",
			p.CapacityFactor, p.PrefixShare, p.Disagg, name)
		return SystemRun{}
	}
	for _, p := range points {
		for _, run := range p.Systems {
			if err := run.Result.CheckInvariants(); err != nil {
				t.Errorf("capacity=%g prefix=%g disagg=%v %s: %v",
					p.CapacityFactor, p.PrefixShare, p.Disagg, run.Name, err)
			}
		}
	}
	for _, name := range systems {
		// Capacity cells appear in shrinking order; goodput may not rise.
		prev := 2.0
		for _, p := range points {
			if p.PrefixShare != 0 || p.Disagg {
				continue
			}
			g := Goodput(find(p, name).Result)
			if g > prev+1e-9 {
				t.Errorf("%s: goodput rose to %.4f at capacity %g (was %.4f at larger capacity)",
					name, g, p.CapacityFactor, prev)
			}
			prev = g
		}
	}
	var plain, prefix, disagg *KVPoint
	for i := range points {
		p := &points[i]
		switch {
		case p.Disagg:
			disagg = p
		case p.PrefixShare > 0:
			prefix = p
		case p.CapacityFactor == 1:
			plain = p
		}
	}
	if plain == nil || prefix == nil || disagg == nil {
		t.Fatal("grid missing the plain, prefix, or disagg cell")
	}
	for _, name := range systems {
		pr, pl := find(*prefix, name).Result, find(*plain, name).Result
		if pr.KVPrefixHits == 0 {
			t.Errorf("%s: prefix cell recorded no cache hits", name)
		}
		if pr.TTFT.Mean() >= pl.TTFT.Mean() {
			t.Errorf("%s: prefix cache did not reduce mean TTFT (%.4fs with hits vs %.4fs plain)",
				name, pr.TTFT.Mean(), pl.TTFT.Mean())
		}
		dr := find(*disagg, name).Result
		if dr.Handoffs == 0 {
			t.Errorf("%s: disagg cell recorded no prefill-to-decode handoffs", name)
		}
		if dr.Handoffs > dr.Requests {
			t.Errorf("%s: %d handoffs exceed %d routed requests", name, dr.Handoffs, dr.Requests)
		}
	}
	out := RenderKV(points)
	for _, want := range []string{"capacity -> goodput", "prefix share", "disagg=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderKV output missing %q", want)
		}
	}
}
