// Package expt implements the evaluation harness: one function per table
// and figure of the paper, plus the scenario sweep comparing systems
// under injected cluster conditions (scenario.go). Each experiment
// returns typed rows/series that the renderers in render.go and
// scenario.go format the way the paper reports them; runner.go fans
// independent simulations across a bounded worker pool with results
// slotted by index, so output is byte-identical at any parallelism. The
// cmd/dynamobench CLI and the repository's benchmarks are thin wrappers
// around this package.
package expt

import (
	"dynamollm/internal/core"
	"dynamollm/internal/energy"
	"dynamollm/internal/engine"
	"dynamollm/internal/gpu"
	"dynamollm/internal/metrics"
	"dynamollm/internal/model"
	"dynamollm/internal/perfmodel"
	"dynamollm/internal/profile"
	"dynamollm/internal/reshard"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Config parameterizes the experiment harness.
type Config struct {
	// PeakRPS is the weekly-peak arrival rate for cluster experiments.
	PeakRPS float64
	// Seed drives trace generation and simulation.
	Seed uint64
	// Quick shrinks long experiments (benchmark mode): day runs become
	// 6 hours, week runs become 2 days, and week-scale load is thinned.
	Quick bool
	// Repo caches model profiles across experiments.
	Repo *profile.Repository
	// Parallelism bounds how many simulations run concurrently within an
	// experiment (0 = one worker per CPU, 1 = sequential). Results are
	// deterministic for any value: each simulation owns its RNG and the
	// Runner slots results by index, never by completion order.
	Parallelism int
	// Fidelity selects the instance service model for every cluster
	// simulation the harness runs: core.FidelityFluid (default) or
	// core.FidelityEvent. Event mode owns one virtual clock per
	// simulation, so results stay deterministic at any Parallelism.
	Fidelity core.Fidelity
	// StepJobs bounds the worker pool each event-fidelity simulation uses
	// to step its instance engines within a tick (core.Options.StepJobs).
	// Orthogonal to Parallelism — that fans out whole simulations, this
	// parallelizes inside one — and equally invisible in the results.
	StepJobs int
	// Disagg splits every pool of every cluster simulation into a prefill
	// pool and a decode pool with a modeled KV-transfer handoff
	// (core.Options.Disagg); implies event fidelity.
	Disagg bool
	// KVTier adds a spill tier below every engine's KV block pool
	// (core.Options.KVTier); implies event fidelity and block accounting.
	// The kv sweep overrides it per cell (the tier is its own axis).
	KVTier core.KVTier
	// KVTierBandwidth overrides the spill link bandwidth in bytes/s
	// (core.Options.KVTierBandwidth; 0 keeps the tier default).
	KVTierBandwidth float64
	// KVSwapPolicy picks swap vs recompute per preemption victim
	// (core.Options.KVSwapPolicy).
	KVSwapPolicy core.KVSwapPolicy
}

// Default returns the standard harness configuration.
func Default() Config {
	return Config{PeakRPS: 45, Seed: 42, Repo: profile.NewRepository(nil)}
}

func (c Config) repo() *profile.Repository {
	if c.Repo == nil {
		return profile.NewRepository(nil)
	}
	return c.Repo
}

func (c Config) runner() Runner { return Runner{Jobs: c.Parallelism} }

// mediumTotalTPS is Table I/III's "medium system load" in total tokens/s.
const mediumTotalTPS = 2000

// --- Table I -------------------------------------------------------------------

// Cell is one heat-map entry.
type Cell struct {
	Feasible bool
	// WhPer10 is the energy per ten requests in watt-hours — our
	// simulator's counterpart of the paper's per-cell Wh numbers (the
	// absolute scale differs from the testbed; the within-row shape is
	// what the controllers consume).
	WhPer10 float64
}

// TableI characterizes Llama2-70B across classes, parallelisms, and
// frequencies at medium load.
func TableI() map[workload.Class]map[model.TP]map[gpu.Freq]Cell {
	out := map[workload.Class]map[model.TP]map[gpu.Freq]Cell{}
	for _, cls := range workload.AllClasses {
		out[cls] = characterize(model.Llama2_70B, cls, mediumTotalTPS, false)
	}
	return out
}

// characterize fills one class's TPxFreq grid. promptTPS selects Table II's
// prompt-token load basis.
func characterize(m *model.Model, cls workload.Class, tps float64, promptTPS bool) map[model.TP]map[gpu.Freq]Cell {
	in, out := workload.RepresentativeLengths(cls)
	lambda := tps / float64(in+out)
	if promptTPS {
		lambda = tps / float64(in)
	}
	grid := map[model.TP]map[gpu.Freq]Cell{}
	for _, tp := range model.TPChoices {
		grid[tp] = map[gpu.Freq]Cell{}
		for _, f := range gpu.CoarseLadder() {
			st := perfmodel.SteadyState(perfmodel.Config{Model: m, TP: tp, Freq: f}, lambda, in, out)
			grid[tp][f] = Cell{
				Feasible: st.MeetsSLO(cls, 1),
				WhPer10:  energy.Wh(st.EnergyPerRequest) * 10,
			}
		}
	}
	return grid
}

// --- Table II ------------------------------------------------------------------

// TableIILoads are the paper's prompt-token load levels.
var TableIILoads = []float64{650, 2000, 4000}

// TableII characterizes MM requests across load levels (prompt TPS basis).
func TableII() map[float64]map[model.TP]map[gpu.Freq]Cell {
	out := map[float64]map[model.TP]map[gpu.Freq]Cell{}
	for _, tps := range TableIILoads {
		out[tps] = characterize(model.Llama2_70B, workload.MM, tps, true)
	}
	return out
}

// --- Table III -----------------------------------------------------------------

// TableIII characterizes MM requests across the model catalog.
func TableIII() map[string]map[model.TP]map[gpu.Freq]Cell {
	out := map[string]map[model.TP]map[gpu.Freq]Cell{}
	for _, m := range model.All() {
		out[m.Name] = characterize(m, workload.MM, mediumTotalTPS, false)
	}
	return out
}

// --- Table V -------------------------------------------------------------------

// ProvisionStep is one row of Table V's overhead breakdown.
type ProvisionStep struct {
	Name    string
	Seconds float64
	// Hidden reports whether DynamoLLM's optimizations take the step off
	// the critical path (§IV-C).
	Hidden bool
}

// TableV returns the instance-creation overhead breakdown.
func TableV() []ProvisionStep {
	return []ProvisionStep{
		{"Create a new H100 VM", 90, true},                  // snapshot start
		{"Initialize distributed multi-GPU env", 120, true}, // baked into snapshot
		{"Download model weights", 180, true},               // cluster-local cache
		{"Set up the engine configuration", 18, false},
		{"Install weights and KV cache on GPUs", 15, false},
	}
}

// TableVTotal returns naive and optimized critical-path seconds.
func TableVTotal() (naive, optimized float64) {
	for _, s := range TableV() {
		naive += s.Seconds
		if !s.Hidden {
			optimized += s.Seconds
		}
	}
	return naive, optimized
}

// --- Table VI ------------------------------------------------------------------

// TableVI returns the derived re-sharding overhead matrix in units of T,
// plus T itself for Llama2-70B.
func TableVI() (matrix [][]int, unitSeconds float64) {
	return reshard.OverheadTable(), gpu.TransferTime(model.Llama2_70B.WeightBytes / reshard.NumSlices)
}

// --- Fig. 1 & 2 ----------------------------------------------------------------

// WeekTrace generates the synthetic week for a service.
func (c Config) WeekTrace(svc trace.Service) trace.Trace {
	peak := c.PeakRPS
	days := 7.0
	if c.Quick {
		days = 2
	}
	return trace.Generate(trace.GenConfig{
		Service:  svc,
		Duration: days * simclock.Day,
		PeakRPS:  peak,
		Seed:     c.Seed ^ uint64(svc+1)<<8,
	})
}

// Fig1Row is the class mix of one service over one day.
type Fig1Row struct {
	Day    int
	Shares [workload.NumClasses]float64
}

// Fig1 computes per-day request-type distributions for both services.
func (c Config) Fig1() map[trace.Service][]Fig1Row {
	out := map[trace.Service][]Fig1Row{}
	for _, svc := range []trace.Service{trace.Coding, trace.Conversation} {
		tr := c.WeekTrace(svc)
		days := int(float64(tr[len(tr)-1].At)/86400) + 1
		counts := make([][workload.NumClasses]float64, days)
		totals := make([]float64, days)
		for _, e := range tr {
			d := int(float64(e.At) / 86400)
			counts[d][e.Class()]++
			totals[d]++
		}
		rows := make([]Fig1Row, days)
		for d := range rows {
			rows[d].Day = d
			for i := range counts[d] {
				if totals[d] > 0 {
					rows[d].Shares[i] = counts[d][i] / totals[d]
				}
			}
		}
		out[svc] = rows
	}
	return out
}

// Fig2 returns hourly normalized token throughput for both services.
func (c Config) Fig2() map[trace.Service][]metrics.Point {
	out := map[trace.Service][]metrics.Point{}
	for _, svc := range []trace.Service{trace.Coding, trace.Conversation} {
		tr := c.WeekTrace(svc)
		rate := tr.TokenRate(3600)
		peak := 0.0
		for _, p := range rate {
			if p.TPS > peak {
				peak = p.TPS
			}
		}
		pts := make([]metrics.Point, len(rate))
		for i, p := range rate {
			pts[i] = metrics.Point{Time: p.Time, Value: p.TPS / peak}
		}
		out[svc] = pts
	}
	return out
}

// --- Fig. 3 --------------------------------------------------------------------

// Fig3Row compares throughput with constant vs per-iteration-set frequency.
type Fig3Row struct {
	Class               workload.Class
	ConstRPS, SwitchRPS float64
}

// Fig3 measures the frequency-switch overhead per class on the naive
// nvidia-smi path (the figure's setup).
func Fig3() []Fig3Row {
	rows := make([]Fig3Row, 0, workload.NumClasses)
	for _, cls := range workload.AllClasses {
		c, s := engine.ThroughputConstVsSwitch(cls, false)
		rows = append(rows, Fig3Row{Class: cls, ConstRPS: c, SwitchRPS: s})
	}
	return rows
}

// --- Cluster experiments (Figs. 6-10) --------------------------------------------

// SystemRun bundles one system's result.
type SystemRun struct {
	Name   string
	Result *core.Result
}

// hourTrace is the 1-hour open-source production trace substitute.
func (c Config) hourTrace() trace.Trace {
	return trace.OpenSourceHour(c.PeakRPS, c.Seed)
}

func (c Config) warm(svc trace.Service, offset simclock.Time) func(simclock.Time, workload.Class) float64 {
	peak := c.PeakRPS
	return func(t simclock.Time, cls workload.Class) float64 {
		return trace.ExpectedRate(svc, peak, t+offset, cls)
	}
}

// systemOptions resolves one named system's options under this harness
// configuration. Options is a value type, so every simulation gets its own
// copy — mutate never leaks across concurrent runs.
func (c Config) systemOptions(name string, mutate func(*core.Options)) (core.Options, bool) {
	opts, ok := core.SystemByName(name)
	if !ok {
		return core.Options{}, false
	}
	opts.Seed = c.Seed
	opts.Fidelity = c.Fidelity
	opts.StepJobs = c.StepJobs
	opts.Disagg = c.Disagg
	opts.KVTier = c.KVTier
	opts.KVTierBandwidth = c.KVTierBandwidth
	opts.KVSwapPolicy = c.KVSwapPolicy
	opts.WarmLoad = c.warm(trace.Conversation, trace.OpenSourceHourStart)
	if mutate != nil {
		mutate(&opts)
	}
	return opts, true
}

// mustSystemOptions is systemOptions for the fixed system names the figures
// reference; an unknown name is a programming error and fails loudly rather
// than silently simulating an all-defaults system.
func (c Config) mustSystemOptions(name string, mutate func(*core.Options)) core.Options {
	opts, ok := c.systemOptions(name, mutate)
	if !ok {
		panic("expt: unknown system " + name)
	}
	return opts
}

// gridJob is one cell of a group-by-system experiment grid.
type gridJob struct {
	group int
	tr    trace.Trace
	name  string
	opts  core.Options
}

// gridRuns fans a flattened grid of simulations through one worker pool and
// regroups the results by group index. Jobs are appended group-major, so
// within each group the system order is the construction order.
func (c Config) gridRuns(jobs []gridJob, numGroups int) [][]SystemRun {
	repo := c.repo()
	runs := Collect(c.runner(), len(jobs), func(i int) SystemRun {
		j := jobs[i]
		return SystemRun{Name: j.name, Result: core.RunWithRepo(j.tr, j.opts, repo)}
	})
	out := make([][]SystemRun, numGroups)
	for i, j := range jobs {
		out[j.group] = append(out[j.group], runs[i])
	}
	return out
}

// runSystems drives a trace through the named systems, fanning the
// independent simulations across the runner's worker pool. Output order
// follows names, not completion order.
func (c Config) runSystems(tr trace.Trace, names []string, mutate func(*core.Options)) []SystemRun {
	repo := c.repo()
	type job struct {
		name string
		opts core.Options
	}
	jobs := make([]job, 0, len(names))
	for _, name := range names {
		if opts, ok := c.systemOptions(name, mutate); ok {
			jobs = append(jobs, job{name: name, opts: opts})
		}
	}
	return Collect(c.runner(), len(jobs), func(i int) SystemRun {
		return SystemRun{Name: jobs[i].name, Result: core.RunWithRepo(tr, jobs[i].opts, repo)}
	})
}

// ClusterHour runs all six systems on the 1-hour trace: the shared
// substrate of Figs. 6, 7, 8, 9, and 10.
func (c Config) ClusterHour() []SystemRun {
	return c.runSystems(c.hourTrace(), core.SystemNames, nil)
}

// --- Fig. 11: predictor accuracy ---------------------------------------------

// Fig11Row is one accuracy level's outcome.
type Fig11Row struct {
	Label     string
	Accuracy  float64
	EnergyKWh float64
	TTFTMean  float64
}

// Fig11 sweeps the output-length predictor accuracy on DynamoLLM plus the
// SinglePool reference. All six simulations run through one worker pool.
func (c Config) Fig11() []Fig11Row {
	tr := c.hourTrace()
	repo := c.repo()
	type spec struct {
		label  string
		system string
		acc    float64
	}
	specs := []spec{{label: "SinglePool", system: "singlepool", acc: 1}}
	for _, acc := range []float64{1.0, 0.9, 0.8, 0.6, 0.5} {
		specs = append(specs, spec{label: "Dyn-" + pct(acc), system: "dynamollm", acc: acc})
	}
	return Collect(c.runner(), len(specs), func(i int) Fig11Row {
		sp := specs[i]
		opts := c.mustSystemOptions(sp.system, func(o *core.Options) {
			if sp.system == "dynamollm" {
				o.PredictorAccuracy = sp.acc
			}
		})
		res := core.RunWithRepo(tr, opts, repo)
		return Fig11Row{
			Label:     sp.label,
			Accuracy:  sp.acc,
			EnergyKWh: res.EnergyKWh(),
			TTFTMean:  res.TTFT.Mean(),
		}
	})
}

// --- Fig. 12: load sensitivity --------------------------------------------------

// Fig12Level is one load level's six-system comparison.
type Fig12Level struct {
	Label   string
	Factor  float64 // fraction of PeakRPS
	Systems []SystemRun
}

// Fig12 generates Poisson hours at Low/Medium/High load and compares the
// six systems. The 3x6 level-by-system grid is flattened into a single
// worker pool so one slow level cannot serialize the others.
func (c Config) Fig12() []Fig12Level {
	levels := []struct {
		label  string
		factor float64
	}{{"Low", 0.25}, {"Medium", 0.55}, {"High", 0.9}}
	jobs := make([]gridJob, 0, len(levels)*len(core.SystemNames))
	for li, lv := range levels {
		// Constant-rate Poisson hour: thin the near-peak hour per level.
		tr := c.hourTrace().Scale(lv.factor, c.Seed^0xF12)
		for _, name := range core.SystemNames {
			jobs = append(jobs, gridJob{group: li, tr: tr, name: name, opts: c.mustSystemOptions(name, nil)})
		}
	}
	groups := c.gridRuns(jobs, len(levels))
	out := make([]Fig12Level, len(levels))
	for i, lv := range levels {
		out[i] = Fig12Level{Label: lv.label, Factor: lv.factor, Systems: groups[i]}
	}
	return out
}

// --- Fig. 13: pool count --------------------------------------------------------

// Fig13Row is one pool-count configuration's outcome.
type Fig13Row struct {
	Pools     int
	EnergyKWh float64
	TTFTMean  float64
	SLOAtt    float64
}

// Fig13 sweeps the number of request pools, one worker per pool count.
func (c Config) Fig13() []Fig13Row {
	tr := c.hourTrace()
	repo := c.repo()
	counts := []int{2, 4, 6, 9, 12, 16}
	return Collect(c.runner(), len(counts), func(i int) Fig13Row {
		n := counts[i]
		opts := c.mustSystemOptions("dynamollm", func(o *core.Options) {
			o.NumPools = n
		})
		res := core.RunWithRepo(tr, opts, repo)
		return Fig13Row{
			Pools:     n,
			EnergyKWh: res.EnergyKWh(),
			TTFTMean:  res.TTFT.Mean(),
			SLOAtt:    res.SLOAttainment(),
		}
	})
}

// --- Figs. 14-16 + cost: long horizons -------------------------------------------

// dayTrace is the 1-day Conversation trace (a Tuesday).
func (c Config) dayTrace() trace.Trace {
	days := simclock.Duration(simclock.Day)
	if c.Quick {
		days = 6 * simclock.Hour
	}
	start := simclock.Time(24 * 3600)
	tr := trace.Generate(trace.GenConfig{
		Service:  trace.Conversation,
		Start:    start,
		Duration: days,
		PeakRPS:  c.PeakRPS,
		Seed:     c.Seed ^ 0xDA4,
	})
	return tr.Window(start, start+simclock.Time(days))
}

// Fig15 runs SinglePool vs DynamoLLM over the 1-day trace on an 11-server
// fleet (§V-D) and returns both results; the energy series (5-minute bins)
// is in Result.EnergySeries.
func (c Config) Fig15() []SystemRun {
	tr := c.dayTrace()
	return c.runSystems(tr, []string{"singlepool", "dynamollm"}, func(o *core.Options) {
		o.Servers = 11
		o.WarmLoad = c.warm(trace.Conversation, simclock.Time(24*3600))
	})
}

// weekPeak thins the week-scale experiments so they run in minutes; the
// reported quantities are ratios, which are insensitive to fleet scale.
func (c Config) weekPeak() float64 {
	p := c.PeakRPS * 0.5
	if c.Quick {
		p = c.PeakRPS * 0.3
	}
	return p
}

// Fig14Row is one service's normalized-energy comparison.
type Fig14Row struct {
	Service trace.Service
	Systems []SystemRun
}

// Fig14 runs the six systems over week-long traces for both services,
// flattening the 2x6 service-by-system grid into a single worker pool.
func (c Config) Fig14() []Fig14Row {
	svcs := []trace.Service{trace.Conversation, trace.Coding}
	sub := c
	sub.PeakRPS = c.weekPeak()
	jobs := make([]gridJob, 0, len(svcs)*len(core.SystemNames))
	for si, svc := range svcs {
		tr := sub.WeekTrace(svc)
		servers := serversFor(tr)
		for _, name := range core.SystemNames {
			opts := sub.mustSystemOptions(name, func(o *core.Options) {
				o.Servers = servers
				o.WarmLoad = sub.warm(svc, 0)
			})
			jobs = append(jobs, gridJob{group: si, tr: tr, name: name, opts: opts})
		}
	}
	groups := sub.gridRuns(jobs, len(svcs))
	out := make([]Fig14Row, len(svcs))
	for i, svc := range svcs {
		out[i] = Fig14Row{Service: svc, Systems: groups[i]}
	}
	return out
}

// serversFor sizes the static fleet for a trace: its peak 30-minute demand
// divided by a mixed-instance capacity, padded for bursts.
func serversFor(tr trace.Trace) int {
	peak := 0.0
	buckets := map[int]float64{}
	for _, e := range tr {
		buckets[int(float64(e.At)/1800)]++
	}
	//dynamolint:order-independent max over values; comparison order cannot change the max
	for _, n := range buckets {
		if r := n / 1800; r > peak {
			peak = r
		}
	}
	const mixedCapacityRPS = 4.0
	n := int(peak/mixedCapacityRPS*1.25) + 1
	if n < 3 {
		n = 3
	}
	return n
}

// Fig16Result holds the week-long carbon comparison.
type Fig16Result struct {
	Baseline, Dynamo             *core.Result
	BaselineKg, DynamoKg         float64
	BaselineSeries, DynamoSeries *metrics.Series
}

// Fig16 convolves the week-long Conversation energy with the CAISO-like
// carbon-intensity trace.
func (c Config) Fig16() Fig16Result {
	sub := c
	sub.PeakRPS = c.weekPeak()
	tr := sub.WeekTrace(trace.Conversation)
	servers := serversFor(tr)
	runs := sub.runSystems(tr, []string{"singlepool", "dynamollm"}, func(o *core.Options) {
		o.Servers = servers
		o.WarmLoad = sub.warm(trace.Conversation, 0)
	})
	res := Fig16Result{Baseline: runs[0].Result, Dynamo: runs[1].Result}
	carbonize := func(r *core.Result) (*energy.CarbonMeter, float64) {
		m := energy.NewCarbonMeter(energy.CAISO)
		for _, p := range r.EnergySeries.Points() {
			m.AddEnergy(simclock.Time(p.Time), p.Value)
		}
		return m, m.Kg()
	}
	var mB, mD *energy.CarbonMeter
	mB, res.BaselineKg = carbonize(res.Baseline)
	mD, res.DynamoKg = carbonize(res.Dynamo)
	res.BaselineSeries = mB.HourlySeries()
	res.DynamoSeries = mD.HourlySeries()
	return res
}

// CostResult is §V-F's user-cost comparison.
type CostResult struct {
	BaselineServers, DynamoServers float64
	BaselineBill, DynamoBill       energy.Cost
	GPUSavingFrac                  float64
	EnergySavingFrac               float64
	TotalSavingFrac                float64
}

// CostAnalysis prices the week-long Conversation runs.
func (c Config) CostAnalysis() CostResult {
	sub := c
	sub.PeakRPS = c.weekPeak()
	tr := sub.WeekTrace(trace.Conversation)
	servers := serversFor(tr)
	runs := sub.runSystems(tr, []string{"singlepool", "dynamollm"}, func(o *core.Options) {
		o.Servers = servers
		o.WarmLoad = sub.warm(trace.Conversation, 0)
	})
	base, dyn := runs[0].Result, runs[1].Result
	out := CostResult{
		BaselineServers: base.AvgServers,
		DynamoServers:   dyn.AvgServers,
		BaselineBill:    energy.DefaultCost.Bill(base.GPUSeconds, base.EnergyJ),
		DynamoBill:      energy.DefaultCost.Bill(dyn.GPUSeconds, dyn.EnergyJ),
	}
	out.GPUSavingFrac = 1 - dyn.GPUSeconds/base.GPUSeconds
	out.EnergySavingFrac = 1 - dyn.EnergyJ/base.EnergyJ
	out.TotalSavingFrac = 1 - out.DynamoBill.Total()/out.BaselineBill.Total()
	return out
}

// Headline aggregates the service-level summary the abstract reports:
// energy, carbon, and cost savings.
type Headline struct {
	EnergySaving, CarbonSaving, CostSaving float64
}

// HeadlineNumbers computes the abstract's three percentages from the
// week-long runs.
func (c Config) HeadlineNumbers() Headline {
	fig16 := c.Fig16()
	cost := CostResult{}
	// Reuse the fig16 runs for cost to avoid re-simulating.
	base, dyn := fig16.Baseline, fig16.Dynamo
	cost.BaselineBill = energy.DefaultCost.Bill(base.GPUSeconds, base.EnergyJ)
	cost.DynamoBill = energy.DefaultCost.Bill(dyn.GPUSeconds, dyn.EnergyJ)
	return Headline{
		EnergySaving: 1 - dyn.EnergyJ/base.EnergyJ,
		CarbonSaving: 1 - fig16.DynamoKg/fig16.BaselineKg,
		CostSaving:   1 - cost.DynamoBill.Total()/cost.BaselineBill.Total(),
	}
}
