package expt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner fans independent simulations out across a bounded pool of worker
// goroutines. Every experiment in this package is embarrassingly parallel —
// the six-system cluster hour, the accuracy/load/pool-count sweeps, the
// week-long service runs — and each simulation is internally deterministic
// given its seed, so the only thing parallelism could perturb is result
// order. The Runner removes that hazard by construction: job i writes only
// slot i of the output, never a completion-ordered position, so rendered
// tables are byte-identical for any Jobs value.
type Runner struct {
	// Jobs bounds the number of simulations in flight at once.
	// Values <= 0 mean runtime.NumCPU().
	Jobs int
}

// limit resolves the effective worker count.
func (r Runner) limit() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.NumCPU()
}

// Do invokes fn(0) .. fn(n-1), each exactly once, with at most r.Jobs
// invocations running concurrently, and returns once all have finished.
// fn must confine its writes to per-index state (e.g. out[i]).
func (r Runner) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.limit()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Collect runs fn for every index and returns the results in index order,
// regardless of which worker finished first.
func Collect[T any](r Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	r.Do(n, func(i int) { out[i] = fn(i) })
	return out
}
