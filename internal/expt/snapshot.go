package expt

import (
	"fmt"
	"strings"

	"dynamollm/internal/core"
	"dynamollm/internal/simclock"
)

// snapshotWindow is the horizon of the snapshot-replay exercise: long
// enough for the dynamollm controller to reshard and scale, short enough
// for CI to run it under the race detector in event fidelity.
const snapshotWindow = simclock.Time(10 * simclock.Minute)

// SnapshotReplay drives the dynamollm system over a trimmed cluster hour
// and renders its final counters. With forked=false the session runs
// straight through; with forked=true it is checkpointed mid-window via
// core.Live.Snapshot and a resumed fork — not the original — is advanced
// to the horizon. The snapshot contract makes the two outputs
// byte-identical under either fidelity backend, which is exactly what the
// CI determinism gate diffs.
func (c Config) SnapshotReplay(forked bool) string {
	tr := c.hourTrace().Window(0, snapshotWindow)
	opts := c.mustSystemOptions("dynamollm", nil)
	live := core.NewLive(tr, opts, c.repo())
	if forked {
		live.AdvanceTo(snapshotWindow / 2)
		live = live.Snapshot().Headless().Resume()
	}
	live.AdvanceTo(snapshotWindow)
	res := live.Finish()

	var b strings.Builder
	fmt.Fprintf(&b, "snapshot replay: dynamollm, %s fidelity, %.0f virtual s\n",
		opts.Fidelity, float64(snapshotWindow))
	fmt.Fprintf(&b, "  requests %d  squashed %d  completed %d  slo_met %d\n",
		res.Requests, res.Squashed, res.Completed, res.SLOMet)
	fmt.Fprintf(&b, "  reshards %d  scale_outs %d  scale_ins %d  freq_changes %d  emergencies %d\n",
		res.Reshards, res.ScaleOuts, res.ScaleIns, res.FreqChanges, res.Emergencies)
	fmt.Fprintf(&b, "  energy_j %.9g  gpu_seconds %.9g\n", res.EnergyJ, res.GPUSeconds)
	fmt.Fprintf(&b, "  ttft_p50 %.9g  ttft_p99 %.9g  tbt_p50 %.9g  tbt_p99 %.9g\n",
		res.TTFT.Percentile(50), res.TTFT.Percentile(99),
		res.TBT.Percentile(50), res.TBT.Percentile(99))
	return b.String()
}
