package lint

import "testing"

func TestMatchPath(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"dynamollm/internal/core", "dynamollm/internal/core", true},
		{"dynamollm/internal/core", "dynamollm/internal/engine", false},
		{"dynamollm/internal/core", "dynamollm/internal/...", true},
		{"dynamollm/internal", "dynamollm/internal/...", true},
		{"dynamollm/internalx", "dynamollm/internal/...", false},
		{"dynamollm/internal/core/sub", "dynamollm/internal/core", false},
	}
	for _, c := range cases {
		if got := matchPath(c.path, c.pattern); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment, marker string
		reason          string
		ok              bool
	}{
		{"//dynamolint:wallclock pacer reads real time", DirWallclock, "pacer reads real time", true},
		{"//dynamolint:wallclock", DirWallclock, "", true},
		{"//dynamolint:wallclock: with colon", DirWallclock, "with colon", true},
		{"// dynamolint:wallclock leading space", DirWallclock, "leading space", true},
		{"//dynamolint:wallclocked not the marker", DirWallclock, "", false},
		{"//snapshot:ignore scratch", DirSnapshotIgnore, "scratch", true},
		{"// plain comment", DirSnapshotIgnore, "", false},
		{"/*conserve:ignore tally*/", DirConserveIgnore, "tally", true},
	}
	for _, c := range cases {
		reason, ok := parseDirective(c.comment, c.marker)
		if ok != c.ok || reason != c.reason {
			t.Errorf("parseDirective(%q, %q) = (%q, %v), want (%q, %v)",
				c.comment, c.marker, reason, ok, c.reason, c.ok)
		}
	}
}

func TestDefaultConfigClassification(t *testing.T) {
	cfg := DefaultConfig()
	for _, det := range []string{"dynamollm/internal/core", "dynamollm/internal/engine", "dynamollm/internal/order"} {
		if !cfg.IsDeterministic(det) {
			t.Errorf("IsDeterministic(%q) = false, want true", det)
		}
		if cfg.IsWallclock(det) {
			t.Errorf("IsWallclock(%q) = true, want false", det)
		}
	}
	for _, wall := range []string{"dynamollm/internal/serve", "dynamollm/internal/simclock"} {
		if !cfg.IsWallclock(wall) {
			t.Errorf("IsWallclock(%q) = false, want true", wall)
		}
		if cfg.IsDeterministic(wall) {
			t.Errorf("IsDeterministic(%q) = true, want false", wall)
		}
	}
	// cmd/ and facade packages are intentionally unclassified.
	if cfg.IsDeterministic("dynamollm") || cfg.IsWallclock("dynamollm/cmd/dynamobench") {
		t.Error("unclassified packages must be neither deterministic nor wallclock")
	}
	if len(cfg.Conserve) == 0 {
		t.Fatal("DefaultConfig has no conserve targets")
	}
	for _, tgt := range cfg.Conserve {
		if tgt.Pkg == "" || tgt.Struct == "" || tgt.Invariant == "" {
			t.Errorf("incomplete conserve target %+v", tgt)
		}
	}
}
