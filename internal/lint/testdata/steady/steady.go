// Package steady is steadystate test input: one annotated hot function
// exercising the allocation blacklist, one unannotated function the
// analyzer must leave alone.
package steady

import "fmt"

type pool struct {
	buf []int
}

// hot is annotated as steady-state: every blacklisted construct in its
// body must be flagged unless a justified alloc-ok waiver governs it.
//
//dynamolint:steadystate
func (p *pool) hot(n int, a, b string) int {
	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
	_ = s
	m := make([]int, n) // want `make allocates`
	q := new(pool)      // want `new allocates`
	_ = q
	_ = map[string]int{}   // want `map literal allocates`
	_ = []int{1}           // want `slice literal allocates`
	_ = append([]int{}, n) // want `slice literal allocates` `append to a fresh literal allocates`
	h := &pool{}           // want `&composite literal allocates when it escapes`
	_ = h
	cb := func() int { return n } // want `closure allocates`
	_ = cb
	c := a + b // want `string concatenation allocates`
	c += a     // want `string concatenation allocates`
	_ = c
	raw := []byte(a) // want `string<->\[\]byte conversion allocates`
	_ = raw
	p.buf = append(p.buf, n) // appending onto the pooled slice: fine
	//dynamolint:alloc-ok
	bad := make([]int, 2) // want `waiver needs a justification`
	_ = bad
	//dynamolint:alloc-ok one-time growth; runs only when the pool is cold
	grown := make([]int, 4)
	_ = grown
	total := 0
	for _, v := range p.buf {
		total += v
	}
	return total + len(m)
}

// cold carries no annotation, so the blacklist does not apply.
func (p *pool) cold() []int {
	return make([]int, 8)
}
