// A wallclock annotation cannot reclassify a deterministic package.
//
//dynamolint:wallclock but the Config says this package is deterministic

package det // want `classified sim-deterministic`

import "time"

// StillWrong keeps reading real time despite the annotation.
func StillWrong() time.Time {
	return time.Now() // want `time\.Now in sim-deterministic package`
}
