// Package det is detrand test input: a package classified
// sim-deterministic by the test Config.
package det

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Clock reads the wall clock, which deterministic code never may.
func Clock() time.Time {
	time.Sleep(time.Millisecond) // want `time\.Sleep in sim-deterministic package`
	return time.Now()            // want `time\.Now in sim-deterministic package`
}

// Rand draws from the process-global generator; a locally seeded one is
// the sanctioned replacement.
func Rand() int {
	r := rand.New(rand.NewSource(1)) // constructors build local state: fine
	_ = r.Intn(10)
	_ = randv2.IntN(3)   // want `global math/rand/v2\.IntN`
	return rand.Intn(10) // want `global math/rand\.Intn`
}

// Maps exercises the map-iteration rule and its waiver grammar.
func Maps(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is random`
		sum += v
	}
	//dynamolint:order-independent summation is commutative
	for _, v := range m {
		sum += v
	}
	//dynamolint:order-independent
	for _, v := range m { // want `waiver needs a justification`
		sum += v
	}
	for i := range []int{1, 2, 3} { // slices iterate in order: fine
		sum += i
	}
	return sum
}

// Goroutines exercises the shared-capture rule: writes to captured
// variables race, index-slotted writes do not.
func Goroutines(results []int) {
	total := 0
	for i := range results {
		go func() {
			total += i // want `goroutine closure writes captured variable "total"`
		}()
		go func(slot int) {
			results[slot] = slot // index-slotted write: fine
		}(i)
	}
	_ = total
}
