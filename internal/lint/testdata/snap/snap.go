// Package snap is snapfields test input: structs on the snapshot/clone
// graph whose clone paths drop, waive, or cover their fields.
package snap

// S is cloned field-by-field; C was forgotten.
type S struct {
	A int
	B []int
	C string // want `field S\.C is not handled by its snapshot/clone path \(Clone\)`
	//snapshot:ignore scratch; rebuilt lazily on first use
	scratch []byte
	//snapshot:ignore
	bad int // want `waiver on S\.bad needs a justification`
}

// Clone copies S explicitly.
func (s *S) Clone() *S {
	return &S{A: s.A, B: append([]int(nil), s.B...)}
}

// W clones by wholesale copy: value fields are covered by the copy
// itself, aliasing fields still need a deep copy (Big was forgotten).
type W struct {
	N    int
	Big  []float64 // want `field W\.Big is not handled by its snapshot/clone path \(CloneW\)`
	Deep map[string]int
}

// CloneW is W's clone path.
func CloneW(w *W) *W {
	nw := *w
	nw.Deep = make(map[string]int, len(w.Deep))
	for k, v := range w.Deep {
		nw.Deep[k] = v
	}
	return &nw
}

// TSnapshot is T's carrier: Snap covers x and y but forgot z.
type TSnapshot struct {
	X int
	Y int
}

// T is snapshotted through TSnapshot.
type T struct {
	x int
	y int
	z int // want `field T\.z is not handled by its snapshot/clone path \(Snap\)`
}

// Snap writes T into its carrier.
func (t *T) Snap() *TSnapshot {
	return &TSnapshot{X: t.x, Y: t.y}
}

// ESnapshot carries E's persisted state.
type ESnapshot struct {
	A int
	B int
}

// E is restored from ESnapshot; the restore constructor's writes count
// as coverage, and the callback is waived by design.
type E struct {
	a      int
	b      int
	notify func() //snapshot:ignore callback; the owner re-binds it after restore
}

// RestoreE rebuilds E from its snapshot.
func RestoreE(s *ESnapshot) *E {
	return &E{a: s.A, b: s.B}
}
