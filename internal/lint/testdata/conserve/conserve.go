// Package conserve is conserve test input: counter structs whose
// invariant functions must reference every integer counter.
package conserve

import "fmt"

// Result mirrors the simulator's counter bank.
type Result struct {
	Requests  int
	Completed int
	Dropped   int // want `counter Result\.Dropped is not checked by CheckInvariants`
	//conserve:ignore diagnostic-only tally; no law relates it to the others
	Probes int
	//conserve:ignore
	Bad int // want `waiver on Result\.Bad needs a justification`
	// Name is not an integer counter and is never audited.
	Name string
}

// CheckInvariants asserts the conservation laws over Result's counters.
func (r *Result) CheckInvariants() error {
	if r.Completed > r.Requests {
		return fmt.Errorf("completed %d exceeds requests %d", r.Completed, r.Requests)
	}
	return nil
}

// Orphan is configured for auditing but has no invariant function.
type Orphan struct { // want `no invariant function CheckOrphan`
	N int
}
