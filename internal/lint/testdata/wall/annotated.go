//dynamolint:wallclock this file paces virtual time against the real clock

package wall

import "time"

// Annotated may read real time: its file carries a justified annotation.
func Annotated() time.Time {
	return time.Now()
}
