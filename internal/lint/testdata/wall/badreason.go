//dynamolint:wallclock

package wall // want `annotation needs a justification`
