// Package wall is detrand test input: a declared wall-clock package
// whose files must still opt in file-by-file.
package wall

import "time"

// Unannotated reads real time in a file without the opt-in annotation.
func Unannotated() time.Time {
	return time.Now() // want `annotate the file with`
}
