package lint

import "testing"

func TestConserve(t *testing.T) {
	runAnalyzerTest(t, NewConserve(), "conserve", "example.com/conserve")
}
