package lint

import "testing"

func TestSteadystate(t *testing.T) {
	runAnalyzerTest(t, NewSteadystate(), "steady", "example.com/steady")
}
