package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallClockMembers are the package time members that read or schedule
// against the real clock. Referencing one (call or function value) in a
// sim-deterministic package breaks byte-identical replay.
var wallClockMembers = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand members that build local,
// explicitly-seeded generators; everything else callable in math/rand
// (Intn, Float64, Shuffle, ...) draws from the process-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// NewDetrand builds the detrand analyzer: sim-deterministic packages
// (Config.Deterministic) must not read wall clocks or global math/rand
// state, must not range over maps without a sorted-key rewrite or an
// order-independence waiver, and goroutine closures must not write
// shared captured variables. Wall-clock packages (Config.Wallclock) may
// read real time, but only in files annotated //dynamolint:wallclock.
func NewDetrand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbid nondeterminism sources (wall clock, global rand, map order, racy captures) in sim-deterministic packages",
	}
	a.Run = runDetrand
	return a
}

func runDetrand(pass *Pass) error {
	det := pass.Config.IsDeterministic(pass.Path)
	wall := pass.Config.IsWallclock(pass.Path)
	if !det && !wall {
		return nil
	}
	for _, f := range pass.Files {
		wallReason, hasWallDir := fileDirective(f, DirWallclock)
		if det && hasWallDir {
			pass.Reportf(f.Name.Pos(),
				"package %s is classified sim-deterministic; a //%s annotation cannot waive it",
				pass.Path, DirWallclock)
		}
		if wall && hasWallDir && wallReason == "" {
			pass.Reportf(f.Name.Pos(),
				"//%s annotation needs a justification (\"//%s <why this file reads real time>\")",
				DirWallclock, DirWallclock)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkClockAndRand(pass, f, n, det, wall, hasWallDir)
			case *ast.RangeStmt:
				if det {
					checkMapRange(pass, f, n)
				}
			case *ast.GoStmt:
				if det {
					checkGoCapture(pass, f, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkClockAndRand(pass *Pass, f *ast.File, sel *ast.SelectorExpr, det, wall, hasWallDir bool) {
	if member, ok := isPkgSelector(pass.Info, sel, "time"); ok && wallClockMembers[member] {
		switch {
		case det:
			pass.Reportf(sel.Pos(),
				"time.%s in sim-deterministic package %s: use the simulation clock (simclock) instead",
				member, pass.Path)
		case wall && !hasWallDir:
			pass.Reportf(sel.Pos(),
				"time.%s in wall-clock package %s: annotate the file with //%s <reason>",
				member, pass.Path, DirWallclock)
		}
		return
	}
	if !det {
		return
	}
	for _, randPath := range []string{"math/rand", "math/rand/v2"} {
		member, ok := isPkgSelector(pass.Info, sel, randPath)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[sel.Sel]
		if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[member] {
			pass.Reportf(sel.Pos(),
				"global %s.%s in sim-deterministic package %s: draw from a seeded local generator (simclock.NewRNG) instead",
				randPath, member, pass.Path)
		}
	}
}

func checkMapRange(pass *Pass, f *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reason, waived := pass.waiverAt(f, rs.Pos(), DirOrderIndependent)
	if waived && reason != "" {
		return
	}
	if waived {
		pass.Reportf(rs.Pos(),
			"//%s waiver needs a justification (\"//%s <why order cannot reach output>\")",
			DirOrderIndependent, DirOrderIndependent)
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order is random in sim-deterministic package %s: iterate sorted keys (internal/order) or waive with //%s <reason>",
		pass.Path, DirOrderIndependent)
}

// checkGoCapture flags goroutine closures that assign to variables
// declared outside the closure: unsynchronized shared writes are both a
// race and a nondeterministic merge order. The sanctioned pattern is an
// index-slotted write (results[i] = ...), which stays legal because the
// indexed element, not the captured slice header, is written.
func checkGoCapture(pass *Pass, f *ast.File, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	report := func(id *ast.Ident) {
		reason, waived := pass.waiverAt(f, id.Pos(), DirOrderIndependent)
		if waived && reason != "" {
			return
		}
		pass.Reportf(id.Pos(),
			"goroutine closure writes captured variable %q in sim-deterministic package %s: slot results by index or waive with //%s <reason>",
			id.Name, pass.Path, DirOrderIndependent)
	}
	isCaptured := func(id *ast.Ident) bool {
		if id.Name == "_" {
			return false
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isCaptured(id) {
					report(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && isCaptured(id) {
				report(id)
			}
		}
		return true
	})
}
