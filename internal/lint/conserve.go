package lint

import (
	"go/ast"
	"go/types"
)

// NewConserve builds the conserve analyzer: every integer counter field
// on the configured counter structs (core.Result, engine.Counters) must
// be referenced by that struct's conservation-invariant function
// (CheckInvariants / CheckLaws) or carry //conserve:ignore <reason>, so
// a newly added counter cannot silently bypass the invariant suite.
func NewConserve() *Analyzer {
	a := &Analyzer{
		Name: "conserve",
		Doc:  "integer counters on conservation-audited structs must be checked by the invariant function or waived with //conserve:ignore",
	}
	a.Run = runConserve
	return a
}

func runConserve(pass *Pass) error {
	for _, tgt := range pass.Config.Conserve {
		if tgt.Pkg != pass.Path {
			continue
		}
		checkConserveTarget(pass, tgt)
	}
	return nil
}

func checkConserveTarget(pass *Pass, tgt ConserveTarget) {
	obj, ok := pass.Pkg.Scope().Lookup(tgt.Struct).(*types.TypeName)
	if !ok {
		pass.Reportf(pass.Files[0].Name.Pos(),
			"conserve target %s.%s not found in package %s", tgt.Struct, tgt.Invariant, pass.Path)
		return
	}
	strct, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "conserve target %s is not a struct", tgt.Struct)
		return
	}

	// Locate the invariant: a method on the struct or a package func.
	var inv *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name != tgt.Invariant {
				continue
			}
			if fn.Recv != nil {
				tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
				if !ok || namedStructOf(tv.Type) != obj.Type() {
					continue
				}
			}
			inv = fn
		}
	}
	if inv == nil {
		pass.Reportf(obj.Pos(),
			"conserve target %s has no invariant function %s: add it so counters stay auditable",
			tgt.Struct, tgt.Invariant)
		return
	}

	fieldIdx := map[*types.Var]int{}
	for i := 0; i < strct.NumFields(); i++ {
		fieldIdx[strct.Field(i)] = i
	}
	covered := make([]bool, strct.NumFields())
	ast.Inspect(inv.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.Ident:
			if v, ok := pass.Info.Uses[node].(*types.Var); ok {
				if i, ok := fieldIdx[v]; ok {
					covered[i] = true
				}
			}
		case *ast.SelectorExpr:
			if named, ok := obj.Type().(*types.Named); ok {
				if i, ok := promotedFieldHop(pass, node, named); ok && i < len(covered) {
					covered[i] = true
				}
			}
		}
		return true
	})

	for i := 0; i < strct.NumFields(); i++ {
		field := strct.Field(i)
		if covered[i] || !isCounterType(field.Type()) {
			continue
		}
		f := fileFor(pass, field.Pos())
		if f != nil {
			reason, waived := pass.waiverAt(f, field.Pos(), DirConserveIgnore)
			if waived && reason != "" {
				continue
			}
			if waived {
				pass.Reportf(field.Pos(),
					"//%s waiver on %s.%s needs a justification", DirConserveIgnore, tgt.Struct, field.Name())
				continue
			}
		}
		pass.Reportf(field.Pos(),
			"counter %s.%s is not checked by %s: add an invariant or waive with //%s <reason>",
			tgt.Struct, field.Name(), tgt.Invariant, DirConserveIgnore)
	}
}

// isCounterType reports whether t is an integer counter: an integer, or
// a fixed array of integers (per-class counter banks).
func isCounterType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0
	case *types.Array:
		return isCounterType(u.Elem())
	}
	return false
}
