package lint

import "strings"

// Waiver and annotation directives. Every waiver must carry a
// justification after the marker; a bare marker is itself a finding.
// DESIGN.md ("Static analysis") documents the grammar.
const (
	// DirWallclock is a file-level annotation declaring that a file in a
	// wall-clock package intentionally reads real time.
	DirWallclock = "dynamolint:wallclock"
	// DirOrderIndependent waives one map-range (or one shared-write
	// goroutine capture) whose effect provably cannot reach output.
	DirOrderIndependent = "dynamolint:order-independent"
	// DirSteadyState marks a function as part of the zero-alloc steady
	// path; its body is checked against the allocation blacklist.
	DirSteadyState = "dynamolint:steadystate"
	// DirAllocOK waives one blacklisted allocation inside a steady-state
	// function (e.g. a cold error path).
	DirAllocOK = "dynamolint:alloc-ok"
	// DirSnapshotIgnore waives one struct field from snapshot/clone
	// coverage (e.g. a pure-function cache rebuilt on demand).
	DirSnapshotIgnore = "snapshot:ignore"
	// DirConserveIgnore waives one counter field from the conservation
	// invariant suite.
	DirConserveIgnore = "conserve:ignore"
)

// A ConserveTarget names one counter struct and the invariant function
// that must reference every one of its integer fields.
type ConserveTarget struct {
	// Pkg is the import path holding both the struct and the invariant.
	Pkg string
	// Struct is the counter-carrying struct's type name.
	Struct string
	// Invariant is the name of the method on Struct (preferred) or the
	// package-level function that asserts the conservation laws.
	Invariant string
}

// Config classifies the module's packages for the analyzers. It is the
// single shared source of truth ("package-classification config") that
// cmd/dynamolint and the analyzer tests both consume.
type Config struct {
	// ModulePath is the module's import-path prefix ("dynamollm").
	ModulePath string

	// Deterministic lists import paths (exact or prefix/... patterns)
	// whose code must be bit-reproducible: no wall clocks, no global
	// math/rand, no unordered map iteration, no shared-write goroutine
	// captures.
	Deterministic []string

	// Wallclock lists import paths that legitimately touch real time
	// (the serving pacer and the sim clock's wall adapter). Files in
	// these packages that use wall-clock APIs must carry a
	// //dynamolint:wallclock annotation naming why.
	Wallclock []string

	// Conserve lists the counter structs the conserve analyzer audits.
	Conserve []ConserveTarget
}

// DefaultConfig returns the classification for this repository.
func DefaultConfig() *Config {
	return &Config{
		ModulePath: "dynamollm",
		Deterministic: []string{
			"dynamollm/internal/core",
			"dynamollm/internal/engine",
			"dynamollm/internal/scenario",
			"dynamollm/internal/expt",
			"dynamollm/internal/trace",
			"dynamollm/internal/workload",
			"dynamollm/internal/metrics",
			"dynamollm/internal/predict",
			"dynamollm/internal/solver",
			"dynamollm/internal/reshard",
			"dynamollm/internal/order",
		},
		Wallclock: []string{
			"dynamollm/internal/serve",
			"dynamollm/internal/simclock",
		},
		Conserve: []ConserveTarget{
			{Pkg: "dynamollm/internal/core", Struct: "Result", Invariant: "CheckInvariants"},
			{Pkg: "dynamollm/internal/engine", Struct: "Counters", Invariant: "CheckLaws"},
		},
	}
}

// matchPath reports whether path matches pattern: exact, or a
// "prefix/..." subtree pattern.
func matchPath(path, pattern string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == sub || strings.HasPrefix(path, sub+"/")
	}
	return path == pattern
}

// IsDeterministic reports whether the import path is classified
// sim-deterministic.
func (c *Config) IsDeterministic(path string) bool {
	for _, p := range c.Deterministic {
		if matchPath(path, p) {
			return true
		}
	}
	return false
}

// IsWallclock reports whether the import path is a declared wall-clock
// package.
func (c *Config) IsWallclock(path string) bool {
	for _, p := range c.Wallclock {
		if matchPath(path, p) {
			return true
		}
	}
	return false
}
