package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, file-name order
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source. Standard
// library imports are resolved by the compiler-independent "source"
// importer (works offline, needs only GOROOT/src); intra-module imports
// are resolved recursively by the loader itself, so the whole module
// type-checks without export data, a build cache, or network access.
type Loader struct {
	ModuleRoot string // absolute path of the module root directory
	ModulePath string // module import path ("dynamollm")

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modulePath string) *Loader {
	// The source importer consults go/build's default context; cgo
	// packages (net, os/user) must resolve to their pure-Go fallbacks.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer over both module and stdlib paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path to its directory under the module root.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// pathFor maps a module directory back to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one module package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer func() { l.busy[path] = false }()

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the non-test Go files of dir in name order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPackages resolves the patterns ("./...", "./internal/core", an
// import path, or a directory) against the module and loads every
// matching package, in import-path order. Directories without Go files
// (and testdata/hidden subtrees) are skipped.
func (l *Loader) LoadPackages(patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModuleRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if strings.HasPrefix(root, l.ModulePath) {
				root = l.dirFor(root)
			} else {
				root = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(root, "./")))
			}
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, l.ModulePath):
			dirs[l.dirFor(pat)] = true
		default:
			abs := pat
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			dirs[filepath.Clean(abs)] = true
		}
	}
	var paths []string
	for dir := range dirs {
		names, err := goFilesIn(dir)
		if err != nil || len(names) == 0 {
			continue
		}
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// walk collects candidate package directories under root.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

// Run applies each analyzer to each package and returns all diagnostics
// in (package, file, line) order.
func Run(cfg *Config, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Config:   cfg,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			all = append(all, pass.Diagnostics()...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}
