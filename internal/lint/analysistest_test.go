package lint

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The analyzer tests mirror golang.org/x/tools/go/analysis/analysistest:
// each corpus under testdata/ is a self-contained package whose sources
// carry // want `regex` comments on the lines where a diagnostic must be
// reported. A test fails on any unmatched want and on any diagnostic no
// want expects, so the corpora pin both directions of every rule.

// testConfig classifies the testdata corpora the way DefaultConfig
// classifies the real module.
func testConfig() *Config {
	return &Config{
		ModulePath:    "example.com",
		Deterministic: []string{"example.com/det"},
		Wallclock:     []string{"example.com/wall"},
		Conserve: []ConserveTarget{
			{Pkg: "example.com/conserve", Struct: "Result", Invariant: "CheckInvariants"},
			{Pkg: "example.com/conserve", Struct: "Orphan", Invariant: "CheckOrphan"},
		},
	}
}

// loadTestPackage parses and type-checks testdata/<dir> as the package
// path, mirroring Loader.load for out-of-module sources.
func loadTestPackage(t *testing.T, dir, path string) *Package {
	t.Helper()
	build.Default.CgoEnabled = false
	abs := filepath.Join("testdata", dir)
	names, err := goFilesIn(abs)
	if err != nil {
		t.Fatalf("listing %s: %v", abs, err)
	}
	if len(names) == 0 {
		t.Fatalf("no Go files in %s", abs)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: abs, Fset: fset, Files: files, Pkg: tpkg, Info: info}
}

// expectation is one // want `regex` assertion at a source line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantArg extracts the backtick-quoted patterns of a want comment.
var wantArg = regexp.MustCompile("`([^`]*)`")

// wantsIn collects the corpus's want assertions.
func wantsIn(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArg.FindAllStringSubmatch(text[len("want "):], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment (no `pattern`): %s", pos.Filename, pos.Line, text)
				}
				for _, m := range args {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	return wants
}

// runAnalyzerTest loads the corpus, runs the analyzer, and reconciles
// diagnostics against the want assertions in both directions.
func runAnalyzerTest(t *testing.T, a *Analyzer, dir, path string) {
	t.Helper()
	pkg := loadTestPackage(t, dir, path)
	wants := wantsIn(t, pkg)
	pass := &Pass{
		Analyzer: a,
		Config:   testConfig(),
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, path, err)
	}
	for _, d := range pass.Diagnostics() {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.raw)
		}
	}
}
