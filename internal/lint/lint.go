// Package lint is dynamolint: a project-specific static-analysis suite
// that turns the simulator's load-bearing runtime contracts into
// compile-time contracts. Four analyzers enforce them:
//
//   - detrand: sim-deterministic packages must not read wall clocks,
//     global math/rand state, or unordered map iteration, and goroutine
//     closures must not write shared captured variables (Determinism
//     rests on byte-identical parallel/sequential runs).
//   - snapfields: every struct in the snapshot/clone graph must copy all
//     of its fields (or waive them), killing the silently-dropped-field
//     bug class that mid-swap snapshot tests can only hunt dynamically.
//   - conserve: every integer counter on core.Result and engine.Counters
//     must be referenced by the conservation invariant suite, so new
//     counters cannot bypass CheckInvariants/CheckLaws.
//   - steadystate: functions annotated //dynamolint:steadystate (the
//     tick loop, the engine clock-event path, the KV swap path) are
//     checked against an allocation blacklist, extending the single
//     -scenario TestTickLoopAllocationFree assertion to whole paths.
//
// The suite is intentionally built on the standard library's go/ast +
// go/types only (see load.go): the module has zero external
// dependencies, and golang.org/x/tools/go/analysis would be its first.
// The Analyzer/Pass/Diagnostic surface below mirrors go/analysis
// closely enough that porting onto it later is mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite can be ported to
// the real framework if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and
// collects the diagnostics the analyzer reports against it.
type Pass struct {
	Analyzer *Analyzer
	Config   *Config
	Fset     *token.FileSet
	Path     string // import path of the package under analysis
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags    []Diagnostic
	comments map[*ast.File]commentIndex
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the findings reported so far, in file/line order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// commentIndex maps source lines to the comment text that governs them:
// a comment on line N waives findings on line N and on line N+1 (i.e.
// both end-of-line and stand-alone-line waiver placement work).
type commentIndex struct {
	byLine map[int][]string
}

func (p *Pass) commentsFor(f *ast.File) commentIndex {
	if p.comments == nil {
		p.comments = make(map[*ast.File]commentIndex)
	}
	if ci, ok := p.comments[f]; ok {
		return ci
	}
	ci := commentIndex{byLine: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := p.Fset.Position(c.Pos()).Line
			ci.byLine[line] = append(ci.byLine[line], c.Text)
		}
	}
	p.comments[f] = ci
	return ci
}

// waiverAt reports whether a waiver directive with the given marker
// governs the source line holding pos — either on that line itself or on
// the line directly above it — and returns the justification text that
// follows the marker. ok is false when the marker is absent; ok true
// with empty reason means the waiver is malformed (no justification).
func (p *Pass) waiverAt(f *ast.File, pos token.Pos, marker string) (reason string, ok bool) {
	ci := p.commentsFor(f)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, text := range ci.byLine[l] {
			if r, found := parseDirective(text, marker); found {
				return r, true
			}
		}
	}
	return "", false
}

// parseDirective extracts "<marker> <reason>" from one comment's text.
func parseDirective(comment, marker string) (reason string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if text == marker {
		return "", true
	}
	if strings.HasPrefix(text, marker) {
		rest := text[len(marker):]
		if rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':' {
			return strings.TrimSpace(strings.TrimPrefix(rest, ":")), true
		}
	}
	return "", false
}

// fileDirective reports whether any comment in the file's header (before
// or attached to the package clause, or anywhere at file scope) carries
// the marker, returning its justification.
func fileDirective(f *ast.File, marker string) (reason string, ok bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if r, found := parseDirective(c.Text, marker); found {
				return r, true
			}
		}
	}
	return "", false
}

// funcDirective reports whether the function's doc comment (or a comment
// in the gap right above it) carries the marker.
func (p *Pass) funcDirective(f *ast.File, fn *ast.FuncDecl, marker string) (reason string, ok bool) {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if r, found := parseDirective(c.Text, marker); found {
				return r, true
			}
		}
	}
	// A detached directive line between the doc comment and the func
	// keyword still governs the function.
	return p.waiverAt(f, fn.Pos(), marker)
}

// pkgObjOf resolves an identifier to the package it names, if it is an
// import reference (e.g. the "time" in time.Now).
func pkgObjOf(info *types.Info, id *ast.Ident) *types.Package {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported()
	}
	return nil
}

// selectorCall matches expr against pkgpath.Name and returns true when
// expr is a selector onto that package member.
func isPkgSelector(info *types.Info, expr ast.Expr, pkgPath string) (member string, ok bool) {
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", false
	}
	if pkg := pkgObjOf(info, id); pkg != nil && pkg.Path() == pkgPath {
		return sel.Sel.Name, true
	}
	return "", false
}
