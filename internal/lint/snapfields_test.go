package lint

import "testing"

func TestSnapfields(t *testing.T) {
	runAnalyzerTest(t, NewSnapfields(), "snap", "example.com/snap")
}
