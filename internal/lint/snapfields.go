package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewSnapfields builds the snapfields analyzer: for every struct that
// participates in the snapshot/clone graph — it has a Clone, Snapshot,
// or FromSnapshot-style method, or a clone*/snap*/restore*/resume*
// helper takes it as first argument — every field must be referenced
// somewhere in those functions or carry //snapshot:ignore <reason>.
// When the function copies the whole struct (n := *r), value-typed
// fields are covered by the copy and only aliasing fields (pointers,
// slices, maps, chans, funcs, interfaces, and containers thereof) still
// need an explicit deep-copy reference.
func NewSnapfields() *Analyzer {
	a := &Analyzer{
		Name: "snapfields",
		Doc:  "every field of a cloned/snapshotted struct must be handled by its clone path or waived with //snapshot:ignore",
	}
	a.Run = runSnapfields
	return a
}

// snapFuncPrefixes classify a function as part of a struct's clone path
// by name (lower-cased match).
var snapFuncPrefixes = []string{"clone", "snap", "restore", "resume", "fromsnapshot"}

func isSnapFuncName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range snapFuncPrefixes {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// snapTarget is one struct under audit plus its clone-path functions.
type snapTarget struct {
	name   *types.TypeName
	strct  *types.Struct
	funcs  []*ast.FuncDecl
	fnames []string
}

func runSnapfields(pass *Pass) error {
	targets := map[*types.TypeName]*snapTarget{}
	addFunc := func(t types.Type, fn *ast.FuncDecl) {
		named := namedStructOf(t)
		if named == nil {
			return
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			return
		}
		tgt := targets[named.Obj()]
		if tgt == nil {
			tgt = &snapTarget{name: named.Obj(), strct: strct}
			targets[named.Obj()] = tgt
		}
		tgt.funcs = append(tgt.funcs, fn)
		tgt.fnames = append(tgt.fnames, fn.Name.Name)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isSnapFuncName(fn.Name.Name) {
				continue
			}
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				// A method is a clone path for its receiver when it
				// returns the receiver type or a snapshot carrier
				// (Engine.Snapshot() *Snapshot, Dist.Clone() *Dist), or
				// the receiver itself is a carrier being restored
				// (LiveSnapshot.Resume() *Live). Methods that merely
				// share the name prefix (Config.SnapshotReplay running
				// an experiment) are not.
				if tv, ok := pass.Info.Types[fn.Recv.List[0].Type]; ok {
					recv := namedStructOf(tv.Type)
					if recv != nil && (returnsType(pass, fn, recv) ||
						returnsSnapshotCarrier(pass, fn) || isSnapshotCarrier(recv)) {
						addFunc(tv.Type, fn)
					}
				}
				continue
			}
			// Package-level helper: it audits a parameter struct T only
			// when it demonstrably clones or restores it — it returns T
			// (clone direction: cloneResult(*Result) *Result, or
			// snapSeq(*seqState) SeqSnapshot, whose return carries the
			// copied fields), or T itself is a snapshot-carrier struct
			// being read back (FromSnapshot(*Snapshot, ...)). Plain
			// config parameters of restore-style constructors
			// (Restore(cfg Config)) are not clone targets.
			if fn.Type.Params == nil {
				continue
			}
			for _, p := range fn.Type.Params.List {
				tv, ok := pass.Info.Types[p.Type]
				if !ok {
					continue
				}
				named := namedStructOf(tv.Type)
				if named == nil {
					continue
				}
				if returnsType(pass, fn, named) || returnsSnapshotCarrier(pass, fn) ||
					isSnapshotCarrier(named) {
					addFunc(tv.Type, fn)
				}
			}
			// A restore-style constructor (FromSnapshot(*Snapshot) *Engine)
			// is part of the returned struct's clone path too: the fields
			// it rebuilds count as handled. Only applies when a snapshot
			// carrier is actually being read back — Restore(cfg Config)
			// building a fresh Session is construction, not cloning.
			if hasSnapshotCarrierParam(pass, fn) && fn.Type.Results != nil {
				for _, r := range fn.Type.Results.List {
					if tv, ok := pass.Info.Types[r.Type]; ok {
						addFunc(tv.Type, fn)
					}
				}
			}
		}
	}

	names := make([]*types.TypeName, 0, len(targets))
	for tn := range targets {
		names = append(names, tn)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Pos() < names[j].Pos() })
	for _, tn := range names {
		checkSnapTarget(pass, targets[tn])
	}
	return nil
}

func checkSnapTarget(pass *Pass, tgt *snapTarget) {
	n := tgt.strct.NumFields()
	if n == 0 {
		return
	}
	fieldIdx := map[*types.Var]int{}
	for i := 0; i < n; i++ {
		fieldIdx[tgt.strct.Field(i)] = i
	}
	covered := make([]bool, n)
	wholesale := false
	named, ok := tgt.name.Type().(*types.Named)
	if !ok {
		return
	}
	for _, fn := range tgt.funcs {
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.Ident:
				// Selector .Sel idents and keyed-literal field keys both
				// resolve, via Uses, to the field object they touch.
				if v, ok := pass.Info.Uses[node].(*types.Var); ok {
					if i, ok := fieldIdx[v]; ok {
						covered[i] = true
					}
				}
			case *ast.SelectorExpr:
				// Promoted selections through an embedded field cover the
				// embedded field itself.
				if i, ok := promotedFieldHop(pass, node, named); ok && i < len(covered) {
					covered[i] = true
				}
			case *ast.StarExpr:
				// n := *r — a wholesale value copy of the struct.
				if tv, ok := pass.Info.Types[node]; ok && namedStructOf(tv.Type) == named {
					if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
						wholesale = true
					}
				}
			case *ast.AssignStmt:
				// clone := d — value-receiver wholesale copy.
				for _, rhs := range node.Rhs {
					if id, ok := rhs.(*ast.Ident); ok {
						if tv, ok := pass.Info.Types[id]; ok && namedStructOf(tv.Type) == named {
							if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
								wholesale = true
							}
						}
					}
				}
			}
			return true
		})
	}

	sort.Strings(tgt.fnames)
	for i := 0; i < n; i++ {
		if covered[i] {
			continue
		}
		field := tgt.strct.Field(i)
		if wholesale && !aliases(field.Type(), nil) {
			continue // copied by value, nothing to deep-copy
		}
		f := fileFor(pass, field.Pos())
		if f != nil {
			reason, waived := pass.waiverAt(f, field.Pos(), DirSnapshotIgnore)
			if waived && reason != "" {
				continue
			}
			if waived {
				pass.Reportf(field.Pos(),
					"//%s waiver on %s.%s needs a justification", DirSnapshotIgnore, tgt.name.Name(), field.Name())
				continue
			}
		}
		pass.Reportf(field.Pos(),
			"field %s.%s is not handled by its snapshot/clone path (%s): copy it or waive with //%s <reason>",
			tgt.name.Name(), field.Name(), strings.Join(tgt.fnames, ", "), DirSnapshotIgnore)
	}
}

// promotedFieldHop returns the direct-field index a selection on the
// named struct steps through. A single-hop selection counts only when it
// selects a field; a multi-hop (promoted) selection's first hop is
// always a field of the outer struct. Direct method selections (whose
// single index is a method-set position) never count.
func promotedFieldHop(pass *Pass, sel *ast.SelectorExpr, named *types.Named) (int, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || namedStructOf(s.Recv()) != named || len(s.Index()) == 0 {
		return 0, false
	}
	if len(s.Index()) == 1 {
		if _, isField := s.Obj().(*types.Var); !isField {
			return 0, false
		}
	}
	return s.Index()[0], true
}

// returnsType reports whether fn returns named (or a pointer to it).
func returnsType(pass *Pass, fn *ast.FuncDecl, named *types.Named) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, r := range fn.Type.Results.List {
		if tv, ok := pass.Info.Types[r.Type]; ok && namedStructOf(tv.Type) == named {
			return true
		}
	}
	return false
}

// isSnapshotCarrier reports whether the named struct is, by name, a
// serialized-state carrier (Snapshot, SeqSnapshot, LiveSnapshot,
// CheckpointFile, ...).
func isSnapshotCarrier(named *types.Named) bool {
	l := strings.ToLower(named.Obj().Name())
	return strings.Contains(l, "snapshot") || strings.Contains(l, "checkpoint")
}

func returnsSnapshotCarrier(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, r := range fn.Type.Results.List {
		if tv, ok := pass.Info.Types[r.Type]; ok {
			if named := namedStructOf(tv.Type); named != nil && isSnapshotCarrier(named) {
				return true
			}
		}
	}
	return false
}

func hasSnapshotCarrierParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		if tv, ok := pass.Info.Types[p.Type]; ok {
			if named := namedStructOf(tv.Type); named != nil && isSnapshotCarrier(named) {
				return true
			}
		}
	}
	return false
}

// namedStructOf unwraps pointers and returns the named type when t is a
// named struct (or pointer to one), else nil.
func namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// aliases reports whether a value of type t shares state with its copy
// (so a wholesale struct copy is not a faithful clone of it).
func aliases(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return aliases(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliases(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// fileFor returns the syntax file containing pos.
func fileFor(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
