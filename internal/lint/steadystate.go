package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewSteadystate builds the steadystate analyzer: functions annotated
// //dynamolint:steadystate (the tick loop, the engine clock-event path,
// the KV/tier swap path) must not execute constructs from the
// allocation blacklist — fmt calls, string concatenation, map/slice
// literals and makes, new, escaping &T{} literals, closures, appends to
// fresh slices, and string<->[]byte conversions. A cold sub-path (error
// construction, one-time growth) is waived line-by-line with
// //dynamolint:alloc-ok <reason>. This extends the single-scenario
// TestTickLoopAllocationFree assertion to every annotated path at
// compile time.
func NewSteadystate() *Analyzer {
	a := &Analyzer{
		Name: "steadystate",
		Doc:  "functions annotated //dynamolint:steadystate must avoid the allocation blacklist or waive lines with //dynamolint:alloc-ok",
	}
	a.Run = runSteadystate
	return a
}

func runSteadystate(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, annotated := pass.funcDirective(f, fn, DirSteadyState); !annotated {
				continue
			}
			checkSteadyFunc(pass, f, fn)
		}
	}
	return nil
}

func checkSteadyFunc(pass *Pass, f *ast.File, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		reason, waived := pass.waiverAt(f, pos, DirAllocOK)
		if waived && reason != "" {
			return
		}
		if waived {
			pass.Reportf(pos, "//%s waiver needs a justification", DirAllocOK)
			return
		}
		args = append(args, fn.Name.Name, DirAllocOK)
		pass.Reportf(pos, format+" in steady-state func %s: hoist, pool, or waive with //%s <reason>", args...)
	}
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			checkSteadyCall(pass, report, node)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(pass, node) {
				report(node.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isStringType(pass, node.Lhs[0]) {
				report(node.TokPos, "string concatenation allocates")
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[node]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(node.Pos(), "map literal allocates")
				case *types.Slice:
					report(node.Pos(), "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					report(node.Pos(), "&composite literal allocates when it escapes")
				}
			}
		case *ast.FuncLit:
			report(node.Pos(), "closure allocates")
			return false // the closure body runs under its own budget
		}
		return true
	})
}

func checkSteadyCall(pass *Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	// Conversions: string([]byte) and []byte(string) copy their operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringByteConv(pass, tv.Type, call.Args[0]) {
			report(call.Pos(), "string<->[]byte conversion allocates")
		}
		return
	}
	if member, ok := isPkgSelector(pass.Info, call.Fun, "fmt"); ok {
		report(call.Pos(), "fmt."+member+" allocates")
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
		switch b.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			// Appending onto an existing, pooled slice is amortized-free
			// in steady state; appending onto nil or a fresh literal is a
			// guaranteed allocation.
			if len(call.Args) > 0 {
				switch base := call.Args[0].(type) {
				case *ast.Ident:
					if base.Name == "nil" {
						report(call.Pos(), "append to nil allocates")
					}
				case *ast.CompositeLit:
					report(call.Pos(), "append to a fresh literal allocates")
				}
			}
		}
	}
}

func isStringType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports whether converting arg to target crosses the
// string/byte-slice boundary (either direction).
func isStringByteConv(pass *Pass, target types.Type, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	return (isStringOrBytes(target) && isStringOrBytes(tv.Type)) &&
		isString(target) != isString(tv.Type)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringOrBytes(t types.Type) bool {
	if isString(t) {
		return true
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
