package lint

import "testing"

func TestDetrandDeterministicPackage(t *testing.T) {
	runAnalyzerTest(t, NewDetrand(), "det", "example.com/det")
}

func TestDetrandWallclockPackage(t *testing.T) {
	runAnalyzerTest(t, NewDetrand(), "wall", "example.com/wall")
}

func TestDetrandIgnoresUnclassifiedPackages(t *testing.T) {
	pkg := loadTestPackage(t, "det", "example.com/unclassified")
	pass := &Pass{
		Analyzer: NewDetrand(),
		Config:   testConfig(),
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	if err := pass.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	if ds := pass.Diagnostics(); len(ds) != 0 {
		t.Fatalf("unclassified package produced %d diagnostics, want 0; first: %v", len(ds), ds[0])
	}
}
