// Package perfmodel is the analytic performance substrate of the DynamoLLM
// reproduction: a roofline-style model of one vLLM-like inference instance
// (continuous batching with chunked prefill) running an LLM at a given
// tensor parallelism and GPU frequency.
//
// The paper measures a real DGX H100; we replace it with this calibrated
// model. Everything the controllers observe — iteration latency (TBT),
// prefill latency (TTFT), throughput capacity, SM utilization, and power —
// derives from the functions here, so calibrating this package against the
// shapes of Tables I–III calibrates the whole system.
//
// Latency model for one engine iteration that prefills nPrefill prompt
// tokens and decodes one token for each of B resident sequences holding
// ctxTokens total KV context:
//
//	tIter = tComm(TP) + tLaunch(f) + max(tCompute, tMemory)
//	tCompute = 2·activeParams·(nPrefill + B) / (TP·eff(TP)·C·fn)
//	tMemory  = (touchedWeightBytes + ctxTokens·kvBytes) / (TP·Bw·memScale(fn))
//
// Prefill is compute-bound (scales with clock), decode is memory-bound
// (weights are re-read every iteration; bandwidth is only mildly
// clock-sensitive). Communication is two all-reduces per layer over NVLink
// and does not scale with GPU clock.
package perfmodel

import (
	"math"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/workload"
)

// Calibration constants. These are the "measured machine": achieved (not
// peak-datasheet) rates on H100, chosen so the model lands in the paper's
// reported ranges (decode iterations of 20–30 ms for Llama2-70B, TTFT SLOs
// at 5× isolated latency, ~19% energy savings from DVFS alone).
const (
	// CompPerGPU is achieved FP16 FLOP/s per GPU at max clock.
	CompPerGPU = 395e12
	// MemBwPerGPU is achieved HBM bandwidth per GPU in bytes/s.
	MemBwPerGPU = 1.4e12
	// MemFreqFloor is the fraction of bandwidth retained as the core
	// clock approaches zero: achieved bandwidth = floor + (1-floor)·fn.
	MemFreqFloor = 0.32
	// PrefillChunk is the max prompt tokens an iteration admits
	// (chunked prefill, SARATHI-style), bounding decode-latency impact.
	PrefillChunk = 512
	// LaunchPerLayer is the per-layer kernel launch/scheduling overhead
	// at max clock, in seconds; it scales partially with clock.
	LaunchPerLayer = 6e-6
	// StallUtilWeight is the effective SM utilization while the GPU is
	// stalled on memory: some warps still issue, so dynamic power is not
	// zero during the memory-bound portion.
	StallUtilWeight = 0.22
	// MoEBatchSaturation is the batch size at which a mixture-of-experts
	// model touches essentially all experts each iteration.
	MoEBatchSaturation = 16
)

// compEff is the tensor-parallel scaling efficiency of compute: all-reduce
// exposure and kernel-size shrinkage cost more at higher degrees.
func compEff(tp model.TP) float64 {
	switch tp {
	case model.TP1:
		return 1.0
	case model.TP2:
		return 0.94
	case model.TP4:
		return 0.86
	case model.TP8:
		return 0.74
	}
	return 1.0
}

// commPerLayer is the per-layer all-reduce latency (two all-reduces) in
// seconds, independent of GPU core clock (NVLink-bound).
func commPerLayer(tp model.TP) float64 {
	switch tp {
	case model.TP1:
		return 0
	case model.TP2:
		return 9e-6
	case model.TP4:
		return 14e-6
	case model.TP8:
		return 22e-6
	}
	return 0
}

// Config identifies one instance configuration: the knob settings the
// controllers manipulate.
type Config struct {
	Model *model.Model
	TP    model.TP
	Freq  gpu.Freq
}

// Feasible reports whether the model fits at this parallelism.
func (c Config) Feasible() bool { return c.Model.FeasibleTP(c.TP) }

// GPUs returns the GPU count of the configuration.
func (c Config) GPUs() int { return c.TP.GPUs() }

// fn returns the normalized clock.
func (c Config) fn() float64 { return gpu.FracOfMax(c.Freq) }

// memScale returns the achieved-bandwidth factor at this clock.
func (c Config) memScale() float64 {
	return MemFreqFloor + (1-MemFreqFloor)*c.fn()
}

// compRate returns the instance's achieved FLOP/s.
func (c Config) compRate() float64 {
	return float64(c.GPUs()) * compEff(c.TP) * CompPerGPU * c.fn()
}

// memRate returns the instance's achieved bytes/s.
func (c Config) memRate() float64 {
	return float64(c.GPUs()) * MemBwPerGPU * c.memScale()
}

// launchTime returns fixed per-iteration overhead (kernel launches and
// scheduling across all layers). Roughly 40% of it is host-side and clock
// independent; the rest follows the GPU clock.
func (c Config) launchTime() float64 {
	perLayer := LaunchPerLayer * (0.4 + 0.6/c.fn())
	return float64(c.Model.Layers) * perLayer
}

// commTime returns the per-iteration all-reduce time.
func (c Config) commTime() float64 {
	return float64(c.Model.Layers) * commPerLayer(c.TP)
}

// touchedWeights returns the weight bytes read per iteration. Dense models
// read the full shard set; MoE models read the active experts at small
// batch, approaching all experts as the batch grows.
func (c Config) touchedWeights(batch float64) float64 {
	s := c.Model.Sparsity()
	if s >= 1 {
		return c.Model.WeightBytes
	}
	frac := s + (1-s)*math.Min(1, batch/MoEBatchSaturation)
	return c.Model.WeightBytes * frac
}

// Batch describes the work admitted to one engine iteration.
type Batch struct {
	// PrefillTokens is the number of prompt tokens processed.
	PrefillTokens float64
	// DecodeSeqs is the number of sequences generating one token each.
	DecodeSeqs float64
	// ContextTokens is the total resident KV context across all
	// sequences in the batch (prefill and decode).
	ContextTokens float64
}

// IterResult reports the cost of one iteration.
type IterResult struct {
	// Time is the iteration latency in seconds.
	Time float64
	// Util is the effective SM utilization for the power model.
	Util float64
	// MemoryBound reports whether the memory roofline dominated.
	MemoryBound bool
}

// Iter evaluates one engine iteration under the configuration.
func (c Config) Iter(b Batch) IterResult {
	tokens := b.PrefillTokens + b.DecodeSeqs
	if tokens <= 0 {
		return IterResult{}
	}
	flop := 2 * c.Model.ActiveParams * tokens
	tComp := flop / c.compRate()
	bytes := c.touchedWeights(b.DecodeSeqs+b.PrefillTokens/64) + b.ContextTokens*c.Model.KVBytesPerToken
	tMem := bytes / c.memRate()
	body := math.Max(tComp, tMem)
	t := c.commTime() + c.launchTime() + body
	// SMs are fully busy during the compute-bound portion; during memory
	// stalls they draw a reduced effective utilization.
	var util float64
	if body > 0 {
		busyComp := math.Min(tComp, body)
		util = (busyComp + StallUtilWeight*(body-busyComp)) / t
	}
	return IterResult{Time: t, Util: util, MemoryBound: tMem > tComp}
}

// IsolatedPrefill returns the time to prefill n prompt tokens on an
// otherwise idle instance (chunked, one chunk per iteration).
func (c Config) IsolatedPrefill(n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0.0
	remaining := n
	ctx := 0.0
	for remaining > 0 {
		chunk := remaining
		if chunk > PrefillChunk {
			chunk = PrefillChunk
		}
		ctx += float64(chunk)
		r := c.Iter(Batch{PrefillTokens: float64(chunk), ContextTokens: ctx})
		total += r.Time
		remaining -= chunk
	}
	return total
}

// IsolatedTBT returns the decode iteration time for a single resident
// sequence with the given context length.
func (c Config) IsolatedTBT(ctx int) float64 {
	return c.Iter(Batch{DecodeSeqs: 1, ContextTokens: float64(ctx)}).Time
}

// ReferenceConfig is the configuration the paper derives SLOs from: the
// request runs isolated on a system at high performance. We use TP8 at max
// frequency, matching "maximum achievable performance" (§II).
func ReferenceConfig(m *model.Model) Config {
	return Config{Model: m, TP: model.TP8, Freq: gpu.MaxFreq}
}

// IsolatedLatency returns the isolated TTFT and mean TBT of a request with
// the given lengths under the reference configuration.
func IsolatedLatency(m *model.Model, inTokens, outTokens int) (ttft, tbt float64) {
	ref := ReferenceConfig(m)
	ttft = ref.IsolatedPrefill(inTokens)
	tbt = ref.IsolatedTBT(inTokens + outTokens/2)
	return ttft, tbt
}

// --- Steady-state fluid solution -------------------------------------------

// Steady is the self-consistent operating point of an instance serving a
// homogeneous request stream at a fixed arrival rate. It is the fluid
// (discrete-time simulator) counterpart of the event-level engine and the
// basis of the profile tables.
type Steady struct {
	Config Config
	// ArrivalRate is requests/second offered.
	ArrivalRate float64
	// IterTime is the equilibrium mean iteration latency (the mean TBT).
	IterTime float64
	// ChunkIterTime is the latency of an iteration carrying a full
	// prefill chunk; it governs the TBT tail.
	ChunkIterTime float64
	// Batch is the equilibrium number of resident decode sequences.
	Batch float64
	// Rho is the bottleneck utilization in (0, 1) for feasible points:
	// the max of compute, KV-bandwidth, and prefill-channel utilization.
	Rho float64
	// Util is the effective SM utilization while busy (includes the
	// recompute waste that appears near saturation).
	Util float64
	// BusyFrac is the fraction of wall time the engine is executing
	// iterations (below 1 only at low load).
	BusyFrac float64
	// TTFTMean and TTFTP99 are the modeled time-to-first-token.
	TTFTMean, TTFTP99 float64
	// TBTMean and TBTP99 are the modeled time-between-tokens.
	TBTMean, TBTP99 float64
	// PowerPerGPU is the average board power per GPU in watts.
	PowerPerGPU float64
	// Power is the average instance power in watts (all GPUs).
	Power float64
	// EnergyPerRequest is the average energy per request in joules,
	// attributing the instance's whole power (idle share included) to
	// the request stream.
	EnergyPerRequest float64
	// Feasible reports whether the operating point exists (utilization
	// below saturation and KV cache within capacity).
	Feasible bool
}

const (
	// maxRho is the utilization treated as saturation: beyond it queues
	// grow without bound and tail latency explodes.
	maxRho = 0.92
	// stretchedGapP99 is the fraction of inter-token gaps that must be
	// prefill-stretched before the stretched value becomes the P99.
	stretchedGapP99 = 0.01
	// wasteCoeff and wasteExp shape the recompute waste near saturation:
	// vLLM-style engines preempt and re-prefill requests under memory
	// pressure, so effective work inflates steeply as rho approaches 1.
	wasteCoeff = 0.8
	wasteExp   = 6
)

// SteadyState solves the fluid equilibrium for arrival rate lambda (req/s)
// of requests with the given mean input/output lengths, judged against the
// Table IV SLO of the request class (sloScale = 1).
func SteadyState(cfg Config, lambda float64, inTokens, outTokens int) Steady {
	return SteadyStateSLO(cfg, lambda, inTokens, outTokens, 1)
}

// SteadyStateSLO is SteadyState with a relaxed SLO factor (10x/20x services).
//
// Derivation: in continuous batching each request decodes one token per
// iteration, so a request resides for ~out iterations and Little's law
// gives B = lambda*out*tIter resident sequences. Prompt tokens arrive at
// lambda*in tokens/s and are served in chunks of up to PrefillChunk per
// iteration, piggybacked on the decode batch. The mean iteration time is a
// fixed point that is linear in tIter on each roofline branch; the TBT tail
// is governed by iterations carrying a full chunk.
func SteadyStateSLO(cfg Config, lambda float64, inTokens, outTokens int, sloScale float64) Steady {
	st := Steady{Config: cfg, ArrivalRate: lambda, Feasible: true}
	if !cfg.Feasible() {
		st.Feasible = false
		return st
	}
	if lambda <= 0 {
		st.PowerPerGPU = gpu.H100.IdlePower
		st.Power = st.PowerPerGPU * float64(cfg.GPUs())
		return st
	}
	in, out := float64(inTokens), float64(outTokens)
	if out < 1 {
		out = 1
	}
	avgCtx := in + out/2 // mean resident context of a decoding sequence

	// Demand rates.
	tokRate := lambda * (in + out)
	alpha := 2 * cfg.Model.ActiveParams * tokRate / cfg.compRate()
	beta := lambda * out * avgCtx * cfg.Model.KVBytesPerToken / cfg.memRate()
	k := cfg.commTime() + cfg.launchTime()

	if alpha >= 1 || beta >= 1 {
		st.Feasible = false
		st.Rho = math.Max(alpha, beta)
		return st
	}

	// Mean-iteration fixed point: tIter = k + max(alpha*t, beta*t + mu(B)).
	// mu depends weakly on batch via MoE expert touching; iterate (dense
	// models converge immediately).
	tIter := 0.030
	for i := 0; i < 10; i++ {
		batch := lambda * out * tIter
		mu := cfg.touchedWeights(batch) / cfg.memRate()
		tIter = math.Max(k/(1-alpha), (k+mu)/(1-beta))
	}
	batch := lambda * out * tIter
	st.IterTime = tIter
	st.Batch = batch
	st.TBTMean = tIter

	// KV capacity: the resident context must fit.
	if batch*avgCtx > cfg.Model.KVCapacityTokens(cfg.TP) {
		st.Feasible = false
	}

	// A chunk-carrying iteration: the engine admits queued prompt tokens
	// up to PrefillChunk per iteration. The typical carried chunk is the
	// demand per iteration, but at least one whole prompt segment.
	chunk := math.Min(PrefillChunk, math.Max(lambda*in*tIter, math.Min(in, PrefillChunk)))
	pf := cfg.Iter(Batch{
		PrefillTokens: chunk,
		DecodeSeqs:    batch,
		ContextTokens: batch*avgCtx + chunk,
	})
	st.ChunkIterTime = pf.Time

	// TBT tail: each arrival stretches one inter-token gap of every
	// resident sequence per chunk; the stretched fraction of the pooled
	// gap stream is nChunks*B/out.
	nChunks := math.Ceil(in / PrefillChunk)
	phi := nChunks * batch / out
	if phi >= stretchedGapP99 {
		st.TBTP99 = math.Max(pf.Time, tIter)
	} else {
		st.TBTP99 = tIter * (1 + 0.25*math.Max(alpha, beta))
	}

	// TTFT: prompts are served by the prefill channel, whose capacity is
	// one chunk per carrying iteration. M/D/1-like waiting on top of the
	// chunk service time.
	rhoPf := lambda * in * pf.Time / PrefillChunk
	var wait float64
	if rhoPf < 1 {
		wait = 0.5 * pf.Time * rhoPf / (1 - rhoPf)
	} else {
		wait = math.Inf(1)
	}
	base := nChunks*pf.Time + 0.5*tIter
	st.TTFTMean = base + wait
	st.TTFTP99 = base*1.1 + 3*wait

	rho := math.Max(math.Max(alpha, beta), rhoPf)
	st.Rho = rho
	if rho > maxRho {
		st.Feasible = false
	}

	// Power: a continuous-batching engine runs iterations back-to-back
	// whenever any request is resident, so the GPU draws busy power the
	// whole time (SM utilization, not busy fraction, differentiates the
	// load levels). Only at vanishing load (expected batch below one)
	// does the engine actually idle between requests. Near saturation
	// the engine additionally wastes work on preemption recompute,
	// inflating utilization.
	busy := math.Min(1, batch)
	mean := cfg.Iter(Batch{
		PrefillTokens: math.Min(lambda*in*tIter, PrefillChunk),
		DecodeSeqs:    math.Max(batch, 1),
		ContextTokens: math.Max(batch, 1) * avgCtx,
	})
	waste := 1 + wasteCoeff*math.Pow(rho, wasteExp)
	util := math.Min(1, mean.Util*waste)
	st.Util = util
	st.BusyFrac = busy
	st.PowerPerGPU = gpu.H100.PowerShared(cfg.Freq, busy, util)
	st.Power = st.PowerPerGPU * float64(cfg.GPUs())
	st.EnergyPerRequest = st.Power / lambda
	return st
}

// MeetsSLO reports whether the steady state satisfies the class SLO
// (P99 against the Table IV targets, scaled by sloScale).
func (st Steady) MeetsSLO(class workload.Class, sloScale float64) bool {
	if !st.Feasible {
		return false
	}
	slo := workload.SLOFor(class)
	if sloScale > 1 {
		slo = slo.Scale(sloScale)
	}
	return st.TTFTP99 <= slo.TTFT && st.TBTP99 <= slo.TBT
}

// MaxLoadShape returns the highest request rate (req/s) of an arbitrary
// request shape the configuration can serve within explicit TTFT/TBT
// targets, found by bisection. Mixed pools use it with a smoothed SLO so
// capacity does not jump when the average mix crosses a class boundary.
func MaxLoadShape(cfg Config, in, out int, ttftSLO, tbtSLO float64) (float64, bool) {
	meets := func(lambda float64) bool {
		st := SteadyStateSLO(cfg, lambda, in, out, 1)
		return st.Feasible && st.TTFTP99 <= ttftSLO && st.TBTP99 <= tbtSLO
	}
	if !meets(1e-4) {
		return 0, false
	}
	lo, hi := 1e-4, 1.0
	for meets(hi) {
		lo = hi
		hi *= 2
		if hi > 1e4 {
			return lo, true
		}
	}
	for i := 0; i < 36; i++ {
		mid := (lo + hi) / 2
		if meets(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// MaxLoad returns the highest request rate (req/s) of the given shape the
// configuration can serve within the class SLO, found by bisection. The
// second result is false when even a vanishing load violates the SLO.
func MaxLoad(cfg Config, class workload.Class, sloScale float64) (float64, bool) {
	in, out := workload.RepresentativeLengths(class)
	if !SteadyStateSLO(cfg, 1e-4, in, out, sloScale).MeetsSLO(class, sloScale) {
		return 0, false
	}
	lo, hi := 1e-4, 1.0
	for SteadyStateSLO(cfg, hi, in, out, sloScale).MeetsSLO(class, sloScale) {
		lo = hi
		hi *= 2
		if hi > 1e4 {
			return lo, true
		}
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if SteadyStateSLO(cfg, mid, in, out, sloScale).MeetsSLO(class, sloScale) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}
