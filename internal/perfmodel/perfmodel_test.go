package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"dynamollm/internal/gpu"
	"dynamollm/internal/model"
	"dynamollm/internal/workload"
)

func cfg70(tp model.TP, f gpu.Freq) Config {
	return Config{Model: model.Llama2_70B, TP: tp, Freq: f}
}

// steady70 evaluates the Llama2-70B steady state for a class at a total
// token throughput (the Table I load basis).
func steady70(c workload.Class, totalTPS float64, tp model.TP, f gpu.Freq) Steady {
	in, out := workload.RepresentativeLengths(c)
	lambda := totalTPS / float64(in+out)
	return SteadyState(cfg70(tp, f), lambda, in, out)
}

func feasible(c workload.Class, tps float64, tp model.TP, f gpu.Freq) bool {
	return steady70(c, tps, tp, f).MeetsSLO(c, 1)
}

func energy(c workload.Class, tps float64, tp model.TP, f gpu.Freq) float64 {
	return steady70(c, tps, tp, f).EnergyPerRequest
}

func TestIterTimeInPaperRange(t *testing.T) {
	// Decode iterations for Llama2-70B take 20-30 ms (§III-C).
	st := steady70(workload.MM, 2000, model.TP8, gpu.MaxFreq)
	if st.IterTime < 0.010 || st.IterTime > 0.035 {
		t.Errorf("TP8 decode iteration = %v s, want ~0.015-0.03", st.IterTime)
	}
}

func TestIsolatedLatencyWithinSLOHeadroom(t *testing.T) {
	// Table IV sets SLOs at 5x isolated latency; the model must leave at
	// least that headroom for every class on the reference config.
	for _, c := range workload.AllClasses {
		in, out := workload.RepresentativeLengths(c)
		ttft, tbt := IsolatedLatency(model.Llama2_70B, in, out)
		slo := workload.SLOFor(c)
		if slo.TTFT < 5*ttft {
			t.Errorf("%v: TTFT SLO %v < 5x isolated %v", c, slo.TTFT, ttft)
		}
		if slo.TBT < 5*tbt {
			t.Errorf("%v: TBT SLO %v < 5x isolated %v", c, slo.TBT, tbt)
		}
	}
}

// --- Table I shape ----------------------------------------------------------

// TestTableIShortRequestsRunAtTP2 pins §III-A: "the least-energy
// configuration for SS requests is TP2 at 1.2 GHz" (at medium load).
func TestTableIShortRequestsRunAtTP2(t *testing.T) {
	if !feasible(workload.SS, 2000, model.TP2, 1200) {
		t.Fatal("SS at TP2/1.2GHz must be feasible at 2K TPS")
	}
	best := math.Inf(1)
	var bestTP model.TP
	for _, tp := range model.TPChoices {
		for _, f := range gpu.CoarseLadder() {
			if feasible(workload.SS, 2000, tp, f) {
				if e := energy(workload.SS, 2000, tp, f); e < best {
					best, bestTP = e, tp
				}
			}
		}
	}
	if bestTP != model.TP2 {
		t.Errorf("SS least-energy TP = %v, want TP2", bestTP)
	}
}

// TestTableIMediumRequestsNeedTP4 pins the MM row: TP2 violates the SLO at
// medium load at every frequency, TP4 meets it from 1.2 GHz but not 0.8.
func TestTableIMediumRequestsNeedTP4(t *testing.T) {
	for _, f := range gpu.CoarseLadder() {
		if feasible(workload.MM, 2000, model.TP2, f) {
			t.Errorf("MM at TP2/%v should violate SLO at 2K TPS", f)
		}
	}
	if feasible(workload.MM, 2000, model.TP4, 800) {
		t.Error("MM at TP4/0.8GHz should violate the TBT SLO (long prefill chunks)")
	}
	for _, f := range []gpu.Freq{1200, 1600, gpu.MaxFreq} {
		if !feasible(workload.MM, 2000, model.TP4, f) {
			t.Errorf("MM at TP4/%v should be feasible at 2K TPS", f)
		}
	}
	if !feasible(workload.MM, 2000, model.TP8, 800) {
		t.Error("MM at TP8/0.8GHz should be feasible at 2K TPS")
	}
}

// TestTableISLOptimum pins §III-A: with the strict SLO, SL requests at
// medium load have their optimum at TP4 and 1.2 GHz.
func TestTableISLOptimum(t *testing.T) {
	best := math.Inf(1)
	var bestTP model.TP
	var bestF gpu.Freq
	for _, tp := range model.TPChoices {
		for _, f := range gpu.CoarseLadder() {
			if feasible(workload.SL, 2000, tp, f) {
				if e := energy(workload.SL, 2000, tp, f); e < best {
					best, bestTP, bestF = e, tp, f
				}
			}
		}
	}
	if bestTP != model.TP4 || bestF > 1200 {
		t.Errorf("SL optimum = %v@%v, want TP4 at a low clock (<=1.2GHz)", bestTP, bestF)
	}
}

// TestTableILongRequestsCannotUseTP2 pins the LL row boundary: TP2 is
// infeasible for LL at medium load; TP8 is feasible from low clocks and
// clocking down from the boost ceiling saves substantial energy (the
// paper's LL optimum sits well below 2.0 GHz). Our feasibility boundary
// sits lower than the paper's (their 0.8 GHz cell is blank because it is
// near saturation on their testbed), so we pin the direction and the
// magnitude of the saving rather than the exact minimum cell; see
// EXPERIMENTS.md.
func TestTableILongRequestsCannotUseTP2(t *testing.T) {
	for _, f := range gpu.CoarseLadder() {
		if feasible(workload.LL, 2000, model.TP2, f) {
			t.Errorf("LL at TP2/%v should violate SLO", f)
		}
	}
	if !feasible(workload.LL, 2000, model.TP8, 1200) {
		t.Error("LL at TP8/1.2GHz should be feasible")
	}
	e12 := energy(workload.LL, 2000, model.TP8, 1200)
	e20 := energy(workload.LL, 2000, model.TP8, gpu.MaxFreq)
	if e20 < e12*1.25 {
		t.Errorf("LL@TP8: max clock (%v) should cost >=25%% more than 1.2GHz (%v)", e20, e12)
	}
}

// TestLooseSLOWidensFeasibleSet pins §III-A's service-SLO observation:
// relaxing the SLO from 5x to 10x/20x admits configurations that the strict
// SLO rejects.
func TestLooseSLOWidensFeasibleSet(t *testing.T) {
	in, out := workload.RepresentativeLengths(workload.MM)
	lambda := 2000.0 / float64(in+out)
	cfg := cfg70(model.TP4, 800)
	strict := SteadyStateSLO(cfg, lambda, in, out, 1)
	loose := SteadyStateSLO(cfg, lambda, in, out, 4)
	if strict.MeetsSLO(workload.MM, 1) {
		t.Fatal("MM TP4@0.8 should fail the strict SLO")
	}
	if !loose.MeetsSLO(workload.MM, 4) {
		t.Error("MM TP4@0.8 should pass a 20x SLO")
	}
}

// --- Table II shape ---------------------------------------------------------

// TestTableIILoadShapesFeasibility: the prompt-TPS load sweep. Low load
// admits TP2; high load excludes TP2 entirely and pushes TP4 to >=1.6 GHz.
func TestTableIILoadShapesFeasibility(t *testing.T) {
	in, out := workload.RepresentativeLengths(workload.MM)
	st := func(promptTPS float64, tp model.TP, f gpu.Freq) Steady {
		return SteadyState(cfg70(tp, f), promptTPS/float64(in), in, out)
	}
	// Low (650 prompt TPS): some TP2 configuration works.
	lowTP2 := false
	for _, f := range gpu.CoarseLadder() {
		if st(650, model.TP2, f).MeetsSLO(workload.MM, 1) {
			lowTP2 = true
		}
	}
	if !lowTP2 {
		t.Error("at low load some TP2 configuration should meet the SLO")
	}
	// High (4000 prompt TPS): no TP2 configuration works; TP4 needs a
	// high clock; all TP8 clocks work.
	for _, f := range gpu.CoarseLadder() {
		if st(4000, model.TP2, f).MeetsSLO(workload.MM, 1) {
			t.Errorf("at high load TP2/%v should violate SLO", f)
		}
		if !st(4000, model.TP8, f).MeetsSLO(workload.MM, 1) {
			t.Errorf("at high load TP8/%v should be feasible", f)
		}
	}
	if st(4000, model.TP4, 1200).MeetsSLO(workload.MM, 1) {
		t.Error("at high load TP4/1.2GHz should saturate")
	}
	if !st(4000, model.TP4, 1600).MeetsSLO(workload.MM, 1) {
		t.Error("at high load TP4/1.6GHz should be feasible")
	}
}

// TestEnergySavingsShrinkWithLoad mirrors Fig. 12's trend: the gap between
// the best feasible configuration and the max-performance baseline narrows
// as load rises.
func TestEnergySavingsShrinkWithLoad(t *testing.T) {
	in, out := workload.RepresentativeLengths(workload.MM)
	saving := func(promptTPS float64) float64 {
		lambda := promptTPS / float64(in)
		base := SteadyState(cfg70(model.TP8, gpu.MaxFreq), lambda, in, out)
		best := base.EnergyPerRequest
		for _, tp := range model.TPChoices {
			for _, f := range gpu.CoarseLadder() {
				s := SteadyState(cfg70(tp, f), lambda, in, out)
				if s.MeetsSLO(workload.MM, 1) && s.EnergyPerRequest < best {
					best = s.EnergyPerRequest
				}
			}
		}
		return 1 - best/base.EnergyPerRequest
	}
	low, med, high := saving(650), saving(2000), saving(4000)
	if !(low > med && med > high) {
		t.Errorf("savings should shrink with load: low=%.2f med=%.2f high=%.2f", low, med, high)
	}
	if low < 0.2 {
		t.Errorf("low-load saving = %.2f, want substantial (>20%%)", low)
	}
}

// --- Table III shape --------------------------------------------------------

func TestTableIIIModelBoundaries(t *testing.T) {
	in, out := workload.RepresentativeLengths(workload.MM)
	lambda := 2000.0 / float64(in+out)
	// Small models meet the SLO at TP2; their optimum is TP2.
	for _, m := range []*model.Model{model.Llama2_13B, model.Mixtral8x7B} {
		st := SteadyState(Config{Model: m, TP: model.TP2, Freq: 1200}, lambda, in, out)
		if !st.MeetsSLO(workload.MM, 1) {
			t.Errorf("%s at TP2/1.2GHz should be feasible", m.Name)
		}
	}
	// Huge models only run at TP8 (memory), with 1.2 GHz beating 0.8.
	for _, m := range []*model.Model{model.Mixtral22B, model.Falcon180B} {
		for _, tp := range []model.TP{model.TP2, model.TP4} {
			st := SteadyState(Config{Model: m, TP: tp, Freq: gpu.MaxFreq}, lambda, in, out)
			if st.Feasible {
				t.Errorf("%s at %v should be infeasible (memory)", m.Name, tp)
			}
		}
		st := SteadyState(Config{Model: m, TP: model.TP8, Freq: gpu.MaxFreq}, lambda, in, out)
		if !st.MeetsSLO(workload.MM, 1) {
			t.Errorf("%s at TP8 max freq should be feasible", m.Name)
		}
	}
	// MoE sparsity: Mixtral-8x7B is cheaper than the dense 13B is NOT
	// required, but it must be far cheaper than dense 70B at same TP.
	e7b := SteadyState(Config{Model: model.Mixtral8x7B, TP: model.TP4, Freq: 1200}, lambda, in, out).EnergyPerRequest
	e70 := SteadyState(Config{Model: model.Llama2_70B, TP: model.TP4, Freq: 1200}, lambda, in, out).EnergyPerRequest
	if e7b >= e70 {
		t.Errorf("mixtral-8x7b energy %v should beat llama2-70b %v", e7b, e70)
	}
}

// --- Structural properties --------------------------------------------------

func TestIterMonotoneInBatch(t *testing.T) {
	c := cfg70(model.TP8, 1600)
	prev := 0.0
	for b := 1.0; b <= 256; b *= 2 {
		r := c.Iter(Batch{DecodeSeqs: b, ContextTokens: b * 600})
		if r.Time <= prev {
			t.Fatalf("iteration time not increasing in batch at B=%v", b)
		}
		prev = r.Time
	}
}

func TestIterEmptyBatch(t *testing.T) {
	r := cfg70(model.TP8, 1600).Iter(Batch{})
	if r.Time != 0 || r.Util != 0 {
		t.Errorf("empty batch should be free, got %+v", r)
	}
}

func TestIsolatedPrefillScalesWithInput(t *testing.T) {
	c := cfg70(model.TP8, gpu.MaxFreq)
	t512 := c.IsolatedPrefill(512)
	t3072 := c.IsolatedPrefill(3072)
	if t3072 < 4*t512 {
		t.Errorf("prefill(3072)=%v should be >=4x prefill(512)=%v", t3072, t512)
	}
	if c.IsolatedPrefill(0) != 0 {
		t.Error("empty prefill should be free")
	}
}

// Property: utilization and feasibility behave sanely across random loads.
func TestSteadyStateInvariants(t *testing.T) {
	f := func(loadSeed uint16, tpIdx, fIdx, clsIdx uint8) bool {
		tp := model.TPChoices[int(tpIdx)%3]
		freq := gpu.CoarseLadder()[int(fIdx)%4]
		cls := workload.AllClasses[int(clsIdx)%9]
		in, out := workload.RepresentativeLengths(cls)
		lambda := float64(loadSeed%5000)/1000 + 0.001
		st := SteadyState(cfg70(tp, freq), lambda, in, out)
		if st.Power < 0 || st.EnergyPerRequest < 0 {
			return false
		}
		if st.Feasible {
			if st.IterTime <= 0 || st.Batch < 0 {
				return false
			}
			if st.TBTP99 < st.TBTMean-1e-12 {
				return false
			}
			if st.TTFTP99 < 0 {
				return false
			}
			if st.Util < 0 || st.Util > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: energy per request decreases (or stays flat) as load grows at a
// fixed feasible configuration, since idle/static power amortizes.
func TestEnergyAmortizesWithLoad(t *testing.T) {
	in, out := workload.RepresentativeLengths(workload.MM)
	c := cfg70(model.TP8, 1600)
	prev := math.Inf(1)
	for _, lambda := range []float64{0.5, 1, 2, 4} {
		st := SteadyState(c, lambda, in, out)
		if !st.Feasible {
			t.Fatalf("lambda=%v should be feasible", lambda)
		}
		if st.EnergyPerRequest >= prev {
			t.Errorf("energy/request should fall with load: %v at lambda=%v", st.EnergyPerRequest, lambda)
		}
		prev = st.EnergyPerRequest
	}
}

func TestZeroLoadIdlePower(t *testing.T) {
	st := SteadyState(cfg70(model.TP8, 1600), 0, 512, 200)
	if st.PowerPerGPU != gpu.H100.IdlePower {
		t.Errorf("zero-load power = %v, want idle %v", st.PowerPerGPU, gpu.H100.IdlePower)
	}
}

func TestInfeasibleTPRejected(t *testing.T) {
	st := SteadyState(Config{Model: model.Falcon180B, TP: model.TP2, Freq: 1600}, 1, 512, 200)
	if st.Feasible {
		t.Error("falcon-180b at TP2 must be infeasible")
	}
}

func TestMaxLoad(t *testing.T) {
	load, ok := MaxLoad(cfg70(model.TP8, gpu.MaxFreq), workload.MM, 1)
	if !ok || load <= 0 {
		t.Fatalf("MaxLoad = %v, %v", load, ok)
	}
	in, out := workload.RepresentativeLengths(workload.MM)
	at := SteadyState(cfg70(model.TP8, gpu.MaxFreq), load*0.99, in, out)
	if !at.MeetsSLO(workload.MM, 1) {
		t.Error("99% of MaxLoad should meet the SLO")
	}
	over := SteadyState(cfg70(model.TP8, gpu.MaxFreq), load*1.05, in, out)
	if over.MeetsSLO(workload.MM, 1) {
		t.Error("105% of MaxLoad should violate the SLO")
	}
	// Higher frequency or parallelism cannot reduce MaxLoad.
	lowF, _ := MaxLoad(cfg70(model.TP8, 1200), workload.MM, 1)
	if lowF > load {
		t.Errorf("MaxLoad at 1.2GHz (%v) exceeds max freq (%v)", lowF, load)
	}
	tp4, _ := MaxLoad(cfg70(model.TP4, gpu.MaxFreq), workload.MM, 1)
	if tp4 > load {
		t.Errorf("MaxLoad at TP4 (%v) exceeds TP8 (%v)", tp4, load)
	}
}

func TestMaxLoadInfeasibleConfig(t *testing.T) {
	if _, ok := MaxLoad(Config{Model: model.Falcon180B, TP: model.TP2, Freq: 800}, workload.MM, 1); ok {
		t.Error("MaxLoad on infeasible config should report not-ok")
	}
}

// TestLooseSLORaisesMaxLoad: relaxing the SLO can only increase capacity.
func TestLooseSLORaisesMaxLoad(t *testing.T) {
	strict, _ := MaxLoad(cfg70(model.TP4, 1200), workload.MM, 1)
	loose, _ := MaxLoad(cfg70(model.TP4, 1200), workload.MM, 2)
	if loose < strict {
		t.Errorf("10x SLO MaxLoad %v < 5x MaxLoad %v", loose, strict)
	}
}
