// Package energy provides the accounting substrate for the paper's
// evaluation: energy meters (joules/Wh/kWh), synthetic grid carbon-intensity
// traces (the WattTime/CAISO substitute for Fig. 16), and the GPU-hour and
// electricity cost model of §V-F.
package energy

import (
	"math"

	"dynamollm/internal/metrics"
	"dynamollm/internal/simclock"
)

// Unit conversions.
const (
	JoulesPerWh  = 3600.0
	JoulesPerKWh = 3.6e6
)

// Wh converts joules to watt-hours.
func Wh(joules float64) float64 { return joules / JoulesPerWh }

// KWh converts joules to kilowatt-hours.
func KWh(joules float64) float64 { return joules / JoulesPerKWh }

// Meter integrates a piecewise-constant power signal into energy, and keeps
// a bucketed power series for the percentile/time figures.
type Meter struct {
	avg    metrics.TimeAvg
	series *metrics.Series
	lastW  float64
}

// NewMeter returns a meter bucketing power observations at the given series
// width (seconds); width <= 0 disables the series.
func NewMeter(seriesWidth float64) *Meter {
	m := &Meter{}
	if seriesWidth > 0 {
		m.series = metrics.NewSeries(seriesWidth)
	}
	return m
}

// SetPower records that the measured component draws watts from time t on.
func (m *Meter) SetPower(t simclock.Time, watts float64) {
	if watts < 0 {
		watts = 0
	}
	if m.series != nil && float64(t) > 0 {
		// Close the previous interval into the series.
		m.series.Observe(float64(t), m.lastW, 1)
	}
	m.avg.Set(float64(t), watts)
	m.lastW = watts
}

// Joules returns the energy integrated so far.
func (m *Meter) Joules() float64 { return m.avg.Area() }

// Finish closes the signal at t and returns total joules.
func (m *Meter) Finish(t simclock.Time) float64 {
	m.avg.Set(float64(t), m.lastW)
	return m.avg.Area()
}

// Series returns the bucketed power series (nil if disabled).
func (m *Meter) Series() *metrics.Series { return m.series }

// Clone returns an independent copy of the meter (the embedded TimeAvg is
// plain value state; the optional series is deep-copied).
func (m *Meter) Clone() *Meter {
	c := *m
	if m.series != nil {
		c.series = m.series.Clone()
	}
	return &c
}

// --- Carbon intensity ---------------------------------------------------------

// CarbonTrace maps time to grid carbon intensity in gCO2 per kWh. The
// synthetic trace mimics CAISO's strong diurnal "duck curve": low intensity
// midday (solar), high in the evening ramp, with mild weekday/weekend
// variation — enough structure for the Fig. 16 convolution.
type CarbonTrace struct {
	// Base is the mean intensity in gCO2/kWh.
	Base float64
	// Swing is the peak-to-mean diurnal amplitude, as a fraction of Base.
	Swing float64
	// Phase shifts the minimum within the day, in hours from midnight.
	Phase float64
}

// CAISO is a stylized California grid: mean ~250 gCO2/kWh with deep midday
// solar valleys.
var CAISO = CarbonTrace{Base: 250, Swing: 0.45, Phase: 13}

// Intensity returns gCO2/kWh at virtual time t (t=0 is Monday 00:00).
func (c CarbonTrace) Intensity(t simclock.Time) float64 {
	hours := float64(t) / 3600
	hourOfDay := math.Mod(hours, 24)
	// Minimum at Phase (solar noon), maximum half a day away.
	daily := -math.Cos((hourOfDay - c.Phase) / 24 * 2 * math.Pi)
	// Weekend demand dip slightly lowers intensity.
	day := int(hours/24) % 7
	weekend := 1.0
	if day >= 5 {
		weekend = 0.93
	}
	v := c.Base * weekend * (1 + c.Swing*daily)
	if v < 0 {
		return 0
	}
	return v
}

// CarbonMeter convolves an energy stream with a carbon trace.
type CarbonMeter struct {
	Trace  CarbonTrace
	grams  float64
	series *metrics.Series
}

// NewCarbonMeter returns a meter with an hourly emission series.
func NewCarbonMeter(trace CarbonTrace) *CarbonMeter {
	return &CarbonMeter{Trace: trace, series: metrics.NewSeries(3600)}
}

// AddEnergy attributes joules consumed at time t.
func (m *CarbonMeter) AddEnergy(t simclock.Time, joules float64) {
	g := KWh(joules) * m.Trace.Intensity(t)
	m.grams += g
	m.series.Accumulate(float64(t), g)
}

// Grams returns total emissions in gCO2.
func (m *CarbonMeter) Grams() float64 { return m.grams }

// Kg returns total emissions in kgCO2.
func (m *CarbonMeter) Kg() float64 { return m.grams / 1000 }

// HourlySeries returns emissions per hour in gCO2.
func (m *CarbonMeter) HourlySeries() *metrics.Series { return m.series }

// --- Cost model ----------------------------------------------------------------

// CostModel prices a deployment the way §V-F does: GPU VM rental dominates;
// electricity is a small additional term.
type CostModel struct {
	// GPUHourUSD is the rental price of ONE GPU for one hour. The paper
	// cites the Azure ND96isr H100 v5 (8 GPUs) at ~$85-100/hour, i.e.
	// ~$12/GPU-hour.
	GPUHourUSD float64
	// EnergyUSDPerKWh is the electricity price (ERCOT real-time, ~$0.03).
	EnergyUSDPerKWh float64
}

// DefaultCost matches the paper's sources: cloudprice.net H100 VM pricing
// and ERCOT real-time energy pricing.
var DefaultCost = CostModel{GPUHourUSD: 12.0, EnergyUSDPerKWh: 0.03}

// Cost is an itemized bill.
type Cost struct {
	GPUHours  float64
	EnergyKWh float64
	GPUUSD    float64
	EnergyUSD float64
}

// Total returns the combined bill.
func (c Cost) Total() float64 { return c.GPUUSD + c.EnergyUSD }

// Bill prices gpuSeconds of GPU occupancy and joules of energy.
func (m CostModel) Bill(gpuSeconds, joules float64) Cost {
	c := Cost{
		GPUHours:  gpuSeconds / 3600,
		EnergyKWh: KWh(joules),
	}
	c.GPUUSD = c.GPUHours * m.GPUHourUSD
	c.EnergyUSD = c.EnergyKWh * m.EnergyUSDPerKWh
	return c
}
