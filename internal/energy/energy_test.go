package energy

import (
	"math"
	"testing"
	"testing/quick"

	"dynamollm/internal/simclock"
)

func TestUnitConversions(t *testing.T) {
	if Wh(3600) != 1 {
		t.Errorf("Wh(3600) = %v, want 1", Wh(3600))
	}
	if KWh(3.6e6) != 1 {
		t.Errorf("KWh(3.6e6) = %v, want 1", KWh(3.6e6))
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(0)
	m.SetPower(0, 700)
	m.SetPower(10, 100)
	j := m.Finish(20)
	want := 700*10 + 100*10.0
	if math.Abs(j-want) > 1e-9 {
		t.Errorf("joules = %v, want %v", j, want)
	}
}

func TestMeterNegativeClamped(t *testing.T) {
	m := NewMeter(0)
	m.SetPower(0, -50)
	if j := m.Finish(10); j != 0 {
		t.Errorf("negative power accrued %v J", j)
	}
}

func TestMeterSeries(t *testing.T) {
	m := NewMeter(10)
	m.SetPower(0, 100)
	m.SetPower(5, 300)
	m.SetPower(15, 200)
	m.Finish(20)
	pts := m.Series().Points()
	if len(pts) == 0 {
		t.Fatal("no series points")
	}
}

// Property: energy is additive and non-negative for any power schedule.
func TestMeterAdditivity(t *testing.T) {
	f := func(seed uint64) bool {
		r := simclock.NewRNG(seed)
		m := NewMeter(0)
		tNow := 0.0
		for i := 0; i < 20; i++ {
			m.SetPower(simclock.Time(tNow), r.Float64()*700)
			tNow += r.Float64() * 100
		}
		return m.Finish(simclock.Time(tNow)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCarbonIntensityDiurnal(t *testing.T) {
	// Midday (solar valley) must be well below evening peak.
	midday := CAISO.Intensity(simclock.Time(13 * 3600))
	evening := CAISO.Intensity(simclock.Time(25 * 3600)) // 1am next day ~ near peak
	if midday >= evening {
		t.Errorf("midday intensity %v should be below evening %v", midday, evening)
	}
	for h := 0; h < 24*7; h++ {
		v := CAISO.Intensity(simclock.Time(h * 3600))
		if v < 0 || v > CAISO.Base*2 {
			t.Errorf("intensity at hour %d = %v out of range", h, v)
		}
	}
}

func TestCarbonWeekendDip(t *testing.T) {
	// Same hour of day, Saturday vs Wednesday (t=0 is Monday 00:00).
	wed := CAISO.Intensity(simclock.Time((2*24 + 9) * 3600))
	sat := CAISO.Intensity(simclock.Time((5*24 + 9) * 3600))
	if sat >= wed {
		t.Errorf("weekend intensity %v should dip below weekday %v", sat, wed)
	}
}

func TestCarbonMeter(t *testing.T) {
	m := NewCarbonMeter(CAISO)
	m.AddEnergy(0, JoulesPerKWh) // 1 kWh at Monday midnight
	want := CAISO.Intensity(0)
	if math.Abs(m.Grams()-want) > 1e-9 {
		t.Errorf("grams = %v, want %v", m.Grams(), want)
	}
	if m.Kg() != m.Grams()/1000 {
		t.Error("Kg inconsistent with Grams")
	}
	if len(m.HourlySeries().Points()) != 1 {
		t.Error("hourly series missing bucket")
	}
}

func TestCostBill(t *testing.T) {
	c := DefaultCost.Bill(8*3600, JoulesPerKWh*10) // 8 GPU-hours, 10 kWh
	if c.GPUHours != 8 {
		t.Errorf("GPU hours = %v, want 8", c.GPUHours)
	}
	if c.GPUUSD != 8*DefaultCost.GPUHourUSD {
		t.Errorf("GPU cost = %v", c.GPUUSD)
	}
	if math.Abs(c.EnergyUSD-10*DefaultCost.EnergyUSDPerKWh) > 1e-9 {
		t.Errorf("energy cost = %v", c.EnergyUSD)
	}
	if c.Total() != c.GPUUSD+c.EnergyUSD {
		t.Error("total mismatch")
	}
}

// TestGPUCostDominates pins the §V-F observation that energy cost is tiny
// relative to GPU rental at realistic prices.
func TestGPUCostDominates(t *testing.T) {
	// One GPU-hour at 700 W uses 0.7 kWh.
	c := DefaultCost.Bill(3600, 0.7*JoulesPerKWh)
	if c.EnergyUSD > c.GPUUSD/100 {
		t.Errorf("energy cost %v should be <1%% of GPU cost %v", c.EnergyUSD, c.GPUUSD)
	}
}
