// Command dynamobench regenerates the tables and figures of the DynamoLLM
// paper's evaluation on the simulated substrate.
//
// Usage:
//
//	dynamobench [flags] <experiment>...
//	dynamobench all
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//	fig13 fig14 fig15 fig16 cost headline
//
// (fig6..fig10 share one six-system cluster simulation.)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dynamollm/internal/expt"
)

func main() {
	// All work happens in realMain so deferred profile writers flush
	// before the process exits, even when an experiment fails.
	os.Exit(realMain())
}

func realMain() int {
	peak := flag.Float64("peak", 45, "weekly-peak request rate (req/s) for cluster experiments")
	seed := flag.Uint64("seed", 42, "random seed")
	quick := flag.Bool("quick", false, "shrink long experiments (2-day weeks, thinner load)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations per experiment (output is identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dynamobench [flags] <experiment>... | all\n\nexperiments: %v\n\nflags:\n", names())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			}
		}()
	}

	cfg := expt.Default()
	cfg.PeakRPS = *peak
	cfg.Seed = *seed
	cfg.Quick = *quick
	cfg.Parallelism = *jobs

	if len(args) == 1 && args[0] == "all" {
		args = names()
	}

	// The cluster-hour run feeds five figures; compute it lazily once.
	var hour []expt.SystemRun
	getHour := func() []expt.SystemRun {
		if hour == nil {
			fmt.Fprintln(os.Stderr, "running the six-system cluster hour...")
			hour = cfg.ClusterHour()
		}
		return hour
	}

	for _, name := range args {
		start := time.Now()
		out, err := run(cfg, name, getHour)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

func names() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"cost", "headline",
	}
}

func run(cfg expt.Config, name string, hour func() []expt.SystemRun) (string, error) {
	switch name {
	case "table1":
		return expt.RenderTableI(expt.TableI()), nil
	case "table2":
		return expt.RenderTableII(expt.TableII()), nil
	case "table3":
		return expt.RenderTableIII(expt.TableIII()), nil
	case "table4":
		return expt.RenderTableIV(), nil
	case "table5":
		return expt.RenderTableV(), nil
	case "table6":
		return expt.RenderTableVI(), nil
	case "fig1":
		return expt.RenderFig1(cfg.Fig1()), nil
	case "fig2":
		return expt.RenderFig2Series(cfg.Fig2()), nil
	case "fig3":
		return expt.RenderFig3(expt.Fig3()), nil
	case "fig6":
		return expt.RenderSystems(hour()) + expt.RenderFig6Breakdown(hour()), nil
	case "fig7", "fig8":
		return expt.RenderSystems(hour()), nil
	case "fig9":
		return expt.RenderFig9(hour()), nil
	case "fig10":
		return expt.RenderFig10(hour()), nil
	case "fig11":
		return expt.RenderFig11(cfg.Fig11()), nil
	case "fig12":
		return expt.RenderFig12(cfg.Fig12()), nil
	case "fig13":
		return expt.RenderFig13(cfg.Fig13()), nil
	case "fig14":
		return expt.RenderFig14(cfg.Fig14()), nil
	case "fig15":
		return expt.RenderFig15(cfg.Fig15()), nil
	case "fig16":
		return expt.RenderFig16(cfg.Fig16()), nil
	case "cost":
		return expt.RenderCost(cfg.CostAnalysis()), nil
	case "headline":
		return expt.RenderHeadline(cfg.HeadlineNumbers()), nil
	}
	return "", fmt.Errorf("unknown experiment %q (want one of %v)", name, names())
}
