// Command dynamobench regenerates the tables and figures of the DynamoLLM
// paper's evaluation on the simulated substrate, and runs the scenario
// engine's injected cluster conditions.
//
// Usage:
//
//	dynamobench [flags] <experiment>...
//	dynamobench all
//	dynamobench scenario <name-or-json-file>...
//	dynamobench scenario -list
//	dynamobench snapshot {straight|forked}
//
// Experiments: table1 table2 table3 table4 table5 table6
//
//	fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//	fig13 fig14 fig15 fig16 cost headline scenarios fidelity
//
// (fig6..fig10 share one six-system cluster simulation; "scenarios" runs
// the whole built-in scenario library across all six systems, and
// "scenario <name>" runs one — a library name like flashcrowd, or a path
// to a JSON scenario definition. "fidelity" cross-validates the fluid
// model against the event-level engine, "chaos" sweeps the fault grid —
// crash intensity x straggler fraction x retry budget — "kv" sweeps the
// KV-cache grid — capacity factor x prefix share x disaggregation x
// spill tier, always event fidelity — and none of the three is part of
// "all".)
//
// -fidelity {fluid,event} selects the instance service model for every
// cluster simulation: the closed-form fluid model (fast default) or one
// event-level engine per instance (ground truth, slower). In event mode
// -jobs also bounds the worker pool stepping instance engines inside each
// simulation; any value produces byte-identical output.
//
// -disagg splits every pool of every cluster simulation into a prefill
// pool and a decode pool with a modeled KV-transfer handoff between them
// (implies -fidelity event).
//
// -kv-tier {none,cpu,ssd} puts a spill tier below every engine's GPU
// block pool (implies -fidelity event): preemption victims swap out over
// a modeled link (cpu ~25 GB/s, ssd ~5 GB/s; -tier-bw overrides) instead
// of recomputing when the modeled transfer is cheaper — or always, with
// -swap-policy always. The kv sweep carries its own tier axis and
// ignores these flags for its tier cells.
//
// "snapshot straight" and "snapshot forked" run the same live session to
// the same horizon — the forked variant through a mid-run checkpoint and
// resume — and must print byte-identical reports (the CI determinism
// gate diffs them).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dynamollm/internal/core"
	"dynamollm/internal/expt"
	"dynamollm/internal/scenario"
)

func main() {
	// All work happens in realMain so deferred profile writers flush
	// before the process exits, even when an experiment fails.
	os.Exit(realMain())
}

func realMain() int {
	peak := flag.Float64("peak", 45, "weekly-peak request rate (req/s) for cluster experiments")
	seed := flag.Uint64("seed", 42, "random seed")
	quick := flag.Bool("quick", false, "shrink long experiments (2-day weeks, thinner load)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations per experiment (output is identical for any value)")
	fidelity := flag.String("fidelity", "fluid", "instance fidelity backend: fluid|event")
	disagg := flag.Bool("disagg", false, "split pools into prefill/decode with a modeled KV handoff (implies -fidelity event)")
	kvTier := flag.String("kv-tier", "none", "KV spill tier below each engine's GPU block pool: none|cpu|ssd (implies -fidelity event; the kv sweep carries its own tier axis)")
	tierBW := flag.Float64("tier-bw", 0, "override the KV spill link bandwidth in bytes/s (0 = tier default: 25e9 cpu, 5e9 ssd)")
	swapPolicy := flag.String("swap-policy", "auto", "KV swap-vs-recompute policy under a spill tier: auto|always")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dynamobench [flags] <experiment>... | all | scenario <name-or-json-file>...\n\n"+
			"experiments: %v\nscenarios:   %v (or -list for details)\n\nflags:\n",
			names(), scenario.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}

	fid, err := core.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamobench: unknown fidelity %q (want one of %v)\n\n", *fidelity, core.FidelityNames)
		flag.Usage()
		return 2
	}
	tier, err := core.ParseKVTier(*kvTier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamobench: unknown kv tier %q (want one of %v)\n\n", *kvTier, core.KVTierNames)
		flag.Usage()
		return 2
	}
	policy, err := core.ParseKVSwapPolicy(*swapPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamobench: unknown kv swap policy %q (want one of %v)\n\n", *swapPolicy, core.KVSwapPolicyNames)
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			}
		}()
	}

	cfg := expt.Default()
	cfg.PeakRPS = *peak
	cfg.Seed = *seed
	cfg.Quick = *quick
	cfg.Parallelism = *jobs
	cfg.Fidelity = fid
	cfg.StepJobs = *jobs
	cfg.Disagg = *disagg
	cfg.KVTier = tier
	cfg.KVTierBandwidth = *tierBW
	cfg.KVSwapPolicy = policy
	if *disagg || tier != core.KVTierNone {
		cfg.Fidelity = core.FidelityEvent
	}

	// Scenario mode: run named (or JSON-defined) scenarios through the
	// six systems instead of regenerating paper figures.
	if args[0] == "scenario" {
		return runScenarios(cfg, args[1:])
	}

	// Snapshot mode: one live session run straight or through a mid-run
	// checkpoint+fork; the two reports must be byte-identical.
	if args[0] == "snapshot" {
		return runSnapshot(cfg, args[1:])
	}

	if len(args) == 1 && args[0] == "all" {
		args = allNames()
	}

	// The cluster-hour run feeds five figures; compute it lazily once.
	var hour []expt.SystemRun
	getHour := func() []expt.SystemRun {
		if hour == nil {
			fmt.Fprintln(os.Stderr, "running the six-system cluster hour...")
			hour = cfg.ClusterHour()
		}
		return hour
	}

	for _, name := range args {
		start := time.Now()
		out, err := run(cfg, name, getHour)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
			return 1
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// allNames is the experiment set "all" expands to (the paper's evaluation
// plus the scenario sweep).
func allNames() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"cost", "headline", "scenarios",
	}
}

// names lists every accepted experiment: the "all" set plus the fidelity
// cross-validation (runs its own fluid+event grid), the chaos sweep
// (fault grid, robustness-focused), and the KV sweep (event-fidelity
// cache dynamics), all kept out of "all".
func names() []string {
	return append(allNames(), "fidelity", "chaos", "kv")
}

// runScenarios resolves each argument to a scenario — a built-in library
// name, or a path to a JSON definition — and compares the six systems
// under it. "-list" (or no arguments) prints the library instead.
func runScenarios(cfg expt.Config, args []string) int {
	if len(args) == 0 || args[0] == "-list" || args[0] == "--list" {
		fmt.Println("built-in scenarios:")
		for _, sc := range scenario.Library() {
			fmt.Printf("  %-13s %4.2f days  %-12s %s\n", sc.Name, sc.Days, sc.ServiceName(), sc.Description)
		}
		fmt.Println("\nrun one with: dynamobench scenario <name>   (or a path to a scenario JSON)")
		return 0
	}
	scs := make([]*scenario.Scenario, 0, len(args))
	for _, arg := range args {
		sc, ok := scenario.ByName(arg)
		if !ok {
			if !strings.ContainsAny(arg, "./") {
				fmt.Fprintf(os.Stderr, "dynamobench: unknown scenario %q (want one of %v, or a JSON file path)\n",
					arg, scenario.Names())
				return 2
			}
			var err error
			sc, err = scenario.LoadFile(arg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
				return 1
			}
		}
		scs = append(scs, sc)
	}
	start := time.Now()
	results, err := cfg.ScenarioRuns(scs, core.SystemNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamobench: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Println(expt.RenderScenario(r))
	}
	fmt.Fprintf(os.Stderr, "[%d scenario(s) took %v]\n", len(results), time.Since(start).Round(time.Millisecond))
	return 0
}

// runSnapshot renders the snapshot-replay report, either straight through
// or through a mid-run checkpoint and fork.
func runSnapshot(cfg expt.Config, args []string) int {
	mode := "straight"
	if len(args) > 0 {
		mode = args[0]
	}
	if mode != "straight" && mode != "forked" || len(args) > 1 {
		fmt.Fprintln(os.Stderr, "dynamobench: usage: snapshot {straight|forked}")
		return 2
	}
	fmt.Print(cfg.SnapshotReplay(mode == "forked"))
	return 0
}

func run(cfg expt.Config, name string, hour func() []expt.SystemRun) (string, error) {
	switch name {
	case "table1":
		return expt.RenderTableI(expt.TableI()), nil
	case "table2":
		return expt.RenderTableII(expt.TableII()), nil
	case "table3":
		return expt.RenderTableIII(expt.TableIII()), nil
	case "table4":
		return expt.RenderTableIV(), nil
	case "table5":
		return expt.RenderTableV(), nil
	case "table6":
		return expt.RenderTableVI(), nil
	case "fig1":
		return expt.RenderFig1(cfg.Fig1()), nil
	case "fig2":
		return expt.RenderFig2Series(cfg.Fig2()), nil
	case "fig3":
		return expt.RenderFig3(expt.Fig3()), nil
	case "fig6":
		return expt.RenderSystems(hour()) + expt.RenderFig6Breakdown(hour()), nil
	case "fig7", "fig8":
		return expt.RenderSystems(hour()), nil
	case "fig9":
		return expt.RenderFig9(hour()), nil
	case "fig10":
		return expt.RenderFig10(hour()), nil
	case "fig11":
		return expt.RenderFig11(cfg.Fig11()), nil
	case "fig12":
		return expt.RenderFig12(cfg.Fig12()), nil
	case "fig13":
		return expt.RenderFig13(cfg.Fig13()), nil
	case "fig14":
		return expt.RenderFig14(cfg.Fig14()), nil
	case "fig15":
		return expt.RenderFig15(cfg.Fig15()), nil
	case "fig16":
		return expt.RenderFig16(cfg.Fig16()), nil
	case "cost":
		return expt.RenderCost(cfg.CostAnalysis()), nil
	case "headline":
		return expt.RenderHeadline(cfg.HeadlineNumbers()), nil
	case "scenarios":
		rs, err := cfg.ScenarioSweep()
		if err != nil {
			return "", err
		}
		return expt.RenderScenarioSweep(rs), nil
	case "chaos":
		ps, err := cfg.ChaosSweep()
		if err != nil {
			return "", err
		}
		return expt.RenderChaos(ps), nil
	case "kv":
		ps, err := cfg.KVSweep()
		if err != nil {
			return "", err
		}
		return expt.RenderKV(ps), nil
	case "fidelity":
		return expt.RenderFidelity(cfg.FidelityCompare()), nil
	}
	return "", fmt.Errorf("unknown experiment %q (want one of %v)", name, names())
}
