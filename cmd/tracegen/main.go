// Command tracegen generates and inspects synthetic LLM-inference traces —
// the stand-in for the paper's Azure Coding/Conversation production traces.
//
// Usage:
//
//	tracegen -service conversation -days 7 -peak 45 -o week.csv
//	tracegen -stats week.csv
//
// Traces serialize as CSV with a header row and one request per line:
//
//	timestamp_s,input_tokens,output_tokens
//	32400.125,512,187
//
// timestamp_s is seconds from trace start (t = 0 is Monday 00:00 of the
// synthetic week), input_tokens/output_tokens are the request's true
// lengths. The same schema is accepted anywhere a trace is read back
// (tracegen -stats, scenario JSON workflows, the library's ReadCSV).
package main

import (
	"flag"
	"fmt"
	"os"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func main() {
	service := flag.String("service", "conversation", "service profile: conversation|coding")
	days := flag.Float64("days", 7, "trace duration in days")
	peak := flag.Float64("peak", 45, "weekly-peak request rate (req/s)")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("o", "-", "output CSV path ('-' = stdout)")
	stats := flag.String("stats", "", "print statistics of an existing trace CSV and exit")
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: tracegen [flags]

Generates a synthetic LLM-inference trace (or, with -stats, summarizes an
existing one). Output CSV schema, header row included:

  timestamp_s,input_tokens,output_tokens
  32400.125,512,187

timestamp_s counts seconds from trace start (t=0 is Monday 00:00 of the
synthetic week); the token columns are the request's true lengths.

flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *stats != "" {
		if err := printStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var svc trace.Service
	switch *service {
	case "conversation":
		svc = trace.Conversation
	case "coding":
		svc = trace.Coding
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown service %q (want conversation|coding)\n\n", *service)
		flag.Usage()
		os.Exit(2)
	}

	if *days <= 0 || *peak <= 0 {
		fmt.Fprintf(os.Stderr, "tracegen: -days and -peak must be positive\n\n")
		flag.Usage()
		os.Exit(2)
	}

	tr := trace.Generate(trace.GenConfig{
		Service:  svc,
		Duration: *days * simclock.Day,
		PeakRPS:  *peak,
		Seed:     *seed,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d requests\n", len(tr))
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("requests:        %d\n", st.Requests)
	fmt.Printf("total tokens:    %.0f\n", st.TotalTokens)
	fmt.Printf("peak/avg load:   %.2f\n", st.PeakOverAvg)
	fmt.Printf("peak/valley:     %.2f\n", st.PeakOverValley)
	fmt.Println("class shares:")
	for _, c := range workload.AllClasses {
		fmt.Printf("  %-3s %5.1f%%\n", c, st.ClassShare[c]*100)
	}
	return nil
}
