// Command tracegen generates and inspects synthetic LLM-inference traces —
// the stand-in for the paper's Azure Coding/Conversation production traces.
//
// Usage:
//
//	tracegen -service conversation -days 7 -peak 45 -o week.csv
//	tracegen -stats week.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func main() {
	service := flag.String("service", "conversation", "service profile: conversation|coding")
	days := flag.Float64("days", 7, "trace duration in days")
	peak := flag.Float64("peak", 45, "weekly-peak request rate (req/s)")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("o", "-", "output CSV path ('-' = stdout)")
	stats := flag.String("stats", "", "print statistics of an existing trace CSV and exit")
	flag.Parse()

	if *stats != "" {
		if err := printStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var svc trace.Service
	switch *service {
	case "conversation":
		svc = trace.Conversation
	case "coding":
		svc = trace.Coding
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown service %q\n", *service)
		os.Exit(2)
	}

	tr := trace.Generate(trace.GenConfig{
		Service:  svc,
		Duration: *days * simclock.Day,
		PeakRPS:  *peak,
		Seed:     *seed,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d requests\n", len(tr))
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("requests:        %d\n", st.Requests)
	fmt.Printf("total tokens:    %.0f\n", st.TotalTokens)
	fmt.Printf("peak/avg load:   %.2f\n", st.PeakOverAvg)
	fmt.Printf("peak/valley:     %.2f\n", st.PeakOverValley)
	fmt.Println("class shares:")
	for _, c := range workload.AllClasses {
		fmt.Printf("  %-3s %5.1f%%\n", c, st.ClassShare[c]*100)
	}
	return nil
}
