package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dynamollm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig6 	       1	 275591357 ns/op	        53.49 dynamo-energy-saving-%	44220864 B/op	  199308 allocs/op
PASS
ok  	dynamollm	0.280s
pkg: dynamollm/internal/core
BenchmarkTickLoopSinglePool-8 	       3	  29165562 ns/op	  560394 B/op	    4009 allocs/op
PASS
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Errorf("env = %q/%q/%q", r.Goos, r.Goarch, r.CPU)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(r.Benchmarks))
	}
	fig6 := r.Benchmarks[0]
	if fig6.Name != "BenchmarkFig6" || fig6.Pkg != "dynamollm" || fig6.Iterations != 1 {
		t.Errorf("fig6 header = %+v", fig6)
	}
	if fig6.NsPerOp != 275591357 || fig6.BytesPerOp != 44220864 || fig6.AllocsOp != 199308 {
		t.Errorf("fig6 values = %+v", fig6)
	}
	if fig6.Metrics["dynamo-energy-saving-%"] != 53.49 {
		t.Errorf("fig6 metrics = %v", fig6.Metrics)
	}
	tick := r.Benchmarks[1]
	if tick.Name != "BenchmarkTickLoopSinglePool" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", tick.Name)
	}
	if tick.Pkg != "dynamollm/internal/core" || tick.AllocsOp != 4009 {
		t.Errorf("tick = %+v", tick)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	r, err := parse(strings.NewReader("BenchmarkBroken abc\nnot a line\nBenchmarkX 2 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 1 || r.Benchmarks[0].Name != "BenchmarkX" || r.Benchmarks[0].NsPerOp != 5 {
		t.Errorf("benchmarks = %+v", r.Benchmarks)
	}
}
