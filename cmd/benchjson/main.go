// Command benchjson converts `go test -bench` output into a stable JSON
// document, so each PR can commit a BENCH_<n>.json benchmark baseline and
// CI can archive the trajectory as an artifact:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x ./... > bench.out
//	benchjson -out BENCH_2.json < bench.out
//
// Every benchmark line is parsed generically: after the name and the
// iteration count, values come in (value, unit) pairs; ns/op, B/op, and
// allocs/op get first-class fields, anything else (the repository's
// custom b.ReportMetric units) lands in "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects benchmark lines,
// tracking the pkg: headers go test prints per package.
func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one `BenchmarkName  N  v1 unit1  v2 unit2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// go test appends -GOMAXPROCS to the name (Benchmark...-8); strip it.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
