// Command dynamoserve runs a simulated DynamoLLM cluster as a live
// serving control plane — the stdlib stand-in for the paper's gRPC
// controllers (§IV-E). A long-lived serve.Session advances the cluster
// simulation incrementally on a wall-clock-paced virtual clock (no
// re-simulation per query) while the server accepts live traffic:
//
//	GET  /stats    running cluster summary (energy, servers, SLO, lag)
//	GET  /config   the active system configuration
//	GET  /metrics  Prometheus text exposition (per-class TTFT/TBT)
//	POST /request  inject {"input_tokens":N,"output_tokens":M}; blocks
//	               for the completion (?wait=0 returns on acceptance;
//	               Accept: text/event-stream streams SSE token events)
//	POST /events   inject scenario runtime events relative to now, e.g.
//	               {"kind":"outage","servers":2} or
//	               {"kind":"price","price_mult":5,"duration_hours":2}
//
// The default -fidelity event runs one event-level continuous-batching
// engine per instance, so injected requests see real queueing, batching,
// and token-level latencies. SIGINT/SIGTERM drains in-flight work through
// the engines before exiting (-drain-limit bounds the drain).
//
// Robustness controls: -max-inflight and -max-lag shed injections with
// 429 + Retry-After when the server is overloaded; a per-request
// "deadline_s" field turns a blown wait into 408. With -state DIR every
// acked injection is WAL-synced before the ack and progress is
// checkpointed, so after a crash (even kill -9) `dynamoserve -state DIR
// -restore` rebuilds the session losing no acked request.
//
// Usage:
//
//	dynamoserve -addr :8080 -system dynamollm -peak 45 -speed 60 \
//	            -fidelity event -loop -state /tmp/dyn.state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dynamollm/internal/core"
	"dynamollm/internal/serve"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8080", "listen address")
	system := flag.String("system", "dynamollm", "control system (see /config)")
	peak := flag.Float64("peak", 45, "weekly-peak request rate")
	speed := flag.Float64("speed", 60, "virtual seconds per wall second")
	seed := flag.Uint64("seed", 42, "random seed")
	fidelity := flag.String("fidelity", "event", "instance fidelity backend: fluid|event")
	loop := flag.Bool("loop", true, "replay the base trace when its horizon is reached")
	waitTimeout := flag.Duration("wait-timeout", serve.DefaultWaitTimeout, "max wall time a /request waits for its completion")
	maxInflight := flag.Int("max-inflight", 0, "shed /request injections (429) once this many are in flight (0 = unlimited)")
	maxLag := flag.Float64("max-lag", 0, "shed /request injections (429) while the simulation trails the pacer by more than this many virtual seconds (0 = unlimited)")
	drainLimit := flag.Float64("drain-limit", 0, "max virtual seconds Close simulates to drain stragglers on shutdown (0 = unlimited)")
	stateDir := flag.String("state", "", "state directory for crash durability (WAL + checkpoints); empty disables")
	restore := flag.Bool("restore", false, "resume the session recorded in -state (system/peak/speed/seed/fidelity/loop come from its checkpoint)")
	flag.Parse()

	if *restore && *stateDir == "" {
		fmt.Fprintf(os.Stderr, "dynamoserve: -restore requires -state\n\n")
		flag.Usage()
		return 2
	}
	if *restore {
		// The checkpoint is authoritative for everything that must match
		// the pre-crash session; the command-line values are ignored.
		ck, err := serve.ReadCheckpoint(*stateDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynamoserve: restore: %v\n", err)
			return 1
		}
		*system, *seed, *speed, *fidelity, *loop = ck.System, ck.Seed, ck.Speed, ck.Fidelity, ck.Loop
		if p, err := strconv.ParseFloat(ck.Meta["peak"], 64); err == nil && p > 0 {
			*peak = p
		}
	}

	opts, ok := core.SystemByName(*system)
	if !ok {
		fmt.Fprintf(os.Stderr, "dynamoserve: unknown system %q (want one of %v)\n\n", *system, core.SystemNames)
		flag.Usage()
		return 2
	}
	fid, err := core.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamoserve: unknown fidelity %q (want one of %v)\n\n", *fidelity, core.FidelityNames)
		flag.Usage()
		return 2
	}
	opts.Fidelity = fid
	opts.Seed = *seed
	base := trace.OpenSourceHour(*peak, *seed)
	// With -loop, the session wraps this curve at its replay period so
	// the predictor stays in phase with the replayed traffic.
	opts.WarmLoad = func(t simclock.Time, c workload.Class) float64 {
		return trace.ExpectedRate(trace.Conversation, *peak, t+trace.OpenSourceHourStart, c)
	}

	cfg := serve.Config{
		Name:          *system,
		Opts:          opts,
		Trace:         base,
		Speed:         *speed,
		Loop:          *loop,
		Logf:          log.Printf,
		MaxInflight:   *maxInflight,
		MaxLagSeconds: *maxLag,
		DrainLimit:    *drainLimit,
		StateDir:      *stateDir,
		Meta:          map[string]string{"peak": strconv.FormatFloat(*peak, 'g', -1, 64)},
	}
	var session *serve.Session
	if *restore {
		session, err = serve.Restore(cfg)
	} else {
		session, err = serve.NewDurable(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynamoserve: %v\n", err)
		return 1
	}
	session.Start()

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(session, *waitTimeout)}
	log.Printf("dynamoserve: %s on %s (x%.0f virtual time, %s fidelity, %d trace requests, loop=%v)",
		*system, *addr, *speed, fid, len(base), *loop)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Printf("dynamoserve: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: drain the simulation first — Close resolves
	// every blocked /request waiter (new injections are already rejected
	// as "session closed") — then let the handlers flush their responses
	// before the listener goes away.
	log.Printf("dynamoserve: shutting down, draining in-flight work")
	res, drained := session.Close()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dynamoserve: shutdown: %v", err)
	}
	log.Printf("dynamoserve: served %.0f virtual s: %d requests (%d squashed), %.1f kWh, SLO %.3f, drained %d in flight",
		res.Duration, res.Requests, res.Squashed, res.EnergyKWh(), res.SLOAttainment(), drained)
	return 0
}
