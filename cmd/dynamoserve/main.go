// Command dynamoserve runs a simulated DynamoLLM cluster behind an HTTP
// control plane — the stdlib stand-in for the paper's gRPC controllers
// (§IV-E). The simulation advances in accelerated virtual time while the
// server exposes live state:
//
//	GET  /stats    cluster summary (energy, servers, SLO attainment)
//	GET  /config   the active system configuration
//	POST /request  inject one request {"input_tokens":N,"output_tokens":M}
//
// Usage:
//
//	dynamoserve -addr :8080 -system dynamollm -peak 45 -speed 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"dynamollm/internal/core"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

type server struct {
	mu       sync.Mutex
	opts     core.Options
	trace    trace.Trace
	injected trace.Trace
	result   *core.Result
	simTime  float64
	started  time.Time
	speed    float64
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	system := flag.String("system", "dynamollm", "control system (see /config)")
	peak := flag.Float64("peak", 45, "weekly-peak request rate")
	speed := flag.Float64("speed", 60, "virtual seconds per wall second")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	opts, ok := core.SystemByName(*system)
	if !ok {
		log.Fatalf("unknown system %q (want one of %v)", *system, core.SystemNames)
	}
	opts.Seed = *seed
	opts.WarmLoad = func(t simclock.Time, c workload.Class) float64 {
		return trace.ExpectedRate(trace.Conversation, *peak, t+trace.OpenSourceHourStart, c)
	}

	s := &server{
		opts:    opts,
		trace:   trace.OpenSourceHour(*peak, *seed),
		started: time.Now(),
		speed:   *speed,
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("POST /request", s.handleRequest)

	log.Printf("dynamoserve: %s on %s (x%.0f virtual time, %d trace requests)",
		*system, *addr, *speed, len(s.trace))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// advance re-simulates the trace up to the current virtual time. The
// discrete-time simulator is fast enough to recompute from scratch on each
// query, which keeps the server stateless and consistent.
func (s *server) advance() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simTime = time.Since(s.started).Seconds() * s.speed
	if s.simTime > 3600 {
		s.simTime = 3600
	}
	window := append(trace.Trace{}, s.trace...)
	window = append(window, s.injected...)
	var upto trace.Trace
	for _, e := range window {
		if float64(e.At) <= s.simTime {
			upto = append(upto, e)
		}
	}
	s.result = core.Run(upto, s.opts)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.advance()
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.result
	writeJSON(w, map[string]interface{}{
		"virtual_seconds": s.simTime,
		"requests":        res.Requests,
		"squashed":        res.Squashed,
		"energy_kwh":      res.EnergyKWh(),
		"avg_servers":     res.AvgServers,
		"slo_attainment":  res.SLOAttainment(),
		"ttft_p99_s":      res.TTFT.Percentile(99),
		"tbt_p99_s":       res.TBT.Percentile(99),
		"reshards":        res.Reshards,
		"scale_outs":      res.ScaleOuts,
		"emergencies":     res.Emergencies,
	})
}

func (s *server) handleConfig(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, map[string]interface{}{
		"systems":            core.SystemNames,
		"model":              s.opts.Model,
		"num_pools":          s.opts.NumPools,
		"scale_instances":    s.opts.ScaleInstances,
		"scale_sharding":     s.opts.ScaleSharding,
		"scale_frequency":    s.opts.ScaleFrequency,
		"reduced_overheads":  s.opts.ReducedOverheads,
		"servers":            s.opts.Servers,
		"predictor_accuracy": s.opts.PredictorAccuracy,
	})
}

func (s *server) handleRequest(w http.ResponseWriter, r *http.Request) {
	var body struct {
		InputTokens  int `json:"input_tokens"`
		OutputTokens int `json:"output_tokens"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if body.InputTokens <= 0 || body.OutputTokens <= 0 {
		http.Error(w, "input_tokens and output_tokens must be positive", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	at := simclock.Time(s.simTime)
	s.injected = append(s.injected, trace.Entry{
		At:           at,
		InputTokens:  body.InputTokens,
		OutputTokens: body.OutputTokens,
	})
	s.mu.Unlock()
	writeJSON(w, map[string]interface{}{
		"accepted_at_virtual_s": float64(at),
		"class":                 workload.Classify(body.InputTokens, body.OutputTokens).String(),
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Println("encode:", err)
	}
}
