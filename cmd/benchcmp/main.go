// Command benchcmp is the CI perf-regression gate: it compares two
// benchjson reports (the committed baseline vs a fresh run) and fails
// when any benchmark got more than -max-slower percent slower in ns/op.
//
//	make bench-json N=gate BENCHTIME=2x
//	benchcmp BENCH_6.json BENCH_gate.json
//
// Benchmarks are joined by package + name; -count=N repeats collapse to
// their per-benchmark minimum before comparing, which is what makes a
// 10% budget holdable on noisy shared runners. Allocations are part of
// the contract too, but softer: allocs/op growth beyond -max-allocs percent
// is reported as a warning, not a failure (alloc counts are exact, but
// growth is often an accepted cost of a feature; timing regressions are
// not). ns/op is only gated when both reports come from the same CPU
// model — cross-machine wall-clock comparisons are noise, so those are
// downgraded to warnings as well.
//
// Exit status: 0 clean or warnings only, 1 regression, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark and Report mirror cmd/benchjson's output document.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	maxSlower := flag.Float64("max-slower", 10, "fail when ns/op grows more than this percent")
	maxAllocs := flag.Float64("max-allocs", 5, "warn when allocs/op grows more than this percent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [flags] baseline.json current.json\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	sameCPU := base.CPU != "" && base.CPU == cur.CPU
	if !sameCPU {
		fmt.Printf("note: baseline CPU %q != current CPU %q; ns/op deltas are warnings, not failures\n",
			base.CPU, cur.CPU)
	}

	baseByKey := collapse(base.Benchmarks)

	curByKey := collapse(cur.Benchmarks)
	keys := make([]string, 0, len(curByKey))
	for key := range curByKey {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	regressions, warnings := 0, 0
	for _, key := range keys {
		c := curByKey[key]
		b, ok := baseByKey[key]
		if !ok {
			fmt.Printf("new:     %-60s %12.0f ns/op (no baseline)\n", key, c.NsPerOp)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			delta := pct(b.NsPerOp, c.NsPerOp)
			switch {
			case delta > *maxSlower && sameCPU:
				regressions++
				fmt.Printf("SLOWER:  %-60s %12.0f -> %12.0f ns/op  (%+.1f%% > %.0f%% budget)\n",
					key, b.NsPerOp, c.NsPerOp, delta, *maxSlower)
			case delta > *maxSlower:
				warnings++
				fmt.Printf("warn:    %-60s %12.0f -> %12.0f ns/op  (%+.1f%%, cross-machine)\n",
					key, b.NsPerOp, c.NsPerOp, delta)
			case delta < -*maxSlower:
				fmt.Printf("faster:  %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
					key, b.NsPerOp, c.NsPerOp, delta)
			}
		}
		if b.AllocsOp > 0 && pct(b.AllocsOp, c.AllocsOp) > *maxAllocs {
			warnings++
			fmt.Printf("warn:    %-60s %12.0f -> %12.0f allocs/op  (%+.1f%%)\n",
				key, b.AllocsOp, c.AllocsOp, pct(b.AllocsOp, c.AllocsOp))
		}
	}
	for key := range baseByKey {
		if _, ok := curByKey[key]; !ok {
			warnings++
			fmt.Printf("warn:    %-60s missing from current run\n", key)
		}
	}

	switch {
	case regressions > 0:
		fmt.Printf("\nFAIL: %d benchmark(s) regressed beyond the %.0f%% ns/op budget (%d warning(s))\n",
			regressions, *maxSlower, warnings)
		os.Exit(1)
	case warnings > 0:
		fmt.Printf("\nok: no ns/op regressions (%d warning(s))\n", warnings)
	default:
		fmt.Printf("ok: %d benchmark(s) within budget\n", len(curByKey))
	}
}

// pct is the relative growth of cur over base in percent.
func pct(base, cur float64) float64 { return (cur - base) / base * 100 }

// collapse keys benchmarks by pkg+name, folding -count=N repeats into
// their per-metric minimum — the standard noise-robust statistic: the
// fastest observed run is the one least perturbed by the scheduler/GC,
// and a true regression slows every repeat.
func collapse(bs []Benchmark) map[string]Benchmark {
	out := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		key := b.Pkg + " " + b.Name
		prev, ok := out[key]
		if !ok {
			out[key] = b
			continue
		}
		prev.NsPerOp = minPos(prev.NsPerOp, b.NsPerOp)
		prev.BytesPerOp = minPos(prev.BytesPerOp, b.BytesPerOp)
		prev.AllocsOp = minPos(prev.AllocsOp, b.AllocsOp)
		out[key] = prev
	}
	return out
}

// minPos is the smaller of two values, ignoring zeros (a metric absent
// from one repeat must not erase the other's reading).
func minPos(a, b float64) float64 {
	if a <= 0 {
		return b
	}
	if b <= 0 || a < b {
		return a
	}
	return b
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
	os.Exit(1)
}
