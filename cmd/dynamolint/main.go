// Command dynamolint is the project's static-analysis gate: it runs the
// four dynamolint analyzers (detrand, snapfields, conserve, steadystate
// — see internal/lint) over the module and exits nonzero on any
// finding. make lint and CI invoke it as
//
//	go run ./cmd/dynamolint ./...
//
// Flags select a subset of analyzers (-run detrand,conserve) and the
// module root (-C dir). Findings print one per line as
// file:line:col: message (analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynamollm/internal/lint"
)

func main() {
	var (
		chdir = flag.String("C", "", "module root directory (default: nearest go.mod above the working directory)")
		only  = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dynamolint [-C dir] [-run a,b] [packages]\n\n"+
			"Packages default to ./... . Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamolint:", err)
		os.Exit(2)
	}
	root, err := moduleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamolint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	loader := lint.NewLoader(root, cfg.ModulePath)
	pkgs, err := loader.LoadPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamolint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cfg, pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dynamolint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		lint.NewDetrand(),
		lint.NewSnapfields(),
		lint.NewConserve(),
		lint.NewSteadystate(),
	}
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot finds the directory holding go.mod, starting from dir (or
// the working directory).
func moduleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
