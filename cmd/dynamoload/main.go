// Command dynamoload is an open-loop load generator for dynamoserve: it
// fires POST /request at a configured rate with Poisson arrivals —
// independent of response latency, the way real traffic arrives — and
// reports wall-clock completion latency percentiles plus the server's own
// view of the run. It exists so the serving control plane's scale story
// is measurable end to end (make serve-smoke drives it in CI).
//
// Usage:
//
//	dynamoload -url http://localhost:8080 -rps 500 -duration 10s
//	dynamoload -rps 50 -mix            # sample realistic request classes
//
// Each request blocks for its completion (the server resolves it in
// accelerated virtual time), so wall latency includes simulated queueing
// plus pacing granularity. Exit status is non-zero when more than 10% of
// requests fail or none complete.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynamollm/internal/metrics"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	url := flag.String("url", "http://localhost:8080", "dynamoserve base URL")
	rps := flag.Float64("rps", 100, "target request rate (req/s, Poisson arrivals)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	inTok := flag.Int("in", 512, "input tokens per request")
	outTok := flag.Int("out", 187, "output tokens per request")
	mix := flag.Bool("mix", false, "sample class-realistic token lengths instead of fixed -in/-out")
	seed := flag.Uint64("seed", 1, "random seed for arrivals and the -mix sampler")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request completion timeout")
	flag.Parse()
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "dynamoload: -rps and -duration must be positive")
		flag.Usage()
		return 2
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	var (
		sent, completed, failed, squashed atomic.Int64
		mu                                sync.Mutex
		latency                           = metrics.NewDist()
	)
	rng := simclock.NewRNG(*seed)
	lenRNG := rng.Split(1)
	profileWeights := trace.ProfileFor(trace.Conversation).BaseClassWeights
	classWeights := profileWeights[:]

	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		// Open loop: the schedule never waits for responses.
		next = next.Add(time.Duration(rng.Exp(*rps) * float64(time.Second)))
		if next.Sub(start) >= *duration {
			break
		}
		time.Sleep(time.Until(next))
		in, out := *inTok, *outTok
		if *mix {
			in, out = trace.SampleLengths(lenRNG, workload.Class(rng.Pick(classWeights)))
		}
		sent.Add(1)
		wg.Add(1)
		go func(in, out int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]int{"input_tokens": in, "output_tokens": out})
			t0 := time.Now()
			resp, err := client.Post(*url+"/request", "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				return
			}
			defer resp.Body.Close()
			var done struct {
				Squashed bool `json:"squashed"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&done) != nil {
				failed.Add(1)
				return
			}
			if done.Squashed {
				squashed.Add(1)
			}
			completed.Add(1)
			mu.Lock()
			latency.Add(time.Since(t0).Seconds())
			mu.Unlock()
		}(in, out)
	}
	sendWindow := time.Since(start)
	wg.Wait()
	drainWait := time.Since(start) - sendWindow

	n := sent.Load()
	fmt.Printf("dynamoload: %d sent in %.1fs (%.1f req/s achieved, target %.1f), %d completed, %d squashed, %d errors, drain wait %.1fs\n",
		n, sendWindow.Seconds(), float64(n)/sendWindow.Seconds(), *rps, completed.Load(), squashed.Load(), failed.Load(), drainWait.Seconds())
	fmt.Printf("  wall completion latency: p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
		latency.Percentile(50), latency.Percentile(90), latency.Percentile(99), latency.Max())

	if stats := scrapeStats(client, *url); stats != nil {
		fmt.Printf("  server: virtual %.0fs, %d requests, slo %.3f, ttft p99 %.3fs, %d servers active, sim lag %.1fs\n",
			stats["virtual_seconds"], int(stats["requests"]), stats["slo_attainment"],
			stats["ttft_p99_s"], int(stats["active_servers"]), stats["sim_lag_virtual_s"])
	}

	if completed.Load() == 0 || failed.Load()*10 > n {
		fmt.Fprintln(os.Stderr, "dynamoload: failure threshold exceeded")
		return 1
	}
	return 0
}

// scrapeStats fetches the server's /stats document, reduced to its
// numeric fields (nil on any error; the load report is still useful
// without it).
func scrapeStats(client *http.Client, url string) map[string]float64 {
	resp, err := client.Get(url + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if json.NewDecoder(resp.Body).Decode(&raw) != nil {
		return nil
	}
	stats := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			stats[k] = f
		}
	}
	return stats
}
