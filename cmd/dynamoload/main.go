// Command dynamoload is an open-loop load generator for dynamoserve: it
// fires POST /request at a configured rate with Poisson arrivals —
// independent of response latency, the way real traffic arrives — and
// reports wall-clock completion latency percentiles plus the server's own
// view of the run. It exists so the serving control plane's scale story
// is measurable end to end (make serve-smoke drives it in CI).
//
// Usage:
//
//	dynamoload -url http://localhost:8080 -rps 500 -duration 10s
//	dynamoload -rps 50 -mix            # sample realistic request classes
//
// Each request blocks for its completion (the server resolves it in
// accelerated virtual time), so wall latency includes simulated queueing
// plus pacing granularity. Rejections the server marks transient —
// connection errors, 429 shed (its Retry-After is honored), and 503 —
// are retried up to -retries times with jittered exponential backoff;
// the summary breaks failures down by class. Exit status is non-zero
// when the terminal-failure fraction exceeds -max-fail or none complete.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynamollm/internal/metrics"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// Backoff shape for retried requests: exponential from backoffBase,
// capped, with a multiplicative jitter in [0.5, 1.5); a server-sent
// Retry-After takes precedence when longer.
const (
	backoffBase = 200 * time.Millisecond
	backoffCap  = 5 * time.Second
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	url := flag.String("url", "http://localhost:8080", "dynamoserve base URL")
	rps := flag.Float64("rps", 100, "target request rate (req/s, Poisson arrivals)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	inTok := flag.Int("in", 512, "input tokens per request")
	outTok := flag.Int("out", 187, "output tokens per request")
	mix := flag.Bool("mix", false, "sample class-realistic token lengths instead of fixed -in/-out")
	seed := flag.Uint64("seed", 1, "random seed for arrivals and the -mix sampler")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request completion timeout")
	retries := flag.Int("retries", 3, "retry budget per request for transient rejections (connection errors, 429, 503)")
	maxFail := flag.Float64("max-fail", 0.10, "terminal-failure fraction above which the exit status is non-zero")
	flag.Parse()
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "dynamoload: -rps and -duration must be positive")
		flag.Usage()
		return 2
	}
	if *maxFail < 0 || *maxFail > 1 {
		fmt.Fprintln(os.Stderr, "dynamoload: -max-fail must be in [0, 1]")
		flag.Usage()
		return 2
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	var (
		sent, failed, retried atomic.Int64
		ctrs                  counters
		mu                    sync.Mutex
		latency               = metrics.NewDist()
	)
	rng := simclock.NewRNG(*seed)
	lenRNG := rng.Split(1)
	profileWeights := trace.ProfileFor(trace.Conversation).BaseClassWeights
	classWeights := profileWeights[:]

	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		// Open loop: the schedule never waits for responses.
		next = next.Add(time.Duration(rng.Exp(*rps) * float64(time.Second)))
		if next.Sub(start) >= *duration {
			break
		}
		time.Sleep(time.Until(next))
		in, out := *inTok, *outTok
		if *mix {
			in, out = trace.SampleLengths(lenRNG, workload.Class(rng.Pick(classWeights)))
		}
		i := sent.Add(1)
		wg.Add(1)
		go func(i int64, in, out int) {
			defer wg.Done()
			jitter := simclock.NewRNG(*seed ^ uint64(i)*0x9e3779b97f4a7c15)
			body, _ := json.Marshal(map[string]int{"input_tokens": in, "output_tokens": out})
			t0 := time.Now()
			for attempt := 0; ; attempt++ {
				oc, retryAfter := doRequest(client, *url, body, &ctrs)
				if oc == reqDone {
					mu.Lock()
					latency.Add(time.Since(t0).Seconds())
					mu.Unlock()
					return
				}
				if oc == reqTerminal || attempt >= *retries {
					failed.Add(1)
					return
				}
				retried.Add(1)
				back := time.Duration(float64(backoffBase) * math.Pow(2, float64(attempt)))
				if back > backoffCap {
					back = backoffCap
				}
				back = time.Duration(float64(back) * (0.5 + jitter.Float64()))
				if retryAfter > back {
					back = retryAfter
				}
				time.Sleep(back)
			}
		}(i, in, out)
	}
	sendWindow := time.Since(start)
	wg.Wait()
	drainWait := time.Since(start) - sendWindow

	n := sent.Load()
	fmt.Printf("dynamoload: %d sent in %.1fs (%.1f req/s achieved, target %.1f), %d completed, %d squashed, %d failed, %d retries, drain wait %.1fs\n",
		n, sendWindow.Seconds(), float64(n)/sendWindow.Seconds(), *rps,
		ctrs.completed.Load(), ctrs.squashed.Load(), failed.Load(), retried.Load(), drainWait.Seconds())
	if errTotal := ctrs.conn.Load() + ctrs.shed.Load() + ctrs.unavail.Load() + ctrs.timeouts.Load() + ctrs.other.Load(); errTotal > 0 {
		fmt.Printf("  error attempts: conn=%d shed(429)=%d unavailable(503)=%d timeout(408/504)=%d other=%d\n",
			ctrs.conn.Load(), ctrs.shed.Load(), ctrs.unavail.Load(), ctrs.timeouts.Load(), ctrs.other.Load())
	}
	fmt.Printf("  wall completion latency: p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
		latency.Percentile(50), latency.Percentile(90), latency.Percentile(99), latency.Max())

	if stats := scrapeStats(client, *url); stats != nil {
		fmt.Printf("  server: virtual %.0fs, %d requests, slo %.3f, ttft p99 %.3fs, %d servers active, sim lag %.1fs\n",
			stats["virtual_seconds"], int(stats["requests"]), stats["slo_attainment"],
			stats["ttft_p99_s"], int(stats["active_servers"]), stats["sim_lag_virtual_s"])
	}

	if ctrs.completed.Load() == 0 || float64(failed.Load()) > *maxFail*float64(n) {
		fmt.Fprintf(os.Stderr, "dynamoload: failure threshold exceeded (%d/%d terminal failures, limit %.0f%%)\n",
			failed.Load(), n, *maxFail*100)
		return 1
	}
	return 0
}

// counters is the per-class attempt accounting. Transient classes (conn,
// shed, unavail) are retried by the caller; timeouts and other statuses
// are terminal.
type counters struct {
	completed, squashed                  atomic.Int64
	conn, shed, unavail, timeouts, other atomic.Int64
}

// outcome classifies one request attempt.
type outcome int

const (
	reqDone      outcome = iota // completion received
	reqRetryable                // transient rejection: retry with backoff
	reqTerminal                 // hard failure: do not retry
)

// doRequest makes one /request attempt and classifies the result. For a
// 429 it returns the server's Retry-After as a floor under the caller's
// backoff. Timeouts (408 per-request deadline, 504 wait backstop) are
// terminal: the request was accepted and is still being served, so a
// retry would duplicate its work.
func doRequest(client *http.Client, url string, body []byte, c *counters) (outcome, time.Duration) {
	resp, err := client.Post(url+"/request", "application/json", bytes.NewReader(body))
	if err != nil {
		c.conn.Add(1)
		return reqRetryable, 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var done struct {
			Squashed bool `json:"squashed"`
		}
		if json.NewDecoder(resp.Body).Decode(&done) != nil {
			c.other.Add(1)
			return reqTerminal, 0
		}
		if done.Squashed {
			c.squashed.Add(1)
		}
		c.completed.Add(1)
		return reqDone, 0
	case http.StatusTooManyRequests:
		c.shed.Add(1)
		var after time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return reqRetryable, after
	case http.StatusServiceUnavailable:
		c.unavail.Add(1)
		return reqRetryable, 0
	case http.StatusRequestTimeout, http.StatusGatewayTimeout:
		c.timeouts.Add(1)
		return reqTerminal, 0
	default:
		c.other.Add(1)
		return reqTerminal, 0
	}
}

// scrapeStats fetches the server's /stats document, reduced to its
// numeric fields (nil on any error; the load report is still useful
// without it).
func scrapeStats(client *http.Client, url string) map[string]float64 {
	resp, err := client.Get(url + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if json.NewDecoder(resp.Body).Decode(&raw) != nil {
		return nil
	}
	stats := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			stats[k] = f
		}
	}
	return stats
}
