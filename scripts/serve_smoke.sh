#!/usr/bin/env bash
# End-to-end smoke of the live serving control plane: build dynamoserve
# and dynamoload, start an event-fidelity server, drive it at 500 req/s,
# inject a live runtime event, scrape /metrics for the per-class latency
# summaries, then assert a clean drain on SIGINT. Run from the repository
# root; CI invokes it via `make serve-smoke`.
set -euo pipefail

addr=127.0.0.1:18080
bin="$(mktemp -d)"
log="$bin/serve.log"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/dynamoserve" ./cmd/dynamoserve
go build -o "$bin/dynamoload" ./cmd/dynamoload

"$bin/dynamoserve" -addr "$addr" -fidelity event -peak 5 -speed 30 >"$log" 2>&1 &
pid=$!

for _ in $(seq 100); do
	curl -sf "http://$addr/config" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -sf "http://$addr/config" >/dev/null

# Open-loop load: 500 req/s of mixed classes for 3 s against the live
# event-fidelity cluster; dynamoload exits non-zero on failures.
"$bin/dynamoload" -url "http://$addr" -rps 500 -duration 3s -mix

# Live runtime event injection through the scenario timeline machinery.
curl -sf -X POST "http://$addr/events" \
	-d '{"kind":"price","price_mult":3,"duration_hours":1}' >/dev/null
sleep 0.5
curl -sf "http://$addr/stats" | grep -q '"price_mult":3'

# Per-class TTFT/TBT summaries come straight from the event engines.
metrics="$(curl -sf "http://$addr/metrics")"
echo "$metrics" | grep -q 'dynamollm_class_ttft_seconds{class='
echo "$metrics" | grep -q 'dynamollm_requests_total'

# Clean drain: SIGINT must exit 0 after draining in-flight work.
kill -INT "$pid"
wait "$pid"
grep -q 'drained' "$log"
pid=""
echo "serve-smoke OK"
