#!/bin/sh
# Docs gate: every internal/* package (and the root facade) must carry a
# package comment ("// Package <name> ..."), so godoc never shows a bare
# package. Run from the repository root; CI invokes it via `make docs-check`.
set -u

fail=0
check_dir() {
	dir=$1
	pkg=$2
	if ! grep -qs "^// Package $pkg " "$dir"*.go; then
		echo "docs-check: package $pkg ($dir) has no '// Package $pkg ...' comment" >&2
		fail=1
	fi
}

for dir in internal/*/; do
	check_dir "$dir" "$(basename "$dir")"
done
check_dir "./" dynamollm

if [ "$fail" -ne 0 ]; then
	echo "docs-check: FAILED" >&2
	exit 1
fi
echo "docs-check: every package has a package comment"
