#!/usr/bin/env bash
# Crash-recovery smoke: start a durable dynamoserve, drive acked load,
# kill -9 mid-flight (no shutdown, no drain), then restart with -restore
# and assert the rebuilt session resumed from the checkpointed virtual
# instant with the WAL replayed — no acked request lost. Run from the
# repository root; CI invokes it via `make restore-smoke`.
set -euo pipefail

addr=127.0.0.1:18081
bin="$(mktemp -d)"
state="$bin/state"
log="$bin/serve.log"
log2="$bin/restore.log"
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/dynamoserve" ./cmd/dynamoserve
go build -o "$bin/dynamoload" ./cmd/dynamoload

"$bin/dynamoserve" -addr "$addr" -fidelity event -peak 5 -speed 30 -state "$state" >"$log" 2>&1 &
pid=$!

for _ in $(seq 100); do
	curl -sf "http://$addr/config" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -sf "http://$addr/config" >/dev/null

# Acked load: every accepted request is WAL-synced before its ack.
"$bin/dynamoload" -url "http://$addr" -rps 200 -duration 2s -mix

# Let at least one periodic checkpoint (every 2s) land, then murder the
# process — SIGKILL, so nothing gets to flush or drain.
sleep 3
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

[ -s "$state/checkpoint.json" ] || { echo "FAIL: no checkpoint written"; exit 1; }
[ -s "$state/wal.jsonl" ] || { echo "FAIL: no WAL written"; exit 1; }
wal_lines=$(wc -l <"$state/wal.jsonl")
ckpt=$(grep -o '"boundary_virtual_s": *[0-9.]*' "$state/checkpoint.json" | grep -o '[0-9.]*$')
echo "killed -9 with checkpoint at virtual ${ckpt}s and $wal_lines WAL entries"

# Restore: system/peak/speed/fidelity come from the checkpoint.
"$bin/dynamoserve" -addr "$addr" -state "$state" -restore >"$log2" 2>&1 &
pid=$!
for _ in $(seq 100); do
	curl -sf "http://$addr/config" >/dev/null 2>&1 && break
	sleep 0.1
done

stats=$(curl -sf "http://$addr/stats")
echo "$stats" | grep -q '"restored_at_virtual_s"' || { echo "FAIL: restored session reports no restore point"; exit 1; }
# The restored session must resume at (not before) the checkpointed tick.
echo "$stats" | awk -v ck="$ckpt" -F'"virtual_seconds":' '{split($2,a,","); if (a[1]+0 < ck+0) {print "FAIL: resumed at", a[1], "before checkpoint", ck; exit 1}}'
grep -q 'restored at virtual' "$log2" || { echo "FAIL: restore log line missing"; exit 1; }
replayed=$(grep -o '([0-9]* WAL request(s) replayed' "$log2" | grep -o '[0-9]*' | head -1)
[ "${replayed:-0}" -eq "$wal_lines" ] || { echo "FAIL: replayed $replayed of $wal_lines WAL entries"; exit 1; }

# The restored server still serves: inject one more request end to end.
curl -sf -X POST "http://$addr/request" -d '{"input_tokens":128,"output_tokens":16}' | grep -q '"tag"'

# And still shuts down cleanly.
kill -INT "$pid"
wait "$pid"
grep -q 'drained' "$log2"
pid=""
echo "restore-smoke OK: resumed at >=${ckpt}s with all $wal_lines acked requests replayed"
