#!/usr/bin/env bash
# Self-test for the dynamolint gate: inject a time.Now() read into a
# sim-deterministic package and assert the linter rejects it with the
# right diagnostic. This guards the gate itself against silently rotting
# into a no-op (package-classification drift, analyzer registration
# typo, exit-code regression) — a lint suite that cannot fail is not a
# gate.
set -u
cd "$(dirname "$0")/.."

viol=internal/core/zz_lint_selftest_violation.go
trap 'rm -f "$viol"' EXIT

cat > "$viol" <<'EOF'
package core

import "time"

// zzLintSelftestViolation exists only while scripts/lint_selftest.sh
// runs; dynamolint (detrand) must reject it.
func zzLintSelftestViolation() time.Time { return time.Now() }
EOF

out="$(go run ./cmd/dynamolint ./internal/core 2>&1)"
status=$?

if [ "$status" -eq 0 ]; then
    echo "lint-selftest: FAIL: dynamolint accepted a time.Now() in internal/core"
    exit 1
fi
if ! printf '%s\n' "$out" | grep -q 'time\.Now in sim-deterministic package'; then
    echo "lint-selftest: FAIL: dynamolint rejected the probe for the wrong reason:"
    printf '%s\n' "$out"
    exit 1
fi

echo "lint-selftest: OK — injected violation rejected:"
printf '%s\n' "$out" | grep zz_lint_selftest_violation
