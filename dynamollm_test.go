package dynamollm

import "testing"

func TestSimulateFacade(t *testing.T) {
	tr := NewTrace(Conversation, 1, 15, 3).Window(9*3600, 9*3600+1800)
	repo := NewRepo()
	res, err := SimulateWithRepo(tr, Config{System: "dynamollm", Servers: 5, Seed: 1}, repo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.EnergyKWh <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.SLOAttainment < 0.85 {
		t.Errorf("attainment = %v", res.SLOAttainment)
	}
	if res.CarbonKg <= 0 || res.CostUSD <= 0 {
		t.Error("carbon/cost not computed")
	}
	if res.Raw == nil {
		t.Error("raw result missing")
	}
}

func TestSimulateDefaultsToDynamoLLM(t *testing.T) {
	tr := NewTrace(Coding, 0.05, 10, 4)
	res, err := Simulate(tr, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Raw.Opts.ScaleFrequency {
		t.Error("default system should be dynamollm")
	}
}

func TestSimulateErrors(t *testing.T) {
	tr := NewTrace(Coding, 0.01, 5, 1)
	if _, err := Simulate(tr, Config{System: "bogus"}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := Simulate(tr, Config{Model: "gpt-5"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Simulate(tr, Config{Fidelity: "warp"}); err == nil {
		t.Error("unknown fidelity accepted")
	}
}

func TestSimulateEventFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	tr := NewTrace(Conversation, 1, 10, 3).Window(9*3600, 9*3600+900)
	repo := NewRepo()
	res, err := SimulateWithRepo(tr, Config{System: "singlepool", Servers: 4, Seed: 1, Fidelity: "event"}, repo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.EnergyKWh <= 0 {
		t.Fatalf("empty event-fidelity result: %+v", res)
	}
	if res.Raw.ClassTTFT[0] == nil {
		t.Error("event fidelity should capture per-class latencies")
	}
	if len(Fidelities) != 2 || Fidelities[0] != "fluid" || Fidelities[1] != "event" {
		t.Errorf("Fidelities = %v", Fidelities)
	}
}

func TestCatalogAccessors(t *testing.T) {
	if len(Systems) != 6 {
		t.Errorf("systems = %v", Systems)
	}
	if len(Models()) != 6 {
		t.Errorf("models = %v", Models())
	}
	if len(Classes()) != 9 || Classes()[0] != "SS" || Classes()[8] != "LL" {
		t.Errorf("classes = %v", Classes())
	}
}

func TestExperimentsParallelKnob(t *testing.T) {
	if Experiments().Parallelism != 0 {
		t.Error("default harness should use one worker per CPU (Parallelism=0)")
	}
	c := ExperimentsParallel(3)
	if c.Parallelism != 3 {
		t.Errorf("Parallelism = %d, want 3", c.Parallelism)
	}
}

func TestSimulateScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation")
	}
	res, err := SimulateScenario("gpu-failures", 15, Config{System: "singlepool", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.EnergyKWh <= 0 {
		t.Errorf("empty scenario result: %+v", res)
	}
	if res.Outages == 0 {
		t.Error("gpu-failures scenario recorded no outages")
	}
	if res.EnergyBillUSD <= 0 {
		t.Error("no electricity bill accrued")
	}
	if _, err := SimulateScenario("alien-invasion", 15, Config{}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if len(Scenarios()) < 6 {
		t.Errorf("scenario library too small: %v", Scenarios())
	}
}

// TestNewSession: the facade opens a live serving session that advances
// with (injected) wall time and resolves injected requests.
func TestNewSession(t *testing.T) {
	s, err := NewSession(nil, Config{System: "singlepool", Fidelity: "event", Seed: 3}, 60, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Inject(128, 16, false); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(nil, Config{System: "bogus"}, 60, false); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := NewSession(nil, Config{Fidelity: "bogus"}, 60, false); err == nil {
		t.Error("unknown fidelity accepted")
	}
}
