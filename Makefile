# Single source of truth for build/test/lint commands: CI (.github/workflows/
# ci.yml) and humans invoke the same targets.

GO ?= go

# Sequence number for committed benchmark baselines (BENCH_<N>.json).
N ?= dev

# Benchmark-run knobs for bench-json: which benchmarks (regex), how long
# each (1x = compile-and-run smoke; the regression gate uses a time-based
# budget so light benchmarks average over many iterations), and how many
# whole-suite repeats (benchcmp gates on the per-benchmark minimum, so
# COUNT>1 suppresses scheduler/GC noise).
BENCH ?= .
BENCHTIME ?= 1x
COUNT ?= 1

# Benchmarks the regression gate times: the steady-state engine, tick-loop,
# fleet-stepping, snapshot, and block-KV paths. The macro table/figure
# benchmarks stay in bench/bench-json as one-iteration smoke — they re-run
# whole experiment fixtures per iteration and carry too much noise to gate
# at 10%.
GATEBENCH ?= TickLoop|EventFleet|LiveSnapshot|LiveAdvanceTick|EngineSoak|EngineKV

# Committed baseline the perf-regression gate compares against.
BASE ?= 9

# Budget for the fuzz-smoke target (per fuzz target).
FUZZTIME ?= 30s

.PHONY: all build test lint lint-ext lint-selftest docs-check bench bench-json bench-gate profile smoke scenario-smoke event-smoke fidelity-smoke serve-smoke chaos-smoke restore-smoke fuzz-smoke kv-smoke

all: build lint docs-check test

build:
	$(GO) build ./...

# Event-fidelity tests push internal/expt past the default 10-minute
# per-package budget under the race detector; give the suite headroom.
test:
	$(GO) test -race -timeout 30m ./...

# The blocking lint gate: vet, gofmt, and the project's own dynamolint
# analyzers (internal/lint — determinism, snapshot exhaustiveness,
# conservation laws, steady-state allocation discipline; stdlib-only, so
# it always runs). staticcheck/govulncheck are external binaries: they
# run when installed (CI installs pinned versions; offline boxes skip
# them with a notice rather than failing).
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/dynamolint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipped (CI runs the pinned version via lint-ext)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipped (CI runs the pinned version via lint-ext)"; fi

# External linters, unconditionally (fails if not installed). CI installs
# the pinned versions and runs this as a separate advisory step: the
# offline dev environment cannot establish a clean baseline for them, so
# they must not be able to mask a dynamolint regression by failing first.
lint-ext:
	staticcheck ./...
	govulncheck ./...

# Prove the lint gate actually gates: inject a wall-clock read into a
# sim-deterministic package and assert dynamolint exits non-zero.
lint-selftest:
	./scripts/lint_selftest.sh

# One iteration of every benchmark, compile-and-run smoke only (no timing).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Benchmark trajectory: run every benchmark with -benchmem and emit
# BENCH_$(N).json (ns/op, B/op, allocs/op, custom metrics per benchmark).
# CI archives the result; perf PRs commit it as the next baseline. The
# scratch file is removed on every path, including failures.
bench-json:
	$(GO) test -bench='$(BENCH)' -benchtime=$(BENCHTIME) -count=$(COUNT) -benchmem -run='^$$' ./... > bench.out || { rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -out BENCH_$(N).json < bench.out || { rm -f bench.out; exit 1; }
	@rm -f bench.out
	@echo "wrote BENCH_$(N).json"

# Perf-regression gate: a fresh best-of-3, 1s-per-benchmark run of the
# $(GATEBENCH) set, compared against the committed BENCH_$(BASE).json
# baseline. Fails on >10% ns/op slowdown (same-CPU runs only —
# cross-machine deltas are warnings); allocs/op growth beyond 5% warns.
# Perf PRs that move the needle on purpose re-baseline with:
#   make bench-json N=<next> BENCH='$(GATEBENCH)' BENCHTIME=1s COUNT=3
bench-gate:
	$(MAKE) bench-json N=gate BENCH='$(GATEBENCH)' BENCHTIME=1s COUNT=3
	$(GO) run ./cmd/benchcmp BENCH_$(BASE).json BENCH_gate.json

# Flame-graph entry point: profile the six-system cluster hour through the
# real CLI. Start future perf work here, not from a guess.
profile:
	$(GO) run ./cmd/dynamobench -quick -cpuprofile cpu.prof -memprofile mem.prof fig6 > /dev/null
	@echo "wrote cpu.prof mem.prof; inspect with: go tool pprof -http=:8080 cpu.prof"

# Docs gate: gofmt/vet (via lint) plus a package-comment audit, so every
# internal package stays documented.
docs-check:
	./scripts/check_package_comments.sh

# End-to-end: regenerate the paper's headline numbers through the real CLI.
smoke:
	$(GO) run ./cmd/dynamobench -quick headline

# End-to-end: the scenario sweep (library x six systems) through the real
# CLI; CI uploads the output as an artifact.
scenario-smoke:
	$(GO) run ./cmd/dynamobench -quick scenarios | tee scenario-sweep.txt

# End-to-end: one scenario on the event-level instance backend, race
# detector on (the event clock and engines are per-run state — this is
# the guard that keeps them that way). Thin peak and the shortest
# scenario: event mode is the slow path and the assertion is completion,
# not scale (~5 min under -race).
event-smoke:
	$(GO) run -race ./cmd/dynamobench -quick -peak 5 -fidelity event scenario flashcrowd

# Fluid-vs-event cross-validation deltas through the real CLI; CI ships
# the table with the scenario-sweep artifact.
fidelity-smoke:
	$(GO) run ./cmd/dynamobench -quick fidelity | tee fidelity-deltas.txt

# End-to-end: the live serving control plane. Starts an event-fidelity
# dynamoserve, drives it with dynamoload at 500 req/s, injects a runtime
# event, scrapes /metrics, and asserts a clean drain on shutdown.
serve-smoke:
	./scripts/serve_smoke.sh

# Fault-injection sweep through the real CLI, race detector on: crash
# intensity x straggler fraction x retry budget across the six systems
# (quick grid, thin peak). CI uploads the table as an artifact.
chaos-smoke:
	$(GO) run -race ./cmd/dynamobench -quick -peak 5 chaos | tee chaos-sweep.txt

# End-to-end crash recovery: durable dynamoserve under load, kill -9,
# restore from the WAL + checkpoint, assert no acked request was lost.
restore-smoke:
	./scripts/restore_smoke.sh

# End-to-end: the KV sweep — capacity x prefix x disagg x spill tier —
# through the real CLI, race detector on (thin peak; the quick grid's tier
# cells exercise the swap link under both cpu and ssd bandwidths). CI
# uploads the table as an artifact.
kv-smoke:
	$(GO) run -race ./cmd/dynamobench -quick -peak 5 kv | tee kv-sweep.txt

# Short coverage-guided fuzz pass over the scenario JSON loader, race
# detector on. The corpus seeds from the builtin library plus known-nasty
# inputs; CI runs this budget on every push so new validation gaps fail
# fast rather than waiting for a long offline campaign.
fuzz-smoke:
	$(GO) test -race -run='^$$' -fuzz=FuzzScenarioLoad -fuzztime=$(FUZZTIME) ./internal/scenario
