# Single source of truth for build/test/lint commands: CI (.github/workflows/
# ci.yml) and humans invoke the same targets.

GO ?= go

.PHONY: all build test lint bench smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi

# One iteration of every benchmark, compile-and-run smoke only (no timing).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# End-to-end: regenerate the paper's headline numbers through the real CLI.
smoke:
	$(GO) run ./cmd/dynamobench -quick headline
