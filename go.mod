module dynamollm

go 1.24
