// Quickstart: simulate ten minutes of an LLM inference cluster under
// DynamoLLM and under the static SinglePool baseline, and compare energy,
// latency, and SLO attainment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynamollm"
)

func main() {
	// One virtual hour of the Conversation workload at a weekly peak of
	// 20 req/s (short enough to run in seconds, long enough for the
	// 30-minute scaling epochs to act).
	tr := dynamollm.NewTrace(dynamollm.Conversation, 1, 20, 7)
	short := tr.Window(9*3600, 10*3600) // Monday 09:00-10:00

	repo := dynamollm.NewRepo() // share model profiles between runs

	for _, system := range []string{"singlepool", "dynamollm"} {
		res, err := dynamollm.SimulateWithRepo(short, dynamollm.Config{
			System:  system,
			Servers: 6,
			Seed:    1,
		}, repo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %6d requests  %7.2f kWh  %4.1f servers  TTFT p99 %6.0f ms  SLO %5.1f%%\n",
			system, res.Requests, res.EnergyKWh, res.AvgServers,
			res.TTFTP99*1000, res.SLOAttainment*100)
	}
}
