// Flashcrowd: run two built-in scenarios from the scenario engine — a
// 3.5x flash crowd the load predictor never saw, and a cascading
// GPU-failure afternoon — and compare how the static SinglePool baseline
// and DynamoLLM ride them out.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"dynamollm"
)

func main() {
	for _, name := range []string{"flashcrowd", "gpu-failures"} {
		fmt.Printf("scenario %s:\n", name)
		for _, system := range []string{"singlepool", "dynamollm"} {
			res, err := dynamollm.SimulateScenario(name, 25, dynamollm.Config{
				System: system,
				Seed:   7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s %6d requests  %7.2f kWh  bill $%5.2f  TTFT p99 %7.0f ms  SLO %5.1f%%  squashed %d  outages %d\n",
				system, res.Requests, res.EnergyKWh, res.EnergyBillUSD,
				res.TTFTP99*1000, res.SLOAttainment*100, res.Squashed, res.Outages)
		}
	}
	fmt.Printf("\nbuilt-in scenarios: %v\n", dynamollm.Scenarios())
}
