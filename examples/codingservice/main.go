// Coding-service day: the paper's motivating scenario of a strongly
// diurnal workload (peaks 2.8x average, 34.6x valley). The example runs a
// full virtual day under each of the paper's six systems and prints the
// energy breakdown, showing how each knob (pools, instances, sharding,
// frequency) contributes.
//
//	go run ./examples/codingservice
package main

import (
	"fmt"
	"log"

	"dynamollm"
)

func main() {
	// Wednesday of a Coding week at a 12 req/s weekly peak.
	week := dynamollm.NewTrace(dynamollm.Coding, 7, 12, 11)
	day := week.Window(2*24*3600, 3*24*3600)
	fmt.Printf("Coding Wednesday: %d requests\n\n", len(day))

	repo := dynamollm.NewRepo()
	results := map[string]*dynamollm.Result{}
	for _, system := range dynamollm.Systems {
		res, err := dynamollm.SimulateWithRepo(day, dynamollm.Config{
			System:  system,
			Servers: 4,
			Seed:    3,
		}, repo)
		if err != nil {
			log.Fatal(err)
		}
		results[system] = res
	}
	base := results["singlepool"].EnergyKWh
	multi := results["multipool"].EnergyKWh
	fmt.Println("system      energy(kWh)  vs SinglePool  vs MultiPool  servers  SLO")
	for _, system := range dynamollm.Systems {
		res := results[system]
		fmt.Printf("%-11s %10.1f     %+8.1f%%     %+8.1f%%  %6.1f  %5.1f%%\n",
			system, res.EnergyKWh, (res.EnergyKWh/base-1)*100,
			(res.EnergyKWh/multi-1)*100, res.AvgServers, res.SLOAttainment*100)
	}
	fmt.Println("\nAt a small fleet, per-class pools cannot pack below one server per")
	fmt.Println("pool, so MultiPool and the single-knob systems pay a large")
	fmt.Println("fragmentation premium; DynamoLLM merges starved pools upward")
	fmt.Println("(§III-B) and is the only system that beats the consolidated baseline.")
}
