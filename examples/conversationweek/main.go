// Conversation week: the paper's long-horizon experiment (§V-E/F). Runs a
// full synthetic week of the Conversation service under SinglePool and
// DynamoLLM and reports the energy, carbon, and customer-cost savings —
// the reproduction of the abstract's 53%/38%/61% headline.
//
//	go run ./examples/conversationweek
package main

import (
	"fmt"
	"log"

	"dynamollm"
)

func main() {
	week := dynamollm.NewTrace(dynamollm.Conversation, 7, 20, 5)
	fmt.Printf("Conversation week: %d requests\n\n", len(week))

	repo := dynamollm.NewRepo()
	results := map[string]*dynamollm.Result{}
	for _, system := range []string{"singlepool", "dynamollm"} {
		res, err := dynamollm.SimulateWithRepo(week, dynamollm.Config{
			System:  system,
			Servers: 7,
			Seed:    5,
		}, repo)
		if err != nil {
			log.Fatal(err)
		}
		results[system] = res
		fmt.Printf("%-11s %9.0f kWh  %7.1f kg CO2  $%8.0f  %4.1f servers  SLO %5.1f%%\n",
			system, res.EnergyKWh, res.CarbonKg, res.CostUSD,
			res.AvgServers, res.SLOAttainment*100)
	}

	base, dyn := results["singlepool"], results["dynamollm"]
	fmt.Printf("\nsavings (paper headline: 53%% energy, 38%% carbon, 61%% cost):\n")
	fmt.Printf("  energy: %5.1f%%\n", (1-dyn.EnergyKWh/base.EnergyKWh)*100)
	fmt.Printf("  carbon: %5.1f%%\n", (1-dyn.CarbonKg/base.CarbonKg)*100)
	fmt.Printf("  cost:   %5.1f%%\n", (1-dyn.CostUSD/base.CostUSD)*100)
}
