// SLO explorer: how service-level objectives shape the energy-optimal
// configuration (§III-A "Service SLO"). For each request class the example
// prints the least-energy (parallelism, frequency) choice under strict
// (5x), relaxed (10x), and loose (20x) SLOs at medium load, using the same
// profile machinery the DynamoLLM controllers consult.
//
//	go run ./examples/sloexplorer
package main

import (
	"fmt"

	"dynamollm/internal/model"
	"dynamollm/internal/profile"
	"dynamollm/internal/workload"
)

func main() {
	fmt.Println("Least-energy configuration per class and SLO (Llama2-70B, 2K total TPS)")
	fmt.Println("class | strict 5x          | relaxed 10x        | loose 20x")

	repo := profile.NewRepository(nil)
	for _, cls := range workload.AllClasses {
		in, out := workload.RepresentativeLengths(cls)
		lambda := 2000.0 / float64(in+out)
		fmt.Printf("%-5s ", cls)
		for _, scale := range []float64{1, 2, 4} {
			p := repo.Get(model.Llama2_70B, scale)
			choice, ok := p.BestConfig(cls, lambda, 0)
			if !ok {
				fmt.Printf("| %-18s ", "infeasible")
				continue
			}
			fmt.Printf("| %-4s @ %-6s %4.0fW ", choice.Key.TP, choice.Key.Freq, choice.Power)
		}
		fmt.Println()
	}
	fmt.Println("\nLooser SLOs admit smaller parallelism and lower clocks — the")
	fmt.Println("slack DynamoLLM converts into energy savings (§III-A).")
}
