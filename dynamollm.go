// Package dynamollm is a from-scratch Go reproduction of DynamoLLM
// (Stojkovic et al., HPCA 2025): an energy-management framework for LLM
// inference clusters that dynamically reconfigures instance counts, tensor
// parallelism, and GPU frequency to minimize energy under latency SLOs.
//
// The package is a facade over the internal implementation:
//
//   - Config selects a control system (DynamoLLM or one of the paper's five
//     baselines) and its parameters;
//   - NewTrace generates synthetic production-like traces (the substitute
//     for the paper's Azure Coding/Conversation traces);
//   - Simulate drives a trace through a simulated GPU cluster under the
//     chosen system and returns energy, latency, power, carbon, and cost
//     results;
//   - Experiments exposes the harness that regenerates every table and
//     figure in the paper's evaluation.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package dynamollm

import (
	"fmt"

	"dynamollm/internal/core"
	"dynamollm/internal/energy"
	"dynamollm/internal/expt"
	"dynamollm/internal/model"
	"dynamollm/internal/profile"
	"dynamollm/internal/scenario"
	"dynamollm/internal/serve"
	"dynamollm/internal/simclock"
	"dynamollm/internal/trace"
	"dynamollm/internal/workload"
)

// System names accepted by Config.System, in the paper's order.
var Systems = core.SystemNames

// Config selects and parameterizes a serving system.
type Config struct {
	// System is one of Systems ("dynamollm", "singlepool", ...).
	System string
	// Model is a catalog name (default "llama2-70b"); see Models().
	Model string
	// Servers is the fleet size (static for baselines, ceiling for
	// autoscaling systems). Default 12.
	Servers int
	// SLOScale relaxes the Table IV SLOs (1 = strict, 2 = 10x, 4 = 20x).
	SLOScale float64
	// PredictorAccuracy is the output-length classifier accuracy (0..1].
	PredictorAccuracy float64
	// NumPools overrides the pool count (0 = system default).
	NumPools int
	// Fidelity selects the instance service model: "fluid" (closed-form
	// steady state, the fast default; "" means fluid) or "event" (one
	// event-level continuous-batching engine per instance — request-level
	// queueing and tails, a few orders of magnitude slower). See
	// Fidelities.
	Fidelity string
	// StepJobs bounds the worker pool an event-fidelity simulation uses to
	// step its per-instance engines within each tick (0 or 1 = serial).
	// Any value produces byte-identical results; on a multi-core host
	// higher values cut event-mode wall time roughly linearly in the
	// instance count.
	StepJobs int
	// Disagg splits every pool into a prefill pool and a decode pool with
	// a modeled KV-transfer handoff between them. Implies event fidelity
	// and block-granular KV accounting.
	Disagg bool
	// KVBlockTokens enables block-granular KV-cache accounting in every
	// event-fidelity engine: admission, decode growth, and preemption all
	// operate on pages of this many tokens (0 = legacy token-bucket
	// accounting, byte-identical to previous releases).
	KVBlockTokens int
	// KVCapacityFactor scales each engine's profile-derived KV block
	// capacity (0 or 1 = full capacity; small values force preemption
	// pressure). Only meaningful with KVBlockTokens > 0.
	KVCapacityFactor float64
	// KVPrefixCache enables the engine prompt-prefix cache: requests
	// tagged with a shared PromptGroup skip prefill for the cached
	// prefix. Only meaningful with KVBlockTokens > 0.
	KVPrefixCache bool
	// KVTier adds a spill tier below each engine's GPU KV pool: "none"
	// (or "", recompute-only), "cpu" (host memory over PCIe ~25 GB/s), or
	// "ssd" (NVMe ~5 GB/s, far larger pool). Preemption victims may swap
	// out and back in instead of recomputing. Implies event fidelity and
	// block-granular KV accounting. See KVTiers.
	KVTier string
	// KVTierBandwidth overrides the spill link bandwidth in bytes/s
	// (0 = the tier's default).
	KVTierBandwidth float64
	// KVSwapPolicy picks swap vs recompute per preemption victim: "auto"
	// (or "", compare modeled transfer vs recompute time) or "always".
	// See KVSwapPolicies.
	KVSwapPolicy string
	// Seed fixes all randomness.
	Seed uint64
}

// Fidelities lists the accepted Config.Fidelity values.
var Fidelities = core.FidelityNames

// KVTiers lists the accepted Config.KVTier values.
var KVTiers = core.KVTierNames

// KVSwapPolicies lists the accepted Config.KVSwapPolicy values.
var KVSwapPolicies = core.KVSwapPolicyNames

// Trace re-exports the trace type for the public API.
type Trace = trace.Trace

// Service identifies a synthetic workload family.
type Service = trace.Service

// The two production services the paper profiles.
const (
	Conversation = trace.Conversation
	Coding       = trace.Coding
)

// NewTrace generates a synthetic service trace spanning `days` days at the
// given weekly-peak request rate.
func NewTrace(svc Service, days float64, peakRPS float64, seed uint64) Trace {
	return trace.Generate(trace.GenConfig{
		Service:  svc,
		Duration: days * simclock.Day,
		PeakRPS:  peakRPS,
		Seed:     seed,
	})
}

// Models lists the LLM catalog names.
func Models() []string { return model.Names() }

// Result is the outcome of a simulation.
type Result struct {
	// EnergyKWh is total cluster energy.
	EnergyKWh float64
	// AvgServers is the mean number of occupied 8-GPU servers.
	AvgServers float64
	// SLOAttainment is the fraction of requests meeting their SLOs.
	SLOAttainment float64
	// TTFTP50/P99 and TBTP50/P99 are latency percentiles in seconds.
	TTFTP50, TTFTP99 float64
	TBTP50, TBTP99   float64
	// CarbonKg is operational CO2 under the CAISO-like intensity trace.
	CarbonKg float64
	// CostUSD is the GPU-hour + electricity bill (§V-F pricing).
	CostUSD float64
	// EnergyBillUSD is the electricity bill alone, integrated at the
	// time-varying price (scenario price surges show up here).
	EnergyBillUSD float64
	// Requests and Squashed count the workload.
	Requests, Squashed int
	// Outages counts instances lost to scenario-injected failures.
	Outages int
	// Raw exposes the full internal result for advanced consumers.
	Raw *core.Result
}

// Simulate runs the trace through a simulated cluster under cfg.
func Simulate(tr Trace, cfg Config) (*Result, error) {
	return SimulateWithRepo(tr, cfg, nil)
}

// Repo caches model profiles across simulations.
type Repo = profile.Repository

// NewRepo returns an empty profile repository.
func NewRepo() *Repo { return profile.NewRepository(nil) }

// SimulateWithRepo is Simulate reusing a profile repository.
func SimulateWithRepo(tr Trace, cfg Config, repo *Repo) (*Result, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	return wrapResult(core.RunWithRepo(tr, opts, repo)), nil
}

// coreOptions resolves the public Config into internal run options.
func (cfg Config) coreOptions() (core.Options, error) {
	name := cfg.System
	if name == "" {
		name = "dynamollm"
	}
	opts, ok := core.SystemByName(name)
	if !ok {
		return core.Options{}, fmt.Errorf("dynamollm: unknown system %q (want one of %v)", name, Systems)
	}
	if cfg.Model != "" {
		m, err := model.Lookup(cfg.Model)
		if err != nil {
			return core.Options{}, err
		}
		opts.Model = m
	}
	if cfg.Servers > 0 {
		opts.Servers = cfg.Servers
	}
	opts.SLOScale = cfg.SLOScale
	opts.PredictorAccuracy = cfg.PredictorAccuracy
	if cfg.NumPools > 0 {
		opts.NumPools = cfg.NumPools
	}
	if cfg.Fidelity != "" {
		fid, err := core.ParseFidelity(cfg.Fidelity)
		if err != nil {
			return core.Options{}, fmt.Errorf("dynamollm: unknown fidelity %q (want one of %v)", cfg.Fidelity, Fidelities)
		}
		opts.Fidelity = fid
	}
	opts.StepJobs = cfg.StepJobs
	opts.Disagg = cfg.Disagg
	opts.KVBlockTokens = cfg.KVBlockTokens
	opts.KVCapacityFactor = cfg.KVCapacityFactor
	opts.KVPrefixCache = cfg.KVPrefixCache
	if cfg.KVTier != "" {
		tier, err := core.ParseKVTier(cfg.KVTier)
		if err != nil {
			return core.Options{}, fmt.Errorf("dynamollm: unknown kv tier %q (want one of %v)", cfg.KVTier, KVTiers)
		}
		opts.KVTier = tier
	}
	opts.KVTierBandwidth = cfg.KVTierBandwidth
	if cfg.KVSwapPolicy != "" {
		pol, err := core.ParseKVSwapPolicy(cfg.KVSwapPolicy)
		if err != nil {
			return core.Options{}, fmt.Errorf("dynamollm: unknown kv swap policy %q (want one of %v)", cfg.KVSwapPolicy, KVSwapPolicies)
		}
		opts.KVSwapPolicy = pol
	}
	opts.Seed = cfg.Seed
	return opts, nil
}

// wrapResult converts an internal result into the public summary.
func wrapResult(res *core.Result) *Result {
	carbon := energy.NewCarbonMeter(energy.CAISO)
	for _, p := range res.EnergySeries.Points() {
		carbon.AddEnergy(simclock.Time(p.Time), p.Value)
	}
	bill := energy.DefaultCost.Bill(res.GPUSeconds, res.EnergyJ)

	return &Result{
		EnergyKWh:     res.EnergyKWh(),
		AvgServers:    res.AvgServers,
		SLOAttainment: res.SLOAttainment(),
		TTFTP50:       res.TTFT.Percentile(50),
		TTFTP99:       res.TTFT.Percentile(99),
		TBTP50:        res.TBT.Percentile(50),
		TBTP99:        res.TBT.Percentile(99),
		CarbonKg:      carbon.Kg(),
		CostUSD:       bill.Total(),
		EnergyBillUSD: res.EnergyCostUSD,
		Requests:      res.Requests,
		Squashed:      res.Squashed,
		Outages:       res.Outages,
		Raw:           res,
	}
}

// Scenarios lists the built-in scenario names (see SimulateScenario).
func Scenarios() []string { return scenario.Names() }

// SimulateScenario runs cfg's system under a named built-in scenario —
// an event-injected cluster condition such as a flash crowd, cascading
// GPU failures, or an electricity-price surge — at the given weekly-peak
// request rate. The scenario's trace-level events perturb the generated
// trace; its runtime events fire inside the simulation through the tick
// hook. Same name + cfg.Seed is fully deterministic.
func SimulateScenario(name string, peakRPS float64, cfg Config) (*Result, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return nil, fmt.Errorf("dynamollm: unknown scenario %q (want one of %v)", name, Scenarios())
	}
	tr, err := sc.GenTrace(peakRPS, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	svc, err := sc.ServiceProfile()
	if err != nil {
		return nil, err
	}
	start := sc.Start()
	opts.WarmLoad = func(t simclock.Time, c workload.Class) float64 {
		return trace.ExpectedRate(svc, peakRPS, t+start, c)
	}
	opts.Hook = sc.Hook(cfg.Seed)
	return wrapResult(core.RunWithRepo(tr, opts, nil)), nil
}

// Experiments returns the evaluation harness with default settings. Set
// Parallelism on the returned config (or use ExperimentsParallel) to fan
// each experiment's independent simulations across a bounded worker pool;
// results are deterministic for any parallelism level.
func Experiments() expt.Config { return expt.Default() }

// Session is a live, wall-clock-paced serving session: the simulation
// advances incrementally as real time passes (at a configurable speedup)
// while requests and scenario runtime events are injected at their true
// virtual arrival instants. cmd/dynamoserve exposes one over HTTP; see
// NewSession to embed one directly.
type Session = serve.Session

// NewSession opens a live serving session over the base trace under cfg
// (cfg.Fidelity "event" gives injected requests real queueing and
// token-level latencies). speed is virtual seconds per wall second; loop
// replays the base trace whenever its horizon is reached so background
// load never runs dry. Call Start on the returned session to begin
// pacing, and Close to drain in-flight work when done.
func NewSession(tr Trace, cfg Config, speed float64, loop bool) (*Session, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	name := cfg.System
	if name == "" {
		name = "dynamollm"
	}
	return serve.New(serve.Config{
		Name:  name,
		Opts:  opts,
		Trace: tr,
		Speed: speed,
		Loop:  loop,
	}), nil
}

// ExperimentsParallel returns the evaluation harness with its Parallelism
// knob set: jobs bounds concurrent simulations per experiment (0 = one
// worker per CPU, 1 = sequential).
func ExperimentsParallel(jobs int) expt.Config {
	c := expt.Default()
	c.Parallelism = jobs
	return c
}

// Classes lists the nine request classes ("SS".."LL").
func Classes() []string {
	out := make([]string, 0, workload.NumClasses)
	for _, c := range workload.AllClasses {
		out = append(out, c.String())
	}
	return out
}
