// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment
// from internal/expt (in Quick mode where the full experiment is long) and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/dynamobench prints the full tables.
package dynamollm

import (
	"testing"

	"dynamollm/internal/core"
	"dynamollm/internal/expt"
	"dynamollm/internal/profile"
	"dynamollm/internal/workload"
)

// benchCfg shares one profile repository across all benchmarks.
var benchCfg = func() expt.Config {
	c := expt.Default()
	c.Quick = true
	c.PeakRPS = 30
	c.Repo = profile.NewRepository(nil)
	return c
}()

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := expt.TableI()
		feasible := 0
		for _, grid := range tab {
			for _, row := range grid {
				for _, cell := range row {
					if cell.Feasible {
						feasible++
					}
				}
			}
		}
		b.ReportMetric(float64(feasible), "feasible-cells")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := expt.TableII()
		b.ReportMetric(tab[2000][4][1200].WhPer10, "MM-TP4-1.2GHz-Wh/10req")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := expt.TableIII()
		b.ReportMetric(tab["llama2-13b"][2][1200].WhPer10, "13B-TP2-1.2GHz-Wh/10req")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slo := workload.SLOFor(workload.MM)
		b.ReportMetric(slo.TTFT*1000, "MM-TTFT-SLO-ms")
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		naive, opt := expt.TableVTotal()
		b.ReportMetric(naive, "naive-s")
		b.ReportMetric(opt, "optimized-s")
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		matrix, unit := expt.TableVI()
		b.ReportMetric(float64(matrix[0][1]), "TP2-to-4TP2-units")
		b.ReportMetric(unit*1000, "T-ms")
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchCfg.Fig1()
		b.ReportMetric(float64(len(rows)), "services")
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := benchCfg.Fig2()
		b.ReportMetric(float64(len(pts)), "services")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := expt.Fig3()
		drop := 1 - rows[4].SwitchRPS/rows[4].ConstRPS // MM
		b.ReportMetric(drop*100, "MM-throughput-drop-%")
	}
}

// clusterHour is shared by the Fig. 6-10 benchmarks (one simulation feeds
// five figures, as in the paper).
var clusterHourRuns []expt.SystemRun

func clusterHour(b *testing.B) []expt.SystemRun {
	b.Helper()
	if clusterHourRuns == nil {
		clusterHourRuns = benchCfg.ClusterHour()
	}
	return clusterHourRuns
}

func systemByName(runs []expt.SystemRun, name string) *core.Result {
	for _, r := range runs {
		if r.Name == name {
			return r.Result
		}
	}
	return nil
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := clusterHour(b)
		base := systemByName(runs, "singlepool")
		dyn := systemByName(runs, "dynamollm")
		b.ReportMetric((1-dyn.EnergyJ/base.EnergyJ)*100, "dynamo-energy-saving-%")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := systemByName(clusterHour(b), "dynamollm")
		b.ReportMetric(dyn.TTFT.Percentile(99)*1000, "ttft-p99-ms")
		b.ReportMetric(dyn.TBT.Percentile(99)*1000, "tbt-p99-ms")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := systemByName(clusterHour(b), "dynamollm")
		b.ReportMetric(dyn.ClusterPowerW.Percentile(50)/1000, "cluster-p50-kW")
		b.ReportMetric(dyn.GPUPowerW.Percentile(50), "gpu-p50-W")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := systemByName(clusterHour(b), "dynamollm")
		avg, n := 0.0, 0
		for _, p := range dyn.FreqSeries.Points() {
			avg += p.Value
			n++
		}
		b.ReportMetric(avg/float64(n), "avg-freq-MHz")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := systemByName(clusterHour(b), "dynamollm")
		b.ReportMetric(float64(dyn.Reshards), "reshards")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchCfg.Fig11()
		// Energy overhead of 60% accuracy vs perfect.
		var perfect, poor float64
		for _, r := range rows {
			switch r.Label {
			case "Dyn-100%":
				perfect = r.EnergyKWh
			case "Dyn-60%":
				poor = r.EnergyKWh
			}
		}
		b.ReportMetric((poor/perfect-1)*100, "60%-accuracy-energy-overhead-%")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		levels := benchCfg.Fig12()
		// DynamoLLM saving at low load.
		var base, dyn float64
		for _, r := range levels[0].Systems {
			switch r.Name {
			case "singlepool":
				base = r.Result.EnergyJ
			case "dynamollm":
				dyn = r.Result.EnergyJ
			}
		}
		b.ReportMetric((1-dyn/base)*100, "low-load-saving-%")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchCfg.Fig13()
		var nine, two float64
		for _, r := range rows {
			switch r.Pools {
			case 9:
				nine = r.EnergyKWh
			case 2:
				two = r.EnergyKWh
			}
		}
		b.ReportMetric(two/nine, "2pool-over-9pool-energy")
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchCfg.Fig14()
		for _, row := range rows {
			var base, dyn float64
			for _, r := range row.Systems {
				switch r.Name {
				case "singlepool":
					base = r.Result.EnergyJ
				case "dynamollm":
					dyn = r.Result.EnergyJ
				}
			}
			b.ReportMetric((1-dyn/base)*100, row.Service.String()+"-saving-%")
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := benchCfg.Fig15()
		base := systemByName(runs, "singlepool")
		dyn := systemByName(runs, "dynamollm")
		b.ReportMetric((1-dyn.EnergyJ/base.EnergyJ)*100, "day-saving-%")
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchCfg.Fig16()
		b.ReportMetric((1-r.DynamoKg/r.BaselineKg)*100, "carbon-saving-%")
	}
}

func BenchmarkCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchCfg.CostAnalysis()
		b.ReportMetric(r.TotalSavingFrac*100, "cost-saving-%")
		b.ReportMetric(r.GPUSavingFrac*100, "gpu-saving-%")
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchCfg.HeadlineNumbers()
		b.ReportMetric(h.EnergySaving*100, "energy-saving-%")
		b.ReportMetric(h.CarbonSaving*100, "carbon-saving-%")
		b.ReportMetric(h.CostSaving*100, "cost-saving-%")
	}
}
